#!/usr/bin/env python3
"""Perf-regression gate over google-benchmark JSON output.

The CI perf-gate job regenerates the pinned thread-sweep benchmarks with
``--benchmark_format=json`` and this script compares them against a
committed per-runner baseline, failing the job when any pinned benchmark's
wall clock regresses beyond the noise tolerance. Stdlib-only by design —
CI may not install anything.

Subcommands
-----------
check        Compare current runs against a baseline. Exit 1 on any
             regression past tolerance; exit 0 (with a loud warning and a
             ready-to-commit candidate baseline) when no baseline exists
             for this runner yet — the bootstrap path.
baseline     Write a baseline file from current runs (the refresh path:
             run the perf-gate workflow, download the candidate artifact,
             commit it under ci/perf-baselines/<runner>.json).
sweep-entry  Convert a thread-sweep benchmark JSON into the per-machine
             entry format committed in BENCH_concurrency.json.
selftest     Prove the gate can fail: synthesize a baseline and a current
             run 30% slower, assert check() rejects it (and accepts the
             unregressed twin). Runs first in the perf-gate job, so a
             broken gate fails CI instead of silently passing everything.

Baseline format::

    {"runner": "ubuntu-latest", "fingerprint": "<bagdet_tune slug>",
     "tolerance": 0.25,
     "benchmarks": {"BM_x/8/2": {"real_time_ns": 1.2e6}}}

Only benchmarks matching PINNED_PREFIXES are baselined: the gate pins the
dispatch-sensitive sweeps (modular thread sweep, hom split sweep, decide
loop), not every microbenchmark, so a refactor adding benches does not
invalidate baselines.
"""

import argparse
import json
import sys

# Benchmarks worth gating: the thread sweeps whose shape the tuning
# subsystem exists to keep honest, plus the end-to-end decide loop.
PINNED_PREFIXES = (
    "BM_ModularRrefManyPrimes",
    "BM_ModularInverse",
    "BM_CountHomsSplit",
    "BM_DecideDetermined",
)

DEFAULT_TOLERANCE = 0.25


def _to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return float(value) * scale.get(unit, 1.0)


def load_benchmarks(paths):
    """name -> {"real_time_ns": float, "cpu_time_ns": float}."""
    merged = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            name = bench["name"]
            unit = bench.get("time_unit", "ns")
            merged[name] = {
                "real_time_ns": _to_ns(bench["real_time"], unit),
                "cpu_time_ns": _to_ns(bench["cpu_time"], unit),
            }
    return merged


def pinned(benchmarks):
    return {
        name: times
        for name, times in benchmarks.items()
        if name.startswith(PINNED_PREFIXES)
    }


def make_baseline(runner, fingerprint, benchmarks, tolerance):
    return {
        "runner": runner,
        "fingerprint": fingerprint,
        "tolerance": tolerance,
        "benchmarks": pinned(benchmarks),
    }


def check(baseline, current, tolerance=None):
    """Returns (failures, notes). failures non-empty => gate fails."""
    tol = tolerance if tolerance is not None else baseline.get(
        "tolerance", DEFAULT_TOLERANCE)
    failures, notes = [], []
    for name, base in baseline.get("benchmarks", {}).items():
        cur = current.get(name)
        if cur is None:
            failures.append(
                f"{name}: pinned in baseline but missing from current run "
                f"(renamed or deleted? refresh the baseline)")
            continue
        base_ns = float(base["real_time_ns"])
        cur_ns = float(cur["real_time_ns"])
        if base_ns <= 0:
            notes.append(f"{name}: non-positive baseline time, skipped")
            continue
        ratio = cur_ns / base_ns
        line = (f"{name}: {cur_ns / 1e6:.3f} ms vs baseline "
                f"{base_ns / 1e6:.3f} ms ({ratio - 1.0:+.1%})")
        if ratio > 1.0 + tol:
            failures.append(f"REGRESSION {line} exceeds +{tol:.0%} tolerance")
        elif ratio < 1.0 - tol:
            notes.append(
                f"improvement {line} — consider refreshing the baseline")
        else:
            notes.append(f"ok {line}")
    return failures, notes


def cmd_check(args):
    current = load_benchmarks(args.current)
    candidate = make_baseline(args.runner, args.fingerprint, current,
                              args.tolerance or DEFAULT_TOLERANCE)
    if args.emit_candidate:
        with open(args.emit_candidate, "w") as f:
            json.dump(candidate, f, indent=2, sort_keys=True)
            f.write("\n")
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except FileNotFoundError:
        print(f"perf-gate: NO BASELINE at {args.baseline} — bootstrap pass.")
        print("perf-gate: commit the candidate baseline artifact as "
              f"{args.baseline} to arm the gate on this runner.")
        return 0
    failures, notes = check(baseline, current, args.tolerance)
    for note in notes:
        print(f"perf-gate: {note}")
    if failures:
        for failure in failures:
            print(f"perf-gate: {failure}", file=sys.stderr)
        print(
            f"perf-gate: FAILED — {len(failures)} pinned benchmark(s) "
            "regressed. If this is an accepted trade (or new hardware), "
            "refresh the baseline: download this run's candidate-baseline "
            f"artifact and commit it as {args.baseline}.",
            file=sys.stderr)
        return 1
    print(f"perf-gate: PASS ({len(baseline.get('benchmarks', {}))} pinned "
          "benchmarks within tolerance)")
    return 0


def cmd_baseline(args):
    current = load_benchmarks(args.current)
    baseline = make_baseline(args.runner, args.fingerprint, current,
                             args.tolerance or DEFAULT_TOLERANCE)
    if not baseline["benchmarks"]:
        print("perf-gate: no pinned benchmarks found in input", file=sys.stderr)
        return 1
    with open(args.out, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"perf-gate: wrote baseline {args.out} "
          f"({len(baseline['benchmarks'])} pinned benchmarks)")
    return 0


def cmd_sweep_entry(args):
    current = load_benchmarks(args.current)
    entry = {
        "fingerprint": args.fingerprint,
        "runner": args.runner,
        "benchmarks": [
            {
                "name": name,
                "real_time_ms": round(times["real_time_ns"] / 1e6, 3),
                "cpu_time_ms": round(times["cpu_time_ns"] / 1e6, 3),
            }
            for name, times in sorted(pinned(current).items())
        ],
    }
    with open(args.out, "w") as f:
        json.dump(entry, f, indent=2)
        f.write("\n")
    print(f"perf-gate: wrote sweep entry {args.out} "
          f"({len(entry['benchmarks'])} benchmarks)")
    return 0


def cmd_selftest(_args):
    base_times = {
        "BM_ModularRrefManyPrimes/12/4": {"real_time_ns": 1e6,
                                          "cpu_time_ns": 1e6},
        "BM_CountHomsSplit/4": {"real_time_ns": 2e6, "cpu_time_ns": 2e6},
    }
    baseline = make_baseline("selftest", "selftest", base_times,
                             DEFAULT_TOLERANCE)

    slowed = {
        name: {
            "real_time_ns": times["real_time_ns"] * 1.30,
            "cpu_time_ns": times["cpu_time_ns"] * 1.30,
        }
        for name, times in base_times.items()
    }
    failures, _ = check(baseline, slowed)
    if not failures:
        print("selftest: gate ACCEPTED a 30% slowdown — gate is broken",
              file=sys.stderr)
        return 1

    within = {
        name: {
            "real_time_ns": times["real_time_ns"] * 1.10,
            "cpu_time_ns": times["cpu_time_ns"] * 1.10,
        }
        for name, times in base_times.items()
    }
    failures, _ = check(baseline, within)
    if failures:
        print("selftest: gate REJECTED a within-tolerance run: "
              f"{failures}", file=sys.stderr)
        return 1

    missing = dict(slowed)
    del missing["BM_CountHomsSplit/4"]
    missing["BM_ModularRrefManyPrimes/12/4"] = base_times[
        "BM_ModularRrefManyPrimes/12/4"]
    failures, _ = check(baseline, missing)
    if not failures:
        print("selftest: gate ignored a missing pinned benchmark",
              file=sys.stderr)
        return 1

    print("selftest: PASS — gate fails on +30%, passes on +10%, "
          "fails on missing pinned benchmark")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("check")
    p.add_argument("--baseline", required=True)
    p.add_argument("--current", nargs="+", required=True)
    p.add_argument("--tolerance", type=float, default=None)
    p.add_argument("--runner", default="unknown")
    p.add_argument("--fingerprint", default="unknown")
    p.add_argument("--emit-candidate", default=None,
                   help="also write a ready-to-commit candidate baseline")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("baseline")
    p.add_argument("--out", required=True)
    p.add_argument("--current", nargs="+", required=True)
    p.add_argument("--runner", default="unknown")
    p.add_argument("--fingerprint", default="unknown")
    p.add_argument("--tolerance", type=float, default=None)
    p.set_defaults(func=cmd_baseline)

    p = sub.add_parser("sweep-entry")
    p.add_argument("--out", required=True)
    p.add_argument("--current", nargs="+", required=True)
    p.add_argument("--runner", default="unknown")
    p.add_argument("--fingerprint", default="unknown")
    p.set_defaults(func=cmd_sweep_entry)

    p = sub.add_parser("selftest")
    p.set_defaults(func=cmd_selftest)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
