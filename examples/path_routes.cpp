// path_routes: Theorem 1 on a transport-network workload.
//
// Scenario: a travel search engine stores legs of different carriers as
// binary relations (F = flight, T = train, B = bus). Cached route-count
// views are words over these relations (path queries under bag semantics:
// the *number* of routes between every pair of cities). Which itinerary
// counts can be served from the cache alone? Theorem 1 says: exactly
// those reachable in the prefix graph G_{q,V} — identically under set and
// bag semantics.

#include <iostream>
#include <vector>

#include "path/matrix_semantics.h"
#include "path/path_query.h"
#include "path/qwalk.h"

int main() {
  using namespace bagdet;
  auto schema = std::make_shared<Schema>();

  // Cached route-count views.
  std::vector<PathQuery> views = {
      PathQuery::FromWord("FT", schema),    // Fly then train.
      PathQuery::FromWord("T", schema),     // Single train leg.
      PathQuery::FromWord("TB", schema),    // Train then bus.
      PathQuery::FromWord("FTB", schema),   // The full combo.
  };
  std::cout << "cached views: FT, T, TB, FTB\n\n";

  std::vector<PathQuery> wanted = {
      PathQuery::FromWord("F", schema),      // Flight counts alone.
      PathQuery::FromWord("FT", schema),     // Cached directly.
      PathQuery::FromWord("FTTB", schema),   // Fly-train-train-bus.
      PathQuery::FromWord("FB", schema),     // Fly then bus.
      PathQuery::FromWord("FTB", schema),
  };

  for (const PathQuery& q : wanted) {
    PathDeterminacyResult result = DecidePathDeterminacy(q, views);
    std::cout << "itinerary " << q.ToString() << ": "
              << (result.determined ? "derivable from cache"
                                    : "NOT derivable")
              << "\n";
    if (result.determined) {
      std::cout << "  prefix-graph path:";
      for (const PrefixStep& step : result.path) {
        std::cout << " " << step.from_prefix
                  << (step.direction > 0 ? "-[+" : "-[-")
                  << views[step.view_index].ToString() << "]->"
                  << step.to_prefix;
      }
      SignedWord walk = BuildQWalk(q, views, result.path);
      std::cout << "\n  induced q-walk: "
                << SignedWordToString(walk, *schema)
                << (IsQWalk(walk, q) ? "  (valid q-walk, reduces to q)" : "")
                << "\n";
    } else if (result.counterexample.has_value()) {
      const auto& [d, d_prime] = *result.counterexample;
      bool views_agree = true;
      for (const PathQuery& v : views) {
        views_agree = views_agree &&
                      AnswerBagsEqual(EvaluatePathQuery(d, v),
                                      EvaluatePathQuery(d_prime, v));
      }
      bool q_differs = !AnswerBagsEqual(EvaluatePathQuery(d, q),
                                        EvaluatePathQuery(d_prime, q));
      std::cout << "  counterexample (" << d.DomainSize()
                << " cities, twisted double cover): views agree="
                << (views_agree ? "yes" : "NO")
                << ", itinerary counts differ=" << (q_differs ? "yes" : "NO")
                << "\n";
    }
    std::cout << "\n";
  }

  std::cout << "Theorem 1: these verdicts coincide with set-semantics "
               "determinacy - caching counts is no harder than caching "
               "reachability for path views.\n";
  return 0;
}
