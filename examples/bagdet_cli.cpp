// bagdet_cli: command-line front-end for the determinacy checker.
//
// Usage:
//   bagdet_cli [flags] cq   <file>    decide bag-determinacy of boolean CQs
//   bagdet_cli [flags] path <file>    decide path-query determinacy (Thm. 1)
//   bagdet_cli eval <rules> <data>    evaluate every rule on a database
//   bagdet_cli [flags] --serve <file> batch-serve many cq instances
//   bagdet_cli -                      read from stdin (cq mode)
//
// Flags (cq and serve modes):
//   --deadline-ms=N     abort the decision after N milliseconds
//   --max-memory-mb=N   abort when governed kernels charge more than N MiB
// Both accept "--flag N" and "--flag=N". When a limit trips the process
// prints the typed execution status and exits with code 3 (0 = determined,
// 1 = not determined, 2 = usage/input error).
//
// Serve mode: the input holds MANY instances separated by blank lines
// (each block is a cq program: views first, query last; every block shares
// one schema). All instances are submitted to a persistent
// DeterminacyService (serve/service.h) — one shared pool/cache, the flag
// limits applied per request — and the process drains before exiting. Exit
// code is the worst outcome across the batch: 2 usage/parse error, 3 if
// any request was shed or declined, else 1 if any verdict was NOT
// determined, else 0.
//
// CQ input: datalog rules, one per line; the LAST rule is the query, all
// earlier rules are views. Example:
//   v1() :- P(u,x), R(x,y)
//   v2() :- R(x,y), S(y,z)
//   q()  :- P(u,x), R(x,y), S(y,z)
//
// Path input: first line is the query word, remaining lines are view
// words, e.g.:
//   ABCD
//   ABC
//   BC
//   BCD
//
// Eval data input: a fact list like "R(0,1), S(1,2), domain 5".

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/determinacy.h"
#include "path/path_query.h"
#include "serve/service.h"
#include "query/parser.h"
#include "structs/text.h"
#include "util/exec_context.h"

namespace {

int RunCqMode(const std::string& text, const bagdet::ExecLimits& limits) {
  using namespace bagdet;
  QueryParser parser;
  std::vector<ConjunctiveQuery> rules = parser.ParseProgram(text);
  if (rules.empty()) {
    std::cerr << "error: no rules given\n";
    return 2;
  }
  ConjunctiveQuery query = rules.back();
  rules.pop_back();
  DeterminacyResult result;
  if (limits.deadline_ms != 0 || limits.max_memory_bytes != 0) {
    ExecContext exec(limits);
    GovernedDecision decision =
        DecideBagDeterminacyGoverned(rules, query, DeterminacyOptions(), exec);
    if (!decision.result.has_value()) {
      std::cout << "execution limit tripped: " << decision.status.ToString()
                << "\n";
      return 3;
    }
    result = std::move(*decision.result);
  } else {
    result = DecideBagDeterminacy(rules, query);
  }
  std::cout << result.Summary() << "\n";
  if (result.counterexample.has_value()) {
    auto issue = VerifyCounterexample(result.analysis, *result.counterexample);
    std::cout << "counterexample verification: "
              << (issue ? *issue : std::string("OK (exact)")) << "\n";
  }
  return result.determined ? 0 : 1;
}

int RunServeMode(const std::string& text, const bagdet::ExecLimits& limits) {
  using namespace bagdet;
  // One parser across every block: relations accumulate into one schema,
  // so all instances target the same persistent pool.
  QueryParser parser;
  std::vector<ServeRequest> requests;
  std::istringstream lines(text);
  std::string line, block;
  auto flush_block = [&]() {
    if (block.find_first_not_of(" \t\r\n") == std::string::npos) {
      block.clear();
      return;
    }
    std::vector<ConjunctiveQuery> rules = parser.ParseProgram(block);
    block.clear();
    if (rules.empty()) return;
    ServeRequest req;
    req.query = rules.back();
    rules.pop_back();
    req.views = std::move(rules);
    req.limits = limits;
    requests.push_back(std::move(req));
  };
  while (std::getline(lines, line)) {
    const bool blank =
        line.find_first_not_of(" \t\r") == std::string::npos;
    if (blank) {
      flush_block();
    } else {
      block += line;
      block += '\n';
    }
  }
  flush_block();
  if (requests.empty()) {
    std::cerr << "error: no instances given\n";
    return 2;
  }

  DeterminacyService service;
  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(requests.size());
  for (ServeRequest& req : requests) {
    futures.push_back(service.Submit(std::move(req)));
  }

  bool any_rejected = false;
  bool any_undetermined = false;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeResponse resp = futures[i].get();
    std::cout << "request " << i << ": " << ServeOutcomeName(resp.outcome);
    switch (resp.outcome) {
      case ServeOutcome::kAnswered:
      case ServeOutcome::kDegraded:
        std::cout << (resp.result->determined ? " - DETERMINED"
                                              : " - NOT determined");
        if (resp.degraded) {
          std::cout << " (degraded: " << resp.status.ToString() << ")";
        }
        any_undetermined |= !resp.result->determined;
        break;
      case ServeOutcome::kShed:
      case ServeOutcome::kDeclined:
        std::cout << " - " << resp.status.ToString();
        if (!resp.message.empty()) std::cout << " (" << resp.message << ")";
        any_rejected = true;
        break;
    }
    if (resp.retries != 0) std::cout << " [retries " << resp.retries << "]";
    std::cout << "\n";
  }
  service.Shutdown();

  const ServiceStats stats = service.stats();
  std::cout << "serve summary: " << stats.submitted << " requests - "
            << stats.answered << " answered, " << stats.degraded
            << " degraded, " << stats.shed << " shed, " << stats.declined
            << " declined; retries " << stats.retries << "; cache "
            << stats.cache_hits << " hits / " << stats.cache_misses
            << " misses; generation " << stats.generation << "\n";
  if (any_rejected) return 3;
  return any_undetermined ? 1 : 0;
}

int RunPathMode(const std::string& text) {
  using namespace bagdet;
  auto schema = std::make_shared<Schema>();
  std::istringstream lines(text);
  std::string line;
  std::vector<PathQuery> words;
  while (std::getline(lines, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    words.push_back(PathQuery::FromWord(line, schema));
  }
  if (words.empty()) {
    std::cerr << "error: no words given\n";
    return 2;
  }
  PathQuery query = words.front();
  std::vector<PathQuery> views(words.begin() + 1, words.end());
  PathDeterminacyResult result = DecidePathDeterminacy(query, views);
  std::cout << "q = " << query.ToString() << ", |V| = " << views.size()
            << "\n";
  if (result.determined) {
    std::cout << "DETERMINED (set- and bag-semantics coincide, Theorem 1); "
                 "prefix path:";
    for (const PrefixStep& step : result.path) {
      std::cout << " " << step.from_prefix << "->" << step.to_prefix;
    }
    std::cout << "\n";
    return 0;
  }
  std::cout << "NOT determined";
  if (result.counterexample.has_value()) {
    std::cout << "; counterexample over "
              << result.counterexample->first.DomainSize() << " elements built"
              << " (Appendix B)";
  }
  std::cout << "\n";
  return 1;
}

int RunEvalMode(const std::string& rules_text, const std::string& data_text) {
  using namespace bagdet;
  QueryParser parser;
  std::vector<ConjunctiveQuery> rules = parser.ParseProgram(rules_text);
  Structure data = ParseStructure(data_text, parser.schema());
  std::cout << "database: " << data.NumFacts() << " facts over "
            << data.DomainSize() << " elements\n";
  for (const ConjunctiveQuery& rule : rules) {
    std::cout << rule.ToString() << "\n";
    if (rule.IsBoolean()) {
      std::cout << "  count = " << rule.CountHomomorphisms(data) << "\n";
      continue;
    }
    for (const auto& [tuple, count] : rule.Evaluate(data)) {
      std::cout << "  (";
      for (std::size_t i = 0; i < tuple.size(); ++i) {
        std::cout << (i ? "," : "") << tuple[i];
      }
      std::cout << ") x " << count << "\n";
    }
  }
  return 0;
}

std::string ReadAll(const std::string& path) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Consumes "--name N" / "--name=N" from args; returns false on a
/// malformed value (missing or non-numeric).
bool TakeUint64Flag(std::vector<std::string>* args, const std::string& name,
                    std::uint64_t* out) {
  for (std::size_t i = 0; i < args->size(); ++i) {
    const std::string& arg = (*args)[i];
    std::string value;
    if (arg == name) {
      if (i + 1 >= args->size()) return false;
      value = (*args)[i + 1];
      args->erase(args->begin() + i, args->begin() + i + 2);
    } else if (arg.rfind(name + "=", 0) == 0) {
      value = arg.substr(name.size() + 1);
      args->erase(args->begin() + i);
    } else {
      continue;
    }
    try {
      std::size_t used = 0;
      *out = std::stoull(value, &used);
      return used == value.size();
    } catch (const std::exception&) {
      return false;
    }
  }
  return true;  // Flag absent: leave *out untouched.
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    bagdet::ExecLimits limits;
    std::uint64_t max_memory_mb = 0;
    if (!TakeUint64Flag(&args, "--deadline-ms", &limits.deadline_ms) ||
        !TakeUint64Flag(&args, "--max-memory-mb", &max_memory_mb)) {
      std::cerr << "error: --deadline-ms/--max-memory-mb need a numeric "
                   "value\n";
      return 2;
    }
    limits.max_memory_bytes = max_memory_mb * 1024 * 1024;
    std::string mode = "cq";
    for (auto it = args.begin(); it != args.end(); ++it) {
      if (*it == "--serve") {
        mode = "serve";
        args.erase(it);
        break;
      }
    }
    if (args.size() == 3 && args[0] == "eval") {
      return RunEvalMode(ReadAll(args[1]), ReadAll(args[2]));
    }
    std::string path = "-";
    if (args.size() == 1) {
      path = args[0];
    } else if (args.size() == 2 && mode == "cq") {
      mode = args[0];
      path = args[1];
    } else if (!args.empty()) {
      std::cerr << "usage: bagdet_cli [--deadline-ms N] [--max-memory-mb N] "
                   "[--serve] [cq|path] <file|->\n"
                << "       bagdet_cli eval <rules> <data>\n";
      return 2;
    }
    if (mode == "path") return RunPathMode(ReadAll(path));
    if (mode == "serve") return RunServeMode(ReadAll(path), limits);
    return RunCqMode(ReadAll(path), limits);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
