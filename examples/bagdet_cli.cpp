// bagdet_cli: command-line front-end for the determinacy checker.
//
// Usage:
//   bagdet_cli cq   <file>            decide bag-determinacy of boolean CQs
//   bagdet_cli path <file>            decide path-query determinacy (Thm. 1)
//   bagdet_cli eval <rules> <data>    evaluate every rule on a database
//   bagdet_cli -                      read from stdin (cq mode)
//
// CQ input: datalog rules, one per line; the LAST rule is the query, all
// earlier rules are views. Example:
//   v1() :- P(u,x), R(x,y)
//   v2() :- R(x,y), S(y,z)
//   q()  :- P(u,x), R(x,y), S(y,z)
//
// Path input: first line is the query word, remaining lines are view
// words, e.g.:
//   ABCD
//   ABC
//   BC
//   BCD
//
// Eval data input: a fact list like "R(0,1), S(1,2), domain 5".

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/determinacy.h"
#include "path/path_query.h"
#include "query/parser.h"
#include "structs/text.h"

namespace {

int RunCqMode(const std::string& text) {
  using namespace bagdet;
  QueryParser parser;
  std::vector<ConjunctiveQuery> rules = parser.ParseProgram(text);
  if (rules.empty()) {
    std::cerr << "error: no rules given\n";
    return 2;
  }
  ConjunctiveQuery query = rules.back();
  rules.pop_back();
  DeterminacyResult result = DecideBagDeterminacy(rules, query);
  std::cout << result.Summary() << "\n";
  if (result.counterexample.has_value()) {
    auto issue = VerifyCounterexample(result.analysis, *result.counterexample);
    std::cout << "counterexample verification: "
              << (issue ? *issue : std::string("OK (exact)")) << "\n";
  }
  return result.determined ? 0 : 1;
}

int RunPathMode(const std::string& text) {
  using namespace bagdet;
  auto schema = std::make_shared<Schema>();
  std::istringstream lines(text);
  std::string line;
  std::vector<PathQuery> words;
  while (std::getline(lines, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    words.push_back(PathQuery::FromWord(line, schema));
  }
  if (words.empty()) {
    std::cerr << "error: no words given\n";
    return 2;
  }
  PathQuery query = words.front();
  std::vector<PathQuery> views(words.begin() + 1, words.end());
  PathDeterminacyResult result = DecidePathDeterminacy(query, views);
  std::cout << "q = " << query.ToString() << ", |V| = " << views.size()
            << "\n";
  if (result.determined) {
    std::cout << "DETERMINED (set- and bag-semantics coincide, Theorem 1); "
                 "prefix path:";
    for (const PrefixStep& step : result.path) {
      std::cout << " " << step.from_prefix << "->" << step.to_prefix;
    }
    std::cout << "\n";
    return 0;
  }
  std::cout << "NOT determined";
  if (result.counterexample.has_value()) {
    std::cout << "; counterexample over "
              << result.counterexample->first.DomainSize() << " elements built"
              << " (Appendix B)";
  }
  std::cout << "\n";
  return 1;
}

int RunEvalMode(const std::string& rules_text, const std::string& data_text) {
  using namespace bagdet;
  QueryParser parser;
  std::vector<ConjunctiveQuery> rules = parser.ParseProgram(rules_text);
  Structure data = ParseStructure(data_text, parser.schema());
  std::cout << "database: " << data.NumFacts() << " facts over "
            << data.DomainSize() << " elements\n";
  for (const ConjunctiveQuery& rule : rules) {
    std::cout << rule.ToString() << "\n";
    if (rule.IsBoolean()) {
      std::cout << "  count = " << rule.CountHomomorphisms(data) << "\n";
      continue;
    }
    for (const auto& [tuple, count] : rule.Evaluate(data)) {
      std::cout << "  (";
      for (std::size_t i = 0; i < tuple.size(); ++i) {
        std::cout << (i ? "," : "") << tuple[i];
      }
      std::cout << ") x " << count << "\n";
    }
  }
  return 0;
}

std::string ReadAll(const std::string& path) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 4 && std::string(argv[1]) == "eval") {
      return RunEvalMode(ReadAll(argv[2]), ReadAll(argv[3]));
    }
    std::string mode = "cq";
    std::string path = "-";
    if (argc == 2) {
      path = argv[1];
    } else if (argc == 3) {
      mode = argv[1];
      path = argv[2];
    } else if (argc != 1) {
      std::cerr << "usage: bagdet_cli [cq|path] <file|->\n"
                << "       bagdet_cli eval <rules> <data>\n";
      return 2;
    }
    std::string text = ReadAll(path);
    return mode == "path" ? RunPathMode(text) : RunCqMode(text);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
