// hilbert_undecidability: walks through the Theorem-2 reduction showing
// why boolean-UCQ bag-determinacy is undecidable: deciding it would solve
// Hilbert's Tenth Problem.

#include <iostream>

#include "hilbert/polynomial.h"
#include "hilbert/reduction.h"

namespace {

void Demonstrate(const std::string& polynomial_text, std::uint64_t bound) {
  using namespace bagdet;
  DiophantineInstance instance = DiophantineInstance::Parse(polynomial_text);
  std::cout << "=== instance I: " << instance.ToString() << " = 0 over N ===\n";

  Theorem2Reduction red = ReduceToDeterminacy(instance);
  std::cout << "reduction emits schema {H, C";
  for (std::size_t i = 0; i < red.x_relations.size(); ++i) {
    std::cout << ", X" << i;
  }
  std::cout << "}, query q = H, and " << red.views.size()
            << " views (V1 = H v C, one per unknown, and V_I with "
            << red.views.back().disjuncts().size() << " disjuncts)\n";

  auto solution = instance.FindSolution(bound);
  if (solution.has_value()) {
    std::cout << "solution found within bound " << bound << ": (";
    for (std::size_t i = 0; i < solution->size(); ++i) {
      std::cout << (i ? "," : "") << (*solution)[i];
    }
    std::cout << ")\n";
    auto [d, d_prime] = red.WitnessPair(*solution);
    bool views_agree = red.EvaluateViews(d) == red.EvaluateViews(d_prime);
    bool q_differs = red.query.Count(d) != red.query.Count(d_prime);
    std::cout << "witness pair (Lemma 63): views agree = "
              << (views_agree ? "yes" : "NO")
              << ", q differs = " << (q_differs ? "yes" : "NO")
              << "  =>  V does NOT bag-determine q\n";
  } else {
    std::cout << "no solution with unknowns <= " << bound
              << " (for genuinely unsolvable instances, Lemma 62 implies "
                 "V -->bag q)\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Theorem 2: bag-determinacy of boolean UCQs is undecidable.\n"
            << "The reduction maps a Diophantine instance I to (q, V) with\n"
            << "  I solvable  <=>  V does not bag-determine q.\n\n";
  Demonstrate("x0^2 - 4", 10);                 // Solvable: x0 = 2.
  Demonstrate("x0*x1 - 6", 10);                // Solvable: (2,3) etc.
  Demonstrate("x0 + 1", 10);                   // Unsolvable over N.
  Demonstrate("x0^2 + x1^2 - x2^2 - 25", 8);   // 3-4-5 shifted: solvable.
  Demonstrate("x0^2 - 2", 100);                // sqrt(2) is irrational.
  return 0;
}
