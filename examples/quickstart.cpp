// bagdet quickstart: decide bag-semantics determinacy of boolean CQs and
// inspect the certificate (Theorem 3 of "Determinacy of Real Conjunctive
// Queries. The Boolean Case", PODS 2022).

#include <iostream>

#include "core/determinacy.h"
#include "query/parser.h"

int main() {
  using namespace bagdet;

  // The instance of the paper's Example 2 (made boolean): the two views
  // cover q's atoms but bag-determinacy fails.
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q()  :- P(u,x), R(x,y), S(y,z)");
  std::vector<ConjunctiveQuery> views = {
      parser.ParseRule("v1() :- P(u,x), R(x,y)"),
      parser.ParseRule("v2() :- R(x,y), S(y,z)"),
  };

  std::cout << "q  = " << q.ToString() << "\n";
  for (const auto& v : views) std::cout << "     " << v.ToString() << "\n";

  DeterminacyResult result = DecideBagDeterminacy(views, q);
  std::cout << "\n" << result.Summary() << "\n";

  if (!result.determined && result.counterexample.has_value()) {
    std::optional<std::string> issue =
        VerifyCounterexample(result.analysis, *result.counterexample);
    std::cout << "counterexample verification: "
              << (issue.has_value() ? *issue : std::string("OK (exact)"))
              << "\n";
  }

  // A determined instance in the style of the paper's Example 32. With
  // w1 = a loop and w2 = an edge: q = w1 + w2, v1 = 2w1 + w2,
  // v2 = w1 + 2w2, so q⃗ = (1,1) = (v⃗1 + v⃗2)/3 lies in the span and
  // q(D) = (v1(D) · v2(D))^(1/3) whenever both are positive.
  QueryParser parser2;
  ConjunctiveQuery q2 = parser2.ParseRule("q()  :- E(x,x), E(a,b)");
  std::vector<ConjunctiveQuery> views2 = {
      parser2.ParseRule("v1() :- E(x,x), E(y,y), E(a,b)"),
      parser2.ParseRule("v2() :- E(x,x), E(a,b), E(c,d)"),
  };
  DeterminacyResult result2 = DecideBagDeterminacy(views2, q2);
  std::cout << "\n" << result2.Summary() << "\n";
  return 0;
}
