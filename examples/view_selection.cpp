// view_selection: a realistic workload for the Theorem-3 checker.
//
// Scenario: an analytics warehouse stores a social graph
//   Follows(a, b), Likes(a, p), Posted(a, p)
// and materializes only the *counts* of a handful of boolean pattern
// queries (bag semantics: counts, not existence). Before dropping the raw
// tables for a cheap aggregate-only tier, the DBA asks: which audit
// queries are still answerable exactly from the materialized counts alone?
// That is precisely bag-determinacy: V -->bag q.

#include <iostream>
#include <vector>

#include "core/determinacy.h"
#include "query/parser.h"

int main() {
  using namespace bagdet;
  QueryParser parser;

  // Materialized count views.
  std::vector<ConjunctiveQuery> views = {
      // Mutual-follow pairs with the like volume counted twice.
      parser.ParseRule("kpi_mutual_like2() :- Follows(a,b), Follows(b,a), "
                       "Likes(u,p), Likes(v,r)"),
      // Engagement: likes on posts by people one follows.
      parser.ParseRule(
          "kpi_engagement()   :- Follows(a,b), Posted(b,p), Likes(a,p)"),
      // Raw like volume.
      parser.ParseRule("kpi_likes()        :- Likes(u,p)"),
  };

  // Audit queries the DBA wants to keep answering exactly.
  std::vector<ConjunctiveQuery> audits = {
      // Mutual pairs joined with like volume once: recoverable as
      // kpi_mutual_like2 / kpi_likes (a division-shaped rewrite).
      parser.ParseRule(
          "audit_mutual_like() :- Follows(a,b), Follows(b,a), Likes(u,p)"),
      // Mutual pairs alone: NOT recoverable — when there are no likes at
      // all, every KPI above reads 0 whatever the follow graph looks like.
      parser.ParseRule("audit_mutual()   :- Follows(a,b), Follows(b,a)"),
      parser.ParseRule("audit_engage()   :- Follows(a,b), Posted(b,p), "
                       "Likes(a,p)"),
      parser.ParseRule("audit_follows()  :- Follows(a,b)"),
      parser.ParseRule("audit_selflike() :- Posted(a,p), Likes(a,p)"),
  };

  std::cout << "Materialized count views:\n";
  for (const auto& v : views) std::cout << "  " << v.ToString() << "\n";
  std::cout << "\n";

  for (const ConjunctiveQuery& q : audits) {
    DeterminacyResult result = DecideBagDeterminacy(views, q);
    std::cout << "audit query: " << q.ToString() << "\n  -> "
              << (result.determined ? "ANSWERABLE from view counts"
                                    : "NOT answerable")
              << "\n";
    if (result.determined && !result.witness->view_indices.empty()) {
      std::cout << "     rewrite: q(D) = ";
      for (std::size_t j = 0; j < result.witness->view_indices.size(); ++j) {
        if (j) std::cout << " * ";
        std::cout << views[result.witness->view_indices[j]].name() << "(D)^("
                  << result.witness->exponents[j] << ")";
      }
      std::cout << "   [valid when all factors > 0, else q(D) = 0]\n";
      // Demonstrate answering from the materialized counts alone on a
      // sample database: Follows 0<->1, 1 posts p2 liked by 0 and 2.
      Structure sample(parser.schema(), 5);
      auto rel = [&](const char* name) {
        return *parser.schema()->Find(name);
      };
      sample.AddFact(rel("Follows"), {0, 1});
      sample.AddFact(rel("Follows"), {1, 0});
      sample.AddFact(rel("Posted"), {1, 2});
      sample.AddFact(rel("Likes"), {0, 2});
      sample.AddFact(rel("Likes"), {3, 4});
      std::vector<BigInt> counts;
      for (std::size_t index : result.witness->view_indices) {
        counts.push_back(views[index].CountHomomorphisms(sample));
      }
      std::cout << "     sample DB: recovered q(D) = "
                << AnswerFromViewCounts(*result.witness, counts)
                << " from counts alone (true count "
                << q.CountHomomorphisms(sample) << ")\n";
    }
    if (!result.determined && result.counterexample.has_value()) {
      auto issue = VerifyCounterexample(result.analysis, *result.counterexample);
      std::cout << "     counterexample (exact, verified "
                << (issue ? "FAILED" : "OK") << "): two databases with "
                << "identical view counts, |dom| = "
                << result.counterexample->d.DomainSize().ToString() << " vs "
                << result.counterexample->d_prime.DomainSize().ToString()
                << ", on which the audit answer differs\n";
    }
    std::cout << "\n";
  }
  return 0;
}
