// counterexample_gallery: dissects the negative certificate of Sections
// 5-7 on a small instance, printing every intermediate object: V, W, the
// vectors, the orthogonal witness z, the good basis S with its evaluation
// matrix, the perturbation t, and the final structures D, D' (materialized
// when small enough).

#include <iostream>

#include "core/basis.h"
#include "core/counterexample.h"
#include "core/determinacy.h"
#include "hom/symbolic.h"
#include "query/parser.h"

int main() {
  using namespace bagdet;
  QueryParser parser;
  // q = loop + edge; the single view v = 2*loop + edge fixes only
  // loops(D)^2 * edges(D), which cannot pin down loops(D) * edges(D):
  // q⃗ = (1,1) ∉ span{(2,1)}, so q is not bag-determined.
  ConjunctiveQuery q = parser.ParseRule("q() :- E(x,x), E(a,b)");
  std::vector<ConjunctiveQuery> views = {
      parser.ParseRule("v() :- E(x,x), E(y,y), E(a,b)"),
  };

  std::cout << "q = " << q.ToString() << "\n";
  std::cout << "v = " << views[0].ToString() << "\n\n";

  InstanceAnalysis analysis = AnalyzeInstance(views, q);
  std::cout << "V (relevant views): " << analysis.relevant_views.size()
            << " of " << analysis.views.size() << "\n";
  std::cout << "W (basis queries), k = " << analysis.basis_queries.size()
            << ":\n";
  for (std::size_t i = 0; i < analysis.basis_queries.size(); ++i) {
    std::cout << "  w" << i + 1 << " = "
              << analysis.basis_queries[i].ToString() << "\n";
  }
  std::cout << "q-vector = " << analysis.query_vector.ToString() << "\n";
  for (std::size_t i = 0; i < analysis.view_vectors.size(); ++i) {
    std::cout << "v-vector = " << analysis.view_vectors[i].ToString() << "\n";
  }

  GoodBasis basis = BuildGoodBasis(analysis, DistinguisherOptions());
  std::cout << "\ngood basis (Lemma 40):\n";
  std::cout << "  Step 1 distinguishers: " << basis.step1.size() << "\n";
  for (const Structure& s : basis.step1) {
    std::cout << "    " << s.ToString() << "\n";
  }
  std::cout << "  Step 2 radix T = " << basis.radix << ", s(2) = "
            << basis.step2.ToString() << "\n";
  std::cout << "  evaluation matrix M (w_i rows, s_j columns):\n"
            << basis.evaluation.ToString() << "\n";

  BagCounterexample ce = SynthesizeCounterexample(analysis, basis);
  std::cout << "\ncounterexample (Lemmas 41, 55-57):\n";
  std::cout << "  z (orthogonal witness) = " << ce.z.ToString() << "\n";
  std::cout << "  t (perturbation)       = " << ce.t << "\n";
  std::cout << "  D  coordinates in S    = " << ce.coeffs_d.ToString() << "\n";
  std::cout << "  D' coordinates in S    = " << ce.coeffs_d_prime.ToString()
            << "\n";
  std::cout << "  |dom(D)| = " << ce.d.DomainSize() << ", |dom(D')| = "
            << ce.d_prime.DomainSize() << "\n";

  std::cout << "\nexact answer counts:\n";
  for (std::size_t i : analysis.relevant_views) {
    std::cout << "  v(D)  = "
              << CountHomsSymbolicAny(analysis.views[i].FrozenBody(), ce.d)
              << "\n  v(D') = "
              << CountHomsSymbolicAny(analysis.views[i].FrozenBody(),
                                      ce.d_prime)
              << "\n";
  }
  std::cout << "  q(D)  = "
            << CountHomsSymbolicAny(analysis.query.FrozenBody(), ce.d)
            << "\n  q(D') = "
            << CountHomsSymbolicAny(analysis.query.FrozenBody(), ce.d_prime)
            << "\n";

  auto issue = VerifyCounterexample(analysis, ce);
  std::cout << "\nverification: " << (issue ? *issue : std::string("OK"))
            << "\n";

  if (auto d = ce.d.Materialize(64); d.has_value()) {
    std::cout << "\nmaterialized D  = " << d->ToString() << "\n";
  }
  if (auto d = ce.d_prime.Materialize(64); d.has_value()) {
    std::cout << "materialized D' = " << d->ToString() << "\n";
  }
  return 0;
}
