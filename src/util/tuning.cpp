#include "util/tuning.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <vector>

namespace bagdet {

namespace {

/// One row of the key table: name, getter into the struct, inclusive
/// bounds. Everything below is driven off this table — parser, serializer,
/// and validation stay in lockstep by construction.
struct KeySpec {
  const char* name;
  std::uint64_t TuningProfile::*u64 = nullptr;   // Exactly one of the two
  std::size_t TuningProfile::*size = nullptr;    // member pointers is set.
  std::uint64_t min = 0;
  std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
};

const KeySpec kKeys[] = {
    {"inverse_modular_min_dim", nullptr, &TuningProfile::inverse_modular_min_dim,
     1, 1u << 20},
    {"inverse_modular_always_dim", nullptr,
     &TuningProfile::inverse_modular_always_dim, 1, 1u << 20},
    {"inverse_modular_entry_bits", nullptr,
     &TuningProfile::inverse_modular_entry_bits, 1, 1u << 30},
    {"dixon_min_dim", nullptr, &TuningProfile::dixon_min_dim, 0,
     std::numeric_limits<std::size_t>::max()},
    {"modular_num_threads", nullptr, &TuningProfile::modular_num_threads, 0,
     4096},
    {"order_search_max_atoms", nullptr, &TuningProfile::order_search_max_atoms,
     0, 16},
    {"domain_min_work", &TuningProfile::domain_min_work, nullptr, 0,
     1ull << 50},
    {"parallel_split_min_work", &TuningProfile::parallel_split_min_work,
     nullptr, 0, 1ull << 50},
    {"parallel_split_chunks_per_lane", nullptr,
     &TuningProfile::parallel_split_chunks_per_lane, 1, 64},
    {"hom_num_threads", nullptr, &TuningProfile::hom_num_threads, 0, 4096},
    {"hom_cache_max_entries", nullptr, &TuningProfile::hom_cache_max_entries,
     1, std::numeric_limits<std::size_t>::max()},
    {"hom_cache_max_bytes", &TuningProfile::hom_cache_max_bytes, nullptr, 1,
     std::numeric_limits<std::uint64_t>::max()},
    {"serve_pool_max_classes", nullptr, &TuningProfile::serve_pool_max_classes,
     1, std::numeric_limits<std::size_t>::max()},
    {"serve_pool_max_bytes", &TuningProfile::serve_pool_max_bytes, nullptr, 1,
     std::numeric_limits<std::uint64_t>::max()},
    {"num_threads", nullptr, &TuningProfile::num_threads, 0, 4096},
};

std::uint64_t GetField(const TuningProfile& p, const KeySpec& k) {
  return k.u64 != nullptr ? p.*(k.u64)
                          : static_cast<std::uint64_t>(p.*(k.size));
}

void SetField(TuningProfile* p, const KeySpec& k, std::uint64_t value) {
  if (k.u64 != nullptr) {
    p->*(k.u64) = value;
  } else {
    p->*(k.size) = static_cast<std::size_t>(value);
  }
}

TuningError MakeError(TuningErrorCode code, int line, std::string message) {
  TuningError e;
  e.code = code;
  e.line = line;
  e.message = std::move(message);
  return e;
}

/// Strict unsigned-decimal parse (the whole token must be digits; leading
/// '+'/'-', hex, and empty are syntax errors — a profile is generated
/// output, not hand-tuned config, so there is nothing to be lenient about).
bool ParseU64(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  for (char ch : token) {
    if (ch < '0' || ch > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(ch - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return false;  // Overflow is a syntax error, not a silent clamp.
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string Trim(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  std::size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

const char* TuningErrorCodeName(TuningErrorCode code) {
  switch (code) {
    case TuningErrorCode::kIoError:
      return "io_error";
    case TuningErrorCode::kSyntaxError:
      return "syntax_error";
    case TuningErrorCode::kUnknownKey:
      return "unknown_key";
    case TuningErrorCode::kOutOfRange:
      return "out_of_range";
  }
  return "unknown";
}

std::string TuningError::ToString() const {
  std::ostringstream out;
  out << "tuning profile error [" << TuningErrorCodeName(code) << "]";
  if (line > 0) out << " line " << line;
  out << ": " << message;
  return out.str();
}

std::optional<TuningError> ValidateTuningProfile(const TuningProfile& profile) {
  for (const KeySpec& key : kKeys) {
    const std::uint64_t value = GetField(profile, key);
    if (value < key.min || value > key.max) {
      std::ostringstream msg;
      msg << key.name << " = " << value << " outside [" << key.min << ", "
          << key.max << "]";
      return MakeError(TuningErrorCode::kOutOfRange, 0, msg.str());
    }
  }
  if (profile.inverse_modular_min_dim > profile.inverse_modular_always_dim) {
    std::ostringstream msg;
    msg << "inverse_modular_min_dim (" << profile.inverse_modular_min_dim
        << ") > inverse_modular_always_dim ("
        << profile.inverse_modular_always_dim << ")";
    return MakeError(TuningErrorCode::kOutOfRange, 0, msg.str());
  }
  return std::nullopt;
}

std::optional<TuningProfile> ParseTuningProfile(const std::string& text,
                                                TuningError* error) {
  TuningProfile profile;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) {
        *error = MakeError(TuningErrorCode::kSyntaxError, line_no,
                           "expected `key = value`, got \"" + line + "\"");
      }
      return std::nullopt;
    }
    const std::string key_name = Trim(line.substr(0, eq));
    const std::string value_str = Trim(line.substr(eq + 1));
    const KeySpec* key = nullptr;
    for (const KeySpec& candidate : kKeys) {
      if (key_name == candidate.name) {
        key = &candidate;
        break;
      }
    }
    if (key == nullptr) {
      if (error != nullptr) {
        *error = MakeError(TuningErrorCode::kUnknownKey, line_no,
                           "unknown key \"" + key_name + "\"");
      }
      return std::nullopt;
    }
    std::uint64_t value = 0;
    if (!ParseU64(value_str, &value)) {
      if (error != nullptr) {
        *error = MakeError(
            TuningErrorCode::kSyntaxError, line_no,
            "value for " + key_name + " is not an unsigned integer: \"" +
                value_str + "\"");
      }
      return std::nullopt;
    }
    if (value < key->min || value > key->max) {
      std::ostringstream msg;
      msg << key->name << " = " << value << " outside [" << key->min << ", "
          << key->max << "]";
      if (error != nullptr) {
        *error = MakeError(TuningErrorCode::kOutOfRange, line_no, msg.str());
      }
      return std::nullopt;
    }
    SetField(&profile, *key, value);
  }
  if (std::optional<TuningError> cross = ValidateTuningProfile(profile)) {
    if (error != nullptr) *error = *cross;
    return std::nullopt;
  }
  return profile;
}

std::optional<TuningProfile> LoadTuningProfile(const std::string& path,
                                               TuningError* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = MakeError(TuningErrorCode::kIoError, 0,
                         "cannot open \"" + path + "\"");
    }
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {
    if (error != nullptr) {
      *error = MakeError(TuningErrorCode::kIoError, 0,
                         "read failed for \"" + path + "\"");
    }
    return std::nullopt;
  }
  return ParseTuningProfile(text.str(), error);
}

std::string SerializeTuningProfile(const TuningProfile& profile) {
  std::ostringstream out;
  for (const KeySpec& key : kKeys) {
    out << key.name << " = " << GetField(profile, key) << "\n";
  }
  return out.str();
}

namespace {

/// Active-profile snapshot. Snapshots are heap-allocated, published with
/// release semantics, and never freed: Tuning() hands out references with
/// unbounded lifetime, and profile churn is a startup/test event, not a
/// steady-state one, so the retention is bounded in practice.
std::atomic<const TuningProfile*> g_profile{nullptr};
std::mutex g_profile_mu;  // Serializes writers only.
std::once_flag g_env_once;

void PublishProfile(const TuningProfile& profile) {
  g_profile.store(new TuningProfile(profile), std::memory_order_release);
}

std::optional<TuningError> ResolveFromEnv() {
  std::lock_guard<std::mutex> lock(g_profile_mu);
  const char* path = std::getenv("BAGDET_TUNING_PROFILE");
  if (path == nullptr || *path == '\0') {
    PublishProfile(TuningProfile{});
    return std::nullopt;
  }
  TuningError error;
  if (std::optional<TuningProfile> loaded = LoadTuningProfile(path, &error)) {
    PublishProfile(*loaded);
    return std::nullopt;
  }
  PublishProfile(TuningProfile{});  // A bad profile degrades, never crashes.
  return error;
}

}  // namespace

const TuningProfile& Tuning() {
  std::call_once(g_env_once, [] {
    if (std::optional<TuningError> error = ResolveFromEnv()) {
      std::fprintf(stderr,
                   "bagdet: BAGDET_TUNING_PROFILE ignored, using defaults: "
                   "%s\n",
                   error->ToString().c_str());
    }
  });
  return *g_profile.load(std::memory_order_acquire);
}

std::optional<TuningError> SetTuningProfile(const TuningProfile& profile) {
  if (std::optional<TuningError> error = ValidateTuningProfile(profile)) {
    return error;
  }
  Tuning();  // Ensure env resolution happened (writer ordering vs call_once).
  std::lock_guard<std::mutex> lock(g_profile_mu);
  PublishProfile(profile);
  return std::nullopt;
}

std::optional<TuningError> ReloadTuningFromEnv() {
  Tuning();  // Force the one-time init first so the two paths never race.
  return ResolveFromEnv();
}

}  // namespace bagdet
