// bagdet: small-vector-optimized fixed-width bitset.
//
// The domain layer of the hom core (hom/domain.h) keeps one candidate set
// per source variable, sized by the target's domain, and the hot kernels
// on those sets are intersection, population count, and first-set-bit
// scans. Pipeline targets are overwhelmingly small — the interning layers
// cap cached targets at 256 elements (HomCache::max_intern_domain) and
// query bodies are far smaller — so SVOBitset stores up to kInlineWords
// words (256 bits) directly in the object and only spills to the heap
// above that. Copying a domain per search depth, which the Matcher does on
// every backtracking node, is then a few word moves with no allocator
// traffic.

#ifndef BAGDET_UTIL_BITSET_H_
#define BAGDET_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace bagdet {

class SVOBitset {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  SVOBitset() { words_.inline_words[0] = 0; }

  /// A bitset over [0, num_bits), all bits clear (or all set when
  /// `all_set`). Capacity is fixed at construction.
  explicit SVOBitset(std::size_t num_bits, bool all_set = false)
      : num_bits_(static_cast<std::uint32_t>(num_bits)),
        num_words_(static_cast<std::uint32_t>((num_bits + 63) / 64)) {
    std::uint64_t* w = AllocateWords();
    std::memset(w, 0, num_words_ * sizeof(std::uint64_t));
    if (all_set) SetAll();
  }

  SVOBitset(const SVOBitset& other)
      : num_bits_(other.num_bits_), num_words_(other.num_words_) {
    std::uint64_t* w = AllocateWords();
    std::memcpy(w, other.words(), num_words_ * sizeof(std::uint64_t));
  }

  SVOBitset(SVOBitset&& other) noexcept
      : num_bits_(other.num_bits_), num_words_(other.num_words_) {
    if (spilled()) {
      words_.heap = other.words_.heap;
      other.num_bits_ = 0;
      other.num_words_ = 0;
    } else {
      std::memcpy(words_.inline_words, other.words_.inline_words,
                  num_words_ * sizeof(std::uint64_t));
    }
  }

  SVOBitset& operator=(const SVOBitset& other) {
    if (this == &other) return *this;
    // Same word footprint (the overwhelmingly common case: reassigning a
    // domain of the same target) reuses the existing storage.
    if (num_words_ != other.num_words_) {
      FreeWords();
      num_bits_ = other.num_bits_;
      num_words_ = other.num_words_;
      AllocateWords();
    } else {
      num_bits_ = other.num_bits_;
    }
    std::memcpy(words(), other.words(), num_words_ * sizeof(std::uint64_t));
    return *this;
  }

  SVOBitset& operator=(SVOBitset&& other) noexcept {
    if (this == &other) return *this;
    FreeWords();
    num_bits_ = other.num_bits_;
    num_words_ = other.num_words_;
    if (spilled()) {
      words_.heap = other.words_.heap;
      other.num_bits_ = 0;
      other.num_words_ = 0;
    } else {
      std::memcpy(words_.inline_words, other.words_.inline_words,
                  num_words_ * sizeof(std::uint64_t));
    }
    return *this;
  }

  ~SVOBitset() { FreeWords(); }

  /// Number of addressable bits (the construction-time capacity).
  std::size_t size() const { return num_bits_; }

  void Set(std::size_t i) { words()[i >> 6] |= 1ull << (i & 63); }
  void Reset(std::size_t i) { words()[i >> 6] &= ~(1ull << (i & 63)); }
  bool Test(std::size_t i) const {
    return (words()[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sets every bit in [0, size()); bits past size() stay clear so Count
  /// and the scans never see phantom members.
  void SetAll() {
    std::uint64_t* w = words();
    for (std::uint32_t i = 0; i < num_words_; ++i) w[i] = ~0ull;
    const std::uint32_t tail = num_bits_ & 63;
    if (tail != 0) w[num_words_ - 1] = (1ull << tail) - 1;
  }

  void ResetAll() {
    std::memset(words(), 0, num_words_ * sizeof(std::uint64_t));
  }

  /// Number of set bits.
  std::size_t Count() const {
    const std::uint64_t* w = words();
    std::size_t total = 0;
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      total += static_cast<std::size_t>(__builtin_popcountll(w[i]));
    }
    return total;
  }

  bool Any() const {
    const std::uint64_t* w = words();
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      if (w[i] != 0) return true;
    }
    return false;
  }
  bool None() const { return !Any(); }

  /// Index of the lowest set bit, or npos when empty.
  std::size_t FindFirst() const { return FindNext(0); }

  /// Index of the lowest set bit >= `from`, or npos.
  std::size_t FindNext(std::size_t from) const {
    if (from >= num_bits_) return npos;
    const std::uint64_t* w = words();
    std::uint32_t word = static_cast<std::uint32_t>(from >> 6);
    std::uint64_t cur = w[word] & (~0ull << (from & 63));
    for (;;) {
      if (cur != 0) {
        return (static_cast<std::size_t>(word) << 6) +
               static_cast<std::size_t>(__builtin_ctzll(cur));
      }
      if (++word >= num_words_) return npos;
      cur = w[word];
    }
  }

  /// this &= other (sizes must match). Returns true iff any bit survives —
  /// fused so the empty-domain abort needs no second scan.
  bool IntersectWith(const SVOBitset& other) {
    std::uint64_t* w = words();
    const std::uint64_t* o = other.words();
    std::uint64_t any = 0;
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      w[i] &= o[i];
      any |= w[i];
    }
    return any != 0;
  }

  friend bool operator==(const SVOBitset& a, const SVOBitset& b) {
    if (a.num_bits_ != b.num_bits_) return false;
    return std::memcmp(a.words(), b.words(),
                       a.num_words_ * sizeof(std::uint64_t)) == 0;
  }
  friend bool operator!=(const SVOBitset& a, const SVOBitset& b) {
    return !(a == b);
  }

  /// Spill threshold in words. 4 words (256 bits) covers every interned
  /// pipeline target (HomCache::max_intern_domain defaults to 256) while
  /// keeping sizeof(SVOBitset) at 40 bytes.
  static constexpr std::size_t kInlineWords = 4;

  /// True when the words live on the heap rather than inline.
  bool spilled() const { return num_words_ > kInlineWords; }

 private:
  std::uint64_t* AllocateWords() {
    if (spilled()) {
      words_.heap = new std::uint64_t[num_words_];
      return words_.heap;
    }
    return words_.inline_words;
  }
  void FreeWords() {
    if (spilled()) delete[] words_.heap;
  }

  std::uint64_t* words() {
    return spilled() ? words_.heap : words_.inline_words;
  }
  const std::uint64_t* words() const {
    return spilled() ? words_.heap : words_.inline_words;
  }

  std::uint32_t num_bits_ = 0;
  std::uint32_t num_words_ = 0;
  union Words {
    Words() {}
    std::uint64_t inline_words[kInlineWords];
    std::uint64_t* heap;
  } words_;
};

}  // namespace bagdet

#endif  // BAGDET_UTIL_BITSET_H_
