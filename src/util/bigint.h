// bagdet: arbitrary-precision signed integers.
//
// Homomorphism counts manipulated by the determinacy pipeline grow like
// T^m (radix construction, Step 2 of Lemma 40) and like c^(k-1) (structure
// powers, Step 3), so 64-bit arithmetic is not an option anywhere on the
// decision path. BigInt is a plain value type: sign + magnitude.
//
// The magnitude has two representations. Values below 2^64 live inline in
// a single 64-bit word (`small_`) and never touch the heap — the DP join
// engine performs millions of `+=`/`*=` on counts that are usually tiny,
// and those stay allocation-free. Magnitudes of 2^64 and above spill into
// a little-endian base-2^32 limb vector; every operation re-compacts its
// result into the inline form whenever it fits, so the representation is
// canonical and memberwise comparison stays valid.
//
// Spilled arithmetic runs on the span kernels in util/limb_kernels.h:
// operands are viewed in place (`MagnitudeSpan`, no copy for either
// representation), results are computed into per-thread arena scratch and
// committed back through `CommitSpan`, which reuses the value's retained
// limb capacity. In steady state the multi-modular reconstruction loops
// (CRT folds, Wang reconstruction, Dixon combines) therefore perform zero
// heap allocations; the fused `MulAdd`/`MulSub` cover their dominant
// `x ± a*b` shape without materializing the product as a temporary.

#ifndef BAGDET_UTIL_BIGINT_H_
#define BAGDET_UTIL_BIGINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace bagdet {

namespace limb {
struct LimbSpan;
class ArenaScope;
}  // namespace limb

/// Arbitrary-precision signed integer.
///
/// Invariants: when `limbs_` is empty the magnitude is `small_`; otherwise
/// the magnitude is the little-endian base-2^32 value of `limbs_`, which
/// then has at least three limbs (>= 2^64), no trailing zero limbs, and
/// `small_` is zero. Zero is small with `negative_ == false`.
class BigInt {
 public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a native signed integer.
  BigInt(std::int64_t value)  // NOLINT(google-explicit-constructor)
      : negative_(value < 0),
        small_(value < 0 ? ~static_cast<std::uint64_t>(value) + 1
                         : static_cast<std::uint64_t>(value)) {}

  /// Parses a decimal string with optional leading '-'.
  /// Throws std::invalid_argument on malformed input.
  static BigInt FromString(std::string_view text);

  /// True iff the value is zero.
  bool IsZero() const { return limbs_.empty() && small_ == 0; }
  /// True iff the value is strictly negative.
  bool IsNegative() const { return negative_; }
  /// True iff the value is one.
  bool IsOne() const { return !negative_ && limbs_.empty() && small_ == 1; }

  /// -1, 0, or +1 according to the sign of the value.
  int Sign() const { return IsZero() ? 0 : (negative_ ? -1 : 1); }

  /// Number of bits in the magnitude (0 for zero).
  std::size_t BitLength() const;

  /// Returns the value as int64 if it fits, throws std::overflow_error
  /// otherwise.
  std::int64_t ToInt64() const;

  /// True iff the value fits in an int64.
  bool FitsInt64() const;

  /// Decimal representation.
  std::string ToString() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);
  BigInt& operator/=(const BigInt& other);  ///< Truncated (toward zero).
  BigInt& operator%=(const BigInt& other);  ///< Sign follows the dividend.

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator/(BigInt a, const BigInt& b) { return a /= b; }
  friend BigInt operator%(BigInt a, const BigInt& b) { return a %= b; }

  /// Quotient and remainder in one pass; remainder's sign follows `a`.
  /// Throws std::domain_error when `b` is zero.
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                     BigInt* remainder);

  /// Nonnegative greatest common divisor; Gcd(0, 0) == 0.
  static BigInt Gcd(BigInt a, BigInt b);

  /// Fused multiply-accumulate: `*this += a * b` without materializing the
  /// product as a temporary BigInt. This is the shape of the CRT residue
  /// fold (`x += t·M`) and of Wang reconstruction / Dixon residual updates
  /// (via MulSub); the product and sum run entirely in per-thread arena
  /// scratch. `a` or `b` may alias `*this`.
  BigInt& MulAdd(const BigInt& a, const BigInt& b);

  /// Fused multiply-subtract: `*this -= a * b`. `a` or `b` may alias
  /// `*this`.
  BigInt& MulSub(const BigInt& a, const BigInt& b);

  /// Residue of the value modulo a word-size modulus, always in [0, m):
  /// Mod(-3, 7) == 4. The modular linear-algebra fast path extracts one
  /// residue per prime from every matrix entry, so this walks the limbs
  /// directly instead of routing through a BigInt division. Requires
  /// 0 < m < 2^63; throws std::domain_error otherwise.
  std::uint64_t Mod(std::uint64_t m) const;

  /// In-place truncated division by a word-size divisor: *this becomes the
  /// quotient (rounded toward zero) and the magnitude of the remainder is
  /// returned (the remainder's sign follows the original dividend, as with
  /// operator%). The Dixon p-adic lifting loop divides whole residual
  /// vectors by a 62-bit prime on every iteration, so this walks the limbs
  /// once instead of routing through the general DivMod. Requires
  /// 0 < divisor < 2^63; throws std::domain_error otherwise.
  std::uint64_t DivModU64(std::uint64_t divisor);

  /// `base` raised to `exponent` (exponent >= 0). Pow(0, 0) == 1, matching
  /// the paper's convention 0^0 = 1.
  static BigInt Pow(const BigInt& base, std::uint64_t exponent);

  /// Floor of the k-th root of a nonnegative value (k >= 1), via Newton
  /// iteration with exact arithmetic. Throws std::domain_error for
  /// negative values or k == 0.
  static BigInt FloorKthRoot(const BigInt& value, std::uint64_t k);

  struct RootResult;
  /// The floor k-th root together with an exactness flag (`exact` is true
  /// iff `value` is a perfect k-th power).
  static RootResult KthRoot(const BigInt& value, std::uint64_t k);

  friend bool operator==(const BigInt& a, const BigInt& b) {
    // Canonical representation: equal values have equal members (small_ is
    // kept at zero in spilled mode).
    return a.negative_ == b.negative_ && a.small_ == b.small_ &&
           a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return !(a == b); }
  friend bool operator<(const BigInt& a, const BigInt& b);
  friend bool operator>(const BigInt& a, const BigInt& b) { return b < a; }
  friend bool operator<=(const BigInt& a, const BigInt& b) { return !(b < a); }
  friend bool operator>=(const BigInt& a, const BigInt& b) { return !(a < b); }

  friend std::ostream& operator<<(std::ostream& os, const BigInt& value);

  /// Hash suitable for unordered containers.
  std::size_t Hash() const;

 private:
  // True iff the magnitude lives inline in `small_`.
  bool IsSmall() const { return limbs_.empty(); }
  // Non-copying view of the magnitude in either representation. For the
  // inline form the caller's `inline_buf` backs the (<= 2 limb) span, so
  // the span is valid only while `inline_buf` and `*this` are.
  limb::LimbSpan MagnitudeSpan(std::uint32_t (&inline_buf)[2]) const;
  // Installs a trimmed-or-not span as the magnitude, compacting into
  // `small_` when it fits in 64 bits and otherwise reusing the retained
  // limb capacity. The span must not alias `limbs_`.
  void CommitSpan(limb::LimbSpan magnitude);
  // Re-canonicalizes `limbs_` after an in-place shrink (trim + fold into
  // `small_` when it fits). Never allocates.
  void CompactInPlace();
  // Signed accumulate over arena scratch: *this += sign * magnitude. The
  // magnitude span may alias `limbs_` (it is consumed before the commit).
  void AccumulateSigned(bool addend_negative, limb::LimbSpan magnitude,
                        limb::ArenaScope& scratch);
  // Shared core of MulAdd/MulSub.
  BigInt& MulAccumulate(const BigInt& a, const BigInt& b, bool subtract);
  // Installs a magnitude from an owned vector, compacting into `small_`
  // when it fits in 64 bits (the decimal-parse path).
  void SetMagnitude(std::vector<std::uint32_t> limbs);
  // this = |this| * multiplier + addend (magnitude only); the workhorse of
  // the chunked decimal parse.
  void MulAddSmallMagnitude(std::uint32_t multiplier, std::uint32_t addend);

  // Divides magnitude in place by a small divisor, returns the remainder.
  static std::uint32_t DivSmallInPlace(std::vector<std::uint32_t>* a,
                                       std::uint32_t divisor);

  bool negative_ = false;
  std::uint64_t small_ = 0;
  std::vector<std::uint32_t> limbs_;
};

/// Result of BigInt::KthRoot.
struct BigInt::RootResult {
  BigInt root;  ///< Floor of the k-th root.
  bool exact;   ///< True iff root^k equals the input exactly.
};

}  // namespace bagdet

namespace std {
template <>
struct hash<bagdet::BigInt> {
  std::size_t operator()(const bagdet::BigInt& value) const {
    return value.Hash();
  }
};
}  // namespace std

#endif  // BAGDET_UTIL_BIGINT_H_
