#include "util/exec_context.h"

#include <sstream>

namespace bagdet {
namespace {

// Target cadence for clock reads from sampled checkpoints. The stride
// doubles while samples land closer together than kTightenBelow and backs
// off when they drift past kRelaxAbove, so overshoot past a deadline stays
// on the order of kTightenBelow..kRelaxAbove regardless of per-iteration
// cost.
constexpr std::chrono::microseconds kTightenBelow{250};
constexpr std::chrono::milliseconds kRelaxAbove{4};
constexpr std::uint32_t kMaxStride = 1u << 16;

}  // namespace

const char* ExecCodeName(ExecCode code) {
  switch (code) {
    case ExecCode::kOk:
      return "ok";
    case ExecCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ExecCode::kCancelled:
      return "cancelled";
    case ExecCode::kResourceExhausted:
      return "resource_exhausted";
    case ExecCode::kOverloaded:
      return "overloaded";
    case ExecCode::kInvalidArgument:
      return "invalid_argument";
  }
  return "unknown";
}

std::string ExecStatus::ToString() const {
  if (ok()) return "ok";
  std::ostringstream os;
  os << ExecCodeName(code) << " in " << (kernel.empty() ? "?" : kernel)
     << " after " << elapsed_ms << " ms (" << bytes << " bytes charged)";
  return os.str();
}

void ExecContext::CheckNow(const char* kernel) {
  if (tripped()) {
    throw ExecInterrupted(status());
  }
  if (cancel_.load(std::memory_order_acquire)) {
    Trip(ExecCode::kCancelled, kernel);
  }
  if (deadline_armed_ && Clock::now() >= deadline_) {
    Trip(ExecCode::kDeadlineExceeded, kernel);
  }
}

void ExecContext::SampledCheck(const char* kernel,
                               exec_internal::ExecTlsState* tls) {
  const Clock::time_point now = Clock::now();
  const auto since = now - tls->last_sample;
  if (since < kTightenBelow) {
    if (tls->stride < kMaxStride) tls->stride *= 2;
  } else if (since > kRelaxAbove && tls->stride > 1) {
    tls->stride = tls->stride >= 8 ? tls->stride / 8 : 1;
  }
  tls->last_sample = now;
  tls->countdown = tls->stride;

  if (tripped()) {
    throw ExecInterrupted(status());
  }
  if (cancel_.load(std::memory_order_acquire)) {
    Trip(ExecCode::kCancelled, kernel);
  }
  if (deadline_armed_ && now >= deadline_) {
    Trip(ExecCode::kDeadlineExceeded, kernel);
  }
}

void ExecContext::MarkTripped(ExecCode code, const char* kernel) {
  std::lock_guard<std::mutex> lock(trip_mu_);
  int expected = 0;
  if (trip_code_.compare_exchange_strong(expected, static_cast<int>(code),
                                         std::memory_order_acq_rel)) {
    trip_kernel_ = kernel;
    trip_bytes_ = bytes_charged_.load(std::memory_order_relaxed);
    trip_elapsed_ms_ = elapsed_ms();
  }
}

void ExecContext::Trip(ExecCode code, const char* kernel) {
  MarkTripped(code, kernel);
  throw ExecInterrupted(status());
}

ExecStatus ExecContext::status() const {
  ExecStatus out;
  if (!tripped()) {
    out.bytes = bytes_charged();
    out.elapsed_ms = elapsed_ms();
    return out;
  }
  // The acquire load above pairs with the mutex-guarded record in
  // MarkTripped: taking trip_mu_ here guarantees the record is complete.
  std::lock_guard<std::mutex> lock(trip_mu_);
  out.code = static_cast<ExecCode>(trip_code_.load(std::memory_order_relaxed));
  out.kernel = trip_kernel_;
  out.bytes = trip_bytes_;
  out.elapsed_ms = trip_elapsed_ms_;
  return out;
}

}  // namespace bagdet
