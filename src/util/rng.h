// bagdet: deterministic random number generation for tests, generators and
// benchmarks. A fixed, seedable generator keeps property tests and random
// cross-validation reproducible across runs and platforms.

#ifndef BAGDET_UTIL_RNG_H_
#define BAGDET_UTIL_RNG_H_

#include <cstdint>

namespace bagdet {

/// xoshiro256** by Blackman & Vigna — small, fast, and fully deterministic
/// given a seed (unlike std::mt19937 distributions, whose output is
/// implementation-defined when consumed through <random> distributions).
class Rng {
 public:
  /// Seeds the state via splitmix64 so any seed (including 0) is usable.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& limb : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      limb = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    auto rotl = [](std::uint64_t v, int k) {
      return (v << k) | (v >> (64 - k));
    };
    std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Requires bound > 0.
  std::uint64_t Below(std::uint64_t bound) {
    // Debiased via rejection sampling on the top of the range.
    std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
      std::uint64_t value = Next();
      if (value >= threshold) return value % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw: true with probability numer/denom.
  bool Chance(std::uint64_t numer, std::uint64_t denom) {
    return Below(denom) < numer;
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace bagdet

#endif  // BAGDET_UTIL_RNG_H_
