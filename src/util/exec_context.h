// bagdet: governed execution — deadlines, cooperative cancellation, and
// byte-accounted memory budgets for the determinacy pipeline.
//
// The serving story (ROADMAP: always-on determinacy service) needs every
// unbounded kernel — the hom-count DP, the canonical search, the modular
// driver's per-prime fan-out, the Hilbert frontier — to stop cleanly when a
// request exceeds its limits, report *why* and *where*, and leave shared
// state (StructurePool, HomCache) consistent. ExecContext is that contract:
//
//   ExecContext exec(ExecLimits{/*deadline_ms=*/50, /*max_memory_bytes=*/0});
//   GovernedDecision d = DecideBagDeterminacyGoverned(views, q, {}, exec);
//   if (!d.status.ok()) { /* d.status.code says kDeadlineExceeded/... */ }
//
// Mechanics. The current context is carried in a thread-local slot
// (installed by ExecScope, propagated into ThreadPool::ParallelFor
// workers), and kernels call the free function ExecCheckPoint("kernel") at
// loop boundaries. The ungoverned fast path is a TLS load plus a null
// check; the governed fast path additionally decrements a countdown, and
// only when it hits zero reads the clock. The countdown stride adapts so
// the clock is consulted roughly once per millisecond regardless of how
// hot the loop is, which bounds deadline overshoot by about the sampling
// interval. Memory is accounted explicitly: kernels Charge()/Release()
// bytes they materialize (ScopedCharge ties the release to scope exit),
// and a charge that pushes the total past the budget trips the context.
//
// A tripped context throws ExecInterrupted from the checkpoint. The
// exception unwinds through the kernels exactly like the first-exception
// propagation ParallelFor already implements, and is converted back into a
// typed ExecStatus at the governed API boundary (RunGoverned). When no
// limit trips, governed runs are bit-identical to ungoverned ones: the
// checkpoints have no side effects.

#ifndef BAGDET_UTIL_EXEC_CONTEXT_H_
#define BAGDET_UTIL_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

namespace bagdet {

/// Why a governed computation stopped. kOverloaded and kInvalidArgument are
/// never produced by ExecContext itself: they are the serving layer's typed
/// declines (admission-queue shedding and malformed-request rejection,
/// src/serve/service.h), sharing this enum so one status type describes
/// every request outcome end to end.
enum class ExecCode {
  kOk = 0,
  kDeadlineExceeded = 1,
  kCancelled = 2,
  kResourceExhausted = 3,
  kOverloaded = 4,
  kInvalidArgument = 5,
};

/// Stable lowercase name ("ok", "deadline_exceeded", ...).
const char* ExecCodeName(ExecCode code);

/// Outcome of a governed computation: which limit tripped (if any), the
/// kernel that hit it, and the charged bytes / elapsed time at trip time.
struct ExecStatus {
  ExecCode code = ExecCode::kOk;
  std::string kernel;           ///< Checkpoint site that tripped ("" if ok).
  std::uint64_t bytes = 0;      ///< Bytes charged at trip time.
  double elapsed_ms = 0.0;      ///< Elapsed wall time at trip time.

  bool ok() const { return code == ExecCode::kOk; }
  std::string ToString() const;
};

/// Request limits. Zero means "no limit" for either knob.
struct ExecLimits {
  std::uint64_t deadline_ms = 0;        ///< Wall-clock budget from creation.
  std::uint64_t max_memory_bytes = 0;   ///< Charged-byte budget.
};

/// Internal unwind signal thrown by checkpoints of a tripped context and
/// converted back into an ExecStatus at the governed API boundary. Kernels
/// must let it pass (no catch(...) that swallows it).
class ExecInterrupted : public std::exception {
 public:
  explicit ExecInterrupted(ExecStatus status)
      : status_(std::move(status)), message_(status_.ToString()) {}
  const ExecStatus& status() const { return status_; }
  const char* what() const noexcept override { return message_.c_str(); }

 private:
  ExecStatus status_;
  std::string message_;
};

class ExecContext;

namespace exec_internal {

/// Per-thread checkpoint state: the installed context plus the adaptive
/// sampling countdown. Constant-initialized so the TLS access compiles to
/// a plain load (no guard).
struct ExecTlsState {
  ExecContext* ctx = nullptr;
  std::uint32_t countdown = 0;  ///< Checkpoints left before a clock read.
  std::uint32_t stride = 1;     ///< Current sampling stride.
  std::chrono::steady_clock::time_point last_sample{};
};

inline thread_local ExecTlsState g_exec_tls;

}  // namespace exec_internal

/// One governed request: deadline + cancellation token + memory budget.
/// Thread-safe: many workers may checkpoint/charge against one context.
/// The first limit to trip wins and is what status() reports.
class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  ExecContext() : ExecContext(ExecLimits{}) {}
  explicit ExecContext(const ExecLimits& limits)
      : limits_(limits),
        start_(Clock::now()),
        deadline_armed_(limits.deadline_ms != 0),
        deadline_(start_ + std::chrono::milliseconds(limits.deadline_ms)) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Cooperative cancellation: the next checkpoint on any thread running
  /// under this context trips kCancelled. Safe from any thread.
  void RequestCancel() { cancel_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_acquire);
  }

  /// Accounts `bytes` against the memory budget; trips kResourceExhausted
  /// (throwing ExecInterrupted) when the running total exceeds it. The
  /// bytes stay charged even on a trip so status() reports the footprint.
  void Charge(std::uint64_t bytes, const char* kernel) {
    const std::uint64_t total =
        bytes_charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limits_.max_memory_bytes != 0 && total > limits_.max_memory_bytes) {
      Trip(ExecCode::kResourceExhausted, kernel);
    }
  }
  void Release(std::uint64_t bytes) {
    bytes_charged_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  std::uint64_t bytes_charged() const {
    return bytes_charged_.load(std::memory_order_relaxed);
  }

  /// Forced check (always reads the clock). For coarse boundaries — once
  /// per CRT prime fold, per search branch — where a checkpoint is cheap
  /// relative to the work and prompt trips are wanted.
  void CheckNow(const char* kernel);

  /// Sampled check driven by ExecCheckPoint's countdown; adapts the stride
  /// toward ~1ms between clock reads. Public only for ExecCheckPoint.
  void SampledCheck(const char* kernel, exec_internal::ExecTlsState* tls);

  /// True once any limit tripped (or MarkTripped was called).
  bool tripped() const {
    return trip_code_.load(std::memory_order_acquire) != 0;
  }

  /// Records a trip without throwing — used at the governed boundary to
  /// fold a native std::bad_alloc into kResourceExhausted. First trip wins.
  void MarkTripped(ExecCode code, const char* kernel);

  /// Current status: the recorded trip, or kOk with live bytes/elapsed.
  ExecStatus status() const;

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  const ExecLimits& limits() const { return limits_; }

 private:
  /// Records the trip (first one wins) and throws ExecInterrupted.
  [[noreturn]] void Trip(ExecCode code, const char* kernel);

  const ExecLimits limits_;
  const Clock::time_point start_;
  const bool deadline_armed_;
  const Clock::time_point deadline_;

  std::atomic<bool> cancel_{false};
  std::atomic<std::uint64_t> bytes_charged_{0};

  std::atomic<int> trip_code_{0};  // ExecCode of the first trip; 0 = none.
  mutable std::mutex trip_mu_;     // Guards the trip record below.
  const char* trip_kernel_ = "";
  std::uint64_t trip_bytes_ = 0;
  double trip_elapsed_ms_ = 0.0;
};

/// The context governing the current thread, or nullptr when ungoverned.
inline ExecContext* CurrentExecContext() {
  return exec_internal::g_exec_tls.ctx;
}

/// Checkpoint at a kernel loop boundary. Ungoverned: a TLS load and a null
/// check. Governed: observes cancellation on every call (one acquire load,
/// so a RequestCancel lands at the very next checkpoint regardless of the
/// sampling stride), then decrements the sampling countdown and consults
/// the clock only when it expires; throws ExecInterrupted once the
/// context's deadline passes, cancellation is requested, or any limit
/// already tripped elsewhere. `kernel` must be a string literal (stored by
/// pointer in the trip record).
inline void ExecCheckPoint(const char* kernel) {
  exec_internal::ExecTlsState& tls = exec_internal::g_exec_tls;
  if (tls.ctx == nullptr) return;
  if (tls.ctx->cancel_requested()) tls.ctx->CheckNow(kernel);
  if (tls.countdown != 0) {
    --tls.countdown;
    return;
  }
  tls.ctx->SampledCheck(kernel, &tls);
}

/// RAII: installs `ctx` as the current thread's context (nullptr is valid
/// and means "ungoverned"), restoring the previous state on destruction.
/// ThreadPool::ParallelFor installs the caller's context in every worker
/// lane automatically.
class ExecScope {
 public:
  explicit ExecScope(ExecContext* ctx) : saved_(exec_internal::g_exec_tls) {
    exec_internal::ExecTlsState& tls = exec_internal::g_exec_tls;
    tls.ctx = ctx;
    tls.countdown = 0;  // First checkpoint under the new scope samples.
    tls.stride = 1;
    tls.last_sample = {};
  }
  ~ExecScope() { exec_internal::g_exec_tls = saved_; }

  ExecScope(const ExecScope&) = delete;
  ExecScope& operator=(const ExecScope&) = delete;

 private:
  exec_internal::ExecTlsState saved_;
};

/// RAII for transient kernel memory (DP tables, CRT residue pools, Hilbert
/// grids): Update(total) charges growth / releases shrinkage against the
/// current context, and the destructor releases whatever is still held —
/// including during an ExecInterrupted unwind, so a tripped request does
/// not leave phantom bytes charged. No-op when ungoverned.
class ScopedCharge {
 public:
  explicit ScopedCharge(const char* kernel)
      : ctx_(CurrentExecContext()), kernel_(kernel) {}
  ~ScopedCharge() {
    if (ctx_ != nullptr && bytes_ != 0) ctx_->Release(bytes_);
  }

  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  /// Sets the held total to `bytes`. A growing update may throw
  /// ExecInterrupted (budget exceeded); the new total is recorded first so
  /// the destructor releases exactly what was charged.
  void Update(std::uint64_t bytes) {
    if (ctx_ == nullptr || bytes == bytes_) return;
    if (bytes > bytes_) {
      const std::uint64_t delta = bytes - bytes_;
      bytes_ = bytes;
      ctx_->Charge(delta, kernel_);
    } else {
      ctx_->Release(bytes_ - bytes);
      bytes_ = bytes;
    }
  }

  std::uint64_t held() const { return bytes_; }

 private:
  ExecContext* ctx_;
  const char* kernel_;
  std::uint64_t bytes_ = 0;
};

/// Boundary adapter: runs `fn` under `ctx`, converting an ExecInterrupted
/// unwind (or a native std::bad_alloc) into a typed status. Returns fn()'s
/// value and kOk, or nullopt with the trip status.
template <typename Fn>
auto RunGoverned(ExecContext& ctx, ExecStatus* status, Fn&& fn)
    -> std::optional<decltype(fn())> {
  ExecScope scope(&ctx);
  try {
    auto value = std::forward<Fn>(fn)();
    *status = ExecStatus{};
    return value;
  } catch (const ExecInterrupted& interrupted) {
    *status = interrupted.status();
    return std::nullopt;
  } catch (const std::bad_alloc&) {
    ctx.MarkTripped(ExecCode::kResourceExhausted, "alloc");
    *status = ctx.status();
    return std::nullopt;
  }
}

}  // namespace bagdet

#endif  // BAGDET_UTIL_EXEC_CONTEXT_H_
