// bagdet: shared hash-combining primitive.
//
// One home for the boost-style 64-bit mix used by color refinement,
// canonical-certificate assembly, and the Hilbert layer's count-vector
// fingerprints, so the mixing shape cannot silently diverge between them.

#ifndef BAGDET_UTIL_HASH_H_
#define BAGDET_UTIL_HASH_H_

#include <cstdint>

namespace bagdet {

/// Combines `v` into the running hash `h` (order-sensitive).
inline std::uint64_t MixHash(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace bagdet

#endif  // BAGDET_UTIL_HASH_H_
