#include "util/bigint.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <stdexcept>

namespace bagdet {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}  // namespace

BigInt::BigInt(std::int64_t value) {
  if (value == 0) return;
  negative_ = value < 0;
  // Avoid UB on INT64_MIN by negating in unsigned space.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  limbs_.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffu));
  if (magnitude >> 32) limbs_.push_back(static_cast<std::uint32_t>(magnitude >> 32));
}

BigInt BigInt::FromString(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt: empty string");
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) throw std::invalid_argument("BigInt: no digits");
  BigInt result;
  const BigInt ten(10);
  for (; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      throw std::invalid_argument("BigInt: bad digit in input");
    }
    result *= ten;
    result += BigInt(text[i] - '0');
  }
  if (negative && !result.IsZero()) result.negative_ = true;
  return result;
}

std::size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  std::uint64_t magnitude =
      (static_cast<std::uint64_t>(limbs_[1]) << 32) | limbs_[0];
  if (negative_) return magnitude <= (1ull << 63);
  return magnitude < (1ull << 63);
}

std::int64_t BigInt::ToInt64() const {
  if (!FitsInt64()) throw std::overflow_error("BigInt: does not fit in int64");
  std::uint64_t magnitude = 0;
  if (!limbs_.empty()) magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (negative_) return static_cast<std::int64_t>(~magnitude + 1);
  return static_cast<std::int64_t>(magnitude);
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  std::vector<std::uint32_t> magnitude = limbs_;
  std::string digits;
  while (!magnitude.empty()) {
    std::uint32_t remainder = DivSmallInPlace(&magnitude, 1000000000u);
    // All chunks except the most significant are zero-padded to 9 digits.
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.IsZero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

int BigInt::CompareMagnitude(const std::vector<std::uint32_t>& a,
                             const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::AddMagnitude(std::vector<std::uint32_t>* a,
                          const std::vector<std::uint32_t>& b) {
  if (a->size() < b.size()) a->resize(b.size(), 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < a->size(); ++i) {
    std::uint64_t sum = carry + (*a)[i] + (i < b.size() ? b[i] : 0);
    (*a)[i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  if (carry != 0) a->push_back(static_cast<std::uint32_t>(carry));
}

void BigInt::SubMagnitude(std::vector<std::uint32_t>* a,
                          const std::vector<std::uint32_t>& b) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a->size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>((*a)[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    (*a)[i] = static_cast<std::uint32_t>(diff);
  }
  while (!a->empty() && a->back() == 0) a->pop_back();
}

namespace {

/// Limb count below which schoolbook multiplication beats Karatsuba's
/// bookkeeping.
constexpr std::size_t kKaratsubaThreshold = 32;

std::vector<std::uint32_t> MulSchoolbook(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> result(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = result[i + j] +
                          static_cast<std::uint64_t>(a[i]) * b[j] + carry;
      result[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = result[k] + carry;
      result[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

// Adds `b` into `a` starting at limb offset `shift` (a is large enough).
void AddInto(std::vector<std::uint32_t>* a, const std::vector<std::uint32_t>& b,
             std::size_t shift) {
  std::uint64_t carry = 0;
  std::size_t i = 0;
  for (; i < b.size(); ++i) {
    std::uint64_t sum = carry + (*a)[shift + i] + b[i];
    (*a)[shift + i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  while (carry != 0) {
    std::uint64_t sum = carry + (*a)[shift + i];
    (*a)[shift + i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
    ++i;
  }
}

// Subtracts `b` from `a` in place; requires a >= b as magnitudes.
void SubInto(std::vector<std::uint32_t>* a,
             const std::vector<std::uint32_t>& b) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a->size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>((*a)[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(1ll << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    (*a)[i] = static_cast<std::uint32_t>(diff);
  }
  while (!a->empty() && a->back() == 0) a->pop_back();
}

std::vector<std::uint32_t> MulKaratsuba(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return MulSchoolbook(a, b);
  }
  // Split at half the longer operand: x = x1·B^m + x0.
  const std::size_t m = std::max(a.size(), b.size()) / 2;
  auto split = [m](const std::vector<std::uint32_t>& v) {
    std::vector<std::uint32_t> low(v.begin(),
                                   v.begin() + static_cast<std::ptrdiff_t>(
                                                   std::min(m, v.size())));
    std::vector<std::uint32_t> high(
        v.size() > m ? v.begin() + static_cast<std::ptrdiff_t>(m) : v.end(),
        v.end());
    while (!low.empty() && low.back() == 0) low.pop_back();
    return std::make_pair(std::move(low), std::move(high));
  };
  auto [a0, a1] = split(a);
  auto [b0, b1] = split(b);
  std::vector<std::uint32_t> z0 = MulKaratsuba(a0, b0);
  std::vector<std::uint32_t> z2 = MulKaratsuba(a1, b1);
  // z1 = (a0+a1)(b0+b1) - z0 - z2.
  std::vector<std::uint32_t> a_sum = a0;
  a_sum.resize(std::max(a_sum.size(), a1.size()) + 1, 0);
  AddInto(&a_sum, a1, 0);
  while (!a_sum.empty() && a_sum.back() == 0) a_sum.pop_back();
  std::vector<std::uint32_t> b_sum = b0;
  b_sum.resize(std::max(b_sum.size(), b1.size()) + 1, 0);
  AddInto(&b_sum, b1, 0);
  while (!b_sum.empty() && b_sum.back() == 0) b_sum.pop_back();
  std::vector<std::uint32_t> z1 = MulKaratsuba(a_sum, b_sum);
  SubInto(&z1, z0);
  SubInto(&z1, z2);
  // result = z2·B^(2m) + z1·B^m + z0.
  std::vector<std::uint32_t> result(a.size() + b.size() + 1, 0);
  AddInto(&result, z0, 0);
  AddInto(&result, z1, m);
  AddInto(&result, z2, 2 * m);
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

}  // namespace

std::vector<std::uint32_t> BigInt::MulMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  return MulKaratsuba(a, b);
}

std::uint32_t BigInt::DivSmallInPlace(std::vector<std::uint32_t>* a,
                                      std::uint32_t divisor) {
  std::uint64_t remainder = 0;
  for (std::size_t i = a->size(); i-- > 0;) {
    std::uint64_t cur = (remainder << 32) | (*a)[i];
    (*a)[i] = static_cast<std::uint32_t>(cur / divisor);
    remainder = cur % divisor;
  }
  while (!a->empty() && a->back() == 0) a->pop_back();
  return static_cast<std::uint32_t>(remainder);
}

std::vector<std::uint32_t> BigInt::DivModMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b,
    std::vector<std::uint32_t>* remainder) {
  if (b.empty()) throw std::domain_error("BigInt: division by zero");
  if (CompareMagnitude(a, b) < 0) {
    *remainder = a;
    return {};
  }
  if (b.size() == 1) {
    std::vector<std::uint32_t> quotient = a;
    std::uint32_t small = DivSmallInPlace(&quotient, b[0]);
    remainder->clear();
    if (small != 0) remainder->push_back(small);
    return quotient;
  }
  // Knuth algorithm D with base 2^32.
  int shift = 0;
  for (std::uint32_t top = b.back(); top < 0x80000000u; top <<= 1) ++shift;
  auto shift_left = [shift](const std::vector<std::uint32_t>& v) {
    std::vector<std::uint32_t> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= shift == 0 ? v[i] : (v[i] << shift);
      if (shift != 0) out[i + 1] |= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(v[i]) >> (32 - shift));
    }
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  };
  std::vector<std::uint32_t> u = shift_left(a);
  std::vector<std::uint32_t> v = shift_left(b);
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n;
  u.resize(u.size() + 1, 0);
  std::vector<std::uint32_t> quotient(m + 1, 0);
  const std::uint64_t v_top = v[n - 1];
  const std::uint64_t v_next = n >= 2 ? v[n - 2] : 0;
  for (std::size_t j = m + 1; j-- > 0;) {
    std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t q_hat = numerator / v_top;
    std::uint64_t r_hat = numerator % v_top;
    while (q_hat >= kBase ||
           q_hat * v_next > ((r_hat << 32) | (n >= 2 ? u[j + n - 2] : 0))) {
      --q_hat;
      r_hat += v_top;
      if (r_hat >= kBase) break;
    }
    // Multiply-subtract q_hat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) - borrow -
                          static_cast<std::int64_t>(product & 0xffffffffu);
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t top_diff = static_cast<std::int64_t>(u[j + n]) - borrow -
                            static_cast<std::int64_t>(carry);
    if (top_diff < 0) {
      // q_hat was one too large: add v back once.
      top_diff += static_cast<std::int64_t>(kBase);
      --q_hat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = add_carry + u[i + j] + v[i];
        u[i + j] = static_cast<std::uint32_t>(sum & 0xffffffffu);
        add_carry = sum >> 32;
      }
      top_diff += static_cast<std::int64_t>(add_carry);
      top_diff &= 0xffffffff;
    }
    u[j + n] = static_cast<std::uint32_t>(top_diff);
    quotient[j] = static_cast<std::uint32_t>(q_hat);
  }
  // Un-normalize the remainder.
  u.resize(n);
  if (shift != 0) {
    for (std::size_t i = 0; i < u.size(); ++i) {
      u[i] >>= shift;
      if (i + 1 < u.size()) {
        u[i] |= u[i + 1] << (32 - shift);
      }
    }
  }
  while (!u.empty() && u.back() == 0) u.pop_back();
  *remainder = std::move(u);
  while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
  return quotient;
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  if (negative_ == other.negative_) {
    AddMagnitude(&limbs_, other.limbs_);
  } else {
    int cmp = CompareMagnitude(limbs_, other.limbs_);
    if (cmp == 0) {
      limbs_.clear();
      negative_ = false;
    } else if (cmp > 0) {
      SubMagnitude(&limbs_, other.limbs_);
    } else {
      std::vector<std::uint32_t> result = other.limbs_;
      SubMagnitude(&result, limbs_);
      limbs_ = std::move(result);
      negative_ = other.negative_;
    }
  }
  Trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  BigInt negated = other;
  if (!negated.IsZero()) negated.negative_ = !negated.negative_;
  return *this += negated;
}

BigInt& BigInt::operator*=(const BigInt& other) {
  negative_ = negative_ != other.negative_;
  limbs_ = MulMagnitude(limbs_, other.limbs_);
  Trim();
  return *this;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  BigInt q;
  BigInt r;
  q.limbs_ = DivModMagnitude(a.limbs_, b.limbs_, &r.limbs_);
  q.negative_ = !q.limbs_.empty() && (a.negative_ != b.negative_);
  r.negative_ = !r.limbs_.empty() && a.negative_;
  q.Trim();
  r.Trim();
  if (quotient != nullptr) *quotient = std::move(q);
  if (remainder != nullptr) *remainder = std::move(r);
}

BigInt& BigInt::operator/=(const BigInt& other) {
  BigInt quotient;
  DivMod(*this, other, &quotient, nullptr);
  return *this = std::move(quotient);
}

BigInt& BigInt::operator%=(const BigInt& other) {
  BigInt remainder;
  DivMod(*this, other, nullptr, &remainder);
  return *this = std::move(remainder);
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.IsZero()) {
    BigInt remainder = a % b;
    a = std::move(b);
    b = std::move(remainder);
  }
  return a;
}

BigInt BigInt::Pow(const BigInt& base, std::uint64_t exponent) {
  BigInt result(1);
  BigInt square = base;
  while (exponent != 0) {
    if (exponent & 1) result *= square;
    exponent >>= 1;
    if (exponent != 0) square *= square;
  }
  return result;
}

BigInt BigInt::FloorKthRoot(const BigInt& value, std::uint64_t k) {
  if (k == 0) throw std::domain_error("BigInt: 0th root");
  if (value.IsNegative()) throw std::domain_error("BigInt: root of negative");
  if (value.IsZero() || value.IsOne() || k == 1) return value;
  // Initial guess from the bit length: 2^ceil(bits/k) >= value^(1/k).
  std::size_t bits = value.BitLength();
  std::uint64_t guess_bits = (bits + k - 1) / k;
  BigInt x = Pow(BigInt(2), guess_bits);
  const BigInt k_big(static_cast<std::int64_t>(k));
  const BigInt k_minus_1(static_cast<std::int64_t>(k - 1));
  // Newton: x <- ((k-1)x + value / x^(k-1)) / k, monotonically decreasing
  // once above the root.
  for (;;) {
    BigInt x_pow = Pow(x, k - 1);
    BigInt next = (k_minus_1 * x + value / x_pow) / k_big;
    if (next >= x) break;
    x = std::move(next);
  }
  // Newton can land one too high for small inputs; fix up.
  while (Pow(x, k) > value) x -= BigInt(1);
  return x;
}

BigInt::RootResult BigInt::KthRoot(const BigInt& value, std::uint64_t k) {
  BigInt root = FloorKthRoot(value, k);
  bool exact = Pow(root, k) == value;
  return RootResult{std::move(root), exact};
}

bool operator<(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) return a.negative_;
  int cmp = BigInt::CompareMagnitude(a.limbs_, b.limbs_);
  return a.negative_ ? cmp > 0 : cmp < 0;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

std::size_t BigInt::Hash() const {
  std::size_t seed = negative_ ? 0x9e3779b97f4a7c15ull : 0;
  for (std::uint32_t limb : limbs_) {
    seed ^= limb + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  }
  return seed;
}

}  // namespace bagdet
