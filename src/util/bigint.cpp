#include "util/bigint.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <stdexcept>

#include "util/failpoint.h"

namespace bagdet {

namespace {

constexpr std::uint64_t kBase = 1ull << 32;

std::vector<std::uint32_t> LimbsFromU64(std::uint64_t value) {
  std::vector<std::uint32_t> limbs;
  if (value != 0) {
    limbs.push_back(static_cast<std::uint32_t>(value & 0xffffffffu));
    if (value >> 32) limbs.push_back(static_cast<std::uint32_t>(value >> 32));
  }
  return limbs;
}

}  // namespace

std::vector<std::uint32_t> BigInt::MagnitudeLimbs() const {
  return IsSmall() ? LimbsFromU64(small_) : limbs_;
}

void BigInt::SetMagnitude(std::vector<std::uint32_t> limbs) {
  while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
  if (limbs.size() <= 2) {
    small_ = limbs.empty() ? 0 : limbs[0];
    if (limbs.size() == 2) small_ |= static_cast<std::uint64_t>(limbs[1]) << 32;
    limbs_.clear();
  } else {
    // The limb spill is the single point where a result commits to heap
    // storage — the injection site modeling bignum allocation failure.
    BAGDET_FAILPOINT("bigint/alloc");
    small_ = 0;
    limbs_ = std::move(limbs);
  }
  if (IsZero()) negative_ = false;
}

void BigInt::MulAddSmallMagnitude(std::uint32_t multiplier,
                                  std::uint32_t addend) {
  if (IsSmall()) {
    unsigned __int128 value =
        static_cast<unsigned __int128>(small_) * multiplier + addend;
    if ((value >> 64) == 0) {
      small_ = static_cast<std::uint64_t>(value);
      return;
    }
  }
  std::vector<std::uint32_t> limbs = MagnitudeLimbs();
  std::uint64_t carry = addend;
  for (std::uint32_t& limb : limbs) {
    std::uint64_t cur = static_cast<std::uint64_t>(limb) * multiplier + carry;
    limb = static_cast<std::uint32_t>(cur & 0xffffffffu);
    carry = cur >> 32;
  }
  while (carry != 0) {
    limbs.push_back(static_cast<std::uint32_t>(carry & 0xffffffffu));
    carry >>= 32;
  }
  SetMagnitude(std::move(limbs));
}

BigInt BigInt::FromString(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt: empty string");
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) throw std::invalid_argument("BigInt: no digits");
  // Consume 9-digit chunks (the largest power of ten below 2^32), mirroring
  // ToString's base-10^9 scheme: one multiply-add per chunk instead of one
  // per digit.
  static constexpr std::uint32_t kPow10[10] = {
      1,      10,      100,      1000,      10000,
      100000, 1000000, 10000000, 100000000, 1000000000};
  BigInt result;
  while (i < text.size()) {
    const std::size_t chunk_len = std::min<std::size_t>(9, text.size() - i);
    std::uint32_t chunk = 0;
    for (std::size_t j = 0; j < chunk_len; ++j, ++i) {
      if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
        throw std::invalid_argument("BigInt: bad digit in input");
      }
      chunk = chunk * 10 + static_cast<std::uint32_t>(text[i] - '0');
    }
    result.MulAddSmallMagnitude(kPow10[chunk_len], chunk);
  }
  if (negative && !result.IsZero()) result.negative_ = true;
  return result;
}

std::size_t BigInt::BitLength() const {
  if (IsSmall()) {
    std::size_t bits = 0;
    for (std::uint64_t v = small_; v != 0; v >>= 1) ++bits;
    return bits;
  }
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::FitsInt64() const {
  if (!IsSmall()) return false;  // Spilled magnitudes are >= 2^64.
  if (negative_) return small_ <= (1ull << 63);
  return small_ < (1ull << 63);
}

std::int64_t BigInt::ToInt64() const {
  if (!FitsInt64()) throw std::overflow_error("BigInt: does not fit in int64");
  if (negative_) return static_cast<std::int64_t>(~small_ + 1);
  return static_cast<std::int64_t>(small_);
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  if (IsSmall()) {
    std::string digits = std::to_string(small_);
    return negative_ ? "-" + digits : digits;
  }
  std::vector<std::uint32_t> magnitude = limbs_;
  std::string digits;
  while (!magnitude.empty()) {
    std::uint32_t remainder = DivSmallInPlace(&magnitude, 1000000000u);
    // All chunks except the most significant are zero-padded to 9 digits.
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.IsZero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

int BigInt::CompareMagnitude(const std::vector<std::uint32_t>& a,
                             const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::AddMagnitude(std::vector<std::uint32_t>* a,
                          const std::vector<std::uint32_t>& b) {
  if (a->size() < b.size()) a->resize(b.size(), 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < a->size(); ++i) {
    std::uint64_t sum = carry + (*a)[i] + (i < b.size() ? b[i] : 0);
    (*a)[i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  if (carry != 0) a->push_back(static_cast<std::uint32_t>(carry));
}

void BigInt::SubMagnitude(std::vector<std::uint32_t>* a,
                          const std::vector<std::uint32_t>& b) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a->size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>((*a)[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    (*a)[i] = static_cast<std::uint32_t>(diff);
  }
  while (!a->empty() && a->back() == 0) a->pop_back();
}

namespace {

/// Limb count below which schoolbook multiplication beats Karatsuba's
/// bookkeeping.
constexpr std::size_t kKaratsubaThreshold = 32;

std::vector<std::uint32_t> MulSchoolbook(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> result(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = result[i + j] +
                          static_cast<std::uint64_t>(a[i]) * b[j] + carry;
      result[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = result[k] + carry;
      result[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

// Adds `b` into `a` starting at limb offset `shift` (a is large enough).
void AddInto(std::vector<std::uint32_t>* a, const std::vector<std::uint32_t>& b,
             std::size_t shift) {
  std::uint64_t carry = 0;
  std::size_t i = 0;
  for (; i < b.size(); ++i) {
    std::uint64_t sum = carry + (*a)[shift + i] + b[i];
    (*a)[shift + i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  while (carry != 0) {
    std::uint64_t sum = carry + (*a)[shift + i];
    (*a)[shift + i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
    ++i;
  }
}

// Subtracts `b` from `a` in place; requires a >= b as magnitudes.
void SubInto(std::vector<std::uint32_t>* a,
             const std::vector<std::uint32_t>& b) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a->size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>((*a)[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(1ll << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    (*a)[i] = static_cast<std::uint32_t>(diff);
  }
  while (!a->empty() && a->back() == 0) a->pop_back();
}

std::vector<std::uint32_t> MulKaratsuba(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return MulSchoolbook(a, b);
  }
  // Split at half the longer operand: x = x1·B^m + x0.
  const std::size_t m = std::max(a.size(), b.size()) / 2;
  auto split = [m](const std::vector<std::uint32_t>& v) {
    std::vector<std::uint32_t> low(v.begin(),
                                   v.begin() + static_cast<std::ptrdiff_t>(
                                                   std::min(m, v.size())));
    std::vector<std::uint32_t> high(
        v.size() > m ? v.begin() + static_cast<std::ptrdiff_t>(m) : v.end(),
        v.end());
    while (!low.empty() && low.back() == 0) low.pop_back();
    return std::make_pair(std::move(low), std::move(high));
  };
  auto [a0, a1] = split(a);
  auto [b0, b1] = split(b);
  std::vector<std::uint32_t> z0 = MulKaratsuba(a0, b0);
  std::vector<std::uint32_t> z2 = MulKaratsuba(a1, b1);
  // z1 = (a0+a1)(b0+b1) - z0 - z2.
  std::vector<std::uint32_t> a_sum = a0;
  a_sum.resize(std::max(a_sum.size(), a1.size()) + 1, 0);
  AddInto(&a_sum, a1, 0);
  while (!a_sum.empty() && a_sum.back() == 0) a_sum.pop_back();
  std::vector<std::uint32_t> b_sum = b0;
  b_sum.resize(std::max(b_sum.size(), b1.size()) + 1, 0);
  AddInto(&b_sum, b1, 0);
  while (!b_sum.empty() && b_sum.back() == 0) b_sum.pop_back();
  std::vector<std::uint32_t> z1 = MulKaratsuba(a_sum, b_sum);
  SubInto(&z1, z0);
  SubInto(&z1, z2);
  // result = z2·B^(2m) + z1·B^m + z0.
  std::vector<std::uint32_t> result(a.size() + b.size() + 1, 0);
  AddInto(&result, z0, 0);
  AddInto(&result, z1, m);
  AddInto(&result, z2, 2 * m);
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

}  // namespace

std::vector<std::uint32_t> BigInt::MulMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  return MulKaratsuba(a, b);
}

std::uint32_t BigInt::DivSmallInPlace(std::vector<std::uint32_t>* a,
                                      std::uint32_t divisor) {
  std::uint64_t remainder = 0;
  for (std::size_t i = a->size(); i-- > 0;) {
    std::uint64_t cur = (remainder << 32) | (*a)[i];
    (*a)[i] = static_cast<std::uint32_t>(cur / divisor);
    remainder = cur % divisor;
  }
  while (!a->empty() && a->back() == 0) a->pop_back();
  return static_cast<std::uint32_t>(remainder);
}

std::vector<std::uint32_t> BigInt::DivModMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b,
    std::vector<std::uint32_t>* remainder) {
  if (b.empty()) throw std::domain_error("BigInt: division by zero");
  if (CompareMagnitude(a, b) < 0) {
    *remainder = a;
    return {};
  }
  if (b.size() == 1) {
    std::vector<std::uint32_t> quotient = a;
    std::uint32_t small = DivSmallInPlace(&quotient, b[0]);
    remainder->clear();
    if (small != 0) remainder->push_back(small);
    return quotient;
  }
  // Knuth algorithm D with base 2^32.
  int shift = 0;
  for (std::uint32_t top = b.back(); top < 0x80000000u; top <<= 1) ++shift;
  auto shift_left = [shift](const std::vector<std::uint32_t>& v) {
    std::vector<std::uint32_t> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= shift == 0 ? v[i] : (v[i] << shift);
      if (shift != 0) out[i + 1] |= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(v[i]) >> (32 - shift));
    }
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  };
  std::vector<std::uint32_t> u = shift_left(a);
  std::vector<std::uint32_t> v = shift_left(b);
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n;
  u.resize(u.size() + 1, 0);
  std::vector<std::uint32_t> quotient(m + 1, 0);
  const std::uint64_t v_top = v[n - 1];
  const std::uint64_t v_next = n >= 2 ? v[n - 2] : 0;
  for (std::size_t j = m + 1; j-- > 0;) {
    std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t q_hat = numerator / v_top;
    std::uint64_t r_hat = numerator % v_top;
    while (q_hat >= kBase ||
           q_hat * v_next > ((r_hat << 32) | (n >= 2 ? u[j + n - 2] : 0))) {
      --q_hat;
      r_hat += v_top;
      if (r_hat >= kBase) break;
    }
    // Multiply-subtract q_hat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) - borrow -
                          static_cast<std::int64_t>(product & 0xffffffffu);
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t top_diff = static_cast<std::int64_t>(u[j + n]) - borrow -
                            static_cast<std::int64_t>(carry);
    if (top_diff < 0) {
      // q_hat was one too large: add v back once.
      top_diff += static_cast<std::int64_t>(kBase);
      --q_hat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = add_carry + u[i + j] + v[i];
        u[i + j] = static_cast<std::uint32_t>(sum & 0xffffffffu);
        add_carry = sum >> 32;
      }
      top_diff += static_cast<std::int64_t>(add_carry);
      top_diff &= 0xffffffff;
    }
    u[j + n] = static_cast<std::uint32_t>(top_diff);
    quotient[j] = static_cast<std::uint32_t>(q_hat);
  }
  // Un-normalize the remainder.
  u.resize(n);
  if (shift != 0) {
    for (std::size_t i = 0; i < u.size(); ++i) {
      u[i] >>= shift;
      if (i + 1 < u.size()) {
        u[i] |= u[i + 1] << (32 - shift);
      }
    }
  }
  while (!u.empty() && u.back() == 0) u.pop_back();
  *remainder = std::move(u);
  while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
  return quotient;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  if (IsSmall() && other.IsSmall()) {
    if (negative_ == other.negative_) {
      std::uint64_t sum = small_ + other.small_;
      if (sum >= small_) {  // No wraparound: result still fits inline.
        small_ = sum;
        return *this;
      }
      // Carry out of 64 bits: spill to three limbs (2^64 + sum).
      limbs_ = {static_cast<std::uint32_t>(sum & 0xffffffffu),
                static_cast<std::uint32_t>(sum >> 32), 1u};
      small_ = 0;
      return *this;
    }
    if (small_ >= other.small_) {
      small_ -= other.small_;
      if (small_ == 0) negative_ = false;
    } else {
      small_ = other.small_ - small_;
      negative_ = other.negative_;
    }
    return *this;
  }
  std::vector<std::uint32_t> a = MagnitudeLimbs();
  const std::vector<std::uint32_t> b = other.MagnitudeLimbs();
  if (negative_ == other.negative_) {
    AddMagnitude(&a, b);
  } else {
    int cmp = CompareMagnitude(a, b);
    if (cmp == 0) {
      a.clear();
      negative_ = false;
    } else if (cmp > 0) {
      SubMagnitude(&a, b);
    } else {
      std::vector<std::uint32_t> result = b;
      SubMagnitude(&result, a);
      a = std::move(result);
      negative_ = other.negative_;
    }
  }
  SetMagnitude(std::move(a));
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  // a - b == -(-a + b); the transient sign flip on `this` is safe because
  // += only reads the other operand's sign once up front.
  if (this == &other) return *this = BigInt();
  if (!IsZero()) negative_ = !negative_;
  *this += other;
  if (!IsZero()) negative_ = !negative_;
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& other) {
  const bool result_negative = negative_ != other.negative_;
  if (IsSmall() && other.IsSmall()) {
    unsigned __int128 product =
        static_cast<unsigned __int128>(small_) * other.small_;
    if ((product >> 64) == 0) {
      small_ = static_cast<std::uint64_t>(product);
      negative_ = small_ != 0 && result_negative;
      return *this;
    }
    const std::uint64_t lo = static_cast<std::uint64_t>(product);
    const std::uint64_t hi = static_cast<std::uint64_t>(product >> 64);
    limbs_ = {static_cast<std::uint32_t>(lo & 0xffffffffu),
              static_cast<std::uint32_t>(lo >> 32),
              static_cast<std::uint32_t>(hi & 0xffffffffu)};
    if (hi >> 32) limbs_.push_back(static_cast<std::uint32_t>(hi >> 32));
    small_ = 0;
    negative_ = result_negative;
    return *this;
  }
  SetMagnitude(MulMagnitude(MagnitudeLimbs(), other.MagnitudeLimbs()));
  negative_ = !IsZero() && result_negative;
  return *this;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  if (b.IsZero()) throw std::domain_error("BigInt: division by zero");
  if (a.IsSmall() && b.IsSmall()) {
    BigInt q;
    BigInt r;
    q.small_ = a.small_ / b.small_;
    r.small_ = a.small_ % b.small_;
    q.negative_ = q.small_ != 0 && (a.negative_ != b.negative_);
    r.negative_ = r.small_ != 0 && a.negative_;
    if (quotient != nullptr) *quotient = std::move(q);
    if (remainder != nullptr) *remainder = std::move(r);
    return;
  }
  BigInt q;
  BigInt r;
  std::vector<std::uint32_t> rem;
  q.SetMagnitude(DivModMagnitude(a.MagnitudeLimbs(), b.MagnitudeLimbs(), &rem));
  r.SetMagnitude(std::move(rem));
  q.negative_ = !q.IsZero() && (a.negative_ != b.negative_);
  r.negative_ = !r.IsZero() && a.negative_;
  if (quotient != nullptr) *quotient = std::move(q);
  if (remainder != nullptr) *remainder = std::move(r);
}

BigInt& BigInt::operator/=(const BigInt& other) {
  BigInt quotient;
  DivMod(*this, other, &quotient, nullptr);
  return *this = std::move(quotient);
}

BigInt& BigInt::operator%=(const BigInt& other) {
  BigInt remainder;
  DivMod(*this, other, nullptr, &remainder);
  return *this = std::move(remainder);
}

std::uint64_t BigInt::Mod(std::uint64_t m) const {
  if (m == 0 || m >= (1ull << 63)) {
    throw std::domain_error("BigInt::Mod: modulus must be in (0, 2^63)");
  }
  std::uint64_t r;
  if (IsSmall()) {
    r = small_ % m;
  } else {
    // Little-endian base-2^32 limbs, folded high to low. r < m < 2^63, so
    // (r << 32 | limb) fits comfortably in 128 bits.
    r = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      unsigned __int128 acc =
          (static_cast<unsigned __int128>(r) << 32) | limbs_[i];
      r = static_cast<std::uint64_t>(acc % m);
    }
  }
  if (negative_ && r != 0) r = m - r;
  return r;
}

std::uint64_t BigInt::DivModU64(std::uint64_t divisor) {
  if (divisor == 0 || divisor >= (1ull << 63)) {
    throw std::domain_error("BigInt::DivModU64: divisor must be in (0, 2^63)");
  }
  std::uint64_t remainder;
  if (IsSmall()) {
    remainder = small_ % divisor;
    small_ /= divisor;
  } else {
    // Schoolbook short division over the base-2^32 limbs. The partial
    // dividend (remainder << 32 | limb) is below 2^95 and each quotient
    // limb below 2^32 because remainder < divisor.
    std::vector<std::uint32_t> limbs = std::move(limbs_);
    remainder = 0;
    for (std::size_t i = limbs.size(); i-- > 0;) {
      const unsigned __int128 cur =
          (static_cast<unsigned __int128>(remainder) << 32) | limbs[i];
      limbs[i] = static_cast<std::uint32_t>(cur / divisor);
      remainder = static_cast<std::uint64_t>(cur % divisor);
    }
    SetMagnitude(std::move(limbs));
  }
  if (IsZero()) negative_ = false;
  return remainder;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.IsZero()) {
    if (a.IsSmall() && b.IsSmall()) {
      std::uint64_t x = a.small_;
      std::uint64_t y = b.small_;
      while (y != 0) {
        std::uint64_t t = x % y;
        x = y;
        y = t;
      }
      a.small_ = x;
      return a;
    }
    BigInt remainder = a % b;
    a = std::move(b);
    b = std::move(remainder);
  }
  return a;
}

BigInt BigInt::Pow(const BigInt& base, std::uint64_t exponent) {
  BigInt result(1);
  BigInt square = base;
  while (exponent != 0) {
    if (exponent & 1) result *= square;
    exponent >>= 1;
    if (exponent != 0) square *= square;
  }
  return result;
}

BigInt BigInt::FloorKthRoot(const BigInt& value, std::uint64_t k) {
  if (k == 0) throw std::domain_error("BigInt: 0th root");
  if (value.IsNegative()) throw std::domain_error("BigInt: root of negative");
  if (value.IsZero() || value.IsOne() || k == 1) return value;
  // Initial guess from the bit length: 2^ceil(bits/k) >= value^(1/k).
  std::size_t bits = value.BitLength();
  std::uint64_t guess_bits = (bits + k - 1) / k;
  BigInt x = Pow(BigInt(2), guess_bits);
  const BigInt k_big(static_cast<std::int64_t>(k));
  const BigInt k_minus_1(static_cast<std::int64_t>(k - 1));
  // Newton: x <- ((k-1)x + value / x^(k-1)) / k, monotonically decreasing
  // once above the root.
  for (;;) {
    BigInt x_pow = Pow(x, k - 1);
    BigInt next = (k_minus_1 * x + value / x_pow) / k_big;
    if (next >= x) break;
    x = std::move(next);
  }
  // Newton can land one too high for small inputs; fix up.
  while (Pow(x, k) > value) x -= BigInt(1);
  return x;
}

BigInt::RootResult BigInt::KthRoot(const BigInt& value, std::uint64_t k) {
  BigInt root = FloorKthRoot(value, k);
  bool exact = Pow(root, k) == value;
  return RootResult{std::move(root), exact};
}

bool operator<(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) return a.negative_;
  int cmp;
  if (a.IsSmall() && b.IsSmall()) {
    cmp = a.small_ < b.small_ ? -1 : (a.small_ > b.small_ ? 1 : 0);
  } else if (a.IsSmall() != b.IsSmall()) {
    // A spilled magnitude is >= 2^64, beyond any inline one.
    cmp = a.IsSmall() ? -1 : 1;
  } else {
    cmp = BigInt::CompareMagnitude(a.limbs_, b.limbs_);
  }
  return a.negative_ ? cmp > 0 : cmp < 0;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

std::size_t BigInt::Hash() const {
  std::size_t seed = negative_ ? 0x9e3779b97f4a7c15ull : 0;
  auto mix = [&seed](std::uint64_t v) {
    seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  };
  if (IsSmall()) {
    mix(small_);
  } else {
    for (std::uint32_t limb : limbs_) mix(limb);
  }
  return seed;
}

}  // namespace bagdet
