#include "util/bigint.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <stdexcept>

#include "util/failpoint.h"
#include "util/limb_kernels.h"

namespace bagdet {

limb::LimbSpan BigInt::MagnitudeSpan(std::uint32_t (&inline_buf)[2]) const {
  if (!IsSmall()) return limb::LimbSpan{limbs_.data(), limbs_.size()};
  inline_buf[0] = static_cast<std::uint32_t>(small_ & 0xffffffffu);
  inline_buf[1] = static_cast<std::uint32_t>(small_ >> 32);
  const std::size_t size = small_ == 0 ? 0 : (small_ >> 32 ? 2 : 1);
  return limb::LimbSpan{inline_buf, size};
}

void BigInt::CommitSpan(limb::LimbSpan magnitude) {
  const std::size_t n = limb::Trim(magnitude.data, magnitude.size);
  if (n <= 2) {
    small_ = n == 0 ? 0 : magnitude[0];
    if (n == 2) small_ |= static_cast<std::uint64_t>(magnitude[1]) << 32;
    limbs_.clear();
  } else {
    // The limb spill is the single point where a result commits to heap
    // storage — the injection site modeling bignum allocation failure.
    BAGDET_FAILPOINT("bigint/alloc");
    if (limbs_.capacity() < n) limb::NoteHeapAlloc();
    limbs_.assign(magnitude.data, magnitude.data + n);
    small_ = 0;
  }
  if (IsZero()) negative_ = false;
}

void BigInt::CompactInPlace() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (!limbs_.empty() && limbs_.size() <= 2) {
    small_ = limbs_[0];
    if (limbs_.size() == 2) {
      small_ |= static_cast<std::uint64_t>(limbs_[1]) << 32;
    }
    limbs_.clear();
  }
  if (IsZero()) negative_ = false;
}

void BigInt::SetMagnitude(std::vector<std::uint32_t> limbs) {
  while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
  if (limbs.size() <= 2) {
    small_ = limbs.empty() ? 0 : limbs[0];
    if (limbs.size() == 2) small_ |= static_cast<std::uint64_t>(limbs[1]) << 32;
    limbs_.clear();
  } else {
    // The limb spill is the single point where a result commits to heap
    // storage — the injection site modeling bignum allocation failure.
    BAGDET_FAILPOINT("bigint/alloc");
    limb::NoteHeapAlloc();
    small_ = 0;
    limbs_ = std::move(limbs);
  }
  if (IsZero()) negative_ = false;
}

void BigInt::MulAddSmallMagnitude(std::uint32_t multiplier,
                                  std::uint32_t addend) {
  if (IsSmall()) {
    unsigned __int128 value =
        static_cast<unsigned __int128>(small_) * multiplier + addend;
    if ((value >> 64) == 0) {
      small_ = static_cast<std::uint64_t>(value);
      return;
    }
  }
  std::uint32_t buf[2];
  const limb::LimbSpan view = MagnitudeSpan(buf);
  std::vector<std::uint32_t> limbs(view.data, view.data + view.size);
  std::uint64_t carry = addend;
  for (std::uint32_t& limb : limbs) {
    std::uint64_t cur = static_cast<std::uint64_t>(limb) * multiplier + carry;
    limb = static_cast<std::uint32_t>(cur & 0xffffffffu);
    carry = cur >> 32;
  }
  while (carry != 0) {
    limbs.push_back(static_cast<std::uint32_t>(carry & 0xffffffffu));
    carry >>= 32;
  }
  SetMagnitude(std::move(limbs));
}

BigInt BigInt::FromString(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt: empty string");
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) throw std::invalid_argument("BigInt: no digits");
  // Consume 9-digit chunks (the largest power of ten below 2^32), mirroring
  // ToString's base-10^9 scheme: one multiply-add per chunk instead of one
  // per digit.
  static constexpr std::uint32_t kPow10[10] = {
      1,      10,      100,      1000,      10000,
      100000, 1000000, 10000000, 100000000, 1000000000};
  BigInt result;
  while (i < text.size()) {
    const std::size_t chunk_len = std::min<std::size_t>(9, text.size() - i);
    std::uint32_t chunk = 0;
    for (std::size_t j = 0; j < chunk_len; ++j, ++i) {
      if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
        throw std::invalid_argument("BigInt: bad digit in input");
      }
      chunk = chunk * 10 + static_cast<std::uint32_t>(text[i] - '0');
    }
    result.MulAddSmallMagnitude(kPow10[chunk_len], chunk);
  }
  if (negative && !result.IsZero()) result.negative_ = true;
  return result;
}

std::size_t BigInt::BitLength() const {
  if (IsSmall()) {
    std::size_t bits = 0;
    for (std::uint64_t v = small_; v != 0; v >>= 1) ++bits;
    return bits;
  }
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::FitsInt64() const {
  if (!IsSmall()) return false;  // Spilled magnitudes are >= 2^64.
  if (negative_) return small_ <= (1ull << 63);
  return small_ < (1ull << 63);
}

std::int64_t BigInt::ToInt64() const {
  if (!FitsInt64()) throw std::overflow_error("BigInt: does not fit in int64");
  if (negative_) return static_cast<std::int64_t>(~small_ + 1);
  return static_cast<std::int64_t>(small_);
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  if (IsSmall()) {
    std::string digits = std::to_string(small_);
    return negative_ ? "-" + digits : digits;
  }
  std::vector<std::uint32_t> magnitude = limbs_;
  std::string digits;
  while (!magnitude.empty()) {
    std::uint32_t remainder = DivSmallInPlace(&magnitude, 1000000000u);
    // All chunks except the most significant are zero-padded to 9 digits.
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  if (!result.IsZero()) result.negative_ = !result.negative_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

std::uint32_t BigInt::DivSmallInPlace(std::vector<std::uint32_t>* a,
                                      std::uint32_t divisor) {
  std::uint64_t remainder = 0;
  for (std::size_t i = a->size(); i-- > 0;) {
    std::uint64_t cur = (remainder << 32) | (*a)[i];
    (*a)[i] = static_cast<std::uint32_t>(cur / divisor);
    remainder = cur % divisor;
  }
  while (!a->empty() && a->back() == 0) a->pop_back();
  return static_cast<std::uint32_t>(remainder);
}

void BigInt::AccumulateSigned(bool addend_negative, limb::LimbSpan magnitude,
                              limb::ArenaScope& scratch) {
  if (magnitude.empty()) return;
  std::uint32_t sbuf[2];
  const limb::LimbSpan self = MagnitudeSpan(sbuf);
  if (negative_ == addend_negative) {
    std::uint32_t* dst =
        scratch.Alloc(std::max(self.size, magnitude.size) + 1);
    const std::size_t n = limb::AddInto(dst, self, magnitude);
    CommitSpan(limb::LimbSpan{dst, n});
    return;
  }
  const int cmp = limb::Compare(self, magnitude);
  if (cmp == 0) {
    small_ = 0;
    limbs_.clear();
    negative_ = false;
    return;
  }
  if (cmp > 0) {
    std::uint32_t* dst = scratch.Copy(self);
    const std::size_t n = limb::SubInPlace(dst, self.size, magnitude);
    CommitSpan(limb::LimbSpan{dst, n});
  } else {
    std::uint32_t* dst = scratch.Copy(magnitude);
    const std::size_t n = limb::SubInPlace(dst, magnitude.size, self);
    negative_ = addend_negative;
    CommitSpan(limb::LimbSpan{dst, n});
  }
}

BigInt& BigInt::operator+=(const BigInt& other) {
  if (IsSmall() && other.IsSmall()) {
    if (negative_ == other.negative_) {
      std::uint64_t sum = small_ + other.small_;
      if (sum >= small_) {  // No wraparound: result still fits inline.
        small_ = sum;
        return *this;
      }
      // Carry out of 64 bits: spill to three limbs (2^64 + sum).
      const std::uint32_t spill[3] = {
          static_cast<std::uint32_t>(sum & 0xffffffffu),
          static_cast<std::uint32_t>(sum >> 32), 1u};
      CommitSpan(limb::LimbSpan{spill, 3});
      return *this;
    }
    if (small_ >= other.small_) {
      small_ -= other.small_;
      if (small_ == 0) negative_ = false;
    } else {
      small_ = other.small_ - small_;
      negative_ = other.negative_;
    }
    return *this;
  }
  // Safe under self-addition: the other operand's span is only read before
  // the arena-scratch result is committed back into this object.
  std::uint32_t obuf[2];
  limb::ArenaScope scratch;
  AccumulateSigned(other.negative_, other.MagnitudeSpan(obuf), scratch);
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  if (this == &other) {
    small_ = 0;
    limbs_.clear();  // Keeps retained capacity.
    negative_ = false;
    return *this;
  }
  // a - b == -(-a + b); the transient sign flip on `this` is safe because
  // += only reads the other operand's sign once up front.
  if (!IsZero()) negative_ = !negative_;
  *this += other;
  if (!IsZero()) negative_ = !negative_;
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& other) {
  const bool result_negative = negative_ != other.negative_;
  if (IsSmall() && other.IsSmall()) {
    unsigned __int128 product =
        static_cast<unsigned __int128>(small_) * other.small_;
    if ((product >> 64) == 0) {
      small_ = static_cast<std::uint64_t>(product);
      negative_ = small_ != 0 && result_negative;
      return *this;
    }
    const std::uint64_t lo = static_cast<std::uint64_t>(product);
    const std::uint64_t hi = static_cast<std::uint64_t>(product >> 64);
    const std::uint32_t spill[4] = {static_cast<std::uint32_t>(lo & 0xffffffffu),
                                    static_cast<std::uint32_t>(lo >> 32),
                                    static_cast<std::uint32_t>(hi & 0xffffffffu),
                                    static_cast<std::uint32_t>(hi >> 32)};
    CommitSpan(limb::LimbSpan{spill, 4});
    negative_ = result_negative;  // Product is >= 2^64, never zero here.
    return *this;
  }
  std::uint32_t abuf[2];
  std::uint32_t bbuf[2];
  limb::ArenaScope scratch;
  const limb::LimbSpan a = MagnitudeSpan(abuf);
  const limb::LimbSpan b = other.MagnitudeSpan(bbuf);
  std::uint32_t* dst = scratch.Alloc(a.size + b.size);
  const std::size_t n = limb::MulInto(dst, a, b, scratch);
  CommitSpan(limb::LimbSpan{dst, n});
  negative_ = !IsZero() && result_negative;
  return *this;
}

BigInt& BigInt::MulAccumulate(const BigInt& a, const BigInt& b,
                              bool subtract) {
  if (a.IsZero() || b.IsZero()) return *this;
  const bool product_negative = (a.negative_ != b.negative_) != subtract;
  if (a.IsSmall() && b.IsSmall()) {
    const unsigned __int128 product =
        static_cast<unsigned __int128>(a.small_) * b.small_;
    if ((product >> 64) == 0) {
      BigInt term;
      term.small_ = static_cast<std::uint64_t>(product);
      term.negative_ = product_negative;
      return *this += term;
    }
  }
  // The product is computed into arena scratch before this object is
  // touched, so `a`/`b` aliasing `*this` is fine.
  std::uint32_t abuf[2];
  std::uint32_t bbuf[2];
  limb::ArenaScope scratch;
  const limb::LimbSpan sa = a.MagnitudeSpan(abuf);
  const limb::LimbSpan sb = b.MagnitudeSpan(bbuf);
  std::uint32_t* product = scratch.Alloc(sa.size + sb.size);
  const std::size_t n = limb::MulInto(product, sa, sb, scratch);
  AccumulateSigned(product_negative, limb::LimbSpan{product, n}, scratch);
  return *this;
}

BigInt& BigInt::MulAdd(const BigInt& a, const BigInt& b) {
  return MulAccumulate(a, b, /*subtract=*/false);
}

BigInt& BigInt::MulSub(const BigInt& a, const BigInt& b) {
  return MulAccumulate(a, b, /*subtract=*/true);
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  if (b.IsZero()) throw std::domain_error("BigInt: division by zero");
  if (a.IsSmall() && b.IsSmall()) {
    BigInt q;
    BigInt r;
    q.small_ = a.small_ / b.small_;
    r.small_ = a.small_ % b.small_;
    q.negative_ = q.small_ != 0 && (a.negative_ != b.negative_);
    r.negative_ = r.small_ != 0 && a.negative_;
    if (quotient != nullptr) *quotient = std::move(q);
    if (remainder != nullptr) *remainder = std::move(r);
    return;
  }
  // Both results land in arena scratch before either out-param is written,
  // so `quotient`/`remainder` may alias `a` or `b` (Rational::Normalize
  // divides values by their gcd in place through this).
  const bool q_negative = a.negative_ != b.negative_;
  const bool r_negative = a.negative_;
  std::uint32_t abuf[2];
  std::uint32_t bbuf[2];
  limb::ArenaScope scratch;
  const limb::DivModSpans parts =
      limb::DivMod(a.MagnitudeSpan(abuf), b.MagnitudeSpan(bbuf), scratch);
  if (quotient != nullptr) {
    quotient->CommitSpan(parts.quotient);
    quotient->negative_ = !quotient->IsZero() && q_negative;
  }
  if (remainder != nullptr) {
    remainder->CommitSpan(parts.remainder);
    remainder->negative_ = !remainder->IsZero() && r_negative;
  }
}

BigInt& BigInt::operator/=(const BigInt& other) {
  DivMod(*this, other, this, nullptr);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& other) {
  DivMod(*this, other, nullptr, this);
  return *this;
}

std::uint64_t BigInt::Mod(std::uint64_t m) const {
  if (m == 0 || m >= (1ull << 63)) {
    throw std::domain_error("BigInt::Mod: modulus must be in (0, 2^63)");
  }
  std::uint64_t r;
  if (IsSmall()) {
    r = small_ % m;
  } else {
    // Little-endian base-2^32 limbs, folded high to low. r < m < 2^63, so
    // (r << 32 | limb) fits comfortably in 128 bits.
    r = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      unsigned __int128 acc =
          (static_cast<unsigned __int128>(r) << 32) | limbs_[i];
      r = static_cast<std::uint64_t>(acc % m);
    }
  }
  if (negative_ && r != 0) r = m - r;
  return r;
}

std::uint64_t BigInt::DivModU64(std::uint64_t divisor) {
  if (divisor == 0 || divisor >= (1ull << 63)) {
    throw std::domain_error("BigInt::DivModU64: divisor must be in (0, 2^63)");
  }
  std::uint64_t remainder;
  if (IsSmall()) {
    remainder = small_ % divisor;
    small_ /= divisor;
  } else {
    // Schoolbook short division over the base-2^32 limbs, in place (the
    // Dixon lifting loop divides whole residual vectors by a 62-bit prime
    // on every iteration). The partial dividend (remainder << 32 | limb)
    // is below 2^95 and each quotient limb below 2^32 because
    // remainder < divisor.
    remainder = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const unsigned __int128 cur =
          (static_cast<unsigned __int128>(remainder) << 32) | limbs_[i];
      limbs_[i] = static_cast<std::uint32_t>(cur / divisor);
      remainder = static_cast<std::uint64_t>(cur % divisor);
    }
    CompactInPlace();
  }
  if (IsZero()) negative_ = false;
  return remainder;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  BigInt spare;  // Rotates through the remainder slot to recycle capacity.
  while (!b.IsZero()) {
    if (a.IsSmall() && b.IsSmall()) {
      std::uint64_t x = a.small_;
      std::uint64_t y = b.small_;
      while (y != 0) {
        std::uint64_t t = x % y;
        x = y;
        y = t;
      }
      a.small_ = x;
      return a;
    }
    {
      std::uint32_t abuf[2];
      std::uint32_t bbuf[2];
      limb::ArenaScope scratch;
      const limb::DivModSpans parts =
          limb::DivMod(a.MagnitudeSpan(abuf), b.MagnitudeSpan(bbuf), scratch);
      spare.CommitSpan(parts.remainder);
    }
    std::swap(a, b);      // a <- old b.
    std::swap(b, spare);  // b <- remainder; spare <- old a (buffer reuse).
  }
  return a;
}

BigInt BigInt::Pow(const BigInt& base, std::uint64_t exponent) {
  BigInt result(1);
  BigInt square = base;
  while (exponent != 0) {
    if (exponent & 1) result *= square;
    exponent >>= 1;
    if (exponent != 0) square *= square;
  }
  return result;
}

BigInt BigInt::FloorKthRoot(const BigInt& value, std::uint64_t k) {
  if (k == 0) throw std::domain_error("BigInt: 0th root");
  if (value.IsNegative()) throw std::domain_error("BigInt: root of negative");
  if (value.IsZero() || value.IsOne() || k == 1) return value;
  // Initial guess from the bit length: 2^ceil(bits/k) >= value^(1/k).
  std::size_t bits = value.BitLength();
  std::uint64_t guess_bits = (bits + k - 1) / k;
  BigInt x = Pow(BigInt(2), guess_bits);
  const BigInt k_big(static_cast<std::int64_t>(k));
  const BigInt k_minus_1(static_cast<std::int64_t>(k - 1));
  // Newton: x <- ((k-1)x + value / x^(k-1)) / k, monotonically decreasing
  // once above the root.
  for (;;) {
    BigInt x_pow = Pow(x, k - 1);
    BigInt next = (k_minus_1 * x + value / x_pow) / k_big;
    if (next >= x) break;
    x = std::move(next);
  }
  // Newton can land one too high for small inputs; fix up.
  while (Pow(x, k) > value) x -= BigInt(1);
  return x;
}

BigInt::RootResult BigInt::KthRoot(const BigInt& value, std::uint64_t k) {
  BigInt root = FloorKthRoot(value, k);
  bool exact = Pow(root, k) == value;
  return RootResult{std::move(root), exact};
}

bool operator<(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) return a.negative_;
  int cmp;
  if (a.IsSmall() && b.IsSmall()) {
    cmp = a.small_ < b.small_ ? -1 : (a.small_ > b.small_ ? 1 : 0);
  } else if (a.IsSmall() != b.IsSmall()) {
    // A spilled magnitude is >= 2^64, beyond any inline one.
    cmp = a.IsSmall() ? -1 : 1;
  } else {
    cmp = limb::Compare(limb::LimbSpan{a.limbs_.data(), a.limbs_.size()},
                        limb::LimbSpan{b.limbs_.data(), b.limbs_.size()});
  }
  return a.negative_ ? cmp > 0 : cmp < 0;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

std::size_t BigInt::Hash() const {
  std::size_t seed = negative_ ? 0x9e3779b97f4a7c15ull : 0;
  auto mix = [&seed](std::uint64_t v) {
    seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  };
  if (IsSmall()) {
    mix(small_);
  } else {
    for (std::uint32_t limb : limbs_) mix(limb);
  }
  return seed;
}

}  // namespace bagdet
