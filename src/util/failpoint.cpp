#include "util/failpoint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <new>
#include <thread>
#include <unordered_map>

#include "util/exec_context.h"

namespace bagdet {
namespace failpoint {
namespace {

struct SiteState {
  Config config;
  std::uint64_t hits = 0;
  std::uint64_t rng = 0;  // splitmix64 state for the probabilistic trigger.
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;  // Guarded by mu.
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;  // Leaked: safe at exit.
  return *registry;
}

// Fast-path gate: Evaluate bails on a single relaxed load while nothing is
// armed, so compiled-in hooks stay near-free in un-injected runs.
std::atomic<int> g_armed_sites{0};

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double NextUnit(std::uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

void Arm(const std::string& name, const Config& config) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.sites.insert_or_assign(
      name, SiteState{config, /*hits=*/0, /*rng=*/config.seed});
  static_cast<void>(it);
  if (inserted) g_armed_sites.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.sites.erase(name) != 0) {
    g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_armed_sites.fetch_sub(static_cast<int>(registry.sites.size()),
                          std::memory_order_relaxed);
  registry.sites.clear();
}

std::uint64_t HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(name);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

std::vector<std::string> ArmedNames() {
  Registry& registry = GetRegistry();
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    names.reserve(registry.sites.size());
    for (const auto& [name, state] : registry.sites) {
      static_cast<void>(state);
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

void Evaluate(const char* name) {
  if (g_armed_sites.load(std::memory_order_relaxed) == 0) return;
  Action action = Action::kOff;
  std::uint32_t sleep_ms = 0;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.sites.find(name);
    if (it == registry.sites.end()) return;
    SiteState& site = it->second;
    ++site.hits;
    bool fire;
    if (site.config.hit_on != 0) {
      fire = site.hits == site.config.hit_on;
    } else if (site.config.probability < 1.0) {
      fire = NextUnit(&site.rng) < site.config.probability;
    } else {
      fire = true;
    }
    if (!fire) return;
    action = site.config.action;
    sleep_ms = site.config.sleep_ms;
  }
  switch (action) {
    case Action::kOff:
      break;
    case Action::kCancel:
      if (ExecContext* ctx = CurrentExecContext()) ctx->RequestCancel();
      break;
    case Action::kBadAlloc:
      throw std::bad_alloc();
    case Action::kSleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      break;
  }
}

}  // namespace failpoint
}  // namespace bagdet
