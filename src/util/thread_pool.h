// bagdet: shared fixed-size thread pool.
//
// One pool of worker threads serves every parallel stage of the pipeline —
// HomCache::BatchCountHoms' independent (from, to) counts, the per-prime
// eliminations of the multi-modular driver (linalg/modular_solve.cpp), and
// the Hilbert layer's summary materialization — instead of each layer
// spawning and joining its own std::threads per call. The design is
// deliberately simple: a mutex-guarded FIFO task queue (no work stealing;
// pipeline tasks are coarse enough that queue contention is noise), plus a
// ParallelFor helper in which the *calling thread always participates*, so
// a nested ParallelFor issued from inside a worker can never deadlock:
// even when every worker is busy, the caller drains the whole index range
// itself.
//
// The global pool is sized to DefaultThreadCount() - 1 workers (the caller
// is the remaining lane): std::thread::hardware_concurrency(), overridden
// by the BAGDET_NUM_THREADS environment variable or programmatically by
// SetGlobalThreadPoolSize(). On a single-core host the global pool has no
// workers and every ParallelFor degenerates to a plain serial loop.

#ifndef BAGDET_UTIL_THREAD_POOL_H_
#define BAGDET_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bagdet {

class ThreadPool {
 public:
  /// Starts `num_workers` worker threads (0 is valid: Submit then runs
  /// tasks inline and ParallelFor runs serially on the calling thread).
  explicit ThreadPool(std::size_t num_workers);

  /// Workers finish the queued tasks, then join. (ParallelFor helper tasks
  /// own their state via shared_ptr, so late execution is always safe.)
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (not counting callers participating in
  /// ParallelFor).
  std::size_t num_workers() const { return workers_.size(); }

  /// Enqueues `task` for execution on a worker thread. With zero workers
  /// the task runs inline before Submit returns.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), fanning out across the workers
  /// with the calling thread participating; returns when all n calls have
  /// finished. At most `max_parallelism` threads touch the range when
  /// nonzero (1 forces a serial loop). The first exception thrown by
  /// `body` is rethrown on the calling thread after the range completes;
  /// indices claimed after that first failure are skipped, so a tripped
  /// ExecContext (deadline/cancel/budget — see util/exec_context.h)
  /// unwinds promptly across every lane. The caller's ExecContext, if
  /// any, is installed in each participating worker for the duration of
  /// the range. Safe to call from inside a pool task (the caller
  /// self-drains; helper tasks that fire late see an exhausted range and
  /// return immediately).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                   std::size_t max_parallelism = 0);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Parallelism the global pool is sized for: BAGDET_NUM_THREADS when set to
/// a positive integer, else std::thread::hardware_concurrency() (minimum 1).
std::size_t DefaultThreadCount();

/// The process-wide pool, created on first use with DefaultThreadCount()-1
/// workers. The reference stays valid until SetGlobalThreadPoolSize() is
/// called again.
ThreadPool& GlobalThreadPool();

/// Resizes the global pool to `parallelism` total lanes (workers =
/// parallelism - 1; 0 restores the default sizing). The current pool, if
/// any, is joined and destroyed: call only while no pipeline work is in
/// flight (startup, or between requests).
void SetGlobalThreadPoolSize(std::size_t parallelism);

}  // namespace bagdet

#endif  // BAGDET_UTIL_THREAD_POOL_H_
