#include "util/rational.h"

#include <ostream>
#include <stdexcept>
#include <utility>

namespace bagdet {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  if (denominator_.IsZero()) {
    throw std::domain_error("Rational: zero denominator");
  }
  Normalize();
}

void Rational::Normalize() {
  if (denominator_.IsNegative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.IsZero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt gcd = BigInt::Gcd(numerator_, denominator_);
  if (!gcd.IsOne()) {
    numerator_ /= gcd;
    denominator_ /= gcd;
  }
}

Rational Rational::FromString(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return Rational(BigInt::FromString(text));
  }
  return Rational(BigInt::FromString(text.substr(0, slash)),
                  BigInt::FromString(text.substr(slash + 1)));
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

Rational Rational::Inverse() const {
  if (IsZero()) throw std::domain_error("Rational: inverse of zero");
  Rational result;
  result.numerator_ = denominator_;
  result.denominator_ = numerator_;
  if (result.denominator_.IsNegative()) {
    result.numerator_ = -result.numerator_;
    result.denominator_ = -result.denominator_;
  }
  return result;
}

Rational Rational::Abs() const {
  Rational result = *this;
  result.numerator_ = result.numerator_.Abs();
  return result;
}

Rational& Rational::operator+=(const Rational& other) {
  numerator_ = numerator_ * other.denominator_ + other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  Normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& other) {
  numerator_ = numerator_ * other.denominator_ - other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  Normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& other) {
  numerator_ *= other.numerator_;
  denominator_ *= other.denominator_;
  Normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  if (other.IsZero()) throw std::domain_error("Rational: division by zero");
  numerator_ *= other.denominator_;
  denominator_ *= other.numerator_;
  Normalize();
  return *this;
}

Rational Rational::Pow(const Rational& base, std::int64_t exponent) {
  if (exponent == 0) return Rational(1);  // Includes 0^0 == 1.
  if (base.IsZero() && exponent < 0) {
    throw std::domain_error("Rational: 0 raised to a negative power");
  }
  bool invert = exponent < 0;
  std::uint64_t e = invert ? ~static_cast<std::uint64_t>(exponent) + 1
                           : static_cast<std::uint64_t>(exponent);
  Rational result(BigInt::Pow(base.numerator_, e),
                  BigInt::Pow(base.denominator_, e));
  return invert ? result.Inverse() : result;
}

bool operator<(const Rational& a, const Rational& b) {
  return a.numerator_ * b.denominator_ < b.numerator_ * a.denominator_;
}

std::string Rational::ToString() const {
  if (IsInteger()) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace bagdet
