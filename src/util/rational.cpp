#include "util/rational.h"

#include <ostream>
#include <stdexcept>
#include <utility>

namespace bagdet {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  if (denominator_.IsZero()) {
    throw std::domain_error("Rational: zero denominator");
  }
  Normalize();
}

void Rational::Normalize() {
  if (denominator_.IsNegative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.IsZero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt gcd = BigInt::Gcd(numerator_, denominator_);
  if (!gcd.IsOne()) {
    // In-place exact divisions: DivMod computes into arena scratch before
    // writing its out-params, so aliasing the dividend is safe and the
    // values' retained limb capacity is reused instead of reallocated.
    BigInt::DivMod(numerator_, gcd, &numerator_, nullptr);
    BigInt::DivMod(denominator_, gcd, &denominator_, nullptr);
  }
}

Rational Rational::FromString(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return Rational(BigInt::FromString(text));
  }
  return Rational(BigInt::FromString(text.substr(0, slash)),
                  BigInt::FromString(text.substr(slash + 1)));
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

Rational Rational::Inverse() const {
  if (IsZero()) throw std::domain_error("Rational: inverse of zero");
  Rational result;
  result.numerator_ = denominator_;
  result.denominator_ = numerator_;
  if (result.denominator_.IsNegative()) {
    result.numerator_ = -result.numerator_;
    result.denominator_ = -result.denominator_;
  }
  return result;
}

Rational Rational::Abs() const {
  Rational result = *this;
  result.numerator_ = result.numerator_.Abs();
  return result;
}

Rational& Rational::operator+=(const Rational& other) {
  if (this == &other) {  // r + r == 2r; the fused path below reads `other`
    numerator_ *= BigInt(2);  // after mutating `numerator_`.
    Normalize();
    return *this;
  }
  // n/d + on/od == (n*od + on*d) / (d*od), with the cross-product folded
  // into the numerator via the fused multiply-accumulate (no temporary).
  numerator_ *= other.denominator_;
  numerator_.MulAdd(other.numerator_, denominator_);
  denominator_ *= other.denominator_;
  Normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& other) {
  if (this == &other) {
    numerator_ = BigInt(0);
    denominator_ = BigInt(1);
    return *this;
  }
  numerator_ *= other.denominator_;
  numerator_.MulSub(other.numerator_, denominator_);
  denominator_ *= other.denominator_;
  Normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& other) {
  numerator_ *= other.numerator_;
  denominator_ *= other.denominator_;
  Normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  if (other.IsZero()) throw std::domain_error("Rational: division by zero");
  // Evaluate the new numerator before touching members so that `r /= r`
  // reads the original numerator (it previously yielded 1/d).
  BigInt numerator = numerator_ * other.denominator_;
  denominator_ *= other.numerator_;
  numerator_ = std::move(numerator);
  Normalize();
  return *this;
}

Rational Rational::Pow(const Rational& base, std::int64_t exponent) {
  if (exponent == 0) return Rational(1);  // Includes 0^0 == 1.
  if (base.IsZero() && exponent < 0) {
    throw std::domain_error("Rational: 0 raised to a negative power");
  }
  bool invert = exponent < 0;
  std::uint64_t e = invert ? ~static_cast<std::uint64_t>(exponent) + 1
                           : static_cast<std::uint64_t>(exponent);
  Rational result(BigInt::Pow(base.numerator_, e),
                  BigInt::Pow(base.denominator_, e));
  return invert ? result.Inverse() : result;
}

bool operator<(const Rational& a, const Rational& b) {
  return a.numerator_ * b.denominator_ < b.numerator_ * a.denominator_;
}

std::string Rational::ToString() const {
  if (IsInteger()) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace bagdet
