// bagdet: span-based limb kernels and the per-thread scratch arena backing
// BigInt's heap representation.
//
// The multi-modular tail (CRT residue folds, Wang reconstruction, Dixon
// digit combines) executes millions of short BigInt operations whose
// operands hover around a steady-state size. Before this layer existed,
// every such operation copied its operands into fresh `std::vector` limb
// buffers and allocated another one for the result — the malloc traffic the
// ROADMAP's "BigInt/allocation overhaul" item measured as the dominant
// tail. The kernels here are destination-passing instead: callers hand in
// `LimbSpan` views of existing magnitudes (no copy, either representation)
// and raw output buffers carved from a per-thread bump arena, and the
// result is committed back into the BigInt's retained capacity in one
// place. In steady state an arithmetic loop performs zero heap allocations.
//
// Ownership rules:
//  - `LimbSpan` never owns; it is valid as long as the underlying BigInt
//    (or arena scope) is alive and unmutated.
//  - `ArenaScope` is a stack-discipline lease on the calling thread's
//    `LimbArena`: every buffer Alloc'd from a scope dies when the scope
//    does. Scopes nest; buffers from an outer scope survive inner scopes.
//  - Arena blocks never move, so spans into the arena stay valid across
//    further Allocs in the same scope.
//
// Governance: growing the arena (a real heap allocation) fires
// `ExecCheckPoint("bigint/arena")` and charges the new block's bytes to the
// innermost scope's `ScopedCharge`, so a governed request with a memory
// budget trips cleanly inside a huge multiply instead of OOMing, and
// cancellation lands at block boundaries. The retained block cache
// (<= kRetainBytes per thread) is working-set, not billed to any request.

#ifndef BAGDET_UTIL_LIMB_KERNELS_H_
#define BAGDET_UTIL_LIMB_KERNELS_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/exec_context.h"

namespace bagdet {
namespace limb {

/// Non-owning view of a little-endian base-2^32 magnitude. Trimmed means
/// no trailing (most-significant) zero limbs; kernels require trimmed
/// inputs unless noted and produce trimmed sizes.
struct LimbSpan {
  const std::uint32_t* data = nullptr;
  std::size_t size = 0;

  constexpr LimbSpan() = default;
  constexpr LimbSpan(const std::uint32_t* d, std::size_t n)
      : data(d), size(n) {}

  bool empty() const { return size == 0; }
  std::uint32_t operator[](std::size_t i) const { return data[i]; }
};

/// Size of `p[0..n)` with trailing zero limbs stripped.
inline std::size_t Trim(const std::uint32_t* p, std::size_t n) {
  while (n > 0 && p[n - 1] == 0) --n;
  return n;
}

/// Magnitude comparison of trimmed spans: -1, 0, +1.
int Compare(LimbSpan a, LimbSpan b);

/// dst := a + b. Capacity required: max(a.size, b.size) + 1. `dst` must not
/// alias `a` or `b`. Returns the trimmed result size.
std::size_t AddInto(std::uint32_t* dst, LimbSpan a, LimbSpan b);

/// acc[0..n) += b, in place. Capacity required: max(n, b.size) + 1. `acc`
/// must not alias `b`. Returns the new size.
std::size_t AccumulateInPlace(std::uint32_t* acc, std::size_t n, LimbSpan b);

/// a[0..n) -= b, in place; requires magnitude(a) >= magnitude(b). `a` must
/// not alias `b`. Returns the trimmed result size.
std::size_t SubInPlace(std::uint32_t* a, std::size_t n, LimbSpan b);

class ArenaScope;

/// dst := a * b (schoolbook below the Karatsuba threshold, Karatsuba above,
/// recursion scratch carved from `scratch`). Capacity required:
/// a.size + b.size. `dst` must not alias `a` or `b`. Returns trimmed size.
std::size_t MulInto(std::uint32_t* dst, LimbSpan a, LimbSpan b,
                    ArenaScope& scratch);

struct DivModSpans {
  LimbSpan quotient;
  LimbSpan remainder;
};

/// Knuth algorithm D over trimmed spans; `b` must be nonzero. Both results
/// are freshly allocated from `scratch` (they never alias `a`/`b`), so the
/// caller may commit them into BigInts that alias the inputs.
DivModSpans DivMod(LimbSpan a, LimbSpan b, ArenaScope& scratch);

/// Thread-local count of real heap acquisitions made on behalf of BigInt
/// arithmetic (arena block growth + limb-vector capacity growth). Benches
/// report the delta to prove the malloc traffic dropped; steady-state
/// arithmetic loops should not move this counter.
std::uint64_t HeapAllocCount();
void ResetHeapAllocCount();
void NoteHeapAlloc();

/// Per-thread bump allocator for kernel scratch. Blocks are geometric and
/// never move; freeing is wholesale via ArenaScope rewind. Do not use
/// directly — go through ArenaScope.
class LimbArena {
 public:
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  /// Bytes of block storage currently retained (allocated from the heap).
  std::size_t RetainedBytes() const { return retained_bytes_; }

  /// The calling thread's arena.
  static LimbArena& ForThread();

 private:
  friend class ArenaScope;

  struct Block {
    std::unique_ptr<std::uint32_t[]> data;
    std::size_t capacity = 0;  // In limbs.
    std::size_t used = 0;      // In limbs.
  };

  std::uint32_t* Allocate(std::size_t limbs);
  void NewBlock(std::size_t min_limbs);
  Mark Position() const { return Mark{active_, Used(active_)}; }
  void Rewind(Mark mark);
  void TrimRetained(std::size_t cap_bytes);
  std::size_t Used(std::size_t block) const {
    return block < blocks_.size() ? blocks_[block].used : 0;
  }

  std::vector<Block> blocks_;
  std::size_t active_ = 0;
  std::size_t retained_bytes_ = 0;
  ArenaScope* innermost_ = nullptr;
};

/// RAII lease on the thread's arena: captures the bump position on entry
/// and rewinds on exit, releasing every buffer allocated through it (and
/// through any nested scope that already exited). The outermost scope also
/// shrinks the retained block cache back under the cap, so a one-off giant
/// multiply does not pin its scratch forever.
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// Uninitialized buffer of `limbs` 32-bit limbs.
  std::uint32_t* Alloc(std::size_t limbs) { return arena_.Allocate(limbs); }

  /// Zero-filled buffer.
  std::uint32_t* AllocZero(std::size_t limbs) {
    std::uint32_t* p = Alloc(limbs);
    std::memset(p, 0, limbs * sizeof(std::uint32_t));
    return p;
  }

  /// Copy of `s` with room for `extra` more limbs at the top.
  std::uint32_t* Copy(LimbSpan s, std::size_t extra = 0) {
    std::uint32_t* p = Alloc(s.size + extra);
    if (s.size != 0) std::memcpy(p, s.data, s.size * sizeof(std::uint32_t));
    return p;
  }

  LimbArena& arena() { return arena_; }

 private:
  friend class LimbArena;

  LimbArena& arena_;
  LimbArena::Mark mark_;
  ArenaScope* parent_;
  // Bytes of fresh block storage acquired while this scope was innermost,
  // billed against the governed request's memory budget.
  ScopedCharge charge_;
};

}  // namespace limb
}  // namespace bagdet

#endif  // BAGDET_UTIL_LIMB_KERNELS_H_
