// bagdet: named failpoints for deliberate fault injection.
//
// The robustness story of the governed-execution layer (exec_context.h) is
// only as good as its worst unwind path, so instead of hoping the DP, the
// canonical search, or the CRT fold handle mid-flight cancellation and
// allocation failure, the test suite *injects* those faults at named
// sites and asserts clean unwind + consistent caches + bit-identical
// reruns.
//
// A failpoint is a named hook compiled into a kernel:
//
//   BAGDET_FAILPOINT("hom/dp_step");
//
// In default builds the macro expands to nothing — zero cost, zero code.
// Configuring with -DBAGDET_FAILPOINTS=ON compiles the hooks in; an
// unarmed registry then costs one relaxed atomic load per hook. Tests arm
// sites by name:
//
//   failpoint::Arm("hom/dp_step", {failpoint::Action::kCancel,
//                                  /*probability=*/1.0, /*hit_on=*/50});
//
// Triggers: every hit (defaults), exactly the N-th hit (`hit_on`), or a
// seeded coin flip per hit (`probability`) — all deterministic for a fixed
// seed and execution order. Actions: request cancellation on the current
// ExecContext (kCancel — a no-op when ungoverned, matching the cooperative
// model), throw std::bad_alloc (kBadAlloc), or sleep (kSleep, for shaking
// out deadline races).
//
// Registered sites (grep for BAGDET_FAILPOINT):
//   hom/dp_step        once per DP join step (hom.cpp RunDpPlan)
//   hom/dp_table_grow  FlatTable rehash — kBadAlloc models table OOM
//   hom/matcher        once per Matcher backtracking node
//   hom/domain_split   once per parallel-split chunk worker (hom.cpp
//                      CountComponent) — faults mid fan-out
//   canonical/branch   once per individualization-refinement branch
//   pool/intern        before a StructurePool entry is created
//   homcache/insert    before a HomCache insert mutates the shard
//   modular/crt_fold   once per accepted prime folded into the CRT state
//   hilbert/entry      once per Hilbert summary grid entry
//   bigint/alloc       BigInt limb spill commit (CommitSpan/SetMagnitude)
//                      and limb-arena block growth — kBadAlloc models
//                      bignum OOM on every spill path
//   serve/admit        in DeterminacyService::Submit before enqueue —
//                      kBadAlloc models admission-path OOM (typed decline)
//   serve/dispatch     on a service runner before each governed attempt —
//                      kBadAlloc models a transient dispatch fault (retried
//                      with backoff), kCancel cancels that attempt's context

#ifndef BAGDET_UTIL_FAILPOINT_H_
#define BAGDET_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bagdet {
namespace failpoint {

/// What an armed failpoint does when it fires.
enum class Action {
  kOff,       ///< Armed but inert (useful for pure hit counting).
  kCancel,    ///< RequestCancel() on the current ExecContext, if any.
  kBadAlloc,  ///< throw std::bad_alloc.
  kSleep,     ///< Sleep sleep_ms (artificial latency).
};

/// Trigger + action configuration for one named site.
struct Config {
  Action action = Action::kOff;
  double probability = 1.0;    ///< Per-hit firing chance when hit_on == 0.
  std::uint64_t hit_on = 0;    ///< Fire on exactly the N-th hit (1-based);
                               ///< 0 = every hit (subject to probability).
  std::uint32_t sleep_ms = 0;  ///< Latency for kSleep.
  std::uint64_t seed = 1;      ///< Seeds the probabilistic trigger.
};

/// True iff the hooks were compiled in (BAGDET_FAILPOINTS builds). Tests
/// GTEST_SKIP their injection cases when false.
constexpr bool Enabled() {
#if defined(BAGDET_FAILPOINTS)
  return true;
#else
  return false;
#endif
}

/// Arms (or re-arms, resetting the hit counter) the named site.
void Arm(const std::string& name, const Config& config);

/// Disarms one site / every site. DisarmAll() is the per-test epilogue.
void Disarm(const std::string& name);
void DisarmAll();

/// Hits observed by an armed site since it was last armed (0 if unarmed).
std::uint64_t HitCount(const std::string& name);

/// Names currently armed, sorted.
std::vector<std::string> ArmedNames();

/// Hook body behind BAGDET_FAILPOINT — evaluates the named site. Direct
/// calls are only for the registry's own tests.
void Evaluate(const char* name);

}  // namespace failpoint
}  // namespace bagdet

#if defined(BAGDET_FAILPOINTS)
#define BAGDET_FAILPOINT(name) ::bagdet::failpoint::Evaluate(name)
#else
#define BAGDET_FAILPOINT(name) \
  do {                         \
  } while (false)
#endif

#endif  // BAGDET_UTIL_FAILPOINT_H_
