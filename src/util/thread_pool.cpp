#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

#include "util/exec_context.h"
#include "util/tuning.h"

namespace bagdet {

ThreadPool::ThreadPool(std::size_t num_workers) {
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ with a drained queue.
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body,
                             std::size_t max_parallelism) {
  if (n == 0) return;
  std::size_t helpers = num_workers();
  if (max_parallelism != 0 && max_parallelism - 1 < helpers) {
    helpers = max_parallelism - 1;
  }
  if (n - 1 < helpers) helpers = n - 1;  // The caller claims work too.

  // Shared by the caller and every helper task. Helpers may outlive this
  // call (a busy pool can run them after the range is already drained);
  // the shared_ptr keeps the state alive and an exhausted `next` makes
  // such stragglers no-ops. Completion is "every claimed index finished",
  // counted in `done` — an exception still counts its index as done, so
  // the caller's wait below always terminates. After a first exception,
  // `abort` makes the remaining indices no-ops (still counted), so a
  // tripped ExecContext or any other failure unwinds without paying for
  // the rest of the range.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> abort{false};
    std::size_t n = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    ExecContext* exec = nullptr;  // Caller's governed context, if any.
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  // Guarded by mu; first error wins.
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->body = &body;
  state->exec = CurrentExecContext();

  auto run = [](const std::shared_ptr<State>& s) {
    // Workers inherit the caller's ExecContext for the duration of this
    // range, so deadline/cancellation checkpoints and memory charges made
    // inside `body` land on the governing request from every lane. (On the
    // calling thread this reinstall is a no-op.)
    ExecScope exec_scope(s->exec);
    for (;;) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) return;
      if (!s->abort.load(std::memory_order_relaxed)) {
        try {
          (*s->body)(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(s->mu);
            if (!s->error) s->error = std::current_exception();
          }
          s->abort.store(true, std::memory_order_relaxed);
        }
      }
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  for (std::size_t h = 0; h < helpers; ++h) {
    Submit([state, run] { run(state); });
  }
  run(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == n;
  });
  if (state->error) std::rethrow_exception(state->error);
}

std::size_t DefaultThreadCount() {
  // Precedence: BAGDET_NUM_THREADS (the per-run override of last resort),
  // then a calibrated width from the tuning profile, then the hardware.
  if (const char* env = std::getenv("BAGDET_NUM_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<std::size_t>(value);
    }
  }
  if (const std::size_t tuned = Tuning().num_threads; tuned != 0) {
    return tuned;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;        // Guarded by g_pool_mu.
std::size_t g_pool_parallelism = 0;        // 0 = DefaultThreadCount().
}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) {
    const std::size_t parallelism =
        g_pool_parallelism != 0 ? g_pool_parallelism : DefaultThreadCount();
    g_pool = std::make_unique<ThreadPool>(parallelism - 1);
  }
  return *g_pool;
}

void SetGlobalThreadPoolSize(std::size_t parallelism) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool_parallelism = parallelism;
  g_pool.reset();  // Joined here; rebuilt lazily on next GlobalThreadPool().
}

}  // namespace bagdet
