// bagdet: exact rational arithmetic on top of BigInt.
//
// All linear algebra in the determinacy pipeline (span tests, nullspaces,
// inverse evaluation matrices, the t^z ∘ p perturbation of Lemma 56) is
// carried out over Q exactly; Rational is the scalar type.

#ifndef BAGDET_UTIL_RATIONAL_H_
#define BAGDET_UTIL_RATIONAL_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "util/bigint.h"

namespace bagdet {

/// Exact rational number.
///
/// Invariants: the denominator is strictly positive and the fraction is in
/// lowest terms; zero is 0/1.
class Rational {
 public:
  /// Constructs zero.
  Rational() : numerator_(0), denominator_(1) {}

  /// Constructs an integer.
  Rational(std::int64_t value)  // NOLINT(google-explicit-constructor)
      : numerator_(value), denominator_(1) {}

  /// Constructs an integer from a BigInt.
  Rational(BigInt value)  // NOLINT(google-explicit-constructor)
      : numerator_(std::move(value)), denominator_(1) {}

  /// Constructs numerator/denominator and normalizes.
  /// Throws std::domain_error when the denominator is zero.
  Rational(BigInt numerator, BigInt denominator);

  /// Parses "a", "-a", or "a/b". Throws std::invalid_argument on bad input.
  static Rational FromString(std::string_view text);

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }

  bool IsZero() const { return numerator_.IsZero(); }
  bool IsNegative() const { return numerator_.IsNegative(); }
  bool IsInteger() const { return denominator_.IsOne(); }
  bool IsOne() const { return numerator_.IsOne() && denominator_.IsOne(); }
  int Sign() const { return numerator_.Sign(); }

  Rational operator-() const;
  Rational Inverse() const;  ///< Throws std::domain_error on zero.
  Rational Abs() const;

  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  Rational& operator/=(const Rational& other);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  /// Integer power with a possibly negative exponent. Pow(0, 0) == 1, the
  /// paper's convention; Pow(0, negative) throws std::domain_error.
  static Rational Pow(const Rational& base, std::int64_t exponent);

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.numerator_ == b.numerator_ && a.denominator_ == b.denominator_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return !(b < a);
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return !(a < b);
  }

  /// "a" when integral, otherwise "a/b".
  std::string ToString() const;

  friend std::ostream& operator<<(std::ostream& os, const Rational& value);

 private:
  void Normalize();

  BigInt numerator_;
  BigInt denominator_;
};

}  // namespace bagdet

#endif  // BAGDET_UTIL_RATIONAL_H_
