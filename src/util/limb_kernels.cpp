#include "util/limb_kernels.h"

#include <algorithm>
#include <stdexcept>

#include "util/failpoint.h"

namespace bagdet {
namespace limb {

namespace {

constexpr std::uint64_t kBase = 1ull << 32;

/// Limb count below which schoolbook multiplication beats Karatsuba's
/// bookkeeping (measured on the dev VM; see bench_linalg BM_BigIntMultiply).
constexpr std::size_t kKaratsubaThreshold = 32;

/// First arena block, in limbs (16 KiB).
constexpr std::size_t kMinBlockLimbs = std::size_t{1} << 12;

/// Retained block cache cap per thread; the outermost ArenaScope trims back
/// under this on exit so a one-off giant operand does not pin its scratch.
constexpr std::size_t kRetainBytes = std::size_t{4} << 20;

thread_local std::uint64_t g_heap_allocs = 0;

}  // namespace

std::uint64_t HeapAllocCount() { return g_heap_allocs; }
void ResetHeapAllocCount() { g_heap_allocs = 0; }
void NoteHeapAlloc() { ++g_heap_allocs; }

int Compare(LimbSpan a, LimbSpan b) {
  if (a.size != b.size) return a.size < b.size ? -1 : 1;
  for (std::size_t i = a.size; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::size_t AddInto(std::uint32_t* dst, LimbSpan a, LimbSpan b) {
  if (a.size < b.size) std::swap(a, b);
  std::uint64_t carry = 0;
  std::size_t i = 0;
  for (; i < b.size; ++i) {
    const std::uint64_t sum = carry + a[i] + b[i];
    dst[i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  for (; i < a.size; ++i) {
    const std::uint64_t sum = carry + a[i];
    dst[i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  if (carry != 0) dst[i++] = static_cast<std::uint32_t>(carry);
  return i;
}

std::size_t AccumulateInPlace(std::uint32_t* acc, std::size_t n, LimbSpan b) {
  std::uint64_t carry = 0;
  std::size_t i = 0;
  for (; i < b.size; ++i) {
    const std::uint64_t sum =
        carry + (i < n ? acc[i] : 0u) + b[i];
    acc[i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  std::size_t size = std::max(n, b.size);
  for (; carry != 0 && i < size; ++i) {
    const std::uint64_t sum = carry + acc[i];
    acc[i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  if (carry != 0) acc[size++] = static_cast<std::uint32_t>(carry);
  return size;
}

std::size_t SubInPlace(std::uint32_t* a, std::size_t n, LimbSpan b) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    a[i] = static_cast<std::uint32_t>(diff);
  }
  return Trim(a, n);
}

namespace {

/// dst[shift..] += s with carry propagation bounded by `total`. The caller
/// guarantees the running value fits in `total` limbs, so the carry always
/// resolves in bounds.
void AddAt(std::uint32_t* dst, std::size_t total, LimbSpan s,
           std::size_t shift) {
  std::uint64_t carry = 0;
  std::size_t i = 0;
  for (; i < s.size; ++i) {
    const std::uint64_t sum = carry + dst[shift + i] + s[i];
    dst[shift + i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  for (; carry != 0 && shift + i < total; ++i) {
    const std::uint64_t sum = carry + dst[shift + i];
    dst[shift + i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
}

std::size_t MulSchoolbookInto(std::uint32_t* dst, LimbSpan a, LimbSpan b) {
  if (a.empty() || b.empty()) return 0;
  const std::size_t total = a.size + b.size;
  std::memset(dst, 0, total * sizeof(std::uint32_t));
  for (std::size_t i = 0; i < a.size; ++i) {
    if (a[i] == 0) continue;
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size; ++j) {
      const std::uint64_t cur =
          dst[i + j] + static_cast<std::uint64_t>(a[i]) * b[j] + carry;
      dst[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    dst[i + b.size] = static_cast<std::uint32_t>(carry);
  }
  return Trim(dst, total);
}

std::size_t KaratsubaInto(std::uint32_t* dst, LimbSpan a, LimbSpan b,
                          ArenaScope& outer) {
  if (a.size < kKaratsubaThreshold || b.size < kKaratsubaThreshold) {
    return MulSchoolbookInto(dst, a, b);
  }
  // Split at half the longer operand: x = x1·B^m + x0.
  const std::size_t m = std::max(a.size, b.size) / 2;
  const LimbSpan a0{a.data, Trim(a.data, std::min(m, a.size))};
  const LimbSpan a1 =
      a.size > m ? LimbSpan{a.data + m, a.size - m} : LimbSpan{};
  const LimbSpan b0{b.data, Trim(b.data, std::min(m, b.size))};
  const LimbSpan b1 =
      b.size > m ? LimbSpan{b.data + m, b.size - m} : LimbSpan{};
  // Recursion scratch dies with this scope; `dst` lives in the caller's.
  ArenaScope local;
  static_cast<void>(outer);
  std::uint32_t* z0 = local.Alloc(a0.size + b0.size);
  const std::size_t z0n = KaratsubaInto(z0, a0, b0, local);
  std::uint32_t* z2 = local.Alloc(a1.size + b1.size);
  const std::size_t z2n = KaratsubaInto(z2, a1, b1, local);
  // z1 = (a0+a1)(b0+b1) - z0 - z2.
  std::uint32_t* a_sum = local.Alloc(std::max(a0.size, a1.size) + 1);
  const std::size_t a_sum_n = AddInto(a_sum, a0, a1);
  std::uint32_t* b_sum = local.Alloc(std::max(b0.size, b1.size) + 1);
  const std::size_t b_sum_n = AddInto(b_sum, b0, b1);
  std::uint32_t* z1 = local.Alloc(a_sum_n + b_sum_n);
  std::size_t z1n =
      KaratsubaInto(z1, LimbSpan{a_sum, a_sum_n}, LimbSpan{b_sum, b_sum_n},
                    local);
  z1n = SubInPlace(z1, z1n, LimbSpan{z0, z0n});
  z1n = SubInPlace(z1, z1n, LimbSpan{z2, z2n});
  // dst = z2·B^(2m) + z1·B^m + z0.
  const std::size_t total = a.size + b.size;
  std::memset(dst, 0, total * sizeof(std::uint32_t));
  if (z0n != 0) std::memcpy(dst, z0, z0n * sizeof(std::uint32_t));
  AddAt(dst, total, LimbSpan{z1, z1n}, m);
  AddAt(dst, total, LimbSpan{z2, z2n}, 2 * m);
  return Trim(dst, total);
}

}  // namespace

std::size_t MulInto(std::uint32_t* dst, LimbSpan a, LimbSpan b,
                    ArenaScope& scratch) {
  return KaratsubaInto(dst, a, b, scratch);
}

DivModSpans DivMod(LimbSpan a, LimbSpan b, ArenaScope& scratch) {
  if (b.empty()) throw std::domain_error("BigInt: division by zero");
  if (Compare(a, b) < 0) {
    return DivModSpans{LimbSpan{}, LimbSpan{scratch.Copy(a), a.size}};
  }
  if (b.size == 1) {
    // Schoolbook short division.
    std::uint32_t* q = scratch.Copy(a);
    std::uint64_t rem = 0;
    for (std::size_t i = a.size; i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | q[i];
      q[i] = static_cast<std::uint32_t>(cur / b[0]);
      rem = cur % b[0];
    }
    std::uint32_t* r = scratch.Alloc(1);
    std::size_t rn = 0;
    if (rem != 0) {
      r[0] = static_cast<std::uint32_t>(rem);
      rn = 1;
    }
    return DivModSpans{LimbSpan{q, Trim(q, a.size)}, LimbSpan{r, rn}};
  }
  // Knuth algorithm D with base 2^32.
  int shift = 0;
  for (std::uint32_t top = b[b.size - 1]; top < 0x80000000u; top <<= 1) {
    ++shift;
  }
  const std::size_t n = b.size;
  // v = b << shift: exactly n limbs (the shift puts v's top bit at 2^31).
  std::uint32_t* v = scratch.Alloc(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = shift == 0 ? b[i]
                      : (b[i] << shift) |
                            (i > 0 ? static_cast<std::uint32_t>(
                                         static_cast<std::uint64_t>(b[i - 1]) >>
                                         (32 - shift))
                                   : 0u);
  }
  // u = a << shift, with one spare high limb for the algorithm's u[j+n].
  std::uint32_t* u = scratch.AllocZero(a.size + 2);
  for (std::size_t i = 0; i < a.size; ++i) {
    if (shift == 0) {
      u[i] = a[i];
    } else {
      u[i] |= a[i] << shift;
      u[i + 1] |= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(a[i]) >> (32 - shift));
    }
  }
  const std::size_t ulen = Trim(u, a.size + 1);
  const std::size_t m = ulen - n;  // a >= b, so ulen >= n.
  std::uint32_t* q = scratch.AllocZero(m + 1);
  const std::uint64_t v_top = v[n - 1];
  const std::uint64_t v_next = v[n - 2];
  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t q_hat = numerator / v_top;
    std::uint64_t r_hat = numerator % v_top;
    while (q_hat >= kBase || q_hat * v_next > ((r_hat << 32) | u[j + n - 2])) {
      --q_hat;
      r_hat += v_top;
      if (r_hat >= kBase) break;
    }
    // Multiply-subtract q_hat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) - borrow -
                          static_cast<std::int64_t>(product & 0xffffffffu);
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t top_diff = static_cast<std::int64_t>(u[j + n]) - borrow -
                            static_cast<std::int64_t>(carry);
    if (top_diff < 0) {
      // q_hat was one too large: add v back once.
      top_diff += static_cast<std::int64_t>(kBase);
      --q_hat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum = add_carry + u[i + j] + v[i];
        u[i + j] = static_cast<std::uint32_t>(sum & 0xffffffffu);
        add_carry = sum >> 32;
      }
      top_diff += static_cast<std::int64_t>(add_carry);
      top_diff &= 0xffffffff;
    }
    u[j + n] = static_cast<std::uint32_t>(top_diff);
    q[j] = static_cast<std::uint32_t>(q_hat);
  }
  // Un-normalize the remainder (first n limbs of u).
  if (shift != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      u[i] >>= shift;
      if (i + 1 < n) u[i] |= u[i + 1] << (32 - shift);
    }
  }
  return DivModSpans{LimbSpan{q, Trim(q, m + 1)}, LimbSpan{u, Trim(u, n)}};
}

LimbArena& LimbArena::ForThread() {
  thread_local LimbArena arena;
  return arena;
}

std::uint32_t* LimbArena::Allocate(std::size_t limbs) {
  if (limbs == 0) limbs = 1;
  for (;;) {
    if (active_ < blocks_.size()) {
      Block& blk = blocks_[active_];
      if (blk.capacity - blk.used >= limbs) {
        std::uint32_t* p = blk.data.get() + blk.used;
        blk.used += limbs;
        return p;
      }
      if (active_ + 1 < blocks_.size()) {
        // Spill into the next retained block (they grow geometrically).
        ++active_;
        blocks_[active_].used = 0;
        continue;
      }
    }
    NewBlock(limbs);
  }
}

void LimbArena::NewBlock(std::size_t min_limbs) {
  // A real heap acquisition: give governed requests a cancellation point
  // and a budget charge, and let fault injection model bignum OOM here.
  ExecCheckPoint("bigint/arena");
  BAGDET_FAILPOINT("bigint/alloc");
  std::size_t capacity =
      blocks_.empty() ? kMinBlockLimbs : blocks_.back().capacity * 2;
  capacity = std::max(capacity, min_limbs);
  Block block;
  block.data.reset(new std::uint32_t[capacity]);
  block.capacity = capacity;
  block.used = 0;
  NoteHeapAlloc();
  blocks_.push_back(std::move(block));
  retained_bytes_ += capacity * sizeof(std::uint32_t);
  active_ = blocks_.size() - 1;
  if (innermost_ != nullptr) {
    // May throw ExecInterrupted past the caller; the arena stays
    // consistent (block registered) and the scope unwind rewinds.
    innermost_->charge_.Update(innermost_->charge_.held() +
                               capacity * sizeof(std::uint32_t));
  }
}

void LimbArena::Rewind(Mark mark) {
  active_ = mark.block;
  if (active_ < blocks_.size()) blocks_[active_].used = mark.used;
}

void LimbArena::TrimRetained(std::size_t cap_bytes) {
  while (blocks_.size() > 1 && retained_bytes_ > cap_bytes) {
    retained_bytes_ -= blocks_.back().capacity * sizeof(std::uint32_t);
    blocks_.pop_back();
  }
  if (!blocks_.empty() && active_ >= blocks_.size()) {
    active_ = blocks_.size() - 1;
    blocks_[active_].used = blocks_[active_].capacity;  // Treat as full.
  }
}

ArenaScope::ArenaScope()
    : arena_(LimbArena::ForThread()),
      mark_(arena_.Position()),
      parent_(arena_.innermost_),
      charge_("bigint/arena") {
  arena_.innermost_ = this;
}

ArenaScope::~ArenaScope() {
  arena_.innermost_ = parent_;
  arena_.Rewind(mark_);
  if (parent_ == nullptr) arena_.TrimRetained(kRetainBytes);
}

}  // namespace limb
}  // namespace bagdet
