#include "path/matrix_semantics.h"

namespace bagdet {

CountMatrix IdentityCountMatrix(std::size_t n) {
  CountMatrix m(n, std::vector<BigInt>(n, BigInt(0)));
  for (std::size_t i = 0; i < n; ++i) m[i][i] = BigInt(1);
  return m;
}

CountMatrix IncidenceMatrix(const Structure& data, RelationId relation) {
  const std::size_t n = data.DomainSize();
  CountMatrix m(n, std::vector<BigInt>(n, BigInt(0)));
  for (const Tuple& t : data.Facts(relation)) {
    m[t[0]][t[1]] = BigInt(1);
  }
  return m;
}

CountMatrix MultiplyCountMatrices(const CountMatrix& a, const CountMatrix& b) {
  const std::size_t n = a.size();
  CountMatrix result(n, std::vector<BigInt>(n, BigInt(0)));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      if (a[i][k].IsZero()) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (b[k][j].IsZero()) continue;
        result[i][j] += a[i][k] * b[k][j];
      }
    }
  }
  return result;
}

CountMatrix WordMatrix(const Structure& data, const PathQuery& query) {
  CountMatrix m = IdentityCountMatrix(data.DomainSize());
  // M^D_{R·w} = M^D_R · M^D_w, so multiply letters left to right on the
  // left of the accumulated suffix matrix — equivalently accumulate from
  // the back.
  for (std::size_t i = query.Length(); i-- > 0;) {
    m = MultiplyCountMatrices(IncidenceMatrix(data, query.word()[i]), m);
  }
  return m;
}

AnswerBag EvaluatePathQuery(const Structure& data, const PathQuery& query) {
  CountMatrix m = WordMatrix(data, query);
  AnswerBag answers;
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      if (!m[i][j].IsZero()) {
        answers[{static_cast<Element>(i), static_cast<Element>(j)}] = m[i][j];
      }
    }
  }
  return answers;
}

BigInt CountPathHoms(const Structure& data, const PathQuery& query) {
  CountMatrix m = WordMatrix(data, query);
  BigInt total(0);
  for (const auto& row : m) {
    for (const BigInt& entry : row) total += entry;
  }
  return total;
}

}  // namespace bagdet
