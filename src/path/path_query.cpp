#include "path/path_query.h"

#include <deque>
#include <stdexcept>

namespace bagdet {

PathQuery::PathQuery(std::shared_ptr<const Schema> schema,
                     std::vector<RelationId> word)
    : schema_(std::move(schema)), word_(std::move(word)) {
  for (RelationId r : word_) {
    if (schema_->Arity(r) != 2) {
      throw std::invalid_argument("PathQuery: relation " + schema_->Name(r) +
                                  " is not binary");
    }
  }
}

PathQuery PathQuery::FromWord(std::string_view word,
                              const std::shared_ptr<Schema>& schema) {
  std::vector<RelationId> ids;
  ids.reserve(word.size());
  for (char c : word) {
    ids.push_back(schema->AddRelation(std::string(1, c), 2));
  }
  return PathQuery(schema, std::move(ids));
}

bool PathQuery::MatchesAt(const PathQuery& other, std::size_t offset) const {
  if (offset + word_.size() > other.word_.size()) return false;
  for (std::size_t i = 0; i < word_.size(); ++i) {
    if (word_[i] != other.word_[offset + i]) return false;
  }
  return true;
}

Structure PathQuery::FrozenBody() const {
  Structure s(schema_, word_.size() + 1);
  for (std::size_t i = 0; i < word_.size(); ++i) {
    s.AddFact(word_[i], {static_cast<Element>(i), static_cast<Element>(i + 1)});
  }
  return s;
}

ConjunctiveQuery PathQuery::ToConjunctiveQuery(std::string name) const {
  if (word_.empty()) {
    // The empty word denotes "x = y" (footnote 12), which is not a valid
    // conjunctive query.
    throw std::invalid_argument(
        "PathQuery::ToConjunctiveQuery: the empty word is x = y, not a CQ");
  }
  const std::size_t n = word_.size();
  // Variables: x (free), y (free), then the n-1 internal path positions.
  std::vector<std::string> var_names = {"x", "y"};
  for (std::size_t i = 1; i < n; ++i) {
    var_names.push_back("x" + std::to_string(i));
  }
  auto var_at = [n](std::size_t position) -> VarId {
    if (position == 0) return 0;
    if (position == n) return 1;
    return static_cast<VarId>(position + 1);
  };
  std::vector<QueryAtom> atoms;
  for (std::size_t i = 0; i < n; ++i) {
    atoms.push_back(QueryAtom{word_[i], {var_at(i), var_at(i + 1)}});
  }
  return ConjunctiveQuery(std::move(name), schema_, std::move(var_names), 2,
                          std::move(atoms));
}

std::string PathQuery::ToString() const {
  if (word_.empty()) return "<epsilon>";
  std::string out;
  for (std::size_t i = 0; i < word_.size(); ++i) {
    if (i != 0 && schema_->Name(word_[i - 1]).size() > 1) out += '.';
    out += schema_->Name(word_[i]);
  }
  return out;
}

namespace {

/// BFS over G_{q,V} (Definition 9) from prefix length `start`; fills
/// `parent_step` with the step that first reached each prefix.
std::vector<bool> ReachPrefixes(const PathQuery& q,
                                const std::vector<PathQuery>& views,
                                std::size_t start,
                                std::vector<PrefixStep>* parent_step) {
  const std::size_t n = q.Length();
  std::vector<bool> reached(n + 1, false);
  if (parent_step != nullptr) {
    parent_step->assign(n + 1, PrefixStep{0, 0, 0, 0});
  }
  std::deque<std::size_t> frontier;
  reached[start] = true;
  frontier.push_back(start);
  while (!frontier.empty()) {
    std::size_t at = frontier.front();
    frontier.pop_front();
    for (std::size_t vi = 0; vi < views.size(); ++vi) {
      const PathQuery& v = views[vi];
      // Forward edge: at → at + |v| when v matches q at offset `at`.
      if (v.MatchesAt(q, at)) {
        std::size_t next = at + v.Length();
        if (!reached[next]) {
          reached[next] = true;
          if (parent_step != nullptr) {
            (*parent_step)[next] = PrefixStep{at, next, vi, +1};
          }
          frontier.push_back(next);
        }
      }
      // Backward edge: at → at - |v| when v matches q at offset at - |v|.
      if (v.Length() <= at && v.MatchesAt(q, at - v.Length())) {
        std::size_t next = at - v.Length();
        if (!reached[next]) {
          reached[next] = true;
          if (parent_step != nullptr) {
            (*parent_step)[next] = PrefixStep{at, next, vi, -1};
          }
          frontier.push_back(next);
        }
      }
    }
  }
  return reached;
}

}  // namespace

PathDeterminacyResult DecidePathDeterminacy(const PathQuery& q,
                                            const std::vector<PathQuery>& views,
                                            bool want_counterexample) {
  PathDeterminacyResult result;
  std::vector<PrefixStep> parent;
  std::vector<bool> reached = ReachPrefixes(q, views, 0, &parent);
  result.determined = reached[q.Length()];
  if (result.determined) {
    // Reconstruct the ε→q path.
    std::vector<PrefixStep> reversed;
    std::size_t at = q.Length();
    while (at != 0) {
      reversed.push_back(parent[at]);
      at = parent[at].from_prefix;
    }
    result.path.assign(reversed.rbegin(), reversed.rend());
    return result;
  }
  if (want_counterexample) {
    result.counterexample = BuildPathCounterexample(q, views);
  }
  return result;
}

std::pair<Structure, Structure> BuildPathCounterexample(
    const PathQuery& q, const std::vector<PathQuery>& views) {
  std::vector<bool> reachable = ReachPrefixes(q, views, 0, nullptr);
  const std::size_t n = q.Length();
  if (reachable[n]) {
    throw std::logic_error(
        "BuildPathCounterexample: instance is determined, no counterexample");
  }
  // Domain: [prefix i, copy j] ↦ 2i + j, for i = 0..n, j ∈ {0,1}.
  auto id = [](std::size_t prefix, int copy) {
    return static_cast<Element>(2 * prefix + copy);
  };
  Structure d(q.schema_ptr(), 2 * (n + 1));
  Structure d_prime(q.schema_ptr(), 2 * (n + 1));
  for (std::size_t i = 0; i < n; ++i) {
    RelationId r = q.word()[i];
    for (int j = 0; j < 2; ++j) {
      d.AddFact(r, {id(i, j), id(i + 1, j)});
    }
    // D′: stay within the copy when both endpoints are on the same side of
    // the reachability relation ∼, cross otherwise (Appendix B).
    bool same_class = reachable[i] == reachable[i + 1];
    for (int j = 0; j < 2; ++j) {
      int target = same_class ? j : 1 - j;
      d_prime.AddFact(r, {id(i, j), id(i + 1, target)});
    }
  }
  return {std::move(d), std::move(d_prime)};
}

}  // namespace bagdet
