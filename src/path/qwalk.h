// bagdet: q-walks and their reductions (Definitions 12–14, Lemma 15).
//
// A path ε→q in G_{q,V} induces a word over Σ ∪ Σ⁻¹ — the q-walk
// (v_{p1})^{ε1}(v_{p2})^{ε2}…(v_{pm})^{εm} — that can be reduced to q by
// cancelling adjacent A·A⁻¹ (the +/- relation) or A⁻¹·A (the -/+ relation)
// pairs. These reductions drive the relational-approximation argument
// behind Lemma 11 (⇐): H_q ⊆ H_walk ⊆ H_q, hence H_q = H_walk.

#ifndef BAGDET_PATH_QWALK_H_
#define BAGDET_PATH_QWALK_H_

#include <string>
#include <vector>

#include "path/path_query.h"

namespace bagdet {

/// One letter of a word over Σ ∪ Σ⁻¹.
struct SignedLetter {
  RelationId relation;
  int sign;  ///< +1 for R, -1 for R⁻¹.

  friend bool operator==(const SignedLetter& a, const SignedLetter& b) {
    return a.relation == b.relation && a.sign == b.sign;
  }
};

using SignedWord = std::vector<SignedLetter>;

/// Builds the q-walk induced by an ε→q path: each forward step contributes
/// v, each backward step contributes v⁻¹ (v reversed with letters
/// inverted — footnote 18).
SignedWord BuildQWalk(const PathQuery& q, const std::vector<PathQuery>& views,
                      const std::vector<PrefixStep>& path);

/// Checks conditions (1)–(3) of Definition 12 against q.
bool IsQWalk(const SignedWord& word, const PathQuery& q);

/// One +/- reduction: removes the leftmost adjacent pair A·A⁻¹.
/// Returns false when no such pair exists.
bool ReduceStepPlusMinus(SignedWord* word);

/// One -/+ reduction: removes the leftmost adjacent pair A⁻¹·A.
bool ReduceStepMinusPlus(SignedWord* word);

/// Applies +/- reductions to a fixpoint, recording every intermediate word
/// (Lemma 15: for a q-walk the fixpoint is q itself).
std::vector<SignedWord> ReduceToFixpointPlusMinus(SignedWord word);

/// Same with -/+ reductions.
std::vector<SignedWord> ReduceToFixpointMinusPlus(SignedWord word);

/// The positive word q as a SignedWord.
SignedWord ToSignedWord(const PathQuery& q);

/// "A.B.C^-1.B" style rendering.
std::string SignedWordToString(const SignedWord& word, const Schema& schema);

}  // namespace bagdet

#endif  // BAGDET_PATH_QWALK_H_
