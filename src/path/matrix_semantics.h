// bagdet: incidence-matrix semantics of path queries (Definitions 16–17,
// Fact 18): for a word w and structure D over a binary schema,
// w(D)[a_i, a_j] = M^D_w(i, j) where M^D_w is the product of the incidence
// matrices of the letters of w. Used to evaluate path-query answer bags and
// to cross-validate the Theorem-1 procedure.

#ifndef BAGDET_PATH_MATRIX_SEMANTICS_H_
#define BAGDET_PATH_MATRIX_SEMANTICS_H_

#include <vector>

#include "path/path_query.h"
#include "query/cq.h"
#include "util/bigint.h"

namespace bagdet {

/// Dense nonnegative integer count matrix (n × n over a shared domain).
using CountMatrix = std::vector<std::vector<BigInt>>;

/// The n × n identity (M^D_ε of Definition 17).
CountMatrix IdentityCountMatrix(std::size_t n);

/// Incidence matrix M^D_R (Definition 16).
CountMatrix IncidenceMatrix(const Structure& data, RelationId relation);

/// Plain matrix product.
CountMatrix MultiplyCountMatrices(const CountMatrix& a, const CountMatrix& b);

/// M^D_w for the word of `query` (Definition 17: M^D_{Rw} = M^D_R · M^D_w).
CountMatrix WordMatrix(const Structure& data, const PathQuery& query);

/// The answer bag of the (binary) path query: (a_i, a_j) ↦ M^D_w(i, j)
/// (Fact 18). Zero entries are omitted.
AnswerBag EvaluatePathQuery(const Structure& data, const PathQuery& query);

/// Total number of homomorphisms Σ_{i,j} M^D_w(i, j) — the boolean
/// (existentially closed) reading of the path query.
BigInt CountPathHoms(const Structure& data, const PathQuery& query);

}  // namespace bagdet

#endif  // BAGDET_PATH_MATRIX_SEMANTICS_H_
