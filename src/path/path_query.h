// bagdet: path queries and their determinacy (Section 3, Theorem 1).
//
// A path query over a binary schema is a word over the relation symbols
// (Section 2.1). Theorem 1: for path queries, set- and bag-semantics
// determinacy coincide, and both are characterized by reachability in the
// prefix graph G_{q,V} (Definition 9, Fact 10, Lemma 11): vertices are the
// prefixes of q, and w — wv is an edge for every view v. The procedure
// returns the ε→q path as a certificate when determined, and the
// Appendix-B "twisted double cover" counterexample pair when not.

#ifndef BAGDET_PATH_PATH_QUERY_H_
#define BAGDET_PATH_PATH_QUERY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "query/cq.h"
#include "structs/structure.h"

namespace bagdet {

/// A path query, identified with its word over the schema's binary
/// relation symbols.
class PathQuery {
 public:
  PathQuery() = default;
  PathQuery(std::shared_ptr<const Schema> schema, std::vector<RelationId> word);

  /// Builds from a word of single-character relation names ("ABC"),
  /// adding missing binary relations to `schema`.
  static PathQuery FromWord(std::string_view word,
                            const std::shared_ptr<Schema>& schema);

  const std::vector<RelationId>& word() const { return word_; }
  std::size_t Length() const { return word_.size(); }
  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }

  /// True iff `this` equals the subword of `other` starting at `offset`.
  bool MatchesAt(const PathQuery& other, std::size_t offset) const;

  /// The frozen body: a simple directed path 0 →q[0] 1 →q[1] ... n.
  Structure FrozenBody() const;

  /// The equivalent binary conjunctive query
  /// Λ(x, y) = ∃x1..x_{n-1} R1(x,x1), ..., Rn(x_{n-1},y) (Section 2.1).
  /// Its Evaluate answer bag coincides with EvaluatePathQuery's
  /// matrix-based result (Fact 18) — cross-checked in tests.
  ConjunctiveQuery ToConjunctiveQuery(std::string name) const;

  std::string ToString() const;

  friend bool operator==(const PathQuery& a, const PathQuery& b) {
    return a.word_ == b.word_;
  }

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<RelationId> word_;
};

/// One edge of the ε→q path in G_{q,V}: prefix w_{j-1} to prefix w_j using
/// view `view_index`, in the forward (+1: w_j = w_{j-1}·v) or backward
/// (-1: w_{j-1} = w_j·v) direction.
struct PrefixStep {
  std::size_t from_prefix;  ///< |w_{j-1}|.
  std::size_t to_prefix;    ///< |w_j|.
  std::size_t view_index;   ///< Index into V.
  int direction;            ///< +1 or -1 (the ε_j of Section 3).
};

struct PathDeterminacyResult {
  /// Theorem 1: the same verdict under set and bag semantics.
  bool determined = false;
  /// When determined: a shortest ε→q path in G_{q,V} (Fact 10 / Lemma 11).
  std::vector<PrefixStep> path;
  /// When not determined and requested: structures D, D′ over a shared
  /// domain with v(D) = v(D′) as answer bags for every v ∈ V but
  /// q(D) ≠ q(D′) (Appendix B).
  std::optional<std::pair<Structure, Structure>> counterexample;
};

/// Decides V ⟶bag q (equivalently V ⟶set q) for path queries.
PathDeterminacyResult DecidePathDeterminacy(
    const PathQuery& q, const std::vector<PathQuery>& views,
    bool want_counterexample = true);

/// The Appendix-B counterexample pair for a non-determined instance:
/// D = q + q (two disjoint frozen paths) and D′ the reachability-twisted
/// version. Throws std::logic_error when the instance is determined.
std::pair<Structure, Structure> BuildPathCounterexample(
    const PathQuery& q, const std::vector<PathQuery>& views);

}  // namespace bagdet

#endif  // BAGDET_PATH_PATH_QUERY_H_
