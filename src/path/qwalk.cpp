#include "path/qwalk.h"

#include <stdexcept>

namespace bagdet {

SignedWord BuildQWalk(const PathQuery& q, const std::vector<PathQuery>& views,
                      const std::vector<PrefixStep>& path) {
  (void)q;
  SignedWord walk;
  for (const PrefixStep& step : path) {
    const PathQuery& v = views.at(step.view_index);
    if (step.direction == +1) {
      for (RelationId r : v.word()) walk.push_back(SignedLetter{r, +1});
    } else {
      for (std::size_t i = v.Length(); i-- > 0;) {
        walk.push_back(SignedLetter{v.word()[i], -1});
      }
    }
  }
  return walk;
}

bool IsQWalk(const SignedWord& word, const PathQuery& q) {
  const std::int64_t target = static_cast<std::int64_t>(q.Length());
  std::int64_t height = 0;  // Σ_{j<=i} ι_j, the current prefix position.
  for (const SignedLetter& letter : word) {
    // Condition (3): the letter must match q at the position it traverses.
    std::int64_t position = letter.sign == +1 ? height : height - 1;
    if (position < 0 || position >= target) return false;
    if (q.word()[static_cast<std::size_t>(position)] != letter.relation) {
      return false;
    }
    height += letter.sign;
    // Condition (1): 0 <= height <= |q| at every point.
    if (height < 0 || height > target) return false;
  }
  // Condition (2): the walk ends at |q|.
  return height == target;
}

namespace {

bool ReduceStep(SignedWord* word, int first_sign) {
  for (std::size_t i = 0; i + 1 < word->size(); ++i) {
    if ((*word)[i].relation == (*word)[i + 1].relation &&
        (*word)[i].sign == first_sign && (*word)[i + 1].sign == -first_sign) {
      word->erase(word->begin() + static_cast<std::ptrdiff_t>(i),
                  word->begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return true;
    }
  }
  return false;
}

}  // namespace

bool ReduceStepPlusMinus(SignedWord* word) { return ReduceStep(word, +1); }
bool ReduceStepMinusPlus(SignedWord* word) { return ReduceStep(word, -1); }

std::vector<SignedWord> ReduceToFixpointPlusMinus(SignedWord word) {
  std::vector<SignedWord> trace{word};
  while (ReduceStepPlusMinus(&word)) trace.push_back(word);
  return trace;
}

std::vector<SignedWord> ReduceToFixpointMinusPlus(SignedWord word) {
  std::vector<SignedWord> trace{word};
  while (ReduceStepMinusPlus(&word)) trace.push_back(word);
  return trace;
}

SignedWord ToSignedWord(const PathQuery& q) {
  SignedWord word;
  for (RelationId r : q.word()) word.push_back(SignedLetter{r, +1});
  return word;
}

std::string SignedWordToString(const SignedWord& word, const Schema& schema) {
  if (word.empty()) return "<epsilon>";
  std::string out;
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (i != 0) out += '.';
    out += schema.Name(word[i].relation);
    if (word[i].sign < 0) out += "^-1";
  }
  return out;
}

}  // namespace bagdet
