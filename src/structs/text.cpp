#include "structs/text.h"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace bagdet {

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpaceAndComments() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ < text_.size() && text_[pos_] == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  bool AtEnd() {
    SkipSpaceAndComments();
    return pos_ >= text_.size();
  }

  std::string ReadName() {
    SkipSpaceAndComments();
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ++pos_;
      } else {
        break;
      }
    }
    if (start == pos_) Fail("expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::uint64_t ReadNumber() {
    SkipSpaceAndComments();
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      Fail("expected a number");
    }
    std::uint64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    return value;
  }

  bool TryConsume(char c) {
    SkipSpaceAndComments();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void Expect(char c) {
    if (!TryConsume(c)) Fail(std::string("expected '") + c + "'");
  }

  [[noreturn]] void Fail(const std::string& what) {
    throw std::invalid_argument("structure parse: " + what + " at position " +
                                std::to_string(pos_));
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Structure ParseStructure(std::string_view text,
                         const std::shared_ptr<Schema>& schema) {
  Structure s(schema);
  Cursor cursor(text);
  while (!cursor.AtEnd()) {
    std::string name = cursor.ReadName();
    if (name == "domain") {
      s.EnsureDomain(static_cast<std::size_t>(cursor.ReadNumber()));
      cursor.TryConsume(',');  // Optional separator between entries.
      continue;
    }
    Tuple elements;
    cursor.Expect('(');
    if (!cursor.TryConsume(')')) {
      for (;;) {
        elements.push_back(static_cast<Element>(cursor.ReadNumber()));
        if (cursor.TryConsume(')')) break;
        cursor.Expect(',');
      }
    }
    RelationId relation = schema->AddRelation(name, elements.size());
    s.AddFact(relation, std::move(elements));
    cursor.TryConsume(',');  // Optional separator between facts.
  }
  return s;
}

std::string FormatStructure(const Structure& s) {
  std::ostringstream os;
  bool first = true;
  Element max_used = 0;
  bool any_used = false;
  for (RelationId r = 0; r < s.schema().NumRelations(); ++r) {
    for (const Tuple& t : s.Facts(r)) {
      if (!first) os << ", ";
      first = false;
      os << s.schema().Name(r) << '(';
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i != 0) os << ',';
        os << t[i];
        max_used = t[i] > max_used ? t[i] : max_used;
        any_used = true;
      }
      os << ')';
    }
  }
  std::size_t covered = any_used ? static_cast<std::size_t>(max_used) + 1 : 0;
  if (s.DomainSize() > covered) {
    if (!first) os << ", ";
    os << "domain " << s.DomainSize();
  }
  return os.str();
}

}  // namespace bagdet
