// bagdet: canonical-form interning of structures.
//
// A StructurePool maps canonical keys (structs/canonical.h) to unique,
// dense StructureRef ids: two structures intern to the same ref iff they
// are isomorphic. This turns the pipeline's "is this component already
// known?" and "which basis index is this component?" questions — previously
// O(k) pairwise IsIsomorphic backtracking — into single hash-map probes,
// and gives the hom-count cache (hom/hom_cache.h) stable (from, to) keys.
//
// Thread safety (the concurrent-serving contract):
//   * Intern/InternWithKey/Find/FindKey take a short per-shard mutex — the
//     table is split into kNumShards shards by canonical-key hash, so
//     concurrent interns of unrelated classes do not contend.
//   * At()/KeyOf()/size() are lock-free: entries are heap-allocated once,
//     published with a release store into a chunked slot directory, and
//     never moved or mutated afterwards. A ref handed to any thread can be
//     dereferenced by any thread with a plain acquire load.
//   * Published representatives are immutable *including their lazy
//     caches*: Intern warms Structure::Index() before publication and the
//     canonical form is already cached by key computation, so concurrent
//     readers never race on the Structure's internal shared_ptr caches.
//
// Refs are "dense modulo sharding": the ref of the i-th class of shard s
// is i * kNumShards + s, so a pool with C classes only uses refs below
// C * kNumShards — still suitable for direct-indexed side tables.
//
// Persistent (cross-request) use: a pool owned by a long-lived
// DeterminacyService (src/serve/service.h) outlives any single
// AnalyzeInstance and accumulates classes across the whole request stream.
// Two knobs support that mode without touching the per-call fast path:
//   * The slot directory grows by publishing new geometric blocks — old
//     blocks are never reallocated or moved, so lock-free readers stay
//     race-free at any size. The first-block size is a constructor hint:
//     per-call pools keep the tiny default (a few hundred bytes of
//     directory), a serving pool starts at a few thousand slots so the
//     hot path touches fewer blocks.
//   * ApproxBytes() tracks the projected resident footprint of every
//     retained class, so an owner can rotate generations (retire the whole
//     pool once budgets are exceeded, keeping it alive via shared_ptr for
//     in-flight requests) instead of evicting entries — per-entry eviction
//     would invalidate outstanding refs, rotation never does.

#ifndef BAGDET_STRUCTS_POOL_H_
#define BAGDET_STRUCTS_POOL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "structs/canonical.h"
#include "structs/structure.h"

namespace bagdet {

/// Dense id of an interned isomorphism class within one StructurePool.
using StructureRef = std::uint32_t;

/// Sentinel for "not interned".
constexpr StructureRef kInvalidStructureRef = static_cast<StructureRef>(-1);

/// Interning pool: canonical key → unique ref, with the first-seen
/// representative structure retained per class.
class StructurePool {
 public:
  /// Number of independently locked shards (power of two).
  static constexpr std::size_t kNumShards = 8;

  /// First-block size of the per-shard slot directory (per-call pools).
  static constexpr std::size_t kDefaultFirstBlockSize = 64;

  /// `first_block_size` sizes the first directory block per shard (rounded
  /// up to a power of two, clamped to [8, 2^20]). Later blocks double, so
  /// the hint trades a little up-front directory memory for fewer blocks
  /// on pools expected to retain many classes (serving tiers); the default
  /// keeps per-call pools a few hundred bytes.
  explicit StructurePool(std::size_t first_block_size = kDefaultFirstBlockSize);
  ~StructurePool();

  StructurePool(const StructurePool&) = delete;
  StructurePool& operator=(const StructurePool&) = delete;

  /// Interns `s`, returning the ref of its isomorphism class. The first
  /// structure of a class becomes the class representative; later
  /// isomorphic structures return the existing ref without being stored.
  /// Uses the structure's cached canonical form (Structure::CanonicalData).
  StructureRef Intern(const Structure& s);
  StructureRef Intern(Structure&& s);

  /// Interns `s` under an externally computed `key`. The caller guarantees
  /// key == CanonicalKeyOf(s) — used by layers that already hold the
  /// per-component certificates and must not re-run the labeling search.
  /// For lock-free readers to stay race-free, `s` should arrive with its
  /// canonical data already cached (both in-tree callers guarantee this).
  StructureRef InternWithKey(const CanonicalKey& key, Structure s);

  /// Ref of `s`'s class if already interned, kInvalidStructureRef otherwise.
  StructureRef Find(const Structure& s) const;

  /// Ref of the class with this canonical key, if interned.
  StructureRef FindKey(const CanonicalKey& key) const;

  /// Representative structure of a class. Lock-free; the reference is
  /// stable for the lifetime of the pool (entries never move). Throws
  /// std::out_of_range for refs this pool never returned.
  const Structure& At(StructureRef ref) const;

  /// Canonical key of a class. Lock-free, same lifetime as At().
  const CanonicalKey& KeyOf(StructureRef ref) const;

  /// Number of distinct isomorphism classes interned.
  std::size_t size() const;

  /// True iff `ref` was handed out by this pool (lock-free, like At()).
  bool Contains(StructureRef ref) const { return EntryAt(ref) != nullptr; }

  /// Approximate resident footprint of every retained class (the same
  /// projection Intern charges against a governing ExecContext). Owners of
  /// persistent pools use this to decide generation rotation.
  std::uint64_t ApproxBytes() const;

 private:
  struct Entry {
    CanonicalKey key;
    Structure structure;
  };

  // Chunked slot directory per shard: block pointers and entry pointers
  // are published with release stores and read with acquire loads, so
  // At()/KeyOf() need no lock. Blocks grow geometrically (block b holds
  // first_block_size_ << b slots, allocated lazily under the shard mutex);
  // growth only ever publishes a new block — existing blocks are never
  // reallocated or moved, which is what keeps lock-free readers safe while
  // a persistent pool grows across requests. The default first-block size
  // keeps a per-call directory a few hundred bytes while still covering
  // the encodable ref space; Intern throws std::length_error at the
  // (unreachable in practice) capacity rather than misbehaving.
  static constexpr std::size_t kMaxBlocks = 23;
  // Largest shard-local index whose encoded ref still fits StructureRef
  // without colliding with kInvalidStructureRef. With the default first
  // block the directory caps capacity just below this (64 * (2^23 - 1) <
  // 2^32 / 8); larger first-block hints could exceed it, so the intern
  // path checks this bound explicitly and ref arithmetic can never wrap.
  static constexpr std::uint32_t kMaxLocalIndex =
      (kInvalidStructureRef - (kNumShards - 1)) / kNumShards;
  using Slot = std::atomic<const Entry*>;
  struct Shard {
    mutable std::mutex mu;
    // Guarded by mu; values are full (encoded) refs.
    std::unordered_map<CanonicalKey, StructureRef, CanonicalKeyHash> by_key;
    std::array<std::atomic<Slot*>, kMaxBlocks> blocks{};
    std::atomic<std::uint32_t> count{0};  // Published entries in this shard.
    std::atomic<std::uint64_t> bytes{0};  // Projected footprint retained.
  };

  /// Maps a shard-local index to its (block, offset) in the geometric
  /// directory: blocks 0..b-1 hold first_block_size_ * (2^b - 1) slots.
  void Locate(std::uint32_t local, std::size_t* block,
              std::size_t* offset) const {
    const unsigned long long m = local / first_block_size_ + 1;
    const int b = 63 - __builtin_clzll(m);
    *block = static_cast<std::size_t>(b);
    *offset = local - first_block_size_ * ((1ull << b) - 1);
  }

  static std::size_t ShardOf(const CanonicalKey& key) {
    // The low hash bits feed the shard's unordered_map buckets; mix the
    // high bits into shard selection so the two partitions are independent.
    return static_cast<std::size_t>(key.hash >> 57) & (kNumShards - 1);
  }

  /// Entry for a published ref, nullptr for refs never handed out.
  const Entry* EntryAt(StructureRef ref) const;

  const std::size_t first_block_size_;
  std::array<Shard, kNumShards> shards_;
};

}  // namespace bagdet

#endif  // BAGDET_STRUCTS_POOL_H_
