// bagdet: canonical-form interning of structures.
//
// A StructurePool maps canonical keys (structs/canonical.h) to unique,
// dense StructureRef ids: two structures intern to the same ref iff they
// are isomorphic. This turns the pipeline's "is this component already
// known?" and "which basis index is this component?" questions — previously
// O(k) pairwise IsIsomorphic backtracking — into single hash-map probes,
// and gives the hom-count cache (hom/hom_cache.h) stable (from, to) keys.
//
// The pool is not synchronized; intern on one thread (HomCache's batch
// entry point pre-interns before farming counts out to workers).

#ifndef BAGDET_STRUCTS_POOL_H_
#define BAGDET_STRUCTS_POOL_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "structs/canonical.h"
#include "structs/structure.h"

namespace bagdet {

/// Dense id of an interned isomorphism class within one StructurePool.
using StructureRef = std::uint32_t;

/// Sentinel for "not interned".
constexpr StructureRef kInvalidStructureRef = static_cast<StructureRef>(-1);

/// Interning pool: canonical key → unique ref, with the first-seen
/// representative structure retained per class.
class StructurePool {
 public:
  /// Interns `s`, returning the ref of its isomorphism class. The first
  /// structure of a class becomes the class representative; later
  /// isomorphic structures return the existing ref without being stored.
  /// Uses the structure's cached canonical form (Structure::CanonicalData).
  StructureRef Intern(const Structure& s);
  StructureRef Intern(Structure&& s);

  /// Interns `s` under an externally computed `key`. The caller guarantees
  /// key == CanonicalKeyOf(s) — used by layers that already hold the
  /// per-component certificates and must not re-run the labeling search.
  StructureRef InternWithKey(const CanonicalKey& key, Structure s);

  /// Ref of `s`'s class if already interned, kInvalidStructureRef otherwise.
  StructureRef Find(const Structure& s) const;

  /// Ref of the class with this canonical key, if interned.
  StructureRef FindKey(const CanonicalKey& key) const;

  /// Representative structure of a class. The reference is stable for the
  /// lifetime of the pool (storage never moves).
  const Structure& At(StructureRef ref) const { return structures_.at(ref); }

  /// Canonical key of a class.
  const CanonicalKey& KeyOf(StructureRef ref) const { return keys_.at(ref); }

  /// Number of distinct isomorphism classes interned.
  std::size_t size() const { return structures_.size(); }

 private:
  std::unordered_map<CanonicalKey, StructureRef, CanonicalKeyHash> by_key_;
  std::deque<Structure> structures_;  // Deque: stable references across growth.
  std::vector<CanonicalKey> keys_;
};

}  // namespace bagdet

#endif  // BAGDET_STRUCTS_POOL_H_
