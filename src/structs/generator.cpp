#include "structs/generator.h"

#include <cmath>
#include <stdexcept>

namespace bagdet {

namespace {

/// Iterates over all tuples of the given arity over 0..domain_size-1.
/// Returns false once the tuple wraps back to all-zeros.
bool NextTuple(Tuple* tuple, std::size_t domain_size) {
  for (std::size_t i = tuple->size(); i-- > 0;) {
    if (++(*tuple)[i] < domain_size) return true;
    (*tuple)[i] = 0;
  }
  return false;
}

}  // namespace

std::uint64_t CountPotentialFacts(const Schema& schema,
                                  std::size_t domain_size) {
  std::uint64_t total = 0;
  for (RelationId r = 0; r < schema.NumRelations(); ++r) {
    std::uint64_t count = 1;
    for (std::size_t i = 0; i < schema.Arity(r); ++i) count *= domain_size;
    total += count;
  }
  return total;
}

Structure RandomStructure(std::shared_ptr<const Schema> schema,
                          std::size_t domain_size, Rng* rng,
                          std::uint64_t numer, std::uint64_t denom) {
  Structure s(schema, domain_size);
  for (RelationId r = 0; r < schema->NumRelations(); ++r) {
    const std::size_t arity = schema->Arity(r);
    if (arity == 0) {
      if (rng->Chance(numer, denom)) s.AddFact(r, {});
      continue;
    }
    if (domain_size == 0) continue;
    Tuple t(arity, 0);
    do {
      if (rng->Chance(numer, denom)) s.AddFact(r, t);
    } while (NextTuple(&t, domain_size));
  }
  return s;
}

Structure RandomConnectedStructure(std::shared_ptr<const Schema> schema,
                                   std::size_t domain_size, Rng* rng,
                                   std::uint64_t numer, std::uint64_t denom) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    Structure s = RandomStructure(schema, domain_size, rng, numer, denom);
    if (s.IsConnected()) return s;
  }
  // Rejection failed (sparse settings): chain the domain with the first
  // relation of arity >= 2, or stack unary facts on one element.
  Structure s = RandomStructure(schema, domain_size, rng, numer, denom);
  for (RelationId r = 0; r < schema->NumRelations(); ++r) {
    const std::size_t arity = schema->Arity(r);
    if (arity >= 2 && domain_size >= 1) {
      for (std::size_t e = 0; e + 1 < domain_size; ++e) {
        Tuple t(arity, static_cast<Element>(e));
        t[1] = static_cast<Element>(e + 1);
        s.AddFact(r, std::move(t));
      }
      return s;
    }
  }
  if (domain_size <= 1) return s;
  throw std::invalid_argument(
      "RandomConnectedStructure: schema cannot connect a domain of size > 1");
}

bool EnumerateStructures(std::shared_ptr<const Schema> schema,
                         std::size_t domain_size,
                         const std::function<bool(const Structure&)>& visit) {
  // Collect the potential facts once, then walk all subsets via a binary
  // counter with incremental add/remove being emulated by rebuilds (the
  // structures are tiny by contract).
  std::vector<std::pair<RelationId, Tuple>> potential;
  for (RelationId r = 0; r < schema->NumRelations(); ++r) {
    const std::size_t arity = schema->Arity(r);
    if (arity == 0) {
      potential.emplace_back(r, Tuple{});
      continue;
    }
    if (domain_size == 0) continue;
    Tuple t(arity, 0);
    do {
      potential.emplace_back(r, t);
    } while (NextTuple(&t, domain_size));
  }
  if (potential.size() >= 30) {
    throw std::invalid_argument(
        "EnumerateStructures: too many potential facts (" +
        std::to_string(potential.size()) + "); refusing to enumerate 2^30+");
  }
  const std::uint64_t limit = 1ull << potential.size();
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    Structure s(schema, domain_size);
    for (std::size_t i = 0; i < potential.size(); ++i) {
      if (mask & (1ull << i)) s.AddFact(potential[i].first, potential[i].second);
    }
    if (!visit(s)) return false;
  }
  return true;
}

}  // namespace bagdet
