// bagdet: color refinement (1-dimensional Weisfeiler–Leman).
//
// Iteratively refines a coloring of the domain by the multiset of
// (relation, position, neighbor-colors) incidences until stable. The
// stable color histogram is an isomorphism invariant strictly stronger
// than degree profiles; it prunes the isomorphism backtracking and gives
// the distinguisher search a fast non-isomorphism witness. (It is not
// complete — e.g. it cannot tell a 6-cycle from two 3-cycles — which is
// why IsIsomorphic still backtracks and Lemma 43 needs hom counts.)

#ifndef BAGDET_STRUCTS_REFINEMENT_H_
#define BAGDET_STRUCTS_REFINEMENT_H_

#include <cstdint>
#include <vector>

#include "structs/structure.h"

namespace bagdet {

/// Stable coloring of the domain: colors are dense ids 0..k-1, canonical
/// in the sense that isomorphic structures get identical color
/// *histograms* (not necessarily identical per-element ids).
struct ColorRefinementResult {
  std::vector<std::uint32_t> color_of_element;
  std::size_t num_colors = 0;
  /// Sorted (color, count) histogram — the isomorphism invariant.
  std::vector<std::pair<std::uint64_t, std::size_t>> histogram;
  std::size_t rounds = 0;  ///< Refinement rounds until stable.
};

/// Runs color refinement to the stable partition.
///
/// With the default (null) seed, refinement starts from the uniform
/// coloring and the result carries the canonical histogram invariant.
/// A non-null `seed_colors` (with `seed_num_colors` distinct ids) starts
/// from that coloring instead — the individualization step of the
/// canonical-labeling search (structs/canonical.cpp) branches this way —
/// color ids then stay isomorphism-invariant functions of (structure,
/// initial coloring). Seeded runs skip the histogram (the search never
/// reads it) and return unchanged immediately when the seed is already
/// discrete.
ColorRefinementResult RefineColors(
    const Structure& s, const std::vector<std::uint32_t>* seed_colors = nullptr,
    std::size_t seed_num_colors = 0);

/// True iff the stable histograms differ — a sound (but incomplete)
/// non-isomorphism check: true implies non-isomorphic.
bool ColorRefinementDistinguishes(const Structure& a, const Structure& b);

}  // namespace bagdet

#endif  // BAGDET_STRUCTS_REFINEMENT_H_
