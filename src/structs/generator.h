// bagdet: structure generators for property tests, random cross-validation,
// and the tiered distinguisher search (Step 1 of Lemma 40).

#ifndef BAGDET_STRUCTS_GENERATOR_H_
#define BAGDET_STRUCTS_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "structs/structure.h"
#include "util/rng.h"

namespace bagdet {

/// Samples a structure with the given domain size; each potential fact is
/// included independently with probability numer/denom.
Structure RandomStructure(std::shared_ptr<const Schema> schema,
                          std::size_t domain_size, Rng* rng,
                          std::uint64_t numer = 1, std::uint64_t denom = 2);

/// Samples a *connected* structure (rejection sampling; falls back to
/// chaining elements with the first positive-arity relation when rejection
/// keeps failing).
Structure RandomConnectedStructure(std::shared_ptr<const Schema> schema,
                                   std::size_t domain_size, Rng* rng,
                                   std::uint64_t numer = 1,
                                   std::uint64_t denom = 2);

/// Calls `visit` for every structure over `schema` with exactly
/// `domain_size` elements (all 2^(#potential facts) fact subsets).
/// Stops early when `visit` returns false. Returns false iff stopped early.
///
/// Exponential; intended for the exhaustive tail of the distinguisher search
/// and for small-domain brute-force validation only.
bool EnumerateStructures(std::shared_ptr<const Schema> schema,
                         std::size_t domain_size,
                         const std::function<bool(const Structure&)>& visit);

/// Number of potential facts over a domain of the given size (the exhaustive
/// enumeration visits 2^this structures).
std::uint64_t CountPotentialFacts(const Schema& schema, std::size_t domain_size);

}  // namespace bagdet

#endif  // BAGDET_STRUCTS_GENERATOR_H_
