#include "structs/structure.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "structs/canonical.h"
#include "structs/index.h"
#include "structs/refinement.h"

namespace bagdet {

Structure::Structure(std::shared_ptr<const Schema> schema,
                     std::size_t domain_size)
    : schema_(std::move(schema)), domain_size_(domain_size) {
  facts_.resize(schema_->NumRelations());
}

void Structure::AddFact(RelationId relation, Tuple elements) {
  if (relation >= schema_->NumRelations()) {
    throw std::invalid_argument("Structure: unknown relation id");
  }
  if (elements.size() != schema_->Arity(relation)) {
    throw std::invalid_argument("Structure: tuple arity mismatch for " +
                                schema_->Name(relation));
  }
  if (facts_.size() < schema_->NumRelations()) {
    facts_.resize(schema_->NumRelations());
  }
  for (Element e : elements) {
    EnsureDomain(static_cast<std::size_t>(e) + 1);
  }
  auto& rows = facts_[relation];
  auto it = std::lower_bound(rows.begin(), rows.end(), elements);
  if (it == rows.end() || *it != elements) {
    rows.insert(it, std::move(elements));
    index_.reset();
    canonical_.reset();
  }
}

const StructureIndex& Structure::Index() const {
  if (index_ == nullptr) index_ = std::make_shared<StructureIndex>(*this);
  return *index_;
}

const StructureCanonicalData& Structure::CanonicalData() const {
  if (canonical_ == nullptr) {
    canonical_ =
        std::make_shared<const StructureCanonicalData>(ComputeCanonicalData(*this));
  }
  return *canonical_;
}

bool Structure::HasFact(RelationId relation, const Tuple& elements) const {
  if (relation >= facts_.size()) return false;
  const auto& rows = facts_[relation];
  return std::binary_search(rows.begin(), rows.end(), elements);
}

std::size_t Structure::NumFacts() const {
  std::size_t total = 0;
  for (const auto& rows : facts_) total += rows.size();
  return total;
}

namespace {

/// Plain union-find over 0..n-1.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

bool Structure::IsConnected() const {
  std::size_t nullary_facts = 0;
  for (RelationId r = 0; r < schema_->NumRelations(); ++r) {
    if (schema_->Arity(r) == 0 && r < facts_.size()) {
      nullary_facts += facts_[r].size();
    }
  }
  if (domain_size_ == 0) return nullary_facts == 1;
  if (nullary_facts > 0) return false;  // Nullary facts are separate pieces.
  UnionFind uf(domain_size_);
  for (const auto& rows : facts_) {
    for (const Tuple& t : rows) {
      for (std::size_t i = 1; i < t.size(); ++i) uf.Union(t[0], t[i]);
    }
  }
  std::size_t root = uf.Find(0);
  for (std::size_t e = 1; e < domain_size_; ++e) {
    if (uf.Find(e) != root) return false;
  }
  return true;
}

Structure Structure::MapDomain(const std::vector<Element>& mapping,
                               std::size_t new_domain_size) const {
  if (mapping.size() < domain_size_) {
    throw std::invalid_argument("MapDomain: mapping too short");
  }
  Structure result(schema_, new_domain_size);
  for (RelationId r = 0; r < facts_.size(); ++r) {
    for (const Tuple& t : facts_[r]) {
      Tuple mapped(t.size());
      for (std::size_t i = 0; i < t.size(); ++i) mapped[i] = mapping[t[i]];
      result.AddFact(r, std::move(mapped));
    }
  }
  return result;
}

std::string Structure::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (RelationId r = 0; r < facts_.size(); ++r) {
    for (const Tuple& t : facts_[r]) {
      if (!first) os << ", ";
      first = false;
      os << schema_->Name(r) << '(';
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i != 0) os << ',';
        os << t[i];
      }
      os << ')';
    }
  }
  if (first) os << "<empty" << (domain_size_ ? "" : ", no domain") << ">";
  return os.str();
}

bool operator==(const Structure& a, const Structure& b) {
  return *a.schema_ == *b.schema_ && a.domain_size_ == b.domain_size_ &&
         a.facts_ == b.facts_;
}

std::uint64_t Structure::InvariantFingerprint() const {
  // Multiset of per-element "degree profiles" plus global counts. Equal for
  // isomorphic structures because it never references element names.
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  auto slot_hash = [](RelationId r, std::size_t pos) {
    std::uint64_t z = (static_cast<std::uint64_t>(r) << 8) | pos;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  std::vector<std::uint64_t> profiles(domain_size_, 0);
  std::uint64_t global = domain_size_;
  for (RelationId r = 0; r < facts_.size(); ++r) {
    global = mix(global, (static_cast<std::uint64_t>(r) << 32) | facts_[r].size());
    for (const Tuple& t : facts_[r]) {
      for (std::size_t pos = 0; pos < t.size(); ++pos) {
        // Addition keeps the per-element accumulation independent of the
        // fact iteration order (which depends on element names).
        profiles[t[pos]] += slot_hash(r, pos);
      }
    }
  }
  std::sort(profiles.begin(), profiles.end());
  for (std::uint64_t p : profiles) global = mix(global, p);
  return global;
}

Structure DisjointUnion(const Structure& a, const Structure& b) {
  if (a.schema() != b.schema()) {
    throw std::invalid_argument("DisjointUnion: schema mismatch");
  }
  Structure result(a.schema_ptr(), a.DomainSize() + b.DomainSize());
  const Element offset = static_cast<Element>(a.DomainSize());
  for (RelationId r = 0; r < a.schema().NumRelations(); ++r) {
    for (const Tuple& t : a.Facts(r)) result.AddFact(r, t);
    for (const Tuple& t : b.Facts(r)) {
      Tuple shifted(t.size());
      for (std::size_t i = 0; i < t.size(); ++i) shifted[i] = t[i] + offset;
      result.AddFact(r, std::move(shifted));
    }
  }
  return result;
}

Structure Product(const Structure& a, const Structure& b) {
  if (a.schema() != b.schema()) {
    throw std::invalid_argument("Product: schema mismatch");
  }
  const std::size_t nb = b.DomainSize();
  Structure result(a.schema_ptr(), a.DomainSize() * nb);
  for (RelationId r = 0; r < a.schema().NumRelations(); ++r) {
    for (const Tuple& ta : a.Facts(r)) {
      for (const Tuple& tb : b.Facts(r)) {
        Tuple combined(ta.size());
        for (std::size_t i = 0; i < ta.size(); ++i) {
          combined[i] = static_cast<Element>(ta[i] * nb + tb[i]);
        }
        result.AddFact(r, std::move(combined));
      }
    }
  }
  return result;
}

Structure ScalarMultiple(std::uint64_t t, const Structure& a) {
  Structure result(a.schema_ptr(), 0);
  for (std::uint64_t i = 0; i < t; ++i) result = DisjointUnion(result, a);
  return result;
}

Structure AllLoopsSingleton(std::shared_ptr<const Schema> schema) {
  Structure result(schema, 1);
  for (RelationId r = 0; r < schema->NumRelations(); ++r) {
    result.AddFact(r, Tuple(result.schema().Arity(r), 0));
  }
  return result;
}

Structure IteratedProduct(const Structure& a, std::uint64_t t) {
  Structure result = AllLoopsSingleton(a.schema_ptr());
  for (std::uint64_t i = 0; i < t; ++i) result = Product(result, a);
  return result;
}

std::vector<Structure> ConnectedComponents(const Structure& s) {
  const std::size_t n = s.DomainSize();
  UnionFind uf(n);
  for (RelationId r = 0; r < s.schema().NumRelations(); ++r) {
    for (const Tuple& t : s.Facts(r)) {
      for (std::size_t i = 1; i < t.size(); ++i) uf.Union(t[0], t[i]);
    }
  }
  // Group elements by root.
  std::map<std::size_t, std::vector<Element>> groups;
  for (std::size_t e = 0; e < n; ++e) {
    groups[uf.Find(e)].push_back(static_cast<Element>(e));
  }
  std::vector<Structure> components;
  std::vector<Element> rename(n, 0);
  std::vector<std::size_t> component_of(n, 0);
  std::size_t index = 0;
  for (const auto& [root, members] : groups) {
    (void)root;
    Structure c(s.schema_ptr(), members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      rename[members[i]] = static_cast<Element>(i);
      component_of[members[i]] = index;
    }
    components.push_back(std::move(c));
    ++index;
  }
  for (RelationId r = 0; r < s.schema().NumRelations(); ++r) {
    for (const Tuple& t : s.Facts(r)) {
      if (t.empty()) {
        // Each nullary fact is its own empty-domain component.
        Structure c(s.schema_ptr(), 0);
        c.AddFact(r, {});
        components.push_back(std::move(c));
        continue;
      }
      Tuple renamed(t.size());
      for (std::size_t i = 0; i < t.size(); ++i) renamed[i] = rename[t[i]];
      components[component_of[t[0]]].AddFact(r, std::move(renamed));
    }
  }
  return components;
}

namespace {

/// Per-element invariant used to prune the isomorphism search: for every
/// (relation, position) the number of facts featuring the element there.
std::vector<std::vector<std::uint32_t>> ElementProfiles(const Structure& s) {
  std::size_t slots = 0;
  for (RelationId r = 0; r < s.schema().NumRelations(); ++r) {
    slots += s.schema().Arity(r);
  }
  std::vector<std::vector<std::uint32_t>> profiles(
      s.DomainSize(), std::vector<std::uint32_t>(slots, 0));
  std::size_t base = 0;
  for (RelationId r = 0; r < s.schema().NumRelations(); ++r) {
    for (const Tuple& t : s.Facts(r)) {
      for (std::size_t pos = 0; pos < t.size(); ++pos) {
        ++profiles[t[pos]][base + pos];
      }
    }
    base += s.schema().Arity(r);
  }
  return profiles;
}

bool ExtendIsomorphism(const Structure& a, const Structure& b,
                       const std::vector<std::vector<std::uint32_t>>& pa,
                       const std::vector<std::vector<std::uint32_t>>& pb,
                       std::vector<Element>& mapping, std::vector<bool>& used,
                       std::size_t next) {
  const std::size_t n = a.DomainSize();
  if (next == n) {
    // Verify that mapping sends facts of `a` exactly onto facts of `b`.
    for (RelationId r = 0; r < a.schema().NumRelations(); ++r) {
      if (a.Facts(r).size() != b.Facts(r).size()) return false;
      for (const Tuple& t : a.Facts(r)) {
        Tuple mapped(t.size());
        for (std::size_t i = 0; i < t.size(); ++i) mapped[i] = mapping[t[i]];
        if (!b.HasFact(r, mapped)) return false;
      }
    }
    return true;
  }
  for (Element candidate = 0; candidate < n; ++candidate) {
    if (used[candidate] || pa[next] != pb[candidate]) continue;
    mapping[next] = candidate;
    used[candidate] = true;
    if (ExtendIsomorphism(a, b, pa, pb, mapping, used, next + 1)) return true;
    used[candidate] = false;
  }
  return false;
}

}  // namespace

bool IsIsomorphic(const Structure& a, const Structure& b) {
  if (a.schema() != b.schema()) return false;
  if (a.DomainSize() != b.DomainSize()) return false;
  for (RelationId r = 0; r < a.schema().NumRelations(); ++r) {
    if (a.Facts(r).size() != b.Facts(r).size()) return false;
  }
  if (a.InvariantFingerprint() != b.InvariantFingerprint()) return false;
  auto pa = ElementProfiles(a);
  auto pb = ElementProfiles(b);
  {
    auto sa = pa;
    auto sb = pb;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    if (sa != sb) return false;
  }
  // Color refinement (1-WL) prunes most non-isomorphic pairs that share
  // degree profiles before the backtracking search starts.
  if (ColorRefinementDistinguishes(a, b)) return false;
  std::vector<Element> mapping(a.DomainSize(), 0);
  std::vector<bool> used(a.DomainSize(), false);
  return ExtendIsomorphism(a, b, pa, pb, mapping, used, 0);
}

}  // namespace bagdet
