// bagdet: symbolic structure terms.
//
// The good basis of Lemma 40 involves structures like
//   s(2) = Σ_i T^i s(1)_i         (Step 2, radix construction)
//   s(3)_j = (s(2))^(j-1)         (Step 3, iterated products)
//   s(4)_j = s(3)_j × q           (Step 4)
// whose materialized domains are astronomically large. StructureExpr
// represents such terms exactly as an immutable shared DAG; homomorphism
// counts *into* a term are evaluated symbolically via the Lovász identities
// (Lemma 4) by hom/symbolic.h, and terms can be materialized into concrete
// structures when small enough.

#ifndef BAGDET_STRUCTS_STRUCTURE_EXPR_H_
#define BAGDET_STRUCTS_STRUCTURE_EXPR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "structs/structure.h"
#include "util/bigint.h"

namespace bagdet {

/// An exact, immutable term over structures built from disjoint unions,
/// products, scalar multiples and powers (Section 2.2 of the paper).
class StructureExpr {
 public:
  enum class Kind { kBase, kSum, kProduct, kScalar, kPower };

  /// Default: the empty structure over an empty schema.
  StructureExpr();

  /// Leaf: a concrete structure.
  static StructureExpr Base(Structure s);
  /// Disjoint union of the children (empty sum = empty structure, which
  /// needs a schema, hence the argument).
  static StructureExpr Sum(std::vector<StructureExpr> children,
                           std::shared_ptr<const Schema> schema);
  /// Product of the children (empty product = all-loops singleton).
  static StructureExpr Product(std::vector<StructureExpr> children,
                               std::shared_ptr<const Schema> schema);
  /// coeff · child (coeff >= 0).
  static StructureExpr Scalar(BigInt coeff, StructureExpr child);
  /// child^exponent; exponent 0 yields the all-loops singleton.
  static StructureExpr Power(StructureExpr child, std::uint64_t exponent);

  Kind kind() const { return node_->kind; }
  const Structure& base() const { return node_->base; }
  const std::vector<StructureExpr>& children() const { return node_->children; }
  const BigInt& scalar() const { return node_->scalar; }
  std::uint64_t exponent() const { return node_->exponent; }
  const std::shared_ptr<const Schema>& schema_ptr() const {
    return node_->schema;
  }
  const Schema& schema() const { return *node_->schema; }

  /// Exact domain size of the denoted structure.
  BigInt DomainSize() const;

  /// Exact total fact count of the denoted structure. (Product fact counts
  /// multiply per relation, so this needs per-relation accounting.)
  BigInt NumFacts() const;

  /// Materializes the term into a concrete Structure when the resulting
  /// domain has at most `max_domain` elements; std::nullopt otherwise.
  std::optional<Structure> Materialize(std::size_t max_domain = 4096) const;

  /// Term rendering, e.g. "3*(R(0,1)) + (S(0))^2".
  std::string ToString() const;

 private:
  struct Node {
    Kind kind;
    Structure base;                      // kBase
    std::vector<StructureExpr> children; // kSum, kProduct
    BigInt scalar;                       // kScalar
    std::uint64_t exponent = 0;          // kPower
    std::shared_ptr<const Schema> schema;
  };

  explicit StructureExpr(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::vector<BigInt> PerRelationFacts() const;

  std::shared_ptr<const Node> node_;
};

}  // namespace bagdet

#endif  // BAGDET_STRUCTS_STRUCTURE_EXPR_H_
