// bagdet: finite relational structures (databases).
//
// A structure over a schema is a finite set of facts A(t̄) over a domain
// {0, 1, ..., n-1} (Section 2.1). Facts are kept sorted and deduplicated so
// structures are canonical up to the naming of domain elements.

#ifndef BAGDET_STRUCTS_STRUCTURE_H_
#define BAGDET_STRUCTS_STRUCTURE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "structs/schema.h"

namespace bagdet {

class StructureIndex;
struct StructureCanonicalData;

/// A domain element. Domains are always {0, ..., DomainSize()-1}.
using Element = std::uint32_t;

/// A tuple of domain elements (length = relation arity; empty for nullary).
using Tuple = std::vector<Element>;

/// Finite relational structure with set semantics for facts.
class Structure {
 public:
  /// Empty structure over an empty schema.
  Structure() : schema_(std::make_shared<Schema>()) {}

  /// Empty structure (no facts, `domain_size` isolated elements).
  explicit Structure(std::shared_ptr<const Schema> schema,
                     std::size_t domain_size = 0);

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }

  std::size_t DomainSize() const { return domain_size_; }

  /// Grows the domain to at least `size` elements.
  void EnsureDomain(std::size_t size) {
    if (size > domain_size_) {
      domain_size_ = size;
      index_.reset();
      canonical_.reset();
    }
  }

  /// Adds a fresh isolated element and returns it.
  Element AddElement() {
    index_.reset();
    canonical_.reset();
    return static_cast<Element>(domain_size_++);
  }

  /// Adds the fact `relation(elements...)`; grows the domain as needed.
  /// Duplicate facts are ignored (structures are sets of facts).
  /// Throws std::invalid_argument when the tuple length != relation arity.
  void AddFact(RelationId relation, Tuple elements);

  /// True iff the fact is present.
  bool HasFact(RelationId relation, const Tuple& elements) const;

  /// All facts of one relation, sorted lexicographically. Relations added
  /// to the schema after this structure was built have no facts.
  const std::vector<Tuple>& Facts(RelationId relation) const {
    static const std::vector<Tuple> kEmpty;
    return relation < facts_.size() ? facts_[relation] : kEmpty;
  }

  /// Total number of facts across all relations.
  std::size_t NumFacts() const;

  /// True iff there are no facts and no domain elements.
  bool IsEmpty() const { return domain_size_ == 0 && NumFacts() == 0; }

  /// True iff the structure's "Gaifman graph" is connected and the domain is
  /// nonempty — or the structure is a single nullary fact with empty domain.
  /// The empty structure is not connected.
  bool IsConnected() const;

  /// Renames the domain through `mapping` (mapping[i] = new name of i) into a
  /// structure with domain size `new_domain_size`. The mapping need not be
  /// injective (this computes quotients, used by the distinguisher search).
  Structure MapDomain(const std::vector<Element>& mapping,
                      std::size_t new_domain_size) const;

  /// Human-readable listing: "R(0,1), S(1)" etc.
  std::string ToString() const;

  friend bool operator==(const Structure& a, const Structure& b);
  friend bool operator!=(const Structure& a, const Structure& b) {
    return !(a == b);
  }

  /// Cheap isomorphism-invariant fingerprint: equal for isomorphic
  /// structures (the converse does not hold; use IsIsomorphic for that).
  std::uint64_t InvariantFingerprint() const;

  /// Positional fact index (position → value → fact ids; see
  /// structs/index.h). Built lazily on first use and cached; any mutation
  /// invalidates the cache. The reference stays valid until the structure
  /// is mutated or destroyed.
  const StructureIndex& Index() const;

  /// Complete canonical form (key + per-component certificates; see
  /// structs/canonical.h). Built lazily on first use and cached with the
  /// same lifetime/invalidation rules as Index().
  const StructureCanonicalData& CanonicalData() const;

  /// Installs an externally computed canonical form, skipping the labeling
  /// search. The caller guarantees `data` describes this structure's
  /// current contents (interning layers hold the certificates already).
  void CacheCanonicalData(
      std::shared_ptr<const StructureCanonicalData> data) const {
    canonical_ = std::move(data);
  }

 private:
  std::shared_ptr<const Schema> schema_;
  std::size_t domain_size_ = 0;
  // facts_[r] = sorted vector of unique tuples of relation r.
  std::vector<std::vector<Tuple>> facts_;
  // Lazily built index; shared so copies reuse it until either side
  // mutates (mutation resets only the mutated structure's pointer).
  mutable std::shared_ptr<const StructureIndex> index_;
  // Lazily computed canonical form, cached with the same sharing scheme.
  mutable std::shared_ptr<const StructureCanonicalData> canonical_;
};

/// Disjoint union A + B (Section 2.2); schemas must be equal. Nullary facts
/// are unioned as sets (a nullary fact has no constants to rename).
Structure DisjointUnion(const Structure& a, const Structure& b);

/// Product A × B (Section 2.2). Element ⟨a,b⟩ is encoded as
/// a * B.DomainSize() + b.
Structure Product(const Structure& a, const Structure& b);

/// t · A = A + A + ... + A (t times); 0 · A is the empty structure.
Structure ScalarMultiple(std::uint64_t t, const Structure& a);

/// A^t; A^0 is the all-loops singleton {α} with R(α,...,α) for every R
/// (the paper's convention in Section 2.2).
Structure IteratedProduct(const Structure& a, std::uint64_t t);

/// The all-loops singleton over a schema (identity of ×).
Structure AllLoopsSingleton(std::shared_ptr<const Schema> schema);

/// Connected components (Section 2's notion, via the co-occurrence graph on
/// domain elements). Isolated elements become single-element components;
/// each nullary fact becomes its own empty-domain component.
std::vector<Structure> ConnectedComponents(const Structure& s);

/// Exact isomorphism test (backtracking with invariant pruning). Intended
/// for query-sized structures.
bool IsIsomorphic(const Structure& a, const Structure& b);

}  // namespace bagdet

#endif  // BAGDET_STRUCTS_STRUCTURE_H_
