#include "structs/structure_expr.h"

#include <sstream>
#include <stdexcept>

namespace bagdet {

StructureExpr::StructureExpr() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSum;
  node->schema = std::make_shared<Schema>();
  node_ = std::move(node);
}

StructureExpr StructureExpr::Base(Structure s) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kBase;
  node->schema = s.schema_ptr();
  node->base = std::move(s);
  return StructureExpr(std::move(node));
}

StructureExpr StructureExpr::Sum(std::vector<StructureExpr> children,
                                 std::shared_ptr<const Schema> schema) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSum;
  node->schema = std::move(schema);
  for (const StructureExpr& child : children) {
    if (child.schema() != *node->schema) {
      throw std::invalid_argument("StructureExpr::Sum: schema mismatch");
    }
  }
  node->children = std::move(children);
  return StructureExpr(std::move(node));
}

StructureExpr StructureExpr::Product(std::vector<StructureExpr> children,
                                     std::shared_ptr<const Schema> schema) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kProduct;
  node->schema = std::move(schema);
  for (const StructureExpr& child : children) {
    if (child.schema() != *node->schema) {
      throw std::invalid_argument("StructureExpr::Product: schema mismatch");
    }
  }
  node->children = std::move(children);
  return StructureExpr(std::move(node));
}

StructureExpr StructureExpr::Scalar(BigInt coeff, StructureExpr child) {
  if (coeff.IsNegative()) {
    throw std::invalid_argument("StructureExpr::Scalar: negative coefficient");
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::kScalar;
  node->schema = child.schema_ptr();
  node->scalar = std::move(coeff);
  node->children.push_back(std::move(child));
  return StructureExpr(std::move(node));
}

StructureExpr StructureExpr::Power(StructureExpr child,
                                   std::uint64_t exponent) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kPower;
  node->schema = child.schema_ptr();
  node->exponent = exponent;
  node->children.push_back(std::move(child));
  return StructureExpr(std::move(node));
}

BigInt StructureExpr::DomainSize() const {
  switch (kind()) {
    case Kind::kBase:
      return BigInt(static_cast<std::int64_t>(base().DomainSize()));
    case Kind::kSum: {
      BigInt total(0);
      for (const StructureExpr& child : children()) total += child.DomainSize();
      return total;
    }
    case Kind::kProduct: {
      BigInt total(1);
      for (const StructureExpr& child : children()) total *= child.DomainSize();
      return total;
    }
    case Kind::kScalar:
      return scalar() * children()[0].DomainSize();
    case Kind::kPower:
      return BigInt::Pow(children()[0].DomainSize(), exponent());
  }
  throw std::logic_error("StructureExpr: bad kind");
}

std::vector<BigInt> StructureExpr::PerRelationFacts() const {
  const std::size_t num_relations = schema().NumRelations();
  std::vector<BigInt> counts(num_relations, BigInt(0));
  switch (kind()) {
    case Kind::kBase:
      for (RelationId r = 0; r < num_relations; ++r) {
        counts[r] = BigInt(static_cast<std::int64_t>(base().Facts(r).size()));
      }
      return counts;
    case Kind::kSum:
      for (const StructureExpr& child : children()) {
        std::vector<BigInt> sub = child.PerRelationFacts();
        for (RelationId r = 0; r < num_relations; ++r) counts[r] += sub[r];
      }
      return counts;
    case Kind::kProduct: {
      for (RelationId r = 0; r < num_relations; ++r) counts[r] = BigInt(1);
      for (const StructureExpr& child : children()) {
        std::vector<BigInt> sub = child.PerRelationFacts();
        for (RelationId r = 0; r < num_relations; ++r) counts[r] *= sub[r];
      }
      return counts;
    }
    case Kind::kScalar: {
      std::vector<BigInt> sub = children()[0].PerRelationFacts();
      for (RelationId r = 0; r < num_relations; ++r) {
        counts[r] = scalar() * sub[r];
      }
      return counts;
    }
    case Kind::kPower: {
      std::vector<BigInt> sub = children()[0].PerRelationFacts();
      for (RelationId r = 0; r < num_relations; ++r) {
        counts[r] = BigInt::Pow(sub[r], exponent());
      }
      return counts;
    }
  }
  throw std::logic_error("StructureExpr: bad kind");
}

BigInt StructureExpr::NumFacts() const {
  BigInt total(0);
  for (const BigInt& c : PerRelationFacts()) total += c;
  return total;
}

std::optional<Structure> StructureExpr::Materialize(
    std::size_t max_domain) const {
  BigInt size = DomainSize();
  if (size > BigInt(static_cast<std::int64_t>(max_domain))) return std::nullopt;
  switch (kind()) {
    case Kind::kBase:
      return base();
    case Kind::kSum: {
      Structure result(schema_ptr(), 0);
      for (const StructureExpr& child : children()) {
        std::optional<Structure> sub = child.Materialize(max_domain);
        if (!sub.has_value()) return std::nullopt;
        result = DisjointUnion(result, *sub);
      }
      return result;
    }
    case Kind::kProduct: {
      Structure result = AllLoopsSingleton(schema_ptr());
      for (const StructureExpr& child : children()) {
        std::optional<Structure> sub = child.Materialize(max_domain);
        if (!sub.has_value()) return std::nullopt;
        result = bagdet::Product(result, *sub);
      }
      return result;
    }
    case Kind::kScalar: {
      if (!scalar().FitsInt64()) return std::nullopt;
      std::optional<Structure> sub = children()[0].Materialize(max_domain);
      if (!sub.has_value()) return std::nullopt;
      return ScalarMultiple(static_cast<std::uint64_t>(scalar().ToInt64()),
                            *sub);
    }
    case Kind::kPower: {
      std::optional<Structure> sub = children()[0].Materialize(max_domain);
      if (!sub.has_value()) return std::nullopt;
      return IteratedProduct(*sub, exponent());
    }
  }
  throw std::logic_error("StructureExpr: bad kind");
}

std::string StructureExpr::ToString() const {
  std::ostringstream os;
  switch (kind()) {
    case Kind::kBase:
      os << '{' << base().ToString() << '}';
      break;
    case Kind::kSum: {
      if (children().empty()) {
        os << "0";
        break;
      }
      for (std::size_t i = 0; i < children().size(); ++i) {
        if (i != 0) os << " + ";
        os << children()[i].ToString();
      }
      break;
    }
    case Kind::kProduct: {
      if (children().empty()) {
        os << "1";
        break;
      }
      for (std::size_t i = 0; i < children().size(); ++i) {
        if (i != 0) os << " x ";
        os << '(' << children()[i].ToString() << ')';
      }
      break;
    }
    case Kind::kScalar:
      os << scalar() << "*(" << children()[0].ToString() << ')';
      break;
    case Kind::kPower:
      os << '(' << children()[0].ToString() << ")^" << exponent();
      break;
  }
  return os.str();
}

}  // namespace bagdet
