#include "structs/canonical.h"

#include <algorithm>

#include "structs/refinement.h"
#include "util/exec_context.h"
#include "util/failpoint.h"
#include "util/hash.h"

namespace bagdet {

namespace {

void AppendU32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint64_t ReadU32(const std::string& bytes, std::size_t offset) {
  return static_cast<std::uint32_t>(
      (static_cast<unsigned char>(bytes[offset])) |
      (static_cast<unsigned char>(bytes[offset + 1]) << 8) |
      (static_cast<unsigned char>(bytes[offset + 2]) << 16) |
      (static_cast<unsigned char>(bytes[offset + 3]) << 24));
}

/// 64-bit digest of the schema (names and arities, in relation-id order),
/// so keys of structures over different schemas never compare equal.
std::uint64_t SchemaDigest(const Schema& schema) {
  std::uint64_t h = 0x8c6f5d4b3a291807ull;
  for (RelationId r = 0; r < schema.NumRelations(); ++r) {
    h = MixHash(h, schema.Arity(r));
    for (char ch : schema.Name(r)) {
      h = MixHash(h, static_cast<unsigned char>(ch));
    }
    h = MixHash(h, 0xff);  // Name terminator.
  }
  return h;
}

std::uint64_t HashBytes(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a.
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Serializes the component under the discrete coloring (element e is
/// renamed to colors[e]): per *non-empty* relation in id order, the
/// relation id and its sorted list of relabeled tuples. Empty relations
/// are skipped so the certificate is invariant under schema growth
/// (schemas are shared and append-only). Also used for empty-domain
/// (nullary-fact) components, where the coloring is trivially empty.
std::string SerializeLeaf(const Structure& c,
                          const std::vector<std::uint32_t>& colors) {
  std::string out;
  AppendU32(&out, static_cast<std::uint32_t>(c.DomainSize()));
  for (RelationId r = 0; r < c.schema().NumRelations(); ++r) {
    const std::vector<Tuple>& facts = c.Facts(r);
    if (facts.empty()) continue;
    AppendU32(&out, r);
    AppendU32(&out, static_cast<std::uint32_t>(facts.size()));
    std::vector<Tuple> relabeled;
    relabeled.reserve(facts.size());
    for (const Tuple& t : facts) {
      Tuple mapped(t.size());
      for (std::size_t i = 0; i < t.size(); ++i) mapped[i] = colors[t[i]];
      relabeled.push_back(std::move(mapped));
    }
    std::sort(relabeled.begin(), relabeled.end());
    for (const Tuple& t : relabeled) {
      for (Element e : t) AppendU32(&out, e);
    }
  }
  return out;
}

/// True iff swapping elements `a` and `b` is an automorphism of `s`.
bool TranspositionIsAutomorphism(const Structure& s, Element a, Element b) {
  for (RelationId r = 0; r < s.schema().NumRelations(); ++r) {
    for (const Tuple& t : s.Facts(r)) {
      bool touched = false;
      Tuple mapped(t.size());
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i] == a) {
          mapped[i] = b;
          touched = true;
        } else if (t[i] == b) {
          mapped[i] = a;
          touched = true;
        } else {
          mapped[i] = t[i];
        }
      }
      if (touched && !s.HasFact(r, mapped)) return false;
    }
  }
  return true;
}

/// Individualization–refinement search: explores every branch of the
/// canonical-labeling tree and keeps the lexicographically smallest leaf
/// serialization. The explored branch *set* is isomorphism-invariant (the
/// target cell is chosen by canonical color id, and every member of the
/// cell is tried), so the minimum is too.
///
/// Pruning: a candidate is skipped when a transposition with an
/// already-explored candidate of the same cell is an automorphism — the
/// skipped subtree is then the automorphism's image of an explored one
/// and contributes the same leaf certificates (labelings differ only by
/// an automorphism, which leaves the relabeled fact set unchanged). This
/// collapses automorphism-rich components (cliques, stars, unions of
/// equal pieces) from factorial to near-linear; components with sparse
/// automorphism groups still pay the full branch set.
void SearchMinCertificate(const Structure& c,
                          const std::vector<std::uint32_t>& colors,
                          std::size_t num_colors, std::string* best) {
  // Automorphism-sparse components pay the full branch set, which can be
  // exponential — each tree node is a governed checkpoint.
  ExecCheckPoint("canonical.search");
  BAGDET_FAILPOINT("canonical/branch");
  const std::size_t n = c.DomainSize();
  if (num_colors == n) {
    std::string leaf = SerializeLeaf(c, colors);
    if (best->empty() || leaf < *best) *best = std::move(leaf);
    return;
  }
  // Target cell: smallest color id with at least two members.
  std::uint32_t target = 0;
  {
    std::vector<std::size_t> class_size(num_colors, 0);
    for (std::uint32_t color : colors) ++class_size[color];
    while (class_size[target] < 2) ++target;
  }
  std::vector<Element> explored;
  for (std::size_t e = 0; e < n; ++e) {
    if (colors[e] != target) continue;
    bool equivalent_to_explored = false;
    for (Element prev : explored) {
      if (TranspositionIsAutomorphism(c, prev, static_cast<Element>(e))) {
        equivalent_to_explored = true;
        break;
      }
    }
    if (equivalent_to_explored) continue;
    explored.push_back(static_cast<Element>(e));
    std::vector<std::uint32_t> branch = colors;
    branch[e] = static_cast<std::uint32_t>(num_colors);  // Individualize.
    // Re-refine from the individualized coloring (the seeded flavor of
    // RefineColors — same signature construction and rank-recoloring, so
    // color ids stay isomorphism-invariant functions of the branch).
    ColorRefinementResult refined =
        RefineColors(c, &branch, num_colors + 1);
    SearchMinCertificate(c, refined.color_of_element, refined.num_colors,
                         best);
  }
}

}  // namespace

std::string ComponentCertificate(const Structure& component) {
  const std::size_t n = component.DomainSize();
  if (n == 0) {
    return SerializeLeaf(component, {});
  }
  ColorRefinementResult seed = RefineColors(component);
  std::string best;
  SearchMinCertificate(component, seed.color_of_element, seed.num_colors,
                       &best);
  return best;
}

CanonicalKey ComponentKeyFromCertificate(const Schema& schema,
                                         const std::string& certificate) {
  CanonicalKey key;
  key.schema_digest = SchemaDigest(schema);
  // A component certificate starts with its domain size.
  AppendU32(&key.bytes, static_cast<std::uint32_t>(ReadU32(certificate, 0)));
  AppendU32(&key.bytes, 1);
  AppendU32(&key.bytes, static_cast<std::uint32_t>(certificate.size()));
  key.bytes += certificate;
  key.hash = MixHash(HashBytes(key.bytes), key.schema_digest);
  return key;
}

StructureCanonicalData ComputeCanonicalData(const Structure& s) {
  StructureCanonicalData data;
  for (const Structure& component : ConnectedComponents(s)) {
    data.component_certificates.push_back(ComponentCertificate(component));
  }
  std::vector<std::string> sorted = data.component_certificates;
  std::sort(sorted.begin(), sorted.end());
  AppendU32(&data.certificate, static_cast<std::uint32_t>(s.DomainSize()));
  AppendU32(&data.certificate, static_cast<std::uint32_t>(sorted.size()));
  for (const std::string& cert : sorted) {
    AppendU32(&data.certificate, static_cast<std::uint32_t>(cert.size()));
    data.certificate += cert;
  }
  return data;
}

CanonicalKey CanonicalKeyOf(const Structure& s) {
  CanonicalKey key;
  key.schema_digest = SchemaDigest(s.schema());
  key.bytes = s.CanonicalData().certificate;
  key.hash = MixHash(HashBytes(key.bytes), key.schema_digest);
  return key;
}

}  // namespace bagdet
