// bagdet: complete canonical forms for finite structures.
//
// Color refinement (structs/refinement.h) is a fast isomorphism invariant
// but an incomplete one — it cannot tell a 6-cycle from two 3-cycles. The
// determinacy pipeline needs the *complete* equivalence "same key ⇔
// isomorphic" so that component deduplication and hom-count memoization
// become hash-map operations instead of pairwise IsIsomorphic backtracking.
//
// Canonical labeling runs per connected component by individualization–
// refinement: starting from the stable RefineColors partition, repeatedly
// pick the first non-singleton color class (color ids are isomorphism-
// invariant ranks, so the choice of *class* is canonical), branch on every
// element of that class (the only non-canonical choice), re-refine, and
// recurse until the partition is discrete. Each discrete leaf names the
// elements by their color ranks; the component certificate is the
// lexicographically smallest serialization of the relabeled fact set over
// all leaves. The structure key is the sorted multiset of component
// certificates plus a schema digest — sound and complete because two
// structures are isomorphic iff their schemas agree and their components
// match up to isomorphism with equal multiplicities.
//
// Canonicalization costs as much as a small hom count, so the result is
// cached on the Structure (Structure::CanonicalData, invalidated on
// mutation, shared across copies like the positional index). Always go
// through that accessor — long-lived pipeline objects (frozen query
// bodies, interned basis queries) then pay the search once.
//
// Worst-case exponential in the component size (as is any known canonical
// labeling, and as IsIsomorphic already is); intended for the query-sized
// structures the pipeline interns.

#ifndef BAGDET_STRUCTS_CANONICAL_H_
#define BAGDET_STRUCTS_CANONICAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "structs/structure.h"

namespace bagdet {

/// Hashable canonical key. Two structures get equal keys iff they are
/// isomorphic — a complete invariant, unlike InvariantFingerprint or the
/// color-refinement histogram.
///
/// The schema digest is kept separate from the certificate bytes and is
/// computed from the *current* schema contents whenever a key is
/// assembled: schemas are shared and append-only (a parser grows one
/// schema across rules), so a digest baked into a cached certificate
/// would go stale when the schema later gains relations. The certificate
/// itself serializes only non-empty relations and is therefore invariant
/// under schema growth.
struct CanonicalKey {
  std::uint64_t schema_digest = 0;  ///< Digest of names+arities in id order.
  std::string bytes;                ///< Schema-agnostic canonical form.
  std::uint64_t hash = 0;           ///< Cached hash of (digest, bytes).

  friend bool operator==(const CanonicalKey& a, const CanonicalKey& b) {
    return a.hash == b.hash && a.schema_digest == b.schema_digest &&
           a.bytes == b.bytes;
  }
  friend bool operator!=(const CanonicalKey& a, const CanonicalKey& b) {
    return !(a == b);
  }
  friend bool operator<(const CanonicalKey& a, const CanonicalKey& b) {
    if (a.schema_digest != b.schema_digest) {
      return a.schema_digest < b.schema_digest;
    }
    return a.bytes < b.bytes;
  }
};

/// Hasher for unordered containers keyed by CanonicalKey.
struct CanonicalKeyHash {
  std::size_t operator()(const CanonicalKey& key) const {
    return static_cast<std::size_t>(key.hash);
  }
};

/// Everything one canonicalization pass produces: the schema-agnostic
/// whole-structure certificate plus the certificate of each connected
/// component, index-aligned with ConnectedComponents(s). Interning layers
/// reuse the per-component certificates so decomposing a structure never
/// re-runs the search. Deliberately schema-digest-free — see CanonicalKey.
struct StructureCanonicalData {
  std::string certificate;
  std::vector<std::string> component_certificates;
};

/// Runs the canonical labeling search. Prefer Structure::CanonicalData(),
/// which caches this per structure.
StructureCanonicalData ComputeCanonicalData(const Structure& s);

/// The canonical key of `s`, assembled from the cached certificate and the
/// current schema contents: CanonicalKeyOf(a) == CanonicalKeyOf(b) iff
/// IsIsomorphic(a, b).
CanonicalKey CanonicalKeyOf(const Structure& s);

/// Canonical certificate of a single *connected* component (exposed for
/// tests and for interning layers; ComputeCanonicalData composes these).
/// Preconditions match ConnectedComponents output: a nullary-fact
/// component has empty domain.
std::string ComponentCertificate(const Structure& component);

/// Assembles the full CanonicalKey of a single component from its
/// certificate (as produced by ComponentCertificate) without re-running
/// the search; equals CanonicalKeyOf(that component).
CanonicalKey ComponentKeyFromCertificate(const Schema& schema,
                                         const std::string& certificate);

}  // namespace bagdet

#endif  // BAGDET_STRUCTS_CANONICAL_H_
