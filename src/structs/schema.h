// bagdet: relational schemas.
//
// A schema is a finite set of relation symbols with fixed arities
// (Section 2.1 of the paper). Arity 0 (nullary predicates, used by the
// Theorem-2 reduction) through arbitrary n are supported.

#ifndef BAGDET_STRUCTS_SCHEMA_H_
#define BAGDET_STRUCTS_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bagdet {

/// Index of a relation within its schema.
using RelationId = std::uint32_t;

/// A finite set of relation symbols with arities.
class Schema {
 public:
  Schema() = default;

  /// Adds a relation; returns its id. Throws std::invalid_argument when the
  /// name already exists with a different arity; re-adding with the same
  /// arity returns the existing id.
  RelationId AddRelation(std::string name, std::size_t arity) {
    auto it = by_name_.find(name);
    if (it != by_name_.end()) {
      if (arities_[it->second] != arity) {
        throw std::invalid_argument("Schema: relation '" + name +
                                    "' redeclared with different arity");
      }
      return it->second;
    }
    RelationId id = static_cast<RelationId>(names_.size());
    by_name_.emplace(name, id);
    names_.push_back(std::move(name));
    arities_.push_back(arity);
    return id;
  }

  std::size_t NumRelations() const { return names_.size(); }
  const std::string& Name(RelationId id) const { return names_.at(id); }
  std::size_t Arity(RelationId id) const { return arities_.at(id); }

  /// Id of a named relation, if present.
  std::optional<RelationId> Find(std::string_view name) const {
    auto it = by_name_.find(std::string(name));
    if (it == by_name_.end()) return std::nullopt;
    return it->second;
  }

  /// True iff every relation has the given arity.
  bool AllArity(std::size_t arity) const {
    for (std::size_t a : arities_) {
      if (a != arity) return false;
    }
    return true;
  }

  /// Maximum arity over all relations (0 for an empty schema).
  std::size_t MaxArity() const {
    std::size_t m = 0;
    for (std::size_t a : arities_) m = a > m ? a : m;
    return m;
  }

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.names_ == b.names_ && a.arities_ == b.arities_;
  }
  friend bool operator!=(const Schema& a, const Schema& b) { return !(a == b); }

 private:
  std::vector<std::string> names_;
  std::vector<std::size_t> arities_;
  std::unordered_map<std::string, RelationId> by_name_;
};

}  // namespace bagdet

#endif  // BAGDET_STRUCTS_SCHEMA_H_
