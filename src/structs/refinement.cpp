#include "structs/refinement.h"

#include <algorithm>
#include <map>

#include "util/hash.h"

namespace bagdet {

ColorRefinementResult RefineColors(const Structure& s,
                                   const std::vector<std::uint32_t>* seed_colors,
                                   std::size_t seed_num_colors) {
  const std::size_t n = s.DomainSize();
  const bool seeded = seed_colors != nullptr;
  ColorRefinementResult result;
  if (seeded) {
    result.color_of_element = *seed_colors;
    result.num_colors = seed_num_colors;
  } else {
    result.color_of_element.assign(n, 0);
    result.num_colors = n == 0 ? 0 : 1;
  }
  if (n == 0) return result;
  // An already-discrete seed cannot refine further; returning unchanged
  // (instead of re-ranking ids through one more signature round) keeps
  // the search's leaf labelings identical to the pre-fold behavior.
  if (seeded && result.num_colors == n) return result;

  // Invariant: colors are canonical (depend only on the isomorphism type)
  // because each round's new color is the RANK of the element's signature
  // among all signatures, and signatures are built from canonical colors.
  std::vector<std::uint64_t> last_signature(n, 0);
  for (std::size_t round = 0; round < n; ++round) {
    // Signature: previous color mixed with a commutative accumulation of
    // position-tagged colored-tuple hashes over all incident facts.
    std::vector<std::uint64_t> signature(n);
    for (std::size_t e = 0; e < n; ++e) {
      signature[e] = MixHash(0x5bd1e995, result.color_of_element[e]);
    }
    for (RelationId r = 0; r < s.schema().NumRelations(); ++r) {
      for (const Tuple& t : s.Facts(r)) {
        std::uint64_t tuple_hash = (static_cast<std::uint64_t>(r) + 1) << 32;
        for (Element e : t) {
          tuple_hash = MixHash(tuple_hash, result.color_of_element[e] + 1);
        }
        for (std::size_t pos = 0; pos < t.size(); ++pos) {
          signature[t[pos]] += MixHash(tuple_hash, pos + 1);
        }
      }
    }
    // Canonical re-coloring: rank within the sorted signature list.
    std::vector<std::uint64_t> sorted = signature;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::vector<std::uint32_t> next(n);
    for (std::size_t e = 0; e < n; ++e) {
      next[e] = static_cast<std::uint32_t>(
          std::lower_bound(sorted.begin(), sorted.end(), signature[e]) -
          sorted.begin());
    }
    bool stable = sorted.size() == result.num_colors;
    result.color_of_element = std::move(next);
    result.num_colors = sorted.size();
    result.rounds = round + 1;
    last_signature = std::move(signature);
    if (stable) break;
    // A seeded (search-branch) run stops as soon as the partition is
    // discrete — one signature round on a discrete coloring cannot merge
    // classes, and the search only consumes the partition.
    if (seeded && result.num_colors == n) break;
  }

  if (!seeded) {
    // Canonical histogram: (stable signature value, class size), sorted.
    // Stable signatures are isomorphism-invariant by the rank argument.
    std::map<std::uint64_t, std::size_t> counts;
    for (std::size_t e = 0; e < n; ++e) ++counts[last_signature[e]];
    for (const auto& [sig, count] : counts) {
      result.histogram.emplace_back(sig, count);
    }
  }
  return result;
}

bool ColorRefinementDistinguishes(const Structure& a, const Structure& b) {
  if (a.schema() != b.schema()) return true;
  if (a.DomainSize() != b.DomainSize()) return true;
  return RefineColors(a).histogram != RefineColors(b).histogram;
}

}  // namespace bagdet
