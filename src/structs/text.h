// bagdet: textual serialization of structures.
//
// Format: a comma/newline-separated list of facts "R(0,1), S(2), H()".
// Elements are nonnegative integers; the domain is the range 0..max+1
// unless extended explicitly with "domain N" (which allows isolated
// elements beyond any fact). '#' starts a comment. Relations and arities
// are added to the schema on first use.

#ifndef BAGDET_STRUCTS_TEXT_H_
#define BAGDET_STRUCTS_TEXT_H_

#include <memory>
#include <string>
#include <string_view>

#include "structs/structure.h"

namespace bagdet {

/// Parses a structure, growing `schema` with any new relations.
/// Throws std::invalid_argument with a position hint on malformed input or
/// arity conflicts.
Structure ParseStructure(std::string_view text,
                         const std::shared_ptr<Schema>& schema);

/// Serializes a structure in a form ParseStructure accepts (including a
/// trailing "domain N" clause when there are isolated elements).
std::string FormatStructure(const Structure& s);

}  // namespace bagdet

#endif  // BAGDET_STRUCTS_TEXT_H_
