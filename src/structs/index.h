// bagdet: positional fact indexes over structures.
//
// The join engine (hom/) repeatedly asks "which facts of relation R carry
// value v at position p?". The facts themselves are stored sorted, which
// answers the question for p == 0 only; StructureIndex precomputes
// position → value → fact-id buckets (CSR layout) for every position of
// every relation, so both the backtracking matcher and the
// variable-elimination DP can narrow candidates by *any* bound position and
// probe the most selective one.

#ifndef BAGDET_STRUCTS_INDEX_H_
#define BAGDET_STRUCTS_INDEX_H_

#include <cstdint>
#include <vector>

#include "structs/structure.h"
#include "util/bitset.h"

namespace bagdet {

/// A contiguous run of fact ids (indices into Structure::Facts(r)).
struct FactIdSpan {
  const std::uint32_t* first = nullptr;
  const std::uint32_t* last = nullptr;

  const std::uint32_t* begin() const { return first; }
  const std::uint32_t* end() const { return last; }
  std::size_t size() const { return static_cast<std::size_t>(last - first); }
  bool empty() const { return first == last; }
};

/// Immutable positional index over one structure's facts. Obtain via
/// Structure::Index(), which caches the build per structure revision.
class StructureIndex {
 public:
  explicit StructureIndex(const Structure& s);

  /// Ids of the facts of `relation` whose tuple carries `value` at
  /// position `pos`; ids are ascending within a bucket.
  FactIdSpan Bucket(RelationId relation, std::size_t pos, Element value) const {
    const PositionIndex& index = positions_[relation][pos];
    if (value >= domain_size_) return FactIdSpan{};
    const std::uint32_t* base = index.fact_ids.data();
    return FactIdSpan{base + index.starts[value], base + index.starts[value + 1]};
  }

  /// Number of facts of `relation` carrying `value` at `pos`.
  std::size_t BucketSize(RelationId relation, std::size_t pos,
                         Element value) const {
    return Bucket(relation, pos, value).size();
  }

  /// Bit d set iff some fact of `relation` carries d at `pos` — the unary
  /// occupancy filter the candidate-domain layer (hom/domain.h) seeds
  /// every variable's bitset from.
  const SVOBitset& PresentMask(RelationId relation, std::size_t pos) const {
    return positions_[relation][pos].present;
  }

 private:
  // CSR buckets for one (relation, position): facts grouped by the element
  // they carry there.
  struct PositionIndex {
    std::vector<std::uint32_t> starts;    // domain_size + 1 offsets
    std::vector<std::uint32_t> fact_ids;  // one entry per fact
    SVOBitset present;                    // elements with nonempty buckets
  };

  std::size_t domain_size_ = 0;
  std::vector<std::vector<PositionIndex>> positions_;  // [relation][position]
};

}  // namespace bagdet

#endif  // BAGDET_STRUCTS_INDEX_H_
