#include "structs/index.h"

namespace bagdet {

StructureIndex::StructureIndex(const Structure& s)
    : domain_size_(s.DomainSize()) {
  const std::size_t num_relations = s.schema().NumRelations();
  positions_.resize(num_relations);
  for (RelationId r = 0; r < num_relations; ++r) {
    const std::size_t arity = s.schema().Arity(r);
    const std::vector<Tuple>& facts = s.Facts(r);
    positions_[r].resize(arity);
    for (std::size_t pos = 0; pos < arity; ++pos) {
      PositionIndex& index = positions_[r][pos];
      // Counting sort of fact ids by the element at `pos`.
      index.starts.assign(domain_size_ + 1, 0);
      for (const Tuple& fact : facts) ++index.starts[fact[pos] + 1];
      for (std::size_t v = 1; v <= domain_size_; ++v) {
        index.starts[v] += index.starts[v - 1];
      }
      index.fact_ids.resize(facts.size());
      std::vector<std::uint32_t> cursor(index.starts.begin(),
                                        index.starts.end() - 1);
      for (std::uint32_t id = 0; id < facts.size(); ++id) {
        index.fact_ids[cursor[facts[id][pos]]++] = id;
      }
      index.present = SVOBitset(domain_size_);
      for (const Tuple& fact : facts) index.present.Set(fact[pos]);
    }
  }
}

}  // namespace bagdet
