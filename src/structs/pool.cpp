#include "structs/pool.h"

#include <utility>

namespace bagdet {

StructureRef StructurePool::InternWithKey(const CanonicalKey& key,
                                          Structure s) {
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;
  StructureRef ref = static_cast<StructureRef>(structures_.size());
  keys_.push_back(key);
  by_key_.emplace(key, ref);
  structures_.push_back(std::move(s));
  return ref;
}

StructureRef StructurePool::Intern(const Structure& s) {
  return InternWithKey(CanonicalKeyOf(s), s);
}

StructureRef StructurePool::Intern(Structure&& s) {
  CanonicalKey key = CanonicalKeyOf(s);
  return InternWithKey(key, std::move(s));
}

StructureRef StructurePool::Find(const Structure& s) const {
  return FindKey(CanonicalKeyOf(s));
}

StructureRef StructurePool::FindKey(const CanonicalKey& key) const {
  auto it = by_key_.find(key);
  return it == by_key_.end() ? kInvalidStructureRef : it->second;
}

}  // namespace bagdet
