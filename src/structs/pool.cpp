#include "structs/pool.h"

#include <stdexcept>
#include <utility>

#include "util/exec_context.h"
#include "util/failpoint.h"

namespace bagdet {

namespace {

/// Projected resident footprint of interning `s`: domain + fact storage
/// (tuple headers and elements, doubled for the positional index warmed at
/// publication) + the canonical key. An admission-control estimate — the
/// pool retains entries for its whole lifetime, so a governed request is
/// charged for every *new* equivalence class it creates.
std::uint64_t ProjectedFootprintBytes(const CanonicalKey& key,
                                      const Structure& s) {
  std::uint64_t bytes = 128 + key.bytes.size() +
                        static_cast<std::uint64_t>(s.DomainSize()) *
                            sizeof(Element);
  for (RelationId r = 0; r < s.schema().NumRelations(); ++r) {
    const std::size_t arity = s.schema().Arity(r);
    bytes += static_cast<std::uint64_t>(s.Facts(r).size()) *
             (sizeof(Tuple) + arity * sizeof(Element)) * 2;
  }
  return bytes;
}

/// Rounds the first-block hint up to a power of two within [8, 2^20].
std::size_t NormalizedFirstBlock(std::size_t hint) {
  std::size_t size = 8;
  while (size < hint && size < (1u << 20)) size <<= 1;
  return size;
}

}  // namespace

StructurePool::StructurePool(std::size_t first_block_size)
    : first_block_size_(NormalizedFirstBlock(first_block_size)) {}

StructurePool::~StructurePool() {
  for (Shard& shard : shards_) {
    for (std::size_t b = 0; b < kMaxBlocks; ++b) {
      Slot* block = shard.blocks[b].load(std::memory_order_acquire);
      if (block == nullptr) continue;
      const std::size_t size = first_block_size_ << b;
      for (std::size_t i = 0; i < size; ++i) {
        delete block[i].load(std::memory_order_acquire);
      }
      delete[] block;
    }
  }
}

StructureRef StructurePool::InternWithKey(const CanonicalKey& key,
                                          Structure s) {
  const std::size_t shard_id = ShardOf(key);
  Shard& shard = shards_[shard_id];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(key);
  if (it != shard.by_key.end()) return it->second;

  const std::uint32_t local = shard.count.load(std::memory_order_relaxed);
  std::size_t block_index, offset;
  Locate(local, &block_index, &offset);
  if (block_index >= kMaxBlocks || local >= kMaxLocalIndex) {
    throw std::length_error("StructurePool: shard capacity exhausted");
  }
  // Admission control: account the projected footprint against the
  // governing request *before* any pool state is created, so a rejected
  // intern leaves the shard exactly as it was (the lock_guard unwinds the
  // mutex; by_key, the blocks, count and bytes are untouched).
  const std::uint64_t footprint = ProjectedFootprintBytes(key, s);
  if (ExecContext* ctx = CurrentExecContext()) {
    ctx->Charge(footprint, "pool.intern");
  }
  BAGDET_FAILPOINT("pool/intern");
  std::unique_ptr<Entry> entry(new Entry{key, std::move(s)});
  // Freeze the representative before publication: once readers can reach
  // the entry lock-free, its lazy caches must never be (re)built. The
  // canonical form is already cached (key computation or the caller's
  // certificate reuse); the positional index is warmed here.
  entry->structure.Index();

  // Directory growth publishes a fresh block and never touches previous
  // blocks, so concurrent lock-free readers of already-published refs are
  // unaffected no matter how large a persistent pool grows.
  Slot* block = shard.blocks[block_index].load(std::memory_order_acquire);
  if (block == nullptr) {
    block = new Slot[first_block_size_ << block_index]();
    shard.blocks[block_index].store(block, std::memory_order_release);
  }
  block[offset].store(entry.release(), std::memory_order_release);

  const StructureRef ref =
      static_cast<StructureRef>(local) * kNumShards +
      static_cast<StructureRef>(shard_id);
  shard.by_key.emplace(key, ref);
  shard.bytes.fetch_add(footprint, std::memory_order_relaxed);
  shard.count.store(local + 1, std::memory_order_release);
  return ref;
}

StructureRef StructurePool::Intern(const Structure& s) {
  return InternWithKey(CanonicalKeyOf(s), s);
}

StructureRef StructurePool::Intern(Structure&& s) {
  CanonicalKey key = CanonicalKeyOf(s);
  return InternWithKey(key, std::move(s));
}

StructureRef StructurePool::Find(const Structure& s) const {
  return FindKey(CanonicalKeyOf(s));
}

StructureRef StructurePool::FindKey(const CanonicalKey& key) const {
  const Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(key);
  return it == shard.by_key.end() ? kInvalidStructureRef : it->second;
}

const StructurePool::Entry* StructurePool::EntryAt(StructureRef ref) const {
  const std::size_t shard_id = ref % kNumShards;
  const std::uint32_t local = ref / kNumShards;
  const Shard& shard = shards_[shard_id];
  // The acquire load of count pairs with Intern's release store after slot
  // publication, so a ref below count always sees its entry.
  if (local >= shard.count.load(std::memory_order_acquire)) return nullptr;
  std::size_t block_index, offset;
  Locate(local, &block_index, &offset);
  const Slot* block =
      shard.blocks[block_index].load(std::memory_order_acquire);
  if (block == nullptr) return nullptr;
  return block[offset].load(std::memory_order_acquire);
}

const Structure& StructurePool::At(StructureRef ref) const {
  const Entry* entry = EntryAt(ref);
  if (entry == nullptr) {
    throw std::out_of_range("StructurePool::At: unknown StructureRef");
  }
  return entry->structure;
}

const CanonicalKey& StructurePool::KeyOf(StructureRef ref) const {
  const Entry* entry = EntryAt(ref);
  if (entry == nullptr) {
    throw std::out_of_range("StructurePool::KeyOf: unknown StructureRef");
  }
  return entry->key;
}

std::size_t StructurePool::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t StructurePool::ApproxBytes() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.bytes.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace bagdet
