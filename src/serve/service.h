// bagdet: resilient always-on determinacy service.
//
// Everything below core/determinacy.h optimizes one decision; a deployment
// answers a *stream* of decide/containment/counterexample requests over
// overlapping view sets under heavy traffic. DeterminacyService is the
// serving layer that turns the governed-execution primitives (PR 6) and
// the concurrent pipeline (PR 4/7) into a system that stays up when
// requests are oversized, malformed, bursty, or faulted:
//
//   admission → execute → (retry | degrade) → respond, or shed.
//
//   * Admission: a bounded queue. When it is full — or the service is
//     shutting down — a request is shed *synchronously* with a typed
//     kOverloaded status and a retry-after hint derived from the measured
//     service rate, instead of queueing without bound. Accepted requests
//     always terminate in exactly one typed outcome.
//   * Execution: each request runs as a governed decision
//     (DecideBagDeterminacyGoverned) under its own per-request ExecLimits
//     on a fixed set of service runner threads; the kernels inside each
//     decision fan out onto the shared global ThreadPool exactly as in the
//     direct API. A no-limits single request through the service is
//     bit-identical to a direct DecideBagDeterminacy call.
//   * Retry: transiently-declined work — a native or failpoint-injected
//     std::bad_alloc ("alloc" / "serve/dispatch" kernels) — retries with
//     bounded exponential backoff. Deterministic declines (a memory budget
//     the same request would trip again, a passed deadline, cancellation)
//     never retry at the same tier.
//   * Degradation: when the full decision trips its limits and a
//     counterexample was requested, the request drops one tier and re-runs
//     decide-without-counterexample — the verdict is the cheap half; the
//     certificate is the exponentially larger one. A distinguisher that
//     exhausts its bounds (DistinguisherOutcome::kBoundsExhausted) arrives
//     as a built-in degraded answer: valid verdict, typed explanation for
//     the missing certificate. Only when every tier declines is the
//     request answered with a typed kDeclined.
//   * Shutdown: deterministic drain. Shutdown() closes admission (new
//     submissions shed with kernel "serve/shutdown") and blocks until
//     every accepted request has produced its outcome.
//
// Persistent state. The service owns a StructurePool (constructed with a
// serving-sized slot directory) and a sharded HomCache shared by every
// request — overlapping view sets hit warm interned classes and memoized
// counts across the stream. Retention is generation-based: once the pool
// exceeds its class/byte budgets the service retires the whole generation
// and starts a fresh pool + cache. In-flight requests (and returned
// results, whose InstanceAnalysis holds shared_ptrs) keep their generation
// alive, so rotation can never invalidate a StructureRef anyone still
// holds; the retired generation is freed when its last holder lets go.
//
// Failpoint sites (util/failpoint.h): "serve/admit" fires in Submit before
// a request is enqueued, "serve/dispatch" fires on the runner thread
// before each governed attempt — both convert injected faults into typed
// outcomes instead of escaping exceptions.

#ifndef BAGDET_SERVE_SERVICE_H_
#define BAGDET_SERVE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/determinacy.h"
#include "hom/hom_cache.h"
#include "query/cq.h"
#include "structs/pool.h"
#include "util/exec_context.h"
#include "util/tuning.h"

namespace bagdet {

/// How a request through the service terminated. Every submitted request
/// ends in exactly one of these.
enum class ServeOutcome {
  kAnswered = 0,  ///< Full decision, everything the client asked for.
  kDegraded = 1,  ///< Valid verdict, but the counterexample was dropped
                  ///< (tier degradation or distinguisher bound exhaustion).
  kShed = 2,      ///< Not admitted: queue full or shutting down.
  kDeclined = 3,  ///< Admitted but no tier could complete within limits,
                  ///< or the request was malformed.
};

/// Stable lowercase name ("answered", "degraded", "shed", "declined").
const char* ServeOutcomeName(ServeOutcome outcome);

/// One decision request. `limits` governs each execution attempt
/// independently (a retry or degraded tier starts a fresh ExecContext).
/// `options.want_counterexample` and `options.distinguisher` pass through;
/// the cache-related fields are overridden by the service (the fleet-wide
/// cache and its budgets belong to the service, not to one request).
struct ServeRequest {
  std::vector<ConjunctiveQuery> views;
  ConjunctiveQuery query;
  ExecLimits limits;
  DeterminacyOptions options;
};

/// Typed outcome of one request.
struct ServeResponse {
  ServeOutcome outcome = ServeOutcome::kDeclined;
  /// Why: ok for kAnswered; the degrading/declining trip otherwise (for a
  /// degraded distinguisher-exhaustion answer, the in-result status).
  ExecStatus status;
  /// Engaged for kAnswered and kDegraded; the verdict is always valid.
  std::optional<DeterminacyResult> result;
  std::string message;          ///< Diagnostic for malformed declines.
  std::uint32_t attempts = 0;   ///< Governed executions run (>= 1 if admitted).
  std::uint32_t retries = 0;    ///< Transient-fault retries among them.
  bool degraded = false;        ///< Counterexample tier was dropped.
  double retry_after_ms = 0.0;  ///< Backpressure hint; set when shed.
  double queue_ms = 0.0;        ///< Admission-to-dispatch wait.
  double exec_ms = 0.0;         ///< Total execution wall time (all attempts).
  std::uint64_t generation = 0; ///< Pool/cache generation that served this.
};

struct ServiceOptions {
  /// Concurrent request executions (runner threads). 0 = one per lane of
  /// the default thread count (DefaultThreadCount()).
  std::size_t max_concurrent = 0;
  /// Bound on *waiting* requests (beyond the ones executing). Submissions
  /// past it shed. Clamped to >= 1.
  std::size_t max_queue = 256;
  /// Bounded retry budget per request for transient faults.
  std::uint32_t max_retries = 2;
  /// Backoff before retry r is `backoff_base_ms << (r - 1)`, capped at 64x.
  std::uint32_t backoff_base_ms = 1;
  /// Permit the decide-without-counterexample degradation tier.
  bool allow_degraded = true;
  /// Fleet-wide HomCache budgets (0 keeps the library defaults).
  std::size_t hom_cache_max_entries = 0;
  std::size_t hom_cache_max_bytes = 0;
  /// Generation rotation thresholds for the persistent pool: retire the
  /// generation once it retains more classes / projected bytes than this.
  /// Defaults come from the active TuningProfile (util/tuning.h); assign
  /// to override per service.
  std::size_t pool_max_classes = Tuning().serve_pool_max_classes;
  std::uint64_t pool_max_bytes = Tuning().serve_pool_max_bytes;
  /// Slot-directory first-block hint for the persistent pool.
  std::size_t pool_first_block = 4096;
};

/// Monotonic service counters plus a live snapshot. Cache traffic is
/// accumulated across generation rotations.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t answered = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed = 0;
  std::uint64_t declined = 0;
  std::uint64_t retries = 0;
  std::uint64_t rotations = 0;
  std::uint64_t generation = 1;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t pool_classes = 0;   ///< Current generation.
  std::uint64_t pool_bytes = 0;     ///< Current generation.
  std::size_t queue_depth = 0;
  std::size_t executing = 0;
  double ewma_exec_ms = 0.0;        ///< Smoothed per-request execution time.
};

class DeterminacyService {
 public:
  explicit DeterminacyService(ServiceOptions options = ServiceOptions());
  ~DeterminacyService();  ///< Drains: equivalent to Shutdown().

  DeterminacyService(const DeterminacyService&) = delete;
  DeterminacyService& operator=(const DeterminacyService&) = delete;

  /// Submits a request. Returns a future that is fulfilled with exactly
  /// one typed ServeResponse: immediately (already ready) when the request
  /// is shed, otherwise once a runner finishes it. Never throws for
  /// malformed or oversized requests — those become typed outcomes.
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Synchronous convenience: Submit + wait.
  ServeResponse Call(ServeRequest request);

  /// Closes admission and blocks until every accepted request has its
  /// outcome, then stops the runner threads. Idempotent; safe to call
  /// concurrently with Submit (later submissions shed).
  void Shutdown();

  ServiceStats stats() const;

  /// Current generation's cache (test/bench introspection; the pointer is
  /// a snapshot — a rotation may retire it at any time).
  std::shared_ptr<HomCache> generation_cache() const;

 private:
  struct Job {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void RunnerLoop();
  /// Runs every tier/retry of one request; never throws.
  ServeResponse Execute(const ServeRequest& request,
                        const std::shared_ptr<HomCache>& cache,
                        std::uint64_t generation);
  /// Fresh pool + cache honoring the service budgets.
  std::shared_ptr<HomCache> NewGenerationLocked() const;
  void MaybeRotateLocked();
  double RetryAfterMsLocked() const;

  ServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     ///< Runners wait for jobs here.
  std::condition_variable drained_cv_;  ///< Shutdown waits for quiescence.
  std::deque<std::unique_ptr<Job>> queue_;
  std::size_t executing_ = 0;
  bool shutdown_ = false;      ///< Admission closed.
  bool stop_runners_ = false;  ///< Queue drained; runners may exit.

  std::shared_ptr<HomCache> cache_;  ///< Current generation.
  std::uint64_t generation_ = 1;

  // Counters (guarded by mu_). Cache traffic of retired generations is
  // folded into carried_* at rotation time.
  std::uint64_t submitted_ = 0, admitted_ = 0, answered_ = 0, degraded_ = 0,
                shed_ = 0, declined_ = 0, retries_ = 0, rotations_ = 0;
  std::uint64_t carried_hits_ = 0, carried_misses_ = 0, carried_evictions_ = 0;
  double ewma_exec_ms_ = 0.0;

  std::mutex join_mu_;  ///< Serializes thread joins across Shutdown calls.
  std::vector<std::thread> runners_;
};

}  // namespace bagdet

#endif  // BAGDET_SERVE_SERVICE_H_
