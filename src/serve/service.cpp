#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace bagdet {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// A trip that retrying the identical request could plausibly clear: a
/// native or injected std::bad_alloc. Budget/deadline/cancel trips are
/// deterministic for the request and never retried at the same tier.
bool IsTransient(const ExecStatus& status) {
  return status.code == ExecCode::kResourceExhausted &&
         (status.kernel == "alloc" || status.kernel == "serve/dispatch");
}

}  // namespace

const char* ServeOutcomeName(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kAnswered:
      return "answered";
    case ServeOutcome::kDegraded:
      return "degraded";
    case ServeOutcome::kShed:
      return "shed";
    case ServeOutcome::kDeclined:
      return "declined";
  }
  return "unknown";
}

DeterminacyService::DeterminacyService(ServiceOptions options)
    : options_(options) {
  if (options_.max_concurrent == 0) options_.max_concurrent =
      DefaultThreadCount();
  options_.max_queue = std::max<std::size_t>(1, options_.max_queue);
  cache_ = NewGenerationLocked();
  runners_.reserve(options_.max_concurrent);
  for (std::size_t i = 0; i < options_.max_concurrent; ++i) {
    runners_.emplace_back(&DeterminacyService::RunnerLoop, this);
  }
}

DeterminacyService::~DeterminacyService() { Shutdown(); }

std::shared_ptr<HomCache> DeterminacyService::NewGenerationLocked() const {
  auto pool = std::make_shared<StructurePool>(options_.pool_first_block);
  auto cache = std::make_shared<HomCache>(std::move(pool));
  if (options_.hom_cache_max_entries != 0) {
    cache->set_max_entries(options_.hom_cache_max_entries);
  }
  if (options_.hom_cache_max_bytes != 0) {
    cache->set_max_bytes(options_.hom_cache_max_bytes);
  }
  return cache;
}

void DeterminacyService::MaybeRotateLocked() {
  const StructurePool& pool = cache_->pool();
  if (pool.size() <= options_.pool_max_classes &&
      pool.ApproxBytes() <= options_.pool_max_bytes) {
    return;
  }
  // Fold the retiring generation's traffic into the carried totals; the
  // generation itself stays alive through the shared_ptrs of whatever
  // requests and results still reference it.
  const HomCache::Stats s = cache_->stats();
  carried_hits_ += s.hits;
  carried_misses_ += s.misses;
  carried_evictions_ += s.evictions;
  cache_ = NewGenerationLocked();
  ++generation_;
  ++rotations_;
}

double DeterminacyService::RetryAfterMsLocked() const {
  // Expected time until a slot frees for one more request: backlog depth
  // over service width, paced by the measured per-request time (1ms floor
  // before any request completes).
  const double per_request = ewma_exec_ms_ > 0.0 ? ewma_exec_ms_ : 1.0;
  const double backlog =
      static_cast<double>(queue_.size() + executing_ + 1);
  return std::max(
      1.0, per_request * backlog / static_cast<double>(options_.max_concurrent));
}

std::future<ServeResponse> DeterminacyService::Submit(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();

  ServeResponse rejected;
  try {
    BAGDET_FAILPOINT("serve/admit");
  } catch (const std::bad_alloc&) {
    // Admission-path OOM: the request was never enqueued, so the typed
    // decline is produced synchronously and nothing retries it.
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    ++declined_;
    rejected.outcome = ServeOutcome::kDeclined;
    rejected.status =
        ExecStatus{ExecCode::kResourceExhausted, "serve/admit", 0, 0.0};
    rejected.message = "admission fault";
    promise.set_value(std::move(rejected));
    return future;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    if (!shutdown_ && queue_.size() < options_.max_queue) {
      ++admitted_;
      auto job = std::make_unique<Job>();
      job->request = std::move(request);
      job->promise = std::move(promise);
      job->enqueued = std::chrono::steady_clock::now();
      queue_.push_back(std::move(job));
      work_cv_.notify_one();
      return future;
    }
    ++shed_;
    rejected.outcome = ServeOutcome::kShed;
    rejected.status.code = ExecCode::kOverloaded;
    rejected.status.kernel = shutdown_ ? "serve/shutdown" : "serve/admit";
    rejected.retry_after_ms = shutdown_ ? 0.0 : RetryAfterMsLocked();
  }
  promise.set_value(std::move(rejected));
  return future;
}

ServeResponse DeterminacyService::Call(ServeRequest request) {
  return Submit(std::move(request)).get();
}

ServeResponse DeterminacyService::Execute(
    const ServeRequest& request, const std::shared_ptr<HomCache>& cache,
    std::uint64_t generation) {
  ServeResponse resp;
  resp.generation = generation;
  const bool want_cx = request.options.want_counterexample;
  bool tier_degraded = false;
  const auto t0 = std::chrono::steady_clock::now();

  for (;;) {
    ++resp.attempts;
    // Each attempt gets a fresh context: per-request limits govern one
    // execution, so a degraded tier or a post-backoff retry restarts the
    // deadline clock instead of inheriting an already-spent budget.
    ExecContext exec(request.limits);
    DeterminacyOptions opts = request.options;
    opts.shared_hom_cache = cache;
    opts.hom_cache_max_entries = 0;
    opts.hom_cache_max_bytes = 0;
    opts.want_counterexample = want_cx && !tier_degraded;

    ExecStatus status;
    std::optional<DeterminacyResult> result;
    try {
      BAGDET_FAILPOINT("serve/dispatch");
      // Copies in: a faulted attempt must leave the request intact for
      // the retry, so the views/query are never moved from.
      GovernedDecision decision = DecideBagDeterminacyGoverned(
          request.views, request.query, opts, exec);
      status = std::move(decision.status);
      result = std::move(decision.result);
    } catch (const std::bad_alloc&) {
      status = ExecStatus{ExecCode::kResourceExhausted, "serve/dispatch", 0,
                          MsSince(t0)};
    } catch (const std::invalid_argument& e) {
      resp.outcome = ServeOutcome::kDeclined;
      resp.status = ExecStatus{ExecCode::kInvalidArgument, "serve/validate",
                               0, MsSince(t0)};
      resp.message = e.what();
      break;
    }

    if (status.ok()) {
      // The decision completed. Distinguisher bound exhaustion surfaces
      // inside the result as a non-ok exec_status with a valid verdict —
      // the built-in degraded answer.
      const bool distinguisher_exhausted =
          result->exec_status.code == ExecCode::kResourceExhausted &&
          result->exec_status.kernel == "distinguisher";
      if (tier_degraded && want_cx && !result->determined) {
        // Verdict delivered without the counterexample the client asked
        // for (a determined verdict never carries one, so that case is a
        // full answer despite the dropped tier).
        resp.outcome = ServeOutcome::kDegraded;
        resp.degraded = true;
      } else if (distinguisher_exhausted) {
        resp.outcome = ServeOutcome::kDegraded;
        resp.degraded = true;
        resp.status = result->exec_status;
      } else {
        resp.outcome = ServeOutcome::kAnswered;
        resp.degraded = false;
        resp.status = ExecStatus{};
      }
      resp.result = std::move(result);
      break;
    }

    if (IsTransient(status) && resp.retries < options_.max_retries) {
      ++resp.retries;
      const std::uint32_t shift =
          std::min<std::uint32_t>(resp.retries - 1, 6);  // Cap at 64x base.
      const std::uint32_t backoff_ms = options_.backoff_base_ms << shift;
      if (backoff_ms != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
      continue;
    }

    const bool can_degrade =
        !tier_degraded && want_cx && options_.allow_degraded &&
        (status.code == ExecCode::kDeadlineExceeded ||
         status.code == ExecCode::kResourceExhausted);
    if (can_degrade) {
      // The full decision tripped its limits; drop the counterexample
      // tier — the verdict is the cheap half — and record why.
      tier_degraded = true;
      resp.status = std::move(status);
      continue;
    }

    resp.outcome = ServeOutcome::kDeclined;
    resp.status = std::move(status);
    break;
  }

  resp.exec_ms = MsSince(t0);
  return resp;
}

void DeterminacyService::RunnerLoop() {
  for (;;) {
    std::unique_ptr<Job> job;
    std::shared_ptr<HomCache> cache;
    std::uint64_t generation = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return stop_runners_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_runners_ and drained.
      job = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
      cache = cache_;  // Snapshot: this request's generation, rotation-safe.
      generation = generation_;
    }

    const double queue_ms = MsSince(job->enqueued);
    ServeResponse resp = Execute(job->request, cache, generation);
    resp.queue_ms = queue_ms;
    cache.reset();  // The response may be the last holder now.

    {
      std::lock_guard<std::mutex> lock(mu_);
      switch (resp.outcome) {
        case ServeOutcome::kAnswered:
          ++answered_;
          break;
        case ServeOutcome::kDegraded:
          ++degraded_;
          break;
        case ServeOutcome::kDeclined:
          ++declined_;
          break;
        case ServeOutcome::kShed:  // Unreachable for admitted requests.
          ++shed_;
          break;
      }
      retries_ += resp.retries;
      ewma_exec_ms_ = ewma_exec_ms_ == 0.0
                          ? resp.exec_ms
                          : 0.8 * ewma_exec_ms_ + 0.2 * resp.exec_ms;
      MaybeRotateLocked();
    }

    job->promise.set_value(std::move(resp));

    {
      std::lock_guard<std::mutex> lock(mu_);
      --executing_;
      // Drain order: the promise above is already fulfilled, so when
      // Shutdown wakes on quiescence every accepted future is ready.
      if (queue_.empty() && executing_ == 0) drained_cv_.notify_all();
    }
  }
}

void DeterminacyService::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;  // Later Submits shed with "serve/shutdown".
    drained_cv_.wait(lock,
                     [this] { return queue_.empty() && executing_ == 0; });
    stop_runners_ = true;
  }
  work_cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& t : runners_) {
    if (t.joinable()) t.join();
  }
}

ServiceStats DeterminacyService::stats() const {
  ServiceStats s;
  std::lock_guard<std::mutex> lock(mu_);
  s.submitted = submitted_;
  s.admitted = admitted_;
  s.answered = answered_;
  s.degraded = degraded_;
  s.shed = shed_;
  s.declined = declined_;
  s.retries = retries_;
  s.rotations = rotations_;
  s.generation = generation_;
  const HomCache::Stats cs = cache_->stats();
  s.cache_hits = carried_hits_ + cs.hits;
  s.cache_misses = carried_misses_ + cs.misses;
  s.cache_evictions = carried_evictions_ + cs.evictions;
  s.pool_classes = cache_->pool().size();
  s.pool_bytes = cache_->pool().ApproxBytes();
  s.queue_depth = queue_.size();
  s.executing = executing_;
  s.ewma_exec_ms = ewma_exec_ms_;
  return s;
}

std::shared_ptr<HomCache> DeterminacyService::generation_cache() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_;
}

}  // namespace bagdet
