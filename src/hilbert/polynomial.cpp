#include "hilbert/polynomial.h"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace bagdet {

BigInt Monomial::Evaluate(const std::vector<std::uint64_t>& values) const {
  BigInt result(coefficient);
  for (std::size_t x = 0; x < exponents.size(); ++x) {
    if (exponents[x] == 0) continue;
    if (x >= values.size()) {
      throw std::invalid_argument("Monomial: missing unknown value");
    }
    result *= BigInt::Pow(BigInt(static_cast<std::int64_t>(values[x])),
                          exponents[x]);
  }
  return result;
}

DiophantineInstance::DiophantineInstance(std::vector<Monomial> monomials)
    : monomials_(std::move(monomials)) {
  for (const Monomial& m : monomials_) {
    if (m.coefficient == 0) {
      throw std::invalid_argument("DiophantineInstance: zero coefficient");
    }
    if (m.exponents.size() > num_unknowns_) num_unknowns_ = m.exponents.size();
  }
}

DiophantineInstance DiophantineInstance::Parse(std::string_view text) {
  std::vector<Monomial> monomials;
  std::size_t pos = 0;
  auto skip_space = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  auto parse_number = [&]() -> std::int64_t {
    std::int64_t value = 0;
    bool any = false;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      value = value * 10 + (text[pos] - '0');
      ++pos;
      any = true;
    }
    if (!any) throw std::invalid_argument("polynomial parse: expected digits");
    return value;
  };
  skip_space();
  bool first = true;
  while (pos < text.size()) {
    int sign = 1;
    skip_space();
    if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
      sign = text[pos] == '-' ? -1 : 1;
      ++pos;
    } else if (!first) {
      throw std::invalid_argument("polynomial parse: expected '+' or '-'");
    }
    first = false;
    skip_space();
    Monomial m;
    m.coefficient = sign;
    bool saw_factor = false;
    for (;;) {
      skip_space();
      if (pos < text.size() && text[pos] == '*') {
        ++pos;
        skip_space();
      }
      if (pos < text.size() &&
          std::isdigit(static_cast<unsigned char>(text[pos]))) {
        m.coefficient *= parse_number();
        saw_factor = true;
        continue;
      }
      if (pos < text.size() && text[pos] == 'x') {
        ++pos;
        std::size_t index = static_cast<std::size_t>(parse_number());
        std::uint32_t degree = 1;
        skip_space();
        if (pos < text.size() && text[pos] == '^') {
          ++pos;
          degree = static_cast<std::uint32_t>(parse_number());
        }
        if (m.exponents.size() <= index) m.exponents.resize(index + 1, 0);
        m.exponents[index] += degree;
        saw_factor = true;
        continue;
      }
      break;
    }
    if (!saw_factor) {
      throw std::invalid_argument("polynomial parse: empty monomial in '" +
                                  std::string(text) + "'");
    }
    if (m.coefficient != 0) monomials.push_back(std::move(m));
  }
  return DiophantineInstance(std::move(monomials));
}

BigInt DiophantineInstance::Evaluate(
    const std::vector<std::uint64_t>& values) const {
  BigInt total(0);
  for (const Monomial& m : monomials_) total += m.Evaluate(values);
  return total;
}

std::optional<std::vector<std::uint64_t>> DiophantineInstance::FindSolution(
    std::uint64_t bound) const {
  std::vector<std::uint64_t> values(num_unknowns_, 0);
  for (;;) {
    if (Evaluate(values).IsZero()) return values;
    std::size_t i = 0;
    while (i < num_unknowns_ && ++values[i] > bound) {
      values[i] = 0;
      ++i;
    }
    if (i == num_unknowns_) return std::nullopt;
  }
}

std::string DiophantineInstance::ToString() const {
  if (monomials_.empty()) return "0";
  std::ostringstream os;
  for (std::size_t i = 0; i < monomials_.size(); ++i) {
    const Monomial& m = monomials_[i];
    std::int64_t c = m.coefficient;
    if (i == 0) {
      if (c < 0) os << "-";
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    std::int64_t abs = c < 0 ? -c : c;
    bool printed = false;
    if (abs != 1) {
      os << abs;
      printed = true;
    }
    for (std::size_t x = 0; x < m.exponents.size(); ++x) {
      if (m.exponents[x] == 0) continue;
      if (printed) os << "*";
      os << "x" << x;
      if (m.exponents[x] > 1) os << "^" << m.exponents[x];
      printed = true;
    }
    if (!printed) os << 1;
  }
  return os.str();
}

}  // namespace bagdet
