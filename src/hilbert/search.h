// bagdet: bounded refutation search for UCQ bag-determinacy.
//
// Theorem 2 makes the problem undecidable in general, so all one can do is
// search: sweep structure summaries (D_H, D_C, D_X0..) up to a bound and
// look for a pair with equal view answers and different query answers.
// For instances emitted by the Theorem-2 reduction this is exactly a
// bounded Hilbert-10 solution search (Lemma 63), but the routine works for
// any views/query over the reduction's schema shape.

#ifndef BAGDET_HILBERT_SEARCH_H_
#define BAGDET_HILBERT_SEARCH_H_

#include <optional>

#include "hilbert/reduction.h"

namespace bagdet {

/// A refutation of determinacy: structure pair with equal view counts and
/// different query counts.
struct NonDeterminacyWitness {
  Structure d;
  Structure d_prime;
  std::vector<BigInt> view_counts;  ///< Shared by both structures.
  BigInt query_count_d;
  BigInt query_count_d_prime;
};

/// Sweeps all structure summaries with every X-count <= bound and both
/// H/C flag combinations, looking for a refuting pair. By Lemma 62, for
/// reduction-emitted instances the only candidate pairs flip H against C
/// at equal X-counts — but the search checks *all* summary pairs, so it is
/// a sound refutation search for any instance over this schema shape.
/// Returns std::nullopt when no refutation exists within the bound (which
/// proves nothing beyond the bound — Theorem 2!).
std::optional<NonDeterminacyWitness> SearchNonDeterminacy(
    const Theorem2Reduction& reduction, std::uint64_t bound);

}  // namespace bagdet

#endif  // BAGDET_HILBERT_SEARCH_H_
