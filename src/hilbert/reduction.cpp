#include "hilbert/reduction.h"

#include <stdexcept>
#include <string>

#include "util/hash.h"

namespace bagdet {

namespace {

/// Builds Φ_m (optionally ∧ H or ∧ C): one fresh variable with a unary
/// X_i atom for each unit of degree, plus the nullary marker atom.
ConjunctiveQuery BuildPhiConjunct(const std::shared_ptr<Schema>& schema,
                                  const std::vector<RelationId>& x_relations,
                                  const Monomial& monomial, std::string name,
                                  std::optional<RelationId> marker) {
  std::vector<std::string> var_names;
  std::vector<QueryAtom> atoms;
  for (std::size_t x = 0; x < monomial.exponents.size(); ++x) {
    for (std::uint32_t j = 0; j < monomial.exponents[x]; ++j) {
      VarId var = static_cast<VarId>(var_names.size());
      var_names.push_back("y_" + std::to_string(x) + "_" + std::to_string(j));
      atoms.push_back(QueryAtom{x_relations[x], {var}});
    }
  }
  if (marker.has_value()) atoms.push_back(QueryAtom{*marker, {}});
  return ConjunctiveQuery(std::move(name), schema, std::move(var_names), 0,
                          std::move(atoms));
}

}  // namespace

Theorem2Reduction ReduceToDeterminacy(const DiophantineInstance& instance) {
  Theorem2Reduction red;
  red.schema = std::make_shared<Schema>();
  red.h_relation = red.schema->AddRelation("H", 0);
  red.c_relation = red.schema->AddRelation("C", 0);
  for (std::size_t x = 0; x < instance.NumUnknowns(); ++x) {
    red.x_relations.push_back(
        red.schema->AddRelation("X" + std::to_string(x), 1));
  }

  // q = H.
  ConjunctiveQuery just_h("q", red.schema, {}, 0,
                          {QueryAtom{red.h_relation, {}}});
  ConjunctiveQuery just_c("c", red.schema, {}, 0,
                          {QueryAtom{red.c_relation, {}}});
  red.query = UnionQuery("q", {just_h});

  // V1 = H ∨ C.
  std::vector<UnionQuery> views;
  views.emplace_back("V1", std::vector<ConjunctiveQuery>{just_h, just_c});

  // V_xi = ∃y X_i(y).
  for (std::size_t x = 0; x < instance.NumUnknowns(); ++x) {
    ConjunctiveQuery vx("Vx" + std::to_string(x), red.schema, {"y"}, 0,
                        {QueryAtom{red.x_relations[x], {0}}});
    views.emplace_back(vx.name(), std::vector<ConjunctiveQuery>{vx});
  }

  // Φ_m per monomial, and Ψ_P / Ψ_N with multiplicity |c(m)|.
  std::vector<ConjunctiveQuery> psi_p;
  std::vector<ConjunctiveQuery> psi_n;
  for (std::size_t mi = 0; mi < instance.monomials().size(); ++mi) {
    const Monomial& m = instance.monomials()[mi];
    red.phi.push_back(BuildPhiConjunct(red.schema, red.x_relations, m,
                                       "phi" + std::to_string(mi),
                                       std::nullopt));
    const std::int64_t c = m.coefficient;
    const std::uint64_t copies =
        static_cast<std::uint64_t>(c < 0 ? -c : c);
    for (std::uint64_t copy = 0; copy < copies; ++copy) {
      if (c > 0) {
        psi_p.push_back(BuildPhiConjunct(
            red.schema, red.x_relations, m,
            "psiP_" + std::to_string(mi) + "_" + std::to_string(copy),
            red.h_relation));
      } else {
        psi_n.push_back(BuildPhiConjunct(
            red.schema, red.x_relations, m,
            "psiN_" + std::to_string(mi) + "_" + std::to_string(copy),
            red.c_relation));
      }
    }
  }
  red.psi_positive = UnionQuery("PsiP", psi_p);
  red.psi_negative = UnionQuery("PsiN", psi_n);

  // V_I = Ψ_P ∨ Ψ_N.
  std::vector<ConjunctiveQuery> vi = psi_p;
  vi.insert(vi.end(), psi_n.begin(), psi_n.end());
  views.emplace_back("VI", std::move(vi));

  red.views = std::move(views);
  return red;
}

Structure Theorem2Reduction::MakeStructure(
    bool has_h, bool has_c,
    const std::vector<std::uint64_t>& x_counts) const {
  if (x_counts.size() != x_relations.size()) {
    throw std::invalid_argument("MakeStructure: wrong number of X counts");
  }
  Structure data(schema, 0);
  if (has_h) data.AddFact(h_relation, {});
  if (has_c) data.AddFact(c_relation, {});
  for (std::size_t x = 0; x < x_counts.size(); ++x) {
    for (std::uint64_t i = 0; i < x_counts[x]; ++i) {
      Element e = data.AddElement();
      data.AddFact(x_relations[x], {e});
    }
  }
  return data;
}

std::pair<Structure, Structure> Theorem2Reduction::WitnessPair(
    const std::vector<std::uint64_t>& solution) const {
  return {MakeStructure(/*has_h=*/true, /*has_c=*/false, solution),
          MakeStructure(/*has_h=*/false, /*has_c=*/true, solution)};
}

std::vector<BigInt> Theorem2Reduction::EvaluateViews(
    const Structure& data) const {
  std::vector<BigInt> values;
  values.reserve(views.size());
  for (const UnionQuery& view : views) values.push_back(view.Count(data));
  return values;
}

std::uint64_t CountVectorFingerprint(const std::vector<BigInt>& counts) {
  // Largest prime below 2^62 — the head of the modular layer's prime
  // sequence (linalg/modular_solve.cpp).
  constexpr std::uint64_t kPrime = 4611686018427387847ull;
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ counts.size();
  for (const BigInt& count : counts) {
    h = MixHash(h, count.Mod(kPrime));
  }
  return h;
}

}  // namespace bagdet
