// bagdet: integer polynomials as sets of monomials — the instances of
// Hilbert's Tenth Problem that the Theorem-2 reduction consumes
// (Appendix A, Problem 58).

#ifndef BAGDET_HILBERT_POLYNOMIAL_H_
#define BAGDET_HILBERT_POLYNOMIAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bigint.h"

namespace bagdet {

/// A monomial c · x_0^{e_0} · ... · x_{n-1}^{e_{n-1}} with integer c ≠ 0.
struct Monomial {
  std::int64_t coefficient = 0;
  std::vector<std::uint32_t> exponents;  ///< Degree per unknown; may be
                                         ///< shorter than the unknown count.

  /// Degree of unknown `x` (0 when x is beyond `exponents`).
  std::uint32_t Degree(std::size_t x) const {
    return x < exponents.size() ? exponents[x] : 0;
  }

  /// Value after substituting the given unknowns (paper's m_D / m_f).
  BigInt Evaluate(const std::vector<std::uint64_t>& values) const;
};

/// An instance I of Hilbert's Tenth Problem: does Σ_{m ∈ I} m = 0 have a
/// solution over the natural numbers?
class DiophantineInstance {
 public:
  DiophantineInstance() = default;
  explicit DiophantineInstance(std::vector<Monomial> monomials);

  /// Parses e.g. "x0^2*x1 - 2*x1 + 7" (unknowns are x0, x1, ...; '*' is
  /// optional between factors). Throws std::invalid_argument on bad input.
  static DiophantineInstance Parse(std::string_view text);

  const std::vector<Monomial>& monomials() const { return monomials_; }
  std::size_t NumUnknowns() const { return num_unknowns_; }

  /// Σ_{m ∈ I} m at the given point.
  BigInt Evaluate(const std::vector<std::uint64_t>& values) const;

  /// Exhaustive search for a solution with every unknown ≤ bound.
  /// Semi-decision only — the full problem is undecidable, which is the
  /// point of Theorem 2.
  std::optional<std::vector<std::uint64_t>> FindSolution(
      std::uint64_t bound) const;

  std::string ToString() const;

 private:
  std::vector<Monomial> monomials_;
  std::size_t num_unknowns_ = 0;
};

}  // namespace bagdet

#endif  // BAGDET_HILBERT_POLYNOMIAL_H_
