// bagdet: the Theorem-2 reduction (Appendix A) — from Hilbert's Tenth
// Problem to bag-determinacy of boolean UCQs.
//
// For an instance I = {m_1, ..., m_k} over unknowns x_0..x_{n-1}, the
// reduction emits a schema Σ = {H, C (nullary), X_0..X_{n-1} (unary)},
// the query q = H, and the views
//   V1   = H ∨ C,
//   V_xi = ∃y X_i(y)                       (one per unknown),
//   V_I  = Ψ_P ∨ Ψ_N, where Ψ_P repeats Φ_m ∧ H c(m) times for positive
//          monomials and Ψ_N repeats Φ_m ∧ C |c(m)| times for negative
//          ones, with Φ_m = ∃* Λ_i Λ_{j≤m(x_i)} X_i(y_ij)
// so that I has a solution over ℕ  ⇔  V does NOT bag-determine q
// (Lemma 63). Structures over Σ are summarized by (D_H, D_C, D_X0, ...).

#ifndef BAGDET_HILBERT_REDUCTION_H_
#define BAGDET_HILBERT_REDUCTION_H_

#include <memory>
#include <vector>

#include "hilbert/polynomial.h"
#include "query/cq.h"

namespace bagdet {

/// The emitted determinacy instance.
struct Theorem2Reduction {
  std::shared_ptr<Schema> schema;
  RelationId h_relation = 0;           ///< Nullary H.
  RelationId c_relation = 0;           ///< Nullary C.
  std::vector<RelationId> x_relations; ///< Unary X_i per unknown.

  UnionQuery query;                    ///< q = H.
  std::vector<UnionQuery> views;       ///< V1, V_x0.., V_I (in this order).

  /// Φ_m for each monomial (index-aligned with the instance), exposed so
  /// Lemma 59 (m_D = c(m) · Φ_m(D)) can be tested directly.
  std::vector<ConjunctiveQuery> phi;

  /// Ψ_P and Ψ_N (Lemmas 60, 61).
  UnionQuery psi_positive;
  UnionQuery psi_negative;

  /// Builds the structure with D_H = has_h, D_C = has_c, D_{X_i} =
  /// x_counts[i] (each X_i fact on its own fresh element).
  Structure MakeStructure(bool has_h, bool has_c,
                          const std::vector<std::uint64_t>& x_counts) const;

  /// Lemma 63 (⇐): the pair (D, D′) witnessing non-determinacy for a
  /// solution f of I: D_H = D′_C = 1, D_C = D′_H = 0, D_Xi = D′_Xi = f(x_i).
  std::pair<Structure, Structure> WitnessPair(
      const std::vector<std::uint64_t>& solution) const;

  /// V(D) for every view, in view order.
  std::vector<BigInt> EvaluateViews(const Structure& data) const;
};

/// 64-bit fingerprint of a view-count vector: each count reduced modulo a
/// fixed 62-bit prime (BigInt::Mod residue extraction, the same primitive
/// the modular linear-algebra layer uses) and hash-combined in order.
/// Equal vectors have equal fingerprints, so the quadratic witness scan in
/// SearchNonDeterminacy can compare fingerprints before any exact BigInt
/// comparison — the modular probe-before-exact-work pattern applied to the
/// Hilbert layer's reduction counts.
std::uint64_t CountVectorFingerprint(const std::vector<BigInt>& counts);

/// Runs the reduction on an instance.
Theorem2Reduction ReduceToDeterminacy(const DiophantineInstance& instance);

}  // namespace bagdet

#endif  // BAGDET_HILBERT_REDUCTION_H_
