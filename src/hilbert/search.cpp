#include "hilbert/search.h"

#include "util/exec_context.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace bagdet {

namespace {

/// Advances a mixed-radix odometer over X-counts; returns false on wrap.
bool NextCounts(std::vector<std::uint64_t>* counts, std::uint64_t bound) {
  for (std::size_t i = 0; i < counts->size(); ++i) {
    if (++(*counts)[i] <= bound) return true;
    (*counts)[i] = 0;
  }
  return false;
}

}  // namespace

std::optional<NonDeterminacyWitness> SearchNonDeterminacy(
    const Theorem2Reduction& reduction, std::uint64_t bound) {
  // Materialize all summaries with their view/query counts first.
  struct Entry {
    bool has_h = false;
    bool has_c = false;
    std::vector<std::uint64_t> x_counts;
    std::vector<BigInt> views;
    std::uint64_t views_fingerprint = 0;  ///< Modular probe for the scan.
    BigInt query;
  };
  // Enumerate the summary grid first, then fill the entries (view counts +
  // fingerprint + query count) through the global ThreadPool: each task
  // builds its own structure, so the only shared state — the reduction's
  // queries and schema — is read-only. Entry order matches the enumeration
  // order exactly, keeping the scan below (and the witness it returns)
  // deterministic at any thread count.
  std::vector<Entry> entries;
  // The frontier grid is (bound+1)^|X| · 4 entries — exponential in the
  // reduction's X-relations — so its materialization is charged against
  // the governing request and every fill/scan step checkpoints.
  ScopedCharge grid_mem("hilbert.search");
  std::vector<std::uint64_t> x_counts(reduction.x_relations.size(), 0);
  do {
    ExecCheckPoint("hilbert.search");
    for (int h = 0; h <= 1; ++h) {
      for (int c = 0; c <= 1; ++c) {
        Entry entry;
        entry.has_h = h == 1;
        entry.has_c = c == 1;
        entry.x_counts = x_counts;
        entries.push_back(std::move(entry));
      }
    }
    grid_mem.Update(static_cast<std::uint64_t>(entries.capacity()) *
                    (sizeof(Entry) + x_counts.size() * sizeof(std::uint64_t)));
  } while (NextCounts(&x_counts, bound));
  GlobalThreadPool().ParallelFor(entries.size(), [&](std::size_t i) {
    ExecCheckPoint("hilbert.search");
    BAGDET_FAILPOINT("hilbert/entry");
    Entry& entry = entries[i];
    Structure d =
        reduction.MakeStructure(entry.has_h, entry.has_c, entry.x_counts);
    entry.views = reduction.EvaluateViews(d);
    entry.views_fingerprint = CountVectorFingerprint(entry.views);
    entry.query = reduction.query.Count(d);
  });

  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      ExecCheckPoint("hilbert.search");
      // Word-size modular fingerprints first; the exact BigInt vector
      // comparison only runs on a fingerprint collision.
      if (entries[i].views_fingerprint != entries[j].views_fingerprint) {
        continue;
      }
      if (entries[i].views != entries[j].views) continue;
      if (entries[i].query == entries[j].query) continue;
      NonDeterminacyWitness witness;
      witness.d = reduction.MakeStructure(entries[i].has_h, entries[i].has_c,
                                          entries[i].x_counts);
      witness.d_prime = reduction.MakeStructure(
          entries[j].has_h, entries[j].has_c, entries[j].x_counts);
      witness.view_counts = entries[i].views;
      witness.query_count_d = entries[i].query;
      witness.query_count_d_prime = entries[j].query;
      return witness;
    }
  }
  return std::nullopt;
}

}  // namespace bagdet
