// bagdet: dense vectors and matrices over exact rationals.
//
// The determinacy pipeline works in three k-dimensional spaces (queries,
// structures, answer vectors — Section 7.1 of the paper); this module
// provides the shared dense representation. All arithmetic is exact.

#ifndef BAGDET_LINALG_MATRIX_H_
#define BAGDET_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rational.h"

namespace bagdet {

/// Dense column vector over Q.
class Vec {
 public:
  Vec() = default;
  explicit Vec(std::size_t size) : entries_(size) {}
  Vec(std::initializer_list<Rational> entries) : entries_(entries) {}
  explicit Vec(std::vector<Rational> entries) : entries_(std::move(entries)) {}

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  Rational& operator[](std::size_t i) { return entries_[i]; }
  const Rational& operator[](std::size_t i) const { return entries_[i]; }

  bool IsZero() const;

  Vec operator-() const;
  Vec& operator+=(const Vec& other);
  Vec& operator-=(const Vec& other);
  Vec& operator*=(const Rational& scalar);
  friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend Vec operator*(Vec a, const Rational& s) { return a *= s; }
  friend Vec operator*(const Rational& s, Vec a) { return a *= s; }

  friend bool operator==(const Vec& a, const Vec& b) {
    return a.entries_ == b.entries_;
  }
  friend bool operator!=(const Vec& a, const Vec& b) { return !(a == b); }

  /// Dot product; sizes must match.
  static Rational Dot(const Vec& a, const Vec& b);

  /// Hadamard (entrywise) product — the paper's `u ∘ v` (Definition 48(1)).
  static Vec Hadamard(const Vec& a, const Vec& b);

  /// True iff every entry is >= 0.
  bool IsNonNegative() const;

  /// True iff every entry is an integer.
  bool IsIntegral() const;

  /// Smallest positive integer c such that c * (*this) is integral.
  BigInt CommonDenominator() const;

  std::string ToString() const;
  friend std::ostream& operator<<(std::ostream& os, const Vec& v);

 private:
  std::vector<Rational> entries_;
};

/// Dense matrix over Q, row-major.
class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), entries_(rows * cols) {}
  /// Builds from a row-major nested initializer list.
  Mat(std::initializer_list<std::initializer_list<Rational>> rows);

  static Mat Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Rational& At(std::size_t r, std::size_t c) { return entries_[r * cols_ + c]; }
  const Rational& At(std::size_t r, std::size_t c) const {
    return entries_[r * cols_ + c];
  }

  Vec Row(std::size_t r) const;
  Vec Col(std::size_t c) const;
  void SetRow(std::size_t r, const Vec& row);

  /// Swaps two rows of the flat storage by element-wise move (no Rational
  /// deep copies) — the elimination kernels' pivot swap.
  void SwapRows(std::size_t a, std::size_t b);

  /// Pre-allocates flat storage for a rows×cols matrix without changing
  /// the current shape (callers that assemble matrices incrementally).
  void Reserve(std::size_t rows, std::size_t cols) {
    entries_.reserve(rows * cols);
  }

  Mat Transposed() const;

  friend bool operator==(const Mat& a, const Mat& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.entries_ == b.entries_;
  }
  friend bool operator!=(const Mat& a, const Mat& b) { return !(a == b); }

  /// Matrix-vector product; `v.size()` must equal `cols()`.
  Vec Apply(const Vec& v) const;

  /// Matrix-matrix product; `other.rows()` must equal `cols()`.
  Mat Multiply(const Mat& other) const;

  /// Builds a matrix whose columns are the given vectors (all same size).
  static Mat FromColumns(const std::vector<Vec>& columns);
  /// Builds a matrix whose rows are the given vectors (all same size).
  static Mat FromRows(const std::vector<Vec>& rows);

  std::string ToString() const;
  friend std::ostream& operator<<(std::ostream& os, const Mat& m);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Rational> entries_;
};

}  // namespace bagdet

#endif  // BAGDET_LINALG_MATRIX_H_
