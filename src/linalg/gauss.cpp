#include "linalg/gauss.h"

#include <algorithm>
#include <stdexcept>

#include "linalg/modular_solve.h"
#include "util/tuning.h"

namespace bagdet {

namespace {

/// Size proxy for pivot selection: total bit length of the entry. Dividing
/// the pivot row by a short rational keeps the coefficients that the
/// eliminations below spread across the matrix small.
std::size_t RationalBitLength(const Rational& value) {
  return value.numerator().BitLength() + value.denominator().BitLength();
}

/// The modular driver pays a fixed cost (prime setup, residue extraction,
/// verification); below a 3×3 the exact elimination is trivially cheap and
/// always wins.
bool UseModularPath(const Mat& m) { return m.rows() >= 3 && m.cols() >= 3; }

/// Inverse dispatch gate. The thresholds live in the active TuningProfile;
/// their defaults are the crossover measured on the 1-core reference host
/// (BENCH_linalg.json): with word-size entries exact [A|I] elimination
/// stays ahead through n ≈ 8 (its rationals never grow far), while entries
/// of 32 bits and up flip to the multi-modular path from n = 4. A profile
/// produced by bagdet_tune re-points the gate at the crossover of the
/// machine actually running; either path returns bit-identical results.
bool UseModularInverse(const Mat& m) {
  const TuningProfile& tuning = Tuning();
  const std::size_t n = m.rows();
  if (n < tuning.inverse_modular_min_dim) return false;
  if (n >= tuning.inverse_modular_always_dim) return true;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const Rational& q = m.At(r, c);
      if (q.numerator().BitLength() + q.denominator().BitLength() >=
          tuning.inverse_modular_entry_bits) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Rref ReduceToRref(Mat m) {
  if (UseModularPath(m)) {
    if (std::optional<Rref> fast = TryModularRref(m)) return std::move(*fast);
  }
  return ReduceToRrefExact(std::move(m));
}

Rref ReduceToRrefExact(Mat m) {
  Rref result;
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols && pivot_row < rows; ++col) {
    // Pick the nonzero entry with the shortest numerator/denominator at or
    // below pivot_row, which curbs rational coefficient blowup compared to
    // taking the first nonzero entry.
    std::size_t found = rows;
    std::size_t found_bits = 0;
    for (std::size_t r = pivot_row; r < rows; ++r) {
      if (m.At(r, col).IsZero()) continue;
      std::size_t bits = RationalBitLength(m.At(r, col));
      if (found == rows || bits < found_bits) {
        found = r;
        found_bits = bits;
      }
    }
    if (found == rows) continue;
    m.SwapRows(found, pivot_row);
    Rational inv = m.At(pivot_row, col).Inverse();
    for (std::size_t c = col; c < cols; ++c) m.At(pivot_row, c) *= inv;
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == pivot_row) continue;
      Rational factor = m.At(r, col);
      if (factor.IsZero()) continue;
      for (std::size_t c = col; c < cols; ++c) {
        m.At(r, c) -= factor * m.At(pivot_row, c);
      }
    }
    result.pivots.push_back(col);
    ++pivot_row;
  }
  result.rank = pivot_row;
  result.matrix = std::move(m);
  return result;
}

std::size_t Rank(const Mat& m) {
  if (UseModularPath(m)) {
    // A single-prime elimination gives a certified lower bound; when it
    // saturates min(rows, cols) the exact rank is known with no exact
    // arithmetic at all (the common case for the pipeline's full-rank
    // evaluation matrices).
    const std::size_t max_rank = std::min(m.rows(), m.cols());
    std::optional<std::size_t> probe = ModularRankLowerBound(m);
    if (probe.has_value() && *probe == max_rank) return max_rank;
    if (std::optional<Rref> fast = TryModularRref(m)) return fast->rank;
  }
  return ReduceToRrefExact(m).rank;
}

bool IsNonsingular(const Mat& m) {
  if (m.rows() != m.cols()) return false;
  if (UseModularPath(m)) {
    // det(A) mod p != 0 certifies nonsingularity outright; otherwise fall
    // through to the certified rank (which itself starts modular).
    std::optional<bool> probe = ModularNonsingularProbe(m);
    if (probe.has_value()) return *probe;
  }
  return Rank(m) == m.rows();
}

Rational Determinant(Mat m) {
  if (m.rows() != m.cols()) {
    throw std::invalid_argument("Determinant: matrix not square");
  }
  const std::size_t n = m.rows();
  // Dense-integer case: fraction-free Bareiss keeps every intermediate a
  // minor-bounded integer instead of a churning rational.
  if (n >= 2) {
    bool integral = true;
    for (std::size_t r = 0; r < n && integral; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        if (!m.At(r, c).IsInteger()) {
          integral = false;
          break;
        }
      }
    }
    if (integral) return DeterminantBareiss(m);
  }
  Rational det(1);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t found = n;
    for (std::size_t r = col; r < n; ++r) {
      if (!m.At(r, col).IsZero()) {
        found = r;
        break;
      }
    }
    if (found == n) return Rational(0);
    if (found != col) {
      m.SwapRows(found, col);
      det = -det;
    }
    det *= m.At(col, col);
    Rational inv = m.At(col, col).Inverse();
    for (std::size_t r = col + 1; r < n; ++r) {
      Rational factor = m.At(r, col) * inv;
      if (factor.IsZero()) continue;
      for (std::size_t c = col; c < n; ++c) {
        m.At(r, c) -= factor * m.At(col, c);
      }
    }
  }
  return det;
}

std::optional<Mat> Inverse(const Mat& m) {
  if (m.rows() != m.cols()) return std::nullopt;
  if (m.rows() == 0) return Mat(0, 0);
  // The dedicated multi-modular inverse (per-prime inversion + CRT below
  // ModularOptions::dixon_min_dim, Dixon p-adic lifting above it, both
  // capped by a fresh-prime screen + exact A·A⁻¹ = I certificate) replaces
  // the earlier generic RREF-of-[A|I] lift, whose exact verification cost
  // as much as the elimination it saved. A nullopt means "declined OR
  // singular" — the exact reference settles which.
  if (UseModularInverse(m)) {
    if (std::optional<Mat> fast = TryModularInverse(m)) return fast;
  }
  return InverseExact(m);
}

std::optional<Mat> InverseExact(const Mat& m) {
  if (m.rows() != m.cols()) return std::nullopt;
  const std::size_t n = m.rows();
  if (n == 0) return Mat(0, 0);
  // Augment [m | I] and reduce.
  Mat aug(n, 2 * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) aug.At(r, c) = m.At(r, c);
    aug.At(r, n + r) = Rational(1);
  }
  Rref rref = ReduceToRrefExact(std::move(aug));
  if (rref.rank < n || rref.pivots[n - 1] >= n) return std::nullopt;
  Mat inverse(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      inverse.At(r, c) = rref.matrix.At(r, n + c);
    }
  }
  return inverse;
}

std::optional<Vec> SolveLinearSystem(const Mat& a, const Vec& b) {
  if (b.size() != a.rows()) {
    throw std::invalid_argument("SolveLinearSystem: size mismatch");
  }
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  Mat aug(rows, cols + 1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) aug.At(r, c) = a.At(r, c);
    aug.At(r, cols) = b[r];
  }
  Rref rref = ReduceToRref(std::move(aug));
  // Inconsistent iff some pivot lands in the augmented column.
  if (!rref.pivots.empty() && rref.pivots.back() == cols) return std::nullopt;
  Vec x(cols);
  for (std::size_t i = 0; i < rref.pivots.size(); ++i) {
    x[rref.pivots[i]] = rref.matrix.At(i, cols);
  }
  return x;
}

std::vector<Vec> NullspaceBasis(const Mat& a) {
  const std::size_t cols = a.cols();
  Rref rref = ReduceToRref(a);
  std::vector<bool> is_pivot(cols, false);
  for (std::size_t p : rref.pivots) is_pivot[p] = true;
  std::vector<Vec> basis;
  for (std::size_t free_col = 0; free_col < cols; ++free_col) {
    if (is_pivot[free_col]) continue;
    Vec v(cols);
    v[free_col] = Rational(1);
    for (std::size_t i = 0; i < rref.pivots.size(); ++i) {
      v[rref.pivots[i]] = -rref.matrix.At(i, free_col);
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

SpanMembership TestSpanMembership(const std::vector<Vec>& basis,
                                  const Vec& target) {
  SpanMembership result;
  if (target.IsZero()) {
    result.in_span = true;
    result.coefficients = Vec(basis.size());
    return result;
  }
  if (basis.empty()) return result;
  Mat columns = Mat::FromColumns(basis);
  std::optional<Vec> solution = SolveLinearSystem(columns, target);
  if (solution.has_value()) {
    result.in_span = true;
    result.coefficients = std::move(*solution);
  }
  return result;
}

std::optional<Vec> OrthogonalWitness(const std::vector<Vec>& basis,
                                     const Vec& target) {
  // The space of vectors orthogonal to every basis vector is the nullspace
  // of the matrix whose rows are the basis vectors. A witness exists iff
  // target ∉ span(basis), in which case some nullspace basis vector has a
  // nonzero dot product with target.
  std::vector<Vec> candidates;
  if (basis.empty()) {
    // Every vector is orthogonal to the empty set; pick a unit vector
    // aligned with a nonzero coordinate of target.
    for (std::size_t i = 0; i < target.size(); ++i) {
      if (!target[i].IsZero()) {
        Vec z(target.size());
        z[i] = Rational(1);
        return z;
      }
    }
    return std::nullopt;
  }
  candidates = NullspaceBasis(Mat::FromRows(basis));
  for (Vec& z : candidates) {
    if (!Vec::Dot(z, target).IsZero()) {
      // Scale to integers (the proof of Lemma 56 needs z ∈ Z^k so that
      // t^z(i) stays rational).
      Rational scale{z.CommonDenominator()};
      z *= scale;
      return z;
    }
  }
  return std::nullopt;
}

Mat Vandermonde(const std::vector<Rational>& nodes) {
  const std::size_t n = nodes.size();
  Mat m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    Rational power(1);
    for (std::size_t j = 0; j < n; ++j) {
      m.At(i, j) = power;
      power *= nodes[i];
    }
  }
  return m;
}

}  // namespace bagdet
