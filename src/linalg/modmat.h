// bagdet: word-size modular arithmetic and dense matrices over Z/p.
//
// The modular fast path (linalg/modular_solve.h) runs Gaussian elimination
// over Z/p for 62-bit primes p instead of over Q, where the rational
// pipeline's coefficients — built from astronomically large hom counts —
// blow up super-linearly per elimination step. Everything here is plain
// 64-bit word arithmetic: Zp is a Montgomery-reduction context for one
// prime, ModMat is a flat row-major residue matrix with cache-friendly
// row-sweep elimination. Exactness is restored one layer up by CRT +
// rational reconstruction + an exact verification step; this layer is
// purely about making the per-prime work as fast as the hardware allows.

#ifndef BAGDET_LINALG_MODMAT_H_
#define BAGDET_LINALG_MODMAT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace bagdet {

/// Montgomery multiplication context for one odd prime p < 2^62.
///
/// Values are carried in Montgomery form (x·2^64 mod p) between To()/From()
/// conversions; Add/Sub/Mul/Inv all operate on and return Montgomery-form
/// residues, so the elimination inner loop pays one fused multiply +
/// reduction (REDC) per entry and no hardware division.
class Zp {
 public:
  /// `p` must be an odd prime below 2^62 (not checked beyond oddness —
  /// callers draw from the curated prime table in modular_solve.cpp).
  explicit Zp(std::uint64_t p);

  std::uint64_t prime() const { return p_; }
  std::uint64_t zero() const { return 0; }
  std::uint64_t one() const { return one_; }

  /// Plain residue (< p) → Montgomery form.
  std::uint64_t To(std::uint64_t a) const { return Mul(a, r2_); }
  /// Montgomery form → plain residue in [0, p).
  std::uint64_t From(std::uint64_t a) const { return Reduce(a); }

  std::uint64_t Add(std::uint64_t a, std::uint64_t b) const {
    std::uint64_t s = a + b;  // < 2^63, no overflow.
    return s >= p_ ? s - p_ : s;
  }
  std::uint64_t Sub(std::uint64_t a, std::uint64_t b) const {
    return a >= b ? a - b : a + p_ - b;
  }
  std::uint64_t Neg(std::uint64_t a) const { return a == 0 ? 0 : p_ - a; }
  std::uint64_t Mul(std::uint64_t a, std::uint64_t b) const {
    return Reduce(static_cast<unsigned __int128>(a) * b);
  }
  /// a^e by binary exponentiation (a in Montgomery form).
  std::uint64_t Pow(std::uint64_t a, std::uint64_t e) const;
  /// Multiplicative inverse via Fermat (a must be nonzero mod p).
  std::uint64_t Inv(std::uint64_t a) const { return Pow(a, p_ - 2); }

 private:
  /// Montgomery REDC: t·2^-64 mod p for t < p·2^64.
  std::uint64_t Reduce(unsigned __int128 t) const {
    std::uint64_t m = static_cast<std::uint64_t>(t) * neg_p_inv_;
    unsigned __int128 u = t + static_cast<unsigned __int128>(m) * p_;
    std::uint64_t r = static_cast<std::uint64_t>(u >> 64);
    return r >= p_ ? r - p_ : r;
  }

  std::uint64_t p_;
  std::uint64_t neg_p_inv_;  // -p^{-1} mod 2^64.
  std::uint64_t r2_;         // 2^128 mod p (To() multiplier).
  std::uint64_t one_;        // 2^64 mod p (Montgomery 1).
};

/// Pivot structure of a mod-p reduced row echelon form.
struct ModRref {
  std::vector<std::size_t> pivots;  ///< Pivot column per pivot row.
  std::size_t rank = 0;
};

/// Dense matrix over Z/p, flat row-major, entries in Montgomery form.
class ModMat {
 public:
  ModMat(const Zp* zp, std::size_t rows, std::size_t cols)
      : zp_(zp), rows_(rows), cols_(cols), entries_(rows * cols) {}

  /// Reduces a rational matrix mod p (entry a/b ↦ a·b^{-1}). Returns
  /// std::nullopt when some denominator vanishes mod p — that prime is
  /// unusable for this matrix and the driver skips it.
  static std::optional<ModMat> FromRationalMat(const Zp* zp, const Mat& m);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::uint64_t& At(std::size_t r, std::size_t c) {
    return entries_[r * cols_ + c];
  }
  std::uint64_t At(std::size_t r, std::size_t c) const {
    return entries_[r * cols_ + c];
  }

  /// In-place Gauss–Jordan reduction to RREF over Z/p. Deterministic
  /// (first nonzero entry pivots — mod p there is no growth to curb), so
  /// two primes that agree on (rank, pivots) produce residues of the same
  /// rational RREF.
  ModRref RrefInPlace();

  /// Rank only: forward elimination without back-substitution or row
  /// normalization (the cheap probe used by rank lower bounds).
  std::size_t RankDestructive();

  /// Determinant of a square matrix mod p, in Montgomery form.
  std::uint64_t DeterminantDestructive();

  /// Inverse of a square matrix over Z/p — the per-prime stage of the
  /// multi-modular inverse and the seed matrix of Dixon p-adic lifting.
  /// Gauss–Jordan on an internal [A | I] augmentation (*this is left
  /// untouched). Returns std::nullopt when the matrix is singular mod p
  /// (the prime is unlucky, or the rational matrix really is singular).
  std::optional<ModMat> Inverted() const;

  /// Matrix–vector product over Z/p (entries, input and result all in
  /// Montgomery form); `v.size()` must equal cols(). The Dixon lifting
  /// loop applies the inverse seed to the residual every iteration.
  std::vector<std::uint64_t> MulVec(const std::vector<std::uint64_t>& v) const;

 private:
  std::uint64_t* RowPtr(std::size_t r) { return entries_.data() + r * cols_; }

  const Zp* zp_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint64_t> entries_;
};

}  // namespace bagdet

#endif  // BAGDET_LINALG_MODMAT_H_
