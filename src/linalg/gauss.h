// bagdet: exact Gaussian elimination and the linear-algebra facts the paper
// relies on (Fact 5: orthogonal witnesses; Lemma 46: Vandermonde
// nonsingularity; span tests behind the Main Lemma 31).
//
// Modular dispatch: ReduceToRref, Rank, IsNonsingular, and Inverse route
// through the certified multi-modular driver (linalg/modular_solve.h)
// whenever the matrix is big enough to benefit, falling back to plain
// exact elimination when the driver declines (unlucky primes, exhausted
// prime budget). Results are bit-for-bit identical either way — the
// driver verifies every lifted answer exactly before returning it, with a
// fresh-prime residual pre-check screening bad candidates in word-size
// arithmetic first. SolveLinearSystem, NullspaceBasis, TestSpanMembership,
// and OrthogonalWitness inherit the fast path through ReduceToRref;
// Determinant uses fraction-free Bareiss elimination for the dense-integer
// case; Inverse dispatches to TryModularInverse (per-prime inversion + CRT
// for small n, Dixon p-adic lifting for large n). ReduceToRrefExact and
// InverseExact are the always-exact reference implementations (also the
// differential-test and benchmarking baselines).

#ifndef BAGDET_LINALG_GAUSS_H_
#define BAGDET_LINALG_GAUSS_H_

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace bagdet {

/// Result of reducing a matrix to reduced row echelon form.
struct Rref {
  Mat matrix;                      ///< The RREF itself.
  std::vector<std::size_t> pivots; ///< Pivot column per pivot row.
  std::size_t rank = 0;
};

/// Reduced row echelon form (modular fast path + exact fallback; see the
/// file comment).
Rref ReduceToRref(Mat m);

/// Reduced row echelon form via exact fraction arithmetic only — the
/// reference path every modular result is pinned against.
Rref ReduceToRrefExact(Mat m);

/// Rank of a matrix.
std::size_t Rank(const Mat& m);

/// True iff the square matrix is nonsingular.
bool IsNonsingular(const Mat& m);

/// Determinant of a square matrix. Dispatches to fraction-free Bareiss
/// elimination (linalg/modular_solve.h) for integer matrices; plain exact
/// elimination over Q otherwise.
Rational Determinant(Mat m);

/// Inverse of a square nonsingular matrix; std::nullopt when singular
/// (modular fast path + exact fallback; see the file comment).
std::optional<Mat> Inverse(const Mat& m);

/// Inverse via exact fraction arithmetic only (Gauss–Jordan on [A | I]) —
/// the reference path every modular inverse is pinned against.
std::optional<Mat> InverseExact(const Mat& m);

/// One solution x of A x = b, or std::nullopt when inconsistent. When the
/// system is underdetermined the free variables are set to zero.
std::optional<Vec> SolveLinearSystem(const Mat& a, const Vec& b);

/// Basis of the (right) nullspace { x : A x = 0 }.
std::vector<Vec> NullspaceBasis(const Mat& a);

/// Result of a span-membership test.
struct SpanMembership {
  bool in_span = false;
  /// When in_span: coefficients c with target = sum_i c[i] * basis[i].
  Vec coefficients;
};

/// Tests whether `target` lies in span_Q(basis) and returns witness
/// coefficients when it does. The basis may be linearly dependent.
SpanMembership TestSpanMembership(const std::vector<Vec>& basis,
                                  const Vec& target);

/// Fact 5 made effective: given vectors u_1..u_n and u with
/// u ∉ span{u_i}, returns an *integer* vector z orthogonal to every u_i
/// but not to u. Returns std::nullopt when u ∈ span{u_i} (no such z).
std::optional<Vec> OrthogonalWitness(const std::vector<Vec>& basis,
                                     const Vec& target);

/// Builds the Vandermonde matrix A(i,j) = nodes[i]^j (j = 0..n-1). By
/// Lemma 46 it is nonsingular whenever the nodes are pairwise distinct.
Mat Vandermonde(const std::vector<Rational>& nodes);

}  // namespace bagdet

#endif  // BAGDET_LINALG_GAUSS_H_
