#include "linalg/modular_solve.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "linalg/modmat.h"
#include "util/bigint.h"
#include "util/exec_context.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace bagdet {

namespace {

/// Hard capacity of the built-in prime table (ModularPrimes). 64× the
/// driver's hardest prime-budget clamp; PrimeAt treats the boundary as
/// "sequence exhausted" so callers decline cleanly (exact fallback +
/// ModularStats::budget_exhausted) instead of throwing mid-drive.
constexpr std::size_t kPrimeTableCapacity = 65536;

std::uint64_t MulModU64(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t PowModU64(std::uint64_t a, std::uint64_t e, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  a %= m;
  while (e != 0) {
    if (e & 1) result = MulModU64(result, a, m);
    a = MulModU64(a, a, m);
    e >>= 1;
  }
  return result;
}

/// Deterministic Miller–Rabin for 64-bit inputs (the 12-base witness set
/// is exact for every n < 3.3·10^24).
bool IsPrimeU64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = PowModU64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int i = 0; i + 1 < r; ++i) {
      x = MulModU64(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

std::uint64_t PrimeAt(const ModularOptions& options, std::size_t i) {
  if (options.primes != nullptr) {
    return i < options.primes->size() ? (*options.primes)[i] : 0;
  }
  // Past the table's capacity the built-in sequence reports exhaustion (0)
  // like a drained injected list — an absurd caller-supplied max_primes
  // must not turn into a length_error from deep inside the fold loop.
  if (i >= kPrimeTableCapacity) return 0;
  return ModularPrimes(i + 1)[i];
}

/// Folds `d` into a running denominator lcm — the clearing idiom shared
/// by the Bareiss determinant, the inverse certificate's row/column
/// scales, and Dixon's integer clearing. One copy so a future tweak
/// cannot drift between them.
void FoldLcm(BigInt* lcm, const BigInt& d) {
  if (d.IsOne()) return;
  // lcm <- lcm / gcd(lcm, d) * d, divided in place (exact).
  BigInt::DivMod(*lcm, BigInt::Gcd(*lcm, d), lcm, nullptr);
  *lcm *= d;
}

/// ceil(log2(cols + 1)), floored at 1 — the per-row sqrt factor of the
/// Hadamard bounds below.
std::size_t LogColsBound(std::size_t cols) {
  std::size_t log_cols = 1;
  while ((1ull << log_cols) < cols + 1) ++log_cols;
  return log_cols;
}

/// Hadamard contribution of one matrix row after clearing its
/// denominators: largest numerator bit length, plus the cleared
/// denominators (the row lcm divides their product), plus the sqrt(cols)
/// factor. The single source of truth for every prime/digit budget in
/// this file — AutoPrimeBudget, InverseEntryBitBound, and (via the
/// cleared-integer variant computed inline) DixonInverse all build on
/// this shape; keep them consistent.
std::size_t RowEntryBitBound(const Mat& m, std::size_t row,
                             std::size_t log_cols) {
  std::size_t num_bits = 1;
  std::size_t den_bits = 0;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const Rational& q = m.At(row, c);
    num_bits = std::max(num_bits, q.numerator().BitLength());
    if (!q.denominator().IsOne()) den_bits += q.denominator().BitLength();
  }
  return num_bits + den_bits + log_cols;
}

/// Prime budget covering the worst-case (Hadamard-bounded) RREF entry
/// size: every RREF entry is a ratio of r×r minors of the
/// denominator-cleared matrix, so a modulus of twice the minor bit bound
/// guarantees the rational lift exists. Hitting the budget without a
/// verified lift then indicates a pathological input rather than normal
/// operation — and the exact fallback guards correctness regardless, which
/// is why the budget is also clamped.
std::size_t AutoPrimeBudget(const Mat& m) {
  const std::size_t r = std::min(m.rows(), m.cols());
  const std::size_t log_cols = LogColsBound(m.cols());
  std::vector<std::size_t> row_bits(m.rows(), 0);
  for (std::size_t row = 0; row < m.rows(); ++row) {
    row_bits[row] = RowEntryBitBound(m, row, log_cols);
  }
  // A minor uses r rows; bound by the r largest row contributions.
  std::sort(row_bits.begin(), row_bits.end(), std::greater<std::size_t>());
  std::size_t minor_bits = 64;
  for (std::size_t i = 0; i < r; ++i) minor_bits += row_bits[i];
  const std::size_t budget = (2 * minor_bits) / 61 + 4;
  return std::min<std::size_t>(std::max<std::size_t>(budget, 8), 1024);
}

/// Wang's rational reconstruction: the unique n/d with |n|, d <= bound,
/// gcd(n, d) = 1 and n = residue·d (mod modulus), when one exists.
std::optional<Rational> ReconstructRational(const BigInt& residue,
                                            const BigInt& modulus,
                                            const BigInt& bound) {
  BigInt a0 = modulus;
  BigInt a1 = residue;
  BigInt t0(0);
  BigInt t1(1);
  BigInt q;  // Hoisted: the loop recycles its limb capacity per step.
  while (a1 > bound) {
    // (a0, a1) <- (a1, a0 mod a1); the remainder lands in a0's buffer.
    BigInt::DivMod(a0, a1, &q, &a0);
    std::swap(a0, a1);
    // (t0, t1) <- (t1, t0 - q*t1), fused so the q*t1 product never
    // materializes as a temporary.
    t0.MulSub(q, t1);
    std::swap(t0, t1);
  }
  BigInt num = std::move(a1);
  BigInt den = std::move(t1);
  if (den.IsZero()) return std::nullopt;
  if (den.IsNegative()) {
    num = -num;
    den = -den;
  }
  if (den > bound) return std::nullopt;
  if (!BigInt::Gcd(num, den).IsOne()) return std::nullopt;
  return Rational(std::move(num), std::move(den));
}

/// Up to `count` screening primes for the residual pre-check: drawn from
/// options.verify_primes verbatim when injected (the adversarial test
/// seam — deliberately no disjointness filter), otherwise from the
/// built-in sequence skipping every prime in `used` (each prime the
/// driver has drawn for the reconstruction side). Disjointness is what
/// gives the screen power: a candidate assembled by CRT over the used
/// primes satisfies the residual identities mod each of them by
/// construction, so screening against them can never reject.
std::vector<std::uint64_t> FreshVerifyPrimes(
    const ModularOptions& options, const std::vector<std::uint64_t>& used,
    std::size_t count) {
  std::vector<std::uint64_t> fresh;
  if (count == 0) return fresh;
  if (options.verify_primes != nullptr) {
    for (std::uint64_t p : *options.verify_primes) {
      fresh.push_back(p);
      if (fresh.size() == count) break;
    }
    return fresh;
  }
  for (std::size_t i = 0; fresh.size() < count; ++i) {
    const std::uint64_t p = ModularPrimes(i + 1)[i];
    if (std::find(used.begin(), used.end(), p) == used.end()) {
      fresh.push_back(p);
    }
  }
  return fresh;
}

/// Exact certificate that `cand` is THE reduced row echelon form of `a`:
/// with pivots P = cand.pivots, every row of `a` must equal the
/// combination of candidate pivot rows weighted by its own P-coordinates
/// (rowspace(a) ⊆ rowspace(cand), hence rank_Q(a) <= rank(cand); the
/// accumulated primes already certify rank_Q(a) >= rank(cand) via a
/// nonvanishing minor, and RREF is unique per row space). Pivot columns of
/// the combination match automatically, so only free columns are checked.
///
/// Rows are independent read-only checks over exact rationals — on large
/// matrices this certificate, not the word-size eliminations, dominates
/// the driver's cost — so they fan out across the thread pool. The result
/// is a conjunction over rows: bit-identical at any parallelism.
bool VerifyRrefCandidate(const Mat& a, const Rref& cand,
                         const std::vector<std::size_t>& free_cols,
                         std::size_t parallelism) {
  const std::size_t rank = cand.rank;
  std::atomic<bool> ok{true};
  auto check_row = [&](std::size_t r) {
    ExecCheckPoint("linalg.modular");
    if (!ok.load(std::memory_order_relaxed)) return;  // Another row failed.
    std::vector<Rational> coeff(rank);
    for (std::size_t i = 0; i < rank; ++i) coeff[i] = a.At(r, cand.pivots[i]);
    for (std::size_t c : free_cols) {
      Rational sum;
      for (std::size_t i = 0; i < rank; ++i) {
        if (coeff[i].IsZero()) continue;
        const Rational& entry = cand.matrix.At(i, c);
        if (entry.IsZero()) continue;
        sum += coeff[i] * entry;
      }
      if (sum != a.At(r, c)) {
        ok.store(false, std::memory_order_relaxed);
        return;
      }
    }
  };
  if (parallelism <= 1 || a.rows() < 2) {
    for (std::size_t r = 0; r < a.rows(); ++r) {
      check_row(r);
      if (!ok.load(std::memory_order_relaxed)) return false;
    }
    return true;
  }
  GlobalThreadPool().ParallelFor(a.rows(), check_row, parallelism);
  return ok.load(std::memory_order_relaxed);
}

/// Bit bound on the numerators/denominators of A^{-1}'s entries: every
/// entry is an (n-1)×(n-1) minor over the determinant of the
/// row-denominator-cleared matrix, and both are Hadamard-bounded by the
/// product of the per-row contributions (RowEntryBitBound).
std::size_t InverseEntryBitBound(const Mat& m) {
  const std::size_t log_cols = LogColsBound(m.cols());
  std::size_t bits = 1;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    bits += RowEntryBitBound(m, r, log_cols);
  }
  return bits;
}

/// Certificate that `cand` is exactly A^{-1}: the fresh-prime residual
/// screen first — a true Freivalds check per screening prime, A·(cand·r)
/// compared to r for the fixed moment vector r = (1, 3, 3², …), two
/// matrix–vector products in word-size arithmetic instead of the full
/// O(n³) matrix product — and a mismatch certifies the candidate wrong
/// (reduction mod a usable prime is a ring homomorphism, and a true
/// inverse satisfies the identity for every vector). Then the exact
/// identity, per column with denominators cleared:
///   Σ_k Ar(r,k) · (d_c·cand(k,c))  ==  δ_rc · s_r · d_c
/// where Ar is A with row r scaled by s_r (the row's denominator lcm) and
/// d_c clears candidate column c. Everything after the clearing is plain
/// BigInt multiply/accumulate — no rational normalization churn — and the
/// columns are independent, so they fan out across the thread pool; the
/// result is a conjunction, bit-identical at any parallelism.
bool VerifyInverseCandidate(const Mat& a, const Mat& cand,
                            const std::vector<std::uint64_t>& screen,
                            std::size_t parallelism, ModularStats* stats) {
  const std::size_t n = a.rows();
  for (std::uint64_t p : screen) {
    Zp zp(p);
    std::optional<ModMat> am = ModMat::FromRationalMat(&zp, a);
    if (!am.has_value()) continue;  // p divides a denominator: unusable.
    std::optional<ModMat> cm = ModMat::FromRationalMat(&zp, cand);
    if (!cm.has_value()) continue;
    // The moment vector makes a missed wrong candidate as unlikely as a
    // random one (the residual matrix annihilating (1, t, t², …) at a
    // fixed t means every residual row's polynomial vanishes at t); the
    // exact pass below is the actual guarantee either way.
    std::vector<std::uint64_t> moments(n);
    const std::uint64_t three = zp.To(3 % p);
    std::uint64_t power = zp.one();
    for (std::size_t i = 0; i < n; ++i) {
      moments[i] = power;
      power = zp.Mul(power, three);
    }
    const std::vector<std::uint64_t> through = am->MulVec(cm->MulVec(moments));
    if (through != moments) {
      if (stats != nullptr) ++stats->precheck_rejects;
      return false;
    }
  }
  if (stats != nullptr) ++stats->exact_verifies;

  std::vector<BigInt> cleared(n * n);
  std::vector<BigInt> row_scale(n);
  for (std::size_t r = 0; r < n; ++r) {
    BigInt lcm(1);
    for (std::size_t c = 0; c < n; ++c) {
      FoldLcm(&lcm, a.At(r, c).denominator());
    }
    for (std::size_t c = 0; c < n; ++c) {
      const Rational& q = a.At(r, c);
      cleared[r * n + c] = q.numerator() * (lcm / q.denominator());
    }
    row_scale[r] = std::move(lcm);
  }
  std::atomic<bool> ok{true};
  auto check_col = [&](std::size_t c) {
    ExecCheckPoint("linalg.modular");
    if (!ok.load(std::memory_order_relaxed)) return;
    BigInt col_den(1);
    for (std::size_t k = 0; k < n; ++k) {
      FoldLcm(&col_den, cand.At(k, c).denominator());
    }
    std::vector<BigInt> v(n);
    for (std::size_t k = 0; k < n; ++k) {
      const Rational& q = cand.At(k, c);
      v[k] = q.numerator() * (col_den / q.denominator());
    }
    for (std::size_t r = 0; r < n; ++r) {
      BigInt acc(0);
      for (std::size_t k = 0; k < n; ++k) {
        if (v[k].IsZero() || cleared[r * n + k].IsZero()) continue;
        acc.MulAdd(cleared[r * n + k], v[k]);
      }
      const BigInt expect = r == c ? row_scale[r] * col_den : BigInt(0);
      if (acc != expect) {
        ok.store(false, std::memory_order_relaxed);
        return;
      }
    }
  };
  if (parallelism <= 1 || n < 2) {
    for (std::size_t c = 0; c < n; ++c) {
      check_col(c);
      if (!ok.load(std::memory_order_relaxed)) return false;
    }
    return true;
  }
  GlobalThreadPool().ParallelFor(n, check_col, parallelism);
  return ok.load(std::memory_order_relaxed);
}

/// Multi-modular inverse, CRT strategy: invert mod one prime at a time
/// (batched across the pool like TryModularRref's eliminations, folded
/// strictly in prime order), accumulate the n² residues by CRT, and lift
/// by per-column rational reconstruction on a geometric attempt schedule.
/// A prime where the matrix is singular is skipped — but when the first
/// few usable primes ALL report singular the matrix is almost surely
/// singular over Q (a zero determinant vanishes mod every prime) and the
/// driver declines so the exact fallback can settle it cheaply.
///
/// NOTE: the batch-draw/fold/attempt-schedule skeleton deliberately
/// mirrors TryModularRref (the payloads differ: no consensus signature
/// or adopt/reset here, singular probes instead). A fix to either loop's
/// exhaustion handling or geometric schedule almost certainly applies to
/// the other — keep them in sync.
std::optional<Mat> CrtInverse(const Mat& m, const ModularOptions& options,
                              std::size_t parallelism) {
  const std::size_t n = m.rows();
  const std::size_t entry_bits = InverseEntryBitBound(m);
  std::size_t budget =
      options.max_primes != 0
          ? options.max_primes
          : std::min<std::size_t>(
                std::max<std::size_t>((2 * entry_bits) / 61 + 4, 8), 1024);
  if (options.primes != nullptr) {
    budget = std::min(budget, options.primes->size());
  }

  BigInt modulus(1);
  std::vector<BigInt> residues(n * n, BigInt(0));
  // Accumulated residues approach n² entries of |modulus| bits each —
  // the transient footprint a governed request is accounted for.
  ScopedCharge residue_mem("linalg.modular");
  std::size_t used = 0;
  std::size_t next_attempt = 1;
  std::size_t last_attempt_used = 0;
  std::size_t singular_probes = 0;
  constexpr std::size_t kMaxSingularProbes = 3;
  std::vector<std::uint64_t> drawn;

  auto attempt_lift = [&]() -> std::optional<Mat> {
    last_attempt_used = used;
    if (options.stats != nullptr) ++options.stats->lift_attempts;
    const BigInt bound =
        BigInt::FloorKthRoot((modulus - BigInt(1)) / BigInt(2), 2);
    Mat cand(n, n);
    std::atomic<bool> all_ok{true};
    auto lift_col = [&](std::size_t c) {
      ExecCheckPoint("linalg.modular");
      if (!all_ok.load(std::memory_order_relaxed)) return;
      for (std::size_t r = 0; r < n; ++r) {
        std::optional<Rational> q =
            ReconstructRational(residues[r * n + c], modulus, bound);
        if (!q.has_value()) {
          all_ok.store(false, std::memory_order_relaxed);
          return;
        }
        cand.At(r, c) = std::move(*q);
      }
    };
    if (parallelism <= 1 || n < 2) {
      for (std::size_t c = 0; c < n; ++c) {
        lift_col(c);
        if (!all_ok.load(std::memory_order_relaxed)) return std::nullopt;
      }
    } else {
      GlobalThreadPool().ParallelFor(n, lift_col, parallelism);
      if (!all_ok.load(std::memory_order_relaxed)) return std::nullopt;
    }
    const std::vector<std::uint64_t> screen =
        FreshVerifyPrimes(options, drawn, options.verify_precheck_primes);
    if (!VerifyInverseCandidate(m, cand, screen, parallelism, options.stats)) {
      return std::nullopt;
    }
    if (options.stats != nullptr) options.stats->primes_used = used;
    return cand;
  };

  struct PrimeInv {
    std::uint64_t p = 0;
    std::optional<Zp> zp;  // Owned here; inv's ModMat points into it.
    bool reduced = false;  // FromRationalMat succeeded (p divides no den).
    std::optional<ModMat> inv;
  };
  bool primes_exhausted = false;
  for (std::size_t pi = 0; pi < budget && !primes_exhausted;) {
    const std::size_t batch_cap =
        std::min(std::max<std::size_t>(parallelism, 1), budget - pi);
    std::vector<PrimeInv> batch(batch_cap);
    std::size_t batch_n = 0;
    for (; batch_n < batch_cap; ++batch_n) {
      const std::uint64_t p = PrimeAt(options, pi + batch_n);
      if (p == 0) {  // Injected prime list exhausted.
        primes_exhausted = true;
        break;
      }
      batch[batch_n].p = p;
      drawn.push_back(p);
    }
    if (batch_n == 0) break;
    auto invert = [&batch, &m](std::size_t i) {
      ExecCheckPoint("linalg.modular");
      PrimeInv& e = batch[i];
      e.zp.emplace(e.p);
      std::optional<ModMat> mm = ModMat::FromRationalMat(&*e.zp, m);
      if (!mm.has_value()) return;
      e.reduced = true;
      e.inv = mm->Inverted();
    };
    if (batch_n == 1 || parallelism <= 1) {
      for (std::size_t i = 0; i < batch_n; ++i) invert(i);
    } else {
      GlobalThreadPool().ParallelFor(batch_n, invert, parallelism);
    }

    for (std::size_t i = 0; i < batch_n; ++i) {
      // Per-prime fold boundary: residues grow by ~62 bits each per fold,
      // so a forced clock read here is noise next to the BigInt work and
      // keeps deadline overshoot tight on huge moduli.
      if (ExecContext* ctx = CurrentExecContext()) {
        ctx->CheckNow("linalg.modular");
      }
      BAGDET_FAILPOINT("modular/crt_fold");
      const std::size_t prime_index = pi + i;
      PrimeInv& e = batch[i];
      if (!e.reduced) continue;  // p divides a denominator.
      if (!e.inv.has_value()) {  // Singular mod p.
        if (used == 0 && ++singular_probes >= kMaxSingularProbes) {
          return std::nullopt;
        }
        continue;
      }
      const std::uint64_t p = e.p;
      const Zp& zp = *e.zp;
      const ModMat& inv = *e.inv;
      if (used == 0) {
        modulus = BigInt(static_cast<std::int64_t>(p));
        for (std::size_t r = 0; r < n; ++r) {
          for (std::size_t c = 0; c < n; ++c) {
            residues[r * n + c] =
                BigInt(static_cast<std::int64_t>(zp.From(inv.At(r, c))));
          }
        }
        used = 1;
        next_attempt = 1;
      } else {
        const std::uint64_t m_mod_p = modulus.Mod(p);
        const std::uint64_t inv_m = zp.From(zp.Inv(zp.To(m_mod_p)));
        for (std::size_t r = 0; r < n; ++r) {
          for (std::size_t c = 0; c < n; ++c) {
            BigInt& x = residues[r * n + c];
            const std::uint64_t v = zp.From(inv.At(r, c));
            const std::uint64_t x_mod_p = x.Mod(p);
            const std::uint64_t delta =
                v >= x_mod_p ? v - x_mod_p : v + p - x_mod_p;
            const std::uint64_t t = MulModU64(delta, inv_m, p);
            // Fused fold: no modulus·t temporary, and x's limb capacity is
            // reused across primes.
            x.MulAdd(modulus, BigInt(static_cast<std::int64_t>(t)));
          }
        }
        modulus *= BigInt(static_cast<std::int64_t>(p));
        ++used;
      }
      residue_mem.Update(static_cast<std::uint64_t>(residues.size()) *
                         (sizeof(BigInt) + modulus.BitLength() / 8));

      if (used < next_attempt && prime_index + 1 < budget) continue;
      if (std::optional<Mat> cand = attempt_lift()) return cand;
      next_attempt = used + 1 + used / 2;
    }
    pi += batch_n;
  }
  if (used > last_attempt_used) {
    if (std::optional<Mat> cand = attempt_lift()) return cand;
  }
  if (options.stats != nullptr) ++options.stats->budget_exhausted;
  return std::nullopt;
}

/// Multi-modular inverse, Dixon strategy: ONE inversion mod a single
/// seed prime p, then per-column p-adic lifting — each digit costs a
/// word-size matrix–vector product by the seed inverse plus a
/// minor-bounded BigInt residual update r ← (r − A·y)/p — followed by
/// per-column rational reconstruction from the p^k image. Compared to
/// CRT this trades n per-prime O(n³) eliminations for O(n²)-per-digit
/// lifting, which wins once n is large enough that elimination dominates
/// reduction (ModularOptions::dixon_min_dim; see BENCH_linalg.json for
/// the measured crossover).
std::optional<Mat> DixonInverse(const Mat& m, const ModularOptions& options,
                                std::size_t parallelism) {
  const std::size_t n = m.rows();
  // Clear the whole matrix to integers: m = ai / scale entrywise, so
  // m^{-1} = scale·ai^{-1} and the lifting runs over Z.
  BigInt scale(1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      FoldLcm(&scale, m.At(r, c).denominator());
    }
  }
  // Hadamard bound over the *actual* cleared integers (the RowEntryBitBound
  // shape, but measured on ai instead of bounded through per-row lcms —
  // the global clearing scale is already folded into each entry here).
  std::vector<BigInt> ai(n * n);
  std::size_t entry_bits = 1;
  {
    const std::size_t log_cols = LogColsBound(n);
    for (std::size_t r = 0; r < n; ++r) {
      std::size_t row_bits = 1;
      for (std::size_t c = 0; c < n; ++c) {
        const Rational& q = m.At(r, c);
        BigInt& e = ai[r * n + c];
        e = q.numerator() * (scale / q.denominator());
        row_bits = std::max(row_bits, e.BitLength());
      }
      entry_bits += row_bits + log_cols;
    }
  }

  // Seed: the first prime (injected list or built-in sequence) where the
  // cleared matrix is invertible mod p. A handful of unlucky primes
  // (dividing the determinant) are tolerated before declining.
  constexpr std::size_t kSeedAttempts = 4;
  std::optional<Zp> zp;
  std::optional<ModMat> seed_inv;
  std::uint64_t p = 0;
  std::vector<std::uint64_t> drawn;
  for (std::size_t pi = 0; pi < kSeedAttempts && !seed_inv.has_value(); ++pi) {
    const std::uint64_t cand_p = PrimeAt(options, pi);
    if (cand_p == 0) break;  // Injected prime list exhausted.
    drawn.push_back(cand_p);
    zp.emplace(cand_p);
    ModMat mm(&*zp, n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        mm.At(r, c) = zp->To(ai[r * n + c].Mod(cand_p));
      }
    }
    seed_inv = mm.Inverted();
    if (seed_inv.has_value()) p = cand_p;
  }
  if (!seed_inv.has_value()) return std::nullopt;

  // Digits so that p^iters > 2·B² for the Hadamard entry bound B — then
  // the rational reconstruction of every true entry is guaranteed.
  const std::size_t iters = (2 * entry_bits + 2) / 61 + 2;
  const BigInt big_p(static_cast<std::int64_t>(p));
  const BigInt modulus = BigInt::Pow(big_p, iters);
  const BigInt bound =
      BigInt::FloorKthRoot((modulus - BigInt(1)) / BigInt(2), 2);
  if (options.stats != nullptr) {
    ++options.stats->lift_attempts;
    options.stats->used_dixon = true;
    options.stats->primes_used = 1;
  }

  // Shared p^(2^ℓ) ladder for the digit combine below (read-only across
  // the column fan-out).
  std::vector<BigInt> p_ladder;
  {
    BigInt pw = big_p;
    for (std::size_t span = 1; span < iters; span *= 2) {
      p_ladder.push_back(pw);
      pw *= pw;
    }
  }

  Mat cand(n, n);
  std::atomic<bool> all_ok{true};
  auto lift_col = [&](std::size_t j) {
    if (!all_ok.load(std::memory_order_relaxed)) return;
    const Zp& z = *zp;
    std::vector<BigInt> residual(n);
    residual[j] = BigInt(1);
    // digit_rows[i] collects entry i's p-adic digits in order; they are
    // assembled into x_i afterwards by a balanced combine (adjacent
    // blocks merged with the precomputed p^(2^ℓ) ladder), which costs
    // full-limb multiplications instead of a quadratic word-at-a-time
    // accumulation against an ever-growing p^t.
    std::vector<std::vector<std::uint64_t>> digit_rows(n);
    std::vector<std::uint64_t> digits(n);
    for (std::size_t it = 0; it < iters; ++it) {
      ExecCheckPoint("linalg.modular");
      for (std::size_t i = 0; i < n; ++i) {
        digits[i] = z.To(residual[i].Mod(p));
      }
      std::vector<std::uint64_t> y = seed_inv->MulVec(digits);
      for (std::size_t i = 0; i < n; ++i) {
        y[i] = z.From(y[i]);
        digit_rows[i].push_back(y[i]);
      }
      // A zero digit vector does NOT end the expansion (the residual may
      // be divisible by p yet nonzero); only a zero residual does.
      bool residual_zero = true;
      for (std::size_t i = 0; i < n; ++i) {
        BigInt acc = std::move(residual[i]);
        for (std::size_t k = 0; k < n; ++k) {
          if (y[k] == 0 || ai[i * n + k].IsZero()) continue;
          acc.MulSub(ai[i * n + k], BigInt(static_cast<std::int64_t>(y[k])));
        }
        acc.DivModU64(p);  // Exact: A·y ≡ residual (mod p) by construction.
        if (!acc.IsZero()) residual_zero = false;
        residual[i] = std::move(acc);
      }
      if (residual_zero) break;  // Expansion is finite (x is exact).
    }
    for (std::size_t i = 0; i < n; ++i) {
      // Balanced combine: level ℓ merges blocks of 2^ℓ digits, so every
      // multiplication is between operands of comparable size.
      std::vector<BigInt> blocks;
      blocks.reserve(digit_rows[i].size());
      for (std::uint64_t d : digit_rows[i]) {
        blocks.emplace_back(static_cast<std::int64_t>(d));
      }
      if (blocks.empty()) blocks.emplace_back(0);
      for (std::size_t level = 0; blocks.size() > 1; ++level) {
        std::vector<BigInt> merged;
        merged.reserve((blocks.size() + 1) / 2);
        for (std::size_t b = 0; b < blocks.size(); b += 2) {
          if (b + 1 < blocks.size()) {
            blocks[b].MulAdd(p_ladder[level], blocks[b + 1]);
          }
          merged.push_back(std::move(blocks[b]));
        }
        blocks = std::move(merged);
      }
      std::optional<Rational> q =
          ReconstructRational(blocks[0], modulus, bound);
      if (!q.has_value()) {
        all_ok.store(false, std::memory_order_relaxed);
        return;
      }
      cand.At(i, j) = std::move(*q) * Rational(scale);
    }
  };
  auto note_exhausted = [&options]() {
    if (options.stats != nullptr) ++options.stats->budget_exhausted;
  };
  if (parallelism <= 1 || n < 2) {
    for (std::size_t j = 0; j < n; ++j) {
      lift_col(j);
      if (!all_ok.load(std::memory_order_relaxed)) {
        note_exhausted();
        return std::nullopt;
      }
    }
  } else {
    GlobalThreadPool().ParallelFor(n, lift_col, parallelism);
    if (!all_ok.load(std::memory_order_relaxed)) {
      note_exhausted();
      return std::nullopt;
    }
  }
  const std::vector<std::uint64_t> screen =
      FreshVerifyPrimes(options, drawn, options.verify_precheck_primes);
  if (!VerifyInverseCandidate(m, cand, screen, parallelism, options.stats)) {
    note_exhausted();
    return std::nullopt;
  }
  return cand;
}

}  // namespace

const std::vector<std::uint64_t>& ModularPrimes(std::size_t count) {
  // Seeded with the 40 largest primes below 2^62 and extended downward on
  // demand. Extension is mutex-guarded, and the backing vector's capacity
  // is reserved once up front so growth never reallocates: references
  // returned earlier stay valid while another thread extends the table —
  // required now that concurrent TryModularRref calls (and its worker
  // batches) share this sequence. Exceeding the capacity throws rather
  // than invalidating published references — the drivers never get here
  // (PrimeAt reports exhaustion at the boundary), so the throw only guards
  // direct misuse of this function.
  static constexpr std::size_t kCapacity = kPrimeTableCapacity;
  static std::mutex mu;
  static std::vector<std::uint64_t> primes = {
      4611686018427387847ull, 4611686018427387817ull, 4611686018427387787ull,
      4611686018427387761ull, 4611686018427387751ull, 4611686018427387737ull,
      4611686018427387733ull, 4611686018427387709ull, 4611686018427387701ull,
      4611686018427387631ull, 4611686018427387617ull, 4611686018427387587ull,
      4611686018427387461ull, 4611686018427387421ull, 4611686018427387409ull,
      4611686018427387329ull, 4611686018427387323ull, 4611686018427387301ull,
      4611686018427387271ull, 4611686018427387241ull, 4611686018427387139ull,
      4611686018427387131ull, 4611686018427387127ull, 4611686018427387113ull,
      4611686018427387091ull, 4611686018427387073ull, 4611686018427386981ull,
      4611686018427386923ull, 4611686018427386911ull, 4611686018427386903ull,
      4611686018427386897ull, 4611686018427386887ull, 4611686018427386707ull,
      4611686018427386663ull, 4611686018427386611ull, 4611686018427386551ull,
      4611686018427386471ull, 4611686018427386389ull, 4611686018427386351ull,
      4611686018427386329ull};
  std::lock_guard<std::mutex> lock(mu);
  if (primes.capacity() < kCapacity) primes.reserve(kCapacity);
  if (count > kCapacity) {
    throw std::length_error("ModularPrimes: prime table capacity exceeded");
  }
  std::uint64_t candidate = primes.back() - 2;
  while (primes.size() < count) {
    while (!IsPrimeU64(candidate)) candidate -= 2;
    primes.push_back(candidate);
    candidate -= 2;
  }
  return primes;
}

std::optional<Rref> TryModularRref(const Mat& m, const ModularOptions& options) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  if (rows == 0 || cols == 0) {
    Rref trivial;
    trivial.matrix = m;
    return trivial;
  }
  std::size_t budget =
      options.max_primes != 0 ? options.max_primes : AutoPrimeBudget(m);
  if (options.primes != nullptr) {
    budget = std::min(budget, options.primes->size());
  }

  // Consensus across primes: (rank, pivots) signature plus CRT-combined
  // residues of the nontrivial RREF block (pivot rows × free columns).
  // Unlucky primes can only lose rank or push pivots later, so "max rank,
  // then lexicographically smallest pivots" keeps the true signature as
  // soon as one good prime appears; the exact verification below is the
  // final arbiter either way.
  bool have_consensus = false;
  std::vector<std::size_t> pivots;
  std::size_t rank = 0;
  std::vector<std::size_t> free_cols;
  BigInt modulus(1);
  std::vector<BigInt> residues;
  // rank × free BigInt residues of |modulus| bits each — the transient
  // footprint a governed request is accounted for.
  ScopedCharge residue_mem("linalg.modular");
  std::size_t used = 0;
  std::size_t next_attempt = 1;
  std::size_t last_attempt_used = 0;
  std::vector<std::uint64_t> drawn;  // Every prime examined, for freshness.

  // Parallelism for the fan-out stages (per-prime eliminations, the
  // lift's per-entry reconstructions, and the verification rows). An
  // explicit num_threads is always honored (tests rely on forcing the
  // parallel path on small inputs); in auto mode tiny problems stay
  // serial and never touch — or lazily construct — the global pool.
  std::size_t parallelism = 1;
  if (options.num_threads != 0) {
    parallelism = options.num_threads;
  } else if (rows * cols >= 64) {
    parallelism = GlobalThreadPool().num_workers() + 1;
  }

  // Lift: rational reconstruction of every nontrivial entry, then the
  // fresh-prime residual screen, then the exact residual certificate. A
  // failed lift just means "not enough primes yet"; a screen rejection
  // means the reconstruction converged on a wrong candidate, which costs
  // only word-size arithmetic to discover. Reconstructions are
  // independent per entry and the certificate is independent per row, so
  // both stages fan out; each is a pure function of the accumulated
  // residues, so the outcome is bit-identical at any thread count.
  auto attempt_lift = [&]() -> std::optional<Rref> {
    last_attempt_used = used;
    if (options.stats != nullptr) ++options.stats->lift_attempts;
    const BigInt bound =
        BigInt::FloorKthRoot((modulus - BigInt(1)) / BigInt(2), 2);
    std::vector<Rational> values(residues.size());
    if (parallelism <= 1 || residues.size() < 8) {
      for (std::size_t i = 0; i < residues.size(); ++i) {
        ExecCheckPoint("linalg.modular");
        std::optional<Rational> q =
            ReconstructRational(residues[i], modulus, bound);
        if (!q.has_value()) return std::nullopt;
        values[i] = std::move(*q);
      }
    } else {
      std::atomic<bool> all_ok{true};
      GlobalThreadPool().ParallelFor(
          residues.size(),
          [&](std::size_t i) {
            ExecCheckPoint("linalg.modular");
            if (!all_ok.load(std::memory_order_relaxed)) return;
            std::optional<Rational> q =
                ReconstructRational(residues[i], modulus, bound);
            if (!q.has_value()) {
              all_ok.store(false, std::memory_order_relaxed);
              return;
            }
            values[i] = std::move(*q);
          },
          parallelism);
      if (!all_ok.load(std::memory_order_relaxed)) return std::nullopt;
    }
    Rref cand;
    cand.matrix = Mat(rows, cols);
    cand.pivots = pivots;
    cand.rank = rank;
    for (std::size_t i = 0; i < rank; ++i) {
      cand.matrix.At(i, pivots[i]) = Rational(1);
      for (std::size_t j = 0; j < free_cols.size(); ++j) {
        cand.matrix.At(i, free_cols[j]) =
            std::move(values[i * free_cols.size() + j]);
      }
    }
    const std::vector<std::uint64_t> screen =
        FreshVerifyPrimes(options, drawn, options.verify_precheck_primes);
    if (!screen.empty() && !ModularResidualPreCheck(m, cand, screen)) {
      if (options.stats != nullptr) ++options.stats->precheck_rejects;
      return std::nullopt;
    }
    if (options.stats != nullptr) ++options.stats->exact_verifies;
    if (!VerifyRrefCandidate(m, cand, free_cols, parallelism)) {
      return std::nullopt;
    }
    if (options.stats != nullptr) options.stats->primes_used = used;
    return cand;
  };

  // The per-prime eliminations are embarrassingly parallel: batches of up
  // to `parallelism` primes fan out across the global ThreadPool, and the
  // finished batch is *folded* (consensus signature, CRT accumulation,
  // lift attempts) strictly in prime order on this thread — exactly the
  // sequence the serial loop executes, so the result is bit-identical for
  // every thread count. The only cost of batching is that a lift that
  // succeeds mid-batch discards the later eliminations of that batch.
  struct PrimeElim {
    std::uint64_t p = 0;
    std::optional<Zp> zp;   // Owned here; mm points into it (never moved).
    std::optional<ModMat> mm;
    ModRref mr;
  };
  bool primes_exhausted = false;
  for (std::size_t pi = 0; pi < budget && !primes_exhausted;) {
    const std::size_t batch_cap =
        std::min(std::max<std::size_t>(parallelism, 1), budget - pi);
    std::vector<PrimeElim> batch(batch_cap);
    std::size_t n = 0;
    for (; n < batch_cap; ++n) {
      const std::uint64_t p = PrimeAt(options, pi + n);
      if (p == 0) {  // Injected prime list exhausted.
        primes_exhausted = true;
        break;
      }
      batch[n].p = p;
      drawn.push_back(p);
    }
    if (n == 0) break;
    auto eliminate = [&batch, &m](std::size_t i) {
      ExecCheckPoint("linalg.modular");
      PrimeElim& e = batch[i];
      e.zp.emplace(e.p);
      e.mm = ModMat::FromRationalMat(&*e.zp, m);
      if (e.mm.has_value()) e.mr = e.mm->RrefInPlace();
    };
    if (n == 1 || parallelism <= 1) {
      for (std::size_t i = 0; i < n; ++i) eliminate(i);
    } else {
      GlobalThreadPool().ParallelFor(n, eliminate, parallelism);
    }

    for (std::size_t i = 0; i < n; ++i) {
      // Per-prime fold boundary (see CrtInverse): forced clock read plus
      // the mid-CRT-fold injection site.
      if (ExecContext* ctx = CurrentExecContext()) {
        ctx->CheckNow("linalg.modular");
      }
      BAGDET_FAILPOINT("modular/crt_fold");
      const std::size_t prime_index = pi + i;
      PrimeElim& e = batch[i];
      if (!e.mm.has_value()) continue;  // p divides a denominator.
      const std::uint64_t p = e.p;
      const Zp& zp = *e.zp;
      const ModMat& mm = *e.mm;
      const ModRref& mr = e.mr;

      const bool adopt =
          !have_consensus || mr.rank > rank ||
          (mr.rank == rank && mr.pivots < pivots);
      if (adopt) {
        have_consensus = true;
        rank = mr.rank;
        pivots = mr.pivots;
        free_cols.clear();
        std::size_t next_pivot = 0;
        for (std::size_t c = 0; c < cols; ++c) {
          if (next_pivot < pivots.size() && pivots[next_pivot] == c) {
            ++next_pivot;
          } else {
            free_cols.push_back(c);
          }
        }
        modulus = BigInt(static_cast<std::int64_t>(p));
        residues.assign(rank * free_cols.size(), BigInt(0));
        for (std::size_t r = 0; r < rank; ++r) {
          for (std::size_t j = 0; j < free_cols.size(); ++j) {
            residues[r * free_cols.size() + j] = BigInt(
                static_cast<std::int64_t>(zp.From(mm.At(r, free_cols[j]))));
          }
        }
        used = 1;
        next_attempt = 1;
      } else if (mr.rank == rank && mr.pivots == pivots) {
        // CRT-combine this prime into the accumulated residues.
        const std::uint64_t m_mod_p = modulus.Mod(p);
        const std::uint64_t inv_m = zp.From(zp.Inv(zp.To(m_mod_p)));
        for (std::size_t r = 0; r < rank; ++r) {
          for (std::size_t j = 0; j < free_cols.size(); ++j) {
            BigInt& x = residues[r * free_cols.size() + j];
            const std::uint64_t v = zp.From(mm.At(r, free_cols[j]));
            const std::uint64_t x_mod_p = x.Mod(p);
            const std::uint64_t delta = v >= x_mod_p ? v - x_mod_p
                                                     : v + p - x_mod_p;
            const std::uint64_t t = MulModU64(delta, inv_m, p);
            // Fused fold: no modulus·t temporary, and x's limb capacity is
            // reused across primes.
            x.MulAdd(modulus, BigInt(static_cast<std::int64_t>(t)));
          }
        }
        modulus *= BigInt(static_cast<std::int64_t>(p));
        ++used;
      } else {
        continue;  // Strictly worse signature: provably unlucky prime.
      }
      residue_mem.Update(static_cast<std::uint64_t>(residues.size()) *
                         (sizeof(BigInt) + modulus.BitLength() / 8));

      // Geometric attempt schedule (the Euclid passes stay a small fraction
      // of the total work) — but always attempt on the last prime of the
      // budget, so a modulus that only just got large enough is not wasted.
      if (used < next_attempt && prime_index + 1 < budget) continue;
      if (std::optional<Rref> cand = attempt_lift()) return cand;
      next_attempt = used + 1 + used / 2;
    }
    pi += n;
  }
  // The loop can end without a lift at the final accumulated modulus: the
  // last primes of the budget may all have been skipped (vanished
  // denominator, worse signature) or an injected list may have run dry.
  // One closing attempt salvages whatever the consensus already holds.
  if (have_consensus && used > last_attempt_used) {
    if (std::optional<Rref> cand = attempt_lift()) return cand;
  }
  if (options.stats != nullptr) ++options.stats->budget_exhausted;
  return std::nullopt;
}

GovernedRref TryModularRrefGoverned(const Mat& m, ExecContext& exec,
                                    const ModularOptions& options) {
  GovernedRref out;
  std::optional<std::optional<Rref>> result = RunGoverned(
      exec, &out.status, [&] { return TryModularRref(m, options); });
  if (result.has_value()) out.rref = std::move(*result);
  return out;
}

bool ModularResidualPreCheck(const Mat& a, const Rref& cand,
                             const std::vector<std::uint64_t>& primes) {
  std::vector<std::size_t> free_cols;
  std::size_t next_pivot = 0;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    if (next_pivot < cand.pivots.size() && cand.pivots[next_pivot] == c) {
      ++next_pivot;
    } else {
      free_cols.push_back(c);
    }
  }
  for (std::uint64_t p : primes) {
    Zp zp(p);
    std::optional<ModMat> am = ModMat::FromRationalMat(&zp, a);
    if (!am.has_value()) continue;  // p divides a denominator: unusable.
    std::optional<ModMat> cm = ModMat::FromRationalMat(&zp, cand.matrix);
    if (!cm.has_value()) continue;
    std::vector<std::uint64_t> coeff(cand.rank);
    for (std::size_t r = 0; r < a.rows(); ++r) {
      for (std::size_t i = 0; i < cand.rank; ++i) {
        coeff[i] = am->At(r, cand.pivots[i]);
      }
      // Pivot columns of the combination match automatically (the
      // candidate carries a unit block there), exactly as in the exact
      // certificate — only free columns can disagree.
      for (std::size_t c : free_cols) {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < cand.rank; ++i) {
          sum = zp.Add(sum, zp.Mul(coeff[i], cm->At(i, c)));
        }
        if (sum != am->At(r, c)) return false;  // Certified mismatch.
      }
    }
  }
  return true;
}

std::optional<Mat> TryModularInverse(const Mat& m,
                                     const ModularOptions& options) {
  const std::size_t n = m.rows();
  if (m.cols() != n) return std::nullopt;
  if (n == 0) return Mat(0, 0);  // Its own inverse, as on the exact path.
  // Same fan-out policy as TryModularRref: explicit num_threads always
  // honored, auto mode keeps tiny problems serial.
  std::size_t parallelism = 1;
  if (options.num_threads != 0) {
    parallelism = options.num_threads;
  } else if (n * n >= 64) {
    parallelism = GlobalThreadPool().num_workers() + 1;
  }
  if (n >= options.dixon_min_dim) {
    return DixonInverse(m, options, parallelism);
  }
  return CrtInverse(m, options, parallelism);
}

std::optional<std::size_t> ModularRankLowerBound(const Mat& m,
                                                const ModularOptions& options) {
  if (m.rows() == 0 || m.cols() == 0) return 0;
  const std::size_t attempts =
      options.max_primes != 0 ? options.max_primes : 4;
  for (std::size_t pi = 0; pi < attempts; ++pi) {
    const std::uint64_t p = PrimeAt(options, pi);
    if (p == 0) break;
    Zp zp(p);
    std::optional<ModMat> mm = ModMat::FromRationalMat(&zp, m);
    if (!mm.has_value()) continue;
    return mm->RankDestructive();
  }
  return std::nullopt;
}

std::optional<bool> ModularNonsingularProbe(const Mat& m,
                                            const ModularOptions& options) {
  if (m.rows() != m.cols() || m.rows() == 0) return std::nullopt;
  const std::size_t attempts =
      options.max_primes != 0 ? options.max_primes : 2;
  for (std::size_t pi = 0; pi < attempts; ++pi) {
    const std::uint64_t p = PrimeAt(options, pi);
    if (p == 0) break;
    Zp zp(p);
    std::optional<ModMat> mm = ModMat::FromRationalMat(&zp, m);
    if (!mm.has_value()) continue;
    if (mm->DeterminantDestructive() != 0) return true;
  }
  return std::nullopt;  // Singular, or every probed prime was unlucky.
}

Rational DeterminantBareiss(const Mat& m) {
  const std::size_t n = m.rows();
  if (n == 0) return Rational(1);

  // Clear each row's denominators; det(A) = det(cleared) / Π row_lcm.
  std::vector<BigInt> a(n * n);
  BigInt denominator_product(1);
  for (std::size_t r = 0; r < n; ++r) {
    BigInt lcm(1);
    for (std::size_t c = 0; c < n; ++c) {
      FoldLcm(&lcm, m.At(r, c).denominator());
    }
    for (std::size_t c = 0; c < n; ++c) {
      const Rational& q = m.At(r, c);
      a[r * n + c] = q.numerator() * (lcm / q.denominator());
    }
    denominator_product *= lcm;
  }

  // One-step Bareiss: every division is exact, and intermediates are
  // bounded by minors of the cleared matrix.
  BigInt prev(1);
  bool negate = false;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    std::size_t pivot = n;
    for (std::size_t r = k; r < n; ++r) {
      if (!a[r * n + k].IsZero()) {
        pivot = r;
        break;
      }
    }
    if (pivot == n) return Rational(0);
    if (pivot != k) {
      std::swap_ranges(a.begin() + pivot * n, a.begin() + (pivot + 1) * n,
                       a.begin() + k * n);
      negate = !negate;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      for (std::size_t j = k + 1; j < n; ++j) {
        // a[i][j]·a[k][k] - a[i][k]·a[k][j], fused, divided exactly by the
        // previous pivot in place (the entry's capacity is recycled).
        a[i * n + j] *= a[k * n + k];
        a[i * n + j].MulSub(a[i * n + k], a[k * n + j]);
        BigInt::DivMod(a[i * n + j], prev, &a[i * n + j], nullptr);
      }
      a[i * n + k] = BigInt(0);
    }
    prev = a[k * n + k];
  }
  BigInt det = std::move(a[n * n - 1]);
  if (negate) det = -det;
  return Rational(std::move(det), std::move(denominator_product));
}

}  // namespace bagdet
