#include "linalg/modular_solve.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "linalg/modmat.h"
#include "util/bigint.h"
#include "util/thread_pool.h"

namespace bagdet {

namespace {

std::uint64_t MulModU64(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t PowModU64(std::uint64_t a, std::uint64_t e, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  a %= m;
  while (e != 0) {
    if (e & 1) result = MulModU64(result, a, m);
    a = MulModU64(a, a, m);
    e >>= 1;
  }
  return result;
}

/// Deterministic Miller–Rabin for 64-bit inputs (the 12-base witness set
/// is exact for every n < 3.3·10^24).
bool IsPrimeU64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = PowModU64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int i = 0; i + 1 < r; ++i) {
      x = MulModU64(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

std::uint64_t PrimeAt(const ModularOptions& options, std::size_t i) {
  if (options.primes != nullptr) {
    return i < options.primes->size() ? (*options.primes)[i] : 0;
  }
  return ModularPrimes(i + 1)[i];
}

/// Prime budget covering the worst-case (Hadamard-bounded) RREF entry
/// size: every RREF entry is a ratio of r×r minors of the
/// denominator-cleared matrix, so a modulus of twice the minor bit bound
/// guarantees the rational lift exists. Hitting the budget without a
/// verified lift then indicates a pathological input rather than normal
/// operation — and the exact fallback guards correctness regardless, which
/// is why the budget is also clamped.
std::size_t AutoPrimeBudget(const Mat& m) {
  const std::size_t r = std::min(m.rows(), m.cols());
  std::size_t log_cols = 1;
  while ((1ull << log_cols) < m.cols() + 1) ++log_cols;
  // Per-row entry bound after clearing the row's denominators (the lcm
  // divides the product of the entry denominators).
  std::vector<std::size_t> row_bits(m.rows(), 0);
  for (std::size_t row = 0; row < m.rows(); ++row) {
    std::size_t num_bits = 1;
    std::size_t den_bits = 0;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const Rational& q = m.At(row, c);
      num_bits = std::max(num_bits, q.numerator().BitLength());
      if (!q.denominator().IsOne()) den_bits += q.denominator().BitLength();
    }
    row_bits[row] = num_bits + den_bits + log_cols;
  }
  // A minor uses r rows; bound by the r largest row contributions.
  std::sort(row_bits.begin(), row_bits.end(), std::greater<std::size_t>());
  std::size_t minor_bits = 64;
  for (std::size_t i = 0; i < r; ++i) minor_bits += row_bits[i];
  const std::size_t budget = (2 * minor_bits) / 61 + 4;
  return std::min<std::size_t>(std::max<std::size_t>(budget, 8), 1024);
}

/// Wang's rational reconstruction: the unique n/d with |n|, d <= bound,
/// gcd(n, d) = 1 and n = residue·d (mod modulus), when one exists.
std::optional<Rational> ReconstructRational(const BigInt& residue,
                                            const BigInt& modulus,
                                            const BigInt& bound) {
  BigInt a0 = modulus;
  BigInt a1 = residue;
  BigInt t0(0);
  BigInt t1(1);
  while (a1 > bound) {
    BigInt q, rem;
    BigInt::DivMod(a0, a1, &q, &rem);
    a0 = std::move(a1);
    a1 = std::move(rem);
    BigInt t2 = t0 - q * t1;
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  BigInt num = std::move(a1);
  BigInt den = std::move(t1);
  if (den.IsZero()) return std::nullopt;
  if (den.IsNegative()) {
    num = -num;
    den = -den;
  }
  if (den > bound) return std::nullopt;
  if (!BigInt::Gcd(num, den).IsOne()) return std::nullopt;
  return Rational(std::move(num), std::move(den));
}

/// Exact certificate that `cand` is THE reduced row echelon form of `a`:
/// with pivots P = cand.pivots, every row of `a` must equal the
/// combination of candidate pivot rows weighted by its own P-coordinates
/// (rowspace(a) ⊆ rowspace(cand), hence rank_Q(a) <= rank(cand); the
/// accumulated primes already certify rank_Q(a) >= rank(cand) via a
/// nonvanishing minor, and RREF is unique per row space). Pivot columns of
/// the combination match automatically, so only free columns are checked.
///
/// Rows are independent read-only checks over exact rationals — on large
/// matrices this certificate, not the word-size eliminations, dominates
/// the driver's cost — so they fan out across the thread pool. The result
/// is a conjunction over rows: bit-identical at any parallelism.
bool VerifyRrefCandidate(const Mat& a, const Rref& cand,
                         const std::vector<std::size_t>& free_cols,
                         std::size_t parallelism) {
  const std::size_t rank = cand.rank;
  std::atomic<bool> ok{true};
  auto check_row = [&](std::size_t r) {
    if (!ok.load(std::memory_order_relaxed)) return;  // Another row failed.
    std::vector<Rational> coeff(rank);
    for (std::size_t i = 0; i < rank; ++i) coeff[i] = a.At(r, cand.pivots[i]);
    for (std::size_t c : free_cols) {
      Rational sum;
      for (std::size_t i = 0; i < rank; ++i) {
        if (coeff[i].IsZero()) continue;
        const Rational& entry = cand.matrix.At(i, c);
        if (entry.IsZero()) continue;
        sum += coeff[i] * entry;
      }
      if (sum != a.At(r, c)) {
        ok.store(false, std::memory_order_relaxed);
        return;
      }
    }
  };
  if (parallelism <= 1 || a.rows() < 2) {
    for (std::size_t r = 0; r < a.rows(); ++r) {
      check_row(r);
      if (!ok.load(std::memory_order_relaxed)) return false;
    }
    return true;
  }
  GlobalThreadPool().ParallelFor(a.rows(), check_row, parallelism);
  return ok.load(std::memory_order_relaxed);
}

}  // namespace

const std::vector<std::uint64_t>& ModularPrimes(std::size_t count) {
  // Seeded with the 40 largest primes below 2^62 and extended downward on
  // demand. Extension is mutex-guarded, and the backing vector's capacity
  // is reserved once up front so growth never reallocates: references
  // returned earlier stay valid while another thread extends the table —
  // required now that concurrent TryModularRref calls (and its worker
  // batches) share this sequence. kCapacity is 64× the driver's hardest
  // prime-budget clamp; exceeding it throws rather than invalidating
  // published references.
  static constexpr std::size_t kCapacity = 65536;
  static std::mutex mu;
  static std::vector<std::uint64_t> primes = {
      4611686018427387847ull, 4611686018427387817ull, 4611686018427387787ull,
      4611686018427387761ull, 4611686018427387751ull, 4611686018427387737ull,
      4611686018427387733ull, 4611686018427387709ull, 4611686018427387701ull,
      4611686018427387631ull, 4611686018427387617ull, 4611686018427387587ull,
      4611686018427387461ull, 4611686018427387421ull, 4611686018427387409ull,
      4611686018427387329ull, 4611686018427387323ull, 4611686018427387301ull,
      4611686018427387271ull, 4611686018427387241ull, 4611686018427387139ull,
      4611686018427387131ull, 4611686018427387127ull, 4611686018427387113ull,
      4611686018427387091ull, 4611686018427387073ull, 4611686018427386981ull,
      4611686018427386923ull, 4611686018427386911ull, 4611686018427386903ull,
      4611686018427386897ull, 4611686018427386887ull, 4611686018427386707ull,
      4611686018427386663ull, 4611686018427386611ull, 4611686018427386551ull,
      4611686018427386471ull, 4611686018427386389ull, 4611686018427386351ull,
      4611686018427386329ull};
  std::lock_guard<std::mutex> lock(mu);
  if (primes.capacity() < kCapacity) primes.reserve(kCapacity);
  if (count > kCapacity) {
    throw std::length_error("ModularPrimes: prime table capacity exceeded");
  }
  std::uint64_t candidate = primes.back() - 2;
  while (primes.size() < count) {
    while (!IsPrimeU64(candidate)) candidate -= 2;
    primes.push_back(candidate);
    candidate -= 2;
  }
  return primes;
}

std::optional<Rref> TryModularRref(const Mat& m, const ModularOptions& options) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  if (rows == 0 || cols == 0) {
    Rref trivial;
    trivial.matrix = m;
    return trivial;
  }
  std::size_t budget =
      options.max_primes != 0 ? options.max_primes : AutoPrimeBudget(m);
  if (options.primes != nullptr) {
    budget = std::min(budget, options.primes->size());
  }

  // Consensus across primes: (rank, pivots) signature plus CRT-combined
  // residues of the nontrivial RREF block (pivot rows × free columns).
  // Unlucky primes can only lose rank or push pivots later, so "max rank,
  // then lexicographically smallest pivots" keeps the true signature as
  // soon as one good prime appears; the exact verification below is the
  // final arbiter either way.
  bool have_consensus = false;
  std::vector<std::size_t> pivots;
  std::size_t rank = 0;
  std::vector<std::size_t> free_cols;
  BigInt modulus(1);
  std::vector<BigInt> residues;
  std::size_t used = 0;
  std::size_t next_attempt = 1;
  std::size_t last_attempt_used = 0;

  // Parallelism for the fan-out stages (per-prime eliminations, the
  // lift's per-entry reconstructions, and the verification rows). An
  // explicit num_threads is always honored (tests rely on forcing the
  // parallel path on small inputs); in auto mode tiny problems stay
  // serial and never touch — or lazily construct — the global pool.
  std::size_t parallelism = 1;
  if (options.num_threads != 0) {
    parallelism = options.num_threads;
  } else if (rows * cols >= 64) {
    parallelism = GlobalThreadPool().num_workers() + 1;
  }

  // Lift: rational reconstruction of every nontrivial entry, then the
  // exact residual certificate. A failed lift just means "not enough
  // primes yet". Reconstructions are independent per entry and the
  // certificate is independent per row, so both stages fan out; each is a
  // pure function of the accumulated residues, so the outcome is
  // bit-identical at any thread count.
  auto attempt_lift = [&]() -> std::optional<Rref> {
    last_attempt_used = used;
    const BigInt bound =
        BigInt::FloorKthRoot((modulus - BigInt(1)) / BigInt(2), 2);
    std::vector<Rational> values(residues.size());
    if (parallelism <= 1 || residues.size() < 8) {
      for (std::size_t i = 0; i < residues.size(); ++i) {
        std::optional<Rational> q =
            ReconstructRational(residues[i], modulus, bound);
        if (!q.has_value()) return std::nullopt;
        values[i] = std::move(*q);
      }
    } else {
      std::atomic<bool> all_ok{true};
      GlobalThreadPool().ParallelFor(
          residues.size(),
          [&](std::size_t i) {
            if (!all_ok.load(std::memory_order_relaxed)) return;
            std::optional<Rational> q =
                ReconstructRational(residues[i], modulus, bound);
            if (!q.has_value()) {
              all_ok.store(false, std::memory_order_relaxed);
              return;
            }
            values[i] = std::move(*q);
          },
          parallelism);
      if (!all_ok.load(std::memory_order_relaxed)) return std::nullopt;
    }
    Rref cand;
    cand.matrix = Mat(rows, cols);
    cand.pivots = pivots;
    cand.rank = rank;
    for (std::size_t i = 0; i < rank; ++i) {
      cand.matrix.At(i, pivots[i]) = Rational(1);
      for (std::size_t j = 0; j < free_cols.size(); ++j) {
        cand.matrix.At(i, free_cols[j]) =
            std::move(values[i * free_cols.size() + j]);
      }
    }
    if (!VerifyRrefCandidate(m, cand, free_cols, parallelism)) {
      return std::nullopt;
    }
    return cand;
  };

  // The per-prime eliminations are embarrassingly parallel: batches of up
  // to `parallelism` primes fan out across the global ThreadPool, and the
  // finished batch is *folded* (consensus signature, CRT accumulation,
  // lift attempts) strictly in prime order on this thread — exactly the
  // sequence the serial loop executes, so the result is bit-identical for
  // every thread count. The only cost of batching is that a lift that
  // succeeds mid-batch discards the later eliminations of that batch.
  struct PrimeElim {
    std::uint64_t p = 0;
    std::optional<Zp> zp;   // Owned here; mm points into it (never moved).
    std::optional<ModMat> mm;
    ModRref mr;
  };
  bool primes_exhausted = false;
  for (std::size_t pi = 0; pi < budget && !primes_exhausted;) {
    const std::size_t batch_cap =
        std::min(std::max<std::size_t>(parallelism, 1), budget - pi);
    std::vector<PrimeElim> batch(batch_cap);
    std::size_t n = 0;
    for (; n < batch_cap; ++n) {
      const std::uint64_t p = PrimeAt(options, pi + n);
      if (p == 0) {  // Injected prime list exhausted.
        primes_exhausted = true;
        break;
      }
      batch[n].p = p;
    }
    if (n == 0) break;
    auto eliminate = [&batch, &m](std::size_t i) {
      PrimeElim& e = batch[i];
      e.zp.emplace(e.p);
      e.mm = ModMat::FromRationalMat(&*e.zp, m);
      if (e.mm.has_value()) e.mr = e.mm->RrefInPlace();
    };
    if (n == 1 || parallelism <= 1) {
      for (std::size_t i = 0; i < n; ++i) eliminate(i);
    } else {
      GlobalThreadPool().ParallelFor(n, eliminate, parallelism);
    }

    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t prime_index = pi + i;
      PrimeElim& e = batch[i];
      if (!e.mm.has_value()) continue;  // p divides a denominator.
      const std::uint64_t p = e.p;
      const Zp& zp = *e.zp;
      const ModMat& mm = *e.mm;
      const ModRref& mr = e.mr;

      const bool adopt =
          !have_consensus || mr.rank > rank ||
          (mr.rank == rank && mr.pivots < pivots);
      if (adopt) {
        have_consensus = true;
        rank = mr.rank;
        pivots = mr.pivots;
        free_cols.clear();
        std::size_t next_pivot = 0;
        for (std::size_t c = 0; c < cols; ++c) {
          if (next_pivot < pivots.size() && pivots[next_pivot] == c) {
            ++next_pivot;
          } else {
            free_cols.push_back(c);
          }
        }
        modulus = BigInt(static_cast<std::int64_t>(p));
        residues.assign(rank * free_cols.size(), BigInt(0));
        for (std::size_t r = 0; r < rank; ++r) {
          for (std::size_t j = 0; j < free_cols.size(); ++j) {
            residues[r * free_cols.size() + j] = BigInt(
                static_cast<std::int64_t>(zp.From(mm.At(r, free_cols[j]))));
          }
        }
        used = 1;
        next_attempt = 1;
      } else if (mr.rank == rank && mr.pivots == pivots) {
        // CRT-combine this prime into the accumulated residues.
        const std::uint64_t m_mod_p = modulus.Mod(p);
        const std::uint64_t inv_m = zp.From(zp.Inv(zp.To(m_mod_p)));
        for (std::size_t r = 0; r < rank; ++r) {
          for (std::size_t j = 0; j < free_cols.size(); ++j) {
            BigInt& x = residues[r * free_cols.size() + j];
            const std::uint64_t v = zp.From(mm.At(r, free_cols[j]));
            const std::uint64_t x_mod_p = x.Mod(p);
            const std::uint64_t delta = v >= x_mod_p ? v - x_mod_p
                                                     : v + p - x_mod_p;
            const std::uint64_t t = MulModU64(delta, inv_m, p);
            x += modulus * BigInt(static_cast<std::int64_t>(t));
          }
        }
        modulus *= BigInt(static_cast<std::int64_t>(p));
        ++used;
      } else {
        continue;  // Strictly worse signature: provably unlucky prime.
      }

      // Geometric attempt schedule (the Euclid passes stay a small fraction
      // of the total work) — but always attempt on the last prime of the
      // budget, so a modulus that only just got large enough is not wasted.
      if (used < next_attempt && prime_index + 1 < budget) continue;
      if (std::optional<Rref> cand = attempt_lift()) return cand;
      next_attempt = used + 1 + used / 2;
    }
    pi += n;
  }
  // The loop can end without a lift at the final accumulated modulus: the
  // last primes of the budget may all have been skipped (vanished
  // denominator, worse signature) or an injected list may have run dry.
  // One closing attempt salvages whatever the consensus already holds.
  if (have_consensus && used > last_attempt_used) {
    if (std::optional<Rref> cand = attempt_lift()) return cand;
  }
  return std::nullopt;
}

std::optional<std::size_t> ModularRankLowerBound(const Mat& m,
                                                const ModularOptions& options) {
  if (m.rows() == 0 || m.cols() == 0) return 0;
  const std::size_t attempts =
      options.max_primes != 0 ? options.max_primes : 4;
  for (std::size_t pi = 0; pi < attempts; ++pi) {
    const std::uint64_t p = PrimeAt(options, pi);
    if (p == 0) break;
    Zp zp(p);
    std::optional<ModMat> mm = ModMat::FromRationalMat(&zp, m);
    if (!mm.has_value()) continue;
    return mm->RankDestructive();
  }
  return std::nullopt;
}

std::optional<bool> ModularNonsingularProbe(const Mat& m,
                                            const ModularOptions& options) {
  if (m.rows() != m.cols() || m.rows() == 0) return std::nullopt;
  const std::size_t attempts =
      options.max_primes != 0 ? options.max_primes : 2;
  for (std::size_t pi = 0; pi < attempts; ++pi) {
    const std::uint64_t p = PrimeAt(options, pi);
    if (p == 0) break;
    Zp zp(p);
    std::optional<ModMat> mm = ModMat::FromRationalMat(&zp, m);
    if (!mm.has_value()) continue;
    if (mm->DeterminantDestructive() != 0) return true;
  }
  return std::nullopt;  // Singular, or every probed prime was unlucky.
}

Rational DeterminantBareiss(const Mat& m) {
  const std::size_t n = m.rows();
  if (n == 0) return Rational(1);

  // Clear each row's denominators; det(A) = det(cleared) / Π row_lcm.
  std::vector<BigInt> a(n * n);
  BigInt denominator_product(1);
  for (std::size_t r = 0; r < n; ++r) {
    BigInt lcm(1);
    for (std::size_t c = 0; c < n; ++c) {
      const BigInt& d = m.At(r, c).denominator();
      if (d.IsOne()) continue;
      lcm = lcm / BigInt::Gcd(lcm, d) * d;
    }
    for (std::size_t c = 0; c < n; ++c) {
      const Rational& q = m.At(r, c);
      a[r * n + c] = q.numerator() * (lcm / q.denominator());
    }
    denominator_product *= lcm;
  }

  // One-step Bareiss: every division is exact, and intermediates are
  // bounded by minors of the cleared matrix.
  BigInt prev(1);
  bool negate = false;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    std::size_t pivot = n;
    for (std::size_t r = k; r < n; ++r) {
      if (!a[r * n + k].IsZero()) {
        pivot = r;
        break;
      }
    }
    if (pivot == n) return Rational(0);
    if (pivot != k) {
      std::swap_ranges(a.begin() + pivot * n, a.begin() + (pivot + 1) * n,
                       a.begin() + k * n);
      negate = !negate;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      for (std::size_t j = k + 1; j < n; ++j) {
        BigInt value = a[i * n + j] * a[k * n + k] - a[i * n + k] * a[k * n + j];
        BigInt quotient, remainder;
        BigInt::DivMod(value, prev, &quotient, &remainder);
        a[i * n + j] = std::move(quotient);
      }
      a[i * n + k] = BigInt(0);
    }
    prev = a[k * n + k];
  }
  BigInt det = std::move(a[n * n - 1]);
  if (negate) det = -det;
  return Rational(std::move(det), std::move(denominator_product));
}

}  // namespace bagdet
