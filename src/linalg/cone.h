// bagdet: the convex cone 𝒞 = M(R^k_{≥0}) of Definition 52 and the
// rational-interior-point machinery of Corollary 8 — the geometric stage
// on which the counterexample of Lemma 56 is built.

#ifndef BAGDET_LINALG_CONE_H_
#define BAGDET_LINALG_CONE_H_

#include <optional>

#include "linalg/gauss.h"
#include "linalg/matrix.h"

namespace bagdet {

/// The simplicial cone spanned by the columns of a *nonsingular* square
/// matrix M: 𝒞 = { M x : x ≥ 0 }. Nonsingularity makes membership a
/// single linear solve (and gives the cone nonempty interior, Corollary 8).
class SimplicialCone {
 public:
  /// Throws std::invalid_argument when `m` is singular or not square.
  explicit SimplicialCone(Mat m);

  const Mat& matrix() const { return matrix_; }
  const Mat& inverse() const { return inverse_; }
  std::size_t Dimension() const { return matrix_.rows(); }

  /// Preimage coordinates M⁻¹ p.
  Vec Coordinates(const Vec& point) const { return inverse_.Apply(point); }

  /// p ∈ 𝒞 ⇔ M⁻¹ p ≥ 0.
  bool Contains(const Vec& point) const {
    return Coordinates(point).IsNonNegative();
  }

  /// p ∈ int 𝒞 ⇔ M⁻¹ p > 0 componentwise.
  bool StrictlyContains(const Vec& point) const;

  /// A rational point in the interior: M·𝟙 (Corollary 8 — the image of the
  /// strictly positive vector 𝟙 under a nonsingular map lies in the
  /// interior of the image of R^k_{≥0}).
  Vec InteriorPoint() const;

  /// Lemma 55 made explicit: for p ∈ 𝒞 ∩ Q^k, the least c ∈ N+ with
  /// c·p ∈ 𝒫 = { M u : u ∈ N^k } — the common denominator of M⁻¹ p.
  /// Returns std::nullopt when p ∉ 𝒞.
  std::optional<BigInt> ScaleIntoLattice(const Vec& point) const;

 private:
  Mat matrix_;
  Mat inverse_;
};

}  // namespace bagdet

#endif  // BAGDET_LINALG_CONE_H_
