#include "linalg/cone.h"

#include <stdexcept>

namespace bagdet {

SimplicialCone::SimplicialCone(Mat m) : matrix_(std::move(m)) {
  std::optional<Mat> inverse = Inverse(matrix_);
  if (!inverse.has_value()) {
    throw std::invalid_argument("SimplicialCone: matrix is singular");
  }
  inverse_ = std::move(*inverse);
}

bool SimplicialCone::StrictlyContains(const Vec& point) const {
  Vec coords = Coordinates(point);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (coords[i].Sign() <= 0) return false;
  }
  return true;
}

Vec SimplicialCone::InteriorPoint() const {
  Vec ones(Dimension());
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = Rational(1);
  return matrix_.Apply(ones);
}

std::optional<BigInt> SimplicialCone::ScaleIntoLattice(
    const Vec& point) const {
  Vec coords = Coordinates(point);
  if (!coords.IsNonNegative()) return std::nullopt;
  return coords.CommonDenominator();
}

}  // namespace bagdet
