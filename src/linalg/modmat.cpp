#include "linalg/modmat.h"

#include <algorithm>

namespace bagdet {

Zp::Zp(std::uint64_t p) : p_(p) {
  // p^{-1} mod 2^64 by Newton iteration: each step doubles the number of
  // correct low bits, and x = p is correct to 3 bits for odd p.
  std::uint64_t inv = p;
  for (int i = 0; i < 5; ++i) inv *= 2 - p * inv;
  neg_p_inv_ = ~inv + 1;
  one_ = static_cast<std::uint64_t>((static_cast<unsigned __int128>(1) << 64) %
                                    p);
  r2_ = static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(one_) * one_ % p);
}

std::uint64_t Zp::Pow(std::uint64_t a, std::uint64_t e) const {
  std::uint64_t result = one_;
  while (e != 0) {
    if (e & 1) result = Mul(result, a);
    a = Mul(a, a);
    e >>= 1;
  }
  return result;
}

std::optional<ModMat> ModMat::FromRationalMat(const Zp* zp, const Mat& m) {
  ModMat result(zp, m.rows(), m.cols());
  const std::uint64_t p = zp->prime();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const Rational& q = m.At(r, c);
      std::uint64_t num = q.numerator().Mod(p);
      if (q.denominator().IsOne()) {
        result.At(r, c) = zp->To(num);
        continue;
      }
      std::uint64_t den = q.denominator().Mod(p);
      if (den == 0) return std::nullopt;  // Unlucky prime.
      result.At(r, c) = zp->Mul(zp->To(num), zp->Inv(zp->To(den)));
    }
  }
  return result;
}

ModRref ModMat::RrefInPlace() {
  ModRref result;
  const Zp& zp = *zp_;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols_ && pivot_row < rows_; ++col) {
    std::size_t found = rows_;
    for (std::size_t r = pivot_row; r < rows_; ++r) {
      if (At(r, col) != 0) {
        found = r;
        break;
      }
    }
    if (found == rows_) continue;
    if (found != pivot_row) {
      std::swap_ranges(RowPtr(found), RowPtr(found) + cols_,
                       RowPtr(pivot_row));
    }
    std::uint64_t* pivot = RowPtr(pivot_row);
    std::uint64_t inv = zp.Inv(pivot[col]);
    for (std::size_t c = col; c < cols_; ++c) pivot[c] = zp.Mul(pivot[c], inv);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      std::uint64_t* row = RowPtr(r);
      std::uint64_t factor = row[col];
      if (factor == 0) continue;
      for (std::size_t c = col; c < cols_; ++c) {
        row[c] = zp.Sub(row[c], zp.Mul(factor, pivot[c]));
      }
    }
    result.pivots.push_back(col);
    ++pivot_row;
  }
  result.rank = pivot_row;
  return result;
}

std::size_t ModMat::RankDestructive() {
  const Zp& zp = *zp_;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols_ && pivot_row < rows_; ++col) {
    std::size_t found = rows_;
    for (std::size_t r = pivot_row; r < rows_; ++r) {
      if (At(r, col) != 0) {
        found = r;
        break;
      }
    }
    if (found == rows_) continue;
    if (found != pivot_row) {
      std::swap_ranges(RowPtr(found), RowPtr(found) + cols_,
                       RowPtr(pivot_row));
    }
    std::uint64_t* pivot = RowPtr(pivot_row);
    std::uint64_t inv = zp.Inv(pivot[col]);
    for (std::size_t r = pivot_row + 1; r < rows_; ++r) {
      std::uint64_t* row = RowPtr(r);
      std::uint64_t factor = row[col];
      if (factor == 0) continue;
      factor = zp.Mul(factor, inv);
      row[col] = 0;
      for (std::size_t c = col + 1; c < cols_; ++c) {
        row[c] = zp.Sub(row[c], zp.Mul(factor, pivot[c]));
      }
    }
    ++pivot_row;
  }
  return pivot_row;
}

std::optional<ModMat> ModMat::Inverted() const {
  const std::size_t n = rows_;
  if (n == 0) return ModMat(zp_, 0, 0);  // The 0×0 matrix is its own inverse.
  ModMat aug(zp_, n, 2 * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) aug.At(r, c) = At(r, c);
    aug.At(r, n + r) = zp_->one();
  }
  const ModRref rref = aug.RrefInPlace();
  // Full rank with every pivot in the left block iff pivots are 0..n-1
  // (pivot columns are strictly increasing, so checking the last suffices).
  if (rref.rank < n || rref.pivots[n - 1] >= n) return std::nullopt;
  ModMat inverse(zp_, n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) inverse.At(r, c) = aug.At(r, n + c);
  }
  return inverse;
}

std::vector<std::uint64_t> ModMat::MulVec(
    const std::vector<std::uint64_t>& v) const {
  const Zp& zp = *zp_;
  std::vector<std::uint64_t> result(rows_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::uint64_t* row = entries_.data() + r * cols_;
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < cols_; ++c) {
      sum = zp.Add(sum, zp.Mul(row[c], v[c]));
    }
    result[r] = sum;
  }
  return result;
}

std::uint64_t ModMat::DeterminantDestructive() {
  const Zp& zp = *zp_;
  std::uint64_t det = zp.one();
  bool negate = false;
  for (std::size_t col = 0; col < cols_; ++col) {
    std::size_t found = rows_;
    for (std::size_t r = col; r < rows_; ++r) {
      if (At(r, col) != 0) {
        found = r;
        break;
      }
    }
    if (found == rows_) return 0;
    if (found != col) {
      std::swap_ranges(RowPtr(found), RowPtr(found) + cols_, RowPtr(col));
      negate = !negate;
    }
    std::uint64_t* pivot = RowPtr(col);
    det = zp.Mul(det, pivot[col]);
    std::uint64_t inv = zp.Inv(pivot[col]);
    for (std::size_t r = col + 1; r < rows_; ++r) {
      std::uint64_t* row = RowPtr(r);
      std::uint64_t factor = row[col];
      if (factor == 0) continue;
      factor = zp.Mul(factor, inv);
      for (std::size_t c = col; c < cols_; ++c) {
        row[c] = zp.Sub(row[c], zp.Mul(factor, pivot[c]));
      }
    }
  }
  return negate ? zp.Neg(det) : det;
}

}  // namespace bagdet
