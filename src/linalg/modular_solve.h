// bagdet: certified multi-modular linear algebra driver.
//
// The exact elimination in linalg/gauss.cpp stays the semantic ground
// truth, but its intermediate rationals blow up super-linearly when the
// matrix entries are the pipeline's astronomically large hom counts. The
// driver here computes the same answers the fast way computer-algebra
// systems do:
//
//   1. eliminate over Z/p for one or more 62-bit primes (linalg/modmat.h)
//      — batched across the global ThreadPool (util/thread_pool.h), since
//      the per-prime eliminations are independent; the CRT fold below
//      always runs in prime order, keeping results bit-identical to the
//      serial path at any thread count,
//   2. combine residues by CRT and lift to Q by rational reconstruction
//      (Wang's algorithm),
//   3. **verify the lifted answer exactly** — a per-row residual check
//      plus the mod-p rank lower bound pins the unique rational RREF —
//   4. and report failure (unlucky primes, prime budget exhausted) so the
//      caller can fall back to plain exact elimination.
//
// Every result returned here is therefore bit-for-bit identical to the
// exact path; speed never trades against the paper's correctness
// guarantees. See README.md ("Modular linear algebra") for the design.

#ifndef BAGDET_LINALG_MODULAR_SOLVE_H_
#define BAGDET_LINALG_MODULAR_SOLVE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/gauss.h"
#include "linalg/matrix.h"

namespace bagdet {

/// Tuning knobs for the modular driver. Defaults are production settings;
/// the prime-injection seam exists for tests (forcing unlucky primes) and
/// benchmarks (pinning prime counts).
struct ModularOptions {
  /// Hard cap on the number of primes tried; 0 means "auto": enough
  /// primes that the CRT modulus provably covers the worst-case RREF
  /// entry size for the given matrix (then reconstruction failure implies
  /// a logic error, and the exact fallback still guards the result).
  std::size_t max_primes = 0;
  /// When set, primes are drawn from this list (in order) instead of the
  /// built-in 62-bit prime sequence. Entries must be odd primes < 2^62.
  const std::vector<std::uint64_t>* primes = nullptr;
  /// Parallelism for TryModularRref's fan-out stages — the per-prime
  /// eliminations, the lift's per-entry rational reconstructions, and the
  /// rows of the exact verification certificate (which dominates the cost
  /// on large matrices): 0 uses the global ThreadPool's full width, 1
  /// forces the serial path, other values cap the worker fan-out. An
  /// explicit value is always honored; auto mode (0) keeps matrices under
  /// 64 cells serial, where the fan-out handshake costs more than it
  /// saves. The
  /// result is bit-identical at every setting — primes are eliminated in
  /// batches but *folded* (consensus signature, CRT accumulation, lift
  /// attempts) strictly in prime order, exactly the sequence the serial
  /// path executes, and the lift/verify stages are pure per-entry/per-row
  /// functions of that fold's state.
  std::size_t num_threads = 0;
};

/// First `count` primes of the built-in sequence (largest primes below
/// 2^62, descending), extending the table on demand.
const std::vector<std::uint64_t>& ModularPrimes(std::size_t count);

/// Multi-modular RREF with certified rational reconstruction. Returns the
/// exact reduced row echelon form (identical to ReduceToRrefExact) or
/// std::nullopt when verification never succeeds within the prime budget.
std::optional<Rref> TryModularRref(const Mat& m,
                                   const ModularOptions& options = {});

/// Single-prime rank probe. rank_p(A) <= rank_Q(A) for every prime that
/// does not divide a denominator, so the returned value is a *certified
/// lower bound* on the exact rank — and when it reaches min(rows, cols)
/// the exact rank is known without any exact arithmetic. Returns
/// std::nullopt when no usable prime is found (denominators vanish).
std::optional<std::size_t> ModularRankLowerBound(
    const Mat& m, const ModularOptions& options = {});

/// Single-prime nonsingularity probe for a square matrix: det(A) mod p
/// being nonzero certifies det(A) != 0. Returns true on certificate,
/// std::nullopt when inconclusive (det vanishes mod the probed primes —
/// either A is singular or the primes are unlucky).
std::optional<bool> ModularNonsingularProbe(const Mat& m,
                                            const ModularOptions& options = {});

/// Fraction-free Bareiss determinant: clears row denominators, runs
/// two-step-exact-division elimination over Z, and rescales. Intermediate
/// values are bounded by minors of the cleared matrix — no rational
/// normalization churn. Exact for every input; the preferred path for the
/// dense-integer matrices the pipeline produces.
Rational DeterminantBareiss(const Mat& m);

}  // namespace bagdet

#endif  // BAGDET_LINALG_MODULAR_SOLVE_H_
