// bagdet: certified multi-modular linear algebra driver.
//
// The exact elimination in linalg/gauss.cpp stays the semantic ground
// truth, but its intermediate rationals blow up super-linearly when the
// matrix entries are the pipeline's astronomically large hom counts. The
// driver here computes the same answers the fast way computer-algebra
// systems do:
//
//   1. eliminate over Z/p for one or more 62-bit primes (linalg/modmat.h)
//      — batched across the global ThreadPool (util/thread_pool.h), since
//      the per-prime eliminations are independent; the CRT fold below
//      always runs in prime order, keeping results bit-identical to the
//      serial path at any thread count,
//   2. combine residues by CRT and lift to Q by rational reconstruction
//      (Wang's algorithm),
//   3. **screen the lifted candidate mod fresh primes** — primes disjoint
//      from the reconstruction modulus, Freivalds-style, so a candidate
//      the reconstruction converged on wrongly is rejected in word-size
//      arithmetic (the reconstruction primes themselves satisfy the
//      residual identities by CRT construction and would never reject),
//   4. **verify the surviving answer exactly** — a per-row residual check
//      plus the mod-p rank lower bound pins the unique rational RREF —
//   5. and report failure (unlucky primes, prime budget exhausted) so the
//      caller can fall back to plain exact elimination.
//
// TryModularInverse applies the same discipline to A⁻¹ with two interior
// strategies (per-prime inversion + CRT, or Dixon p-adic lifting) and an
// exact A·A⁻¹ = I certificate behind the same fresh-prime screen.
//
// Every result returned here is therefore bit-for-bit identical to the
// exact path; speed never trades against the paper's correctness
// guarantees. See README.md ("Modular linear algebra") for the design.

#ifndef BAGDET_LINALG_MODULAR_SOLVE_H_
#define BAGDET_LINALG_MODULAR_SOLVE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/gauss.h"
#include "linalg/matrix.h"
#include "util/exec_context.h"
#include "util/tuning.h"

namespace bagdet {

/// Counters the driver fills in when ModularOptions::stats is set — the
/// observable record of how much work stayed in word-size arithmetic.
/// Written only by the calling (fold) thread; fan-out workers never touch
/// it, so a stack-local instance needs no synchronization.
struct ModularStats {
  /// Rational-reconstruction attempts (most fail early with "not enough
  /// primes yet" before any candidate exists).
  std::uint64_t lift_attempts = 0;
  /// Lifted candidates killed by the fresh-prime residual pre-check —
  /// rejections that cost word-size arithmetic instead of an exact pass.
  std::uint64_t precheck_rejects = 0;
  /// Full exact residual certificates run. With the pre-check on, this is
  /// at most one per accepted result on any non-adversarial input.
  std::uint64_t exact_verifies = 0;
  /// Primes folded into the CRT modulus (TryModularRref / CRT inverse).
  std::uint64_t primes_used = 0;
  /// TryModularInverse took the Dixon p-adic path instead of CRT.
  bool used_dixon = false;
  /// The driver exhausted its prime budget (or the built-in prime table's
  /// capacity, or an injected prime list) without a verified lift and
  /// declined, handing the call to the exact fallback. Never loops, never
  /// asserts — this counter is the observable record of the exhaustion.
  std::uint64_t budget_exhausted = 0;
};

/// Tuning knobs for the modular driver. Defaults are production settings;
/// the prime-injection seam exists for tests (forcing unlucky primes) and
/// benchmarks (pinning prime counts).
struct ModularOptions {
  /// Hard cap on the number of primes tried; 0 means "auto": enough
  /// primes that the CRT modulus provably covers the worst-case RREF
  /// entry size for the given matrix (then reconstruction failure implies
  /// a logic error, and the exact fallback still guards the result).
  std::size_t max_primes = 0;
  /// When set, primes are drawn from this list (in order) instead of the
  /// built-in 62-bit prime sequence. Entries must be odd primes < 2^62.
  const std::vector<std::uint64_t>* primes = nullptr;
  /// Parallelism for TryModularRref's fan-out stages — the per-prime
  /// eliminations, the lift's per-entry rational reconstructions, and the
  /// rows of the exact verification certificate (which dominates the cost
  /// on large matrices): 0 uses the global ThreadPool's full width, 1
  /// forces the serial path, other values cap the worker fan-out. An
  /// explicit value is always honored; auto mode (0) keeps matrices under
  /// 64 cells serial, where the fan-out handshake costs more than it
  /// saves. The
  /// result is bit-identical at every setting — primes are eliminated in
  /// batches but *folded* (consensus signature, CRT accumulation, lift
  /// attempts) strictly in prime order, exactly the sequence the serial
  /// path executes, and the lift/verify stages are pure per-entry/per-row
  /// functions of that fold's state. The default comes from the active
  /// TuningProfile (stock profile: 0 = auto); assigning the field
  /// overrides the profile for this call.
  std::size_t num_threads = Tuning().modular_num_threads;
  /// Number of *fresh* primes — disjoint from every prime folded into the
  /// reconstruction modulus — that the verification stage screens a lifted
  /// candidate against before the exact rational pass runs (0 disables the
  /// screen). A nonzero residual mod any usable fresh prime certifies the
  /// candidate wrong in word-size arithmetic; the exact pass runs only
  /// when every screen passes, turning it into a last-mile confirmation
  /// instead of the rejection workhorse. Freshness is what gives the
  /// screen power: the reconstruction primes satisfy the residual
  /// identities by CRT construction, so screening against them is vacuous.
  std::size_t verify_precheck_primes = 2;
  /// When set, pre-check primes are drawn from this list (in order)
  /// instead of the built-in sequence, with NO disjointness filtering —
  /// the test seam for forcing adversarial screens (e.g. re-using a
  /// reconstruction prime so a bad candidate sails through the pre-check
  /// and only the exact pass can reject it). Entries that divide a
  /// denominator are skipped either way.
  const std::vector<std::uint64_t>* verify_primes = nullptr;
  /// Dimension at which TryModularInverse switches from per-prime
  /// inversion + CRT to Dixon p-adic lifting (one inversion mod a single
  /// prime, then digit lifting with word-size matrix–vector products).
  /// Measured on the 1-core reference host, CRT stays 1.2–1.4× ahead of
  /// Dixon through n = 40 at 32–256-bit entries (the shared
  /// reconstruction/verification tail dominates before Dixon's cheaper
  /// per-prime work can pay off — see BENCH_linalg.json), so the default
  /// keeps practical sizes on the CRT path; Dixon's per-column fan-out
  /// scales better with cores, so multicore deployments inverting very
  /// large matrices can lower this — which is exactly what a bagdet_tune
  /// profile does: the default reads the active TuningProfile (stock
  /// profile: 64, the 1-core measurement). Tests force the Dixon path
  /// with 1; SIZE_MAX disables it. Assigning the field overrides the
  /// profile for this call.
  std::size_t dixon_min_dim = Tuning().dixon_min_dim;
  /// When non-null, the driver accumulates work counters here (see
  /// ModularStats). Not reset on entry; callers zero it themselves.
  ModularStats* stats = nullptr;
};

/// First `count` primes of the built-in sequence (largest primes below
/// 2^62, descending), extending the table on demand.
const std::vector<std::uint64_t>& ModularPrimes(std::size_t count);

/// Multi-modular RREF with certified rational reconstruction. Returns the
/// exact reduced row echelon form (identical to ReduceToRrefExact) or
/// std::nullopt when verification never succeeds within the prime budget.
std::optional<Rref> TryModularRref(const Mat& m,
                                   const ModularOptions& options = {});

/// Outcome of a governed driver run. `rref` can be disengaged with an ok
/// status (the driver declined within budget — callers fall back to the
/// exact path exactly as with TryModularRref) or because a limit tripped
/// (status carries the kernel/bytes/elapsed of the trip).
struct GovernedRref {
  ExecStatus status;
  std::optional<Rref> rref;
};

/// TryModularRref under `exec`: the per-prime fan-out, CRT fold, lift and
/// verification stages all checkpoint against the context's deadline,
/// cancellation token, and memory budget, and a trip is returned as a
/// typed status instead of escaping as an exception. Bit-identical to
/// TryModularRref whenever no limit trips.
GovernedRref TryModularRrefGoverned(const Mat& m, ExecContext& exec,
                                    const ModularOptions& options = {});

/// Freivalds-style modular screen of an RREF candidate: evaluates the
/// residual identities of the exact certificate — every row of `a` equals
/// the combination of candidate pivot rows weighted by its own
/// pivot-column entries — mod each prime in `primes`. Returns false only
/// on a *certified* mismatch (some residual is nonzero mod a usable
/// prime, hence nonzero over Q). Primes dividing any denominator of `a`
/// or the candidate are unusable and skipped. `true` means "consistent
/// mod every usable prime", which is NOT a proof: callers must still run
/// the exact pass before returning the candidate, and must draw `primes`
/// disjoint from the reconstruction modulus for the screen to have any
/// rejection power (see ModularOptions::verify_precheck_primes).
bool ModularResidualPreCheck(const Mat& a, const Rref& cand,
                             const std::vector<std::uint64_t>& primes);

/// Certified multi-modular inverse of a square rational matrix. Two
/// strategies share a verification tail: per-prime Gauss–Jordan inversion
/// + CRT residue accumulation + per-column rational reconstruction below
/// ModularOptions::dixon_min_dim, and Dixon p-adic lifting (one inversion
/// mod a single prime, then per-column digit lifting with word-size
/// matrix–vector products and minor-bounded BigInt residual updates)
/// at or above it. Every candidate passes the fresh-prime residual screen
/// and then an exact A·A⁻¹ = I check (per-column, denominator-cleared
/// integer arithmetic) before being returned, so results are bit-for-bit
/// identical to InverseExact. Returns std::nullopt when the matrix is not
/// square, appears singular mod every probed prime (the exact fallback
/// settles it), or verification never succeeds within the prime budget.
std::optional<Mat> TryModularInverse(const Mat& m,
                                     const ModularOptions& options = {});

/// Single-prime rank probe. rank_p(A) <= rank_Q(A) for every prime that
/// does not divide a denominator, so the returned value is a *certified
/// lower bound* on the exact rank — and when it reaches min(rows, cols)
/// the exact rank is known without any exact arithmetic. Returns
/// std::nullopt when no usable prime is found (denominators vanish).
std::optional<std::size_t> ModularRankLowerBound(
    const Mat& m, const ModularOptions& options = {});

/// Single-prime nonsingularity probe for a square matrix: det(A) mod p
/// being nonzero certifies det(A) != 0. Returns true on certificate,
/// std::nullopt when inconclusive (det vanishes mod the probed primes —
/// either A is singular or the primes are unlucky).
std::optional<bool> ModularNonsingularProbe(const Mat& m,
                                            const ModularOptions& options = {});

/// Fraction-free Bareiss determinant: clears row denominators, runs
/// two-step-exact-division elimination over Z, and rescales. Intermediate
/// values are bounded by minors of the cleared matrix — no rational
/// normalization churn. Exact for every input; the preferred path for the
/// dense-integer matrices the pipeline produces.
Rational DeterminantBareiss(const Mat& m);

}  // namespace bagdet

#endif  // BAGDET_LINALG_MODULAR_SOLVE_H_
