#include "linalg/matrix.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bagdet {

bool Vec::IsZero() const {
  for (const Rational& e : entries_) {
    if (!e.IsZero()) return false;
  }
  return true;
}

Vec Vec::operator-() const {
  Vec result = *this;
  for (Rational& e : result.entries_) e = -e;
  return result;
}

Vec& Vec::operator+=(const Vec& other) {
  if (size() != other.size()) throw std::invalid_argument("Vec: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) entries_[i] += other.entries_[i];
  return *this;
}

Vec& Vec::operator-=(const Vec& other) {
  if (size() != other.size()) throw std::invalid_argument("Vec: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) entries_[i] -= other.entries_[i];
  return *this;
}

Vec& Vec::operator*=(const Rational& scalar) {
  for (Rational& e : entries_) e *= scalar;
  return *this;
}

Rational Vec::Dot(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("Vec: size mismatch");
  Rational sum;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

Vec Vec::Hadamard(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("Vec: size mismatch");
  Vec result(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) result[i] = a[i] * b[i];
  return result;
}

bool Vec::IsNonNegative() const {
  for (const Rational& e : entries_) {
    if (e.IsNegative()) return false;
  }
  return true;
}

bool Vec::IsIntegral() const {
  for (const Rational& e : entries_) {
    if (!e.IsInteger()) return false;
  }
  return true;
}

BigInt Vec::CommonDenominator() const {
  BigInt lcm(1);
  for (const Rational& e : entries_) {
    const BigInt& d = e.denominator();
    BigInt gcd = BigInt::Gcd(lcm, d);
    lcm = lcm / gcd * d;
  }
  return lcm;
}

std::string Vec::ToString() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < size(); ++i) {
    if (i != 0) os << ", ";
    os << entries_[i];
  }
  os << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Vec& v) {
  return os << v.ToString();
}

Mat::Mat(std::initializer_list<std::initializer_list<Rational>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  entries_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) throw std::invalid_argument("Mat: ragged rows");
    for (const Rational& e : row) entries_.push_back(e);
  }
}

Mat Mat::Identity(std::size_t n) {
  Mat result(n, n);
  for (std::size_t i = 0; i < n; ++i) result.At(i, i) = Rational(1);
  return result;
}

Vec Mat::Row(std::size_t r) const {
  Vec result(cols_);
  for (std::size_t c = 0; c < cols_; ++c) result[c] = At(r, c);
  return result;
}

Vec Mat::Col(std::size_t c) const {
  Vec result(rows_);
  for (std::size_t r = 0; r < rows_; ++r) result[r] = At(r, c);
  return result;
}

void Mat::SetRow(std::size_t r, const Vec& row) {
  if (row.size() != cols_) throw std::invalid_argument("Mat: row size mismatch");
  for (std::size_t c = 0; c < cols_; ++c) At(r, c) = row[c];
}

void Mat::SwapRows(std::size_t a, std::size_t b) {
  if (a == b) return;
  std::swap_ranges(entries_.begin() + a * cols_,
                   entries_.begin() + (a + 1) * cols_,
                   entries_.begin() + b * cols_);
}

Mat Mat::Transposed() const {
  Mat result(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) result.At(c, r) = At(r, c);
  }
  return result;
}

Vec Mat::Apply(const Vec& v) const {
  if (v.size() != cols_) throw std::invalid_argument("Mat: apply size mismatch");
  Vec result(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Rational sum;
    for (std::size_t c = 0; c < cols_; ++c) sum += At(r, c) * v[c];
    result[r] = sum;
  }
  return result;
}

Mat Mat::Multiply(const Mat& other) const {
  if (other.rows_ != cols_) throw std::invalid_argument("Mat: mul size mismatch");
  Mat result(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Rational& a = At(r, k);
      if (a.IsZero()) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        result.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return result;
}

Mat Mat::FromColumns(const std::vector<Vec>& columns) {
  if (columns.empty()) return Mat();
  Mat result(columns[0].size(), columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].size() != result.rows()) {
      throw std::invalid_argument("Mat: ragged columns");
    }
    for (std::size_t r = 0; r < result.rows(); ++r) {
      result.At(r, c) = columns[c][r];
    }
  }
  return result;
}

Mat Mat::FromRows(const std::vector<Vec>& rows) {
  if (rows.empty()) return Mat();
  Mat result(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) result.SetRow(r, rows[r]);
  return result;
}

std::string Mat::ToString() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c != 0) os << ", ";
      os << At(r, c);
    }
    os << (r + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Mat& m) {
  return os << m.ToString();
}

}  // namespace bagdet
