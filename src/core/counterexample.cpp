#include "core/counterexample.h"

#include <stdexcept>

#include "linalg/cone.h"
#include "linalg/gauss.h"

namespace bagdet {

namespace {

/// Entrywise t^z(i) for an integer vector z (Definition 48(3), restricted
/// to the integer exponents the proof of Lemma 56 needs for rationality).
Vec PowVector(const Rational& t, const Vec& z) {
  Vec result(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    if (!z[i].IsInteger()) {
      throw std::logic_error("PowVector: non-integer exponent");
    }
    result[i] = Rational::Pow(t, z[i].numerator().ToInt64());
  }
  return result;
}

}  // namespace

BagCounterexample SynthesizeCounterexample(const InstanceAnalysis& analysis,
                                           const GoodBasis& basis) {
  const std::size_t k = analysis.basis_queries.size();
  BagCounterexample result;
  result.basis_structures = basis.structures;
  result.evaluation_matrix = basis.evaluation;

  // Fact 5: integer z with ⟨z, v⃗⟩ = 0 for all v ∈ V and ⟨z, q⃗⟩ ≠ 0.
  std::optional<Vec> z =
      OrthogonalWitness(analysis.view_vectors, analysis.query_vector);
  if (!z.has_value()) {
    throw std::logic_error(
        "SynthesizeCounterexample: query vector lies in the view span");
  }
  result.z = std::move(*z);

  // The cone C = M(R^k_{>=0}) of Definition 52; nonsingularity of the good
  // basis makes it simplicial with nonempty interior (Corollary 8).
  SimplicialCone cone(basis.evaluation);

  // Interior point p = M·𝟙.
  Vec ones(k);
  for (std::size_t i = 0; i < k; ++i) ones[i] = Rational(1);
  Vec p = cone.InteriorPoint();

  // Lemma 57: walk t toward 1 until p′ = t^z ∘ p falls back inside C.
  // Continuity at t = 1 (coordinates (𝟙) are strictly positive)
  // guarantees termination.
  Vec alpha_prime;
  Rational t;
  for (std::int64_t j = 1;; ++j) {
    t = Rational(1) + Rational(BigInt(1), BigInt::Pow(BigInt(2), j));
    Vec p_prime = Vec::Hadamard(PowVector(t, result.z), p);
    alpha_prime = cone.Coordinates(p_prime);
    if (alpha_prime.IsNonNegative()) break;
    if (j > 4096) {
      throw std::logic_error(
          "SynthesizeCounterexample: perturbation search failed to converge");
    }
  }
  result.t = t;

  // Lemma 55: clear denominators so both coordinate vectors are natural.
  Rational c_prime{alpha_prime.CommonDenominator()};
  result.coeffs_d = ones * c_prime;
  result.coeffs_d_prime = alpha_prime * c_prime;

  auto build = [&](const Vec& coeffs) {
    std::vector<StructureExpr> terms;
    for (std::size_t i = 0; i < k; ++i) {
      terms.push_back(
          StructureExpr::Scalar(coeffs[i].numerator(), basis.structures[i]));
    }
    return StructureExpr::Sum(std::move(terms),
                              analysis.query.schema_ptr());
  };
  result.d = build(result.coeffs_d);
  result.d_prime = build(result.coeffs_d_prime);
  return result;
}

}  // namespace bagdet
