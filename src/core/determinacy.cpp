#include "core/determinacy.h"

#include <sstream>
#include <stdexcept>
#include <string>

#include "core/basis.h"
#include "core/counterexample.h"
#include "hom/hom.h"
#include "hom/symbolic.h"
#include "linalg/gauss.h"

namespace bagdet {

namespace {

void CheckQueryUsable(const ConjunctiveQuery& query, const Schema& schema) {
  if (!query.IsBoolean()) {
    throw std::invalid_argument("AnalyzeInstance: query '" + query.name() +
                                "' is not boolean");
  }
  if (query.schema() != schema) {
    throw std::invalid_argument("AnalyzeInstance: query '" + query.name() +
                                "' uses a different schema");
  }
  for (const QueryAtom& atom : query.atoms()) {
    if (atom.args.empty()) {
      throw std::invalid_argument(
          "AnalyzeInstance: query '" + query.name() + "' uses nullary atom " +
          query.schema().Name(atom.relation) +
          "(); the Theorem-3 procedure requires atoms of arity >= 1 "
          "(see DESIGN.md)");
    }
  }
}

/// A cleared-denominator exponent as sign + checked uint64 magnitude.
struct SignedExponent {
  bool negative = false;
  std::uint64_t magnitude = 0;
};

/// Range-checks a BigInt exponent before it is cast for BigInt::Pow. A
/// pathological common denominator (or exponent scale) must fail loudly
/// here instead of wrapping through an unchecked uint64 cast.
SignedExponent CheckedExponent(const BigInt& value, const char* context) {
  if (!value.FitsInt64()) {
    throw std::invalid_argument(
        std::string(context) + ": exponent " + value.ToString() +
        " does not fit in a signed 64-bit integer (pathological witness "
        "denominators are not supported)");
  }
  std::int64_t e = value.ToInt64();
  if (e >= 0) return {false, static_cast<std::uint64_t>(e)};
  // |INT64_MIN| overflows int64, so bump through e + 1.
  return {true, static_cast<std::uint64_t>(-(e + 1)) + 1};
}

/// The common denominator c is used as a power and as a root index: it must
/// be strictly positive and fit in uint64 via int64.
std::uint64_t CheckedCommonDenominator(const BigInt& value,
                                       const char* context) {
  SignedExponent c = CheckedExponent(value, context);
  if (c.negative || c.magnitude == 0) {
    throw std::invalid_argument(std::string(context) +
                                ": common denominator " + value.ToString() +
                                " is not strictly positive");
  }
  return c.magnitude;
}

}  // namespace

InstanceAnalysis AnalyzeInstance(std::vector<ConjunctiveQuery> views,
                                 ConjunctiveQuery query,
                                 std::shared_ptr<HomCache> shared_cache) {
  InstanceAnalysis analysis;
  const Schema& schema = query.schema();
  CheckQueryUsable(query, schema);
  for (const ConjunctiveQuery& view : views) CheckQueryUsable(view, schema);
  analysis.views = std::move(views);
  analysis.query = std::move(query);
  if (shared_cache != nullptr) {
    // Persistent serving mode: intern into the caller's fleet-wide pool and
    // memoize counts in its cache. Downstream content is identical to the
    // private-pool path (only the ref values differ), so verdicts and
    // certificates cannot depend on what other requests populated.
    analysis.pool = shared_cache->pool_ptr();
    analysis.hom_cache = std::move(shared_cache);
  } else {
    analysis.pool = std::make_shared<StructurePool>();
    analysis.hom_cache = std::make_shared<HomCache>(analysis.pool);
  }

  // Definition 25: V = { v : q ⊆set v }, i.e. hom(v, q) ≠ ∅.
  for (std::size_t i = 0; i < analysis.views.size(); ++i) {
    if (IsContainedSetSemantics(analysis.query, analysis.views[i])) {
      analysis.relevant_views.push_back(i);
    }
  }

  // Definition 27: W = components of Σ_{v ∈ V ∪ {q}} v up to isomorphism.
  // Canonical-form interning replaces the seed path's pairwise IsIsomorphic
  // scan: a component is known iff its pool ref already has a basis index.
  // ComponentRefs memoizes the decomposition per frozen body, reusing the
  // certificates cached on the body itself.
  StructurePool& pool = *analysis.pool;
  HomCache& cache = *analysis.hom_cache;
  std::vector<std::size_t> index_of_ref;  // ref → basis index (dense refs).
  constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);
  auto add_components = [&](const Structure& frozen) {
    for (StructureRef ref : cache.ComponentRefs(frozen)) {
      if (index_of_ref.size() <= ref) index_of_ref.resize(ref + 1, kNoIndex);
      if (index_of_ref[ref] != kNoIndex) continue;
      index_of_ref[ref] = analysis.basis_queries.size();
      analysis.basis_queries.push_back(pool.At(ref));
      analysis.basis_refs.push_back(ref);
    }
  };
  add_components(analysis.query.FrozenBody());
  for (std::size_t i : analysis.relevant_views) {
    add_components(analysis.views[i].FrozenBody());
  }

  // Definition 29: multiplicity vectors over W, again by interned ref.
  auto vectorize = [&](const Structure& frozen) {
    Vec v(analysis.basis_queries.size());
    for (StructureRef ref : cache.ComponentRefs(frozen)) {
      if (ref >= index_of_ref.size() || index_of_ref[ref] == kNoIndex) {
        throw std::logic_error(
            "AnalyzeInstance: component missing from the interned basis");
      }
      v[index_of_ref[ref]] += Rational(1);
    }
    return v;
  };
  analysis.query_vector = vectorize(analysis.query.FrozenBody());
  for (std::size_t i : analysis.relevant_views) {
    analysis.view_vectors.push_back(vectorize(analysis.views[i].FrozenBody()));
  }
  return analysis;
}

DeterminacyResult DecideBagDeterminacy(std::vector<ConjunctiveQuery> views,
                                       ConjunctiveQuery query,
                                       const DeterminacyOptions& options) {
  DeterminacyResult result;
  result.analysis = AnalyzeInstance(std::move(views), std::move(query),
                                    options.shared_hom_cache);
  // Per-request budget knobs only apply to a private cache: a shared one is
  // configured once by its owner and must not be resized mid-stream.
  if (options.shared_hom_cache == nullptr) {
    if (options.hom_cache_max_entries != 0) {
      result.analysis.hom_cache->set_max_entries(
          options.hom_cache_max_entries);
    }
    if (options.hom_cache_max_bytes != 0) {
      result.analysis.hom_cache->set_max_bytes(options.hom_cache_max_bytes);
    }
  }

  // Main Lemma 31: V0 ⟶bag q ⇔ q⃗ ∈ span{v⃗ : v ∈ V}.
  SpanMembership span = TestSpanMembership(result.analysis.view_vectors,
                                           result.analysis.query_vector);
  result.determined = span.in_span;
  if (span.in_span) {
    DeterminacyWitness witness;
    witness.view_indices = result.analysis.relevant_views;
    witness.exponents = span.coefficients;
    result.witness = std::move(witness);
    return result;
  }
  if (options.want_counterexample) {
    // Typed outcome instead of an exception: a distinguisher search that
    // exhausts its bounds leaves the (valid) NOT-determined verdict in
    // place with exec_status recording why the certificate is missing.
    GoodBasisOutcome basis = TryBuildGoodBasis(result.analysis,
                                               options.distinguisher);
    if (basis.basis.has_value()) {
      result.counterexample =
          SynthesizeCounterexample(result.analysis, *basis.basis);
    } else {
      result.exec_status = basis.status;
    }
  }
  return result;
}

GovernedAnalysis AnalyzeInstanceGoverned(std::vector<ConjunctiveQuery> views,
                                         ConjunctiveQuery query,
                                         ExecContext& exec) {
  GovernedAnalysis out;
  std::optional<InstanceAnalysis> analysis =
      RunGoverned(exec, &out.status, [&] {
        return AnalyzeInstance(std::move(views), std::move(query));
      });
  if (analysis.has_value()) out.analysis = std::move(*analysis);
  return out;
}

GovernedDecision DecideBagDeterminacyGoverned(
    std::vector<ConjunctiveQuery> views, ConjunctiveQuery query,
    const DeterminacyOptions& options, ExecContext& exec) {
  GovernedDecision out;
  std::optional<DeterminacyResult> result =
      RunGoverned(exec, &out.status, [&] {
        return DecideBagDeterminacy(std::move(views), std::move(query),
                                    options);
      });
  if (result.has_value()) out.result = std::move(*result);
  return out;
}

bool CheckWitnessOnStructure(const InstanceAnalysis& analysis,
                             const DeterminacyWitness& witness,
                             const Structure& data) {
  // Route every count through the pipeline's memoized counter when the
  // analysis carries one (repeated checks against the same data, or data
  // sharing components, then cost one count per isomorphism class).
  HomCache* cache = analysis.hom_cache.get();
  auto count_on_data = [&](const ConjunctiveQuery& cq) {
    return cache != nullptr ? cache->Count(cq.FrozenBody(), data)
                            : cq.CountHomomorphisms(data);
  };
  BigInt q_count = count_on_data(analysis.query);
  std::vector<BigInt> view_counts;
  for (std::size_t index : witness.view_indices) {
    view_counts.push_back(count_on_data(analysis.views[index]));
  }
  for (const BigInt& count : view_counts) {
    // Lemma 31 (⇐), Case 1 / Observation 26: a vanishing relevant view
    // forces q(D) = 0.
    if (count.IsZero()) return q_count.IsZero();
  }
  // Case 2: q(D)^c · Π_{α_j < 0} v_j(D)^{c·|α_j|} = Π_{α_j > 0} v_j(D)^{c·α_j}
  // where c clears the denominators of the rational exponents α.
  BigInt c = witness.exponents.CommonDenominator();
  Rational c_rat{c};
  BigInt lhs = BigInt::Pow(
      q_count, CheckedCommonDenominator(c, "CheckWitnessOnStructure"));
  BigInt rhs(1);
  for (std::size_t j = 0; j < view_counts.size(); ++j) {
    Rational scaled = witness.exponents[j] * c_rat;
    SignedExponent e =
        CheckedExponent(scaled.numerator(), "CheckWitnessOnStructure");
    if (!e.negative) {
      rhs *= BigInt::Pow(view_counts[j], e.magnitude);
    } else {
      lhs *= BigInt::Pow(view_counts[j], e.magnitude);
    }
  }
  return lhs == rhs;
}

BigInt AnswerFromViewCounts(const DeterminacyWitness& witness,
                            const std::vector<BigInt>& counts) {
  if (counts.size() != witness.view_indices.size()) {
    throw std::invalid_argument("AnswerFromViewCounts: wrong count arity");
  }
  for (const BigInt& count : counts) {
    if (count.IsNegative()) {
      throw std::invalid_argument("AnswerFromViewCounts: negative count");
    }
    if (count.IsZero()) return BigInt(0);  // Observation 26.
  }
  // q(D)^c = Π_{α_j > 0} v_j^{c·α_j} / Π_{α_j < 0} v_j^{c·|α_j|} with c
  // clearing denominators; extract the exact c-th root at the end.
  BigInt c = witness.exponents.CommonDenominator();
  const std::uint64_t c_exp =
      CheckedCommonDenominator(c, "AnswerFromViewCounts");
  Rational c_rat{c};
  BigInt numerator(1);
  BigInt denominator(1);
  for (std::size_t j = 0; j < counts.size(); ++j) {
    Rational scaled = witness.exponents[j] * c_rat;
    SignedExponent e =
        CheckedExponent(scaled.numerator(), "AnswerFromViewCounts");
    if (!e.negative) {
      numerator *= BigInt::Pow(counts[j], e.magnitude);
    } else {
      denominator *= BigInt::Pow(counts[j], e.magnitude);
    }
  }
  BigInt quotient, remainder;
  BigInt::DivMod(numerator, denominator, &quotient, &remainder);
  if (!remainder.IsZero()) {
    throw std::invalid_argument(
        "AnswerFromViewCounts: counts inconsistent with the witness "
        "(non-integral power product)");
  }
  BigInt::RootResult root = BigInt::KthRoot(quotient, c_exp);
  if (!root.exact) {
    throw std::invalid_argument(
        "AnswerFromViewCounts: counts inconsistent with the witness "
        "(power product is not a perfect power)");
  }
  return root.root;
}

std::optional<std::string> VerifyCounterexample(
    const InstanceAnalysis& analysis,
    const BagCounterexample& counterexample) {
  HomCache* cache = analysis.hom_cache.get();
  for (std::size_t i = 0; i < analysis.views.size(); ++i) {
    const ConjunctiveQuery& view = analysis.views[i];
    BigInt on_d =
        CountHomsSymbolicAny(view.FrozenBody(), counterexample.d, cache);
    BigInt on_d_prime =
        CountHomsSymbolicAny(view.FrozenBody(), counterexample.d_prime, cache);
    if (on_d != on_d_prime) {
      return "view '" + view.name() + "' (index " + std::to_string(i) +
             ") differs: " + on_d.ToString() + " vs " + on_d_prime.ToString();
    }
  }
  BigInt q_on_d = CountHomsSymbolicAny(analysis.query.FrozenBody(),
                                       counterexample.d, cache);
  BigInt q_on_d_prime = CountHomsSymbolicAny(analysis.query.FrozenBody(),
                                             counterexample.d_prime, cache);
  if (q_on_d == q_on_d_prime) {
    return "query agrees on both structures (" + q_on_d.ToString() +
           "); not a counterexample";
  }
  return std::nullopt;
}

std::string DeterminacyResult::Summary() const {
  std::ostringstream os;
  os << "instance: q = " << analysis.query.ToString() << "; |V0| = "
     << analysis.views.size() << ", |V| = " << analysis.relevant_views.size()
     << ", k = |W| = " << analysis.basis_queries.size() << "\n";
  if (determined) {
    os << "V0 -->bag q: DETERMINED. Witness exponents (Lemma 31): q(D) = ";
    if (witness->view_indices.empty()) {
      os << "1";
    } else {
      for (std::size_t j = 0; j < witness->view_indices.size(); ++j) {
        if (j != 0) os << " * ";
        os << analysis.views[witness->view_indices[j]].name() << "(D)^("
           << witness->exponents[j] << ")";
      }
    }
    os << " when all listed views are positive; otherwise q(D) = 0.";
  } else {
    os << "V0 -/->bag q: NOT determined.";
    if (counterexample.has_value()) {
      os << " Counterexample over basis S of size "
         << counterexample->basis_structures.size()
         << ": D has coordinates " << counterexample->coeffs_d.ToString()
         << ", D' has coordinates "
         << counterexample->coeffs_d_prime.ToString()
         << ", perturbation t = " << counterexample->t
         << ", |dom(D)| = " << counterexample->d.DomainSize().ToString()
         << ", |dom(D')| = " << counterexample->d_prime.DomainSize().ToString()
         << ".";
    } else if (!exec_status.ok()) {
      os << " Counterexample unavailable: " << exec_status.ToString() << ".";
    }
  }
  return os.str();
}

}  // namespace bagdet
