// bagdet: distinguishing structures (Step 1 of Lemma 40).
//
// The paper invokes Lemma 43 (Lovász) purely existentially: for
// non-isomorphic G, G′ there is some H with |hom(G,H)| ≠ |hom(G′,H)|.
// We make this step constructive. Writing sur(G, H) for the number of
// vertex-surjective homomorphisms, inclusion–exclusion over induced
// substructures gives
//
//   sur(G, H) = Σ_{Y ⊆ dom(H)} (-1)^{|dom(H)|-|Y|} · hom(G, H[Y]),
//
// so if hom(G, ·) and hom(G′, ·) agree on every induced substructure of G
// and of G′, then sur(G, G′) = sur(G′, G′) ≥ 1 and sur(G′, G) =
// sur(G, G) ≥ 1; two vertex-bijective homomorphisms in opposite directions
// between finite structures compose to a bijective endomorphism, which is
// an automorphism (its image of the fact set has the same finite
// cardinality), forcing G ≅ G′. Hence for non-isomorphic inputs some
// induced substructure of one of them is a distinguisher — a complete,
// finite candidate family of size ≤ 2^|dom(G)| + 2^|dom(G′)|.

#ifndef BAGDET_CORE_DISTINGUISHER_H_
#define BAGDET_CORE_DISTINGUISHER_H_

#include <optional>

#include "structs/structure.h"

namespace bagdet {

class HomCache;

struct DistinguisherOptions {
  /// Upper bound on the domain size for the (complete) induced-substructure
  /// sweep; above it only the cheap candidates and random search run.
  /// Effective bound is min(this, 63): the sweep addresses subsets through
  /// a 64-bit mask.
  std::size_t max_subset_domain = 16;
  /// Random fallback: number of attempts and maximal random domain size.
  int random_attempts = 512;
  std::size_t max_random_domain = 4;
  /// RNG seed for the fallback.
  std::uint64_t seed = 17;
  /// Optional memoized hom counter (hom/hom_cache.h). When set, the
  /// isomorphism pre-check uses canonical-key interning and every candidate
  /// count is cached — candidates repeat heavily across the pairwise Step-1
  /// loop of BuildGoodBasis. Not owned; must outlive the search.
  HomCache* hom_cache = nullptr;
  /// Candidate-size cutoff for routing sweep candidates through the cache:
  /// only candidates with at most this many domain elements are
  /// canonicalized and retained in the cache's StructurePool. Small
  /// candidates repeat across pairs and amortize their labeling cost;
  /// large one-shot candidates (automorphism-sparse inputs distinguishing
  /// late in the sweep) would pay canonical labeling plus permanent pool
  /// retention for a count that is never reused — they use transient
  /// counts exactly like the seed path.
  std::size_t max_cached_candidate_domain = 10;
};

/// How a distinguisher search ended.
enum class DistinguisherOutcome {
  kFound = 0,       ///< `distinguisher` holds an H with the counts apart.
  kIsomorphic = 1,  ///< a ≅ b — no distinguisher exists.
  /// The inputs exceed max_subset_domain (so the complete sweep never ran)
  /// and the randomized fallback exhausted its attempts. Not an error: the
  /// caller decides whether to widen the bounds or surface a typed failure.
  /// Cannot happen for query-sized components within max_subset_domain.
  kBoundsExhausted = 2,
};

/// Result of SearchDistinguisher: `distinguisher` is engaged iff
/// `outcome == kFound`.
struct DistinguisherSearch {
  DistinguisherOutcome outcome = DistinguisherOutcome::kBoundsExhausted;
  std::optional<Structure> distinguisher;
};

/// Searches for a structure H with |hom(a, H)| ≠ |hom(b, H)|, reporting
/// bound exhaustion as a typed outcome instead of an exception (the
/// pipeline's governed entry points rely on this: no well-formed input may
/// escape AnalyzeInstance/DecideBagDeterminacy as a throw).
DistinguisherSearch SearchDistinguisher(
    const Structure& a, const Structure& b,
    const DistinguisherOptions& options = DistinguisherOptions());

/// Finds a structure H with |hom(a, H)| ≠ |hom(b, H)|.
/// Returns std::nullopt when a ≅ b (no such H exists) — and, if the inputs
/// exceed every search bound, throws std::runtime_error (cannot happen for
/// query-sized components within max_subset_domain). Thin wrapper over
/// SearchDistinguisher for callers that prefer the optional shape.
std::optional<Structure> FindDistinguisher(
    const Structure& a, const Structure& b,
    const DistinguisherOptions& options = DistinguisherOptions());

/// The induced substructure of `s` on the element subset encoded by `mask`
/// (bit i set = element i kept). Elements are renamed to 0..popcount-1 in
/// increasing order.
Structure InducedSubstructure(const Structure& s, std::uint64_t mask);

}  // namespace bagdet

#endif  // BAGDET_CORE_DISTINGUISHER_H_
