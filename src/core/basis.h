// bagdet: good basis construction (Lemma 40, Steps 1–4).
//
// Given the basis queries W = {w_1..w_k}, builds a set S = {s_1..s_k} of
// basis *structures* (as symbolic terms) that is
//   decent: v(s) = 0 for every v ∈ V0 \ V and s ∈ S   (Definition 35), and
//   good:   the evaluation matrix M(i,j) = w_i(s_j) is nonsingular
//           (Definition 38),
// following the paper's four steps:
//   1. S(1): for each pair w ≠ w′ ∈ W, a structure distinguishing their
//      hom counts (effective Lemma 43 — see distinguisher.h);
//   2. s(2) = Σ_i T^i s(1)_i with T larger than every entry of M_{S(1)},
//      making the counts w ↦ hom(w, s(2)) pairwise distinct (radix
//      argument, Observation 45);
//   3. s(3)_j = (s(2))^(j-1), giving a Vandermonde evaluation matrix,
//      nonsingular by Lemma 46;
//   4. s(4)_j = s(3)_j × q, which scales row i by w_i(q) > 0 and makes the
//      set decent (v(s′ × q) = v(s′) · v(q) and v(q) = 0 off V).

#ifndef BAGDET_CORE_BASIS_H_
#define BAGDET_CORE_BASIS_H_

#include <optional>
#include <vector>

#include "core/determinacy.h"
#include "util/exec_context.h"

namespace bagdet {

/// A good set of basis structures with its evaluation matrix.
struct GoodBasis {
  std::vector<StructureExpr> structures;  ///< s_1..s_k (Step-4 terms).
  Mat evaluation;  ///< M(i,j) = |hom(w_i, s_j)| — integral, nonsingular.

  /// Intermediate artifacts, exposed for tests and experiment binaries.
  std::vector<Structure> step1;  ///< S(1).
  BigInt radix;                  ///< T of Step 2.
  StructureExpr step2;           ///< s(2).
};

/// Outcome of TryBuildGoodBasis: `basis` is engaged iff `status.ok()`.
/// The only non-ok status on well-formed input is kResourceExhausted with
/// kernel "distinguisher" — the Step-1 search ran out of bounds (see
/// DistinguisherOutcome::kBoundsExhausted); widening
/// DistinguisherOptions::max_subset_domain resolves it.
struct GoodBasisOutcome {
  std::optional<GoodBasis> basis;
  ExecStatus status;
};

/// Builds a good basis for the analyzed instance (Lemma 40), reporting
/// distinguisher-bound exhaustion as a typed status instead of an
/// exception. Still throws std::logic_error on internal invariant
/// violations (a singular evaluation matrix after a successful search —
/// impossible by construction).
GoodBasisOutcome TryBuildGoodBasis(const InstanceAnalysis& analysis,
                                   const DistinguisherOptions& options);

/// Builds a good basis for the analyzed instance (Lemma 40). Throws
/// std::logic_error if the construction fails to produce a nonsingular
/// matrix (impossible if the distinguisher search succeeded) and
/// std::runtime_error when the distinguisher search exhausts its bounds
/// (wrapper over TryBuildGoodBasis for callers that prefer throwing).
GoodBasis BuildGoodBasis(const InstanceAnalysis& analysis,
                         const DistinguisherOptions& options);

}  // namespace bagdet

#endif  // BAGDET_CORE_BASIS_H_
