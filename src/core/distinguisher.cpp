#include "core/distinguisher.h"

#include <stdexcept>
#include <string>

#include "hom/hom.h"
#include "hom/hom_cache.h"
#include "structs/generator.h"
#include "util/exec_context.h"
#include "util/rng.h"

namespace bagdet {

Structure InducedSubstructure(const Structure& s, std::uint64_t mask) {
  if (s.DomainSize() > 64) {
    throw std::invalid_argument(
        "InducedSubstructure: domain has " + std::to_string(s.DomainSize()) +
        " elements; a 64-bit mask can only address 64 (the subset sweep "
        "does not apply — lower DistinguisherOptions::max_subset_domain)");
  }
  std::vector<Element> rename(s.DomainSize(), 0);
  std::size_t kept = 0;
  for (std::size_t e = 0; e < s.DomainSize(); ++e) {
    if (mask & (1ull << e)) rename[e] = static_cast<Element>(kept++);
  }
  Structure result(s.schema_ptr(), kept);
  for (RelationId r = 0; r < s.schema().NumRelations(); ++r) {
    for (const Tuple& t : s.Facts(r)) {
      bool inside = true;
      for (Element e : t) {
        if (!(mask & (1ull << e))) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
      Tuple renamed(t.size());
      for (std::size_t i = 0; i < t.size(); ++i) renamed[i] = rename[t[i]];
      result.AddFact(r, std::move(renamed));
    }
  }
  return result;
}

namespace {

bool Distinguishes(const Structure& a, const Structure& b,
                   const Structure& candidate,
                   const DistinguisherOptions& options,
                   bool candidate_already_interned = false) {
  // Sweep candidates above the interning threshold bypass the cache
  // entirely (transient counts, no canonicalization, no pool retention) —
  // see DistinguisherOptions::max_cached_candidate_domain. Tier-0
  // candidates (the inputs themselves) are exempt: the isomorphism
  // pre-check interned them already, so caching their counts is pure win.
  HomCache* cache = options.hom_cache;
  if (cache != nullptr &&
      (candidate_already_interned ||
       candidate.DomainSize() <= options.max_cached_candidate_domain)) {
    return cache->Count(a, candidate) != cache->Count(b, candidate);
  }
  return CountHoms(a, candidate) != CountHoms(b, candidate);
}

}  // namespace

DistinguisherSearch SearchDistinguisher(const Structure& a, const Structure& b,
                                        const DistinguisherOptions& options) {
  HomCache* cache = options.hom_cache;
  if (cache != nullptr
          ? cache->pool().Intern(a) == cache->pool().Intern(b)
          : IsIsomorphic(a, b)) {
    return {DistinguisherOutcome::kIsomorphic, std::nullopt};
  }
  // Tier 0: the structures themselves (frequent cheap winners).
  const bool interned = cache != nullptr;
  if (Distinguishes(a, b, a, options, interned)) {
    return {DistinguisherOutcome::kFound, a};
  }
  if (Distinguishes(a, b, b, options, interned)) {
    return {DistinguisherOutcome::kFound, b};
  }
  // Tier 1: the complete induced-substructure family (see header). The
  // sweep mask is 64-bit, so domains of 64+ elements fall through to the
  // random tier regardless of max_subset_domain.
  const std::size_t sweep_limit =
      options.max_subset_domain < 64 ? options.max_subset_domain : 63;
  for (const Structure* side : {&a, &b}) {
    if (side->DomainSize() > sweep_limit) continue;
    const std::uint64_t limit = 1ull << side->DomainSize();
    for (std::uint64_t mask = 0; mask < limit; ++mask) {
      ExecCheckPoint("distinguisher.sweep");
      Structure candidate = InducedSubstructure(*side, mask);
      if (Distinguishes(a, b, candidate, options)) {
        return {DistinguisherOutcome::kFound, std::move(candidate)};
      }
    }
    // Both sweeps completing without a hit is impossible for non-isomorphic
    // inputs (see the header's completeness argument), so reaching the end
    // of the second sweep indicates a bug.
  }
  if (a.DomainSize() <= sweep_limit && b.DomainSize() <= sweep_limit) {
    throw std::logic_error(
        "SearchDistinguisher: induced-substructure sweep found nothing for "
        "non-isomorphic structures (internal invariant violated)");
  }
  // Tier 2: randomized fallback for oversized inputs. Exhausting it is a
  // typed outcome, not an exception — callers own the policy.
  Rng rng(options.seed);
  for (int attempt = 0; attempt < options.random_attempts; ++attempt) {
    ExecCheckPoint("distinguisher.sweep");
    std::size_t domain = 1 + rng.Below(options.max_random_domain);
    Structure candidate = RandomStructure(a.schema_ptr(), domain, &rng);
    if (Distinguishes(a, b, candidate, options)) {
      return {DistinguisherOutcome::kFound, std::move(candidate)};
    }
  }
  return {DistinguisherOutcome::kBoundsExhausted, std::nullopt};
}

std::optional<Structure> FindDistinguisher(const Structure& a,
                                           const Structure& b,
                                           const DistinguisherOptions& options) {
  DistinguisherSearch search = SearchDistinguisher(a, b, options);
  if (search.outcome == DistinguisherOutcome::kBoundsExhausted) {
    throw std::runtime_error(
        "FindDistinguisher: inputs exceed max_subset_domain and random search "
        "failed; raise DistinguisherOptions::max_subset_domain");
  }
  return std::move(search.distinguisher);
}

}  // namespace bagdet
