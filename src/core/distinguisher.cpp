#include "core/distinguisher.h"

#include <stdexcept>

#include "hom/hom.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {

Structure InducedSubstructure(const Structure& s, std::uint64_t mask) {
  std::vector<Element> rename(s.DomainSize(), 0);
  std::size_t kept = 0;
  for (std::size_t e = 0; e < s.DomainSize(); ++e) {
    if (mask & (1ull << e)) rename[e] = static_cast<Element>(kept++);
  }
  Structure result(s.schema_ptr(), kept);
  for (RelationId r = 0; r < s.schema().NumRelations(); ++r) {
    for (const Tuple& t : s.Facts(r)) {
      bool inside = true;
      for (Element e : t) {
        if (!(mask & (1ull << e))) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
      Tuple renamed(t.size());
      for (std::size_t i = 0; i < t.size(); ++i) renamed[i] = rename[t[i]];
      result.AddFact(r, std::move(renamed));
    }
  }
  return result;
}

namespace {

bool Distinguishes(const Structure& a, const Structure& b,
                   const Structure& candidate) {
  return CountHoms(a, candidate) != CountHoms(b, candidate);
}

}  // namespace

std::optional<Structure> FindDistinguisher(const Structure& a,
                                           const Structure& b,
                                           const DistinguisherOptions& options) {
  if (IsIsomorphic(a, b)) return std::nullopt;
  // Tier 0: the structures themselves (frequent cheap winners).
  if (Distinguishes(a, b, a)) return a;
  if (Distinguishes(a, b, b)) return b;
  // Tier 1: the complete induced-substructure family (see header).
  for (const Structure* side : {&a, &b}) {
    if (side->DomainSize() > options.max_subset_domain) continue;
    const std::uint64_t limit = 1ull << side->DomainSize();
    for (std::uint64_t mask = 0; mask < limit; ++mask) {
      Structure candidate = InducedSubstructure(*side, mask);
      if (Distinguishes(a, b, candidate)) return candidate;
    }
    // Both sweeps completing without a hit is impossible for non-isomorphic
    // inputs (see the header's completeness argument), so reaching the end
    // of the second sweep indicates a bug.
  }
  if (a.DomainSize() <= options.max_subset_domain &&
      b.DomainSize() <= options.max_subset_domain) {
    throw std::logic_error(
        "FindDistinguisher: induced-substructure sweep found nothing for "
        "non-isomorphic structures (internal invariant violated)");
  }
  // Tier 2: randomized fallback for oversized inputs.
  Rng rng(options.seed);
  for (int attempt = 0; attempt < options.random_attempts; ++attempt) {
    std::size_t domain = 1 + rng.Below(options.max_random_domain);
    Structure candidate = RandomStructure(a.schema_ptr(), domain, &rng);
    if (Distinguishes(a, b, candidate)) return candidate;
  }
  throw std::runtime_error(
      "FindDistinguisher: inputs exceed max_subset_domain and random search "
      "failed; raise DistinguisherOptions::max_subset_domain");
}

}  // namespace bagdet
