// bagdet: counterexample synthesis (Lemmas 41, 55–57).
//
// Given q⃗ ∉ span{v⃗ : v ∈ V} and a good basis S, produces structures
// D, D′ ∈ span_ℕ(S) with equal view answers and different q-answers:
//   z  — an integer vector orthogonal to every v⃗ but not to q⃗ (Fact 5);
//   p  = M·𝟙, a rational point in the interior of the cone 𝒞 = M(R^k_{≥0})
//        (Corollary 8; interior because M is nonsingular and 𝟙 > 0);
//   t  — a rational ≠ 1 close enough to 1 that p′ = t^z ∘ p stays in 𝒞
//        (Lemma 57, found by halving t−1);
//   c′ — a denominator-clearing factor (Lemma 55), giving natural
//        coordinate vectors c′·M⁻¹p = c′·𝟙 and c′·M⁻¹p′.
// Then every v ∈ V satisfies v(D) = v(D′) because ⟨z, v⃗⟩ = 0 makes the
// answers differ by the factor t^⟨z,v⃗⟩ = 1, while q picks up t^⟨z,q⃗⟩ ≠ 1
// (Observation 49).

#ifndef BAGDET_CORE_COUNTEREXAMPLE_H_
#define BAGDET_CORE_COUNTEREXAMPLE_H_

#include "core/basis.h"
#include "core/determinacy.h"

namespace bagdet {

/// Synthesizes the counterexample. Preconditions: the analysis's query
/// vector is outside the span of the view vectors, and `basis` is good.
/// Throws std::logic_error when preconditions do not hold.
BagCounterexample SynthesizeCounterexample(const InstanceAnalysis& analysis,
                                           const GoodBasis& basis);

}  // namespace bagdet

#endif  // BAGDET_CORE_COUNTEREXAMPLE_H_
