#include "core/basis.h"

#include <stdexcept>

#include "hom/hom.h"
#include "hom/symbolic.h"
#include "linalg/gauss.h"

namespace bagdet {

GoodBasis BuildGoodBasis(const InstanceAnalysis& analysis,
                         const DistinguisherOptions& options) {
  const std::vector<Structure>& w = analysis.basis_queries;
  const std::size_t k = w.size();
  const auto schema = analysis.query.schema_ptr();
  GoodBasis basis;

  // Step 1: distinguishers for every pair. Duplicates are harmless but
  // wasteful, so skip candidates equal to an already-collected one.
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      std::optional<Structure> h = FindDistinguisher(w[i], w[j], options);
      if (!h.has_value()) {
        throw std::logic_error(
            "BuildGoodBasis: basis queries not pairwise non-isomorphic");
      }
      bool duplicate = false;
      for (const Structure& existing : basis.step1) {
        if (existing == *h) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) basis.step1.push_back(std::move(*h));
    }
  }

  // Step 2: T must exceed every |hom(w_i, s(1)_j)| so the counts become
  // distinct radix-T numerals (Observation 45).
  BigInt t_radix(2);
  for (const Structure& wi : w) {
    for (const Structure& s1 : basis.step1) {
      BigInt count = CountHoms(wi, s1);
      if (count >= t_radix) t_radix = count + BigInt(1);
    }
  }
  basis.radix = t_radix;
  std::vector<StructureExpr> terms;
  for (std::size_t j = 0; j < basis.step1.size(); ++j) {
    terms.push_back(StructureExpr::Scalar(
        BigInt::Pow(t_radix, static_cast<std::uint64_t>(j + 1)),
        StructureExpr::Base(basis.step1[j])));
  }
  basis.step2 = StructureExpr::Sum(std::move(terms), schema);

  // Steps 3 and 4: s_j = (s(2))^(j-1) × q.
  StructureExpr query_term = StructureExpr::Base(analysis.query.FrozenBody());
  for (std::size_t j = 0; j < k; ++j) {
    basis.structures.push_back(StructureExpr::Product(
        {StructureExpr::Power(basis.step2, static_cast<std::uint64_t>(j)),
         query_term},
        schema));
  }

  // Evaluation matrix M(i,j) = |hom(w_i, s_j)| via Lemma 4:
  //   |hom(w_i, s_j)| = |hom(w_i, s(2))|^j · |hom(w_i, q)|.
  basis.evaluation = Mat(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    BigInt base_count = CountHomsSymbolic(w[i], basis.step2);
    BigInt q_count = CountHoms(w[i], analysis.query.FrozenBody());
    BigInt power(1);
    for (std::size_t j = 0; j < k; ++j) {
      basis.evaluation.At(i, j) = Rational(power * q_count);
      power *= base_count;
    }
  }

  if (!IsNonsingular(basis.evaluation)) {
    throw std::logic_error(
        "BuildGoodBasis: evaluation matrix is singular (construction bug)");
  }
  return basis;
}

}  // namespace bagdet
