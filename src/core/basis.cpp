#include "core/basis.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "hom/hom.h"
#include "hom/hom_cache.h"
#include "hom/symbolic.h"
#include "linalg/gauss.h"
#include "linalg/modular_solve.h"

namespace bagdet {

GoodBasisOutcome TryBuildGoodBasis(const InstanceAnalysis& analysis,
                                   const DistinguisherOptions& options) {
  const std::vector<Structure>& w = analysis.basis_queries;
  const std::size_t k = w.size();
  const auto schema = analysis.query.schema_ptr();
  GoodBasisOutcome outcome;
  GoodBasis basis;

  // The pipeline's shared memoized counter; hand-built analyses (tests,
  // callers that fill InstanceAnalysis manually) get a private one.
  std::shared_ptr<HomCache> local_cache;
  HomCache* cache = analysis.hom_cache.get();
  if (cache == nullptr) {
    local_cache = std::make_shared<HomCache>();
    cache = local_cache.get();
  }
  DistinguisherOptions dist_options = options;
  if (dist_options.hom_cache == nullptr) dist_options.hom_cache = cache;

  // Refs of the basis queries in the cache's pool. AnalyzeInstance already
  // interned them; reuse its refs when they belong to this cache.
  std::vector<StructureRef> w_refs;
  if (cache == analysis.hom_cache.get() && analysis.basis_refs.size() == k) {
    w_refs = analysis.basis_refs;
  } else {
    w_refs.reserve(k);
    for (const Structure& wi : w) w_refs.push_back(cache->Intern(wi));
  }

  // Step 1: distinguishers for every pair, deduplicated by interned
  // canonical ref (isomorphic candidates have identical hom counts, so one
  // representative per class suffices — no pairwise equality scans).
  std::vector<StructureRef> step1_refs;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      DistinguisherSearch search = SearchDistinguisher(w[i], w[j], dist_options);
      if (search.outcome == DistinguisherOutcome::kIsomorphic) {
        throw std::logic_error(
            "BuildGoodBasis: basis queries not pairwise non-isomorphic");
      }
      if (search.outcome == DistinguisherOutcome::kBoundsExhausted) {
        outcome.status.code = ExecCode::kResourceExhausted;
        outcome.status.kernel = "distinguisher";
        return outcome;
      }
      StructureRef ref = cache->pool().Intern(std::move(*search.distinguisher));
      if (std::find(step1_refs.begin(), step1_refs.end(), ref) ==
          step1_refs.end()) {
        step1_refs.push_back(ref);
        basis.step1.push_back(cache->pool().At(ref));
      }
    }
  }

  // Step 2: T must exceed every |hom(w_i, s(1)_j)| so the counts become
  // distinct radix-T numerals (Observation 45). The k × |S(1)| counts are
  // independent — batch them through the cache's thread pool. They are
  // also exactly the leaf counts the evaluation matrix needs below, so the
  // batch doubles as a cache warm-up.
  std::vector<std::pair<StructureRef, StructureRef>> scan;
  scan.reserve(k * step1_refs.size());
  for (StructureRef wi : w_refs) {
    for (StructureRef s1 : step1_refs) scan.emplace_back(wi, s1);
  }
  BigInt t_radix(2);
  for (const BigInt& count : cache->BatchCountHoms(scan)) {
    if (count >= t_radix) t_radix = count + BigInt(1);
  }
  basis.radix = t_radix;
  std::vector<StructureExpr> terms;
  for (std::size_t j = 0; j < basis.step1.size(); ++j) {
    terms.push_back(StructureExpr::Scalar(
        BigInt::Pow(t_radix, static_cast<std::uint64_t>(j + 1)),
        StructureExpr::Base(basis.step1[j])));
  }
  basis.step2 = StructureExpr::Sum(std::move(terms), schema);

  // Steps 3 and 4: s_j = (s(2))^(j-1) × q.
  StructureExpr query_term = StructureExpr::Base(analysis.query.FrozenBody());
  for (std::size_t j = 0; j < k; ++j) {
    basis.structures.push_back(StructureExpr::Product(
        {StructureExpr::Power(basis.step2, static_cast<std::uint64_t>(j)),
         query_term},
        schema));
  }

  // Evaluation matrix M(i,j) = |hom(w_i, s_j)| via Lemma 4:
  //   |hom(w_i, s_j)| = |hom(w_i, s(2))|^j · |hom(w_i, q)|.
  // The symbolic evaluation's leaf counts were all warmed by the Step-2
  // batch, so each row costs only the BigInt radix arithmetic.
  basis.evaluation = Mat(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    BigInt base_count = CountHomsSymbolic(w[i], basis.step2, cache);
    BigInt q_count = cache->Count(w_refs[i], analysis.query.FrozenBody());
    BigInt power(1);
    for (std::size_t j = 0; j < k; ++j) {
      basis.evaluation.At(i, j) = Rational(power * q_count);
      power *= base_count;
    }
  }

  // Rank-growth check, modular first: a single word-size elimination over
  // Z/p certifies full rank (rank_p <= rank_Q) without touching the
  // radix-sized BigInt entries; only an inconclusive probe (unlucky prime)
  // pays the certified exact path.
  std::optional<std::size_t> rank_probe =
      ModularRankLowerBound(basis.evaluation);
  const bool full_rank = (rank_probe.has_value() && *rank_probe == k) ||
                         IsNonsingular(basis.evaluation);
  if (!full_rank) {
    throw std::logic_error(
        "BuildGoodBasis: evaluation matrix is singular (construction bug)");
  }
  outcome.basis = std::move(basis);
  return outcome;
}

GoodBasis BuildGoodBasis(const InstanceAnalysis& analysis,
                         const DistinguisherOptions& options) {
  GoodBasisOutcome outcome = TryBuildGoodBasis(analysis, options);
  if (!outcome.basis.has_value()) {
    throw std::runtime_error(
        "BuildGoodBasis: distinguisher search exhausted its bounds (" +
        outcome.status.ToString() +
        "); raise DistinguisherOptions::max_subset_domain");
  }
  return std::move(*outcome.basis);
}

}  // namespace bagdet
