// bagdet: bag-semantics determinacy of boolean conjunctive queries —
// the paper's main result (Theorem 3) as a decision procedure with
// certificates in both directions.
//
// Pipeline (Sections 4–7):
//   1. V  = { v ∈ V0 : q ⊆set v }                       (Definition 25)
//   2. W  = connected components of Σ_{v ∈ V∪{q}} v,
//           deduplicated up to isomorphism               (Definition 27)
//   3. vector representations v⃗, q⃗ over the basis W     (Definition 29)
//   4. V0 ⟶bag q  ⇔  q⃗ ∈ span_Q{ v⃗ : v ∈ V }            (Main Lemma 31)
//
// When determined, the span coefficients α certify it concretely:
//   q(D) = Π_j v_j(D)^α_j whenever all v_j(D) > 0, and q(D) = 0 otherwise
// (proof of Lemma 31 (⇐)). When not determined, an explicit pair of
// structures (D, D′) with equal view answers and different q-answers is
// synthesized per Sections 5–7 (as StructureExpr terms, since the good
// basis structures are astronomically large).

#ifndef BAGDET_CORE_DETERMINACY_H_
#define BAGDET_CORE_DETERMINACY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/distinguisher.h"
#include "hom/hom_cache.h"
#include "linalg/matrix.h"
#include "query/cq.h"
#include "structs/pool.h"
#include "structs/structure_expr.h"
#include "util/exec_context.h"

namespace bagdet {

/// Everything the decision procedure derives from an instance (V0, q).
struct InstanceAnalysis {
  std::vector<ConjunctiveQuery> views;  ///< V0, as given.
  ConjunctiveQuery query;               ///< q.

  /// Indices into `views` of V = { v ∈ V0 : q ⊆set v } (Definition 25).
  std::vector<std::size_t> relevant_views;

  /// W — the basis queries (Definition 27): pairwise non-isomorphic
  /// connected components of the frozen bodies of V ∪ {q}.
  std::vector<Structure> basis_queries;

  /// v⃗ for each member of `relevant_views` (Definition 29); dimension |W|.
  std::vector<Vec> view_vectors;

  /// q⃗.
  Vec query_vector;

  /// Canonical-form interning pool shared by the whole pipeline: every
  /// component of every frozen body is interned here, and `basis_queries[i]`
  /// is the representative of class `basis_refs[i]`.
  std::shared_ptr<StructurePool> pool;

  /// Memoized hom counter over `pool`, shared by BuildGoodBasis,
  /// FindDistinguisher and CheckWitnessOnStructure.
  std::shared_ptr<HomCache> hom_cache;

  /// Pool refs of `basis_queries`, index-aligned.
  std::vector<StructureRef> basis_refs;
};

/// Computes the analysis. Throws std::invalid_argument when q or a view is
/// not boolean, uses a nullary atom (the Theorem-3 machinery requires
/// components with nonempty domains; see DESIGN.md), or schemas differ.
///
/// `shared_cache` (optional) supplies a persistent HomCache — and with it
/// the StructurePool it wraps — owned by a long-lived caller such as
/// DeterminacyService: components intern into the shared pool and counts
/// memoize fleet-wide, so overlapping view sets across requests hit warm
/// entries instead of recounting. Both are thread-safe, so concurrent
/// analyses may share one cache. The analysis content (basis order,
/// vectors, verdict downstream) is bit-identical to the private-pool path
/// regardless of what else the shared pool already holds — only the
/// numeric StructureRef values differ. Null keeps the per-call behavior:
/// a fresh pool + cache per analysis.
InstanceAnalysis AnalyzeInstance(std::vector<ConjunctiveQuery> views,
                                 ConjunctiveQuery query,
                                 std::shared_ptr<HomCache> shared_cache =
                                     nullptr);

/// Positive certificate: q(D) = Π_j views[view_indices[j]](D)^exponents[j]
/// whenever every listed view count is positive; otherwise q(D) = 0.
struct DeterminacyWitness {
  std::vector<std::size_t> view_indices;  ///< Indices into V0.
  Vec exponents;                          ///< Rational α (Lemma 31 (⇐)).
};

/// Negative certificate: structures D, D′ with v(D) = v(D′) for every
/// v ∈ V0 but q(D) ≠ q(D′) (conditions (A), (B), (B0) of Section 5).
struct BagCounterexample {
  StructureExpr d;        ///< D  = Σ_i coeffs_d[i] · basis[i].
  StructureExpr d_prime;  ///< D′ = Σ_i coeffs_d_prime[i] · basis[i].
  Vec coeffs_d;           ///< Natural coordinates of D in the basis S.
  Vec coeffs_d_prime;     ///< Natural coordinates of D′.
  std::vector<StructureExpr> basis_structures;  ///< S — good basis (L. 40).
  Mat evaluation_matrix;  ///< M(i,j) = w_i(s_j) (Definition 37).
  Vec z;                  ///< Integer orthogonal witness (Fact 5).
  Rational t;             ///< Perturbation factor of Lemma 56 (≠ 1).
};

struct DeterminacyOptions {
  /// Synthesize the counterexample when the answer is "not determined"
  /// (it can be exponentially larger than the decision itself).
  bool want_counterexample = true;
  DistinguisherOptions distinguisher;
  /// Budgets applied to the analysis's shared HomCache before the heavy
  /// pipeline stages run (0 keeps the library default). Counts are pure
  /// functions of the interned classes, so eviction pressure can never
  /// change a verdict — the end-to-end property suite pins exactly that
  /// with a tiny budget, and serving tiers can bound long-lived decisions.
  /// Ignored when `shared_hom_cache` is set: a fleet-wide cache's budgets
  /// belong to its owner, not to any one request.
  std::size_t hom_cache_max_entries = 0;
  std::size_t hom_cache_max_bytes = 0;
  /// Persistent pool + count cache to run this decision against (see
  /// AnalyzeInstance). Null = private per-call pool and cache.
  std::shared_ptr<HomCache> shared_hom_cache;
};

/// Outcome of the decision procedure.
struct DeterminacyResult {
  bool determined = false;
  std::optional<DeterminacyWitness> witness;          ///< Set iff determined.
  std::optional<BagCounterexample> counterexample;    ///< Set iff requested
                                                      ///< and not determined.
  InstanceAnalysis analysis;

  /// Execution record for the run. ok() in the common case. The only
  /// non-ok value the ungoverned entry point produces on well-formed input
  /// is kResourceExhausted in kernel "distinguisher": counterexample
  /// synthesis was requested, the verdict is NOT determined (the verdict
  /// itself is always valid), but the distinguisher search exhausted its
  /// bounds before a good basis existed — `counterexample` stays empty and
  /// no exception escapes. Widen
  /// DeterminacyOptions::distinguisher.max_subset_domain to recover the
  /// certificate.
  ExecStatus exec_status;

  /// Human-readable summary of the verdict and certificate.
  std::string Summary() const;
};

/// Decides whether V0 ⟶bag q (Theorem 3).
DeterminacyResult DecideBagDeterminacy(
    std::vector<ConjunctiveQuery> views, ConjunctiveQuery query,
    const DeterminacyOptions& options = DeterminacyOptions());

/// AnalyzeInstance under an execution context: the hom-count kernels,
/// canonical labeling searches and pool interning behind the analysis all
/// checkpoint against `exec`'s deadline, cancellation token, and memory
/// budget. `analysis` is engaged iff `status.ok()`; on a trip the status
/// carries the tripping kernel and the bytes/elapsed at trip time, and the
/// shared pool/caches of other requests are unaffected. Bit-identical to
/// AnalyzeInstance whenever no limit trips. Malformed input (non-boolean
/// query, schema mismatch, nullary atom) still throws
/// std::invalid_argument exactly like AnalyzeInstance.
struct GovernedAnalysis {
  ExecStatus status;
  std::optional<InstanceAnalysis> analysis;
};
GovernedAnalysis AnalyzeInstanceGoverned(std::vector<ConjunctiveQuery> views,
                                         ConjunctiveQuery query,
                                         ExecContext& exec);

/// DecideBagDeterminacy under an execution context — the whole pipeline
/// (analysis, span test, basis construction, counterexample synthesis)
/// runs governed. `result` is engaged iff `status.ok()`; when engaged it
/// is bit-identical to the ungoverned result (including its exec_status
/// field, which records in-budget declines such as distinguisher
/// exhaustion).
struct GovernedDecision {
  ExecStatus status;
  std::optional<DeterminacyResult> result;
};
GovernedDecision DecideBagDeterminacyGoverned(
    std::vector<ConjunctiveQuery> views, ConjunctiveQuery query,
    const DeterminacyOptions& options, ExecContext& exec);

/// Checks the witness formula on one concrete structure:
/// returns true iff q(D) matches Π v_j(D)^α_j (or 0 when some v_j(D) = 0).
/// Exact; rational exponents are handled by checking the cleared-denominator
/// power identity q(D)^c · Π_{α_j<0} v_j(D)^{c·|α_j|} = Π_{α_j>0} v_j(D)^{c·α_j}.
///
/// Counts route through the analysis's shared HomCache (as does
/// VerifyCounterexample): repeated checks are memoized. The cache and its
/// sharded pool are thread-safe, so concurrent checks on the *same*
/// analysis are supported — each thread just needs its own `data` object
/// (Structure's lazy positional index is per-object and unsynchronized).
/// Count entries are LRU-bounded by the cache's budgets; each distinct
/// small `data` (≤ HomCache::max_intern_domain() elements) stays interned
/// for the analysis's lifetime, larger data bypasses the cache entirely.
bool CheckWitnessOnStructure(const InstanceAnalysis& analysis,
                             const DeterminacyWitness& witness,
                             const Structure& data);

/// Answers q from the view *counts alone* — the whole point of a positive
/// determinacy verdict. Given counts[i] = views[witness.view_indices[i]](D)
/// for an (unseen) database D, returns q(D):
///   * 0 when some relevant view count is 0 (Observation 26);
///   * otherwise the exact value of Π_j counts[j]^{α_j}, computed with
///     BigInt powers and exact root extraction for rational exponents.
/// Throws std::invalid_argument when the counts are inconsistent with the
/// witness (e.g. the power product is not a perfect power — impossible for
/// counts coming from a real database when the witness is valid).
BigInt AnswerFromViewCounts(const DeterminacyWitness& witness,
                            const std::vector<BigInt>& counts);

/// Exhaustively verifies a counterexample: every view of V0 agrees on
/// (D, D′) and q differs — all counts evaluated exactly (symbolically).
/// Returns a diagnostic message on failure, std::nullopt on success.
std::optional<std::string> VerifyCounterexample(
    const InstanceAnalysis& analysis, const BagCounterexample& counterexample);

}  // namespace bagdet

#endif  // BAGDET_CORE_DETERMINACY_H_
