#include "query/parser.h"

#include <cctype>
#include <stdexcept>
#include <unordered_map>

namespace bagdet {

namespace {

/// Minimal hand-rolled tokenizer over one rule line.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool TryConsume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void Expect(std::string_view token) {
    if (!TryConsume(token)) {
      throw std::invalid_argument("parse error: expected '" +
                                  std::string(token) + "' at position " +
                                  std::to_string(pos_) + " in: " +
                                  std::string(text_));
    }
  }

  std::string ExpectName() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '\'') {
        ++pos_;
      } else {
        break;
      }
    }
    if (start == pos_) {
      throw std::invalid_argument("parse error: expected a name at position " +
                                  std::to_string(pos_) + " in: " +
                                  std::string(text_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  bool PeekChar(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

ConjunctiveQuery QueryParser::ParseRule(std::string_view line) {
  Cursor cursor(line);
  std::string head_name = cursor.ExpectName();

  std::vector<std::string> var_names;
  std::unordered_map<std::string, VarId> var_ids;
  auto intern_var = [&](const std::string& name) {
    auto it = var_ids.find(name);
    if (it != var_ids.end()) return it->second;
    VarId id = static_cast<VarId>(var_names.size());
    var_names.push_back(name);
    var_ids.emplace(name, id);
    return id;
  };

  std::size_t num_free = 0;
  if (cursor.TryConsume("(")) {
    if (!cursor.TryConsume(")")) {
      do {
        intern_var(cursor.ExpectName());
      } while (cursor.TryConsume(","));
      cursor.Expect(")");
    }
    num_free = var_names.size();
  }
  cursor.Expect(":-");

  std::vector<QueryAtom> atoms;
  if (!cursor.TryConsume("true")) {
    do {
      std::string relation_name = cursor.ExpectName();
      std::vector<VarId> args;
      cursor.Expect("(");
      if (!cursor.TryConsume(")")) {
        do {
          args.push_back(intern_var(cursor.ExpectName()));
        } while (cursor.TryConsume(","));
        cursor.Expect(")");
      }
      RelationId relation = schema_->AddRelation(relation_name, args.size());
      atoms.push_back(QueryAtom{relation, std::move(args)});
    } while (cursor.TryConsume(","));
  }
  cursor.TryConsume(".");
  if (!cursor.AtEnd()) {
    throw std::invalid_argument("parse error: trailing input in: " +
                                std::string(line));
  }
  return ConjunctiveQuery(std::move(head_name), schema_, std::move(var_names),
                          num_free, std::move(atoms));
}

std::vector<ConjunctiveQuery> QueryParser::ParseProgram(
    std::string_view text) {
  std::vector<ConjunctiveQuery> rules;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    std::size_t comment = line.find('#');
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (!blank) rules.push_back(ParseRule(line));
    start = end + 1;
  }
  return rules;
}

std::vector<UnionQuery> QueryParser::ParseUcqProgram(std::string_view text) {
  std::vector<ConjunctiveQuery> rules = ParseProgram(text);
  std::vector<UnionQuery> result;
  std::size_t i = 0;
  while (i < rules.size()) {
    std::size_t j = i + 1;
    while (j < rules.size() && rules[j].name() == rules[i].name()) ++j;
    std::string name = rules[i].name();
    std::vector<ConjunctiveQuery> group(rules.begin() + i, rules.begin() + j);
    result.emplace_back(std::move(name), std::move(group));
    i = j;
  }
  return result;
}

}  // namespace bagdet
