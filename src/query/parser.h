// bagdet: a small datalog-style parser for conjunctive queries.
//
// Grammar (one rule per line; '#' starts a comment):
//
//   rule    := head ":-" body
//   head    := NAME | NAME "(" vars? ")"
//   body    := "true" | atom ("," atom)*
//   atom    := NAME "(" vars? ")"
//   vars    := NAME ("," NAME)*
//
// Example:
//   q()  :- P(u,x), R(x,y), S(y,z)
//   v1() :- P(u,x), R(x,y)
//
// Relation symbols and their arities are inferred and accumulated in the
// parser's schema, so a sequence of rules shares one schema. Several rules
// with the same head name form a UCQ (a *multiset* of disjuncts).

#ifndef BAGDET_QUERY_PARSER_H_
#define BAGDET_QUERY_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "query/cq.h"

namespace bagdet {

/// Parses rules into ConjunctiveQuery values over a shared growing schema.
class QueryParser {
 public:
  QueryParser() : schema_(std::make_shared<Schema>()) {}

  /// Parses a single rule. Throws std::invalid_argument with a position
  /// hint on malformed input or on arity conflicts with earlier rules.
  ConjunctiveQuery ParseRule(std::string_view line);

  /// Parses a newline-separated sequence of rules, skipping blank lines and
  /// '#' comments.
  std::vector<ConjunctiveQuery> ParseProgram(std::string_view text);

  /// Parses a program and groups consecutive rules with equal head names
  /// into UCQs (order preserved, duplicates kept).
  std::vector<UnionQuery> ParseUcqProgram(std::string_view text);

  /// The schema accumulated so far (grows as rules are parsed).
  const std::shared_ptr<Schema>& schema() const { return schema_; }

 private:
  std::shared_ptr<Schema> schema_;
};

}  // namespace bagdet

#endif  // BAGDET_QUERY_PARSER_H_
