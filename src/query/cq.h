// bagdet: conjunctive queries and unions of conjunctive queries under bag
// semantics (Section 2.1 of the paper).

#ifndef BAGDET_QUERY_CQ_H_
#define BAGDET_QUERY_CQ_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "structs/structure.h"
#include "util/bigint.h"

namespace bagdet {

/// Index of a variable within a query.
using VarId = std::uint32_t;

/// One atom R(x̄) of a query body; `args` are variable ids.
struct QueryAtom {
  RelationId relation;
  std::vector<VarId> args;
};

/// The bag of answers of a query over a structure: tuple ↦ multiplicity.
/// A boolean query's answer bag maps the empty tuple to |hom(q, D)|.
using AnswerBag = std::map<Tuple, BigInt>;

/// A conjunctive query Φ = ∃ȳ φ(x̄, ȳ). Variables are indexed 0..n-1;
/// the first `NumFreeVars()` of them are the free (head) variables x̄.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  /// Builds a query. `var_names` lists all variables (free first); every
  /// atom argument must index into it. Head-only variables are allowed in
  /// the paper's definition, but every variable must appear in `var_names`.
  ConjunctiveQuery(std::string name, std::shared_ptr<const Schema> schema,
                   std::vector<std::string> var_names, std::size_t num_free,
                   std::vector<QueryAtom> atoms);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }
  const std::vector<QueryAtom>& atoms() const { return atoms_; }
  std::size_t NumVars() const { return var_names_.size(); }
  std::size_t NumFreeVars() const { return num_free_; }
  const std::string& VarName(VarId v) const { return var_names_.at(v); }

  bool IsBoolean() const { return num_free_ == 0; }

  /// The frozen body (Section 2.1): variables become domain elements
  /// 0..NumVars()-1 in variable order, atoms become facts.
  const Structure& FrozenBody() const { return frozen_; }

  /// True iff the frozen body is connected (single component, nonempty).
  bool IsConnected() const { return frozen_.IsConnected(); }

  /// Answer bag Φ(D): for each assignment of the free variables, the number
  /// of homomorphisms extending it (Section 2.1). Zero-multiplicity tuples
  /// are omitted.
  AnswerBag Evaluate(const Structure& data) const;

  /// |hom(Φ, D)| — the total number of homomorphisms of the frozen body.
  /// For a boolean query this is the paper's q(D).
  BigInt CountHomomorphisms(const Structure& data) const;

  /// Renders as "name(x,..) :- R(x,y), S(y)".
  std::string ToString() const;

 private:
  std::string name_;
  std::shared_ptr<const Schema> schema_;
  std::vector<std::string> var_names_;
  std::size_t num_free_ = 0;
  std::vector<QueryAtom> atoms_;
  Structure frozen_;
};

/// A union (disjunction) of conjunctive queries. Following the paper, a UCQ
/// is a *multiset* of disjuncts and its boolean value is the SUM of the
/// disjunct counts: Ψ(D) = Σ_{Φ∈Ψ} Φ(D). (The Theorem-2 reduction builds
/// UCQs that repeat a disjunct c(m) times, so duplicates matter.)
class UnionQuery {
 public:
  UnionQuery() = default;
  explicit UnionQuery(std::string name,
                      std::vector<ConjunctiveQuery> disjuncts);

  const std::string& name() const { return name_; }
  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  bool IsBoolean() const;

  /// Σ over disjuncts of CountHomomorphisms.
  BigInt Count(const Structure& data) const;

  /// Multiset union of the disjunct answer bags.
  AnswerBag Evaluate(const Structure& data) const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<ConjunctiveQuery> disjuncts_;
};

/// Builds the boolean CQ whose frozen body is (a copy of) `body`: one
/// existential variable per domain element, one atom per fact. Inverse of
/// ConjunctiveQuery::FrozenBody (boolean queries are identified with their
/// frozen bodies in the paper).
ConjunctiveQuery BooleanQueryFromStructure(std::string name,
                                           const Structure& body);

/// Set-semantics containment of boolean CQs: q ⊆set q′ iff hom(q′, q) ≠ ∅
/// (Section 2.1). Arguments are the queries, not their bodies.
bool IsContainedSetSemantics(const ConjunctiveQuery& q,
                             const ConjunctiveQuery& q_prime);

/// True iff the two answer bags are equal as multisets.
bool AnswerBagsEqual(const AnswerBag& a, const AnswerBag& b);

}  // namespace bagdet

#endif  // BAGDET_QUERY_CQ_H_
