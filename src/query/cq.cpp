#include "query/cq.h"

#include <sstream>
#include <stdexcept>

#include "hom/hom.h"
#include "structs/canonical.h"

namespace bagdet {

ConjunctiveQuery::ConjunctiveQuery(std::string name,
                                   std::shared_ptr<const Schema> schema,
                                   std::vector<std::string> var_names,
                                   std::size_t num_free,
                                   std::vector<QueryAtom> atoms)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      var_names_(std::move(var_names)),
      num_free_(num_free),
      atoms_(std::move(atoms)) {
  if (num_free_ > var_names_.size()) {
    throw std::invalid_argument("ConjunctiveQuery: more free vars than vars");
  }
  frozen_ = Structure(schema_, var_names_.size());
  for (const QueryAtom& atom : atoms_) {
    if (atom.args.size() != schema_->Arity(atom.relation)) {
      throw std::invalid_argument("ConjunctiveQuery: atom arity mismatch in " +
                                  schema_->Name(atom.relation));
    }
    Tuple tuple(atom.args.size());
    for (std::size_t i = 0; i < atom.args.size(); ++i) {
      if (atom.args[i] >= var_names_.size()) {
        throw std::invalid_argument("ConjunctiveQuery: atom uses unknown var");
      }
      tuple[i] = atom.args[i];
    }
    frozen_.AddFact(atom.relation, std::move(tuple));
  }
  // Boolean queries are the determinacy pipeline's currency; canonicalize
  // the frozen body once at admission so every later copy (queries are
  // passed by value through the pipeline) shares the cached form and the
  // hot path stays free of labeling searches.
  if (IsBoolean()) frozen_.CanonicalData();
}

AnswerBag ConjunctiveQuery::Evaluate(const Structure& data) const {
  AnswerBag answers;
  EnumerateHoms(frozen_, data, [&](const std::vector<Element>& assignment) {
    Tuple head(num_free_);
    for (std::size_t i = 0; i < num_free_; ++i) head[i] = assignment[i];
    answers[head] += BigInt(1);
    return true;
  });
  return answers;
}

BigInt ConjunctiveQuery::CountHomomorphisms(const Structure& data) const {
  return CountHoms(frozen_, data);
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream os;
  os << name_ << '(';
  for (std::size_t i = 0; i < num_free_; ++i) {
    if (i != 0) os << ',';
    os << var_names_[i];
  }
  os << ") :- ";
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (i != 0) os << ", ";
    os << schema_->Name(atoms_[i].relation) << '(';
    for (std::size_t j = 0; j < atoms_[i].args.size(); ++j) {
      if (j != 0) os << ',';
      os << var_names_[atoms_[i].args[j]];
    }
    os << ')';
  }
  if (atoms_.empty()) os << "true";
  return os.str();
}

UnionQuery::UnionQuery(std::string name,
                       std::vector<ConjunctiveQuery> disjuncts)
    : name_(std::move(name)), disjuncts_(std::move(disjuncts)) {}

bool UnionQuery::IsBoolean() const {
  for (const ConjunctiveQuery& d : disjuncts_) {
    if (!d.IsBoolean()) return false;
  }
  return true;
}

BigInt UnionQuery::Count(const Structure& data) const {
  BigInt total(0);
  for (const ConjunctiveQuery& d : disjuncts_) {
    total += d.CountHomomorphisms(data);
  }
  return total;
}

AnswerBag UnionQuery::Evaluate(const Structure& data) const {
  AnswerBag total;
  for (const ConjunctiveQuery& d : disjuncts_) {
    for (const auto& [tuple, count] : d.Evaluate(data)) {
      total[tuple] += count;
    }
  }
  return total;
}

std::string UnionQuery::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i != 0) os << "  |  ";
    os << disjuncts_[i].ToString();
  }
  return os.str();
}

ConjunctiveQuery BooleanQueryFromStructure(std::string name,
                                           const Structure& body) {
  std::vector<std::string> var_names;
  var_names.reserve(body.DomainSize());
  for (std::size_t e = 0; e < body.DomainSize(); ++e) {
    var_names.push_back("z" + std::to_string(e));
  }
  std::vector<QueryAtom> atoms;
  for (RelationId r = 0; r < body.schema().NumRelations(); ++r) {
    for (const Tuple& t : body.Facts(r)) {
      QueryAtom atom;
      atom.relation = r;
      atom.args.assign(t.begin(), t.end());
      atoms.push_back(std::move(atom));
    }
  }
  return ConjunctiveQuery(std::move(name), body.schema_ptr(),
                          std::move(var_names), 0, std::move(atoms));
}

bool IsContainedSetSemantics(const ConjunctiveQuery& q,
                             const ConjunctiveQuery& q_prime) {
  if (!q.IsBoolean() || !q_prime.IsBoolean()) {
    throw std::invalid_argument(
        "IsContainedSetSemantics: boolean queries expected");
  }
  return ExistsHom(q_prime.FrozenBody(), q.FrozenBody());
}

bool AnswerBagsEqual(const AnswerBag& a, const AnswerBag& b) {
  // AnswerBag omits zero multiplicities, so plain map equality is multiset
  // equality.
  return a == b;
}

}  // namespace bagdet
