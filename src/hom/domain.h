// bagdet: per-variable candidate domains with propagation-driven pruning.
//
// The PR-1 join core narrows candidates through one most-selective index
// bucket per step; everything it cannot see locally survives until the DP
// table or the backtracker discovers the dead end. This layer gives every
// variable of a source structure an explicit candidate *domain* — an
// SVOBitset over the target's elements (the glasgow-subgraph-solver shape:
// HomomorphismDomain over a small-vector bitset) — pruned before search
// and narrowed by intersection as variables bind:
//
//   * seeding: a variable occurring at position p of relation R can only
//     map to targets that carry some R-fact at p (StructureIndex::
//     PresentMask), intersected over every occurrence;
//   * atom-support fixpoint (arc consistency): a candidate survives only
//     while some target fact matches its atom with every other position
//     drawn from the current domains — iterated over a worklist until
//     nothing shrinks;
//   * binding: fixing v ↦ d re-supports the atoms containing v, shrinking
//     the domains of the variables sharing those atoms, with empty-domain
//     early abort.
//
// Pruning only ever removes images that no homomorphism can use, so every
// consumer (counting, existence, injective, enumeration) stays exact.
//
// DomainModel holds the immutable wiring (atoms, occurrence lists, the
// target index); DomainSet is the mutable value the search copies per
// depth — just the bitsets, a few inline words each for pipeline-sized
// targets.

#ifndef BAGDET_HOM_DOMAIN_H_
#define BAGDET_HOM_DOMAIN_H_

#include <cstdint>
#include <vector>

#include "structs/index.h"
#include "structs/structure.h"
#include "util/bitset.h"

namespace bagdet {

/// Candidate images per source variable: domain(v) is a bitset over the
/// target's domain. Value type with no back-references, so search layers
/// snapshot it by plain copy.
class DomainSet {
 public:
  DomainSet() = default;

  const SVOBitset& domain(Element v) const { return domains_[v]; }
  SVOBitset& mutable_domain(Element v) { return domains_[v]; }
  std::size_t num_vars() const { return domains_.size(); }

 private:
  friend class DomainModel;
  std::vector<SVOBitset> domains_;
};

/// Propagation engine for one (source, target) pair. Both structures must
/// outlive the model; the target's positional index is built on demand.
class DomainModel {
 public:
  DomainModel(const Structure& from, const Structure& to);

  std::size_t num_vars() const { return num_vars_; }
  std::size_t target_size() const { return target_size_; }

  /// Seeds every domain from the occupancy masks and runs the atom-support
  /// fixpoint. Returns false iff some domain empties — no homomorphism
  /// exists and callers should answer 0 without searching.
  bool InitialDomains(DomainSet* doms) const;

  /// Re-runs the atom-support fixpoint over all atoms (used after an
  /// external domain restriction, e.g. a parallel-split chunk). Returns
  /// false iff a domain empties.
  bool Propagate(DomainSet* doms) const;

  /// Binds v ↦ image: narrows domain(v) to the singleton and re-supports
  /// the atoms containing v (one round, no cascade — the next binding
  /// propagates again). Returns false iff the image is not in domain(v) or
  /// some sharing variable's domain empties.
  bool Bind(DomainSet* doms, Element v, Element image) const;

 private:
  struct Atom {
    RelationId relation = 0;
    Tuple tuple;
    // Distinct variables of the tuple, first-occurrence order, and for
    // each tuple position the index into `vars` of its variable.
    std::vector<Element> vars;
    std::vector<std::uint32_t> var_slot;
  };

  /// Recomputes the supported domain of every variable of atom `a` and
  /// intersects it in. Appends shrunk variables to `changed` (when
  /// non-null). Returns false iff a domain empties.
  bool ReviseAtom(std::uint32_t a, DomainSet* doms,
                  std::vector<Element>* changed) const;

  const Structure* to_;
  const StructureIndex* index_;
  std::size_t num_vars_ = 0;
  std::size_t target_size_ = 0;
  std::vector<Atom> atoms_;
  std::vector<std::vector<std::uint32_t>> atoms_of_var_;
};

}  // namespace bagdet

#endif  // BAGDET_HOM_DOMAIN_H_
