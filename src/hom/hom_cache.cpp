#include "hom/hom_cache.h"

#include <algorithm>

#include "hom/hom.h"
#include "structs/index.h"
#include "util/exec_context.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace bagdet {

namespace {

/// Approximate resident cost of one memoized count: list/map node
/// bookkeeping plus the BigInt's spilled limbs (small counts are inline).
std::size_t EntryFootprint(std::size_t entry_size, const BigInt& count) {
  return entry_size + 96 + count.BitLength() / 8;
}

}  // namespace

HomCache::HomCache(std::shared_ptr<StructurePool> pool)
    : pool_(pool ? std::move(pool) : std::make_shared<StructurePool>()) {}

void HomCache::InsertCount(CountShard& shard, std::uint64_t key,
                           const BigInt& count) {
  // Injected faults here must land before the shard is touched: an
  // aborted insert unwinds without the memoization, never with a
  // half-linked LRU entry, and a rerun recomputes and re-inserts cleanly.
  BAGDET_FAILPOINT("homcache/insert");
  const std::size_t footprint = EntryFootprint(sizeof(CacheEntry), count);
  const std::size_t entry_budget =
      std::max<std::size_t>(1, max_entries_ / kNumShards);
  const std::size_t byte_budget =
      std::max<std::size_t>(1, max_bytes_ / kNumShards);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.index.find(key) != shard.index.end()) return;  // Raced insert.
  shard.lru.push_front(CacheEntry{key, count, footprint});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += footprint;
  // Evict cold entries past either budget, but always keep the entry just
  // inserted — a single count larger than the whole byte budget must still
  // serve its own request.
  while (shard.lru.size() > 1 &&
         (shard.index.size() > entry_budget || shard.bytes > byte_budget)) {
    const CacheEntry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

BigInt HomCache::CountPair(StructureRef from, StructureRef to,
                           bool serial_engine) {
  ExecCheckPoint("homcache.count");
  const std::uint64_t key = PairKey(from, to);
  CountShard& shard = count_shards_[ShardIndex(key)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->count;
    }
    ++shard.misses;
  }
  DpOptions options;
  if (serial_engine) options.num_threads = 1;
  BigInt count = CountHoms(pool_->At(from), pool_->At(to), options);
  InsertCount(shard, key, count);
  return count;
}

BigInt HomCache::Count(StructureRef from, StructureRef to) {
  return CountPair(from, to);
}

BigInt HomCache::Count(StructureRef from, const Structure& to) {
  if (to.DomainSize() > max_intern_domain_) {
    return CountHoms(pool_->At(from), to);
  }
  return CountPair(from, pool_->Intern(to));
}

BigInt HomCache::Count(const Structure& from, const Structure& to) {
  if (to.DomainSize() > max_intern_domain_) return CountHoms(from, to);
  const StructureRef to_ref = pool_->Intern(to);
  BigInt product(1);
  for (StructureRef ref : ComponentRefs(from)) {
    BigInt count = CountPair(ref, to_ref);
    if (count.IsZero()) return BigInt(0);
    product *= count;
  }
  return product;
}

const std::vector<StructureRef>& HomCache::ComponentRefs(const Structure& s) {
  const StructureCanonicalData& data = s.CanonicalData();
  CanonicalKey whole_key = CanonicalKeyOf(s);
  std::lock_guard<std::mutex> lock(components_mu_);
  auto it = components_of_.find(whole_key);
  if (it != components_of_.end()) return it->second;
  std::vector<StructureRef> refs;
  refs.reserve(data.component_certificates.size());
  // Reuse the certificates computed for `s`: only components whose class
  // is genuinely new to the pool force a decomposition (for the
  // representative copy) — never a second labeling search.
  std::vector<Structure> components;
  bool decomposed = false;
  for (std::size_t i = 0; i < data.component_certificates.size(); ++i) {
    CanonicalKey key = ComponentKeyFromCertificate(
        s.schema(), data.component_certificates[i]);
    StructureRef ref = pool_->FindKey(key);
    if (ref == kInvalidStructureRef) {
      if (!decomposed) {
        components = ConnectedComponents(s);
        decomposed = true;
      }
      // Seed the representative's canonical cache so later interns of the
      // pool's own structures (FindDistinguisher, symbolic leaves) are
      // pure hash probes. A single component's whole-structure certificate
      // is exactly the component key's byte form.
      components[i].CacheCanonicalData(
          std::make_shared<const StructureCanonicalData>(StructureCanonicalData{
              key.bytes, {data.component_certificates[i]}}));
      ref = pool_->InternWithKey(key, std::move(components[i]));
    }
    refs.push_back(ref);
  }
  return components_of_.emplace(std::move(whole_key), std::move(refs))
      .first->second;
}

std::vector<BigInt> HomCache::BatchCountHoms(
    const std::vector<std::pair<StructureRef, StructureRef>>& pairs,
    std::size_t num_threads) {
  std::vector<BigInt> results(pairs.size());
  // Validate every ref up front (published pool entries arrive with their
  // positional index pre-warmed, so workers only ever read them).
  for (const auto& [from, to] : pairs) {
    pool_->At(from);
    pool_->At(to);
  }
  if (pairs.size() <= 1 || num_threads == 1) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      results[i] = CountPair(pairs[i].first, pairs[i].second);
    }
    return results;
  }
  GlobalThreadPool().ParallelFor(
      pairs.size(),
      [&](std::size_t i) {
        // Workers fill the pool already — run each miss serially instead
        // of nesting a parallel split per count.
        results[i] = CountPair(pairs[i].first, pairs[i].second,
                               /*serial_engine=*/true);
      },
      num_threads);
  return results;
}

HomCache::Stats HomCache::stats() const {
  Stats total;
  for (const CountShard& shard : count_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.entries += shard.index.size();
    total.bytes += shard.bytes;
  }
  {
    std::lock_guard<std::mutex> lock(components_mu_);
    total.component_entries = components_of_.size();
  }
  return total;
}

void HomCache::ResetStats() {
  for (CountShard& shard : count_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.hits = 0;
    shard.misses = 0;
    shard.evictions = 0;
  }
}

}  // namespace bagdet
