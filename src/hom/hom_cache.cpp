#include "hom/hom_cache.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "hom/hom.h"
#include "structs/index.h"

namespace bagdet {

HomCache::HomCache(std::shared_ptr<StructurePool> pool)
    : pool_(pool ? std::move(pool) : std::make_shared<StructurePool>()) {}

BigInt HomCache::CountPair(StructureRef from, StructureRef to) {
  const std::uint64_t key = PairKey(from, to);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counts_.find(key);
    if (it != counts_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
  }
  BigInt count = CountHoms(pool_->At(from), pool_->At(to));
  {
    std::lock_guard<std::mutex> lock(mu_);
    counts_.emplace(key, count);
  }
  return count;
}

BigInt HomCache::Count(StructureRef from, StructureRef to) {
  return CountPair(from, to);
}

BigInt HomCache::Count(StructureRef from, const Structure& to) {
  if (to.DomainSize() > max_intern_domain_) {
    return CountHoms(pool_->At(from), to);
  }
  return CountPair(from, pool_->Intern(to));
}

BigInt HomCache::Count(const Structure& from, const Structure& to) {
  if (to.DomainSize() > max_intern_domain_) return CountHoms(from, to);
  const StructureRef to_ref = pool_->Intern(to);
  BigInt product(1);
  for (StructureRef ref : ComponentRefs(from)) {
    BigInt count = CountPair(ref, to_ref);
    if (count.IsZero()) return BigInt(0);
    product *= count;
  }
  return product;
}

const std::vector<StructureRef>& HomCache::ComponentRefs(const Structure& s) {
  const StructureCanonicalData& data = s.CanonicalData();
  CanonicalKey whole_key = CanonicalKeyOf(s);
  auto it = components_of_.find(whole_key);
  if (it != components_of_.end()) return it->second;
  std::vector<StructureRef> refs;
  refs.reserve(data.component_certificates.size());
  // Reuse the certificates computed for `s`: only components whose class
  // is genuinely new to the pool force a decomposition (for the
  // representative copy) — never a second labeling search.
  std::vector<Structure> components;
  bool decomposed = false;
  for (std::size_t i = 0; i < data.component_certificates.size(); ++i) {
    CanonicalKey key = ComponentKeyFromCertificate(
        s.schema(), data.component_certificates[i]);
    StructureRef ref = pool_->FindKey(key);
    if (ref == kInvalidStructureRef) {
      if (!decomposed) {
        components = ConnectedComponents(s);
        decomposed = true;
      }
      // Seed the representative's canonical cache so later interns of the
      // pool's own structures (FindDistinguisher, symbolic leaves) are
      // pure hash probes. A single component's whole-structure certificate
      // is exactly the component key's byte form.
      components[i].CacheCanonicalData(
          std::make_shared<const StructureCanonicalData>(StructureCanonicalData{
              key.bytes, {data.component_certificates[i]}}));
      ref = pool_->InternWithKey(key, std::move(components[i]));
    }
    refs.push_back(ref);
  }
  return components_of_.emplace(std::move(whole_key), std::move(refs))
      .first->second;
}

std::vector<BigInt> HomCache::BatchCountHoms(
    const std::vector<std::pair<StructureRef, StructureRef>>& pairs,
    std::size_t num_threads) {
  std::vector<BigInt> results(pairs.size());
  // Warm the targets' positional indexes on this thread: Structure::Index()
  // builds lazily and is not safe to build from two workers at once.
  for (const auto& [from, to] : pairs) {
    pool_->At(from);  // Validates the ref.
    pool_->At(to).Index();
  }
  std::size_t workers =
      num_threads == 0 ? std::thread::hardware_concurrency() : num_threads;
  if (workers == 0) workers = 1;
  workers = std::min(workers, pairs.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      results[i] = CountPair(pairs[i].first, pairs[i].second);
    }
    return results;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr error;
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= pairs.size()) return;
      try {
        results[i] = CountPair(pairs[i].first, pairs[i].second);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
  return results;
}

HomCache::Stats HomCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace bagdet
