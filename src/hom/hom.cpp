#include "hom/hom.h"

#include <algorithm>
#include <map>
#include <optional>

namespace bagdet {

namespace {

constexpr Element kUnassigned = static_cast<Element>(-1);

/// A unit of backtracking work: match one atom of `from` against the facts
/// of `to`, or choose the image of one isolated element.
struct Task {
  bool is_atom = true;
  RelationId relation = 0;
  Tuple atom;          // Elements of `from` (is_atom).
  Element element = 0; // Isolated element (!is_atom).
};

/// Orders the atoms of a structure so that each atom (after the first of
/// its component) shares an element with an earlier one, which keeps the
/// join branching factor low. Isolated elements come last.
std::vector<Task> PlanTasks(const Structure& from) {
  std::vector<Task> atoms;
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    for (const Tuple& t : from.Facts(r)) {
      Task task;
      task.relation = r;
      task.atom = t;
      atoms.push_back(std::move(task));
    }
  }
  std::vector<bool> seen_element(from.DomainSize(), false);
  std::vector<bool> done(atoms.size(), false);
  std::vector<Task> plan;
  plan.reserve(atoms.size());
  for (std::size_t round = 0; round < atoms.size(); ++round) {
    // Pick the not-yet-planned atom with the most already-seen elements.
    std::size_t best = atoms.size();
    int best_score = -1;
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (done[i]) continue;
      int score = 0;
      for (Element e : atoms[i].atom) score += seen_element[e] ? 1 : 0;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    done[best] = true;
    for (Element e : atoms[best].atom) seen_element[e] = true;
    plan.push_back(std::move(atoms[best]));
  }
  for (Element e = 0; e < from.DomainSize(); ++e) {
    if (!seen_element[e]) {
      Task task;
      task.is_atom = false;
      task.element = e;
      plan.push_back(std::move(task));
    }
  }
  return plan;
}

/// Shared backtracking engine. `visit` is called at every complete
/// assignment; returning false aborts the search. `used` is non-null for
/// injective matching.
class Matcher {
 public:
  Matcher(const Structure& from, const Structure& to,
          const std::function<bool(const std::vector<Element>&)>& visit,
          std::vector<bool>* used)
      : to_(to), visit_(visit), used_(used),
        assignment_(from.DomainSize(), kUnassigned),
        plan_(PlanTasks(from)) {}

  /// Returns false iff the visitor aborted.
  bool Run() { return RunFrom(0); }

 private:
  bool RunFrom(std::size_t task_index) {
    if (task_index == plan_.size()) return visit_(assignment_);
    const Task& task = plan_[task_index];
    if (!task.is_atom) {
      for (Element image = 0; image < to_.DomainSize(); ++image) {
        if (used_ != nullptr && (*used_)[image]) continue;
        assignment_[task.element] = image;
        if (used_ != nullptr) (*used_)[image] = true;
        bool keep_going = RunFrom(task_index + 1);
        if (used_ != nullptr) (*used_)[image] = false;
        assignment_[task.element] = kUnassigned;
        if (!keep_going) return false;
      }
      return true;
    }
    const std::vector<Tuple>& facts = to_.Facts(task.relation);
    if (task.atom.empty()) {
      // Nullary atom: present or not, no bindings.
      if (facts.empty()) return true;
      return RunFrom(task_index + 1);
    }
    auto begin = facts.begin();
    auto end = facts.end();
    // Facts are sorted lexicographically: narrow by the first position when
    // it is already bound.
    Element first = assignment_[task.atom[0]];
    if (first != kUnassigned) {
      Tuple lo{first};
      Tuple hi{first + 1};
      begin = std::lower_bound(facts.begin(), facts.end(), lo);
      end = std::lower_bound(facts.begin(), facts.end(), hi);
    }
    for (auto it = begin; it != end; ++it) {
      const Tuple& fact = *it;
      // Try to unify the atom with this fact.
      std::vector<Element> bound;
      bool ok = true;
      for (std::size_t pos = 0; pos < fact.size() && ok; ++pos) {
        Element var = task.atom[pos];
        if (assignment_[var] == kUnassigned) {
          if (used_ != nullptr && (*used_)[fact[pos]]) {
            ok = false;
            break;
          }
          assignment_[var] = fact[pos];
          if (used_ != nullptr) (*used_)[fact[pos]] = true;
          bound.push_back(var);
        } else if (assignment_[var] != fact[pos]) {
          ok = false;
        }
      }
      bool keep_going = true;
      if (ok) keep_going = RunFrom(task_index + 1);
      for (auto rit = bound.rbegin(); rit != bound.rend(); ++rit) {
        if (used_ != nullptr) (*used_)[assignment_[*rit]] = false;
        assignment_[*rit] = kUnassigned;
      }
      if (!keep_going) return false;
    }
    return true;
  }

  const Structure& to_;
  const std::function<bool(const std::vector<Element>&)>& visit_;
  std::vector<bool>* used_;
  std::vector<Element> assignment_;
  std::vector<Task> plan_;
};

/// Counts homomorphisms of a single *connected* component by variable
/// elimination: a count-annotated join plan over the atoms, projecting out
/// every variable after its last use. Unlike enumeration this runs in time
/// polynomial in the table sizes, not in the (possibly astronomical)
/// number of homomorphisms — e.g. hom(path, clique) stays linear while the
/// count itself is exponential.
BigInt CountComponent(const Structure& component, const Structure& to) {
  if (component.DomainSize() == 0) {
    // A lone nullary fact: one hom when present, none otherwise.
    for (RelationId r = 0; r < component.schema().NumRelations(); ++r) {
      if (!component.Facts(r).empty() && to.Facts(r).empty()) return BigInt(0);
    }
    return BigInt(1);
  }
  if (component.NumFacts() == 0) {
    // Isolated element: any image works.
    return BigInt(static_cast<std::int64_t>(to.DomainSize()));
  }
  std::vector<Task> plan = PlanTasks(component);
  // Last task index using each element of the component.
  std::vector<std::size_t> last_use(component.DomainSize(), 0);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    for (Element e : plan[i].atom) last_use[e] = i;
  }
  // The table maps assignments of the live variables (kept sorted by
  // variable id in `live`) to the number of extensions producing them.
  std::vector<Element> live;
  std::map<std::vector<Element>, BigInt> table;
  table.emplace(std::vector<Element>{}, BigInt(1));
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const Task& task = plan[i];
    const std::vector<Tuple>& facts = to.Facts(task.relation);
    // New live set: current ∪ atom vars, minus vars last used here.
    std::vector<Element> next_live = live;
    for (Element var : task.atom) {
      if (std::find(next_live.begin(), next_live.end(), var) ==
          next_live.end()) {
        next_live.push_back(var);
      }
    }
    std::sort(next_live.begin(), next_live.end());
    next_live.erase(std::unique(next_live.begin(), next_live.end()),
                    next_live.end());
    std::vector<Element> kept;
    for (Element var : next_live) {
      if (last_use[var] > i) kept.push_back(var);
    }
    // Positions of atom vars and kept vars within the joined assignment.
    auto index_of = [](const std::vector<Element>& vars, Element var) {
      return static_cast<std::size_t>(
          std::find(vars.begin(), vars.end(), var) - vars.begin());
    };
    std::map<std::vector<Element>, BigInt> next_table;
    for (const auto& [assignment, count] : table) {
      for (const Tuple& fact : facts) {
        // Unify the atom against this fact under the current assignment.
        std::vector<Element> joined(next_live.size(), kUnassigned);
        for (std::size_t v = 0; v < live.size(); ++v) {
          joined[index_of(next_live, live[v])] = assignment[v];
        }
        bool ok = true;
        for (std::size_t pos = 0; pos < fact.size() && ok; ++pos) {
          std::size_t slot = index_of(next_live, task.atom[pos]);
          if (joined[slot] == kUnassigned) {
            joined[slot] = fact[pos];
          } else if (joined[slot] != fact[pos]) {
            ok = false;
          }
        }
        if (!ok) continue;
        std::vector<Element> projected(kept.size());
        for (std::size_t v = 0; v < kept.size(); ++v) {
          projected[v] = joined[index_of(next_live, kept[v])];
        }
        next_table[std::move(projected)] += count;
      }
    }
    live = std::move(kept);
    table = std::move(next_table);
    if (table.empty()) return BigInt(0);
  }
  BigInt total(0);
  for (const auto& [assignment, count] : table) total += count;
  return total;
}

}  // namespace

BigInt CountHoms(const Structure& from, const Structure& to) {
  BigInt product(1);
  for (const Structure& component : ConnectedComponents(from)) {
    BigInt c = CountComponent(component, to);
    if (c.IsZero()) return BigInt(0);
    product *= c;
  }
  return product;
}

bool ExistsHom(const Structure& from, const Structure& to) {
  for (const Structure& component : ConnectedComponents(from)) {
    if (component.DomainSize() == 0) {
      bool present = true;
      for (RelationId r = 0; r < component.schema().NumRelations(); ++r) {
        if (!component.Facts(r).empty() && to.Facts(r).empty()) present = false;
      }
      if (!present) return false;
      continue;
    }
    if (component.NumFacts() == 0) {
      if (to.DomainSize() == 0) return false;
      continue;
    }
    bool found = false;
    std::function<bool(const std::vector<Element>&)> visit =
        [&found](const std::vector<Element>&) {
          found = true;
          return false;  // Stop at the first hit.
        };
    Matcher matcher(component, to, visit, nullptr);
    matcher.Run();
    if (!found) return false;
  }
  return true;
}

BigInt CountInjectiveHoms(const Structure& from, const Structure& to) {
  if (from.DomainSize() > to.DomainSize()) return BigInt(0);
  // Injectivity couples components, so match the whole structure at once.
  BigInt count(0);
  std::function<bool(const std::vector<Element>&)> visit =
      [&count](const std::vector<Element>&) {
        count += BigInt(1);
        return true;
      };
  // Nullary facts must still be present.
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    if (from.schema().Arity(r) == 0 && !from.Facts(r).empty() &&
        to.Facts(r).empty()) {
      return BigInt(0);
    }
  }
  std::vector<bool> used(to.DomainSize(), false);
  Matcher matcher(from, to, visit, &used);
  matcher.Run();
  return count;
}

BigInt CountHomsByEnumeration(const Structure& from, const Structure& to) {
  BigInt count(0);
  std::function<bool(const std::vector<Element>&)> visit =
      [&count](const std::vector<Element>&) {
        count += BigInt(1);
        return true;
      };
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    if (from.schema().Arity(r) == 0 && !from.Facts(r).empty() &&
        to.Facts(r).empty()) {
      return BigInt(0);
    }
  }
  Matcher matcher(from, to, visit, nullptr);
  matcher.Run();
  return count;
}

BigInt CountHomsNaive(const Structure& from, const Structure& to) {
  const std::size_t n = from.DomainSize();
  const std::size_t m = to.DomainSize();
  // Check nullary facts up front.
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    if (from.schema().Arity(r) == 0 && !from.Facts(r).empty() &&
        to.Facts(r).empty()) {
      return BigInt(0);
    }
  }
  if (n == 0) return BigInt(1);
  if (m == 0) return BigInt(0);
  std::vector<Element> assignment(n, 0);
  BigInt count(0);
  for (;;) {
    bool ok = true;
    for (RelationId r = 0; r < from.schema().NumRelations() && ok; ++r) {
      for (const Tuple& t : from.Facts(r)) {
        Tuple image(t.size());
        for (std::size_t i = 0; i < t.size(); ++i) image[i] = assignment[t[i]];
        if (!to.HasFact(r, image)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) count += BigInt(1);
    // Advance the odometer.
    std::size_t i = 0;
    while (i < n && ++assignment[i] == m) {
      assignment[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return count;
}

bool EnumerateHoms(
    const Structure& from, const Structure& to,
    const std::function<bool(const std::vector<Element>&)>& visit) {
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    if (from.schema().Arity(r) == 0 && !from.Facts(r).empty() &&
        to.Facts(r).empty()) {
      return true;  // No homs; vacuously completed.
    }
  }
  Matcher matcher(from, to, visit, nullptr);
  return matcher.Run();
}

}  // namespace bagdet
