#include "hom/hom.h"

#include <algorithm>
#include <cstddef>
#include <optional>

#include "structs/index.h"
#include "util/exec_context.h"
#include "util/failpoint.h"

namespace bagdet {

namespace {

constexpr Element kUnassigned = static_cast<Element>(-1);

/// A unit of backtracking work: match one atom of `from` against the facts
/// of `to`, or choose the image of one isolated element.
struct Task {
  bool is_atom = true;
  RelationId relation = 0;
  Tuple atom;          // Elements of `from` (is_atom).
  Element element = 0; // Isolated element (!is_atom).
};

/// Orders the atoms of a structure by a min-new-live-vars greedy rule: each
/// round picks the atom introducing the fewest not-yet-seen elements
/// (tie-break: most already-seen positions). This keeps the working set of
/// bound variables — the DP table width and the backtracker's branching —
/// as small as the greedy horizon allows. Isolated elements come last.
std::vector<Task> PlanTasks(const Structure& from) {
  std::vector<Task> atoms;
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    for (const Tuple& t : from.Facts(r)) {
      Task task;
      task.relation = r;
      task.atom = t;
      atoms.push_back(std::move(task));
    }
  }
  std::vector<bool> seen_element(from.DomainSize(), false);
  std::vector<bool> done(atoms.size(), false);
  std::vector<Element> distinct_new;
  std::vector<Task> plan;
  plan.reserve(atoms.size());
  for (std::size_t round = 0; round < atoms.size(); ++round) {
    std::size_t best = atoms.size();
    std::size_t best_new = static_cast<std::size_t>(-1);
    int best_seen = -1;
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (done[i]) continue;
      distinct_new.clear();
      int seen = 0;
      for (Element e : atoms[i].atom) {
        if (seen_element[e]) {
          ++seen;
        } else if (std::find(distinct_new.begin(), distinct_new.end(), e) ==
                   distinct_new.end()) {
          distinct_new.push_back(e);
        }
      }
      const std::size_t new_vars = distinct_new.size();
      if (new_vars < best_new ||
          (new_vars == best_new && seen > best_seen)) {
        best_new = new_vars;
        best_seen = seen;
        best = i;
      }
    }
    done[best] = true;
    for (Element e : atoms[best].atom) seen_element[e] = true;
    plan.push_back(std::move(atoms[best]));
  }
  for (Element e = 0; e < from.DomainSize(); ++e) {
    if (!seen_element[e]) {
      Task task;
      task.is_atom = false;
      task.element = e;
      plan.push_back(std::move(task));
    }
  }
  return plan;
}

/// Shared backtracking engine. `visit` is called at every complete
/// assignment; returning false aborts the search. `used` is non-null for
/// injective matching. Candidate facts are narrowed through the target's
/// positional index: of all atom positions already bound, the one with the
/// smallest bucket drives the scan.
class Matcher {
 public:
  Matcher(const Structure& from, const Structure& to,
          const std::function<bool(const std::vector<Element>&)>& visit,
          std::vector<bool>* used)
      : to_(to), index_(to.Index()), visit_(visit), used_(used),
        assignment_(from.DomainSize(), kUnassigned),
        plan_(PlanTasks(from)), bound_stack_(plan_.size()) {}

  /// Returns false iff the visitor aborted.
  bool Run() { return RunFrom(0); }

 private:
  bool TryFact(std::size_t task_index, const Tuple& fact) {
    const Task& task = plan_[task_index];
    std::vector<Element>& bound = bound_stack_[task_index];
    bound.clear();
    bool ok = true;
    for (std::size_t pos = 0; pos < fact.size() && ok; ++pos) {
      Element var = task.atom[pos];
      if (assignment_[var] == kUnassigned) {
        if (used_ != nullptr && (*used_)[fact[pos]]) {
          ok = false;
          break;
        }
        assignment_[var] = fact[pos];
        if (used_ != nullptr) (*used_)[fact[pos]] = true;
        bound.push_back(var);
      } else if (assignment_[var] != fact[pos]) {
        ok = false;
      }
    }
    bool keep_going = true;
    if (ok) keep_going = RunFrom(task_index + 1);
    for (auto rit = bound.rbegin(); rit != bound.rend(); ++rit) {
      if (used_ != nullptr) (*used_)[assignment_[*rit]] = false;
      assignment_[*rit] = kUnassigned;
    }
    return keep_going;
  }

  bool RunFrom(std::size_t task_index) {
    // The backtracking tree is the unbounded dimension here (hom(v, q)
    // existence checks can be exponential with no early exit), so every
    // node is a governed checkpoint.
    ExecCheckPoint("hom.matcher");
    BAGDET_FAILPOINT("hom/matcher");
    if (task_index == plan_.size()) return visit_(assignment_);
    const Task& task = plan_[task_index];
    if (!task.is_atom) {
      for (Element image = 0; image < to_.DomainSize(); ++image) {
        if (used_ != nullptr && (*used_)[image]) continue;
        assignment_[task.element] = image;
        if (used_ != nullptr) (*used_)[image] = true;
        bool keep_going = RunFrom(task_index + 1);
        if (used_ != nullptr) (*used_)[image] = false;
        assignment_[task.element] = kUnassigned;
        if (!keep_going) return false;
      }
      return true;
    }
    const std::vector<Tuple>& facts = to_.Facts(task.relation);
    if (task.atom.empty()) {
      // Nullary atom: present or not, no bindings.
      if (facts.empty()) return true;
      return RunFrom(task_index + 1);
    }
    // Pick the most selective bucket among the bound positions.
    std::size_t best_pos = fact_arity_sentinel();
    std::size_t best_size = facts.size();
    for (std::size_t pos = 0; pos < task.atom.size(); ++pos) {
      Element image = assignment_[task.atom[pos]];
      if (image == kUnassigned) continue;
      std::size_t size = index_.BucketSize(task.relation, pos, image);
      if (size < best_size || best_pos == fact_arity_sentinel()) {
        best_size = size;
        best_pos = pos;
        if (size == 0) break;
      }
    }
    if (best_pos != fact_arity_sentinel()) {
      Element image = assignment_[task.atom[best_pos]];
      for (std::uint32_t id : index_.Bucket(task.relation, best_pos, image)) {
        if (!TryFact(task_index, facts[id])) return false;
      }
      return true;
    }
    for (const Tuple& fact : facts) {
      if (!TryFact(task_index, fact)) return false;
    }
    return true;
  }

  static constexpr std::size_t fact_arity_sentinel() {
    return static_cast<std::size_t>(-1);
  }

  const Structure& to_;
  const StructureIndex& index_;
  const std::function<bool(const std::vector<Element>&)>& visit_;
  std::vector<bool>* used_;
  std::vector<Element> assignment_;
  std::vector<Task> plan_;
  // Per-depth scratch of vars bound at that frame (avoids a heap
  // allocation per visited fact).
  std::vector<std::vector<Element>> bound_stack_;
};

/// Open-addressing hash table from packed keys — `width` Elements stored
/// back to back in one arena — to BigInt counts. This is the DP table of
/// the variable-elimination counter: no per-entry node allocations, no
/// tree comparisons, keys contiguous in memory.
class FlatTable {
 public:
  explicit FlatTable(std::size_t width) : width_(width) {
    slots_.assign(16, 0);
  }

  std::size_t size() const { return counts_.size(); }
  bool empty() const { return counts_.empty(); }
  std::size_t width() const { return width_; }

  const Element* Key(std::size_t entry) const {
    return arena_.data() + entry * width_;
  }
  const BigInt& Count(std::size_t entry) const { return counts_[entry]; }

  /// table[key] += delta, inserting the key when absent.
  void Add(const Element* key, const BigInt& delta) {
    if ((counts_.size() + 1) * 4 >= slots_.size() * 3) Grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = HashKey(key) & mask;
    while (slots_[slot] != 0) {
      const std::size_t entry = slots_[slot] - 1;
      if (KeyEquals(entry, key)) {
        counts_[entry] += delta;
        return;
      }
      slot = (slot + 1) & mask;
    }
    slots_[slot] = static_cast<std::uint32_t>(counts_.size() + 1);
    arena_.insert(arena_.end(), key, key + width_);
    counts_.push_back(delta);
  }

  /// Resident footprint (capacities, not sizes — what the allocator holds).
  /// BigInt limb spill is not counted; the budget is an admission-control
  /// estimate, not a malloc ledger.
  std::uint64_t ApproxBytes() const {
    return static_cast<std::uint64_t>(arena_.capacity()) * sizeof(Element) +
           static_cast<std::uint64_t>(counts_.capacity()) * sizeof(BigInt) +
           static_cast<std::uint64_t>(slots_.capacity()) *
               sizeof(std::uint32_t);
  }

 private:
  std::uint64_t HashKey(const Element* key) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < width_; ++i) {
      h ^= key[i];
      h *= 0xbf58476d1ce4e5b9ull;
    }
    return h ^ (h >> 29);
  }

  bool KeyEquals(std::size_t entry, const Element* key) const {
    const Element* stored = arena_.data() + entry * width_;
    for (std::size_t i = 0; i < width_; ++i) {
      if (stored[i] != key[i]) return false;
    }
    return true;
  }

  void Grow() {
    BAGDET_FAILPOINT("hom/dp_table_grow");
    std::vector<std::uint32_t> fresh(slots_.size() * 2, 0);
    const std::size_t mask = fresh.size() - 1;
    for (std::size_t entry = 0; entry < counts_.size(); ++entry) {
      std::size_t slot = HashKey(Key(entry)) & mask;
      while (fresh[slot] != 0) slot = (slot + 1) & mask;
      fresh[slot] = static_cast<std::uint32_t>(entry + 1);
    }
    slots_ = std::move(fresh);
  }

  std::size_t width_;
  std::vector<Element> arena_;   // size() * width_ elements
  std::vector<BigInt> counts_;   // parallel to packed keys
  std::vector<std::uint32_t> slots_;  // entry index + 1; 0 = empty
};

/// Counts homomorphisms of a single *connected* component by variable
/// elimination: a count-annotated join plan over the atoms, projecting out
/// every variable after its last use. Unlike enumeration this runs in time
/// polynomial in the table sizes, not in the (possibly astronomical)
/// number of homomorphisms — e.g. hom(path, clique) stays linear while the
/// count itself is exponential. Per plan step, all variable→slot mappings
/// are resolved once up front, and candidate facts come from the most
/// selective bucket of the target's positional index.
BigInt CountComponent(const Structure& component, const Structure& to) {
  if (component.DomainSize() == 0) {
    // A lone nullary fact: one hom when present, none otherwise.
    for (RelationId r = 0; r < component.schema().NumRelations(); ++r) {
      if (!component.Facts(r).empty() && to.Facts(r).empty()) return BigInt(0);
    }
    return BigInt(1);
  }
  if (component.NumFacts() == 0) {
    // Isolated element: any image works.
    return BigInt(static_cast<std::int64_t>(to.DomainSize()));
  }
  const StructureIndex& to_index = to.Index();
  std::vector<Task> plan = PlanTasks(component);
  // Last atom-task index using each element of the component.
  std::vector<std::size_t> last_use(component.DomainSize(), 0);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    for (Element e : plan[i].atom) last_use[e] = i;
  }
  // The table maps assignments of the live variables (kept sorted by
  // variable id in `live`) to the number of extensions producing them.
  std::vector<Element> live;
  FlatTable table(0);
  table.Add(nullptr, BigInt(1));
  // Connected components with facts have no isolated elements, but stay
  // correct if one ever appears in a plan: each contributes a free factor
  // of |dom(to)|.
  BigInt isolated_factor(1);
  // Transient DP memory is accounted against the governing request: the
  // held total tracks the live + under-construction tables and is
  // released on every exit, including a tripped unwind.
  ScopedCharge dp_mem("hom.dp");
  for (std::size_t i = 0; i < plan.size(); ++i) {
    ExecCheckPoint("hom.dp");
    BAGDET_FAILPOINT("hom/dp_step");
    const Task& task = plan[i];
    if (!task.is_atom) {
      isolated_factor *= BigInt(static_cast<std::int64_t>(to.DomainSize()));
      continue;
    }
    const std::vector<Tuple>& facts = to.Facts(task.relation);
    if (task.atom.empty()) {
      // Nullary atom: a presence test, no bindings.
      if (facts.empty()) return BigInt(0);
      continue;
    }
    // New live set: current ∪ atom vars; `kept` drops vars last used here.
    std::vector<Element> next_live = live;
    for (Element var : task.atom) {
      if (std::find(next_live.begin(), next_live.end(), var) ==
          next_live.end()) {
        next_live.push_back(var);
      }
    }
    std::sort(next_live.begin(), next_live.end());
    std::vector<Element> kept;
    for (Element var : next_live) {
      if (last_use[var] > i) kept.push_back(var);
    }
    // Resolve every variable→slot lookup once for the whole step.
    auto slot_in = [](const std::vector<Element>& vars, Element var) {
      return static_cast<std::size_t>(
          std::find(vars.begin(), vars.end(), var) - vars.begin());
    };
    std::vector<std::size_t> live_slot(live.size());
    for (std::size_t v = 0; v < live.size(); ++v) {
      live_slot[v] = slot_in(next_live, live[v]);
    }
    std::vector<std::size_t> atom_slot(task.atom.size());
    // key_slot[pos]: index into the current table key whose value binds
    // atom position `pos`, or npos when the position is free.
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::size_t> key_slot(task.atom.size(), npos);
    for (std::size_t pos = 0; pos < task.atom.size(); ++pos) {
      atom_slot[pos] = slot_in(next_live, task.atom[pos]);
      std::size_t in_live = slot_in(live, task.atom[pos]);
      if (in_live < live.size()) key_slot[pos] = in_live;
    }
    std::vector<std::size_t> kept_slot(kept.size());
    for (std::size_t k = 0; k < kept.size(); ++k) {
      kept_slot[k] = slot_in(next_live, kept[k]);
    }
    // Slots of next_live not carried over from live: these must read as
    // unassigned at the start of every fact probe.
    std::vector<std::size_t> fresh_slots;
    for (std::size_t s = 0; s < next_live.size(); ++s) {
      bool carried = false;
      for (std::size_t v = 0; v < live.size() && !carried; ++v) {
        carried = live_slot[v] == s;
      }
      if (!carried) fresh_slots.push_back(s);
    }
    FlatTable next_table(kept.size());
    const std::uint64_t prev_table_bytes = table.ApproxBytes();
    std::vector<Element> joined(next_live.size(), kUnassigned);
    std::vector<Element> projected(kept.size());
    for (std::size_t entry = 0; entry < table.size(); ++entry) {
      ExecCheckPoint("hom.dp");
      const Element* key = table.Key(entry);
      const BigInt& count = table.Count(entry);
      // Fill the carried-over slots once per entry; fact probes only touch
      // fresh slots.
      for (std::size_t v = 0; v < live.size(); ++v) {
        joined[live_slot[v]] = key[v];
      }
      // Most selective bucket among the bound positions.
      std::size_t best_pos = npos;
      std::size_t best_size = facts.size();
      for (std::size_t pos = 0; pos < task.atom.size(); ++pos) {
        if (key_slot[pos] == npos) continue;
        std::size_t size =
            to_index.BucketSize(task.relation, pos, key[key_slot[pos]]);
        if (size < best_size || best_pos == npos) {
          best_size = size;
          best_pos = pos;
          if (size == 0) break;
        }
      }
      FactIdSpan bucket;
      if (best_pos != npos) {
        bucket = to_index.Bucket(task.relation, best_pos,
                                 key[key_slot[best_pos]]);
      }
      const std::size_t num_candidates =
          best_pos != npos ? bucket.size() : facts.size();
      for (std::size_t c = 0; c < num_candidates; ++c) {
        ExecCheckPoint("hom.dp");
        const Tuple& fact =
            best_pos != npos ? facts[bucket.first[c]] : facts[c];
        for (std::size_t s : fresh_slots) joined[s] = kUnassigned;
        bool ok = true;
        for (std::size_t pos = 0; pos < fact.size() && ok; ++pos) {
          Element& slot_value = joined[atom_slot[pos]];
          if (slot_value == kUnassigned) {
            slot_value = fact[pos];
          } else if (slot_value != fact[pos]) {
            ok = false;
          }
        }
        if (!ok) continue;
        for (std::size_t k = 0; k < kept.size(); ++k) {
          projected[k] = joined[kept_slot[k]];
        }
        next_table.Add(projected.data(), count);
      }
      dp_mem.Update(prev_table_bytes + next_table.ApproxBytes());
    }
    live = std::move(kept);
    table = std::move(next_table);
    if (table.empty()) return BigInt(0);
  }
  BigInt total(0);
  for (std::size_t entry = 0; entry < table.size(); ++entry) {
    total += table.Count(entry);
  }
  total *= isolated_factor;
  return total;
}

}  // namespace

BigInt CountHoms(const Structure& from, const Structure& to) {
  BigInt product(1);
  for (const Structure& component : ConnectedComponents(from)) {
    BigInt c = CountComponent(component, to);
    if (c.IsZero()) return BigInt(0);
    product *= c;
  }
  return product;
}

bool ExistsHom(const Structure& from, const Structure& to) {
  for (const Structure& component : ConnectedComponents(from)) {
    if (component.DomainSize() == 0) {
      bool present = true;
      for (RelationId r = 0; r < component.schema().NumRelations(); ++r) {
        if (!component.Facts(r).empty() && to.Facts(r).empty()) present = false;
      }
      if (!present) return false;
      continue;
    }
    if (component.NumFacts() == 0) {
      if (to.DomainSize() == 0) return false;
      continue;
    }
    bool found = false;
    std::function<bool(const std::vector<Element>&)> visit =
        [&found](const std::vector<Element>&) {
          found = true;
          return false;  // Stop at the first hit.
        };
    Matcher matcher(component, to, visit, nullptr);
    matcher.Run();
    if (!found) return false;
  }
  return true;
}

BigInt CountInjectiveHoms(const Structure& from, const Structure& to) {
  if (from.DomainSize() > to.DomainSize()) return BigInt(0);
  // Injectivity couples components, so match the whole structure at once.
  BigInt count(0);
  std::function<bool(const std::vector<Element>&)> visit =
      [&count](const std::vector<Element>&) {
        count += BigInt(1);
        return true;
      };
  // Nullary facts must still be present.
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    if (from.schema().Arity(r) == 0 && !from.Facts(r).empty() &&
        to.Facts(r).empty()) {
      return BigInt(0);
    }
  }
  std::vector<bool> used(to.DomainSize(), false);
  Matcher matcher(from, to, visit, &used);
  matcher.Run();
  return count;
}

BigInt CountHomsByEnumeration(const Structure& from, const Structure& to) {
  BigInt count(0);
  std::function<bool(const std::vector<Element>&)> visit =
      [&count](const std::vector<Element>&) {
        count += BigInt(1);
        return true;
      };
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    if (from.schema().Arity(r) == 0 && !from.Facts(r).empty() &&
        to.Facts(r).empty()) {
      return BigInt(0);
    }
  }
  Matcher matcher(from, to, visit, nullptr);
  matcher.Run();
  return count;
}

BigInt CountHomsNaive(const Structure& from, const Structure& to) {
  const std::size_t n = from.DomainSize();
  const std::size_t m = to.DomainSize();
  // Check nullary facts up front.
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    if (from.schema().Arity(r) == 0 && !from.Facts(r).empty() &&
        to.Facts(r).empty()) {
      return BigInt(0);
    }
  }
  if (n == 0) return BigInt(1);
  if (m == 0) return BigInt(0);
  std::vector<Element> assignment(n, 0);
  BigInt count(0);
  for (;;) {
    bool ok = true;
    for (RelationId r = 0; r < from.schema().NumRelations() && ok; ++r) {
      for (const Tuple& t : from.Facts(r)) {
        Tuple image(t.size());
        for (std::size_t i = 0; i < t.size(); ++i) image[i] = assignment[t[i]];
        if (!to.HasFact(r, image)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) count += BigInt(1);
    // Advance the odometer.
    std::size_t i = 0;
    while (i < n && ++assignment[i] == m) {
      assignment[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return count;
}

bool EnumerateHoms(
    const Structure& from, const Structure& to,
    const std::function<bool(const std::vector<Element>&)>& visit) {
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    if (from.schema().Arity(r) == 0 && !from.Facts(r).empty() &&
        to.Facts(r).empty()) {
      return true;  // No homs; vacuously completed.
    }
  }
  Matcher matcher(from, to, visit, nullptr);
  return matcher.Run();
}

}  // namespace bagdet
