#include "hom/hom.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>

#include "hom/domain.h"
#include "structs/index.h"
#include "util/exec_context.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace bagdet {

namespace {

constexpr Element kUnassigned = static_cast<Element>(-1);

/// A unit of backtracking work: match one atom of `from` against the facts
/// of `to`, or choose the image of one isolated element.
struct Task {
  bool is_atom = true;
  RelationId relation = 0;
  Tuple atom;          // Elements of `from` (is_atom).
  Element element = 0; // Isolated element (!is_atom).
};

/// log2 of a variable's candidate count (+1 so empty and singleton stay
/// ordered) — the per-variable term of the domain-product table bound.
double VarLogWeight(Element v, const DomainSet* doms,
                    std::size_t target_size) {
  const std::size_t count =
      doms != nullptr ? doms->domain(v).Count() : target_size;
  return std::log2(static_cast<double>(count) + 1.0);
}

/// Orders the atoms by a min-new-live-vars greedy rule: each round picks
/// the atom introducing the fewest not-yet-seen elements (tie-break: most
/// already-seen positions). Kept as the fallback for bodies too large for
/// the exact order search.
void GreedyOrder(std::vector<Task>* atoms, std::size_t num_vars) {
  std::vector<bool> seen_element(num_vars, false);
  std::vector<bool> done(atoms->size(), false);
  std::vector<Element> distinct_new;
  std::vector<Task> plan;
  plan.reserve(atoms->size());
  for (std::size_t round = 0; round < atoms->size(); ++round) {
    std::size_t best = atoms->size();
    std::size_t best_new = static_cast<std::size_t>(-1);
    int best_seen = -1;
    for (std::size_t i = 0; i < atoms->size(); ++i) {
      if (done[i]) continue;
      distinct_new.clear();
      int seen = 0;
      for (Element e : (*atoms)[i].atom) {
        if (seen_element[e]) {
          ++seen;
        } else if (std::find(distinct_new.begin(), distinct_new.end(), e) ==
                   distinct_new.end()) {
          distinct_new.push_back(e);
        }
      }
      const std::size_t new_vars = distinct_new.size();
      if (new_vars < best_new ||
          (new_vars == best_new && seen > best_seen)) {
        best_new = new_vars;
        best_seen = seen;
        best = i;
      }
    }
    done[best] = true;
    for (Element e : (*atoms)[best].atom) seen_element[e] = true;
    plan.push_back(std::move((*atoms)[best]));
  }
  *atoms = std::move(plan);
}

/// Exact elimination-order search: Held–Karp-style DP over atom subsets
/// minimizing the peak per-step table bound Σ_{v live} log2(|D(v)|+1)
/// (induced width weighted by domain size), tie-broken by the sum of step
/// bounds and then by the deterministic ascending (subset, atom) relax
/// order. Returns false (leaving `atoms` untouched) when the component is
/// outside the searchable range.
bool OrderSearch(std::vector<Task>* atoms, std::size_t num_vars,
                 const DomainSet* doms, std::size_t target_size,
                 std::size_t max_atoms) {
  // 2^n subset tables: the hard cap keeps the search a few MB / few
  // hundred µs even if callers raise the knob past the default.
  constexpr std::size_t kHardMaxAtoms = 16;
  // With two atoms either order peaks at max(w(A), w(B)) — the carried
  // variables are A∩B both ways — so search only pays off from 3 atoms.
  const std::size_t n = atoms->size();
  if (n < 3 || n > max_atoms || n > kHardMaxAtoms || num_vars > 64) {
    return false;
  }
  std::vector<std::uint64_t> avars(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (Element v : (*atoms)[i].atom) avars[i] |= 1ull << v;
  }
  double vlog[64] = {};
  for (Element v = 0; v < num_vars; ++v) {
    vlog[v] = VarLogWeight(v, doms, target_size);
  }
  const std::size_t full = (std::size_t{1} << n) - 1;
  // vars_in[S] = variables of the atoms in S; rest[S] = variables of the
  // atoms outside S. live(S) = vars_in[S] & rest[S].
  std::vector<std::uint64_t> vars_in(full + 1, 0), rest(full + 1, 0);
  for (std::size_t s = 0; s <= full; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      if (s & (std::size_t{1} << i)) {
        vars_in[s] |= avars[i];
      } else {
        rest[s] |= avars[i];
      }
    }
  }
  auto mask_weight = [&](std::uint64_t mask) {
    double w = 0.0;
    while (mask != 0) {
      const int v = __builtin_ctzll(mask);
      w += vlog[v];
      mask &= mask - 1;
    }
    return w;
  };
  constexpr double kInf = 1e300;
  constexpr double kEps = 1e-9;
  std::vector<double> cost_max(full + 1, kInf), cost_sum(full + 1, kInf);
  std::vector<std::uint8_t> parent(full + 1, 0);
  cost_max[0] = 0.0;
  cost_sum[0] = 0.0;
  for (std::size_t s = 0; s <= full; ++s) {
    if (cost_max[s] >= kInf) continue;
    const std::uint64_t live = vars_in[s] & rest[s];
    for (std::size_t a = 0; a < n; ++a) {
      if (s & (std::size_t{1} << a)) continue;
      const std::size_t next = s | (std::size_t{1} << a);
      const double w = mask_weight(live | avars[a]);
      const double cand_max = std::max(cost_max[s], w);
      const double cand_sum = cost_sum[s] + w;
      if (cand_max < cost_max[next] - kEps ||
          (cand_max < cost_max[next] + kEps &&
           cand_sum < cost_sum[next] - kEps)) {
        cost_max[next] = cand_max;
        cost_sum[next] = cand_sum;
        parent[next] = static_cast<std::uint8_t>(a);
      }
    }
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t s = full; s != 0; s ^= std::size_t{1} << parent[s]) {
    order.push_back(parent[s]);
  }
  std::reverse(order.begin(), order.end());
  std::vector<Task> plan;
  plan.reserve(n);
  for (std::size_t i : order) plan.push_back(std::move((*atoms)[i]));
  *atoms = std::move(plan);
  return true;
}

double EstimateDpWork(const std::vector<Task>& plan, std::size_t num_vars,
                      const DomainSet* doms, const Structure& to);

/// Elimination plan over the atoms of `from`: greedy order, upgraded to
/// the exact subset-DP order during the pruned-domain re-plan when the
/// body is small enough AND the plan's estimated work dwarfs the
/// search's own ~2^n·n cost — the search must never cost more than it
/// can save. Without pruned domains the score degenerates to induced
/// width under uniform weights, where greedy min-new-live-vars is
/// already near-optimal and the domain-product estimate overshoots
/// selective-bucket instances by orders of magnitude, so the search
/// only runs when `doms` is present. Isolated elements come last either
/// way.
std::vector<Task> PlanTasks(const Structure& from, const DpOptions& options,
                            const DomainSet* doms, const Structure& to) {
  const std::size_t target_size = to.DomainSize();
  std::vector<Task> atoms;
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    for (const Tuple& t : from.Facts(r)) {
      Task task;
      task.relation = r;
      task.atom = t;
      atoms.push_back(std::move(task));
    }
  }
  GreedyOrder(&atoms, from.DomainSize());
  if (doms != nullptr && options.order_search_max_atoms != 0 &&
      atoms.size() >= 3 && atoms.size() <= options.order_search_max_atoms &&
      from.DomainSize() <= 64) {
    // One subset-DP relaxation and one DP table entry cost the same few
    // tens of ns, so demand an 8× margin before spending 2^n·n
    // relaxations on order search.
    const double search_cost =
        std::exp2(static_cast<double>(atoms.size())) *
        static_cast<double>(atoms.size());
    if (EstimateDpWork(atoms, from.DomainSize(), doms, to) >=
        8.0 * search_cost) {
      OrderSearch(&atoms, from.DomainSize(), doms, target_size,
                  options.order_search_max_atoms);
    }
  }
  std::vector<bool> seen_element(from.DomainSize(), false);
  for (const Task& task : atoms) {
    for (Element e : task.atom) seen_element[e] = true;
  }
  for (Element e = 0; e < from.DomainSize(); ++e) {
    if (!seen_element[e]) {
      Task task;
      task.is_atom = false;
      task.element = e;
      atoms.push_back(std::move(task));
    }
  }
  return atoms;
}

/// Upper-bound estimate of the DP's work: for each step, the smaller of
/// two bounds on the joined rows, summed over steps. The first is the
/// domain-product bound (2^Σ log-weights over the step's live vars). The
/// second is a selectivity chain: the number of fact probes at step i is
/// at most (rows reaching step i) × (candidates per row), and with a
/// bound position the index narrows candidates to one bucket, so the
/// per-step extension factor is the average bucket size — |facts| over
/// the positional occupancy — minimized over the step's bound positions
/// (|facts| itself when the atom shares no live variable). The chain
/// catches functional targets (unit buckets) that the uniform product
/// overshoots by orders of magnitude. Drives the domain gate, the order
/// search trigger, and the parallel-split decision — never correctness.
double EstimateDpWork(const std::vector<Task>& plan, std::size_t num_vars,
                      const DomainSet* doms, const Structure& to) {
  const std::size_t target_size = to.DomainSize();
  const StructureIndex& to_index = to.Index();
  std::vector<std::size_t> last_use(num_vars, 0);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    for (Element e : plan[i].atom) last_use[e] = i;
  }
  std::vector<bool> live(num_vars, false);
  // Per-var log weights once, live weight maintained incrementally: the
  // walk is O(plan · arity), not O(plan · num_vars) log2 calls.
  std::vector<double> vlog(num_vars);
  for (Element v = 0; v < num_vars; ++v) {
    vlog[v] = VarLogWeight(v, doms, target_size);
  }
  // The chain saturates where the uniform cap takes over anyway.
  constexpr double kCap = 1.125899906842624e15;  // 2^50
  double total = 0.0;
  double chain = 1.0;
  double live_weight = 0.0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (!plan[i].is_atom) continue;
    const Task& task = plan[i];
    const double num_facts =
        static_cast<double>(to.Facts(task.relation).size());
    double factor = num_facts;
    for (std::size_t pos = 0; pos < task.atom.size(); ++pos) {
      const Element v = task.atom[pos];
      if (live[v]) {
        const double occupancy = static_cast<double>(
            to_index.PresentMask(task.relation, pos).Count());
        factor = std::min(
            factor, occupancy > 0.0 ? num_facts / occupancy : 0.0);
      }
    }
    for (Element v : task.atom) {
      if (!live[v]) {
        live[v] = true;
        live_weight += vlog[v];
      }
    }
    chain = std::min(chain * std::max(factor, 1.0), kCap);
    total += std::min(std::exp2(std::min(live_weight, 50.0)), chain);
    for (Element v : task.atom) {
      // live[v] guards double-removal when a variable repeats in the atom.
      if (last_use[v] == i && live[v]) {
        live[v] = false;
        live_weight -= vlog[v];
      }
    }
  }
  return total;
}

/// Cheap conservative upper bound on EstimateDpWork under uniform
/// weights: every step's table bound is at most 2^(num_vars · per-var
/// weight), and there are at most |plan| steps. One log2 + one exp2, so
/// the domain gate can reject tiny instances without walking the plan.
double QuickWorkBound(const std::vector<Task>& plan, std::size_t num_vars,
                      std::size_t target_size) {
  const double per_var = std::log2(static_cast<double>(target_size) + 1.0);
  const double bits =
      std::min(static_cast<double>(num_vars) * per_var, 50.0);
  return static_cast<double>(plan.size()) * std::exp2(bits);
}

/// Cost of one revise round of the atom-support fixpoint: every atom
/// scans its full target bucket once, arity tests per fact. The domain
/// gate demands the DP work estimate dominate this, else the layer
/// cannot pay for itself even when it would prune.
double DomainSetupCost(const std::vector<Task>& plan, const Structure& to) {
  double cost = 0.0;
  for (const Task& task : plan) {
    if (!task.is_atom) continue;
    cost += static_cast<double>(to.Facts(task.relation).size()) *
            static_cast<double>(std::max<std::size_t>(task.atom.size(), 1));
  }
  return cost;
}

/// The domain layer engages when forced (domain_min_work = 0) or when the
/// uniform-weight work bound clears both the absolute floor and 4× the
/// fixpoint's own setup cost. QuickWorkBound short-circuits the estimate
/// walk for tiny instances.
bool DomainGate(const std::vector<Task>& plan, const Structure& from,
                const Structure& to, const DpOptions& options) {
  if (!options.use_domains || from.DomainSize() == 0) return false;
  if (options.domain_min_work <= 0.0) return true;
  if (QuickWorkBound(plan, from.DomainSize(), to.DomainSize()) <
      options.domain_min_work) {
    return false;
  }
  const double est = EstimateDpWork(plan, from.DomainSize(), nullptr, to);
  return est >= options.domain_min_work &&
         est >= 4.0 * DomainSetupCost(plan, to);
}

/// True when the atom-support fixpoint pruned nothing: every variable can
/// still map to every target element. Such domains carry no information —
/// per-candidate tests and per-binding propagation can only re-derive
/// them — so callers drop the model (the parallel split can still
/// partition a full domain).
bool AllDomainsFull(const DomainSet& doms, std::size_t target_size) {
  for (std::size_t v = 0; v < doms.num_vars(); ++v) {
    if (doms.domain(static_cast<Element>(v)).Count() != target_size) {
      return false;
    }
  }
  return true;
}

}  // namespace

namespace {

/// Shared backtracking engine. `visit` is called at every complete
/// assignment; returning false aborts the search. `used` is non-null for
/// injective matching. Candidate facts are narrowed through the target's
/// positional index — the most selective bound position drives the scan,
/// intersected with the runner-up bucket when the two are within 2× of
/// each other — and per-variable candidate domains are propagated as
/// variables bind, so unsupported subtrees are cut before recursion.
class Matcher {
 public:
  Matcher(const Structure& from, const Structure& to,
          const std::function<bool(const std::vector<Element>&)>& visit,
          std::vector<bool>* used, const DpOptions& options = DpOptions())
      : to_(to), index_(to.Index()), visit_(visit), used_(used),
        assignment_(from.DomainSize(), kUnassigned) {
    plan_ = PlanTasks(from, options, nullptr, to);
    // The domain layer only engages when the uniform-weight bound on the
    // search says its fixed cost can amortize (the domain-product bound
    // also bounds the backtracking tree).
    if (DomainGate(plan_, from, to, options)) {
      model_.emplace(from, to);
      feasible_ = model_->InitialDomains(&root_domains_);
      if (feasible_) {
        if (AllDomainsFull(root_domains_, to.DomainSize())) {
          // Nothing pruned: propagation cannot cut anything the bucket
          // scan would not, so keep the bare backtracking engine.
          model_.reset();
        } else {
          // Re-plan with the pruned per-variable weights.
          plan_ = PlanTasks(from, options, &root_domains_, to);
        }
      }
    }
    bound_stack_.resize(plan_.size());
    if (model_.has_value()) {
      domain_stack_.resize(plan_.size() + 1);
      domain_stack_[0] = root_domains_;
    }
  }

  /// Returns false iff the visitor aborted.
  bool Run() {
    if (!feasible_) return true;  // Pre-pruned to empty: no homomorphisms.
    return RunFrom(0);
  }

 private:
  bool TryFact(std::size_t task_index, const Tuple& fact) {
    const Task& task = plan_[task_index];
    std::vector<Element>& bound = bound_stack_[task_index];
    bound.clear();
    bool ok = true;
    for (std::size_t pos = 0; pos < fact.size() && ok; ++pos) {
      Element var = task.atom[pos];
      if (assignment_[var] == kUnassigned) {
        if (used_ != nullptr && (*used_)[fact[pos]]) {
          ok = false;
          break;
        }
        assignment_[var] = fact[pos];
        if (used_ != nullptr) (*used_)[fact[pos]] = true;
        bound.push_back(var);
      } else if (assignment_[var] != fact[pos]) {
        ok = false;
      }
    }
    // Propagate the new bindings through the candidate domains; an
    // emptied domain means no extension of this fact can complete, so the
    // subtree is skipped without recursing. The child slot must be
    // refreshed even when this fact binds nothing — deeper frames read it
    // as their parent state.
    if (ok && model_.has_value()) {
      DomainSet& child = domain_stack_[task_index + 1];
      child = domain_stack_[task_index];
      for (Element var : bound) {
        if (!model_->Bind(&child, var, assignment_[var])) {
          ok = false;
          break;
        }
      }
    }
    bool keep_going = true;
    if (ok) keep_going = RunFrom(task_index + 1);
    for (auto rit = bound.rbegin(); rit != bound.rend(); ++rit) {
      if (used_ != nullptr) (*used_)[assignment_[*rit]] = false;
      assignment_[*rit] = kUnassigned;
    }
    return keep_going;
  }

  bool RunFrom(std::size_t task_index) {
    // The backtracking tree is the unbounded dimension here (hom(v, q)
    // existence checks can be exponential with no early exit), so every
    // node is a governed checkpoint.
    ExecCheckPoint("hom.matcher");
    BAGDET_FAILPOINT("hom/matcher");
    if (task_index == plan_.size()) return visit_(assignment_);
    const Task& task = plan_[task_index];
    if (!task.is_atom) {
      // Isolated elements never appear before an atom task (both plan
      // orders put them last), so the domain stack is not extended here.
      for (Element image = 0; image < to_.DomainSize(); ++image) {
        if (used_ != nullptr && (*used_)[image]) continue;
        assignment_[task.element] = image;
        if (used_ != nullptr) (*used_)[image] = true;
        bool keep_going = RunFrom(task_index + 1);
        if (used_ != nullptr) (*used_)[image] = false;
        assignment_[task.element] = kUnassigned;
        if (!keep_going) return false;
      }
      return true;
    }
    const std::vector<Tuple>& facts = to_.Facts(task.relation);
    if (task.atom.empty()) {
      // Nullary atom: present or not, no bindings. The domain state is
      // carried through unchanged.
      if (model_.has_value()) {
        domain_stack_[task_index + 1] = domain_stack_[task_index];
      }
      if (facts.empty()) return true;
      return RunFrom(task_index + 1);
    }
    // Most selective bucket among the bound positions, plus the runner-up
    // when it is nearly as selective (within 2×): intersecting the two id
    // sets through a fact-id bitset often cuts the scan by the product of
    // both selectivities for the cost of one linear pass.
    std::size_t best_pos = fact_arity_sentinel();
    std::size_t second_pos = fact_arity_sentinel();
    std::size_t best_size = facts.size();
    std::size_t second_size = facts.size();
    for (std::size_t pos = 0; pos < task.atom.size(); ++pos) {
      Element image = assignment_[task.atom[pos]];
      if (image == kUnassigned) continue;
      std::size_t size = index_.BucketSize(task.relation, pos, image);
      if (size < best_size || best_pos == fact_arity_sentinel()) {
        second_pos = best_pos;
        second_size = best_size;
        best_pos = pos;
        best_size = size;
        if (size == 0) break;
      } else if (size < second_size || second_pos == fact_arity_sentinel()) {
        second_pos = pos;
        second_size = size;
      }
    }
    if (best_pos != fact_arity_sentinel()) {
      Element image = assignment_[task.atom[best_pos]];
      FactIdSpan bucket = index_.Bucket(task.relation, best_pos, image);
      // Tiny buckets are cheaper to scan than to intersect (building the
      // id bitset costs a pass over the runner-up bucket up front).
      if (best_size > 16 && second_pos != fact_arity_sentinel() &&
          second_size <= 2 * best_size) {
        Element second_image = assignment_[task.atom[second_pos]];
        FactIdSpan other =
            index_.Bucket(task.relation, second_pos, second_image);
        SVOBitset in_other(facts.size());
        for (std::uint32_t id : other) in_other.Set(id);
        for (std::uint32_t id : bucket) {
          if (!in_other.Test(id)) continue;
          if (!TryFact(task_index, facts[id])) return false;
        }
        return true;
      }
      for (std::uint32_t id : bucket) {
        if (!TryFact(task_index, facts[id])) return false;
      }
      return true;
    }
    for (const Tuple& fact : facts) {
      if (!TryFact(task_index, fact)) return false;
    }
    return true;
  }

  static constexpr std::size_t fact_arity_sentinel() {
    return static_cast<std::size_t>(-1);
  }

  const Structure& to_;
  const StructureIndex& index_;
  const std::function<bool(const std::vector<Element>&)>& visit_;
  std::vector<bool>* used_;
  std::vector<Element> assignment_;
  std::vector<Task> plan_;
  // Per-depth scratch of vars bound at that frame (avoids a heap
  // allocation per visited fact).
  std::vector<std::vector<Element>> bound_stack_;
  // Candidate-domain layer: the model plus one domain snapshot per depth
  // (copied down and narrowed as each frame binds variables).
  std::optional<DomainModel> model_;
  DomainSet root_domains_;
  std::vector<DomainSet> domain_stack_;
  bool feasible_ = true;
};

/// Open-addressing hash table from packed keys — `width` Elements stored
/// back to back in one arena — to BigInt counts. This is the DP table of
/// the variable-elimination counter: no per-entry node allocations, no
/// tree comparisons, keys contiguous in memory.
class FlatTable {
 public:
  explicit FlatTable(std::size_t width) : width_(width) {
    slots_.assign(16, 0);
  }

  std::size_t size() const { return counts_.size(); }
  bool empty() const { return counts_.empty(); }
  std::size_t width() const { return width_; }

  const Element* Key(std::size_t entry) const {
    return arena_.data() + entry * width_;
  }
  const BigInt& Count(std::size_t entry) const { return counts_[entry]; }

  /// table[key] += delta, inserting the key when absent.
  void Add(const Element* key, const BigInt& delta) {
    if ((counts_.size() + 1) * 4 >= slots_.size() * 3) Grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = HashKey(key) & mask;
    while (slots_[slot] != 0) {
      const std::size_t entry = slots_[slot] - 1;
      if (KeyEquals(entry, key)) {
        counts_[entry] += delta;
        return;
      }
      slot = (slot + 1) & mask;
    }
    slots_[slot] = static_cast<std::uint32_t>(counts_.size() + 1);
    arena_.insert(arena_.end(), key, key + width_);
    counts_.push_back(delta);
  }

  /// Resident footprint (capacities, not sizes — what the allocator holds).
  /// BigInt limb spill is not counted; the budget is an admission-control
  /// estimate, not a malloc ledger.
  std::uint64_t ApproxBytes() const {
    return static_cast<std::uint64_t>(arena_.capacity()) * sizeof(Element) +
           static_cast<std::uint64_t>(counts_.capacity()) * sizeof(BigInt) +
           static_cast<std::uint64_t>(slots_.capacity()) *
               sizeof(std::uint32_t);
  }

 private:
  std::uint64_t HashKey(const Element* key) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < width_; ++i) {
      h ^= key[i];
      h *= 0xbf58476d1ce4e5b9ull;
    }
    return h ^ (h >> 29);
  }

  bool KeyEquals(std::size_t entry, const Element* key) const {
    const Element* stored = arena_.data() + entry * width_;
    for (std::size_t i = 0; i < width_; ++i) {
      if (stored[i] != key[i]) return false;
    }
    return true;
  }

  void Grow() {
    BAGDET_FAILPOINT("hom/dp_table_grow");
    std::vector<std::uint32_t> fresh(slots_.size() * 2, 0);
    const std::size_t mask = fresh.size() - 1;
    for (std::size_t entry = 0; entry < counts_.size(); ++entry) {
      std::size_t slot = HashKey(Key(entry)) & mask;
      while (fresh[slot] != 0) slot = (slot + 1) & mask;
      fresh[slot] = static_cast<std::uint32_t>(entry + 1);
    }
    slots_ = std::move(fresh);
  }

  std::size_t width_;
  std::vector<Element> arena_;   // size() * width_ elements
  std::vector<BigInt> counts_;   // parallel to packed keys
  std::vector<std::uint32_t> slots_;  // entry index + 1; 0 = empty
};

/// Runs the variable-elimination DP over a fixed plan. `doms` (optional)
/// supplies pre-pruned candidate domains: any candidate fact carrying an
/// out-of-domain value at a yet-unbound position is rejected before it can
/// insert a table entry — this is also what restricts a parallel-split
/// chunk to its slice of the split variable's domain.
BigInt RunDpPlan(const std::vector<Task>& plan, const Structure& component,
                 const Structure& to, const DomainSet* doms) {
  const StructureIndex& to_index = to.Index();
  // Last atom-task index using each element of the component.
  std::vector<std::size_t> last_use(component.DomainSize(), 0);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    for (Element e : plan[i].atom) last_use[e] = i;
  }
  // The table maps assignments of the live variables (kept sorted by
  // variable id in `live`) to the number of extensions producing them.
  std::vector<Element> live;
  FlatTable table(0);
  table.Add(nullptr, BigInt(1));
  // Connected components with facts have no isolated elements, but stay
  // correct if one ever appears in a plan: each contributes a free factor
  // of |dom(to)|.
  BigInt isolated_factor(1);
  // Transient DP memory is accounted against the governing request: the
  // held total tracks the live + under-construction tables and is
  // released on every exit, including a tripped unwind.
  ScopedCharge dp_mem("hom.dp");
  for (std::size_t i = 0; i < plan.size(); ++i) {
    ExecCheckPoint("hom.dp");
    BAGDET_FAILPOINT("hom/dp_step");
    const Task& task = plan[i];
    if (!task.is_atom) {
      isolated_factor *= BigInt(static_cast<std::int64_t>(to.DomainSize()));
      continue;
    }
    const std::vector<Tuple>& facts = to.Facts(task.relation);
    if (task.atom.empty()) {
      // Nullary atom: a presence test, no bindings.
      if (facts.empty()) return BigInt(0);
      continue;
    }
    // New live set: current ∪ atom vars; `kept` drops vars last used here.
    std::vector<Element> next_live = live;
    for (Element var : task.atom) {
      if (std::find(next_live.begin(), next_live.end(), var) ==
          next_live.end()) {
        next_live.push_back(var);
      }
    }
    std::sort(next_live.begin(), next_live.end());
    std::vector<Element> kept;
    for (Element var : next_live) {
      if (last_use[var] > i) kept.push_back(var);
    }
    // Resolve every variable→slot lookup once for the whole step.
    auto slot_in = [](const std::vector<Element>& vars, Element var) {
      return static_cast<std::size_t>(
          std::find(vars.begin(), vars.end(), var) - vars.begin());
    };
    std::vector<std::size_t> live_slot(live.size());
    for (std::size_t v = 0; v < live.size(); ++v) {
      live_slot[v] = slot_in(next_live, live[v]);
    }
    std::vector<std::size_t> atom_slot(task.atom.size());
    // key_slot[pos]: index into the current table key whose value binds
    // atom position `pos`, or npos when the position is free.
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::size_t> key_slot(task.atom.size(), npos);
    // domain_of[pos]: candidate domain of the variable at `pos`, consulted
    // for free positions only (bound values passed the test when fresh).
    std::vector<const SVOBitset*> domain_of(task.atom.size(), nullptr);
    for (std::size_t pos = 0; pos < task.atom.size(); ++pos) {
      atom_slot[pos] = slot_in(next_live, task.atom[pos]);
      std::size_t in_live = slot_in(live, task.atom[pos]);
      if (in_live < live.size()) key_slot[pos] = in_live;
      if (doms != nullptr) domain_of[pos] = &doms->domain(task.atom[pos]);
    }
    std::vector<std::size_t> kept_slot(kept.size());
    for (std::size_t k = 0; k < kept.size(); ++k) {
      kept_slot[k] = slot_in(next_live, kept[k]);
    }
    // Slots of next_live not carried over from live: these must read as
    // unassigned at the start of every fact probe.
    std::vector<std::size_t> fresh_slots;
    for (std::size_t s = 0; s < next_live.size(); ++s) {
      bool carried = false;
      for (std::size_t v = 0; v < live.size() && !carried; ++v) {
        carried = live_slot[v] == s;
      }
      if (!carried) fresh_slots.push_back(s);
    }
    FlatTable next_table(kept.size());
    const std::uint64_t prev_table_bytes = table.ApproxBytes();
    std::vector<Element> joined(next_live.size(), kUnassigned);
    std::vector<Element> projected(kept.size());
    for (std::size_t entry = 0; entry < table.size(); ++entry) {
      ExecCheckPoint("hom.dp");
      const Element* key = table.Key(entry);
      const BigInt& count = table.Count(entry);
      // Fill the carried-over slots once per entry; fact probes only touch
      // fresh slots.
      for (std::size_t v = 0; v < live.size(); ++v) {
        joined[live_slot[v]] = key[v];
      }
      // Most selective bucket among the bound positions.
      std::size_t best_pos = npos;
      std::size_t best_size = facts.size();
      for (std::size_t pos = 0; pos < task.atom.size(); ++pos) {
        if (key_slot[pos] == npos) continue;
        std::size_t size =
            to_index.BucketSize(task.relation, pos, key[key_slot[pos]]);
        if (size < best_size || best_pos == npos) {
          best_size = size;
          best_pos = pos;
          if (size == 0) break;
        }
      }
      FactIdSpan bucket;
      if (best_pos != npos) {
        bucket = to_index.Bucket(task.relation, best_pos,
                                 key[key_slot[best_pos]]);
      }
      const std::size_t num_candidates =
          best_pos != npos ? bucket.size() : facts.size();
      for (std::size_t c = 0; c < num_candidates; ++c) {
        ExecCheckPoint("hom.dp");
        const Tuple& fact =
            best_pos != npos ? facts[bucket.first[c]] : facts[c];
        for (std::size_t s : fresh_slots) joined[s] = kUnassigned;
        bool ok = true;
        for (std::size_t pos = 0; pos < fact.size() && ok; ++pos) {
          Element& slot_value = joined[atom_slot[pos]];
          if (slot_value == kUnassigned) {
            // Domain filter: a value no homomorphism can use dies here,
            // before the table ever sees it.
            if (domain_of[pos] != nullptr &&
                !domain_of[pos]->Test(fact[pos])) {
              ok = false;
              break;
            }
            slot_value = fact[pos];
          } else if (slot_value != fact[pos]) {
            ok = false;
          }
        }
        if (!ok) continue;
        for (std::size_t k = 0; k < kept.size(); ++k) {
          projected[k] = joined[kept_slot[k]];
        }
        next_table.Add(projected.data(), count);
      }
      dp_mem.Update(prev_table_bytes + next_table.ApproxBytes());
    }
    live = std::move(kept);
    table = std::move(next_table);
    if (table.empty()) return BigInt(0);
  }
  BigInt total(0);
  for (std::size_t entry = 0; entry < table.size(); ++entry) {
    total += table.Count(entry);
  }
  total *= isolated_factor;
  return total;
}

/// Counts homomorphisms of a single *connected* component by variable
/// elimination: a count-annotated join plan over the atoms, projecting out
/// every variable after its last use. Unlike enumeration this runs in time
/// polynomial in the table sizes, not in the (possibly astronomical)
/// number of homomorphisms. The domain layer pre-prunes candidates, the
/// subset-DP order search picks the plan, and counts whose estimated work
/// clears the split threshold are partitioned across the global ThreadPool
/// by slicing the first-bound variable's domain — per-chunk sub-counts are
/// folded in chunk order, so the result is bit-identical at any thread
/// count.
BigInt CountComponent(const Structure& component, const Structure& to,
                      const DpOptions& options) {
  if (component.DomainSize() == 0) {
    // A lone nullary fact: one hom when present, none otherwise.
    for (RelationId r = 0; r < component.schema().NumRelations(); ++r) {
      if (!component.Facts(r).empty() && to.Facts(r).empty()) return BigInt(0);
    }
    return BigInt(1);
  }
  if (component.NumFacts() == 0) {
    // Isolated element: any image works.
    return BigInt(static_cast<std::int64_t>(to.DomainSize()));
  }
  std::optional<DomainModel> model;
  DomainSet doms;
  bool pruned = true;
  std::vector<Task> plan = PlanTasks(component, options, nullptr, to);
  // The domain layer's fixed cost (model wiring + atom-support fixpoint)
  // only amortizes on plans with real work; tiny components keep the
  // bare PR-1 path.
  if (DomainGate(plan, component, to, options)) {
    model.emplace(component, to);
    if (!model->InitialDomains(&doms)) return BigInt(0);
    if (AllDomainsFull(doms, to.DomainSize())) {
      // Nothing pruned: skip the per-candidate domain tests in the DP
      // (uniform weights also make a re-plan a no-op). The model stays
      // alive solely so the parallel split can partition a full domain.
      pruned = false;
    } else {
      // Re-plan with the pruned per-variable weights.
      plan = PlanTasks(component, options, &doms, to);
    }
  }
  const DomainSet* doms_ptr =
      model.has_value() && pruned ? &doms : nullptr;
  if (model.has_value() && options.num_threads != 1) {
    const std::size_t lanes = options.num_threads != 0
                                  ? options.num_threads
                                  : GlobalThreadPool().num_workers() + 1;
    const double est_work =
        EstimateDpWork(plan, component.DomainSize(), doms_ptr, to);
    if (lanes > 1 && est_work >= options.parallel_split_min_work) {
      // Split variable: among the variables of the first planned atom (all
      // bound — and, when last-used there, eliminated — at step 0), the
      // one with the largest pruned domain; ties break to the smallest id.
      Element split_var = kUnassigned;
      std::size_t split_count = 0;
      for (const Task& task : plan) {
        if (!task.is_atom || task.atom.empty()) continue;
        for (Element v : task.atom) {
          const std::size_t count = doms.domain(v).Count();
          if (split_var == kUnassigned || count > split_count) {
            split_var = v;
            split_count = count;
          }
        }
        break;
      }
      if (split_var != kUnassigned && split_count >= 2) {
        // Chunk granularity: chunks_per_lane > 1 oversubscribes the lanes
        // so uneven slices rebalance through the pool's shared index. The
        // fixed-order fold below makes every granularity bit-identical.
        const std::size_t chunks_per_lane =
            options.parallel_split_chunks_per_lane > 0
                ? options.parallel_split_chunks_per_lane
                : 1;
        const std::size_t num_chunks =
            std::min(lanes * chunks_per_lane, split_count);
        // Chunk c owns the set bits with ordinal in [c*n/k, (c+1)*n/k).
        std::vector<std::size_t> bits;
        bits.reserve(split_count);
        for (std::size_t b = doms.domain(split_var).FindFirst();
             b != SVOBitset::npos;
             b = doms.domain(split_var).FindNext(b + 1)) {
          bits.push_back(b);
        }
        std::vector<BigInt> sub_counts(num_chunks);
        GlobalThreadPool().ParallelFor(
            num_chunks,
            [&](std::size_t c) {
              BAGDET_FAILPOINT("hom/domain_split");
              ExecCheckPoint("hom.dp");
              const std::size_t begin = c * bits.size() / num_chunks;
              const std::size_t end = (c + 1) * bits.size() / num_chunks;
              DomainSet chunk = doms;
              SVOBitset slice(to.DomainSize());
              for (std::size_t b = begin; b < end; ++b) slice.Set(bits[b]);
              chunk.mutable_domain(split_var) = std::move(slice);
              // Re-propagating inside the slice prunes neighbors further;
              // an emptied chunk simply contributes zero.
              if (!model->Propagate(&chunk)) return;
              sub_counts[c] = RunDpPlan(plan, component, to, &chunk);
            },
            lanes);
        BigInt total(0);
        for (std::size_t c = 0; c < num_chunks; ++c) total += sub_counts[c];
        return total;
      }
    }
  }
  return RunDpPlan(plan, component, to, doms_ptr);
}

}  // namespace

BigInt CountHoms(const Structure& from, const Structure& to,
                 const DpOptions& options) {
  BigInt product(1);
  for (const Structure& component : ConnectedComponents(from)) {
    BigInt c = CountComponent(component, to, options);
    if (c.IsZero()) return BigInt(0);
    product *= c;
  }
  return product;
}

BigInt CountHoms(const Structure& from, const Structure& to) {
  return CountHoms(from, to, DpOptions());
}

bool ExistsHom(const Structure& from, const Structure& to) {
  for (const Structure& component : ConnectedComponents(from)) {
    if (component.DomainSize() == 0) {
      bool present = true;
      for (RelationId r = 0; r < component.schema().NumRelations(); ++r) {
        if (!component.Facts(r).empty() && to.Facts(r).empty()) present = false;
      }
      if (!present) return false;
      continue;
    }
    if (component.NumFacts() == 0) {
      if (to.DomainSize() == 0) return false;
      continue;
    }
    bool found = false;
    std::function<bool(const std::vector<Element>&)> visit =
        [&found](const std::vector<Element>&) {
          found = true;
          return false;  // Stop at the first hit.
        };
    Matcher matcher(component, to, visit, nullptr);
    matcher.Run();
    if (!found) return false;
  }
  return true;
}

BigInt CountInjectiveHoms(const Structure& from, const Structure& to) {
  if (from.DomainSize() > to.DomainSize()) return BigInt(0);
  // Injectivity couples components, so match the whole structure at once.
  BigInt count(0);
  std::function<bool(const std::vector<Element>&)> visit =
      [&count](const std::vector<Element>&) {
        count += BigInt(1);
        return true;
      };
  // Nullary facts must still be present.
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    if (from.schema().Arity(r) == 0 && !from.Facts(r).empty() &&
        to.Facts(r).empty()) {
      return BigInt(0);
    }
  }
  std::vector<bool> used(to.DomainSize(), false);
  Matcher matcher(from, to, visit, &used);
  matcher.Run();
  return count;
}

BigInt CountHomsByEnumeration(const Structure& from, const Structure& to) {
  BigInt count(0);
  std::function<bool(const std::vector<Element>&)> visit =
      [&count](const std::vector<Element>&) {
        count += BigInt(1);
        return true;
      };
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    if (from.schema().Arity(r) == 0 && !from.Facts(r).empty() &&
        to.Facts(r).empty()) {
      return BigInt(0);
    }
  }
  Matcher matcher(from, to, visit, nullptr);
  matcher.Run();
  return count;
}

BigInt CountHomsNaive(const Structure& from, const Structure& to) {
  const std::size_t n = from.DomainSize();
  const std::size_t m = to.DomainSize();
  // Check nullary facts up front.
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    if (from.schema().Arity(r) == 0 && !from.Facts(r).empty() &&
        to.Facts(r).empty()) {
      return BigInt(0);
    }
  }
  if (n == 0) return BigInt(1);
  if (m == 0) return BigInt(0);
  std::vector<Element> assignment(n, 0);
  BigInt count(0);
  for (;;) {
    bool ok = true;
    for (RelationId r = 0; r < from.schema().NumRelations() && ok; ++r) {
      for (const Tuple& t : from.Facts(r)) {
        Tuple image(t.size());
        for (std::size_t i = 0; i < t.size(); ++i) image[i] = assignment[t[i]];
        if (!to.HasFact(r, image)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) count += BigInt(1);
    // Advance the odometer.
    std::size_t i = 0;
    while (i < n && ++assignment[i] == m) {
      assignment[i] = 0;
      ++i;
    }
    if (i == n) break;
  }
  return count;
}

bool EnumerateHoms(
    const Structure& from, const Structure& to,
    const std::function<bool(const std::vector<Element>&)>& visit) {
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    if (from.schema().Arity(r) == 0 && !from.Facts(r).empty() &&
        to.Facts(r).empty()) {
      return true;  // No homs; vacuously completed.
    }
  }
  Matcher matcher(from, to, visit, nullptr);
  return matcher.Run();
}

}  // namespace bagdet
