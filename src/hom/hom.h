// bagdet: homomorphism counting and existence.
//
// |hom(A, D)| is the central quantity of the paper: boolean CQ answers are
// hom counts (Section 2.1), the evaluation matrix of Definition 37 is a
// hom-count matrix, and set-semantics containment is hom existence. The
// engine decomposes A into connected components (Lemma 4(5)) and counts
// each component by backtracking joins over the facts of D.

#ifndef BAGDET_HOM_HOM_H_
#define BAGDET_HOM_HOM_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "structs/structure.h"
#include "util/bigint.h"
#include "util/tuning.h"

namespace bagdet {

/// Knobs for the counting engine. The defaults are the production
/// configuration; the ablation baselines in bench_hom flip them off to
/// measure each layer (use_domains=false + order_search_max_atoms=0 +
/// num_threads=1 is the PR-1 engine). Every machine-dependent threshold
/// defaults from the active TuningProfile (util/tuning.h) — a calibration
/// profile moves the crossovers, an explicitly assigned field overrides
/// the profile for that call, and every setting is dispatch-only (counts
/// are bit-identical under any combination).
struct DpOptions {
  /// Per-variable candidate domains (hom/domain.h): SVOBitsets seeded from
  /// the positional index's occupancy masks, pre-pruned to an atom-support
  /// fixpoint, and consulted on every candidate fact so infeasible
  /// subtrees die before table insertion. The Matcher additionally
  /// propagates domains as variables bind.
  bool use_domains = true;

  /// The domain layer has a fixed cost (model construction + the
  /// atom-support fixpoint) that tiny instances never amortize, so it only
  /// engages when the uniform-weight work estimate of the plan (sum over
  /// steps of the domain-product table bound) reaches this many units AND
  /// at least 4× the fixpoint's own bucket-scan cost. The default is the
  /// measured crossover on the small-structure fast path
  /// (BM_SmallStructureFastPath). 0 always builds domains.
  double domain_min_work = static_cast<double>(Tuning().domain_min_work);

  /// The exact subset-DP elimination-order search (scored by the
  /// induced-width/domain-product table bound) runs during the
  /// pruned-domain re-plan when a component has 3..this many atoms, at
  /// most 64 variables, and the plan's estimated work is at least 8× the
  /// search's own 2^atoms·atoms cost — the search never spends more than
  /// it can save, and without pruned domains its score degenerates to
  /// induced width where the greedy min-new-live-vars order is already
  /// near-optimal. 0 disables the search entirely. The hard cap is 16
  /// atoms (the subset table stays a few MB; see ROADMAP for the
  /// measured crossover).
  std::size_t order_search_max_atoms = Tuning().order_search_max_atoms;

  /// A single component count is split across the global ThreadPool —
  /// partitioning the first-bound variable's pruned domain into
  /// per-worker sub-counts folded in fixed order, bit-identical at any
  /// thread count — when the estimated DP work (sum over plan steps of
  /// the live-domain-product table bound) reaches this many units.
  /// Requires use_domains. 0 splits whenever a second lane exists.
  double parallel_split_min_work =
      static_cast<double>(Tuning().parallel_split_min_work);

  /// Domain chunks carved per lane by the parallel split. 1 gives each
  /// lane one contiguous slice (minimal fork/join overhead); larger
  /// values oversubscribe so lanes whose slices propagate to empty can
  /// steal the next chunk instead of idling. Sub-counts fold in fixed
  /// chunk order, so every value is bit-identical.
  std::size_t parallel_split_chunks_per_lane =
      Tuning().parallel_split_chunks_per_lane;

  /// Lanes for the parallel split: 0 = the global pool's full width,
  /// 1 = always serial.
  std::size_t num_threads = Tuning().hom_num_threads;
};

/// Number of homomorphisms from `from` to `to`. Exact (BigInt); note
/// |hom(∅, D)| = 1.
BigInt CountHoms(const Structure& from, const Structure& to);

/// Same, with explicit engine knobs.
BigInt CountHoms(const Structure& from, const Structure& to,
                 const DpOptions& options);

/// True iff at least one homomorphism exists (early-exit search).
bool ExistsHom(const Structure& from, const Structure& to);

/// Number of injective homomorphisms from `from` to `to`.
BigInt CountInjectiveHoms(const Structure& from, const Structure& to);

/// Reference implementation that enumerates all |dom(to)|^|dom(from)|
/// mappings. For cross-validation in tests only.
BigInt CountHomsNaive(const Structure& from, const Structure& to);

/// Counting by backtracking enumeration (one visit per homomorphism).
/// Exponential in the *count* — kept as the ablation baseline against the
/// default variable-elimination counter (see bench_ablation) and for
/// cross-validation when counts are small.
BigInt CountHomsByEnumeration(const Structure& from, const Structure& to);

/// Enumerates homomorphisms, invoking `visit` with the image of every
/// domain element of `from` (indexed by element). Stops early when `visit`
/// returns false. Intended for answer-multiset construction (queries with
/// free variables). Returns false iff stopped early.
bool EnumerateHoms(const Structure& from, const Structure& to,
                   const std::function<bool(const std::vector<Element>&)>& visit);

}  // namespace bagdet

#endif  // BAGDET_HOM_HOM_H_
