// bagdet: homomorphism counting and existence.
//
// |hom(A, D)| is the central quantity of the paper: boolean CQ answers are
// hom counts (Section 2.1), the evaluation matrix of Definition 37 is a
// hom-count matrix, and set-semantics containment is hom existence. The
// engine decomposes A into connected components (Lemma 4(5)) and counts
// each component by backtracking joins over the facts of D.

#ifndef BAGDET_HOM_HOM_H_
#define BAGDET_HOM_HOM_H_

#include <functional>
#include <vector>

#include "structs/structure.h"
#include "util/bigint.h"

namespace bagdet {

/// Number of homomorphisms from `from` to `to`. Exact (BigInt); note
/// |hom(∅, D)| = 1.
BigInt CountHoms(const Structure& from, const Structure& to);

/// True iff at least one homomorphism exists (early-exit search).
bool ExistsHom(const Structure& from, const Structure& to);

/// Number of injective homomorphisms from `from` to `to`.
BigInt CountInjectiveHoms(const Structure& from, const Structure& to);

/// Reference implementation that enumerates all |dom(to)|^|dom(from)|
/// mappings. For cross-validation in tests only.
BigInt CountHomsNaive(const Structure& from, const Structure& to);

/// Counting by backtracking enumeration (one visit per homomorphism).
/// Exponential in the *count* — kept as the ablation baseline against the
/// default variable-elimination counter (see bench_ablation) and for
/// cross-validation when counts are small.
BigInt CountHomsByEnumeration(const Structure& from, const Structure& to);

/// Enumerates homomorphisms, invoking `visit` with the image of every
/// domain element of `from` (indexed by element). Stops early when `visit`
/// returns false. Intended for answer-multiset construction (queries with
/// free variables). Returns false iff stopped early.
bool EnumerateHoms(const Structure& from, const Structure& to,
                   const std::function<bool(const std::vector<Element>&)>& visit);

}  // namespace bagdet

#endif  // BAGDET_HOM_HOM_H_
