// bagdet: memoized homomorphism counting over interned structures.
//
// Every layer of the determinacy pipeline reduces to |hom(A, B)| for small
// A (a basis query or a component of one) against a shared set of targets:
// the radix-T scan and evaluation matrix of BuildGoodBasis, the candidate
// sweep of FindDistinguisher, and witness checking all re-count identical
// (isomorphism class, isomorphism class) pairs from scratch in the seed
// path. HomCache interns both sides in a StructurePool (structs/pool.h)
// and memoizes counts keyed by the (from-ref, to-ref) pair — sound because
// |hom| is an isomorphism invariant in both arguments.
//
// Count(Structure, Structure) decomposes the source into connected
// components first (Lemma 4(5)), so cache entries are per-(component,
// target) and shared across every query whose body contains an isomorphic
// component.
//
// Serving-tier behavior:
//   * The count table is sharded (per-shard mutex) and size-bounded: an
//     entry budget and an approximate byte budget, enforced per shard with
//     LRU eviction, keep a long-lived cache from growing without bound. An
//     evicted pair is simply recomputed on the next miss — counts are pure
//     functions of the interned classes, so eviction never changes results.
//   * Hit/miss/eviction/footprint counters are exposed through stats() for
//     tests and benchmarks; ResetStats() rezeroes the traffic counters.
//   * Count/CountPair/BatchCountHoms are safe to call concurrently from
//     any number of threads (the underlying StructurePool is sharded and
//     its published representatives immutable). ComponentRefs is also
//     thread-safe; the returned reference stays valid until the cache is
//     destroyed (the memo never erases entries).
//   * BatchCountHoms fans uncached pairs out over the shared global
//     ThreadPool (util/thread_pool.h) instead of spawning ad-hoc threads.

#ifndef BAGDET_HOM_HOM_CACHE_H_
#define BAGDET_HOM_HOM_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "structs/pool.h"
#include "structs/structure.h"
#include "util/bigint.h"
#include "util/tuning.h"

namespace bagdet {

class HomCache {
 public:
  /// Wraps an existing pool (shared with other pipeline stages), or
  /// creates a private one when `pool` is null.
  explicit HomCache(std::shared_ptr<StructurePool> pool = nullptr);

  StructurePool& pool() { return *pool_; }
  const StructurePool& pool() const { return *pool_; }
  const std::shared_ptr<StructurePool>& pool_ptr() const { return pool_; }

  /// Interns `s` into the shared pool and returns its class ref.
  StructureRef Intern(const Structure& s) { return pool_->Intern(s); }

  /// |hom(from, to)| for two interned classes, memoized.
  BigInt Count(StructureRef from, StructureRef to);

  /// |hom(from, to)| for an interned source class against an arbitrary
  /// target (interned via its cached canonical form; targets beyond
  /// max_intern_domain() bypass the cache like the two-Structure overload).
  BigInt Count(StructureRef from, const Structure& to);

  /// |hom(from, to)| for arbitrary structures: decomposes `from` into
  /// connected components, interns each side, and multiplies memoized
  /// per-component counts (Lemma 4(5)). Targets with more than
  /// `max_intern_domain()` elements bypass the cache (canonicalizing a
  /// huge target would cost more than it saves).
  BigInt Count(const Structure& from, const Structure& to);

  /// Pool refs of the connected components of `s`, in component order —
  /// memoized per canonical class, and built from the structure's cached
  /// per-component certificates, so repeated decompositions of pipeline
  /// objects never re-run the labeling search. Thread-safe; the reference
  /// is valid until the cache is destroyed (entries are never evicted from
  /// this memo — it holds refs, not counts, and stays tiny).
  const std::vector<StructureRef>& ComponentRefs(const Structure& s);

  /// Counts every pair, memoized, fanning uncached pairs out through the
  /// global ThreadPool. `num_threads` caps the parallelism (0 = the pool's
  /// full width; 1 = serial on the calling thread). Results are in input
  /// order.
  std::vector<BigInt> BatchCountHoms(
      const std::vector<std::pair<StructureRef, StructureRef>>& pairs,
      std::size_t num_threads = 0);

  /// Cache-bypass threshold for Count(Structure, Structure) targets.
  std::size_t max_intern_domain() const { return max_intern_domain_; }
  void set_max_intern_domain(std::size_t n) { max_intern_domain_ = n; }

  /// Retention budgets for the memoized counts, enforced per shard with
  /// LRU eviction (each of the kNumShards shards gets an equal slice; the
  /// most recent entry of a shard is never evicted, so a single oversized
  /// count still serves its own request). Set before sharing the cache
  /// across threads; defaults are serving-tier scale.
  std::size_t max_entries() const { return max_entries_; }
  void set_max_entries(std::size_t n) { max_entries_ = n; }
  std::size_t max_bytes() const { return max_bytes_; }
  void set_max_bytes(std::size_t n) { max_bytes_ = n; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;  ///< Current resident count entries.
    std::uint64_t bytes = 0;    ///< Approximate resident footprint.
    /// Resident component-decomposition memos. Unlike counts these are
    /// never evicted (callers hold references into the memo), so a
    /// fleet-wide cache's owner watches this alongside the pool's class
    /// count when deciding generation rotation (src/serve/service.h).
    std::uint64_t component_entries = 0;
  };
  Stats stats() const;

  /// Rezeroes hits/misses/evictions (entries/bytes track live state and
  /// are unaffected).
  void ResetStats();

 private:
  static constexpr std::size_t kNumShards = 8;

  static std::uint64_t PairKey(StructureRef from, StructureRef to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  static std::size_t ShardIndex(std::uint64_t key) {
    // Avalanche so nearby refs spread; low bits index the shard.
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return static_cast<std::size_t>(key) & (kNumShards - 1);
  }

  struct CacheEntry {
    std::uint64_t key = 0;
    BigInt count;
    std::size_t bytes = 0;  ///< Approximate footprint of this entry.
  };
  struct CountShard {
    mutable std::mutex mu;
    std::list<CacheEntry> lru;  // Front = most recently used.
    std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;
  };

  /// Returns the cached count or computes-and-caches it. Thread-safe.
  /// `serial_engine` pins the miss computation to one lane — the batch
  /// driver's workers already occupy the pool, so a nested parallel split
  /// would only thrash it.
  BigInt CountPair(StructureRef from, StructureRef to,
                   bool serial_engine = false);

  /// Inserts under the shard lock and evicts LRU entries past the budgets.
  void InsertCount(CountShard& shard, std::uint64_t key, const BigInt& count);

  std::shared_ptr<StructurePool> pool_;
  std::size_t max_intern_domain_ = 256;
  // Retention defaults from the active TuningProfile (stock profile: 2^20
  // entries / 256 MiB, the serving-tier scale); set_max_entries/bytes and
  // ServiceOptions overrides take precedence as before.
  std::size_t max_entries_ = Tuning().hom_cache_max_entries;
  std::size_t max_bytes_ =
      static_cast<std::size_t>(Tuning().hom_cache_max_bytes);

  // Whole-structure canonical key → component refs. Guarded by
  // components_mu_; node-based map and never erased, so returned
  // references stay valid across concurrent inserts.
  mutable std::mutex components_mu_;
  std::unordered_map<CanonicalKey, std::vector<StructureRef>, CanonicalKeyHash>
      components_of_;

  CountShard count_shards_[kNumShards];
};

}  // namespace bagdet

#endif  // BAGDET_HOM_HOM_CACHE_H_
