// bagdet: memoized homomorphism counting over interned structures.
//
// Every layer of the determinacy pipeline reduces to |hom(A, B)| for small
// A (a basis query or a component of one) against a shared set of targets:
// the radix-T scan and evaluation matrix of BuildGoodBasis, the candidate
// sweep of FindDistinguisher, and witness checking all re-count identical
// (isomorphism class, isomorphism class) pairs from scratch in the seed
// path. HomCache interns both sides in a StructurePool (structs/pool.h)
// and memoizes counts keyed by the (from-ref, to-ref) pair — sound because
// |hom| is an isomorphism invariant in both arguments.
//
// Count(Structure, Structure) decomposes the source into connected
// components first (Lemma 4(5)), so cache entries are per-(component,
// target) and shared across every query whose body contains an isomorphic
// component.
//
// BatchCountHoms farms independent uncached pairs across a small thread
// pool. Interning and target-index warming happen on the calling thread;
// workers only read the pool and the per-pair table under a mutex, so the
// cache itself is safe to use concurrently from the batch workers.

#ifndef BAGDET_HOM_HOM_CACHE_H_
#define BAGDET_HOM_HOM_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "structs/pool.h"
#include "structs/structure.h"
#include "util/bigint.h"

namespace bagdet {

class HomCache {
 public:
  /// Wraps an existing pool (shared with other pipeline stages), or
  /// creates a private one when `pool` is null.
  explicit HomCache(std::shared_ptr<StructurePool> pool = nullptr);

  StructurePool& pool() { return *pool_; }
  const StructurePool& pool() const { return *pool_; }
  const std::shared_ptr<StructurePool>& pool_ptr() const { return pool_; }

  /// Interns `s` into the shared pool and returns its class ref.
  StructureRef Intern(const Structure& s) { return pool_->Intern(s); }

  /// |hom(from, to)| for two interned classes, memoized.
  BigInt Count(StructureRef from, StructureRef to);

  /// |hom(from, to)| for an interned source class against an arbitrary
  /// target (interned via its cached canonical form; targets beyond
  /// max_intern_domain() bypass the cache like the two-Structure overload).
  BigInt Count(StructureRef from, const Structure& to);

  /// |hom(from, to)| for arbitrary structures: decomposes `from` into
  /// connected components, interns each side, and multiplies memoized
  /// per-component counts (Lemma 4(5)). Targets with more than
  /// `max_intern_domain()` elements bypass the cache (canonicalizing a
  /// huge target would cost more than it saves).
  BigInt Count(const Structure& from, const Structure& to);

  /// Pool refs of the connected components of `s`, in component order —
  /// memoized per canonical class, and built from the structure's cached
  /// per-component certificates, so repeated decompositions of pipeline
  /// objects never re-run the labeling search. The reference is valid
  /// until the cache is destroyed. Not safe to call concurrently.
  const std::vector<StructureRef>& ComponentRefs(const Structure& s);

  /// Counts every pair, memoized, fanning uncached pairs out over up to
  /// `num_threads` workers (0 = hardware concurrency). Results are in
  /// input order.
  std::vector<BigInt> BatchCountHoms(
      const std::vector<std::pair<StructureRef, StructureRef>>& pairs,
      std::size_t num_threads = 0);

  /// Cache-bypass threshold for Count(Structure, Structure) targets.
  std::size_t max_intern_domain() const { return max_intern_domain_; }
  void set_max_intern_domain(std::size_t n) { max_intern_domain_ = n; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const;

 private:
  static std::uint64_t PairKey(StructureRef from, StructureRef to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  /// Returns the cached count or computes-and-caches it. Thread-safe.
  BigInt CountPair(StructureRef from, StructureRef to);

  std::shared_ptr<StructurePool> pool_;
  std::size_t max_intern_domain_ = 256;

  // Whole-structure canonical key → component refs (single-threaded use).
  std::unordered_map<CanonicalKey, std::vector<StructureRef>, CanonicalKeyHash>
      components_of_;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, BigInt> counts_;
  Stats stats_;
};

}  // namespace bagdet

#endif  // BAGDET_HOM_HOM_CACHE_H_
