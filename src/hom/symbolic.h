// bagdet: symbolic homomorphism counting into StructureExpr terms.
//
// Lemma 4 of the paper turns structure algebra into count algebra:
//   hom(A, B + C) = hom(A, B) + hom(A, C)   (A connected)
//   hom(A, t·B)   = t · hom(A, B)           (A connected)
//   hom(A, B × C) = hom(A, B) · hom(A, C)
//   hom(A, B^t)   = hom(A, B)^t
// This lets us evaluate hom counts into terms whose materialization would
// be astronomically large (the good basis structures of Lemma 40).

#ifndef BAGDET_HOM_SYMBOLIC_H_
#define BAGDET_HOM_SYMBOLIC_H_

#include "structs/structure.h"
#include "structs/structure_expr.h"
#include "util/bigint.h"

namespace bagdet {

class HomCache;

/// Number of homomorphisms from the *connected* structure `from` (nonempty
/// domain) into the structure denoted by `expr`, evaluated via Lemma 4
/// without materializing `expr`. When `cache` is non-null, every leaf
/// |hom(from, base)| count routes through it (memoized across calls and
/// across the determinacy pipeline).
///
/// Throws std::invalid_argument when `from` is not connected or has an
/// empty domain (the sum/scalar laws of Lemma 4 require connectedness, and
/// empty-domain components — nullary facts — do not satisfy them).
BigInt CountHomsSymbolic(const Structure& from, const StructureExpr& expr,
                         HomCache* cache = nullptr);

/// Number of homomorphisms from an arbitrary structure into `expr`:
/// decomposes `from` into connected components and multiplies the
/// per-component symbolic counts (Lemma 4(5)). Same empty-domain-component
/// restriction and `cache` semantics as above.
BigInt CountHomsSymbolicAny(const Structure& from, const StructureExpr& expr,
                            HomCache* cache = nullptr);

}  // namespace bagdet

#endif  // BAGDET_HOM_SYMBOLIC_H_
