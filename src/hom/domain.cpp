#include "hom/domain.h"

#include <algorithm>

#include "util/exec_context.h"

namespace bagdet {

namespace {

constexpr Element kNoValue = static_cast<Element>(-1);

}  // namespace

DomainModel::DomainModel(const Structure& from, const Structure& to)
    : to_(&to),
      index_(&to.Index()),
      num_vars_(from.DomainSize()),
      target_size_(to.DomainSize()) {
  atoms_of_var_.resize(num_vars_);
  for (RelationId r = 0; r < from.schema().NumRelations(); ++r) {
    for (const Tuple& t : from.Facts(r)) {
      if (t.empty()) continue;  // Nullary atoms bind nothing.
      Atom atom;
      atom.relation = r;
      atom.tuple = t;
      atom.var_slot.resize(t.size());
      for (std::size_t pos = 0; pos < t.size(); ++pos) {
        auto it = std::find(atom.vars.begin(), atom.vars.end(), t[pos]);
        if (it == atom.vars.end()) {
          atom.var_slot[pos] = static_cast<std::uint32_t>(atom.vars.size());
          atom.vars.push_back(t[pos]);
        } else {
          atom.var_slot[pos] =
              static_cast<std::uint32_t>(it - atom.vars.begin());
        }
      }
      const std::uint32_t id = static_cast<std::uint32_t>(atoms_.size());
      for (Element v : atom.vars) atoms_of_var_[v].push_back(id);
      atoms_.push_back(std::move(atom));
    }
  }
}

bool DomainModel::ReviseAtom(std::uint32_t a, DomainSet* doms,
                             std::vector<Element>* changed) const {
  // Propagation is part of the governed surface: a deadline or cancel must
  // trip inside domain pruning too, not only between DP steps.
  ExecCheckPoint("hom.domains");
  const Atom& atom = atoms_[a];
  const std::vector<Tuple>& facts = to_->Facts(atom.relation);
  const std::size_t arity = atom.tuple.size();
  const std::size_t num_vars = atom.vars.size();
  // Fresh support accumulators, one per distinct variable of the atom.
  std::vector<SVOBitset> supports;
  supports.reserve(num_vars);
  for (std::size_t i = 0; i < num_vars; ++i) {
    supports.emplace_back(target_size_);
  }
  // Candidate facts: when some position's domain is a singleton, its index
  // bucket is strictly smaller than the full fact list — drive the scan
  // from the smallest such bucket.
  FactIdSpan bucket;
  bool have_bucket = false;
  std::size_t best_size = facts.size();
  for (std::size_t pos = 0; pos < arity; ++pos) {
    const SVOBitset& d = doms->domain(atom.tuple[pos]);
    const std::size_t first = d.FindFirst();
    if (first == SVOBitset::npos) return false;  // Already empty.
    if (d.FindNext(first + 1) != SVOBitset::npos) continue;  // Not singleton.
    const std::size_t size =
        index_->BucketSize(atom.relation, pos, static_cast<Element>(first));
    if (size < best_size || !have_bucket) {
      best_size = size;
      bucket = index_->Bucket(atom.relation, pos, static_cast<Element>(first));
      have_bucket = true;
      if (size == 0) break;
    }
  }
  const std::size_t num_candidates = have_bucket ? bucket.size() : facts.size();
  std::vector<Element> values(num_vars);
  for (std::size_t c = 0; c < num_candidates; ++c) {
    const Tuple& fact = facts[have_bucket ? bucket.first[c] : c];
    std::fill(values.begin(), values.end(), kNoValue);
    bool ok = true;
    for (std::size_t pos = 0; pos < arity && ok; ++pos) {
      const std::uint32_t slot = atom.var_slot[pos];
      const Element value = fact[pos];
      if (values[slot] == kNoValue) {
        // Repeated variables must see one value across their positions;
        // each position's value must lie in the current domain.
        ok = doms->domain(atom.tuple[pos]).Test(value);
        values[slot] = value;
      } else {
        ok = values[slot] == value;
      }
    }
    if (!ok) continue;
    for (std::size_t i = 0; i < num_vars; ++i) supports[i].Set(values[i]);
  }
  for (std::size_t i = 0; i < num_vars; ++i) {
    SVOBitset& domain = doms->mutable_domain(atom.vars[i]);
    if (domain == supports[i]) continue;
    // Supports only ever contain domain members, so this is the
    // intersection domain ∩ support.
    domain = std::move(supports[i]);
    if (changed != nullptr) changed->push_back(atom.vars[i]);
    if (domain.None()) return false;
  }
  return true;
}

bool DomainModel::Propagate(DomainSet* doms) const {
  if (atoms_.empty()) return true;
  // FIFO worklist seeded with every atom in id order; a shrunk variable
  // re-queues the atoms it occurs in. Deterministic: queue order depends
  // only on the (deterministic) revision sequence.
  std::vector<std::uint32_t> queue(atoms_.size());
  for (std::uint32_t a = 0; a < atoms_.size(); ++a) queue[a] = a;
  std::vector<bool> queued(atoms_.size(), true);
  std::vector<Element> changed;
  std::size_t head = 0;
  while (head < queue.size()) {
    const std::uint32_t a = queue[head++];
    queued[a] = false;
    changed.clear();
    if (!ReviseAtom(a, doms, &changed)) return false;
    for (Element v : changed) {
      for (std::uint32_t b : atoms_of_var_[v]) {
        if (!queued[b]) {
          queued[b] = true;
          queue.push_back(b);
        }
      }
    }
  }
  return true;
}

bool DomainModel::InitialDomains(DomainSet* doms) const {
  doms->domains_.assign(num_vars_, SVOBitset(target_size_, /*all_set=*/true));
  // Unary occupancy prune: every (relation, position) a variable occupies
  // restricts it to targets present in that position's buckets.
  for (const Atom& atom : atoms_) {
    for (std::size_t pos = 0; pos < atom.tuple.size(); ++pos) {
      SVOBitset& domain = doms->mutable_domain(atom.tuple[pos]);
      if (!domain.IntersectWith(index_->PresentMask(atom.relation, pos))) {
        return false;
      }
    }
  }
  // Variables in no atom (isolated elements) keep the full target domain;
  // with an empty target they are unsatisfiable.
  if (target_size_ == 0 && num_vars_ > 0) return false;
  return Propagate(doms);
}

bool DomainModel::Bind(DomainSet* doms, Element v, Element image) const {
  SVOBitset& domain = doms->mutable_domain(v);
  if (!domain.Test(image)) return false;
  SVOBitset singleton(target_size_);
  singleton.Set(image);
  domain = std::move(singleton);
  for (std::uint32_t a : atoms_of_var_[v]) {
    if (!ReviseAtom(a, doms, nullptr)) return false;
  }
  return true;
}

}  // namespace bagdet
