#include "hom/symbolic.h"

#include <stdexcept>

#include "hom/hom.h"
#include "hom/hom_cache.h"
#include "util/exec_context.h"

namespace bagdet {

namespace {

/// Lemma-4 evaluation over the expression tree; `leaf_count` supplies
/// |hom(source, base)| for base structures (uncached CountHoms, or the
/// memoized HomCache lookup keyed by the source's interned ref).
template <typename LeafCount>
BigInt Eval(const StructureExpr& expr, const LeafCount& leaf_count) {
  // Expression trees can be deep and wide (nested sums of products over
  // many leaves); a checkpoint per node keeps the walk governed even when
  // every leaf is a cache hit.
  ExecCheckPoint("hom.symbolic");
  switch (expr.kind()) {
    case StructureExpr::Kind::kBase:
      return leaf_count(expr.base());
    case StructureExpr::Kind::kSum: {
      BigInt total(0);
      for (const StructureExpr& child : expr.children()) {
        total += Eval(child, leaf_count);
      }
      return total;
    }
    case StructureExpr::Kind::kProduct: {
      BigInt total(1);
      for (const StructureExpr& child : expr.children()) {
        total *= Eval(child, leaf_count);
        if (total.IsZero()) return total;
      }
      return total;
    }
    case StructureExpr::Kind::kScalar:
      return expr.scalar() * Eval(expr.children()[0], leaf_count);
    case StructureExpr::Kind::kPower:
      return BigInt::Pow(Eval(expr.children()[0], leaf_count),
                         expr.exponent());
  }
  throw std::logic_error("CountHomsSymbolic: bad kind");
}

/// Cached variant: the source is an interned class ref, so every leaf
/// count is a memoized (from-ref, to-ref) lookup.
BigInt EvalRef(StructureRef from, const StructureExpr& expr, HomCache* cache) {
  return Eval(expr, [from, cache](const Structure& base) {
    return cache->Count(from, base);
  });
}

void CheckSymbolicSource(const Structure& from) {
  if (from.DomainSize() == 0 || !from.IsConnected()) {
    throw std::invalid_argument(
        "CountHomsSymbolic: source must be connected with nonempty domain");
  }
}

}  // namespace

BigInt CountHomsSymbolic(const Structure& from, const StructureExpr& expr,
                         HomCache* cache) {
  CheckSymbolicSource(from);
  if (cache != nullptr) return EvalRef(cache->Intern(from), expr, cache);
  return Eval(expr, [&from](const Structure& base) {
    return CountHoms(from, base);
  });
}

BigInt CountHomsSymbolicAny(const Structure& from, const StructureExpr& expr,
                            HomCache* cache) {
  BigInt product(1);
  if (cache != nullptr) {
    for (StructureRef ref : cache->ComponentRefs(from)) {
      CheckSymbolicSource(cache->pool().At(ref));
      product *= EvalRef(ref, expr, cache);
      if (product.IsZero()) return product;
    }
    return product;
  }
  for (const Structure& component : ConnectedComponents(from)) {
    product *= CountHomsSymbolic(component, expr);
    if (product.IsZero()) return product;
  }
  return product;
}

}  // namespace bagdet
