#include "hom/symbolic.h"

#include <stdexcept>

#include "hom/hom.h"

namespace bagdet {

namespace {

BigInt Eval(const Structure& from, const StructureExpr& expr) {
  switch (expr.kind()) {
    case StructureExpr::Kind::kBase:
      return CountHoms(from, expr.base());
    case StructureExpr::Kind::kSum: {
      BigInt total(0);
      for (const StructureExpr& child : expr.children()) {
        total += Eval(from, child);
      }
      return total;
    }
    case StructureExpr::Kind::kProduct: {
      BigInt total(1);
      for (const StructureExpr& child : expr.children()) {
        total *= Eval(from, child);
        if (total.IsZero()) return total;
      }
      return total;
    }
    case StructureExpr::Kind::kScalar:
      return expr.scalar() * Eval(from, expr.children()[0]);
    case StructureExpr::Kind::kPower:
      return BigInt::Pow(Eval(from, expr.children()[0]), expr.exponent());
  }
  throw std::logic_error("CountHomsSymbolic: bad kind");
}

}  // namespace

BigInt CountHomsSymbolic(const Structure& from, const StructureExpr& expr) {
  if (from.DomainSize() == 0 || !from.IsConnected()) {
    throw std::invalid_argument(
        "CountHomsSymbolic: source must be connected with nonempty domain");
  }
  return Eval(from, expr);
}

BigInt CountHomsSymbolicAny(const Structure& from, const StructureExpr& expr) {
  BigInt product(1);
  for (const Structure& component : ConnectedComponents(from)) {
    product *= CountHomsSymbolic(component, expr);
    if (product.IsZero()) return product;
  }
  return product;
}

}  // namespace bagdet
