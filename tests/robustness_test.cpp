// Failure-injection tests: the certificate *verifiers* must reject
// tampered certificates — otherwise a green "verified" stamp means
// nothing. Also covers defensive error paths across the public API.

#include <gtest/gtest.h>

#include "core/basis.h"
#include "core/counterexample.h"
#include "core/determinacy.h"
#include "query/parser.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

TEST(WitnessInjectionTest, TamperedExponentsFailOnSomeStructure) {
  // Determined instance with witness alpha; perturbing alpha must be
  // caught by CheckWitnessOnStructure on at least one probe structure.
  auto schema = std::make_shared<Schema>();
  RelationId e = schema->AddRelation("E", 2);
  Structure loop(schema);
  loop.AddFact(e, {0, 0});
  Structure edge(schema);
  edge.AddFact(e, {0, 1});
  auto combine = [&](int a, int b) {
    Structure s(schema);
    for (int i = 0; i < a; ++i) s = DisjointUnion(s, loop);
    for (int i = 0; i < b; ++i) s = DisjointUnion(s, edge);
    return s;
  };
  ConjunctiveQuery q = BooleanQueryFromStructure("q", combine(1, 1));
  std::vector<ConjunctiveQuery> views = {
      BooleanQueryFromStructure("v1", combine(2, 1)),
      BooleanQueryFromStructure("v2", combine(1, 2)),
  };
  DeterminacyResult result = DecideBagDeterminacy(views, q);
  ASSERT_TRUE(result.determined);

  DeterminacyWitness tampered = *result.witness;
  tampered.exponents[0] += Rational(1);

  bool caught = false;
  Rng rng(5150);
  for (int iter = 0; iter < 20 && !caught; ++iter) {
    Structure d = RandomStructure(schema, 1 + rng.Below(3), &rng);
    if (!CheckWitnessOnStructure(result.analysis, tampered, d)) caught = true;
  }
  EXPECT_TRUE(caught) << "tampered witness accepted on all probes";
}

class CounterexampleInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    QueryParser parser;
    query_ = parser.ParseRule("q() :- E(x,x), E(a,b)");
    views_ = {parser.ParseRule("v() :- E(x,x), E(y,y), E(a,b)")};
    result_ = DecideBagDeterminacy(views_, query_);
    ASSERT_FALSE(result_.determined);
    ASSERT_TRUE(result_.counterexample.has_value());
    ASSERT_EQ(VerifyCounterexample(result_.analysis, *result_.counterexample),
              std::nullopt);
  }

  ConjunctiveQuery query_;
  std::vector<ConjunctiveQuery> views_;
  DeterminacyResult result_;
};

TEST_F(CounterexampleInjectionTest, PerturbedCoefficientIsRejected) {
  BagCounterexample tampered = *result_.counterexample;
  // Bump one coordinate of D: the view counts stop matching.
  Vec coeffs = tampered.coeffs_d;
  coeffs[0] += Rational(1);
  std::vector<StructureExpr> terms;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    terms.push_back(StructureExpr::Scalar(coeffs[i].numerator(),
                                          tampered.basis_structures[i]));
  }
  tampered.d = StructureExpr::Sum(terms, query_.schema_ptr());
  std::optional<std::string> issue =
      VerifyCounterexample(result_.analysis, tampered);
  ASSERT_TRUE(issue.has_value());
  EXPECT_NE(issue->find("view"), std::string::npos);
}

TEST_F(CounterexampleInjectionTest, IdenticalPairIsRejected) {
  BagCounterexample tampered = *result_.counterexample;
  tampered.d_prime = tampered.d;
  std::optional<std::string> issue =
      VerifyCounterexample(result_.analysis, tampered);
  ASSERT_TRUE(issue.has_value());
  EXPECT_NE(issue->find("query agrees"), std::string::npos);
}

TEST(SynthesisPreconditionTest, DeterminedInstanceThrows) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- E(x,y)");
  ConjunctiveQuery v = parser.ParseRule("v() :- E(a,b)");
  InstanceAnalysis analysis = AnalyzeInstance({v}, q);
  GoodBasis basis = BuildGoodBasis(analysis, DistinguisherOptions());
  EXPECT_THROW(SynthesizeCounterexample(analysis, basis), std::logic_error);
}

TEST(WitnessZeroViewCaseTest, VanishingViewForcesZeroQuery) {
  // Lemma 31 (<=) Case 1: when a relevant view is 0 on D, q must be 0 —
  // and CheckWitnessOnStructure must reject a structure where it is not
  // (which cannot arise from a correct decision, so we fabricate one by
  // pairing a witness from one instance with a foreign structure).
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- E(x,y)");
  ConjunctiveQuery v = parser.ParseRule("v() :- E(a,b), E(b,c)");
  // q is NOT contained in... hom(v, q): 2-path into 1-edge: impossible;
  // so V is empty and this instance is undetermined. Build the witness by
  // hand claiming q(D) = v(D): it must fail on a one-edge structure where
  // v(D) = 0 but q(D) = 1.
  InstanceAnalysis analysis = AnalyzeInstance({v}, q);
  DeterminacyWitness fake;
  fake.view_indices = {0};
  fake.exponents = Vec{Rational(1)};
  Structure d(parser.schema());
  d.AddFact(*parser.schema()->Find("E"), {0, 1});
  EXPECT_FALSE(CheckWitnessOnStructure(analysis, fake, d));
}

TEST(OptionsTest, DistinguisherBoundsArePlumbedThrough) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- E(x,x), E(a,b)");
  ConjunctiveQuery v = parser.ParseRule("v() :- E(x,x), E(y,y), E(a,b)");
  DeterminacyOptions options;
  // A generous subset bound must succeed.
  options.distinguisher.max_subset_domain = 16;
  DeterminacyResult generous = DecideBagDeterminacy({v}, q, options);
  EXPECT_FALSE(generous.determined);
  ASSERT_TRUE(generous.counterexample.has_value());
  EXPECT_EQ(VerifyCounterexample(generous.analysis, *generous.counterexample),
            std::nullopt);
  // Tight bounds still work for this instance because the cheap tier-0
  // candidates (the structures themselves) already distinguish loop vs
  // edge — the bounds only gate the exhaustive and random tiers.
  options.distinguisher.max_subset_domain = 0;
  options.distinguisher.random_attempts = 0;
  EXPECT_FALSE(DecideBagDeterminacy({v}, q, options).determined);
  // Isomorphic inputs yield "no distinguisher" irrespective of bounds.
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  Structure e1(schema);
  e1.AddFact(0, {0, 1});
  Structure e2(schema);
  e2.AddFact(0, {1, 0});
  DistinguisherOptions tight;
  tight.max_subset_domain = 0;
  tight.random_attempts = 0;
  EXPECT_FALSE(FindDistinguisher(e1, e2, tight).has_value());
}

TEST(SummaryTest, MentionsCertificateDetails) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- E(x,x), E(a,b)");
  ConjunctiveQuery v = parser.ParseRule("v() :- E(x,x), E(y,y), E(a,b)");
  DeterminacyResult result = DecideBagDeterminacy({v}, q);
  std::string summary = result.Summary();
  EXPECT_NE(summary.find("k = |W| = 2"), std::string::npos);
  EXPECT_NE(summary.find("perturbation t"), std::string::npos);
  EXPECT_NE(summary.find("|dom(D)|"), std::string::npos);
}

TEST(RngTest, DeterministicAcrossRuns) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  // Documented first outputs (locks cross-platform determinism).
  Rng c(1);
  std::uint64_t first = c.Next();
  Rng d(1);
  EXPECT_EQ(first, d.Next());
  EXPECT_NE(Rng(1).Next(), Rng(2).Next());
}

TEST(RngTest, RangeAndChanceStayInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    EXPECT_LT(rng.Below(17), 17u);
  }
  int hits = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.Chance(1, 4)) ++hits;
  }
  EXPECT_GT(hits, 150);
  EXPECT_LT(hits, 350);
}

}  // namespace
}  // namespace bagdet
