// Randomized differential suite for the verification fast path of the
// certified multi-modular driver (linalg/modular_solve.h):
//
//  * the fresh-prime residual pre-check must reject every perturbed RREF
//    candidate in word-size arithmetic, must accept the true RREF, and —
//    crucially — an adversarial candidate built to vanish mod the
//    screening primes must sail through the pre-check and be caught by
//    the exact pass (the soundness argument for why the exact last mile
//    can never be dropped);
//  * the dedicated multi-modular inverse (CRT and Dixon strategies) must
//    be bit-for-bit identical to the always-exact reference across six
//    regimes — singular, huge-entry, rectangular rejection, identity,
//    Hilbert-like ill-conditioned, random sparse — including forced-bad-
//    prime fallbacks and at any thread count.
//
// The suites are seeded; BAGDET_DIFF_ITERS scales the case counts (the
// nightly CI job runs ~10×) and failing seeds are appended to
// BAGDET_FAIL_SEED_FILE for artifact upload (tests/test_matrices.h).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "linalg/gauss.h"
#include "linalg/matrix.h"
#include "linalg/modular_solve.h"
#include "test_matrices.h"
#include "util/bigint.h"
#include "util/rng.h"

namespace bagdet {
namespace {

// The head of the driver's built-in prime sequence.
constexpr std::uint64_t kFirstPrime = 4611686018427387847ull;

/// Scope-exit seed recorder for the nightly artifact: appends `seed` to
/// BAGDET_FAIL_SEED_FILE when the enclosing test newly failed inside this
/// recorder's scope. A destructor (rather than a trailing statement)
/// catches ASSERT_* early returns as well as EXPECT_* fall-through — the
/// most severe failures are exactly the ones that abort the test body.
class SeedRecorder {
 public:
  explicit SeedRecorder(std::uint64_t seed)
      : seed_(seed), failed_before_(::testing::Test::HasFailure()) {}
  ~SeedRecorder() {
    if (::testing::Test::HasFailure() && !failed_before_) {
      testmat::RecordFailureSeed(seed_);
    }
  }
  SeedRecorder(const SeedRecorder&) = delete;
  SeedRecorder& operator=(const SeedRecorder&) = delete;

 private:
  std::uint64_t seed_;
  bool failed_before_;
};

/// A random matrix drawn from one of the shapes the pre-check suite
/// sweeps (dense small-int, small-rational, big-entry, exact-low-rank).
Mat RandomPreCheckMatrix(Rng* rng) {
  const std::size_t rows = 2 + rng->Below(6);
  const std::size_t cols = 2 + rng->Below(6);
  switch (rng->Below(4)) {
    case 0:
      return testmat::RandomIntMatrix(rng, rows, cols, -9, 9);
    case 1:
      return testmat::RandomRationalMatrix(rng, rows, cols, 9, 9);
    case 2:
      return testmat::RandomBigMatrix(rng, rows, cols, 3);
    default: {
      const std::size_t n = std::max(rows, static_cast<std::size_t>(3));
      return testmat::RandomBigLowRankMatrix(rng, n, 1 + rng->Below(2), 2);
    }
  }
}

TEST(ResidualPreCheckTest, AcceptsTrueRrefAndRejectsPerturbedCandidates) {
  const int cases = 120 * testmat::DiffIterScale();
  int perturbed_checked = 0;
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed = 52000 + static_cast<std::uint64_t>(i);
    SeedRecorder recorder(seed);
    Rng rng(seed);
    Mat m = RandomPreCheckMatrix(&rng);
    Rref exact = ReduceToRrefExact(m);
    const std::vector<std::uint64_t> screen = {ModularPrimes(2)[0],
                                               ModularPrimes(2)[1]};
    // The true RREF always passes the screen.
    EXPECT_TRUE(ModularResidualPreCheck(m, exact, screen)) << "seed " << seed;

    // Any perturbation of the nontrivial block is a certified mismatch:
    // adding 1 to an entry changes the residual by a pivot-column
    // coefficient that is nonzero for some row, and 1 is nonzero mod
    // every 62-bit prime.
    if (exact.rank > 0 && exact.rank < m.cols()) {
      Rref bad = exact;
      std::size_t free_col = m.cols();
      std::size_t next_pivot = 0;
      for (std::size_t c = 0; c < m.cols(); ++c) {
        if (next_pivot < bad.pivots.size() && bad.pivots[next_pivot] == c) {
          ++next_pivot;
        } else {
          free_col = c;
          break;
        }
      }
      ASSERT_LT(free_col, m.cols());
      const std::size_t row = rng.Below(bad.rank);
      bad.matrix.At(row, free_col) += Rational(1);
      EXPECT_FALSE(ModularResidualPreCheck(m, bad, screen)) << "seed " << seed;
      ++perturbed_checked;
    }
  }
  EXPECT_GT(perturbed_checked, cases / 3);
}

TEST(ResidualPreCheckTest, AdversarialCandidatePassesCollidingPrimesOnly) {
  // A candidate perturbed by a multiple of q1·q2 has residuals that
  // vanish mod q1 and q2 — the screen with exactly those primes is blind
  // to it, and only genuinely fresh primes (or the exact pass) can
  // reject. This is why the driver (a) draws screening primes disjoint
  // from the reconstruction modulus, whose primes are "colliding" by CRT
  // construction, and (b) never returns a candidate on the screen's word
  // alone.
  const int cases = 10 * testmat::DiffIterScale();
  const std::vector<std::uint64_t>& primes = ModularPrimes(4);
  const BigInt collision =
      BigInt(static_cast<std::int64_t>(primes[0])) *
      BigInt(static_cast<std::int64_t>(primes[1]));
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed = 53000 + static_cast<std::uint64_t>(i);
    SeedRecorder recorder(seed);
    Rng rng(seed);
    Mat m = testmat::RandomIntMatrix(&rng, 3 + rng.Below(3), 4 + rng.Below(3),
                                     -9, 9);
    Rref exact = ReduceToRrefExact(m);
    if (exact.rank == 0 || exact.rank == m.cols()) continue;
    Rref bad = exact;
    std::size_t free_col = m.cols();
    std::size_t next_pivot = 0;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (next_pivot < bad.pivots.size() && bad.pivots[next_pivot] == c) {
        ++next_pivot;
      } else {
        free_col = c;
        break;
      }
    }
    ASSERT_LT(free_col, m.cols());
    bad.matrix.At(0, free_col) += Rational(collision);

    const std::vector<std::uint64_t> colliding = {primes[0], primes[1]};
    const std::vector<std::uint64_t> fresh = {primes[2], primes[3]};
    EXPECT_TRUE(ModularResidualPreCheck(m, bad, colliding))
        << "seed " << seed << ": screen with colliding primes must be blind";
    EXPECT_FALSE(ModularResidualPreCheck(m, bad, fresh))
        << "seed " << seed << ": fresh primes must certify the mismatch";
  }
}

TEST(ResidualPreCheckTest, SabotagedScreenNeverLetsAWrongResultThrough) {
  // End to end: reconstruction primes injected too few to cover the huge
  // entries AND the screening primes forced to collide with them (so the
  // pre-check is vacuous by CRT construction). Whatever happens — a
  // declined lift or a served result — the driver must never return
  // anything but the exact RREF: the exact pass is the final arbiter.
  const int cases = 30 * testmat::DiffIterScale();
  const std::vector<std::uint64_t>& table = ModularPrimes(8);
  const std::vector<std::uint64_t> few(table.begin(), table.begin() + 3);
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed = 54000 + static_cast<std::uint64_t>(i);
    SeedRecorder recorder(seed);
    Rng rng(seed);
    Mat m = testmat::RandomBigMatrix(&rng, 3 + rng.Below(3), 3 + rng.Below(3),
                                     4 + static_cast<int>(rng.Below(3)));
    ModularOptions sabotage;
    sabotage.primes = &few;
    sabotage.max_primes = few.size();
    sabotage.verify_primes = &few;  // Screen collides: vacuous.
    std::optional<Rref> got = TryModularRref(m, sabotage);
    Rref exact = ReduceToRrefExact(m);
    if (got.has_value()) {
      EXPECT_EQ(got->rank, exact.rank) << "seed " << seed;
      EXPECT_EQ(got->pivots, exact.pivots) << "seed " << seed;
      EXPECT_EQ(got->matrix, exact.matrix) << "seed " << seed;
    }
    // The dispatching entry point (driver + exact fallback) always serves
    // the exact answer.
    Rref served = ReduceToRref(m);
    EXPECT_EQ(served.matrix, exact.matrix) << "seed " << seed;
  }
}

TEST(ResidualPreCheckTest, PreCheckOnAndOffAreBitIdentical) {
  const int cases = 40 * testmat::DiffIterScale();
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed = 55000 + static_cast<std::uint64_t>(i);
    SeedRecorder recorder(seed);
    Rng rng(seed);
    Mat m = RandomPreCheckMatrix(&rng);
    ModularOptions off;
    off.verify_precheck_primes = 0;
    ModularOptions on;
    on.verify_precheck_primes = 3;
    std::optional<Rref> without = TryModularRref(m, off);
    std::optional<Rref> with = TryModularRref(m, on);
    ASSERT_EQ(without.has_value(), with.has_value()) << "seed " << seed;
    if (with.has_value()) {
      EXPECT_EQ(without->matrix, with->matrix) << "seed " << seed;
      EXPECT_EQ(without->pivots, with->pivots) << "seed " << seed;
      Rref exact = ReduceToRrefExact(m);
      EXPECT_EQ(with->matrix, exact.matrix) << "seed " << seed;
    }
  }
}

TEST(ResidualPreCheckTest, HugeLowRankRunsExactlyOneExactPassPerAccept) {
  // The acceptance regime: n=24, rank 4, 256-bit entries — the workload
  // where PR 4's profiling showed the exact verification certificate
  // dominating TryModularRref. With the pre-check on, every rejection is
  // handled modularly (reconstruction failure or word-size screen) and
  // the exact rational pass runs exactly once: for the accepted result.
  Rng rng(20260729);
  Mat m = testmat::RandomBigLowRankMatrix(&rng, 24, 4, 8);
  ModularStats stats;
  ModularOptions options;
  options.stats = &stats;
  std::optional<Rref> got = TryModularRref(m, options);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->rank, 4u);
  EXPECT_EQ(stats.exact_verifies, 1u)
      << "the exact pass must be a last-mile confirmation, not a filter";
  EXPECT_GE(stats.lift_attempts, 1u);
  EXPECT_GT(stats.primes_used, 1u);

  // Poisoned variant: scaling the entries by the product of the driver's
  // first two primes makes those primes see a zero matrix, so the early
  // rank-0 consensus *reconstructs* trivially and produces genuinely
  // wrong candidates. Every one of them must die in the word-size screen
  // — the exact pass still runs exactly once, for the accepted result.
  const std::vector<std::uint64_t>& primes = ModularPrimes(2);
  const Rational poison(BigInt(static_cast<std::int64_t>(primes[0])) *
                        BigInt(static_cast<std::int64_t>(primes[1])));
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) m.At(r, c) *= poison;
  }
  ModularStats poisoned;
  options.stats = &poisoned;
  got = TryModularRref(m, options);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->rank, 4u);
  EXPECT_GT(poisoned.precheck_rejects, 0u)
      << "spurious rank-0 candidates must be rejected modularly";
  EXPECT_EQ(poisoned.exact_verifies, 1u);
  EXPECT_EQ(got->matrix, ReduceToRrefExact(m).matrix);
}

// --- Multi-modular inverse differentials ----------------------------------

/// The six regimes the inverse suite sweeps.
enum class InverseRegime {
  kSingular,       // Exact low-rank square: no inverse exists.
  kHugeEntry,      // 64–128 bit integer entries.
  kRectangular,    // Non-square: must be rejected outright.
  kIdentity,       // I and scaled I (trivial p-adic expansions).
  kHilbertLike,    // Ill-conditioned Cauchy structure, rational entries.
  kRandomSparse,   // ~1/3 density integer entries.
};

Mat InverseCaseFor(InverseRegime regime, Rng* rng) {
  const std::size_t n = 2 + rng->Below(5);
  switch (regime) {
    case InverseRegime::kSingular:
      return testmat::RandomBigLowRankMatrix(rng, std::max<std::size_t>(n, 2),
                                             1 + rng->Below(2), 1);
    case InverseRegime::kHugeEntry:
      return testmat::RandomBigMatrix(rng, n, n,
                                      2 + static_cast<int>(rng->Below(3)));
    case InverseRegime::kRectangular:
      return testmat::RandomIntMatrix(rng, n, n + 1 + rng->Below(2), -5, 5);
    case InverseRegime::kIdentity: {
      Mat m = Mat::Identity(n);
      if (rng->Chance(1, 2)) {
        const Rational scale(BigInt(rng->Range(2, 50)));
        for (std::size_t i = 0; i < n; ++i) m.At(i, i) *= scale;
      }
      return m;
    }
    case InverseRegime::kHilbertLike:
      return testmat::HilbertLikeMatrix(n, rng->Below(4));
    case InverseRegime::kRandomSparse:
      return testmat::RandomSparseMatrix(rng, n, n, 1, 3, -9, 9);
  }
  return Mat();
}

TEST(ModularInverseTest, DifferentialAcrossSixRegimesAndBothStrategies) {
  const InverseRegime regimes[] = {
      InverseRegime::kSingular,    InverseRegime::kHugeEntry,
      InverseRegime::kRectangular, InverseRegime::kIdentity,
      InverseRegime::kHilbertLike, InverseRegime::kRandomSparse,
  };
  const int per_regime = 20 * testmat::DiffIterScale();
  int fast_successes = 0;
  int invertible_cases = 0;
  for (const InverseRegime regime : regimes) {
    for (int i = 0; i < per_regime; ++i) {
      const std::uint64_t seed = 56000 +
                                 1000 * static_cast<std::uint64_t>(regime) +
                                 static_cast<std::uint64_t>(i);
      SeedRecorder recorder(seed);
      Rng rng(seed);
      Mat m = InverseCaseFor(regime, &rng);
      std::optional<Mat> exact = InverseExact(m);

      // Both strategies, differentially against the exact reference: the
      // CRT path (default for these dimensions) and the Dixon p-adic
      // path (forced via dixon_min_dim = 1).
      for (const std::size_t dixon_min : {std::size_t{100}, std::size_t{1}}) {
        ModularOptions options;
        options.dixon_min_dim = dixon_min;
        std::optional<Mat> fast = TryModularInverse(m, options);
        if (fast.has_value()) {
          ASSERT_TRUE(exact.has_value())
              << "seed " << seed << ": modular inverse of a singular matrix";
          EXPECT_EQ(*fast, *exact) << "seed " << seed << " dixon_min "
                                   << dixon_min;
          ++fast_successes;
        } else {
          // Declining is only acceptable when there is nothing to find.
          EXPECT_FALSE(exact.has_value())
              << "seed " << seed << " dixon_min " << dixon_min
              << ": driver declined an invertible matrix";
        }
      }
      // The dispatching entry point agrees with the exact reference on
      // presence and value.
      std::optional<Mat> served = Inverse(m);
      ASSERT_EQ(served.has_value(), exact.has_value()) << "seed " << seed;
      if (exact.has_value()) {
        EXPECT_EQ(*served, *exact) << "seed " << seed;
        ++invertible_cases;
      }
    }
  }
  EXPECT_GT(invertible_cases, 0);
  // The fast path must actually engage on the invertible cases (both
  // strategies), not silently fall back everywhere.
  EXPECT_GE(fast_successes, invertible_cases);
}

TEST(ModularInverseTest, ForcedBadPrimesFallBackToExact) {
  // Entries all divisible by the injected prime: the matrix is zero mod
  // p, every per-prime inversion fails, and the driver must decline —
  // while the dispatching Inverse still serves the exact answer.
  Rng rng(57001);
  Mat m = testmat::RandomIntMatrix(&rng, 4, 4, 1, 9);
  for (std::size_t r = 0; r < 4; ++r) {
    m.At(r, r) += Rational(BigInt(20 + static_cast<std::int64_t>(r)));
  }
  const Rational p(BigInt(static_cast<std::int64_t>(kFirstPrime)));
  Mat scaled = m;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) scaled.At(r, c) *= p;
  }
  std::optional<Mat> exact = InverseExact(scaled);
  ASSERT_TRUE(exact.has_value());

  std::vector<std::uint64_t> bad = {kFirstPrime};
  for (const std::size_t dixon_min : {std::size_t{100}, std::size_t{1}}) {
    ModularOptions options;
    options.primes = &bad;
    options.max_primes = bad.size();
    options.dixon_min_dim = dixon_min;
    EXPECT_FALSE(TryModularInverse(scaled, options).has_value());
  }
  std::optional<Mat> served = Inverse(scaled);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(*served, *exact);

  // Denominators divisible by the first prime: that prime is unusable
  // (not merely unlucky) and the default driver must skip it and still
  // produce the exact inverse.
  Mat with_dens(3, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      with_dens.At(r, c) =
          Rational(BigInt(static_cast<std::int64_t>(1 + r + 3 * c + (r == c))),
                   (r + c) % 2 == 0 ? p.numerator() : BigInt(1));
    }
  }
  std::optional<Mat> dens_exact = InverseExact(with_dens);
  ASSERT_TRUE(dens_exact.has_value());
  std::optional<Mat> dens_fast = TryModularInverse(with_dens);
  ASSERT_TRUE(dens_fast.has_value());
  EXPECT_EQ(*dens_fast, *dens_exact);
}

TEST(ModularInverseTest, ThreadCountsAndStrategiesAreBitIdentical) {
  const int cases = 8 * testmat::DiffIterScale();
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed = 58000 + static_cast<std::uint64_t>(i);
    SeedRecorder recorder(seed);
    Rng rng(seed);
    const std::size_t n = 4 + rng.Below(3);
    Mat m = testmat::RandomBigMatrix(&rng, n, n, 2);
    std::optional<Mat> exact = InverseExact(m);
    std::optional<Mat> reference;
    for (const std::size_t dixon_min : {std::size_t{100}, std::size_t{1}}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ModularOptions options;
        options.dixon_min_dim = dixon_min;
        options.num_threads = threads;
        std::optional<Mat> got = TryModularInverse(m, options);
        if (exact.has_value()) {
          ASSERT_TRUE(got.has_value())
              << "seed " << seed << " threads " << threads;
          EXPECT_EQ(*got, *exact) << "seed " << seed << " threads " << threads;
          if (!reference.has_value()) reference = got;
          EXPECT_EQ(*got, *reference) << "seed " << seed;
        } else {
          EXPECT_FALSE(got.has_value()) << "seed " << seed;
        }
      }
    }
  }
}

TEST(ModularInverseTest, DixonPathMatchesExactOnAGenuinelyLargeMatrix) {
  // One genuinely large case, n = 12 with 64-bit entries, on both
  // strategies: the default dispatch stays on CRT (the measured winner at
  // this size — see ModularOptions::dixon_min_dim), and the forced Dixon
  // path must agree with the exact reference bit for bit with a single
  // exact verification pass.
  Rng rng(59001);
  Mat m = testmat::RandomBigMatrix(&rng, 12, 12, 2);
  std::optional<Mat> exact = InverseExact(m);
  ASSERT_TRUE(exact.has_value());

  ModularStats crt_stats;
  ModularOptions crt;
  crt.stats = &crt_stats;
  std::optional<Mat> via_crt = TryModularInverse(m, crt);
  ASSERT_TRUE(via_crt.has_value());
  EXPECT_FALSE(crt_stats.used_dixon);
  EXPECT_EQ(*via_crt, *exact);

  ModularStats dixon_stats;
  ModularOptions dixon;
  dixon.dixon_min_dim = 1;
  dixon.stats = &dixon_stats;
  std::optional<Mat> via_dixon = TryModularInverse(m, dixon);
  ASSERT_TRUE(via_dixon.has_value());
  EXPECT_TRUE(dixon_stats.used_dixon);
  EXPECT_EQ(dixon_stats.exact_verifies, 1u);
  EXPECT_EQ(*via_dixon, *exact);
}

}  // namespace
}  // namespace bagdet
