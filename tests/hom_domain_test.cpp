// Unit and differential coverage of the domain layer of the hom core:
// SVOBitset (inline/spill boundary, intersection/count/scan kernels, copy
// and move hygiene), DomainSet propagation (seeding, arc-consistency
// fixpoint, binding cascades), the DpOptions ablation matrix, and the
// bit-identity contract of the parallel single-count split across thread
// counts.

#include <gtest/gtest.h>

#include <vector>

#include "hom/domain.h"
#include "hom/hom.h"
#include "structs/generator.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "test_matrices.h"

namespace bagdet {
namespace {

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

// --- SVOBitset --------------------------------------------------------------

TEST(SVOBitsetTest, InlineSpillBoundary) {
  // kInlineWords * 64 = 256 bits is the last inline size; 257 spills.
  SVOBitset at_boundary(256);
  SVOBitset past_boundary(257);
  EXPECT_FALSE(at_boundary.spilled());
  EXPECT_TRUE(past_boundary.spilled());
  for (std::size_t bits : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                           std::size_t{64}, std::size_t{65}, std::size_t{255},
                           std::size_t{256}, std::size_t{257},
                           std::size_t{1000}}) {
    SVOBitset b(bits);
    EXPECT_EQ(b.size(), bits);
    EXPECT_EQ(b.Count(), 0u);
    EXPECT_TRUE(b.None());
    EXPECT_EQ(b.FindFirst(), SVOBitset::npos);
    if (bits == 0) continue;
    b.Set(bits - 1);
    EXPECT_TRUE(b.Test(bits - 1));
    EXPECT_EQ(b.Count(), 1u) << bits;
    EXPECT_EQ(b.FindFirst(), bits - 1);
  }
}

TEST(SVOBitsetTest, SetAllKeepsTailBitsClear) {
  // Sizes straddling word boundaries: SetAll must never set phantom bits
  // past size(), or Count/FindNext would report members outside the
  // target domain.
  for (std::size_t bits : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                           std::size_t{65}, std::size_t{200},
                           std::size_t{256}, std::size_t{300}}) {
    SVOBitset b(bits, /*all_set=*/true);
    EXPECT_EQ(b.Count(), bits);
    EXPECT_EQ(b.FindNext(bits), SVOBitset::npos) << bits;
    std::size_t seen = 0;
    for (std::size_t i = b.FindFirst(); i != SVOBitset::npos;
         i = b.FindNext(i + 1)) {
      EXPECT_EQ(i, seen);
      ++seen;
    }
    EXPECT_EQ(seen, bits);
  }
}

TEST(SVOBitsetTest, IntersectWithReportsSurvivors) {
  for (std::size_t bits : {std::size_t{100}, std::size_t{300}}) {
    SVOBitset evens(bits), threes(bits);
    for (std::size_t i = 0; i < bits; i += 2) evens.Set(i);
    for (std::size_t i = 0; i < bits; i += 3) threes.Set(i);
    SVOBitset both = evens;
    EXPECT_TRUE(both.IntersectWith(threes));
    for (std::size_t i = 0; i < bits; ++i) {
      EXPECT_EQ(both.Test(i), i % 6 == 0) << i;
    }
    EXPECT_EQ(both.Count(), (bits + 5) / 6);
    // Disjoint sets: the fused empty check fires.
    SVOBitset odds(bits);
    for (std::size_t i = 1; i < bits; i += 2) odds.Set(i);
    SVOBitset dead = evens;
    EXPECT_FALSE(dead.IntersectWith(odds));
    EXPECT_TRUE(dead.None());
  }
}

TEST(SVOBitsetTest, FindNextScansAcrossWords) {
  SVOBitset b(320, /*all_set=*/false);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(191);
  b.Set(319);
  std::vector<std::size_t> hits;
  for (std::size_t i = b.FindFirst(); i != SVOBitset::npos;
       i = b.FindNext(i + 1)) {
    hits.push_back(i);
  }
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 63, 64, 191, 319}));
  EXPECT_EQ(b.FindNext(65), 191u);
  b.Reset(191);
  EXPECT_EQ(b.FindNext(65), 319u);
}

TEST(SVOBitsetTest, CopyAndMoveHygiene) {
  for (std::size_t bits : {std::size_t{128}, std::size_t{512}}) {
    SVOBitset original(bits);
    original.Set(7);
    original.Set(bits - 1);
    SVOBitset copy(original);
    EXPECT_EQ(copy, original);
    copy.Set(11);
    EXPECT_NE(copy, original);  // Deep copy: no shared storage.
    EXPECT_FALSE(original.Test(11));
    SVOBitset moved(std::move(copy));
    EXPECT_TRUE(moved.Test(11));
    EXPECT_TRUE(moved.Test(bits - 1));
    // Assignment across different footprints reallocates correctly.
    SVOBitset assigned(3);
    assigned = original;
    EXPECT_EQ(assigned, original);
    assigned = SVOBitset(bits);  // Move-assign over a live value.
    EXPECT_EQ(assigned.Count(), 0u);
    EXPECT_EQ(assigned.size(), bits);
  }
}

// --- DomainSet / DomainModel ------------------------------------------------

TEST(HomDomainTest, SeedingRestrictsToOccupiedPositions) {
  // from: x -> y.  to: path 0 -> 1 -> 2.  Arc consistency gives exactly
  // D(x) = {0, 1} (sources) and D(y) = {1, 2} (sinks).
  auto schema = GraphSchema();
  Structure from(schema, 2);
  from.AddFact(0, {0, 1});
  Structure to(schema, 3);
  to.AddFact(0, {0, 1});
  to.AddFact(0, {1, 2});
  DomainModel model(from, to);
  DomainSet doms;
  ASSERT_TRUE(model.InitialDomains(&doms));
  EXPECT_TRUE(doms.domain(0).Test(0));
  EXPECT_TRUE(doms.domain(0).Test(1));
  EXPECT_FALSE(doms.domain(0).Test(2));
  EXPECT_FALSE(doms.domain(1).Test(0));
  EXPECT_TRUE(doms.domain(1).Test(1));
  EXPECT_TRUE(doms.domain(1).Test(2));
}

TEST(HomDomainTest, FixpointDetectsInfeasibilityBeforeSearch) {
  // from: x -> y -> z needs a target vertex with both an in- and an
  // out-edge; a single disconnected edge has none, so the propagation
  // fixpoint empties D(y) with no search at all.
  auto schema = GraphSchema();
  Structure from(schema, 3);
  from.AddFact(0, {0, 1});
  from.AddFact(0, {1, 2});
  Structure to(schema, 2);
  to.AddFact(0, {0, 1});
  DomainModel model(from, to);
  DomainSet doms;
  EXPECT_FALSE(model.InitialDomains(&doms));
  EXPECT_EQ(CountHoms(from, to), BigInt(0));
  EXPECT_FALSE(ExistsHom(from, to));
}

TEST(HomDomainTest, BindCascadesThroughSharedAtoms) {
  // from: x -> y over to: path 0 -> 1 -> 2. Binding x to 0 re-supports the
  // edge atom, collapsing D(y) to {1}; binding x outside its domain fails.
  auto schema = GraphSchema();
  Structure from(schema, 2);
  from.AddFact(0, {0, 1});
  Structure to(schema, 3);
  to.AddFact(0, {0, 1});
  to.AddFact(0, {1, 2});
  DomainModel model(from, to);
  DomainSet doms;
  ASSERT_TRUE(model.InitialDomains(&doms));
  DomainSet bound = doms;
  ASSERT_TRUE(model.Bind(&bound, 0, 0));
  EXPECT_EQ(bound.domain(1).Count(), 1u);
  EXPECT_TRUE(bound.domain(1).Test(1));
  DomainSet rejected = doms;
  EXPECT_FALSE(model.Bind(&rejected, 0, 2));  // 2 has no outgoing edge.
}

TEST(HomDomainTest, RepeatedVariableAtomsNeedDiagonalSupport) {
  // E(x, x) is only supported by loop facts: without one, domains empty.
  auto schema = GraphSchema();
  Structure from(schema, 1);
  from.AddFact(0, {0, 0});
  Structure to(schema, 3);
  to.AddFact(0, {0, 1});
  to.AddFact(0, {1, 2});
  DomainModel model(from, to);
  DomainSet doms;
  EXPECT_FALSE(model.InitialDomains(&doms));
  Structure with_loop = to;
  with_loop.AddFact(0, {2, 2});
  DomainModel loop_model(from, with_loop);
  ASSERT_TRUE(loop_model.InitialDomains(&doms));
  EXPECT_EQ(doms.domain(0).Count(), 1u);
  EXPECT_TRUE(doms.domain(0).Test(2));
}

// --- DpOptions ablation matrix ---------------------------------------------

DpOptions Pr1Options() {
  DpOptions options;
  options.use_domains = false;
  options.order_search_max_atoms = 0;
  options.num_threads = 1;
  return options;
}

TEST(HomDomainTest, OptionsMatrixAgreesOnRandomPairs) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("H", 0);
  schema->AddRelation("P", 1);
  schema->AddRelation("E", 2);
  schema->AddRelation("T", 3);
  Rng rng(0xd0a1u);
  const int iters = 40 * testmat::DiffIterScale();
  for (int iter = 0; iter < iters; ++iter) {
    Structure from = RandomStructure(schema, rng.Below(4), &rng, 1, 2);
    Structure to = RandomStructure(schema, rng.Below(4), &rng, 1, 2);
    const BigInt expected = CountHomsNaive(from, to);
    for (bool domains : {false, true}) {
      for (std::size_t search : {std::size_t{0}, std::size_t{12}}) {
        for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          DpOptions options;
          options.use_domains = domains;
          options.domain_min_work = 0;  // Engage domains on any size.
          options.order_search_max_atoms = search;
          options.num_threads = threads;
          options.parallel_split_min_work = 0;  // Force the split path.
          EXPECT_EQ(CountHoms(from, to, options), expected)
              << "domains=" << domains << " search=" << search
              << " threads=" << threads << " from=" << from.ToString()
              << " to=" << to.ToString();
        }
      }
    }
  }
}

TEST(HomDomainTest, ParallelSplitIsBitIdenticalAcrossThreadCounts) {
  auto schema = GraphSchema();
  // A count big enough that every chunk is non-trivial: hom(P6, K5).
  Structure path(schema, 7);
  for (Element i = 0; i < 6; ++i) {
    path.AddFact(0, {i, static_cast<Element>(i + 1)});
  }
  Structure clique(schema, 5);
  for (Element a = 0; a < 5; ++a) {
    for (Element b = 0; b < 5; ++b) {
      if (a != b) clique.AddFact(0, {a, b});
    }
  }
  const BigInt serial = CountHoms(path, clique, Pr1Options());
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    DpOptions options;
    options.num_threads = threads;
    options.parallel_split_min_work = 0;
    options.domain_min_work = 0;
    EXPECT_EQ(CountHoms(path, clique, options), serial) << threads;
  }
  // And on irregular random instances, against the default engine.
  Rng rng(0x5b11d);
  const int iters = 10 * testmat::DiffIterScale();
  for (int iter = 0; iter < iters; ++iter) {
    Structure from = RandomConnectedStructure(schema, 2 + rng.Below(3), &rng,
                                              2, 3);
    Structure to = RandomStructure(schema, 2 + rng.Below(5), &rng, 2, 3);
    const BigInt baseline = CountHoms(from, to);
    for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      DpOptions options;
      options.num_threads = threads;
      options.parallel_split_min_work = 0;
      options.domain_min_work = 0;
      EXPECT_EQ(CountHoms(from, to, options), baseline)
          << "threads=" << threads << " from=" << from.ToString()
          << " to=" << to.ToString();
    }
  }
}

TEST(HomDomainTest, ClosedFormsSurviveEveryEngine) {
  // hom(C4, K_n) = trace(A_{K_n}^4) = (n-1)^4 + (n-1); pin both engines
  // and the forced split to the formula.
  auto schema = GraphSchema();
  Structure cycle(schema, 4);
  for (Element i = 0; i < 4; ++i) {
    cycle.AddFact(0, {i, static_cast<Element>((i + 1) % 4)});
  }
  for (std::size_t n : {std::size_t{2}, std::size_t{5}, std::size_t{9}}) {
    Structure clique(schema, n);
    for (Element a = 0; a < n; ++a) {
      for (Element b = 0; b < n; ++b) {
        if (a != b) clique.AddFact(0, {a, b});
      }
    }
    const std::int64_t k = static_cast<std::int64_t>(n) - 1;
    const BigInt expected = BigInt(k * k * k * k + k);
    EXPECT_EQ(CountHoms(cycle, clique), expected) << n;
    EXPECT_EQ(CountHoms(cycle, clique, Pr1Options()), expected) << n;
    DpOptions split;
    split.num_threads = 4;
    split.parallel_split_min_work = 0;
    split.domain_min_work = 0;
    EXPECT_EQ(CountHoms(cycle, clique, split), expected) << n;
  }
}

TEST(HomDomainTest, MatcherBucketIntersectionOnWideBuckets) {
  // Clique(20) buckets hold 19 fact ids — past the Matcher's
  // intersection threshold, so the runner-up-bucket bitset drives the
  // candidate scan. The injective path count into a clique has a closed
  // form (every vertex sequence of distinct elements is a path) to pin
  // the scan against.
  auto schema = GraphSchema();
  Structure path(schema, 4);
  for (Element i = 0; i < 3; ++i) {
    path.AddFact(0, {i, static_cast<Element>(i + 1)});
  }
  Structure clique(schema, 20);
  for (Element a = 0; a < 20; ++a) {
    for (Element b = 0; b < 20; ++b) {
      if (a != b) clique.AddFact(0, {a, b});
    }
  }
  EXPECT_EQ(CountInjectiveHoms(path, clique),
            BigInt(std::int64_t{20} * 19 * 18 * 17));
  EXPECT_TRUE(ExistsHom(path, clique));
}

}  // namespace
}  // namespace bagdet
