#include "hom/hom.h"

#include <gtest/gtest.h>

#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

Structure Edge(const std::shared_ptr<Schema>& schema) {
  Structure s(schema);
  s.AddFact(0, {0, 1});
  return s;
}

Structure Loop(const std::shared_ptr<Schema>& schema) {
  Structure s(schema);
  s.AddFact(0, {0, 0});
  return s;
}

Structure Cycle(const std::shared_ptr<Schema>& schema, Element n) {
  Structure s(schema);
  for (Element i = 0; i < n; ++i) {
    s.AddFact(0, {i, static_cast<Element>((i + 1) % n)});
  }
  return s;
}

Structure Clique(const std::shared_ptr<Schema>& schema, Element n) {
  Structure s(schema, n);
  for (Element i = 0; i < n; ++i) {
    for (Element j = 0; j < n; ++j) {
      if (i != j) s.AddFact(0, {i, j});
    }
  }
  return s;
}

TEST(HomTest, EmptySourceHasExactlyOneHom) {
  auto schema = GraphSchema();
  Structure empty(schema);
  EXPECT_EQ(CountHoms(empty, Edge(schema)), BigInt(1));
  EXPECT_EQ(CountHoms(empty, empty), BigInt(1));
  EXPECT_TRUE(ExistsHom(empty, empty));
}

TEST(HomTest, EdgeIntoEdgeAndLoop) {
  auto schema = GraphSchema();
  EXPECT_EQ(CountHoms(Edge(schema), Edge(schema)), BigInt(1));
  EXPECT_EQ(CountHoms(Edge(schema), Loop(schema)), BigInt(1));
  EXPECT_EQ(CountHoms(Loop(schema), Edge(schema)), BigInt(0));
  EXPECT_FALSE(ExistsHom(Loop(schema), Edge(schema)));
}

TEST(HomTest, PathsIntoCliqueCountWalks) {
  // hom(path of k edges, K_n) = number of walks = n·(n-1)^k.
  auto schema = GraphSchema();
  Structure k3 = Clique(schema, 3);
  Structure path2(schema);
  path2.AddFact(0, {0, 1});
  path2.AddFact(0, {1, 2});
  EXPECT_EQ(CountHoms(path2, k3), BigInt(3 * 2 * 2));
  Structure path3(schema);
  path3.AddFact(0, {0, 1});
  path3.AddFact(0, {1, 2});
  path3.AddFact(0, {2, 3});
  EXPECT_EQ(CountHoms(path3, k3), BigInt(3 * 2 * 2 * 2));
}

TEST(HomTest, OddCycleIntoBipartiteIsZero) {
  auto schema = GraphSchema();
  // C_4 with both orientations ~ bipartite; directed C_3 has no hom into
  // a directed 2-cycle.
  Structure c2 = Cycle(schema, 2);
  EXPECT_EQ(CountHoms(Cycle(schema, 3), c2), BigInt(0));
  EXPECT_EQ(CountHoms(Cycle(schema, 4), c2), BigInt(2));
}

TEST(HomTest, IsolatedElementsMultiplyByDomain) {
  auto schema = GraphSchema();
  Structure from(schema, 2);  // Two isolated elements.
  Structure to(schema, 5);
  EXPECT_EQ(CountHoms(from, to), BigInt(25));
  Structure to_empty(schema, 0);
  EXPECT_EQ(CountHoms(from, to_empty), BigInt(0));
}

TEST(HomTest, NullaryFactsRequirePresence) {
  auto schema = std::make_shared<Schema>();
  RelationId h = schema->AddRelation("H", 0);
  RelationId e = schema->AddRelation("E", 2);
  Structure from(schema);
  from.AddFact(h, {});
  from.AddFact(e, {0, 1});
  Structure with_h(schema);
  with_h.AddFact(h, {});
  with_h.AddFact(e, {0, 1});
  Structure without_h(schema);
  without_h.AddFact(e, {0, 1});
  EXPECT_EQ(CountHoms(from, with_h), BigInt(1));
  EXPECT_EQ(CountHoms(from, without_h), BigInt(0));
  EXPECT_TRUE(ExistsHom(from, with_h));
  EXPECT_FALSE(ExistsHom(from, without_h));
}

TEST(HomTest, SelfMapCountsOfCycles) {
  auto schema = GraphSchema();
  // Directed n-cycle into itself: n rotations.
  for (Element n : {2, 3, 4, 5}) {
    EXPECT_EQ(CountHoms(Cycle(schema, n), Cycle(schema, n)),
              BigInt(static_cast<std::int64_t>(n)));
  }
  // C_4 into C_2: map around twice or collapse; 2 choices of phase x 1.
  EXPECT_EQ(CountHoms(Cycle(schema, 4), Cycle(schema, 2)), BigInt(2));
}

TEST(HomTest, InjectiveCountsAutomorphisms) {
  auto schema = GraphSchema();
  // The directed n-cycle has exactly n automorphisms.
  EXPECT_EQ(CountInjectiveHoms(Cycle(schema, 4), Cycle(schema, 4)), BigInt(4));
  // Injective homs of one edge into K_3: ordered pairs of distinct = 6.
  EXPECT_EQ(CountInjectiveHoms(Edge(schema), Clique(schema, 3)), BigInt(6));
  // Too large a source.
  EXPECT_EQ(CountInjectiveHoms(Clique(schema, 3), Clique(schema, 2)),
            BigInt(0));
}

TEST(HomTest, InjectiveCouplesComponents) {
  auto schema = GraphSchema();
  // Two disjoint edges injectively into one edge: impossible (needs 4
  // distinct elements); non-injectively there is 1 hom.
  Structure two_edges(schema);
  two_edges.AddFact(0, {0, 1});
  two_edges.AddFact(0, {2, 3});
  EXPECT_EQ(CountHoms(two_edges, Edge(schema)), BigInt(1));
  EXPECT_EQ(CountInjectiveHoms(two_edges, Edge(schema)), BigInt(0));
}

TEST(HomTest, EnumerateHomsVisitsEach) {
  auto schema = GraphSchema();
  Structure from = Edge(schema);
  Structure to = Clique(schema, 3);
  int visits = 0;
  EnumerateHoms(from, to, [&](const std::vector<Element>& h) {
    EXPECT_NE(h[0], h[1]);  // K_3 has no loops.
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 6);
}

TEST(HomTest, EnumerateHomsEarlyStop) {
  auto schema = GraphSchema();
  int visits = 0;
  bool completed =
      EnumerateHoms(Edge(schema), Clique(schema, 3),
                    [&](const std::vector<Element>&) {
                      ++visits;
                      return false;
                    });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visits, 1);
}

// ---------------------------------------------------------------------------
// Lemma 4 identities on random structures, plus naive cross-validation.

struct Lemma4Case {
  std::uint64_t seed;
  std::size_t from_size;
  std::size_t to_size;
};

class Lemma4Test : public ::testing::TestWithParam<Lemma4Case> {
 protected:
  std::shared_ptr<Schema> schema_ = [] {
    auto schema = std::make_shared<Schema>();
    schema->AddRelation("R", 2);
    schema->AddRelation("P", 1);
    return schema;
  }();
};

TEST_P(Lemma4Test, SumLawForConnectedSources) {
  Rng rng(GetParam().seed);
  Structure a =
      RandomConnectedStructure(schema_, GetParam().from_size, &rng);
  Structure b = RandomStructure(schema_, GetParam().to_size, &rng);
  Structure c = RandomStructure(schema_, GetParam().to_size, &rng);
  // Lemma 4(1).
  EXPECT_EQ(CountHoms(a, DisjointUnion(b, c)),
            CountHoms(a, b) + CountHoms(a, c));
  // Lemma 4(2).
  EXPECT_EQ(CountHoms(a, ScalarMultiple(3, b)), BigInt(3) * CountHoms(a, b));
}

TEST_P(Lemma4Test, ProductLawForAllSources) {
  Rng rng(GetParam().seed * 7 + 1);
  Structure a = RandomStructure(schema_, GetParam().from_size, &rng);
  Structure b = RandomStructure(schema_, GetParam().to_size, &rng);
  Structure c = RandomStructure(schema_, GetParam().to_size, &rng);
  // Lemma 4(3) holds for arbitrary (not only connected) sources.
  EXPECT_EQ(CountHoms(a, Product(b, c)), CountHoms(a, b) * CountHoms(a, c));
  // Lemma 4(4).
  EXPECT_EQ(CountHoms(a, IteratedProduct(b, 2)),
            CountHoms(a, b) * CountHoms(a, b));
}

TEST_P(Lemma4Test, UnionLawOnSourceSide) {
  Rng rng(GetParam().seed * 13 + 5);
  Structure a = RandomStructure(schema_, GetParam().from_size, &rng);
  Structure b = RandomStructure(schema_, GetParam().from_size, &rng);
  Structure c = RandomStructure(schema_, GetParam().to_size, &rng);
  // Lemma 4(5).
  EXPECT_EQ(CountHoms(DisjointUnion(a, b), c),
            CountHoms(a, c) * CountHoms(b, c));
}

TEST_P(Lemma4Test, EngineMatchesNaiveEnumeration) {
  Rng rng(GetParam().seed * 31 + 9);
  Structure a = RandomStructure(schema_, GetParam().from_size, &rng);
  Structure b = RandomStructure(schema_, GetParam().to_size, &rng);
  EXPECT_EQ(CountHoms(a, b), CountHomsNaive(a, b))
      << "from=" << a.ToString() << " to=" << b.ToString();
  EXPECT_EQ(ExistsHom(a, b), !CountHoms(a, b).IsZero());
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweeps, Lemma4Test,
    ::testing::Values(Lemma4Case{101, 2, 2}, Lemma4Case{102, 2, 3},
                      Lemma4Case{103, 3, 2}, Lemma4Case{104, 3, 3},
                      Lemma4Case{105, 4, 2}, Lemma4Case{106, 1, 4},
                      Lemma4Case{107, 4, 3}, Lemma4Case{108, 3, 4}));

TEST(HomScaleTest, LongPathIntoLargeCliqueUsesBigCounts) {
  auto schema = GraphSchema();
  // hom(path with 40 edges, K_12) = 12 * 11^40: far beyond 64 bits.
  Structure path(schema);
  for (Element i = 0; i < 40; ++i) {
    path.AddFact(0, {i, static_cast<Element>(i + 1)});
  }
  BigInt expected(12);
  for (int i = 0; i < 40; ++i) expected *= BigInt(11);
  EXPECT_EQ(CountHoms(path, Clique(schema, 12)), expected);
}

}  // namespace
}  // namespace bagdet
