// Randomized differential test pinning the optimized variable-elimination
// engine (CountHoms) to the reference semantics: backtracking enumeration
// (CountHomsByEnumeration) and brute-force assignment checking
// (CountHomsNaive) must agree on every generated pair — including
// disconnected sources, isolated elements, empty domains, and nullary
// relations.

#include <gtest/gtest.h>

#include "hom/hom.h"
#include "structs/generator.h"
#include "util/rng.h"
#include "test_matrices.h"

namespace bagdet {
namespace {

void ExpectAllEnginesAgree(const Structure& from, const Structure& to) {
  const BigInt dp = CountHoms(from, to);
  const BigInt enumerated = CountHomsByEnumeration(from, to);
  const BigInt naive = CountHomsNaive(from, to);
  EXPECT_EQ(dp, enumerated) << "from=" << from.ToString()
                            << " to=" << to.ToString();
  EXPECT_EQ(dp, naive) << "from=" << from.ToString()
                       << " to=" << to.ToString();
  EXPECT_EQ(ExistsHom(from, to), !dp.IsZero())
      << "from=" << from.ToString() << " to=" << to.ToString();
}

// Domain-core sweep: the same pair through the ablation corners of the
// engine (domains on/off, exact order search on/off) and through the
// forced parallel split at 1 and 4 lanes, each pinned to the naive count.
void ExpectDomainCoreAgrees(const Structure& from, const Structure& to) {
  const BigInt naive = CountHomsNaive(from, to);
  for (bool domains : {false, true}) {
    DpOptions options;
    options.use_domains = domains;
    options.domain_min_work = 0;  // Engage domains on any instance size.
    options.order_search_max_atoms = domains ? 12 : 0;
    options.num_threads = 1;
    EXPECT_EQ(CountHoms(from, to, options), naive)
        << "domains=" << domains << " from=" << from.ToString()
        << " to=" << to.ToString();
  }
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    DpOptions options;
    options.num_threads = threads;
    options.parallel_split_min_work = 0;  // Split whenever legal.
    options.domain_min_work = 0;
    EXPECT_EQ(CountHoms(from, to, options), naive)
        << "threads=" << threads << " from=" << from.ToString()
        << " to=" << to.ToString();
  }
}

TEST(HomDiffTest, MixedAritySchemaWithNullaryRelations) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("H", 0);  // Nullary: pure presence constraint.
  schema->AddRelation("P", 1);
  schema->AddRelation("E", 2);
  Rng rng(20260729);
  int disconnected_sources = 0;
  for (int iter = 0; iter < 160; ++iter) {
    // Domain sizes 0..4 keep the naive m^n cross-check instant while still
    // hitting empty domains and isolated elements.
    const std::size_t from_size = rng.Below(5);
    const std::size_t to_size = rng.Below(5);
    // Sweep sparse to dense fact densities.
    const std::uint64_t numer = 1 + rng.Below(3);
    Structure from = RandomStructure(schema, from_size, &rng, numer, 4);
    Structure to = RandomStructure(schema, to_size, &rng, numer, 4);
    if (!from.IsConnected()) ++disconnected_sources;
    ExpectAllEnginesAgree(from, to);
  }
  // The sweep must actually exercise the component-decomposition path.
  EXPECT_GT(disconnected_sources, 20);
}

TEST(HomDiffTest, HigherArityRelations) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  schema->AddRelation("T", 3);
  Rng rng(77002);
  for (int iter = 0; iter < 80; ++iter) {
    const std::size_t from_size = rng.Below(4);
    const std::size_t to_size = 1 + rng.Below(3);
    Structure from = RandomStructure(schema, from_size, &rng, 1, 3);
    Structure to = RandomStructure(schema, to_size, &rng, 1, 2);
    ExpectAllEnginesAgree(from, to);
  }
}

TEST(HomDiffTest, ConnectedSourcesIntoLargerTargets) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("P", 1);
  schema->AddRelation("E", 2);
  Rng rng(5150);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t from_size = 1 + rng.Below(3);
    const std::size_t to_size = 1 + rng.Below(6);
    Structure from = RandomConnectedStructure(schema, from_size, &rng, 1, 2);
    Structure to = RandomStructure(schema, to_size, &rng, 1, 2);
    ExpectAllEnginesAgree(from, to);
  }
}

TEST(HomDiffTest, DomainCoreOnDenseNearRegularDigraphs) {
  // Dense digraphs are the regime the domain layer targets: big uniform
  // buckets defeat single-bucket selection, while near-regular degree
  // sequences keep the arc-consistency fixpoint non-trivial.
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  Rng rng(0xdeca1);
  const int iters = 30 * testmat::DiffIterScale();
  for (int iter = 0; iter < iters; ++iter) {
    Structure from =
        RandomConnectedStructure(schema, 2 + rng.Below(3), &rng, 3, 4);
    Structure to = RandomStructure(schema, 2 + rng.Below(4), &rng, 3, 4);
    ExpectDomainCoreAgrees(from, to);
  }
}

TEST(HomDiffTest, DomainCoreOnHighAritySparseSchemas) {
  // High-arity sparse relations stress repeated-variable support and the
  // per-position occupancy seeding (most positions have tiny masks).
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("T", 3);
  schema->AddRelation("Q", 4);
  Rng rng(0x9a7e5);
  const int iters = 25 * testmat::DiffIterScale();
  for (int iter = 0; iter < iters; ++iter) {
    Structure from = RandomStructure(schema, 1 + rng.Below(3), &rng, 1, 6);
    Structure to = RandomStructure(schema, 1 + rng.Below(3), &rng, 1, 3);
    ExpectDomainCoreAgrees(from, to);
  }
}

TEST(HomDiffTest, DomainCoreOnDisconnectedSourcesWithNullaries) {
  // Component decomposition × nullary presence constraints × the split
  // path: the product-of-components fold must stay exact under all knobs.
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("H", 0);
  schema->AddRelation("P", 1);
  schema->AddRelation("E", 2);
  Rng rng(0xd15c0);
  const int iters = 30 * testmat::DiffIterScale();
  int disconnected = 0;
  for (int iter = 0; iter < iters; ++iter) {
    Structure from = RandomStructure(schema, rng.Below(5), &rng, 1, 3);
    Structure to = RandomStructure(schema, rng.Below(4), &rng, 1, 2);
    if (!from.IsConnected()) ++disconnected;
    ExpectDomainCoreAgrees(from, to);
  }
  EXPECT_GT(disconnected, iters / 4);
}

TEST(HomDiffTest, EnumerationVisitCountMatchesCount) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  Rng rng(31337);
  for (int iter = 0; iter < 20; ++iter) {
    Structure from = RandomStructure(schema, 1 + rng.Below(3), &rng, 1, 2);
    Structure to = RandomStructure(schema, 1 + rng.Below(3), &rng, 1, 2);
    std::int64_t visits = 0;
    EnumerateHoms(from, to, [&visits](const std::vector<Element>&) {
      ++visits;
      return true;
    });
    EXPECT_EQ(BigInt(visits), CountHoms(from, to))
        << "from=" << from.ToString() << " to=" << to.ToString();
  }
}

}  // namespace
}  // namespace bagdet
