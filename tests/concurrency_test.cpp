// Stress and differential tests for the concurrent serving core: the
// ThreadPool/ParallelFor primitive, the sharded StructurePool under racing
// interns, the size-bounded HomCache (budgets respected, evicted entries
// recompute identically), and the parallel multi-modular driver (bit-
// identical to the serial path at every thread count). Threads here are
// raw std::threads deliberately oversubscribing the host so the races are
// real even on a single-core runner; the TSan CI job runs this whole file.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "hom/hom.h"
#include "hom/hom_cache.h"
#include "linalg/gauss.h"
#include "linalg/matrix.h"
#include "linalg/modular_solve.h"
#include "structs/pool.h"
#include "structs/structure.h"
#include "test_matrices.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bagdet {
namespace {

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

Structure Cycle(const std::shared_ptr<Schema>& schema, Element n) {
  Structure s(schema);
  for (Element i = 0; i < n; ++i) {
    s.AddFact(0, {i, static_cast<Element>((i + 1) % n)});
  }
  return s;
}

Structure Path(const std::shared_ptr<Schema>& schema, Element n) {
  Structure s(schema, n);
  for (Element i = 0; i + 1 < n; ++i) {
    s.AddFact(0, {i, static_cast<Element>(i + 1)});
  }
  return s;
}

/// A uniformly random relabeling of `s` (isomorphic by construction).
Structure PermutedCopy(const Structure& s, Rng* rng) {
  const std::size_t n = s.DomainSize();
  std::vector<Element> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<Element>(i);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng->Below(i)]);
  }
  return s.MapDomain(perm, n);
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWorksWithZeroWorkersAndEmptyRange) {
  ThreadPool pool(0);
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(0, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 0u);
  pool.ParallelFor(17, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 17u * 16u / 2u);
}

TEST(ThreadPoolTest, ParallelForPropagatesTheFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](std::size_t i) {
                         if (i % 7 == 3) {
                           throw std::runtime_error("injected failure");
                         }
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.ParallelFor(8, [&](std::size_t) {
    // Inner loop issued from inside a pool lane: the caller self-drains,
    // so this completes even with every worker busy in the outer loop.
    pool.ParallelFor(8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPoolTest, MaxParallelismOneIsServedByTheCallingThread) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(
      32, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      /*max_parallelism=*/1);
}

// --- Sharded StructurePool --------------------------------------------------

TEST(ConcurrentPoolTest, RacedInternsOfIsomorphicCopiesYieldOneRef) {
  auto schema = GraphSchema();
  // 12 distinct isomorphism classes: cycles and paths of several sizes.
  std::vector<Structure> classes;
  for (Element n = 3; n < 9; ++n) {
    classes.push_back(Cycle(schema, n));
    classes.push_back(Path(schema, n));
  }

  StructurePool pool;
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 40;
  std::vector<std::vector<StructureRef>> seen(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      seen[t].assign(classes.size(), kInvalidStructureRef);
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t c = 0; c < classes.size(); ++c) {
          // Fresh permuted copies so every thread canonicalizes its own
          // object and the only shared state is the pool itself.
          StructureRef ref = pool.Intern(PermutedCopy(classes[c], &rng));
          if (seen[t][c] == kInvalidStructureRef) {
            seen[t][c] = ref;
          } else {
            ASSERT_EQ(seen[t][c], ref);
          }
          // Lock-free read path, concurrent with other threads' interns.
          ASSERT_EQ(pool.At(ref).NumFacts(), classes[c].NumFacts());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(pool.size(), classes.size());
  // Every thread resolved every class to the same ref.
  for (std::size_t c = 0; c < classes.size(); ++c) {
    for (std::size_t t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][c], seen[0][c]);
    }
    EXPECT_TRUE(IsIsomorphic(pool.At(seen[0][c]), classes[c]));
    EXPECT_EQ(pool.FindKey(pool.KeyOf(seen[0][c])), seen[0][c]);
  }
}

TEST(ConcurrentPoolTest, AtThrowsOnUnknownRef) {
  StructurePool pool;
  EXPECT_THROW(pool.At(0), std::out_of_range);
  StructureRef ref = pool.Intern(Cycle(GraphSchema(), 3));
  EXPECT_NO_THROW(pool.At(ref));
  EXPECT_THROW(pool.At(ref + 1), std::out_of_range);
  EXPECT_THROW(pool.KeyOf(kInvalidStructureRef - StructurePool::kNumShards),
               std::out_of_range);
}

// --- Bounded HomCache -------------------------------------------------------

TEST(BoundedHomCacheTest, EntryBudgetIsRespectedAndEvictedPairsRecompute) {
  auto schema = GraphSchema();
  HomCache cache;
  cache.set_max_entries(16);  // 2 per shard.

  std::vector<std::pair<StructureRef, StructureRef>> pairs;
  std::vector<BigInt> expected;
  for (Element from_n = 2; from_n <= 5; ++from_n) {
    for (Element to_n = 2; to_n <= 9; ++to_n) {
      StructureRef from = cache.Intern(Path(schema, from_n));
      StructureRef to = cache.Intern(Cycle(schema, to_n));
      pairs.emplace_back(from, to);
      expected.push_back(
          CountHoms(cache.pool().At(from), cache.pool().At(to)));
    }
  }
  // First pass fills far past the budget; entries must stay bounded.
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(cache.Count(pairs[i].first, pairs[i].second), expected[i]);
  }
  HomCache::Stats after_fill = cache.stats();
  EXPECT_LE(after_fill.entries, 16u);
  EXPECT_GT(after_fill.evictions, 0u);
  EXPECT_EQ(after_fill.misses, pairs.size());

  // Second pass: evicted pairs re-miss but recompute identical counts.
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(cache.Count(pairs[i].first, pairs[i].second), expected[i]);
  }
  HomCache::Stats after_requery = cache.stats();
  EXPECT_GT(after_requery.misses, after_fill.misses);  // Some were evicted...
  EXPECT_GT(after_requery.hits, after_fill.hits);      // ...some survived.
  EXPECT_LE(cache.stats().entries, 16u);

  cache.ResetStats();
  HomCache::Stats reset = cache.stats();
  EXPECT_EQ(reset.hits, 0u);
  EXPECT_EQ(reset.misses, 0u);
  EXPECT_EQ(reset.evictions, 0u);
  EXPECT_EQ(reset.entries, after_requery.entries);  // Footprint unaffected.
}

TEST(BoundedHomCacheTest, ByteBudgetEvictsAndFootprintIsTracked) {
  auto schema = GraphSchema();
  HomCache cache;
  HomCache::Stats empty = cache.stats();
  EXPECT_EQ(empty.entries, 0u);
  EXPECT_EQ(empty.bytes, 0u);

  cache.set_max_bytes(8 * 300);  // ~2 smallish entries per shard.
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Structure from = Path(schema, static_cast<Element>(2 + rng.Below(4)));
    Structure to = Cycle(schema, static_cast<Element>(2 + rng.Below(10)));
    cache.Count(cache.Intern(from), cache.Intern(to));
  }
  HomCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, 8u * 300u);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(BoundedHomCacheTest, ConcurrentBatchesAgreeWithUncachedCounts) {
  auto schema = GraphSchema();
  HomCache cache;
  cache.set_max_entries(64);  // Force eviction churn during the race.

  Rng seed_rng(99);
  std::vector<std::pair<StructureRef, StructureRef>> pairs;
  for (Element from_n = 2; from_n <= 4; ++from_n) {
    for (Element to_n = 2; to_n <= 8; ++to_n) {
      pairs.emplace_back(cache.Intern(Path(schema, from_n)),
                         cache.Intern(Cycle(schema, to_n)));
    }
  }
  std::vector<BigInt> expected;
  for (const auto& [from, to] : pairs) {
    expected.push_back(CountHoms(cache.pool().At(from), cache.pool().At(to)));
  }

  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        std::vector<BigInt> batch = cache.BatchCountHoms(pairs);
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          if (batch[i] != expected[i]) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const HomCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            kThreads * 20u * static_cast<std::uint64_t>(pairs.size()));
}

// --- Parallel multi-modular driver ------------------------------------------

Mat RandomHugeMatrix(Rng* rng) {
  // Up to 11x11 so a good share of draws also clears the driver's
  // auto-mode size gate; the explicit num_threads below forces the
  // parallel stages regardless. 128-bit entries via the shared generator
  // (tests/test_matrices.h).
  const std::size_t rows = 4 + rng->Below(8);
  const std::size_t cols = 4 + rng->Below(8);
  return testmat::RandomBigMatrix(rng, rows, cols, 4);
}

TEST(ParallelModularTest, ParallelRrefIsBitIdenticalToSerial) {
  Rng rng(20260730);
  int compared = 0;
  for (int i = 0; i < 40; ++i) {
    Mat m = RandomHugeMatrix(&rng);
    ModularOptions serial;
    serial.num_threads = 1;
    ModularOptions parallel;
    parallel.num_threads = 8;  // Oversubscribes a small host on purpose.
    std::optional<Rref> s = TryModularRref(m, serial);
    std::optional<Rref> p = TryModularRref(m, parallel);
    ASSERT_EQ(s.has_value(), p.has_value()) << "case " << i;
    if (!s.has_value()) continue;
    ++compared;
    EXPECT_EQ(s->rank, p->rank);
    EXPECT_EQ(s->pivots, p->pivots);
    EXPECT_EQ(s->matrix, p->matrix);
    // Both must also equal the exact reference, not just each other.
    Rref exact = ReduceToRrefExact(m);
    EXPECT_EQ(p->matrix, exact.matrix);
  }
  EXPECT_GT(compared, 0);
}

TEST(ParallelModularTest, ParallelDriverHonorsInjectedPrimeLists) {
  // A short injected list whose head primes get skipped/rejected exercises
  // the batched fold's exhaustion and closing-attempt paths.
  Rng rng(5);
  Mat m = RandomHugeMatrix(&rng);
  const std::vector<std::uint64_t>& good = ModularPrimes(24);
  ModularOptions serial;
  serial.num_threads = 1;
  serial.primes = &good;
  ModularOptions parallel = serial;
  parallel.num_threads = 4;
  std::optional<Rref> s = TryModularRref(m, serial);
  std::optional<Rref> p = TryModularRref(m, parallel);
  ASSERT_EQ(s.has_value(), p.has_value());
  if (s.has_value()) {
    EXPECT_EQ(s->matrix, p->matrix);
    EXPECT_EQ(s->pivots, p->pivots);
  }
}

TEST(ParallelModularTest, ConcurrentDriversShareThePrimeTableSafely) {
  // Many simultaneous TryModularRref calls extend and read the shared
  // prime table; each must still match the exact reference.
  Rng seed_rng(11);
  std::vector<Mat> mats;
  std::vector<Rref> exact;
  for (int i = 0; i < 8; ++i) {
    mats.push_back(RandomHugeMatrix(&seed_rng));
    exact.push_back(ReduceToRrefExact(mats.back()));
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      ModularOptions options;
      options.num_threads = 1 + static_cast<std::size_t>(t % 3);
      std::optional<Rref> got = TryModularRref(mats[t], options);
      if (!got.has_value() || got->matrix != exact[t].matrix) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace bagdet
