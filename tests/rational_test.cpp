#include "util/rational.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bagdet {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.IsZero());
  EXPECT_TRUE(r.IsInteger());
  EXPECT_EQ(r.ToString(), "0");
}

TEST(RationalTest, NormalizationLowestTerms) {
  Rational r(BigInt(6), BigInt(8));
  EXPECT_EQ(r.numerator(), BigInt(3));
  EXPECT_EQ(r.denominator(), BigInt(4));
}

TEST(RationalTest, NormalizationSignInDenominator) {
  Rational r(BigInt(3), BigInt(-6));
  EXPECT_EQ(r.numerator(), BigInt(-1));
  EXPECT_EQ(r.denominator(), BigInt(2));
  EXPECT_TRUE(r.IsNegative());
}

TEST(RationalTest, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(BigInt(1), BigInt(0)), std::domain_error);
}

TEST(RationalTest, ZeroHasCanonicalForm) {
  Rational r(BigInt(0), BigInt(-17));
  EXPECT_TRUE(r.IsZero());
  EXPECT_EQ(r.denominator(), BigInt(1));
  EXPECT_FALSE(r.IsNegative());
}

TEST(RationalTest, FromStringForms) {
  EXPECT_EQ(Rational::FromString("5"), Rational(5));
  EXPECT_EQ(Rational::FromString("-5"), Rational(-5));
  EXPECT_EQ(Rational::FromString("10/4"), Rational(BigInt(5), BigInt(2)));
  EXPECT_EQ(Rational::FromString("-3/9"), Rational(BigInt(-1), BigInt(3)));
}

TEST(RationalTest, ArithmeticBasics) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ(half + third, Rational(BigInt(5), BigInt(6)));
  EXPECT_EQ(half - third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half * third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half / third, Rational(BigInt(3), BigInt(2)));
}

TEST(RationalTest, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
  EXPECT_THROW(Rational(0).Inverse(), std::domain_error);
}

TEST(RationalTest, InverseFlips) {
  Rational r(BigInt(-3), BigInt(7));
  EXPECT_EQ(r.Inverse(), Rational(BigInt(-7), BigInt(3)));
  EXPECT_EQ(r * r.Inverse(), Rational(1));
}

TEST(RationalTest, PowIncludingNegativeExponents) {
  Rational half(BigInt(1), BigInt(2));
  EXPECT_EQ(Rational::Pow(half, 3), Rational(BigInt(1), BigInt(8)));
  EXPECT_EQ(Rational::Pow(half, -3), Rational(8));
  EXPECT_EQ(Rational::Pow(half, 0), Rational(1));
  EXPECT_EQ(Rational::Pow(Rational(0), 0), Rational(1));  // 0^0 = 1.
  EXPECT_THROW(Rational::Pow(Rational(0), -1), std::domain_error);
  EXPECT_EQ(Rational::Pow(Rational(-2), 3), Rational(-8));
}

TEST(RationalTest, Ordering) {
  Rational a(BigInt(1), BigInt(3));
  Rational b(BigInt(1), BigInt(2));
  Rational c(BigInt(-1), BigInt(2));
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);
  EXPECT_LE(a, a);
  EXPECT_GT(b, c);
}

TEST(RationalTest, ToStringIntegerVsFraction) {
  EXPECT_EQ(Rational(BigInt(4), BigInt(2)).ToString(), "2");
  EXPECT_EQ(Rational(BigInt(1), BigInt(2)).ToString(), "1/2");
  EXPECT_EQ(Rational(BigInt(-1), BigInt(2)).ToString(), "-1/2");
}

class RationalFieldAxiomsTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rational RandomRational(Rng* rng) {
    std::int64_t num = rng->Range(-50, 50);
    std::int64_t den = rng->Range(1, 20);
    return Rational(BigInt(num), BigInt(den));
  }
};

TEST_P(RationalFieldAxiomsTest, FieldAxiomsHold) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    Rational a = RandomRational(&rng);
    Rational b = RandomRational(&rng);
    Rational c = RandomRational(&rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + (-a), Rational(0));
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), Rational(1));
    }
    EXPECT_EQ(a - b, a + (-b));
    if (!b.IsZero()) {
      EXPECT_EQ((a / b) * b, a);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalFieldAxiomsTest,
                         ::testing::Values(11, 12, 13));

// ---------------------------------------------------------------------------
// Self-aliasing: `r op= r` must match `r op= copy`. operator/= used to read
// the numerator after overwriting it, turning `r /= r` into 1/d instead of
// 1 — this suite pins every compound operator against that bug class, on
// small values, negatives, and spilled (>= 2^64) components.
// ---------------------------------------------------------------------------

std::vector<Rational> AliasingProbeRationals() {
  const BigInt huge = BigInt::Pow(BigInt(2), 80) + BigInt(1);
  return {
      Rational(0),
      Rational(7),
      Rational(BigInt(-3), BigInt(4)),
      Rational(BigInt(22), BigInt(7)),
      Rational(huge, BigInt(3)),
      Rational(BigInt(-5), huge),
      Rational(-huge, huge + BigInt(2)),
  };
}

TEST(RationalAliasingTest, SelfDivisionYieldsOne) {
  for (const Rational& v : AliasingProbeRationals()) {
    if (v.IsZero()) continue;
    Rational r = v;
    r /= r;
    EXPECT_EQ(r, Rational(1)) << "r /= r with r = " << v;
  }
}

TEST(RationalAliasingTest, SelfCompoundMatchesCopySemantics) {
  for (const Rational& v : AliasingProbeRationals()) {
    const Rational copy = v;
    {
      Rational r = v;
      r += r;
      EXPECT_EQ(r, copy + copy) << "r += r with r = " << copy;
    }
    {
      Rational r = v;
      r -= r;
      EXPECT_EQ(r, Rational(0)) << "r -= r with r = " << copy;
    }
    {
      Rational r = v;
      r *= r;
      EXPECT_EQ(r, copy * copy) << "r *= r with r = " << copy;
    }
  }
}

TEST(RationalAliasingTest, SelfDivisionOfZeroThrows) {
  Rational zero;
  EXPECT_THROW(zero /= zero, std::domain_error);
}

class RationalAliasingRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RationalAliasingRandomTest, RandomSelfOpsMatchCopySemantics) {
  Rng rng(GetParam());
  auto random_rational = [&rng]() {
    std::int64_t num = rng.Range(-1000000, 1000000);
    std::int64_t den = rng.Range(1, 1000000);
    return Rational(BigInt(num), BigInt(den));
  };
  for (int iter = 0; iter < 200; ++iter) {
    Rational r = random_rational();
    const Rational copy = r;
    switch (rng.Below(4)) {
      case 0:
        r += r;
        EXPECT_EQ(r, copy + copy);
        break;
      case 1:
        r -= r;
        EXPECT_EQ(r, Rational(0));
        break;
      case 2:
        r *= r;
        EXPECT_EQ(r, copy * copy);
        break;
      default:
        if (r.IsZero()) break;
        r /= r;
        EXPECT_EQ(r, Rational(1));
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalAliasingRandomTest,
                         ::testing::Values(31, 32, 33));

}  // namespace
}  // namespace bagdet
