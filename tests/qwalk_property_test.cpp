// Property tests for q-walks (Definitions 12–14) and Lemma 15: every walk
// induced by a determined random instance is a valid q-walk and reduces to
// q under both disciplines; synthetic random height-walks do too.

#include <gtest/gtest.h>

#include "path/path_query.h"
#include "path/qwalk.h"
#include "util/rng.h"

namespace bagdet {
namespace {

class QWalkPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QWalkPropertyTest, InducedWalksAlwaysReduce) {
  Rng rng(GetParam());
  auto schema = std::make_shared<Schema>();
  auto random_word = [&](std::size_t min_len, std::size_t max_len) {
    std::string w;
    std::size_t len = min_len + rng.Below(max_len - min_len + 1);
    for (std::size_t i = 0; i < len; ++i) {
      w.push_back(rng.Chance(1, 2) ? 'A' : 'B');
    }
    return PathQuery::FromWord(w, schema);
  };
  int determined_seen = 0;
  for (int iter = 0; iter < 60; ++iter) {
    PathQuery q = random_word(1, 8);
    std::vector<PathQuery> views;
    std::size_t num_views = 1 + rng.Below(4);
    for (std::size_t i = 0; i < num_views; ++i) {
      views.push_back(random_word(1, 4));
    }
    PathDeterminacyResult result =
        DecidePathDeterminacy(q, views, /*want_counterexample=*/false);
    if (!result.determined) continue;
    ++determined_seen;
    SignedWord walk = BuildQWalk(q, views, result.path);
    ASSERT_TRUE(IsQWalk(walk, q))
        << "invalid walk for q=" << q.ToString();
    EXPECT_EQ(ReduceToFixpointPlusMinus(walk).back(), ToSignedWord(q));
    EXPECT_EQ(ReduceToFixpointMinusPlus(walk).back(), ToSignedWord(q));
    // The reduction trace shrinks by exactly 2 letters per step.
    std::vector<SignedWord> trace = ReduceToFixpointPlusMinus(walk);
    for (std::size_t i = 1; i < trace.size(); ++i) {
      EXPECT_EQ(trace[i].size() + 2, trace[i - 1].size());
    }
  }
  EXPECT_GT(determined_seen, 5) << "sweep produced too few positives";
}

TEST_P(QWalkPropertyTest, SyntheticHeightWalksReduce) {
  // Build a random valid q-walk directly: a lattice walk from 0 to |q|
  // staying within [0, |q|], each step labeled by the letter of q at the
  // height it crosses (Definition 12(3)).
  Rng rng(GetParam() * 97 + 13);
  auto schema = std::make_shared<Schema>();
  for (int iter = 0; iter < 40; ++iter) {
    std::string word;
    std::size_t len = 1 + rng.Below(6);
    for (std::size_t i = 0; i < len; ++i) {
      word.push_back(rng.Chance(1, 2) ? 'A' : 'B');
    }
    PathQuery q = PathQuery::FromWord(word, schema);
    SignedWord walk;
    std::int64_t height = 0;
    const std::int64_t target = static_cast<std::int64_t>(q.Length());
    std::size_t budget = 40;
    while (height < target || walk.size() < 1) {
      bool go_up = height == 0 ||
                   (static_cast<std::int64_t>(budget) <= target - height) ||
                   rng.Chance(2, 3);
      if (budget > 0) --budget;
      if (go_up && height < target) {
        walk.push_back({q.word()[static_cast<std::size_t>(height)], +1});
        ++height;
      } else if (height > 0 && height < target) {
        walk.push_back({q.word()[static_cast<std::size_t>(height - 1)], -1});
        --height;
      }
      if (height == target) break;
    }
    ASSERT_TRUE(IsQWalk(walk, q)) << SignedWordToString(walk, *schema)
                                  << " for q=" << q.ToString();
    EXPECT_EQ(ReduceToFixpointPlusMinus(walk).back(), ToSignedWord(q));
    EXPECT_EQ(ReduceToFixpointMinusPlus(walk).back(), ToSignedWord(q));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QWalkPropertyTest,
                         ::testing::Values(201, 202, 203, 204));

}  // namespace
}  // namespace bagdet
