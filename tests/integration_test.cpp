// End-to-end integration tests across module boundaries: text in → decide
// → certificate → exact verification → (when feasible) full
// materialization and brute recount. These mimic what the CLI does.

#include <gtest/gtest.h>

#include "core/determinacy.h"
#include "hilbert/search.h"
#include "hom/hom.h"
#include "hom/symbolic.h"
#include "query/parser.h"
#include "structs/text.h"

namespace bagdet {
namespace {

TEST(IntegrationTest, TextualInstanceToVerifiedCounterexample) {
  QueryParser parser;
  std::vector<ConjunctiveQuery> rules = parser.ParseProgram(
      "# warehouse views\n"
      "v()  :- E(x,x), E(y,y), E(a,b)\n"
      "q()  :- E(x,x), E(a,b)\n");
  ASSERT_EQ(rules.size(), 2u);
  ConjunctiveQuery q = rules.back();
  rules.pop_back();
  DeterminacyResult result = DecideBagDeterminacy(rules, q);
  ASSERT_FALSE(result.determined);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_EQ(VerifyCounterexample(result.analysis, *result.counterexample),
            std::nullopt);
}

TEST(IntegrationTest, MaterializedCounterexampleRecountsExactly) {
  // The strongest possible check: materialize D and D' into concrete
  // structures and recount every query with the generic hom engine; the
  // counts must equal the symbolic (Lemma 4) evaluations used by the
  // verifier, views must agree, and q must differ.
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- E(x,x), E(a,b)");
  std::vector<ConjunctiveQuery> views = {
      parser.ParseRule("v() :- E(x,x), E(y,y), E(a,b)"),
  };
  DeterminacyResult result = DecideBagDeterminacy(views, q);
  ASSERT_FALSE(result.determined);
  const BagCounterexample& ce = *result.counterexample;
  std::optional<Structure> d = ce.d.Materialize(20000);
  std::optional<Structure> d_prime = ce.d_prime.Materialize(20000);
  ASSERT_TRUE(d.has_value());
  ASSERT_TRUE(d_prime.has_value());
  ASSERT_EQ(BigInt(static_cast<std::int64_t>(d->DomainSize())),
            ce.d.DomainSize());
  // Direct recounting agrees with the symbolic path.
  for (const ConjunctiveQuery& view : result.analysis.views) {
    BigInt direct_d = view.CountHomomorphisms(*d);
    BigInt direct_d_prime = view.CountHomomorphisms(*d_prime);
    EXPECT_EQ(direct_d, CountHomsSymbolicAny(view.FrozenBody(), ce.d));
    EXPECT_EQ(direct_d, direct_d_prime);
  }
  BigInt q_d = q.CountHomomorphisms(*d);
  BigInt q_d_prime = q.CountHomomorphisms(*d_prime);
  EXPECT_EQ(q_d, CountHomsSymbolicAny(q.FrozenBody(), ce.d));
  EXPECT_EQ(q_d_prime, CountHomsSymbolicAny(q.FrozenBody(), ce.d_prime));
  EXPECT_NE(q_d, q_d_prime);
}

TEST(IntegrationTest, DataFileEvaluationMatchesWitnessPrediction) {
  // Determined instance + database from text: the witness-based
  // count-only answer equals direct evaluation.
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q()  :- E(x,x), E(a,b)");
  std::vector<ConjunctiveQuery> views = {
      parser.ParseRule("v1() :- E(x,x), E(y,y), E(a,b)"),
      parser.ParseRule("v2() :- E(x,x), E(a,b), E(c,d)"),
  };
  DeterminacyResult result = DecideBagDeterminacy(views, q);
  ASSERT_TRUE(result.determined);
  Structure data = ParseStructure(
      "E(0,0), E(0,1), E(1,2), E(2,2), E(3,3), domain 5",
      parser.schema());
  std::vector<BigInt> counts;
  for (std::size_t index : result.witness->view_indices) {
    counts.push_back(views[index].CountHomomorphisms(data));
  }
  EXPECT_EQ(AnswerFromViewCounts(*result.witness, counts),
            q.CountHomomorphisms(data));
}

TEST(IntegrationTest, HilbertSearchFindsLemma63Witness) {
  DiophantineInstance inst = DiophantineInstance::Parse("x0^2 - 4");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  std::optional<NonDeterminacyWitness> witness =
      SearchNonDeterminacy(red, 4);
  ASSERT_TRUE(witness.has_value());
  // The witness re-verifies from scratch.
  EXPECT_EQ(red.EvaluateViews(witness->d), red.EvaluateViews(witness->d_prime));
  EXPECT_EQ(red.EvaluateViews(witness->d), witness->view_counts);
  EXPECT_NE(red.query.Count(witness->d), red.query.Count(witness->d_prime));
  EXPECT_EQ(red.query.Count(witness->d), witness->query_count_d);
}

TEST(IntegrationTest, HilbertSearchSilentOnUnsolvable) {
  DiophantineInstance inst = DiophantineInstance::Parse("x0 + 1");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  EXPECT_FALSE(SearchNonDeterminacy(red, 4).has_value());
}

TEST(IntegrationTest, HilbertSearchTwoUnknowns) {
  DiophantineInstance inst = DiophantineInstance::Parse("x0*x1 - 2");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  std::optional<NonDeterminacyWitness> witness =
      SearchNonDeterminacy(red, 3);
  ASSERT_TRUE(witness.has_value());
}

TEST(IntegrationTest, RoundTripStructureThroughTextAndQueries) {
  // Structure → text → structure → query evaluation stability.
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- E(x,y), E(y,z)");
  Structure data = ParseStructure("E(0,1), E(1,2), E(2,0)", parser.schema());
  BigInt direct = q.CountHomomorphisms(data);
  Structure reparsed = ParseStructure(FormatStructure(data), parser.schema());
  EXPECT_EQ(q.CountHomomorphisms(reparsed), direct);
  EXPECT_EQ(direct, BigInt(3));  // Walks of length 2 in a directed triangle.
}

}  // namespace
}  // namespace bagdet
