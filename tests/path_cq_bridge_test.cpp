// Cross-validation between the two path-query semantics the library
// offers: the incidence-matrix evaluation (Definitions 16–17, Fact 18) and
// the generic CQ evaluation of the word's conjunctive-query form. The two
// take completely different code paths (BigInt matrix products vs.
// backtracking enumeration), so their agreement on random inputs is a
// strong correctness check for both.

#include <gtest/gtest.h>

#include "hom/hom.h"
#include "path/matrix_semantics.h"
#include "path/path_query.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

TEST(PathCqBridgeTest, ToConjunctiveQueryShape) {
  auto schema = std::make_shared<Schema>();
  PathQuery q = PathQuery::FromWord("ABA", schema);
  ConjunctiveQuery cq = q.ToConjunctiveQuery("route");
  EXPECT_EQ(cq.NumFreeVars(), 2u);
  EXPECT_EQ(cq.NumVars(), 4u);  // x, y and two internal positions.
  EXPECT_EQ(cq.atoms().size(), 3u);
  EXPECT_EQ(cq.name(), "route");
}

TEST(PathCqBridgeTest, EmptyWordIsNotACq) {
  auto schema = std::make_shared<Schema>();
  PathQuery eps = PathQuery::FromWord("", schema);
  EXPECT_THROW(eps.ToConjunctiveQuery("eps"), std::invalid_argument);
}

TEST(PathCqBridgeTest, SingleLetterBridge) {
  auto schema = std::make_shared<Schema>();
  PathQuery q = PathQuery::FromWord("A", schema);
  ConjunctiveQuery cq = q.ToConjunctiveQuery("a");
  Structure d(schema);
  d.AddFact(*schema->Find("A"), {0, 1});
  d.AddFact(*schema->Find("A"), {0, 0});
  EXPECT_TRUE(AnswerBagsEqual(cq.Evaluate(d), EvaluatePathQuery(d, q)));
}

struct BridgeCase {
  std::uint64_t seed;
  std::string word;
  std::size_t domain;
};

class PathCqBridgeRandomTest : public ::testing::TestWithParam<BridgeCase> {};

TEST_P(PathCqBridgeRandomTest, MatrixAndCqAnswersAgree) {
  auto schema = std::make_shared<Schema>();
  PathQuery q = PathQuery::FromWord(GetParam().word, schema);
  ConjunctiveQuery cq = q.ToConjunctiveQuery("bridge");
  Rng rng(GetParam().seed);
  for (int iter = 0; iter < 10; ++iter) {
    Structure d = RandomStructure(schema, GetParam().domain, &rng, 1, 3);
    AnswerBag via_matrix = EvaluatePathQuery(d, q);
    AnswerBag via_cq = cq.Evaluate(d);
    EXPECT_TRUE(AnswerBagsEqual(via_matrix, via_cq))
        << "word=" << GetParam().word << " data=" << d.ToString();
    // The boolean reading also agrees with generic hom counting of the
    // frozen path body.
    EXPECT_EQ(CountPathHoms(d, q), CountHoms(q.FrozenBody(), d));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PathCqBridgeRandomTest,
    ::testing::Values(BridgeCase{1, "A", 3}, BridgeCase{2, "AB", 3},
                      BridgeCase{3, "AA", 4}, BridgeCase{4, "ABA", 3},
                      BridgeCase{5, "ABBA", 3}, BridgeCase{6, "AABB", 4},
                      BridgeCase{7, "ABABA", 3}));

TEST(PathCqBridgeTest, RepeatedLettersShareRelation) {
  auto schema = std::make_shared<Schema>();
  PathQuery q = PathQuery::FromWord("AAA", schema);
  EXPECT_EQ(schema->NumRelations(), 1u);
  ConjunctiveQuery cq = q.ToConjunctiveQuery("aaa");
  // On a directed triangle the 3-step walks (i -> i+3 = i) land back home.
  Structure triangle(schema);
  for (Element i = 0; i < 3; ++i) {
    triangle.AddFact(0, {i, static_cast<Element>((i + 1) % 3)});
  }
  AnswerBag bag = cq.Evaluate(triangle);
  ASSERT_EQ(bag.size(), 3u);
  for (Element i = 0; i < 3; ++i) {
    EXPECT_EQ(bag.at({i, i}), BigInt(1));
  }
  EXPECT_TRUE(AnswerBagsEqual(bag, EvaluatePathQuery(triangle, q)));
}

}  // namespace
}  // namespace bagdet
