// Tests for the Theorem-2 reduction (Appendix A): polynomials, the emitted
// schema/queries, and Lemmas 59–63 on concrete instances.

#include "hilbert/reduction.h"

#include <gtest/gtest.h>

#include "hilbert/polynomial.h"

namespace bagdet {
namespace {

TEST(PolynomialTest, ParseSimple) {
  DiophantineInstance inst = DiophantineInstance::Parse("x0^2*x1 - 2*x1 + 7");
  ASSERT_EQ(inst.monomials().size(), 3u);
  EXPECT_EQ(inst.NumUnknowns(), 2u);
  EXPECT_EQ(inst.monomials()[0].coefficient, 1);
  EXPECT_EQ(inst.monomials()[0].Degree(0), 2u);
  EXPECT_EQ(inst.monomials()[0].Degree(1), 1u);
  EXPECT_EQ(inst.monomials()[1].coefficient, -2);
  EXPECT_EQ(inst.monomials()[2].coefficient, 7);
  EXPECT_EQ(inst.monomials()[2].Degree(0), 0u);
}

TEST(PolynomialTest, ParseImplicitMultiplyAndLeadingSign) {
  DiophantineInstance inst = DiophantineInstance::Parse("-3x0x1 + x0^2");
  ASSERT_EQ(inst.monomials().size(), 2u);
  EXPECT_EQ(inst.monomials()[0].coefficient, -3);
  EXPECT_EQ(inst.monomials()[0].Degree(0), 1u);
  EXPECT_EQ(inst.monomials()[0].Degree(1), 1u);
}

TEST(PolynomialTest, ParseRejectsGarbage) {
  EXPECT_THROW(DiophantineInstance::Parse("x0 + + x1"), std::invalid_argument);
  EXPECT_THROW(DiophantineInstance::Parse("y0"), std::invalid_argument);
  EXPECT_THROW(DiophantineInstance::Parse("x"), std::invalid_argument);
  EXPECT_THROW(DiophantineInstance::Parse("x0^"), std::invalid_argument);
}

TEST(PolynomialTest, WhitespaceIsImplicitMultiplication) {
  // "x0 x1" reads as x0*x1 (like juxtaposition in written algebra).
  DiophantineInstance inst = DiophantineInstance::Parse("x0 x1 - 2");
  EXPECT_EQ(inst.Evaluate({1, 2}), BigInt(0));
}

TEST(PolynomialTest, EvaluateAndToString) {
  DiophantineInstance inst = DiophantineInstance::Parse("x0^2 - 4");
  EXPECT_EQ(inst.Evaluate({2}), BigInt(0));
  EXPECT_EQ(inst.Evaluate({3}), BigInt(5));
  EXPECT_EQ(inst.ToString(), "x0^2 - 4");
}

TEST(PolynomialTest, FindSolutionBounded) {
  DiophantineInstance square = DiophantineInstance::Parse("x0^2 - 4");
  auto solution = square.FindSolution(5);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ((*solution)[0], 2u);

  DiophantineInstance none = DiophantineInstance::Parse("x0 + 1");
  EXPECT_FALSE(none.FindSolution(10).has_value());

  DiophantineInstance pythagoras =
      DiophantineInstance::Parse("x0^2 + x1^2 - x2^2 - 25");
  auto p = pythagoras.FindSolution(6);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(pythagoras.Evaluate(*p).IsZero());
}

TEST(ReductionTest, SchemaShape) {
  DiophantineInstance inst = DiophantineInstance::Parse("x0*x1 - 2");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  EXPECT_EQ(red.schema->Arity(red.h_relation), 0u);
  EXPECT_EQ(red.schema->Arity(red.c_relation), 0u);
  ASSERT_EQ(red.x_relations.size(), 2u);
  EXPECT_EQ(red.schema->Arity(red.x_relations[0]), 1u);
  // Views: V1, Vx0, Vx1, VI.
  EXPECT_EQ(red.views.size(), 4u);
  // V_I has |c(m)| copies per monomial: 1 + 2 = 3 disjuncts.
  EXPECT_EQ(red.views.back().disjuncts().size(), 3u);
}

TEST(ReductionTest, Lemma59MonomialValue) {
  // m_D = c(m) · Φ_m(D).
  DiophantineInstance inst = DiophantineInstance::Parse("3*x0^2*x1 - 5*x1");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  for (std::uint64_t a : {0, 1, 2, 3}) {
    for (std::uint64_t b : {0, 1, 2}) {
      Structure d = red.MakeStructure(true, false, {a, b});
      for (std::size_t mi = 0; mi < inst.monomials().size(); ++mi) {
        const Monomial& m = inst.monomials()[mi];
        BigInt phi = red.phi[mi].CountHomomorphisms(d);
        EXPECT_EQ(m.Evaluate({a, b}), BigInt(m.coefficient) * phi);
      }
    }
  }
}

TEST(ReductionTest, Lemmas60And61PsiValues) {
  DiophantineInstance inst = DiophantineInstance::Parse("2*x0 - x0^2");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  for (int h = 0; h <= 1; ++h) {
    for (int c = 0; c <= 1; ++c) {
      for (std::uint64_t a : {0, 1, 2, 3}) {
        Structure d = red.MakeStructure(h == 1, c == 1, {a});
        // Lemma 60: D_H · Σ_{m ∈ P} m_D = Ψ_P(D).
        BigInt positive_sum(0);
        BigInt negative_sum(0);
        for (const Monomial& m : inst.monomials()) {
          if (m.coefficient > 0) positive_sum += m.Evaluate({a});
          if (m.coefficient < 0) negative_sum += m.Evaluate({a});
        }
        EXPECT_EQ(BigInt(h) * positive_sum, red.psi_positive.Count(d));
        // Lemma 61: D_C · Σ_{m ∈ N} m_D = −Ψ_N(D).
        EXPECT_EQ(BigInt(c) * negative_sum, -red.psi_negative.Count(d));
      }
    }
  }
}

TEST(ReductionTest, Lemma63SolutionGivesWitnessPair) {
  // x0^2 - 4 has the solution x0 = 2: the witness pair agrees on all views
  // and disagrees on q.
  DiophantineInstance inst = DiophantineInstance::Parse("x0^2 - 4");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  auto solution = inst.FindSolution(5);
  ASSERT_TRUE(solution.has_value());
  auto [d, d_prime] = red.WitnessPair(*solution);
  EXPECT_EQ(red.EvaluateViews(d), red.EvaluateViews(d_prime));
  EXPECT_NE(red.query.Count(d), red.query.Count(d_prime));
}

TEST(ReductionTest, Lemma63NonSolutionsGiveNoWitness) {
  // For x0 = 3 (not a solution), V_I must disagree between D and D'.
  DiophantineInstance inst = DiophantineInstance::Parse("x0^2 - 4");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  auto [d, d_prime] = red.WitnessPair({3});
  EXPECT_NE(red.EvaluateViews(d), red.EvaluateViews(d_prime));
}

TEST(ReductionTest, Lemma62StructurePairsCollapseToSolutions) {
  // Unsolvable instance x0 + 1: NO pair of distinct structures over the
  // schema (bounded sweep) agrees on all views — i.e. V bag-determines q,
  // matching "no solution ⇒ determined".
  DiophantineInstance inst = DiophantineInstance::Parse("x0 + 1");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  std::vector<Structure> all;
  std::vector<std::vector<BigInt>> view_values;
  std::vector<BigInt> q_values;
  for (int h = 0; h <= 1; ++h) {
    for (int c = 0; c <= 1; ++c) {
      for (std::uint64_t a = 0; a <= 3; ++a) {
        Structure d = red.MakeStructure(h == 1, c == 1, {a});
        view_values.push_back(red.EvaluateViews(d));
        q_values.push_back(red.query.Count(d));
        all.push_back(std::move(d));
      }
    }
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = 0; j < all.size(); ++j) {
      if (i == j) continue;
      if (view_values[i] == view_values[j]) {
        EXPECT_EQ(q_values[i], q_values[j])
            << "determinacy refuted for unsolvable instance";
      }
    }
  }
}

TEST(ReductionTest, SolvableInstanceRefutedWithinSweep) {
  // Dual sweep for the solvable x0^2 - 4: the refuting pair appears.
  DiophantineInstance inst = DiophantineInstance::Parse("x0^2 - 4");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  bool refuted = false;
  for (std::uint64_t a = 0; a <= 3 && !refuted; ++a) {
    Structure d = red.MakeStructure(true, false, {a});
    Structure d_prime = red.MakeStructure(false, true, {a});
    if (red.EvaluateViews(d) == red.EvaluateViews(d_prime) &&
        red.query.Count(d) != red.query.Count(d_prime)) {
      refuted = true;
      EXPECT_EQ(a, 2u);
    }
  }
  EXPECT_TRUE(refuted);
}

TEST(ReductionTest, MultiUnknownEndToEnd) {
  // x0 * x1 - 6: solutions (1,6),(2,3),(3,2),(6,1).
  DiophantineInstance inst = DiophantineInstance::Parse("x0*x1 - 6");
  Theorem2Reduction red = ReduceToDeterminacy(inst);
  auto solution = inst.FindSolution(6);
  ASSERT_TRUE(solution.has_value());
  auto [d, d_prime] = red.WitnessPair(*solution);
  EXPECT_EQ(red.EvaluateViews(d), red.EvaluateViews(d_prime));
  EXPECT_NE(red.query.Count(d), red.query.Count(d_prime));
}

}  // namespace
}  // namespace bagdet
