// Shared deterministic random-matrix generators for the linear-algebra
// differential suites and benchmarks. Before this header the same
// RandomBig / big-entry / huge-low-rank generators were copy-pasted
// across tests/modular_linalg_test.cpp, tests/concurrency_test.cpp and
// bench/bench_linalg.cpp, and drifted (one bench copy drew low-rank
// combination coefficients per *entry*, which silently destroys the
// linear dependence the benchmark claims to measure). Header-only, no
// gtest dependency, so bench/ can include it too.

#ifndef BAGDET_TESTS_TEST_MATRICES_H_
#define BAGDET_TESTS_TEST_MATRICES_H_

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "util/bigint.h"
#include "util/rational.h"
#include "util/rng.h"

namespace bagdet {
namespace testmat {

/// Uniform random nonnegative integer of `limbs` base-2^32 digits, i.e.
/// ~32·limbs bits — limbs=8 is the 256-bit scale of the radix-T hom
/// counts the determinacy pipeline feeds its evaluation matrices.
inline BigInt RandomBig(Rng* rng, int limbs) {
  BigInt x(0);
  const BigInt base(static_cast<std::int64_t>(1) << 32);
  for (int i = 0; i < limbs; ++i) {
    x = x * base + BigInt(static_cast<std::int64_t>(rng->Below(1ull << 32)));
  }
  return x;
}

/// RandomBig with a fair coin on the sign.
inline BigInt RandomBigSigned(Rng* rng, int limbs) {
  BigInt x = RandomBig(rng, limbs);
  if (rng->Chance(1, 2)) x = -x;
  return x;
}

/// Dense matrix with integer entries uniform in [lo, hi].
inline Mat RandomIntMatrix(Rng* rng, std::size_t rows, std::size_t cols,
                           std::int64_t lo, std::int64_t hi) {
  Mat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.At(r, c) = Rational(rng->Range(lo, hi));
    }
  }
  return m;
}

/// Dense matrix of small rationals a/b, a in [-num_range, num_range],
/// b in [1, den_range].
inline Mat RandomRationalMatrix(Rng* rng, std::size_t rows, std::size_t cols,
                                std::int64_t num_range,
                                std::int64_t den_range) {
  Mat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.At(r, c) = Rational(BigInt(rng->Range(-num_range, num_range)),
                            BigInt(rng->Range(1, den_range)));
    }
  }
  return m;
}

/// Dense matrix of signed ~32·limbs-bit integer entries.
inline Mat RandomBigMatrix(Rng* rng, std::size_t rows, std::size_t cols,
                           int limbs) {
  Mat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.At(r, c) = Rational(RandomBigSigned(rng, limbs));
    }
  }
  return m;
}

/// n×n matrix of exact rank `rank` with ~32·limbs-bit entries: the first
/// `rank` rows are random, every later row is a small positive integer
/// combination of them with ONE coefficient per basis row (a per-entry
/// draw would destroy the linear dependence and collapse the RREF to the
/// identity). This is the regime where the multi-modular driver must
/// reconstruct genuinely large rationals and the verification certificate
/// dominates.
inline Mat RandomBigLowRankMatrix(Rng* rng, std::size_t n, std::size_t rank,
                                  int limbs) {
  Mat m(n, n);
  for (std::size_t r = 0; r < rank && r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m.At(r, c) = Rational(RandomBigSigned(rng, limbs));
    }
  }
  for (std::size_t r = rank; r < n; ++r) {
    std::vector<Rational> coeff(rank);
    for (std::size_t base = 0; base < rank; ++base) {
      coeff[base] = Rational(rng->Range(1, 3));
    }
    for (std::size_t c = 0; c < n; ++c) {
      Rational sum;
      for (std::size_t base = 0; base < rank; ++base) {
        sum += m.At(base, c) * coeff[base];
      }
      m.At(r, c) = std::move(sum);
    }
  }
  return m;
}

/// Hilbert-like ill-conditioned matrix: At(i, j) = 1 / (i + j + 1 +
/// offset). Nonsingular for every n (Cauchy structure) with inverse
/// entries that blow up combinatorially — the classic stress case for
/// rational reconstruction bounds.
inline Mat HilbertLikeMatrix(std::size_t n, std::size_t offset = 0) {
  Mat m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m.At(i, j) =
          Rational(BigInt(1), BigInt(static_cast<std::int64_t>(i + j + 1 +
                                                               offset)));
    }
  }
  return m;
}

/// Sparse matrix: each entry is nonzero (uniform in [lo, hi] \ {0}) with
/// probability density_num/density_den.
inline Mat RandomSparseMatrix(Rng* rng, std::size_t rows, std::size_t cols,
                              std::uint64_t density_num,
                              std::uint64_t density_den, std::int64_t lo,
                              std::int64_t hi) {
  Mat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (!rng->Chance(density_num, density_den)) continue;
      std::int64_t v = rng->Range(lo, hi);
      if (v == 0) v = 1;
      m.At(r, c) = Rational(v);
    }
  }
  return m;
}

// --- Differential-harness knobs (the nightly CI job drives these) --------

/// Iteration multiplier for the randomized differential suites: the
/// BAGDET_DIFF_ITERS environment variable when set to a positive integer,
/// else 1. The nightly CI job sets it to run the same suites at ~10× the
/// per-commit case count.
inline int DiffIterScale() {
  const char* value = std::getenv("BAGDET_DIFF_ITERS");
  if (value == nullptr) return 1;
  const int scale = std::atoi(value);
  return scale > 0 ? scale : 1;
}

/// Appends a failing seed to the file named by BAGDET_FAIL_SEED_FILE (no-
/// op when unset). CI uploads the file as an artifact so a nightly
/// failure is reproducible locally: rerun the suite with the recorded
/// seed.
inline void RecordFailureSeed(std::uint64_t seed) {
  const char* path = std::getenv("BAGDET_FAIL_SEED_FILE");
  if (path == nullptr) return;
  std::ofstream out(path, std::ios::app);
  out << seed << "\n";
}

}  // namespace testmat
}  // namespace bagdet

#endif  // BAGDET_TESTS_TEST_MATRICES_H_
