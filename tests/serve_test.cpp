// Serving layer (serve/service.h): admission control, overload shedding,
// retry/backoff, graceful degradation, deterministic drain, and persistent
// pool/cache generations.
//
// The contract under test, end to end:
//   * every submitted request terminates in exactly one typed outcome
//     (answered / degraded / shed / declined) — no escaping exceptions, no
//     lost futures, counters that add up;
//   * shedding is synchronous and typed (kOverloaded + retry-after hint),
//     and Shutdown() returns only after every accepted future is ready;
//   * a no-limits single request through the service is bit-identical to
//     the direct DecideBagDeterminacy path;
//   * injected faults (serve/admit, serve/dispatch, and kernel-level
//     cancel/bad_alloc) become typed outcomes, leave the persistent pool
//     and cache usable, and a clean rerun is bit-identical;
//   * generation rotation never invalidates refs held by in-flight
//     requests or returned results.
//
// Fault-injection cases need a -DBAGDET_FAILPOINTS=ON build and GTEST_SKIP
// otherwise. BAGDET_DIFF_ITERS scales the randomized mixed-load loop.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/determinacy.h"
#include "hom/hom.h"
#include "query/cq.h"
#include "serve/service.h"
#include "structs/pool.h"
#include "structs/structure.h"
#include "util/exec_context.h"
#include "util/failpoint.h"

namespace bagdet {
namespace {

int DiffIters() {
  const char* env = std::getenv("BAGDET_DIFF_ITERS");
  if (env == nullptr) return 1;
  int iters = std::atoi(env);
  return iters > 0 ? iters : 1;
}

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

/// Cycle with both edge directions — bipartite iff n is even.
Structure SymmetricCycle(const std::shared_ptr<Schema>& schema,
                         std::size_t n) {
  Structure s(schema);
  for (Element i = 0; i < n; ++i) {
    const Element j = static_cast<Element>((i + 1) % n);
    s.AddFact(0, {i, j});
    s.AddFact(0, {j, i});
  }
  return s;
}

/// Adversarial request: view relevance runs ExistsHom(C35_sym, C4_sym),
/// an exponential no-instance — minutes ungoverned, so only ever run with
/// a deadline. Keeps one runner busy for exactly the deadline.
ServeRequest MakeAdversarialRequest(std::uint64_t deadline_ms) {
  auto schema = GraphSchema();
  ServeRequest req;
  req.query = BooleanQueryFromStructure("q", SymmetricCycle(schema, 4));
  req.views.push_back(
      BooleanQueryFromStructure("v", SymmetricCycle(schema, 35)));
  req.limits.deadline_ms = deadline_ms;
  req.options.want_counterexample = false;
  return req;
}

/// Small undetermined instance (directed cycles 1..k + ramp view): the
/// whole pipeline runs, counterexample included.
ServeRequest MakeUndeterminedRequest(std::size_t k) {
  auto schema = GraphSchema();
  std::vector<Structure> comps;
  for (std::size_t len = 1; len <= k; ++len) {
    Structure c(schema);
    for (Element i = 0; i < len; ++i) {
      c.AddFact(0, {i, static_cast<Element>((i + 1) % len)});
    }
    comps.push_back(std::move(c));
  }
  auto combine = [&](const std::vector<int>& mult) {
    Structure s(schema);
    for (std::size_t i = 0; i < comps.size(); ++i) {
      for (int m = 0; m < mult[i]; ++m) s = DisjointUnion(s, comps[i]);
    }
    return s;
  };
  ServeRequest req;
  req.query = BooleanQueryFromStructure("q", combine(std::vector<int>(k, 1)));
  std::vector<int> ramp(k);
  for (std::size_t i = 0; i < k; ++i) ramp[i] = static_cast<int>(i + 1);
  req.views.push_back(BooleanQueryFromStructure("v", combine(ramp)));
  return req;
}

/// Trivially determined: the view *is* the query.
ServeRequest MakeDeterminedRequest(std::size_t cycle_len) {
  auto schema = GraphSchema();
  Structure c(schema);
  for (Element i = 0; i < cycle_len; ++i) {
    c.AddFact(0, {i, static_cast<Element>((i + 1) % cycle_len)});
  }
  ServeRequest req;
  req.query = BooleanQueryFromStructure("q", c);
  req.views.push_back(BooleanQueryFromStructure("v", c));
  return req;
}

/// The tier-0 blind pair (see governed_test.cpp) under a crippled
/// distinguisher: NOT determined, and the counterexample certificate is
/// unreachable — the deterministic built-in degraded answer.
ServeRequest MakeDistinguisherExhaustedRequest() {
  auto schema = GraphSchema();
  Structure a(schema), b(schema);
  const std::pair<Element, Element> ea[] = {{0, 0}, {0, 1}, {0, 3},
                                            {1, 1}, {1, 2}, {2, 0}};
  const std::pair<Element, Element> eb[] = {{0, 0}, {0, 2}, {0, 3},
                                            {1, 3}, {2, 0}, {2, 2}};
  for (const auto& [u, v] : ea) a.AddFact(0, {u, v});
  for (const auto& [u, v] : eb) b.AddFact(0, {u, v});
  ServeRequest req;
  req.query = BooleanQueryFromStructure("q", DisjointUnion(a, b));
  req.views.push_back(BooleanQueryFromStructure(
      "v", DisjointUnion(DisjointUnion(a, b), b)));
  req.options.distinguisher.max_subset_domain = 2;
  req.options.distinguisher.random_attempts = 1;
  req.options.distinguisher.max_random_domain = 1;
  return req;
}

/// Waits until `pred` holds or ~2s pass; returns whether it held.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

class ServeTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

// --- Baseline equivalence ---------------------------------------------------

TEST_F(ServeTest, NoLimitsRequestMatchesDirectDecision) {
  for (bool determined : {true, false}) {
    ServeRequest req =
        determined ? MakeDeterminedRequest(3) : MakeUndeterminedRequest(3);
    const DeterminacyResult direct =
        DecideBagDeterminacy(req.views, req.query, req.options);

    DeterminacyService service;
    ServeResponse resp = service.Call(req);
    ASSERT_EQ(resp.outcome, ServeOutcome::kAnswered);
    EXPECT_EQ(resp.attempts, 1u);
    EXPECT_EQ(resp.retries, 0u);
    EXPECT_FALSE(resp.degraded);
    ASSERT_TRUE(resp.result.has_value());
    EXPECT_EQ(resp.result->determined, direct.determined);
    EXPECT_TRUE(resp.result->exec_status.ok());
    // Summary() prints verdict, witness exponents, and counterexample
    // coordinates — a deep bit-identity proxy for the whole result.
    EXPECT_EQ(resp.result->Summary(), direct.Summary());
  }
}

TEST_F(ServeTest, MalformedRequestIsTypedDecline) {
  auto schema = GraphSchema();
  auto other = std::make_shared<Schema>();  // Different relation name →
  other->AddRelation("F", 2);               // schema mismatch (structural).
  Structure q(schema), v(other);
  q.AddFact(0, {0, 0});
  v.AddFact(0, {0, 0});
  ServeRequest req;
  req.query = BooleanQueryFromStructure("q", q);
  req.views.push_back(BooleanQueryFromStructure("v", v));

  DeterminacyService service;
  ServeResponse resp = service.Call(req);
  EXPECT_EQ(resp.outcome, ServeOutcome::kDeclined);
  EXPECT_EQ(resp.status.code, ExecCode::kInvalidArgument);
  EXPECT_FALSE(resp.message.empty());
  EXPECT_EQ(resp.retries, 0u);  // Malformed input never retries.

  // The service survives: a well-formed request right after still answers.
  EXPECT_EQ(service.Call(MakeDeterminedRequest(3)).outcome,
            ServeOutcome::kAnswered);
}

// --- Admission control and shedding -----------------------------------------

TEST_F(ServeTest, QueueOverflowShedsTyped) {
  ServiceOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 1;
  DeterminacyService service(opts);

  // Occupy the single runner with a deadline-bounded adversarial request,
  // fill the one queue slot, then everything further must shed.
  auto running = service.Submit(MakeAdversarialRequest(/*deadline_ms=*/400));
  ASSERT_TRUE(WaitFor([&] { return service.stats().executing == 1; }));
  auto queued = service.Submit(MakeAdversarialRequest(/*deadline_ms=*/50));

  std::vector<std::future<ServeResponse>> shed;
  for (int i = 0; i < 3; ++i) {
    shed.push_back(service.Submit(MakeDeterminedRequest(3)));
  }
  for (auto& f : shed) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);  // Shedding is synchronous.
    ServeResponse resp = f.get();
    EXPECT_EQ(resp.outcome, ServeOutcome::kShed);
    EXPECT_EQ(resp.status.code, ExecCode::kOverloaded);
    EXPECT_EQ(resp.status.kernel, "serve/admit");
    EXPECT_GE(resp.retry_after_ms, 1.0);
    EXPECT_FALSE(resp.result.has_value());
  }

  // The occupants still end in their own typed outcomes (deadline decline).
  for (auto* f : {&running, &queued}) {
    ServeResponse resp = f->get();
    EXPECT_EQ(resp.outcome, ServeOutcome::kDeclined);
    EXPECT_EQ(resp.status.code, ExecCode::kDeadlineExceeded);
  }

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed, 3u);
}

TEST_F(ServeTest, ShutdownDrainsAndLaterSubmitsShed) {
  ServiceOptions opts;
  opts.max_concurrent = 2;
  DeterminacyService service(opts);

  std::vector<std::future<ServeResponse>> accepted;
  for (int i = 0; i < 6; ++i) {
    accepted.push_back(service.Submit(MakeUndeterminedRequest(3)));
  }
  service.Shutdown();

  // Deterministic drain: when Shutdown returns, every accepted future is
  // already fulfilled with a typed outcome.
  for (auto& f : accepted) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(f.get().outcome, ServeOutcome::kAnswered);
  }

  ServeResponse late = service.Call(MakeDeterminedRequest(3));
  EXPECT_EQ(late.outcome, ServeOutcome::kShed);
  EXPECT_EQ(late.status.code, ExecCode::kOverloaded);
  EXPECT_EQ(late.status.kernel, "serve/shutdown");

  service.Shutdown();  // Idempotent.
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.answered, 6u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.executing, 0u);
}

// --- Degradation ------------------------------------------------------------

TEST_F(ServeTest, DistinguisherExhaustionIsDegradedAnswer) {
  DeterminacyService service;
  ServeResponse resp = service.Call(MakeDistinguisherExhaustedRequest());
  EXPECT_EQ(resp.outcome, ServeOutcome::kDegraded);
  EXPECT_TRUE(resp.degraded);
  EXPECT_EQ(resp.status.code, ExecCode::kResourceExhausted);
  EXPECT_EQ(resp.status.kernel, "distinguisher");
  ASSERT_TRUE(resp.result.has_value());
  EXPECT_FALSE(resp.result->determined);  // The verdict is still valid.
  EXPECT_FALSE(resp.result->counterexample.has_value());
}

TEST_F(ServeTest, DeadlineTripDegradesToVerdictOnly) {
  // The adversarial relevance check trips the deadline at both tiers →
  // decline; with degradation disabled the decline is immediate. Both
  // paths end typed, never hung.
  ServiceOptions opts;
  opts.allow_degraded = false;
  DeterminacyService service(opts);
  ServeRequest req = MakeAdversarialRequest(/*deadline_ms=*/60);
  req.options.want_counterexample = true;
  ServeResponse resp = service.Call(req);
  EXPECT_EQ(resp.outcome, ServeOutcome::kDeclined);
  EXPECT_EQ(resp.status.code, ExecCode::kDeadlineExceeded);
  EXPECT_EQ(resp.attempts, 1u);

  // With degradation allowed, the dropped tier re-runs verdict-only and
  // still trips (the adversarial part is the analysis itself) — but the
  // degraded attempt was made: two attempts, typed decline, no retry of
  // a deterministic trip.
  DeterminacyService degrading;
  ServeResponse resp2 = degrading.Call(req);
  EXPECT_EQ(resp2.outcome, ServeOutcome::kDeclined);
  EXPECT_EQ(resp2.status.code, ExecCode::kDeadlineExceeded);
  EXPECT_EQ(resp2.attempts, 2u);
  EXPECT_EQ(resp2.retries, 0u);
}

// --- Persistent pool, cache reuse, generations ------------------------------

TEST_F(ServeTest, RepeatedRequestsHitWarmCache) {
  DeterminacyService service;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(service.Call(MakeUndeterminedRequest(3)).outcome,
              ServeOutcome::kAnswered);
  }
  ServiceStats stats = service.stats();
  EXPECT_GT(stats.cache_hits, 0u);  // Identical instances memoize.
  EXPECT_EQ(stats.rotations, 0u);
  EXPECT_GT(stats.pool_classes, 0u);
  EXPECT_GT(stats.pool_bytes, 0u);
}

TEST_F(ServeTest, RotationNeverInvalidatesHeldResults) {
  ServiceOptions opts;
  opts.pool_max_classes = 1;  // Rotate after (essentially) every request.
  opts.pool_first_block = 8;
  DeterminacyService service(opts);

  std::vector<ServeResponse> held;
  for (int i = 0; i < 4; ++i) {
    held.push_back(service.Call(MakeUndeterminedRequest(3)));
    held.push_back(service.Call(MakeDeterminedRequest(3)));
  }
  ServiceStats stats = service.stats();
  EXPECT_GE(stats.rotations, 1u);
  EXPECT_EQ(stats.generation, stats.rotations + 1);

  // Every held result's refs still resolve against its own (retired)
  // generation, and its certificate still verifies end to end.
  for (ServeResponse& resp : held) {
    ASSERT_EQ(resp.outcome, ServeOutcome::kAnswered);
    ASSERT_TRUE(resp.result.has_value());
    const InstanceAnalysis& analysis = resp.result->analysis;
    for (StructureRef ref : analysis.basis_refs) {
      ASSERT_TRUE(analysis.pool->Contains(ref));
      analysis.pool->At(ref);  // Must not fault.
    }
    if (resp.result->counterexample.has_value()) {
      EXPECT_EQ(VerifyCounterexample(analysis, *resp.result->counterexample),
                std::nullopt);
    }
  }
}

// --- Concurrent clients and outcome accounting ------------------------------

TEST_F(ServeTest, ConcurrentMixedLoadEveryRequestOneTypedOutcome) {
  const int iters = DiffIters();
  for (int iter = 0; iter < iters; ++iter) {
    ServiceOptions opts;
    opts.max_concurrent = 2;
    opts.max_queue = 4;
    DeterminacyService service(opts);

    constexpr int kClients = 4;
    constexpr int kPerClient = 6;
    std::atomic<int> outcome_counts[4] = {};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::mt19937 rng(17 * (iter + 1) + c);
        for (int i = 0; i < kPerClient; ++i) {
          ServeRequest req;
          switch (rng() % 3) {
            case 0:
              req = MakeDeterminedRequest(2 + rng() % 3);
              break;
            case 1:
              req = MakeUndeterminedRequest(2 + rng() % 2);
              break;
            default:
              req = MakeAdversarialRequest(/*deadline_ms=*/20);
              break;
          }
          ServeResponse resp = service.Call(req);
          ++outcome_counts[static_cast<int>(resp.outcome)];
        }
      });
    }
    for (std::thread& t : clients) t.join();
    service.Shutdown();

    const int total = outcome_counts[0] + outcome_counts[1] +
                      outcome_counts[2] + outcome_counts[3];
    EXPECT_EQ(total, kClients * kPerClient);  // Exactly one outcome each.
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(total));
    EXPECT_EQ(stats.answered + stats.degraded + stats.shed + stats.declined,
              stats.submitted);  // Counters add up too.
  }
}

// --- Fault injection --------------------------------------------------------

TEST_F(ServeTest, AdmissionFaultIsTypedDecline) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  DeterminacyService service;
  failpoint::Arm("serve/admit", {failpoint::Action::kBadAlloc, 1.0, 1});

  auto faulted = service.Submit(MakeDeterminedRequest(3));
  ASSERT_EQ(faulted.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  ServeResponse resp = faulted.get();
  EXPECT_EQ(resp.outcome, ServeOutcome::kDeclined);
  EXPECT_EQ(resp.status.code, ExecCode::kResourceExhausted);
  EXPECT_EQ(resp.status.kernel, "serve/admit");

  failpoint::DisarmAll();
  EXPECT_EQ(service.Call(MakeDeterminedRequest(3)).outcome,
            ServeOutcome::kAnswered);
}

TEST_F(ServeTest, DispatchFaultRetriesWithBackoff) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  ServiceOptions opts;
  opts.max_concurrent = 1;  // One runner → deterministic hit ordering.
  DeterminacyService service(opts);
  // Fire exactly once: the first attempt faults, the retry answers.
  failpoint::Arm("serve/dispatch", {failpoint::Action::kBadAlloc, 1.0, 1});

  ServeRequest req = MakeUndeterminedRequest(3);
  const DeterminacyResult direct =
      DecideBagDeterminacy(req.views, req.query, req.options);
  ServeResponse resp = service.Call(req);
  EXPECT_EQ(resp.outcome, ServeOutcome::kAnswered);
  EXPECT_EQ(resp.attempts, 2u);
  EXPECT_EQ(resp.retries, 1u);
  ASSERT_TRUE(resp.result.has_value());
  EXPECT_EQ(resp.result->Summary(), direct.Summary());  // Retry is clean.
  EXPECT_EQ(service.stats().retries, 1u);
}

TEST_F(ServeTest, PersistentDispatchFaultExhaustsRetriesThenDeclines) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  ServiceOptions opts;
  opts.max_concurrent = 1;
  opts.max_retries = 2;
  DeterminacyService service(opts);
  failpoint::Arm("serve/dispatch", {failpoint::Action::kBadAlloc});

  ServeRequest req = MakeUndeterminedRequest(3);
  req.options.want_counterexample = false;  // No tier left to degrade to.
  ServeResponse resp = service.Call(req);
  EXPECT_EQ(resp.outcome, ServeOutcome::kDeclined);
  EXPECT_EQ(resp.status.code, ExecCode::kResourceExhausted);
  EXPECT_EQ(resp.status.kernel, "serve/dispatch");
  EXPECT_EQ(resp.attempts, 3u);  // Initial + max_retries.
  EXPECT_EQ(resp.retries, 2u);

  // Disarm → the same service serves the same request, bit-identical to a
  // direct run: the fault never corrupted the persistent pool/cache.
  failpoint::DisarmAll();
  const DeterminacyResult direct =
      DecideBagDeterminacy(req.views, req.query, req.options);
  ServeResponse rerun = service.Call(req);
  ASSERT_EQ(rerun.outcome, ServeOutcome::kAnswered);
  EXPECT_EQ(rerun.result->Summary(), direct.Summary());
}

TEST_F(ServeTest, KernelCancelMidRequestLeavesServiceUsable) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  const int iters = DiffIters();
  for (int iter = 0; iter < iters; ++iter) {
    ServiceOptions opts;
    opts.max_concurrent = 1;
    DeterminacyService service(opts);
    // Cancel from deep inside the hom-count DP mid-request: cooperative
    // cancellation is deterministic, never retried, and the unwind leaves
    // the generation's pool/cache consistent.
    failpoint::Arm("hom/dp_step",
                   {failpoint::Action::kCancel, 1.0,
                    /*hit_on=*/static_cast<std::uint64_t>(5 + iter)});
    ServeRequest req = MakeUndeterminedRequest(3);
    ServeResponse cancelled = service.Call(req);
    EXPECT_EQ(cancelled.outcome, ServeOutcome::kDeclined);
    EXPECT_EQ(cancelled.status.code, ExecCode::kCancelled);
    EXPECT_EQ(cancelled.retries, 0u);

    failpoint::DisarmAll();
    const DeterminacyResult direct =
        DecideBagDeterminacy(req.views, req.query, req.options);
    ServeResponse rerun = service.Call(req);
    ASSERT_EQ(rerun.outcome, ServeOutcome::kAnswered);
    EXPECT_EQ(rerun.result->Summary(), direct.Summary());  // Bit-identical.
  }
}

TEST_F(ServeTest, CounterexampleTierFaultDegradesToVerdictOnly) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  ServiceOptions opts;
  opts.max_concurrent = 1;
  opts.max_retries = 0;  // Isolate the degrade path from the retry path.
  DeterminacyService service(opts);
  // bad_alloc on the 4th pool intern: the analysis creates exactly the 3
  // component classes, so hit 4 is the counterexample phase's candidate
  // intern — the full decision faults there, and the verdict-only tier
  // (warm pool, no new interns) completes.
  failpoint::Arm("pool/intern", {failpoint::Action::kBadAlloc, 1.0,
                                 /*hit_on=*/4});

  ServeResponse resp = service.Call(MakeUndeterminedRequest(3));
  EXPECT_EQ(resp.outcome, ServeOutcome::kDegraded);
  EXPECT_TRUE(resp.degraded);
  EXPECT_EQ(resp.attempts, 2u);
  ASSERT_TRUE(resp.result.has_value());
  EXPECT_FALSE(resp.result->determined);
  EXPECT_FALSE(resp.result->counterexample.has_value());
}

// --- StructurePool persistent-growth contract -------------------------------

TEST_F(ServeTest, PoolGrowsAcrossBlocksWithoutInvalidatingRefs) {
  // Tiny first block → growth crosses many directory blocks; concurrent
  // interns + reads must never observe a moved entry (the directory only
  // ever publishes new blocks).
  auto pool = std::make_shared<StructurePool>(/*first_block_size=*/8);
  auto schema = GraphSchema();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;

  std::vector<std::vector<StructureRef>> refs(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Distinct classes: directed path with one marked loop position.
        Structure s(schema);
        const Element n = static_cast<Element>(3 + (t * kPerThread + i));
        for (Element v = 0; v + 1 < n; ++v) s.AddFact(0, {v, v + 1});
        s.AddFact(0, {0, 0});
        StructureRef ref = pool->Intern(s);
        refs[t].push_back(ref);
        // Read-back under concurrent growth.
        ASSERT_TRUE(pool->Contains(ref));
        ASSERT_GE(pool->At(ref).DomainSize(), 3u);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // All refs remain valid and re-interning is a pure hash probe.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const Structure& rep = pool->At(refs[t][i]);
      EXPECT_EQ(pool->Intern(rep), refs[t][i]);
    }
  }
  EXPECT_EQ(pool->size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_GT(pool->ApproxBytes(), 0u);
}

}  // namespace
}  // namespace bagdet
