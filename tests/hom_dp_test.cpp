// Focused tests for the variable-elimination counting engine: higher
// arities, projection correctness on branchy/cyclic sources, closed-form
// count cross-checks, and agreement with the enumeration baseline.

#include <gtest/gtest.h>

#include "hom/hom.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

TEST(HomDpTest, TernaryRelationJoins) {
  auto schema = std::make_shared<Schema>();
  RelationId t = schema->AddRelation("T", 3);
  Structure from(schema);
  from.AddFact(t, {0, 1, 2});
  from.AddFact(t, {2, 1, 3});  // Shares two elements with the first atom.
  Structure to(schema);
  to.AddFact(t, {0, 1, 2});
  to.AddFact(t, {2, 1, 0});
  to.AddFact(t, {2, 1, 2});
  EXPECT_EQ(CountHoms(from, to), CountHomsNaive(from, to));
  // The source has 4 elements, the target 3, so nothing is injective.
  EXPECT_EQ(CountInjectiveHoms(from, to), BigInt(0));
}

TEST(HomDpTest, TernaryInjectiveImpossible) {
  auto schema = std::make_shared<Schema>();
  RelationId t = schema->AddRelation("T", 3);
  Structure from(schema);
  from.AddFact(t, {0, 1, 2});
  from.AddFact(t, {2, 1, 3});
  Structure to(schema);
  to.AddFact(t, {0, 1, 2});
  to.AddFact(t, {2, 1, 0});
  EXPECT_EQ(CountInjectiveHoms(from, to), BigInt(0));
}

TEST(HomDpTest, RepeatedVariableInsideAtom) {
  auto schema = std::make_shared<Schema>();
  RelationId t = schema->AddRelation("T", 3);
  Structure from(schema);
  from.AddFact(t, {0, 0, 1});  // T(x,x,y).
  Structure to(schema);
  to.AddFact(t, {0, 0, 1});
  to.AddFact(t, {0, 1, 1});
  to.AddFact(t, {2, 2, 2});
  // Matching facts: (0,0,1) and (2,2,2).
  EXPECT_EQ(CountHoms(from, to), BigInt(2));
  EXPECT_EQ(CountHomsNaive(from, to), BigInt(2));
}

TEST(HomDpTest, ClosedWalkFormulaOnSymmetricClique) {
  // hom(directed C_k, symmetric K_n) = tr(A^k) = (n-1)^k + (n-1)(-1)^k.
  auto schema = std::make_shared<Schema>();
  RelationId e = schema->AddRelation("E", 2);
  for (Element n : {3, 4, 5}) {
    Structure clique(schema, n);
    for (Element i = 0; i < n; ++i) {
      for (Element j = 0; j < n; ++j) {
        if (i != j) clique.AddFact(e, {i, j});
      }
    }
    for (Element k : {2, 3, 5, 8, 13}) {
      Structure cycle(schema);
      for (Element i = 0; i < k; ++i) {
        cycle.AddFact(e, {i, static_cast<Element>((i + 1) % k)});
      }
      std::int64_t n1 = n - 1;
      BigInt expected = BigInt::Pow(BigInt(n1), k) +
                        BigInt(n1) * (k % 2 == 0 ? BigInt(1) : BigInt(-1));
      EXPECT_EQ(CountHoms(cycle, clique), expected)
          << "C_" << int(k) << " -> K_" << int(n);
    }
  }
}

TEST(HomDpTest, BranchyTreeProjection) {
  // A depth-2 complete binary tree (edges away from the root) into K_n:
  // root has n choices, each of the 6 remaining nodes n-1: n(n-1)^6.
  auto schema = std::make_shared<Schema>();
  RelationId e = schema->AddRelation("E", 2);
  Structure tree(schema);
  // Nodes 0; 1,2; 3,4,5,6.
  tree.AddFact(e, {0, 1});
  tree.AddFact(e, {0, 2});
  tree.AddFact(e, {1, 3});
  tree.AddFact(e, {1, 4});
  tree.AddFact(e, {2, 5});
  tree.AddFact(e, {2, 6});
  Structure k4(schema, 4);
  for (Element i = 0; i < 4; ++i) {
    for (Element j = 0; j < 4; ++j) {
      if (i != j) k4.AddFact(e, {i, j});
    }
  }
  EXPECT_EQ(CountHoms(tree, k4), BigInt(4) * BigInt::Pow(BigInt(3), 6));
}

TEST(HomDpTest, EnumerationAndDpAgreeWhenCountsAreSmall) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("R", 2);
  schema->AddRelation("T", 3);
  Rng rng(909);
  for (int iter = 0; iter < 30; ++iter) {
    Structure from = RandomStructure(schema, 1 + rng.Below(3), &rng, 1, 2);
    Structure to = RandomStructure(schema, 1 + rng.Below(3), &rng, 1, 2);
    BigInt dp = CountHoms(from, to);
    BigInt enumerated = CountHomsByEnumeration(from, to);
    BigInt naive = CountHomsNaive(from, to);
    EXPECT_EQ(dp, enumerated) << from.ToString() << " -> " << to.ToString();
    EXPECT_EQ(dp, naive) << from.ToString() << " -> " << to.ToString();
  }
}

TEST(HomDpTest, AstronomicalCountStaysFast) {
  // hom(path_100, K_20) = 20 * 19^100 — ~131 decimal digits; enumeration
  // would outlive the universe, variable elimination is instant.
  auto schema = std::make_shared<Schema>();
  RelationId e = schema->AddRelation("E", 2);
  Structure path(schema);
  for (Element i = 0; i < 100; ++i) {
    path.AddFact(e, {i, static_cast<Element>(i + 1)});
  }
  Structure k20(schema, 20);
  for (Element i = 0; i < 20; ++i) {
    for (Element j = 0; j < 20; ++j) {
      if (i != j) k20.AddFact(e, {i, j});
    }
  }
  BigInt expected = BigInt(20) * BigInt::Pow(BigInt(19), 100);
  EXPECT_EQ(CountHoms(path, k20), expected);
  EXPECT_EQ(expected.ToString().size(), 130u);
}

TEST(HomDpTest, EmptyTargetRelationShortCircuits) {
  auto schema = std::make_shared<Schema>();
  RelationId e = schema->AddRelation("E", 2);
  RelationId f = schema->AddRelation("F", 2);
  Structure from(schema);
  from.AddFact(e, {0, 1});
  from.AddFact(f, {1, 2});
  Structure to(schema);
  to.AddFact(e, {0, 0});  // No F facts at all.
  EXPECT_EQ(CountHoms(from, to), BigInt(0));
}

TEST(HomDpTest, CrossComponentMixup) {
  // Components with shared relation symbols must not leak bindings.
  auto schema = std::make_shared<Schema>();
  RelationId e = schema->AddRelation("E", 2);
  Structure from(schema);
  from.AddFact(e, {0, 1});  // Component 1: an edge.
  from.AddFact(e, {2, 2});  // Component 2: a loop.
  Structure to(schema);
  to.AddFact(e, {0, 1});
  to.AddFact(e, {1, 1});
  // Edge: (0,1), (1,1) -> 2 homs; loop: only element 1 -> 1 hom.
  EXPECT_EQ(CountHoms(from, to), BigInt(2));
}

}  // namespace
}  // namespace bagdet
