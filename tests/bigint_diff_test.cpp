// Randomized BigInt differentials targeting the spots where the limb
// kernels change algorithm or carry shape:
//
//   * the Karatsuba threshold boundary (31/32/33-limb operands straddle the
//     schoolbook cutover, including the unbalanced split recursion),
//   * the Knuth algorithm D q_hat correction (dividends engineered with
//     saturated high limbs so the initial two-limb estimate overshoots),
//   * Mod / DivModU64 against the 2^63 domain edge,
//   * the fused MulAdd / MulSub against their unfused spellings.
//
// Each case validates through an independent path — ring identities,
// division round-trips, and word-size modular residues — rather than a
// second bignum implementation. The nightly differential job scales the
// iteration counts with BAGDET_DIFF_ITERS.

#include <cstdlib>
#include <gtest/gtest.h>

#include "test_matrices.h"
#include "util/bigint.h"
#include "util/rng.h"

namespace bagdet {
namespace {

int DiffIters() {
  const char* env = std::getenv("BAGDET_DIFF_ITERS");
  if (env == nullptr) return 1;
  int iters = std::atoi(env);
  return iters > 0 ? iters : 1;
}

// A value of exactly `limbs` base-2^32 digits with a nonzero top limb (so
// the operand size seen by the multiply/divide dispatch is exact).
BigInt ExactLimbs(Rng* rng, int limbs) {
  BigInt x = testmat::RandomBig(rng, limbs - 1);
  std::uint64_t top = 1 + rng->Below((1ull << 32) - 1);
  return x + BigInt::Pow(BigInt(2), 32 * (limbs - 1)) *
                 BigInt(static_cast<std::int64_t>(top));
}

class BigIntDiffTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntDiffTest, KaratsubaThresholdBoundary) {
  Rng rng(GetParam());
  // Threshold is 32 limbs: 31x31 is schoolbook, 32x32 is Karatsuba's first
  // recursion, 33x33 exercises the odd split. Mixed sizes hit the padding
  // of the shorter operand.
  const int sizes[] = {31, 32, 33};
  for (int iter = 0; iter < 4 * DiffIters(); ++iter) {
    for (int na : sizes) {
      for (int nb : sizes) {
        BigInt a = ExactLimbs(&rng, na);
        BigInt b = ExactLimbs(&rng, nb);
        BigInt c = testmat::RandomBig(&rng, 3);
        BigInt p = a * b;
        // Commutativity and distributivity tie the Karatsuba path to the
        // (simple, carry-chain) addition path.
        EXPECT_EQ(p, b * a);
        EXPECT_EQ(a * (b + c), p + a * c);
        // Division inverts the product through an independent kernel.
        EXPECT_EQ(p / a, b);
        EXPECT_EQ(p % b, BigInt(0));
        // Word-size residues cross-check both against native arithmetic:
        // (a*b) mod m == ((a mod m)*(b mod m)) mod m.
        const std::uint64_t m = (1ull << 61) - 1;
        EXPECT_EQ(p.Mod(m),
                  static_cast<std::uint64_t>(
                      (static_cast<unsigned __int128>(a.Mod(m)) * b.Mod(m)) %
                      m));
      }
    }
  }
}

TEST_P(BigIntDiffTest, KnuthDQHatCorrection) {
  Rng rng(GetParam());
  // The q_hat estimate from the top two dividend limbs overshoots when the
  // divisor's second limb is large relative to its first; saturated-limb
  // operands (runs of 0xFFFFFFFF) maximize the correction frequency.
  const BigInt word_max(static_cast<std::int64_t>(0xffffffffll));
  const BigInt base(static_cast<std::int64_t>(1) << 32);
  for (int iter = 0; iter < 20 * DiffIters(); ++iter) {
    int nb = 3 + static_cast<int>(rng.Below(6));
    int extra = 1 + static_cast<int>(rng.Below(6));
    // b = 2^(32*nb) - small: top limbs all 0xFFFFFFFF.
    BigInt b = BigInt::Pow(base, nb) -
               BigInt(static_cast<std::int64_t>(1 + rng.Below(1000)));
    // a built so its top limbs mirror b's (quotient digits near the base).
    BigInt q_true = testmat::RandomBig(&rng, extra);
    if (q_true.IsZero()) q_true = word_max;
    BigInt r_true = testmat::RandomBig(&rng, nb - 1);  // < b by size.
    BigInt a = q_true * b + r_true;
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q, q_true);
    EXPECT_EQ(r, r_true);
    // Round-trip invariant directly (r_true < b is guaranteed by limb
    // count, but re-assert the contract anyway).
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
    // Negative dividend: truncated quotient, remainder follows dividend.
    BigInt nq, nr;
    BigInt::DivMod(-a, b, &nq, &nr);
    EXPECT_EQ(nq, -q);
    EXPECT_EQ(nr, -r);
  }
}

TEST_P(BigIntDiffTest, ModAndDivModU64NearDomainEdge) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20 * DiffIters(); ++iter) {
    BigInt a = testmat::RandomBigSigned(&rng, 1 + static_cast<int>(
                                                  rng.Below(8)));
    // Moduli hugging the open upper bound 2^63, plus mid-range ones.
    const std::uint64_t edge = 1ull << 63;
    const std::uint64_t moduli[] = {
        edge - 1,
        edge - 1 - rng.Below(1000),
        (1ull << 62) + rng.Below(1ull << 62),
        2 + rng.Below(1ull << 32),
    };
    for (std::uint64_t m : moduli) {
      // Mod: always in [0, m), congruent to a.
      const std::uint64_t residue = a.Mod(m);
      ASSERT_LT(residue, m);
      const BigInt bm(static_cast<std::int64_t>(m));
      BigInt diff = a - BigInt(static_cast<std::int64_t>(residue));
      EXPECT_TRUE((diff % bm).IsZero())
          << a << " mod " << m << " gave " << residue;
      // DivModU64 agrees with the general DivMod on magnitude and sign.
      BigInt q_ref, r_ref;
      BigInt::DivMod(a, bm, &q_ref, &r_ref);
      BigInt x = a;
      const std::uint64_t r_word = x.DivModU64(m);
      EXPECT_EQ(x, q_ref);
      EXPECT_EQ(BigInt(static_cast<std::int64_t>(r_word)), r_ref.Abs());
    }
  }
  // The contract excludes 0 and anything >= 2^63.
  BigInt v(12345);
  EXPECT_THROW(v.Mod(0), std::domain_error);
  EXPECT_THROW(v.Mod(1ull << 63), std::domain_error);
  EXPECT_THROW(v.DivModU64(0), std::domain_error);
  EXPECT_THROW(v.DivModU64(1ull << 63), std::domain_error);
}

TEST_P(BigIntDiffTest, FusedMulAddMulSubMatchUnfused) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 30 * DiffIters(); ++iter) {
    BigInt x = testmat::RandomBigSigned(&rng, 1 + static_cast<int>(
                                                  rng.Below(10)));
    BigInt a = testmat::RandomBigSigned(&rng, 1 + static_cast<int>(
                                                  rng.Below(10)));
    BigInt b = testmat::RandomBigSigned(&rng, 1 + static_cast<int>(
                                                  rng.Below(10)));
    BigInt add = x;
    add.MulAdd(a, b);
    EXPECT_EQ(add, x + a * b);
    BigInt sub = x;
    sub.MulSub(a, b);
    EXPECT_EQ(sub, x - a * b);
    // Chained folds keep the accumulator canonical (memberwise == against
    // the freshly computed value is the canonicity check).
    BigInt chain = x;
    chain.MulAdd(a, b);
    chain.MulSub(a, b);
    EXPECT_EQ(chain, x);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntDiffTest, ::testing::Values(41, 42, 43));

}  // namespace
}  // namespace bagdet
