#include "structs/text.h"

#include <gtest/gtest.h>

#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

TEST(TextTest, ParseBasicFacts) {
  auto schema = std::make_shared<Schema>();
  Structure s = ParseStructure("E(0,1), E(1,2), P(0)", schema);
  EXPECT_EQ(schema->NumRelations(), 2u);
  EXPECT_EQ(s.NumFacts(), 3u);
  EXPECT_EQ(s.DomainSize(), 3u);
  EXPECT_TRUE(s.HasFact(*schema->Find("E"), {1, 2}));
  EXPECT_TRUE(s.HasFact(*schema->Find("P"), {0}));
}

TEST(TextTest, ParseNullaryAndNewlines) {
  auto schema = std::make_shared<Schema>();
  Structure s = ParseStructure("H()\nE(0,0)\n", schema);
  EXPECT_TRUE(s.HasFact(*schema->Find("H"), {}));
  EXPECT_EQ(s.DomainSize(), 1u);
}

TEST(TextTest, ParseDomainClauseAndComments) {
  auto schema = std::make_shared<Schema>();
  Structure s = ParseStructure(
      "# a comment line\n"
      "E(0,1)  # trailing comment\n"
      "domain 5\n",
      schema);
  EXPECT_EQ(s.DomainSize(), 5u);
  EXPECT_EQ(s.NumFacts(), 1u);
}

TEST(TextTest, ParseEmptyIsEmptyStructure) {
  auto schema = std::make_shared<Schema>();
  Structure s = ParseStructure("  # nothing\n", schema);
  EXPECT_TRUE(s.IsEmpty());
}

TEST(TextTest, ParseErrors) {
  auto schema = std::make_shared<Schema>();
  EXPECT_THROW(ParseStructure("E(0,", schema), std::invalid_argument);
  EXPECT_THROW(ParseStructure("E 0,1)", schema), std::invalid_argument);
  EXPECT_THROW(ParseStructure("E(x,1)", schema), std::invalid_argument);
  // Arity conflict across facts.
  EXPECT_THROW(ParseStructure("E(0,1), E(0)", schema), std::invalid_argument);
}

TEST(TextTest, FormatRoundTripWithIsolatedElements) {
  auto schema = std::make_shared<Schema>();
  Structure s(schema, 0);
  schema->AddRelation("E", 2);
  s = Structure(schema, 4);  // One isolated element beyond the facts.
  s.AddFact(0, {0, 1});
  s.AddFact(0, {1, 2});
  std::string text = FormatStructure(s);
  EXPECT_NE(text.find("domain 4"), std::string::npos);
  auto schema2 = std::make_shared<Schema>();
  Structure back = ParseStructure(text, schema2);
  EXPECT_EQ(back.DomainSize(), 4u);
  EXPECT_EQ(back.NumFacts(), 2u);
}

TEST(TextTest, RandomRoundTrips) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("R", 2);
  schema->AddRelation("P", 1);
  schema->AddRelation("H", 0);
  Rng rng(808);
  for (int iter = 0; iter < 30; ++iter) {
    Structure s = RandomStructure(schema, 1 + rng.Below(5), &rng);
    auto schema2 = std::make_shared<Schema>();
    Structure back = ParseStructure(FormatStructure(s), schema2);
    // Compare fact multisets via re-serialization under the same schema
    // ordering (relation ids may differ between the two schemas).
    EXPECT_EQ(FormatStructure(back), FormatStructure(s));
    EXPECT_EQ(back.DomainSize(), s.DomainSize());
    EXPECT_EQ(back.NumFacts(), s.NumFacts());
  }
}

}  // namespace
}  // namespace bagdet
