// Tests for Theorem 1: path-query determinacy via the prefix graph
// G_{q,V}, q-walks and their reductions, matrix semantics (Fact 18), and
// the Appendix-B counterexample.

#include "path/path_query.h"

#include <gtest/gtest.h>

#include "path/matrix_semantics.h"
#include "path/qwalk.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

struct PathFixture {
  std::shared_ptr<Schema> schema = std::make_shared<Schema>();
  PathQuery Q(const std::string& word) {
    return PathQuery::FromWord(word, schema);
  }
};

TEST(PathQueryTest, FromWordAndToString) {
  PathFixture fx;
  PathQuery q = fx.Q("ABC");
  EXPECT_EQ(q.Length(), 3u);
  EXPECT_EQ(q.ToString(), "ABC");
  EXPECT_EQ(fx.Q("").ToString(), "<epsilon>");
  EXPECT_EQ(fx.schema->NumRelations(), 3u);
}

TEST(PathQueryTest, MatchesAt) {
  PathFixture fx;
  PathQuery q = fx.Q("ABCD");
  EXPECT_TRUE(fx.Q("BC").MatchesAt(q, 1));
  EXPECT_FALSE(fx.Q("BC").MatchesAt(q, 0));
  EXPECT_TRUE(fx.Q("").MatchesAt(q, 4));
  EXPECT_FALSE(fx.Q("D").MatchesAt(q, 4));  // Would run past the end.
}

TEST(PathQueryTest, FrozenBodyIsSimplePath) {
  PathFixture fx;
  Structure body = fx.Q("AB").FrozenBody();
  EXPECT_EQ(body.DomainSize(), 3u);
  EXPECT_EQ(body.NumFacts(), 2u);
  EXPECT_TRUE(body.IsConnected());
}

TEST(PathDeterminacyTest, Example13Determined) {
  // Example 13: q = ABCD, V = {ABC, BC, BCD}; path ε→ABC→A→ABCD exists.
  PathFixture fx;
  PathQuery q = fx.Q("ABCD");
  std::vector<PathQuery> views = {fx.Q("ABC"), fx.Q("BC"), fx.Q("BCD")};
  PathDeterminacyResult result = DecidePathDeterminacy(q, views);
  ASSERT_TRUE(result.determined);
  // The certificate path really walks ε→q.
  std::size_t at = 0;
  for (const PrefixStep& step : result.path) {
    EXPECT_EQ(step.from_prefix, at);
    const PathQuery& v = views[step.view_index];
    if (step.direction == +1) {
      EXPECT_TRUE(v.MatchesAt(q, at));
      at += v.Length();
    } else {
      ASSERT_GE(at, v.Length());
      EXPECT_TRUE(v.MatchesAt(q, at - v.Length()));
      at -= v.Length();
    }
    EXPECT_EQ(step.to_prefix, at);
  }
  EXPECT_EQ(at, q.Length());
}

TEST(PathDeterminacyTest, SimpleNegatives) {
  PathFixture fx;
  // q = AB with only A: prefix 2 unreachable.
  EXPECT_FALSE(DecidePathDeterminacy(fx.Q("AB"), {fx.Q("A")},
                                     /*want_counterexample=*/false)
                   .determined);
  // Views that do not match anywhere.
  EXPECT_FALSE(DecidePathDeterminacy(fx.Q("AB"), {fx.Q("BA")},
                                     /*want_counterexample=*/false)
                   .determined);
  // No views at all: only the empty query is determined.
  EXPECT_FALSE(
      DecidePathDeterminacy(fx.Q("A"), {}, false).determined);
  EXPECT_TRUE(DecidePathDeterminacy(fx.Q(""), {}, false).determined);
}

TEST(PathDeterminacyTest, WholeQueryAsViewIsDetermined) {
  PathFixture fx;
  EXPECT_TRUE(
      DecidePathDeterminacy(fx.Q("ABA"), {fx.Q("ABA")}, false).determined);
}

TEST(PathDeterminacyTest, BackwardStepsNeeded) {
  // q = A, V = {AB, B}: ε →AB... AB is not a prefix-aligned match inside
  // q = A... use q = A, V = {AB, B}: forward ε→? AB doesn't match at 0
  // inside A. Instead q = AB..., use the classic: q = A, views {AAB, AB}?
  // Simplest genuine backward case: q = A, V = {AB, B} fails; take
  // q = AB, V = {ABB, B}: ABB doesn't fit in q. Use prefix graph over
  // prefixes of q only: q = AA, V = {AAA, A}: ε→(A)→1, 1→(A)→2: forward
  // only. For a real backward move: q = B, V = {AB, A} has no fit either
  // since matches must lie inside q. Backward edges arise when a view
  // overshoots and returns: q = ABCD, V = {ABC, BC, BCD} (Example 13)
  // where step 2 walks 3 → 1 backwards. Assert that here.
  PathFixture fx;
  PathQuery q = fx.Q("ABCD");
  std::vector<PathQuery> views = {fx.Q("ABC"), fx.Q("BC"), fx.Q("BCD")};
  PathDeterminacyResult result = DecidePathDeterminacy(q, views);
  ASSERT_TRUE(result.determined);
  bool has_backward = false;
  for (const PrefixStep& step : result.path) {
    if (step.direction == -1) has_backward = true;
  }
  EXPECT_TRUE(has_backward);
}

TEST(QWalkTest, Example13WalkAndReductions) {
  PathFixture fx;
  PathQuery q = fx.Q("ABCD");
  std::vector<PathQuery> views = {fx.Q("ABC"), fx.Q("BC"), fx.Q("BCD")};
  PathDeterminacyResult result = DecidePathDeterminacy(q, views);
  ASSERT_TRUE(result.determined);
  SignedWord walk = BuildQWalk(q, views, result.path);
  EXPECT_TRUE(IsQWalk(walk, q));
  // Lemma 15: both reduction disciplines reach exactly q.
  SignedWord expected = ToSignedWord(q);
  EXPECT_EQ(ReduceToFixpointPlusMinus(walk).back(), expected);
  EXPECT_EQ(ReduceToFixpointMinusPlus(walk).back(), expected);
}

TEST(QWalkTest, HandbuiltWalkMatchesPaperExample) {
  // (ABC)(BC)^-1(BCD) = A B C C^-1 B^-1 B C D.
  PathFixture fx;
  PathQuery q = fx.Q("ABCD");
  RelationId a = *fx.schema->Find("A");
  RelationId b = *fx.schema->Find("B");
  RelationId c = *fx.schema->Find("C");
  RelationId d = *fx.schema->Find("D");
  SignedWord walk = {{a, +1}, {b, +1}, {c, +1}, {c, -1},
                     {b, -1}, {b, +1}, {c, +1}, {d, +1}};
  EXPECT_TRUE(IsQWalk(walk, q));
  EXPECT_EQ(SignedWordToString(walk, *fx.schema), "A.B.C.C^-1.B^-1.B.C.D");
  EXPECT_EQ(ReduceToFixpointPlusMinus(walk).back(), ToSignedWord(q));
}

TEST(QWalkTest, RejectsNonWalks) {
  PathFixture fx;
  PathQuery q = fx.Q("AB");
  RelationId a = *fx.schema->Find("A");
  RelationId b = *fx.schema->Find("B");
  // Wrong letter for the position.
  EXPECT_FALSE(IsQWalk({{b, +1}, {a, +1}}, q));
  // Dips below zero.
  EXPECT_FALSE(IsQWalk({{a, -1}, {a, +1}, {a, +1}, {b, +1}}, q));
  // Ends short of |q|.
  EXPECT_FALSE(IsQWalk({{a, +1}}, q));
  // Exceeds |q|.
  EXPECT_FALSE(IsQWalk({{a, +1}, {b, +1}, {b, +1}}, q));
  // The identity walk is fine.
  EXPECT_TRUE(IsQWalk({{a, +1}, {b, +1}}, q));
}

TEST(MatrixSemanticsTest, Fact18MatchesDirectCounting) {
  PathFixture fx;
  PathQuery q = fx.Q("AB");
  Rng rng(55);
  for (int iter = 0; iter < 10; ++iter) {
    Structure d = RandomStructure(fx.schema, 1 + rng.Below(4), &rng);
    CountMatrix m = WordMatrix(d, q);
    // Cross-validate entries against explicit two-hop counting.
    RelationId a = *fx.schema->Find("A");
    RelationId b = *fx.schema->Find("B");
    for (std::size_t i = 0; i < d.DomainSize(); ++i) {
      for (std::size_t j = 0; j < d.DomainSize(); ++j) {
        BigInt expected(0);
        for (std::size_t mid = 0; mid < d.DomainSize(); ++mid) {
          if (d.HasFact(a, {static_cast<Element>(i), static_cast<Element>(mid)}) &&
              d.HasFact(b, {static_cast<Element>(mid), static_cast<Element>(j)})) {
            expected += BigInt(1);
          }
        }
        EXPECT_EQ(m[i][j], expected);
      }
    }
  }
}

TEST(MatrixSemanticsTest, EmptyWordIsIdentity) {
  PathFixture fx;
  PathQuery eps = fx.Q("");
  Structure d(fx.schema, 3);
  CountMatrix m = WordMatrix(d, eps);
  EXPECT_EQ(m, IdentityCountMatrix(3));
  AnswerBag bag = EvaluatePathQuery(d, eps);
  EXPECT_EQ(bag.size(), 3u);  // The diagonal: x = y.
}

TEST(AppendixBTest, CounterexampleStructure) {
  PathFixture fx;
  PathQuery q = fx.Q("AB");
  std::vector<PathQuery> views = {fx.Q("A")};
  auto [d, d_prime] = BuildPathCounterexample(q, views);
  EXPECT_EQ(d.DomainSize(), 2 * (q.Length() + 1));
  EXPECT_EQ(d.DomainSize(), d_prime.DomainSize());
  // Views agree as answer bags; q does not.
  for (const PathQuery& v : views) {
    EXPECT_TRUE(
        AnswerBagsEqual(EvaluatePathQuery(d, v), EvaluatePathQuery(d_prime, v)));
  }
  EXPECT_FALSE(
      AnswerBagsEqual(EvaluatePathQuery(d, q), EvaluatePathQuery(d_prime, q)));
}

TEST(AppendixBTest, ThrowsWhenDetermined) {
  PathFixture fx;
  EXPECT_THROW(BuildPathCounterexample(fx.Q("A"), {fx.Q("A")}),
               std::logic_error);
}

// Exhaustive ground truth on small instances: for every pair of structures
// over a 2-element domain, "all views agree => q agrees" must match the
// graph-reachability verdict.
class PathGroundTruthTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathGroundTruthTest, DecisionMatchesExhaustiveCheck) {
  Rng rng(GetParam());
  auto schema = std::make_shared<Schema>();
  PathQuery seed_a = PathQuery::FromWord("AB", schema);  // Registers A, B.
  (void)seed_a;
  auto random_word = [&](std::size_t max_len) {
    std::string w;
    std::size_t len = rng.Below(max_len + 1);
    for (std::size_t i = 0; i < len; ++i) {
      w.push_back(rng.Chance(1, 2) ? 'A' : 'B');
    }
    return PathQuery::FromWord(w, schema);
  };
  std::vector<Structure> all;
  for (std::size_t n = 1; n <= 2; ++n) {
    EnumerateStructures(schema, n, [&](const Structure& s) {
      all.push_back(s);
      return true;
    });
  }
  for (int iter = 0; iter < 4; ++iter) {
    PathQuery q = random_word(4);
    if (q.Length() == 0) continue;
    std::vector<PathQuery> views;
    std::size_t num_views = 1 + rng.Below(3);
    for (std::size_t i = 0; i < num_views; ++i) {
      PathQuery v = random_word(3);
      if (v.Length() > 0) views.push_back(v);
    }
    if (views.empty()) continue;
    PathDeterminacyResult result = DecidePathDeterminacy(q, views);
    if (result.determined) {
      // No refuting pair may exist among same-domain small structures.
      for (const Structure& da : all) {
        for (const Structure& db : all) {
          if (da.DomainSize() != db.DomainSize()) continue;
          bool views_agree = true;
          for (const PathQuery& v : views) {
            if (!AnswerBagsEqual(EvaluatePathQuery(da, v),
                                 EvaluatePathQuery(db, v))) {
              views_agree = false;
              break;
            }
          }
          if (views_agree) {
            EXPECT_TRUE(AnswerBagsEqual(EvaluatePathQuery(da, q),
                                        EvaluatePathQuery(db, q)))
                << "determined instance refuted: q=" << q.ToString();
          }
        }
      }
    } else {
      ASSERT_TRUE(result.counterexample.has_value());
      const auto& [d, d_prime] = *result.counterexample;
      for (const PathQuery& v : views) {
        EXPECT_TRUE(AnswerBagsEqual(EvaluatePathQuery(d, v),
                                    EvaluatePathQuery(d_prime, v)))
            << "view " << v.ToString() << " differs on the counterexample";
      }
      EXPECT_FALSE(AnswerBagsEqual(EvaluatePathQuery(d, q),
                                   EvaluatePathQuery(d_prime, q)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathGroundTruthTest,
                         ::testing::Values(71, 72, 73, 74, 75, 76));

// Lemma 22/23 backbone: on random structures, the relation H_q computed via
// matrices equals H of any q-walk — checked through count matrices of the
// walk interpreted as products of incidence/"inverse" steps is beyond plain
// matrices; here we check the observable consequence used in Section 3.2:
// the equality of M^D_q across view-equal structures when determined.
TEST(PathTheorem1Test, DeterminedInstanceForcesEqualWordMatrices) {
  auto schema = std::make_shared<Schema>();
  PathQuery q = PathQuery::FromWord("AA", schema);
  std::vector<PathQuery> views = {PathQuery::FromWord("A", schema)};
  ASSERT_TRUE(DecidePathDeterminacy(q, views, false).determined);
  // For structures with equal view matrices, q matrices must be equal
  // (here trivially since M_AA = M_A · M_A).
  Rng rng(8);
  for (int iter = 0; iter < 6; ++iter) {
    Structure d = RandomStructure(schema, 3, &rng);
    Structure d2 = d;  // Same views by construction.
    EXPECT_EQ(WordMatrix(d, q), WordMatrix(d2, q));
  }
}

}  // namespace
}  // namespace bagdet
