// Governed execution and fault injection (util/exec_context.h,
// util/failpoint.h): deadlines, cooperative cancellation, memory budgets,
// and injected faults across the determinacy pipeline.
//
// The contract under test, end to end:
//   * a tripped limit surfaces as a typed ExecStatus (never an escaping
//     exception) naming the kernel that hit it;
//   * the unwind is clean — shared StructurePool/HomCache state stays
//     consistent and subsequent requests are unaffected;
//   * with no limits, governed runs are bit-identical to ungoverned ones;
//   * deadline overshoot is bounded by the checkpoint sampling interval,
//     not by the kernel's total runtime.
//
// Fault-injection cases need a -DBAGDET_FAILPOINTS=ON build and GTEST_SKIP
// otherwise. BAGDET_DIFF_ITERS scales the rerun-identical loops (nightly
// runs it at 10).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/basis.h"
#include "core/determinacy.h"
#include "core/distinguisher.h"
#include "hom/hom.h"
#include "hom/hom_cache.h"
#include "linalg/gauss.h"
#include "linalg/modular_solve.h"
#include "query/cq.h"
#include "structs/structure.h"
#include "util/bigint.h"
#include "util/exec_context.h"
#include "util/failpoint.h"

namespace bagdet {
namespace {

int DiffIters() {
  const char* env = std::getenv("BAGDET_DIFF_ITERS");
  if (env == nullptr) return 1;
  int iters = std::atoi(env);
  return iters > 0 ? iters : 1;
}

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

/// Cycle with both edge directions — bipartite iff n is even.
Structure SymmetricCycle(const std::shared_ptr<Schema>& schema,
                         std::size_t n) {
  Structure s(schema);
  for (Element i = 0; i < n; ++i) {
    const Element j = static_cast<Element>((i + 1) % n);
    s.AddFact(0, {i, j});
    s.AddFact(0, {j, i});
  }
  return s;
}

/// Complete digraph with loops on n elements.
Structure FullDigraph(const std::shared_ptr<Schema>& schema, std::size_t n) {
  Structure s(schema);
  for (Element i = 0; i < n; ++i) {
    for (Element j = 0; j < n; ++j) s.AddFact(0, {i, j});
  }
  return s;
}

/// Adversarial instance: deciding view relevance runs
/// ExistsHom(C_odd_sym, C4_sym) — a no-instance whose backtracking proof
/// is exponential in the odd cycle's length (~2^n nodes; minutes-long
/// ungoverned at n = 35). Only ever run governed.
struct AdversarialInstance {
  ConjunctiveQuery query;
  std::vector<ConjunctiveQuery> views;
};

AdversarialInstance MakeAdversarial(std::size_t odd_len) {
  auto schema = GraphSchema();
  AdversarialInstance inst{
      BooleanQueryFromStructure("q", SymmetricCycle(schema, 4)), {}};
  inst.views.push_back(
      BooleanQueryFromStructure("v", SymmetricCycle(schema, odd_len)));
  return inst;
}

/// Small pipeline instance (same shape as bench_determinacy's): directed
/// cycles of lengths 1..k as components; the ramp view makes it
/// undetermined so the whole counterexample path runs.
struct SmallInstance {
  ConjunctiveQuery query;
  std::vector<ConjunctiveQuery> views;
};

SmallInstance MakeUndetermined(std::size_t k) {
  auto schema = GraphSchema();
  std::vector<Structure> comps;
  for (std::size_t len = 1; len <= k; ++len) {
    Structure c(schema);
    for (Element i = 0; i < len; ++i) {
      c.AddFact(0, {i, static_cast<Element>((i + 1) % len)});
    }
    comps.push_back(std::move(c));
  }
  auto combine = [&](const std::vector<int>& mult) {
    Structure s(schema);
    for (std::size_t i = 0; i < comps.size(); ++i) {
      for (int m = 0; m < mult[i]; ++m) s = DisjointUnion(s, comps[i]);
    }
    return s;
  };
  SmallInstance inst{
      BooleanQueryFromStructure("q", combine(std::vector<int>(k, 1))), {}};
  std::vector<int> ramp(k);
  for (std::size_t i = 0; i < k; ++i) ramp[i] = static_cast<int>(i + 1);
  inst.views.push_back(BooleanQueryFromStructure("v", combine(ramp)));
  return inst;
}

class GovernedTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

// --- ExecContext unit behavior ---------------------------------------------

TEST_F(GovernedTest, UnlimitedContextNeverTrips) {
  ExecContext exec{ExecLimits{}};
  ExecStatus status;
  auto value = RunGoverned(exec, &status, [] {
    for (int i = 0; i < 100000; ++i) ExecCheckPoint("test.loop");
    return 42;
  });
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 42);
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(exec.tripped());
}

TEST_F(GovernedTest, DeadlineTripsBusyLoop) {
  ExecContext exec{ExecLimits{/*deadline_ms=*/20, /*max_memory_bytes=*/0}};
  ExecStatus status;
  auto value = RunGoverned(exec, &status, [] {
    for (;;) ExecCheckPoint("test.spin");
    return 0;  // Unreachable.
  });
  EXPECT_FALSE(value.has_value());
  EXPECT_EQ(status.code, ExecCode::kDeadlineExceeded);
  EXPECT_EQ(status.kernel, "test.spin");
  EXPECT_GE(status.elapsed_ms, 20.0);
}

TEST_F(GovernedTest, CancellationFromAnotherThread) {
  ExecContext exec{ExecLimits{}};
  std::atomic<bool> started{false};
  ExecStatus status;
  std::thread worker([&] {
    RunGoverned(exec, &status, [&] {
      started.store(true);
      for (;;) ExecCheckPoint("test.spin");
      return 0;
    });
  });
  while (!started.load()) std::this_thread::yield();
  exec.RequestCancel();
  worker.join();
  EXPECT_EQ(status.code, ExecCode::kCancelled);
  EXPECT_EQ(status.kernel, "test.spin");
}

TEST_F(GovernedTest, MemoryBudgetTripsOnCharge) {
  ExecContext exec{ExecLimits{/*deadline_ms=*/0, /*max_memory_bytes=*/1024}};
  ExecStatus status;
  auto value = RunGoverned(exec, &status, [&] {
    ScopedCharge mem("test.table");
    mem.Update(512);   // Within budget.
    mem.Update(256);   // Shrink: releases 256.
    mem.Update(2048);  // Past budget: trips.
    return 0;
  });
  EXPECT_FALSE(value.has_value());
  EXPECT_EQ(status.code, ExecCode::kResourceExhausted);
  EXPECT_EQ(status.kernel, "test.table");
  EXPECT_GT(status.bytes, 1024u);
  // ScopedCharge released its held bytes during the unwind: the context is
  // back to a zero balance and usable for accounting queries.
  EXPECT_EQ(exec.bytes_charged(), 0u);
}

TEST_F(GovernedTest, BadAllocFoldsIntoResourceExhausted) {
  ExecContext exec{ExecLimits{}};
  ExecStatus status;
  auto value = RunGoverned(exec, &status, []() -> int {
    throw std::bad_alloc();
  });
  EXPECT_FALSE(value.has_value());
  EXPECT_EQ(status.code, ExecCode::kResourceExhausted);
  EXPECT_EQ(status.kernel, "alloc");
}

TEST_F(GovernedTest, StatusToStringNamesEverything) {
  ExecContext exec{ExecLimits{/*deadline_ms=*/1, /*max_memory_bytes=*/0}};
  ExecStatus status;
  RunGoverned(exec, &status, [] {
    for (;;) ExecCheckPoint("hom.dp");
    return 0;
  });
  const std::string text = status.ToString();
  EXPECT_NE(text.find("deadline_exceeded"), std::string::npos) << text;
  EXPECT_NE(text.find("hom.dp"), std::string::npos) << text;
}

// --- Governed pipeline entry points ----------------------------------------

TEST_F(GovernedTest, DeadlineTripsAdversarialAnalyze) {
  // Ungoverned this instance takes minutes (the ExistsHom proof tree is
  // ~2^35 nodes); governed it must stop within the deadline plus the
  // checkpoint sampling slack, reporting the tripping kernel.
  AdversarialInstance inst = MakeAdversarial(35);
  ExecContext exec{ExecLimits{/*deadline_ms=*/50, /*max_memory_bytes=*/0}};
  GovernedAnalysis out = AnalyzeInstanceGoverned(inst.views, inst.query, exec);
  ASSERT_FALSE(out.analysis.has_value());
  EXPECT_EQ(out.status.code, ExecCode::kDeadlineExceeded);
  // The backtracking search checkpoints both at its nodes (hom.matcher)
  // and inside per-binding domain propagation (hom.domains) — either may
  // observe the deadline first.
  EXPECT_TRUE(out.status.kernel == "hom.matcher" ||
              out.status.kernel == "hom.domains")
      << out.status.kernel;
  // Overshoot bound: the sampler targets ~1ms between clock reads, so even
  // on a loaded CI host the trip lands well under 10x the deadline.
  EXPECT_LT(out.status.elapsed_ms, 500.0);
}

TEST_F(GovernedTest, CancellationStopsAdversarialAnalyze) {
  AdversarialInstance inst = MakeAdversarial(35);
  ExecContext exec{ExecLimits{}};
  GovernedAnalysis out;
  std::thread worker([&] {
    out = AnalyzeInstanceGoverned(inst.views, inst.query, exec);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  exec.RequestCancel();
  worker.join();
  ASSERT_FALSE(out.analysis.has_value());
  EXPECT_EQ(out.status.code, ExecCode::kCancelled);
}

TEST_F(GovernedTest, MemoryBudgetRejectsPoolAdmission) {
  // A budget below the smallest projected pool footprint: the first intern
  // is rejected before any shard state exists, and the typed status names
  // the admission-control kernel.
  SmallInstance inst = MakeUndetermined(3);
  ExecContext exec{ExecLimits{/*deadline_ms=*/0, /*max_memory_bytes=*/64}};
  GovernedAnalysis out = AnalyzeInstanceGoverned(inst.views, inst.query, exec);
  ASSERT_FALSE(out.analysis.has_value());
  EXPECT_EQ(out.status.code, ExecCode::kResourceExhausted);
  EXPECT_EQ(out.status.kernel, "pool.intern");
  EXPECT_GT(out.status.bytes, 64u);
}

TEST_F(GovernedTest, GovernedUnlimitedBitIdenticalToUngoverned) {
  SmallInstance inst = MakeUndetermined(3);
  DeterminacyResult baseline = DecideBagDeterminacy(inst.views, inst.query);
  ASSERT_FALSE(baseline.determined);
  ASSERT_TRUE(baseline.counterexample.has_value());
  const std::string baseline_summary = baseline.Summary();
  for (int iter = 0; iter < DiffIters(); ++iter) {
    ExecContext exec{ExecLimits{}};
    GovernedDecision governed = DecideBagDeterminacyGoverned(
        inst.views, inst.query, DeterminacyOptions(), exec);
    ASSERT_TRUE(governed.status.ok());
    ASSERT_TRUE(governed.result.has_value());
    EXPECT_EQ(governed.result->Summary(), baseline_summary);
    EXPECT_TRUE(governed.result->exec_status.ok());
  }
}

TEST_F(GovernedTest, TrippedRequestLeavesNextRequestUnaffected) {
  // A deadline trip on one request must not poison the process for the
  // next (fresh context, fresh analysis): the follow-up decision on a
  // normal instance matches its ungoverned baseline exactly.
  AdversarialInstance bad = MakeAdversarial(35);
  ExecContext doomed{ExecLimits{/*deadline_ms=*/30, /*max_memory_bytes=*/0}};
  GovernedAnalysis tripped =
      AnalyzeInstanceGoverned(bad.views, bad.query, doomed);
  ASSERT_FALSE(tripped.analysis.has_value());

  SmallInstance good = MakeUndetermined(3);
  DeterminacyResult baseline = DecideBagDeterminacy(good.views, good.query);
  ExecContext fresh{ExecLimits{}};
  GovernedDecision after = DecideBagDeterminacyGoverned(
      good.views, good.query, DeterminacyOptions(), fresh);
  ASSERT_TRUE(after.result.has_value());
  EXPECT_EQ(after.result->Summary(), baseline.Summary());
}

// --- Typed distinguisher/basis outcomes (no exceptions on bound
// exhaustion) ----------------------------------------------------------------

/// A "tier-0 blind" pair: weakly connected, non-isomorphic digraphs on 4
/// elements whose cheap candidate counts coincide —
///   hom(a,a) = hom(b,a) = 8  and  hom(a,b) = hom(b,b) = 20
/// (found by exhaustive search over all 4-vertex digraphs), so neither
/// input distinguishes the pair and only the subset sweep or the random
/// tier can. Crippling those bounds makes kBoundsExhausted genuinely
/// reachable; default bounds sweep the complete induced-substructure
/// family, which is guaranteed to separate them.
Structure TierZeroBlindA(const std::shared_ptr<Schema>& schema) {
  Structure s(schema);
  const std::pair<Element, Element> edges[] = {{0, 0}, {0, 1}, {0, 3},
                                               {1, 1}, {1, 2}, {2, 0}};
  for (const auto& [u, v] : edges) s.AddFact(0, {u, v});
  return s;
}

Structure TierZeroBlindB(const std::shared_ptr<Schema>& schema) {
  Structure s(schema);
  const std::pair<Element, Element> edges[] = {{0, 0}, {0, 2}, {0, 3},
                                               {1, 3}, {2, 0}, {2, 2}};
  for (const auto& [u, v] : edges) s.AddFact(0, {u, v});
  return s;
}

DistinguisherOptions CrippledDistinguisher() {
  DistinguisherOptions tight;
  tight.max_subset_domain = 2;  // Both inputs (domain 4) skip the sweep.
  tight.random_attempts = 1;
  // Domain-1 candidates (a loop or an empty point) count 1/1 resp. 0/0
  // against both inputs — the random tier cannot separate the pair either.
  tight.max_random_domain = 1;
  return tight;
}

TEST_F(GovernedTest, DistinguisherBoundsExhaustionIsTyped) {
  // Tier-0 blind pair + crippled sweep/random tiers: SearchDistinguisher
  // reports kBoundsExhausted; the legacy wrapper still throws.
  auto schema = GraphSchema();
  Structure a = TierZeroBlindA(schema);
  Structure b = TierZeroBlindB(schema);
  ASSERT_EQ(CountHoms(a, a), CountHoms(b, a));  // Tier 0 really is blind.
  ASSERT_EQ(CountHoms(a, b), CountHoms(b, b));
  DistinguisherOptions tight = CrippledDistinguisher();
  DistinguisherSearch search = SearchDistinguisher(a, b, tight);
  EXPECT_EQ(search.outcome, DistinguisherOutcome::kBoundsExhausted);
  EXPECT_FALSE(search.distinguisher.has_value());
  EXPECT_THROW(FindDistinguisher(a, b, tight), std::runtime_error);
  // Default bounds admit the complete sweep and succeed on the same pair.
  DistinguisherSearch wide = SearchDistinguisher(a, b, DistinguisherOptions());
  EXPECT_EQ(wide.outcome, DistinguisherOutcome::kFound);
  ASSERT_TRUE(wide.distinguisher.has_value());
  EXPECT_NE(CountHoms(a, *wide.distinguisher),
            CountHoms(b, *wide.distinguisher));
}

TEST_F(GovernedTest, DecideSurvivesDistinguisherExhaustion) {
  // The tier-0 blind pair as the two basis components of an undetermined
  // instance, under a crippled distinguisher: the verdict (NOT determined)
  // still comes back, no exception escapes, and the missing certificate is
  // explained by exec_status.
  auto schema = GraphSchema();
  Structure a = TierZeroBlindA(schema);
  Structure b = TierZeroBlindB(schema);
  ConjunctiveQuery query = BooleanQueryFromStructure("q", DisjointUnion(a, b));
  std::vector<ConjunctiveQuery> views;
  views.push_back(BooleanQueryFromStructure(
      "v", DisjointUnion(DisjointUnion(a, b), b)));  // Vector (1,2) vs (1,1).
  DeterminacyOptions options;
  options.distinguisher = CrippledDistinguisher();
  DeterminacyResult result = DecideBagDeterminacy(views, query, options);
  EXPECT_FALSE(result.determined);
  EXPECT_FALSE(result.counterexample.has_value());
  EXPECT_EQ(result.exec_status.code, ExecCode::kResourceExhausted);
  EXPECT_EQ(result.exec_status.kernel, "distinguisher");
  EXPECT_NE(result.Summary().find("Counterexample unavailable"),
            std::string::npos);
  // TryBuildGoodBasis reports the same typed outcome directly.
  GoodBasisOutcome basis =
      TryBuildGoodBasis(result.analysis, options.distinguisher);
  EXPECT_FALSE(basis.basis.has_value());
  EXPECT_EQ(basis.status.code, ExecCode::kResourceExhausted);
  // With default bounds the same instance yields a verified certificate.
  DeterminacyResult healthy = DecideBagDeterminacy(views, query);
  EXPECT_FALSE(healthy.determined);
  ASSERT_TRUE(healthy.counterexample.has_value());
  EXPECT_TRUE(healthy.exec_status.ok());
}

// --- Governed modular driver -------------------------------------------------

TEST_F(GovernedTest, GovernedModularRrefMatchesExact) {
  Mat m(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      m.At(i, j) = Rational(BigInt::Pow(BigInt(3), 20 + i * 4 + j) +
                            BigInt(static_cast<std::int64_t>(i * j + 1)));
    }
  }
  ExecContext exec{ExecLimits{}};
  GovernedRref governed = TryModularRrefGoverned(m, exec);
  ASSERT_TRUE(governed.status.ok());
  ASSERT_TRUE(governed.rref.has_value());
  Rref exact = ReduceToRrefExact(m);
  EXPECT_EQ(governed.rref->matrix, exact.matrix);
  EXPECT_EQ(governed.rref->rank, exact.rank);
}

// --- Failpoint registry ------------------------------------------------------

TEST_F(GovernedTest, RegistryCountsAndDisarms) {
  // The registry itself is always compiled; only the in-kernel hooks are
  // build-gated. Direct Evaluate calls exercise trigger logic everywhere.
  failpoint::Config off;
  off.action = failpoint::Action::kOff;
  failpoint::Arm("test/site", off);
  for (int i = 0; i < 5; ++i) failpoint::Evaluate("test/site");
  EXPECT_EQ(failpoint::HitCount("test/site"), 5u);
  EXPECT_EQ(failpoint::ArmedNames(), std::vector<std::string>{"test/site"});
  failpoint::Evaluate("test/unarmed");  // No-op.
  EXPECT_EQ(failpoint::HitCount("test/unarmed"), 0u);
  failpoint::Disarm("test/site");
  EXPECT_TRUE(failpoint::ArmedNames().empty());
  failpoint::Evaluate("test/site");
  EXPECT_EQ(failpoint::HitCount("test/site"), 0u);
}

TEST_F(GovernedTest, RegistryNthHitTrigger) {
  failpoint::Config cfg;
  cfg.action = failpoint::Action::kBadAlloc;
  cfg.hit_on = 3;
  failpoint::Arm("test/nth", cfg);
  EXPECT_NO_THROW(failpoint::Evaluate("test/nth"));
  EXPECT_NO_THROW(failpoint::Evaluate("test/nth"));
  EXPECT_THROW(failpoint::Evaluate("test/nth"), std::bad_alloc);
  EXPECT_NO_THROW(failpoint::Evaluate("test/nth"));  // Exactly once.
  // Re-arming resets the hit counter.
  failpoint::Arm("test/nth", cfg);
  EXPECT_NO_THROW(failpoint::Evaluate("test/nth"));
  EXPECT_EQ(failpoint::HitCount("test/nth"), 1u);
}

TEST_F(GovernedTest, RegistryProbabilisticTriggerIsSeeded) {
  failpoint::Config cfg;
  cfg.action = failpoint::Action::kBadAlloc;
  cfg.probability = 0.5;
  cfg.seed = 7;
  auto fire_pattern = [&] {
    failpoint::Arm("test/coin", cfg);
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      try {
        failpoint::Evaluate("test/coin");
        pattern += '.';
      } catch (const std::bad_alloc&) {
        pattern += 'X';
      }
    }
    return pattern;
  };
  const std::string first = fire_pattern();
  EXPECT_EQ(fire_pattern(), first);  // Deterministic for a fixed seed.
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
  // Cancel without a governing context is a no-op by design.
  failpoint::Config cancel;
  cancel.action = failpoint::Action::kCancel;
  failpoint::Arm("test/cancel", cancel);
  EXPECT_NO_THROW(failpoint::Evaluate("test/cancel"));
}

// --- Injected faults across the pipeline (BAGDET_FAILPOINTS builds) ---------

TEST_F(GovernedTest, InjectedCancelMidDp) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "requires -DBAGDET_FAILPOINTS=ON";
  }
  auto schema = GraphSchema();
  Structure from = SymmetricCycle(schema, 5);
  Structure to = FullDigraph(schema, 5);
  const BigInt baseline = CountHoms(from, to);
  for (int iter = 0; iter < DiffIters(); ++iter) {
    failpoint::Config cfg;
    cfg.action = failpoint::Action::kCancel;
    cfg.hit_on = 1;
    failpoint::Arm("hom/dp_step", cfg);
    ExecContext exec{ExecLimits{}};
    ExecStatus status;
    auto value = RunGoverned(exec, &status,
                             [&] { return CountHoms(from, to); });
    EXPECT_FALSE(value.has_value());
    EXPECT_EQ(status.code, ExecCode::kCancelled);
    failpoint::DisarmAll();
    // Clean unwind: the disarmed rerun is bit-identical.
    EXPECT_EQ(CountHoms(from, to), baseline);
  }
}

TEST_F(GovernedTest, InjectedCancelMidCanonicalSearch) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "requires -DBAGDET_FAILPOINTS=ON";
  }
  // Query bodies memoize their canonical data at construction (structure.h:
  // canonical_) and component interning reuses those certificates, so the
  // only canonical searches under the governed scope are for *fresh*
  // structures — the distinguisher's sweep candidates. The tier-0 blind
  // pair forces that sweep: its candidates (domain <= 4, under the caching
  // cutoff) are canonicalized mid-decide, which is where the injected
  // cancel lands.
  auto schema = GraphSchema();
  Structure a = TierZeroBlindA(schema);
  Structure b = TierZeroBlindB(schema);
  ConjunctiveQuery query = BooleanQueryFromStructure("q", DisjointUnion(a, b));
  std::vector<ConjunctiveQuery> views;
  views.push_back(
      BooleanQueryFromStructure("v", DisjointUnion(DisjointUnion(a, b), b)));
  DeterminacyResult baseline = DecideBagDeterminacy(views, query);
  ASSERT_TRUE(baseline.counterexample.has_value());
  failpoint::Config cfg;
  cfg.action = failpoint::Action::kCancel;
  cfg.hit_on = 1;
  failpoint::Arm("canonical/branch", cfg);
  ExecContext exec{ExecLimits{}};
  GovernedDecision out =
      DecideBagDeterminacyGoverned(views, query, DeterminacyOptions(), exec);
  ASSERT_FALSE(out.result.has_value());
  EXPECT_EQ(out.status.code, ExecCode::kCancelled);
  EXPECT_GE(failpoint::HitCount("canonical/branch"), 1u);
  failpoint::DisarmAll();
  ExecContext fresh{ExecLimits{}};
  GovernedDecision rerun =
      DecideBagDeterminacyGoverned(views, query, DeterminacyOptions(), fresh);
  ASSERT_TRUE(rerun.result.has_value());
  EXPECT_EQ(rerun.result->Summary(), baseline.Summary());
}

TEST_F(GovernedTest, InjectedCancelMidCrtFold) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "requires -DBAGDET_FAILPOINTS=ON";
  }
  Mat m(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      m.At(i, j) = Rational(BigInt::Pow(BigInt(5), 30 + i * 4 + j) +
                            BigInt(static_cast<std::int64_t>(i + j)));
    }
  }
  const Rref exact = ReduceToRrefExact(m);
  failpoint::Config cfg;
  cfg.action = failpoint::Action::kCancel;
  cfg.hit_on = 1;
  failpoint::Arm("modular/crt_fold", cfg);
  ExecContext exec{ExecLimits{}};
  GovernedRref tripped = TryModularRrefGoverned(m, exec);
  EXPECT_FALSE(tripped.rref.has_value());
  EXPECT_EQ(tripped.status.code, ExecCode::kCancelled);
  failpoint::DisarmAll();
  ExecContext fresh{ExecLimits{}};
  GovernedRref rerun = TryModularRrefGoverned(m, fresh);
  ASSERT_TRUE(rerun.status.ok());
  ASSERT_TRUE(rerun.rref.has_value());
  EXPECT_EQ(rerun.rref->matrix, exact.matrix);
}

TEST_F(GovernedTest, InjectedAllocFailureInDpTable) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "requires -DBAGDET_FAILPOINTS=ON";
  }
  auto schema = GraphSchema();
  // C5 -> K5 keeps two live variables, so the DP table reaches 25 entries
  // and must grow past the initial 16 slots — the injection site.
  Structure from = SymmetricCycle(schema, 5);
  Structure to = FullDigraph(schema, 5);
  const BigInt baseline = CountHoms(from, to);
  failpoint::Config cfg;
  cfg.action = failpoint::Action::kBadAlloc;
  cfg.hit_on = 1;
  failpoint::Arm("hom/dp_table_grow", cfg);
  ExecContext exec{ExecLimits{}};
  ExecStatus status;
  auto value =
      RunGoverned(exec, &status, [&] { return CountHoms(from, to); });
  EXPECT_FALSE(value.has_value());
  EXPECT_EQ(status.code, ExecCode::kResourceExhausted);
  failpoint::DisarmAll();
  EXPECT_EQ(CountHoms(from, to), baseline);
}

TEST_F(GovernedTest, InjectedAllocFailureInBigInt) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "requires -DBAGDET_FAILPOINTS=ON";
  }
  failpoint::Config cfg;
  cfg.action = failpoint::Action::kBadAlloc;
  cfg.hit_on = 1;
  failpoint::Arm("bigint/alloc", cfg);
  ExecContext exec{ExecLimits{}};
  ExecStatus status;
  auto value = RunGoverned(exec, &status, [] {
    // Forces a limb spill (> 2 limbs) — the injection site.
    return BigInt::Pow(BigInt(2), 300);
  });
  EXPECT_FALSE(value.has_value());
  EXPECT_EQ(status.code, ExecCode::kResourceExhausted);
  failpoint::DisarmAll();
  EXPECT_EQ(BigInt::Pow(BigInt(2), 300),
            BigInt::Pow(BigInt(2), 150) * BigInt::Pow(BigInt(2), 150));
}

TEST_F(GovernedTest, InjectedAllocFailureLeavesHomCacheConsistent) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "requires -DBAGDET_FAILPOINTS=ON";
  }
  auto schema = GraphSchema();
  Structure from = SymmetricCycle(schema, 3);
  Structure to = FullDigraph(schema, 3);
  const BigInt expected = CountHoms(from, to);
  HomCache cache;
  failpoint::Config cfg;
  cfg.action = failpoint::Action::kBadAlloc;
  cfg.hit_on = 1;
  failpoint::Arm("homcache/insert", cfg);
  EXPECT_THROW(cache.Count(from, to), std::bad_alloc);
  failpoint::DisarmAll();
  // The aborted insert left the shard untouched: the same cache serves the
  // same pair correctly (recomputed, then memoized).
  EXPECT_EQ(cache.Count(from, to), expected);
  EXPECT_EQ(cache.Count(from, to), expected);  // Now a cache hit.
  EXPECT_GE(cache.stats().hits, 1u);
}

TEST_F(GovernedTest, InjectedFaultMidDomainSplit) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "requires -DBAGDET_FAILPOINTS=ON";
  }
  // Force the parallel single-count split (threshold 0, 4 lanes) so the
  // hom/domain_split site fires inside the per-chunk workers; both fault
  // flavors must unwind cleanly through the ThreadPool fan-in and leave a
  // disarmed rerun bit-identical.
  auto schema = GraphSchema();
  Structure from = SymmetricCycle(schema, 5);
  Structure to = FullDigraph(schema, 5);
  DpOptions split;
  split.num_threads = 4;
  split.parallel_split_min_work = 0;
  split.domain_min_work = 0;  // Domains regardless of instance size.
  const BigInt baseline = CountHoms(from, to);
  ASSERT_EQ(CountHoms(from, to, split), baseline);
  for (int iter = 0; iter < DiffIters(); ++iter) {
    // Injected cancel mid-split → governed trip, kCancelled.
    failpoint::Config cancel;
    cancel.action = failpoint::Action::kCancel;
    cancel.hit_on = 2;  // Second chunk: the fan-out is already running.
    failpoint::Arm("hom/domain_split", cancel);
    ExecContext exec{ExecLimits{}};
    ExecStatus status;
    auto value = RunGoverned(exec, &status,
                             [&] { return CountHoms(from, to, split); });
    EXPECT_FALSE(value.has_value());
    EXPECT_EQ(status.code, ExecCode::kCancelled);
    EXPECT_GE(failpoint::HitCount("hom/domain_split"), 2u);
    failpoint::DisarmAll();
    EXPECT_EQ(CountHoms(from, to, split), baseline);
    // Injected allocation failure mid-split → kResourceExhausted.
    failpoint::Config oom;
    oom.action = failpoint::Action::kBadAlloc;
    oom.hit_on = 1;
    failpoint::Arm("hom/domain_split", oom);
    ExecContext exec2{ExecLimits{}};
    ExecStatus status2;
    auto value2 = RunGoverned(exec2, &status2,
                              [&] { return CountHoms(from, to, split); });
    EXPECT_FALSE(value2.has_value());
    EXPECT_EQ(status2.code, ExecCode::kResourceExhausted);
    failpoint::DisarmAll();
    // Clean unwind: the split rerun still matches the serial engine.
    EXPECT_EQ(CountHoms(from, to, split), baseline);
  }
}

TEST_F(GovernedTest, InjectedCancelMidDecidePipeline) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "requires -DBAGDET_FAILPOINTS=ON";
  }
  SmallInstance inst = MakeUndetermined(3);
  DeterminacyResult baseline = DecideBagDeterminacy(inst.views, inst.query);
  const std::string baseline_summary = baseline.Summary();
  for (int iter = 0; iter < DiffIters(); ++iter) {
    failpoint::Config cfg;
    cfg.action = failpoint::Action::kCancel;
    cfg.hit_on = 5;  // Deep enough that real pipeline work is in flight.
    failpoint::Arm("hom/matcher", cfg);
    ExecContext exec{ExecLimits{}};
    GovernedDecision tripped = DecideBagDeterminacyGoverned(
        inst.views, inst.query, DeterminacyOptions(), exec);
    EXPECT_FALSE(tripped.result.has_value());
    EXPECT_EQ(tripped.status.code, ExecCode::kCancelled);
    failpoint::DisarmAll();
    ExecContext fresh{ExecLimits{}};
    GovernedDecision rerun = DecideBagDeterminacyGoverned(
        inst.views, inst.query, DeterminacyOptions(), fresh);
    ASSERT_TRUE(rerun.result.has_value());
    EXPECT_EQ(rerun.result->Summary(), baseline_summary);
  }
}

}  // namespace
}  // namespace bagdet
