// Tuning-profile subsystem (util/tuning.h): strict typed parsing with
// defaults fallback, env-var round-trip, and the load-bearing contract —
// every knob is dispatch-only, so an adversarial profile that forces every
// gate on or off yields bit-identical results from the hom counter, the
// modular linalg drivers, and the end-to-end determinacy decision.

#include "util/tuning.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/determinacy.h"
#include "linalg/gauss.h"
#include "linalg/matrix.h"
#include "query/cq.h"
#include "structs/generator.h"
#include "structs/structure.h"
#include "hom/hom.h"
#include "util/rng.h"

#include "test_matrices.h"

namespace bagdet {
namespace {

/// Every test mutates process-global state (the active profile, the env
/// var); restore the stock configuration on both sides so test order can
/// never matter.
class TuningTest : public ::testing::Test {
 protected:
  void SetUp() override { Restore(); }
  void TearDown() override { Restore(); }

  static void Restore() {
    ::unsetenv("BAGDET_TUNING_PROFILE");
    ASSERT_FALSE(SetTuningProfile(TuningProfile{}).has_value());
  }

  /// Writes `text` to a fresh temp file and returns its path.
  static std::string WriteTempProfile(const std::string& text,
                                      const char* tag) {
    std::string path = ::testing::TempDir() + "bagdet_tuning_" + tag + ".txt";
    std::ofstream out(path, std::ios::trunc);
    out << text;
    EXPECT_TRUE(out.good());
    return path;
  }
};

TEST_F(TuningTest, DefaultsMatchSeedConstants) {
  // The stock profile IS the pre-profile constant table; if one of these
  // moves, pre-PR behavior is no longer the no-profile behavior.
  const TuningProfile& t = Tuning();
  EXPECT_EQ(t.inverse_modular_min_dim, 4u);
  EXPECT_EQ(t.inverse_modular_always_dim, 9u);
  EXPECT_EQ(t.inverse_modular_entry_bits, 32u);
  EXPECT_EQ(t.dixon_min_dim, 64u);
  EXPECT_EQ(t.modular_num_threads, 0u);
  EXPECT_EQ(t.order_search_max_atoms, 12u);
  EXPECT_EQ(t.domain_min_work, static_cast<std::uint64_t>(1) << 12);
  EXPECT_EQ(t.parallel_split_min_work, static_cast<std::uint64_t>(1) << 16);
  EXPECT_EQ(t.parallel_split_chunks_per_lane, 1u);
  EXPECT_EQ(t.hom_num_threads, 0u);
  EXPECT_EQ(t.hom_cache_max_entries, static_cast<std::size_t>(1) << 20);
  EXPECT_EQ(t.hom_cache_max_bytes, 256ull << 20);
  EXPECT_EQ(t.serve_pool_max_classes, static_cast<std::size_t>(1) << 16);
  EXPECT_EQ(t.serve_pool_max_bytes, 256ull << 20);
  EXPECT_EQ(t.num_threads, 0u);
}

TEST_F(TuningTest, SerializeParseRoundTrip) {
  TuningProfile p;
  p.dixon_min_dim = 48;
  p.order_search_max_atoms = 9;
  p.domain_min_work = 123456;
  p.parallel_split_chunks_per_lane = 4;
  p.num_threads = 16;
  TuningError error{};
  std::optional<TuningProfile> parsed =
      ParseTuningProfile(SerializeTuningProfile(p), &error);
  ASSERT_TRUE(parsed.has_value()) << error.ToString();
  EXPECT_EQ(SerializeTuningProfile(*parsed), SerializeTuningProfile(p));
}

TEST_F(TuningTest, CommentsWhitespaceAndPartialProfilesParse) {
  TuningError error{};
  std::optional<TuningProfile> parsed = ParseTuningProfile(
      "# calibrated on host-x\n"
      "\n"
      "  dixon_min_dim =  32 \n"
      "\t# trailing comment line\n",
      &error);
  ASSERT_TRUE(parsed.has_value()) << error.ToString();
  EXPECT_EQ(parsed->dixon_min_dim, 32u);
  // Unmentioned keys keep their defaults.
  EXPECT_EQ(parsed->order_search_max_atoms, 12u);
}

TEST_F(TuningTest, MalformedLinesAreTypedSyntaxErrors) {
  const char* cases[] = {
      "dixon_min_dim\n",               // No '='.
      "dixon_min_dim = \n",            // Empty value.
      "dixon_min_dim = abc\n",         // Not a number.
      "dixon_min_dim = -3\n",          // Signed.
      "dixon_min_dim = 0x10\n",        // Hex.
      "dixon_min_dim = 99999999999999999999999999\n",  // u64 overflow.
  };
  for (const char* text : cases) {
    TuningError error{};
    EXPECT_FALSE(ParseTuningProfile(text, &error).has_value()) << text;
    EXPECT_EQ(error.code, TuningErrorCode::kSyntaxError) << text;
    EXPECT_EQ(error.line, 1) << text;
  }
}

TEST_F(TuningTest, UnknownKeyIsTyped) {
  TuningError error{};
  EXPECT_FALSE(
      ParseTuningProfile("dixon_min_dim = 8\ndixon_mindim = 8\n", &error)
          .has_value());
  EXPECT_EQ(error.code, TuningErrorCode::kUnknownKey);
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("dixon_mindim"), std::string::npos);
}

TEST_F(TuningTest, OutOfRangeValuesAreTyped) {
  struct Case {
    const char* text;
    int line;
  };
  const Case cases[] = {
      {"order_search_max_atoms = 17\n", 1},      // Engine hard cap is 16.
      {"parallel_split_chunks_per_lane = 0\n", 1},
      {"hom_cache_max_entries = 0\n", 1},
      {"inverse_modular_entry_bits = 0\n", 1},
      {"num_threads = 100000\n", 1},
      // Cross-field constraint: reported against the whole file (line 0).
      {"inverse_modular_min_dim = 10\ninverse_modular_always_dim = 6\n", 0},
  };
  for (const Case& c : cases) {
    TuningError error{};
    EXPECT_FALSE(ParseTuningProfile(c.text, &error).has_value()) << c.text;
    EXPECT_EQ(error.code, TuningErrorCode::kOutOfRange) << c.text;
    EXPECT_EQ(error.line, c.line) << c.text;
  }
}

TEST_F(TuningTest, MissingFileIsIoErrorAndInvalidSetIsRejected) {
  TuningError error{};
  EXPECT_FALSE(LoadTuningProfile("/nonexistent/bagdet/profile", &error)
                   .has_value());
  EXPECT_EQ(error.code, TuningErrorCode::kIoError);

  TuningProfile bad;
  bad.parallel_split_chunks_per_lane = 0;
  std::optional<TuningError> rejected = SetTuningProfile(bad);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->code, TuningErrorCode::kOutOfRange);
  // The active profile is unchanged by a rejected set.
  EXPECT_EQ(Tuning().parallel_split_chunks_per_lane, 1u);
}

TEST_F(TuningTest, EnvVarRoundTrip) {
  TuningProfile p;
  p.dixon_min_dim = 24;
  p.order_search_max_atoms = 8;
  p.hom_cache_max_bytes = 1u << 20;
  const std::string path = WriteTempProfile(SerializeTuningProfile(p), "env");
  ASSERT_EQ(::setenv("BAGDET_TUNING_PROFILE", path.c_str(), 1), 0);
  EXPECT_FALSE(ReloadTuningFromEnv().has_value());
  EXPECT_EQ(Tuning().dixon_min_dim, 24u);
  EXPECT_EQ(Tuning().order_search_max_atoms, 8u);
  EXPECT_EQ(Tuning().hom_cache_max_bytes, 1u << 20);

  // Unset → defaults restored.
  ::unsetenv("BAGDET_TUNING_PROFILE");
  EXPECT_FALSE(ReloadTuningFromEnv().has_value());
  EXPECT_EQ(Tuning().dixon_min_dim, 64u);
}

TEST_F(TuningTest, BadEnvProfileFallsBackToDefaultsWithTypedError) {
  const std::string path =
      WriteTempProfile("order_search_max_atoms = banana\n", "bad");
  ASSERT_EQ(::setenv("BAGDET_TUNING_PROFILE", path.c_str(), 1), 0);
  std::optional<TuningError> error = ReloadTuningFromEnv();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, TuningErrorCode::kSyntaxError);
  // Fallback contract: stock dispatch, not a crash and not a half-applied
  // profile.
  EXPECT_EQ(Tuning().order_search_max_atoms, 12u);

  ASSERT_EQ(::setenv("BAGDET_TUNING_PROFILE", "/no/such/file", 1), 0);
  error = ReloadTuningFromEnv();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, TuningErrorCode::kIoError);
  EXPECT_EQ(Tuning().dixon_min_dim, 64u);
}

// --- Dispatch-only differential -------------------------------------------
//
// Two adversarial profiles bracketing the stock one: kAllFast forces every
// gated fast path on (modular from 1×1, Dixon always, domains + order
// search + splitting always, max oversubscription, starved cache), kAllSlow
// forces every gate off (exact-first inverse through n=2^20, CRT only, no
// order search, huge engage thresholds, serial hom). Results must be
// bit-identical across all three.

TuningProfile AllFastProfile() {
  TuningProfile p;
  p.inverse_modular_min_dim = 1;
  p.inverse_modular_always_dim = 1;
  p.inverse_modular_entry_bits = 1;
  p.dixon_min_dim = 1;            // Dixon path from n=1.
  p.order_search_max_atoms = 16;  // Engine hard cap.
  p.domain_min_work = 0;          // Always build domains.
  p.parallel_split_min_work = 0;  // Split whenever a second lane exists.
  p.parallel_split_chunks_per_lane = 64;
  p.hom_cache_max_entries = 1;    // Evict on every insert.
  p.hom_cache_max_bytes = 1;
  return p;
}

TuningProfile AllSlowProfile() {
  TuningProfile p;
  p.inverse_modular_min_dim = 1u << 20;  // Exact inverse always.
  p.inverse_modular_always_dim = 1u << 20;
  p.inverse_modular_entry_bits = 1u << 29;
  p.dixon_min_dim = std::numeric_limits<std::size_t>::max();  // CRT always.
  p.order_search_max_atoms = 0;   // Greedy order only.
  p.domain_min_work = 1ull << 40; // Domain layer never engages.
  p.parallel_split_min_work = 1ull << 40;
  p.modular_num_threads = 1;      // Serial fold.
  p.hom_num_threads = 1;
  return p;
}

TEST_F(TuningTest, ExtremeProfilesKeepHomCountsBitIdentical) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  Rng rng(20260808);
  std::vector<std::pair<Structure, Structure>> pairs;
  for (int i = 0; i < 6; ++i) {
    pairs.emplace_back(
        RandomConnectedStructure(schema, 2 + rng.Below(3), &rng, 2, 3),
        RandomStructure(schema, 3 + rng.Below(4), &rng, 2, 3));
  }
  std::vector<BigInt> baseline;
  for (const auto& [from, to] : pairs) baseline.push_back(CountHoms(from, to));
  for (const TuningProfile& p : {AllFastProfile(), AllSlowProfile()}) {
    ASSERT_FALSE(SetTuningProfile(p).has_value());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(CountHoms(pairs[i].first, pairs[i].second), baseline[i])
          << "pair " << i;
    }
  }
}

TEST_F(TuningTest, ExtremeProfilesKeepLinalgBitIdentical) {
  Rng rng(777);
  const Mat small = testmat::RandomIntMatrix(&rng, 5, 5, -9, 9);
  const Mat big = testmat::RandomBigMatrix(&rng, 6, 6, 4);  // 128-bit.
  const std::optional<Mat> inv_small_ref = InverseExact(small);
  const std::optional<Mat> inv_big_ref = InverseExact(big);
  const Rref rref_ref = ReduceToRrefExact(big);
  for (const TuningProfile& p :
       {TuningProfile{}, AllFastProfile(), AllSlowProfile()}) {
    ASSERT_FALSE(SetTuningProfile(p).has_value());
    EXPECT_EQ(Inverse(small) == inv_small_ref, true);
    EXPECT_EQ(Inverse(big) == inv_big_ref, true);
    const Rref rref = ReduceToRref(big);
    EXPECT_TRUE(rref.matrix == rref_ref.matrix);
    EXPECT_EQ(rref.rank, rref_ref.rank);
  }
}

TEST_F(TuningTest, ExtremeProfilesKeepDeterminacyVerdictsBitIdentical) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  Rng rng(424242);
  // A determined-leaning and an undetermined-leaning instance mix, random
  // enough to pass through every dispatch gate the profiles move.
  std::vector<std::pair<std::vector<ConjunctiveQuery>, ConjunctiveQuery>>
      instances;
  for (int i = 0; i < 4; ++i) {
    Structure body(schema);
    std::size_t components = 1 + rng.Below(2);
    for (std::size_t c = 0; c < components; ++c) {
      body = DisjointUnion(
          body, RandomConnectedStructure(schema, 1 + rng.Below(3), &rng, 2, 3));
    }
    ConjunctiveQuery q = BooleanQueryFromStructure("q", body);
    std::vector<ConjunctiveQuery> views;
    const std::size_t num_views = 1 + rng.Below(2);
    for (std::size_t v = 0; v < num_views; ++v) {
      views.push_back(BooleanQueryFromStructure(
          "v" + std::to_string(v),
          RandomConnectedStructure(schema, 1 + rng.Below(3), &rng, 2, 3)));
    }
    // Include the query itself as a view half the time — those instances
    // are trivially determined, exercising the witness path too.
    if (rng.Chance(1, 2)) views.push_back(q);
    instances.emplace_back(std::move(views), std::move(q));
  }

  std::vector<std::string> baseline;
  for (const auto& [views, q] : instances) {
    baseline.push_back(DecideBagDeterminacy(views, q).Summary());
  }
  for (const TuningProfile& p : {AllFastProfile(), AllSlowProfile()}) {
    ASSERT_FALSE(SetTuningProfile(p).has_value());
    for (std::size_t i = 0; i < instances.size(); ++i) {
      DeterminacyResult result =
          DecideBagDeterminacy(instances[i].first, instances[i].second);
      EXPECT_EQ(result.Summary(), baseline[i]) << "instance " << i;
    }
  }
}

}  // namespace
}  // namespace bagdet
