// Randomized cross-validation of the Theorem-3 decision procedure:
//  * determined   => the witness identity holds on random structures AND no
//                    counterexample pair exists among all small structures;
//  * not determined => the synthesized counterexample verifies exactly.

#include <gtest/gtest.h>

#include "core/determinacy.h"
#include "query/cq.h"
#include "structs/generator.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bagdet {
namespace {

/// Builds a random boolean query body: a disjoint union of 1–2 random
/// connected components with 1–3 elements each, over the given schema.
/// (Two components per query already exercise multi-dimensional W while
/// keeping the counterexample BigInt sizes — which grow with k = |W| —
/// within test-time budgets.)
Structure RandomQueryBody(const std::shared_ptr<Schema>& schema, Rng* rng) {
  Structure body(schema);
  std::size_t components = 1 + rng->Below(2);
  for (std::size_t c = 0; c < components; ++c) {
    body = DisjointUnion(
        body, RandomConnectedStructure(schema, 1 + rng->Below(3), rng, 2, 3));
  }
  return body;
}

class DeterminacyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::shared_ptr<Schema> schema_ = [] {
    auto schema = std::make_shared<Schema>();
    schema->AddRelation("E", 2);
    return schema;
  }();

  /// All structures over `schema_` with domain size <= 2.
  std::vector<Structure> SmallStructures() {
    std::vector<Structure> all;
    for (std::size_t n = 0; n <= 2; ++n) {
      EnumerateStructures(schema_, n, [&](const Structure& s) {
        all.push_back(s);
        return true;
      });
    }
    return all;
  }
};

TEST_P(DeterminacyPropertyTest, DecisionConsistentWithGroundTruth) {
  Rng rng(GetParam());
  std::vector<Structure> small = SmallStructures();
  for (int iter = 0; iter < 6; ++iter) {
    ConjunctiveQuery q =
        BooleanQueryFromStructure("q", RandomQueryBody(schema_, &rng));
    std::vector<ConjunctiveQuery> views;
    std::size_t num_views = 1 + rng.Below(3);
    for (std::size_t i = 0; i < num_views; ++i) {
      views.push_back(BooleanQueryFromStructure(
          "v" + std::to_string(i), RandomQueryBody(schema_, &rng)));
    }
    DeterminacyResult result = DecideBagDeterminacy(views, q);

    // Ground truth over all pairs of small structures: a pair with equal
    // view answers but different q answers refutes determinacy.
    bool found_refutation = false;
    std::vector<BigInt> q_counts;
    std::vector<std::vector<BigInt>> view_counts;
    q_counts.reserve(small.size());
    for (const Structure& d : small) {
      q_counts.push_back(q.CountHomomorphisms(d));
      std::vector<BigInt> per_view;
      for (const ConjunctiveQuery& v : views) {
        per_view.push_back(v.CountHomomorphisms(d));
      }
      view_counts.push_back(std::move(per_view));
    }
    for (std::size_t a = 0; a < small.size() && !found_refutation; ++a) {
      for (std::size_t b = a + 1; b < small.size(); ++b) {
        if (view_counts[a] == view_counts[b] && q_counts[a] != q_counts[b]) {
          found_refutation = true;
          break;
        }
      }
    }

    if (result.determined) {
      EXPECT_FALSE(found_refutation)
          << "decision says determined but small structures refute it; q="
          << q.ToString();
      // The witness identity holds on every small structure.
      for (const Structure& d : small) {
        EXPECT_TRUE(CheckWitnessOnStructure(result.analysis, *result.witness, d))
            << "witness fails on " << d.ToString() << " for q=" << q.ToString();
      }
    } else {
      ASSERT_TRUE(result.counterexample.has_value());
      EXPECT_EQ(VerifyCounterexample(result.analysis, *result.counterexample),
                std::nullopt)
          << "q=" << q.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminacyPropertyTest,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005, 1006,
                                           1007, 1008));

// End-to-end invariance: for seeded random instances, the full verdict —
// determined bit, witness exponents, counterexample coordinates — must be
// bit-identical under every thread-pool width and under hom-cache
// eviction pressure. This is the property the whole concurrent serving
// core promises (order-preserving fan-outs, prime-order CRT folds, counts
// as pure functions of interned classes); a cache- or parallelism-
// dependent verdict is a soundness bug, not a flake.
TEST(DeterminacyInvarianceTest, VerdictInvariantUnderThreadsAndCacheBudgets) {
  // Unconditional restore: an ASSERT mid-loop must not leave the
  // process-wide pool pinned at this test's width for the rest of the
  // binary.
  struct PoolRestorer {
    ~PoolRestorer() { SetGlobalThreadPoolSize(0); }
  } restore_pool;

  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  Rng rng(77001);

  struct Config {
    std::size_t threads;
    std::size_t cache_entries;  // 0 = unbounded library default.
  };
  const Config configs[] = {{1, 0}, {4, 0}, {1, 16}, {4, 16}};

  for (int iter = 0; iter < 5; ++iter) {
    ConjunctiveQuery q =
        BooleanQueryFromStructure("q", RandomQueryBody(schema, &rng));
    std::vector<ConjunctiveQuery> views;
    const std::size_t num_views = 1 + rng.Below(3);
    for (std::size_t i = 0; i < num_views; ++i) {
      views.push_back(BooleanQueryFromStructure(
          "v" + std::to_string(i), RandomQueryBody(schema, &rng)));
    }

    std::vector<DeterminacyResult> results;
    for (const Config& config : configs) {
      SetGlobalThreadPoolSize(config.threads);
      DeterminacyOptions options;
      options.hom_cache_max_entries = config.cache_entries;
      results.push_back(DecideBagDeterminacy(views, q, options));
    }

    const DeterminacyResult& base = results[0];
    for (std::size_t i = 1; i < results.size(); ++i) {
      const DeterminacyResult& other = results[i];
      ASSERT_EQ(base.determined, other.determined)
          << "iter " << iter << " config " << i << " q=" << q.ToString();
      ASSERT_EQ(base.witness.has_value(), other.witness.has_value());
      if (base.witness.has_value()) {
        EXPECT_EQ(base.witness->view_indices, other.witness->view_indices)
            << "iter " << iter << " config " << i;
        EXPECT_EQ(base.witness->exponents, other.witness->exponents)
            << "iter " << iter << " config " << i;
      }
      ASSERT_EQ(base.counterexample.has_value(),
                other.counterexample.has_value());
      if (base.counterexample.has_value()) {
        const BagCounterexample& a = *base.counterexample;
        const BagCounterexample& b = *other.counterexample;
        EXPECT_EQ(a.coeffs_d, b.coeffs_d) << "iter " << iter << " cfg " << i;
        EXPECT_EQ(a.coeffs_d_prime, b.coeffs_d_prime)
            << "iter " << iter << " cfg " << i;
        EXPECT_EQ(a.evaluation_matrix, b.evaluation_matrix)
            << "iter " << iter << " cfg " << i;
        EXPECT_EQ(a.z, b.z) << "iter " << iter << " cfg " << i;
        EXPECT_EQ(a.t, b.t) << "iter " << iter << " cfg " << i;
      }
    }
  }
}

// A targeted stress case: many views, mixed relevance, fractional witness.
TEST(DeterminacyStressTest, MixedRelevanceInstance) {
  auto schema = std::make_shared<Schema>();
  RelationId e = schema->AddRelation("E", 2);
  RelationId f = schema->AddRelation("F", 2);
  Structure loop(schema);
  loop.AddFact(e, {0, 0});
  Structure edge(schema);
  edge.AddFact(e, {0, 1});
  Structure f_edge(schema);
  f_edge.AddFact(f, {0, 1});
  auto combine = [&](int a, int b, int c) {
    Structure s(schema);
    for (int i = 0; i < a; ++i) s = DisjointUnion(s, loop);
    for (int i = 0; i < b; ++i) s = DisjointUnion(s, edge);
    for (int i = 0; i < c; ++i) s = DisjointUnion(s, f_edge);
    return s;
  };
  ConjunctiveQuery q = BooleanQueryFromStructure("q", combine(1, 1, 0));
  std::vector<ConjunctiveQuery> views = {
      BooleanQueryFromStructure("v1", combine(2, 1, 0)),
      BooleanQueryFromStructure("v2", combine(1, 2, 0)),
      // Irrelevant: uses F which q does not touch, so q ⊄set v3.
      BooleanQueryFromStructure("v3", combine(1, 1, 1)),
  };
  DeterminacyResult result = DecideBagDeterminacy(views, q);
  ASSERT_TRUE(result.determined);
  EXPECT_EQ(result.analysis.relevant_views.size(), 2u);
  Rng rng(2024);
  for (int iter = 0; iter < 6; ++iter) {
    Structure d = RandomStructure(schema, 1 + rng.Below(3), &rng);
    EXPECT_TRUE(CheckWitnessOnStructure(result.analysis, *result.witness, d));
  }
}

}  // namespace
}  // namespace bagdet
