#include "structs/structure_expr.h"

#include <gtest/gtest.h>

#include "hom/hom.h"
#include "hom/symbolic.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

Structure Edge(const std::shared_ptr<Schema>& schema) {
  Structure s(schema);
  s.AddFact(0, {0, 1});
  return s;
}

TEST(StructureExprTest, BaseLeaf) {
  auto schema = GraphSchema();
  StructureExpr e = StructureExpr::Base(Edge(schema));
  EXPECT_EQ(e.DomainSize(), BigInt(2));
  EXPECT_EQ(e.NumFacts(), BigInt(1));
  std::optional<Structure> m = e.Materialize();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, Edge(schema));
}

TEST(StructureExprTest, SumAndScalarSizes) {
  auto schema = GraphSchema();
  StructureExpr edge = StructureExpr::Base(Edge(schema));
  StructureExpr five = StructureExpr::Scalar(BigInt(5), edge);
  EXPECT_EQ(five.DomainSize(), BigInt(10));
  EXPECT_EQ(five.NumFacts(), BigInt(5));
  StructureExpr sum = StructureExpr::Sum({edge, five}, schema);
  EXPECT_EQ(sum.DomainSize(), BigInt(12));
  EXPECT_EQ(sum.NumFacts(), BigInt(6));
}

TEST(StructureExprTest, PowerAndProductSizes) {
  auto schema = GraphSchema();
  StructureExpr edge = StructureExpr::Base(Edge(schema));
  StructureExpr cube = StructureExpr::Power(edge, 3);
  EXPECT_EQ(cube.DomainSize(), BigInt(8));
  EXPECT_EQ(cube.NumFacts(), BigInt(1));  // Facts multiply per relation.
  StructureExpr empty_product = StructureExpr::Product({}, schema);
  EXPECT_EQ(empty_product.DomainSize(), BigInt(1));  // All-loops singleton.
  EXPECT_EQ(empty_product.NumFacts(), BigInt(1));
}

TEST(StructureExprTest, HugeTermsDontMaterialize) {
  auto schema = GraphSchema();
  StructureExpr edge = StructureExpr::Base(Edge(schema));
  StructureExpr huge = StructureExpr::Power(edge, 200);
  EXPECT_EQ(huge.DomainSize(), BigInt::Pow(BigInt(2), 200));
  EXPECT_FALSE(huge.Materialize().has_value());
  // Symbolic counting still works: hom(edge, edge^200) = 1^200 = 1.
  EXPECT_EQ(CountHomsSymbolic(Edge(schema), huge), BigInt(1));
}

TEST(StructureExprTest, ScalarRejectsNegative) {
  auto schema = GraphSchema();
  EXPECT_THROW(
      StructureExpr::Scalar(BigInt(-1), StructureExpr::Base(Edge(schema))),
      std::invalid_argument);
}

TEST(StructureExprTest, SchemaMismatchThrows) {
  auto schema_a = GraphSchema();
  auto schema_b = std::make_shared<Schema>();
  schema_b->AddRelation("F", 2);
  EXPECT_THROW(StructureExpr::Sum({StructureExpr::Base(Edge(schema_a))},
                                  schema_b),
               std::invalid_argument);
}

TEST(SymbolicHomTest, RejectsDisconnectedSource) {
  auto schema = GraphSchema();
  Structure two_edges(schema);
  two_edges.AddFact(0, {0, 1});
  two_edges.AddFact(0, {2, 3});
  StructureExpr target = StructureExpr::Base(Edge(schema));
  EXPECT_THROW(CountHomsSymbolic(two_edges, target), std::invalid_argument);
  // The Any variant decomposes into components first.
  EXPECT_EQ(CountHomsSymbolicAny(two_edges, target), BigInt(1));
}

TEST(SymbolicHomTest, RejectsEmptyDomainSource) {
  auto schema = std::make_shared<Schema>();
  RelationId h = schema->AddRelation("H", 0);
  Structure nullary(schema);
  nullary.AddFact(h, {});
  StructureExpr target = StructureExpr::Base(Structure(schema));
  EXPECT_THROW(CountHomsSymbolic(nullary, target), std::invalid_argument);
}

// Property: symbolic evaluation agrees with materialize-then-count on
// every expression shape, for random base structures.
class SymbolicVsMaterializedTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymbolicVsMaterializedTest, AllShapesAgree) {
  Rng rng(GetParam());
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("R", 2);
  schema->AddRelation("P", 1);
  for (int iter = 0; iter < 10; ++iter) {
    Structure from = RandomConnectedStructure(schema, 1 + rng.Below(3), &rng);
    Structure base_a = RandomStructure(schema, 1 + rng.Below(3), &rng);
    Structure base_b = RandomStructure(schema, 1 + rng.Below(3), &rng);
    StructureExpr ea = StructureExpr::Base(base_a);
    StructureExpr eb = StructureExpr::Base(base_b);
    std::vector<StructureExpr> shapes = {
        StructureExpr::Sum({ea, eb}, schema),
        StructureExpr::Product({ea, eb}, schema),
        StructureExpr::Scalar(BigInt(3), ea),
        StructureExpr::Power(ea, 2),
        StructureExpr::Sum(
            {StructureExpr::Scalar(BigInt(2), ea),
             StructureExpr::Product({eb, StructureExpr::Power(ea, 1)}, schema)},
            schema),
        StructureExpr::Power(StructureExpr::Sum({ea, eb}, schema), 2),
        StructureExpr::Product({}, schema),
        StructureExpr::Sum({}, schema),
    };
    for (const StructureExpr& expr : shapes) {
      std::optional<Structure> materialized = expr.Materialize(100000);
      ASSERT_TRUE(materialized.has_value()) << expr.ToString();
      EXPECT_EQ(CountHomsSymbolic(from, expr), CountHoms(from, *materialized))
          << "from=" << from.ToString() << " expr=" << expr.ToString();
      EXPECT_EQ(materialized->DomainSize(),
                static_cast<std::size_t>(expr.DomainSize().ToInt64()));
      EXPECT_EQ(materialized->NumFacts(),
                static_cast<std::size_t>(expr.NumFacts().ToInt64()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicVsMaterializedTest,
                         ::testing::Values(301, 302, 303, 304, 305));

}  // namespace
}  // namespace bagdet
