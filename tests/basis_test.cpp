// Tests for the good-basis construction (Lemma 40) and the distinguisher
// search (effective Lemma 43), including the Example 54 / Figure 2 setup.

#include "core/basis.h"

#include <gtest/gtest.h>

#include "core/counterexample.h"
#include "core/distinguisher.h"
#include "hom/hom.h"
#include "hom/symbolic.h"
#include "linalg/gauss.h"
#include "query/parser.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

TEST(DistinguisherTest, IsomorphicPairHasNoDistinguisher) {
  auto schema = GraphSchema();
  Structure a(schema);
  a.AddFact(0, {0, 1});
  Structure b(schema);
  b.AddFact(0, {1, 0});
  EXPECT_FALSE(FindDistinguisher(a, b).has_value());
}

TEST(DistinguisherTest, FindsWitnessForSimplePairs) {
  auto schema = GraphSchema();
  Structure edge(schema);
  edge.AddFact(0, {0, 1});
  Structure loop(schema);
  loop.AddFact(0, {0, 0});
  std::optional<Structure> h = FindDistinguisher(edge, loop);
  ASSERT_TRUE(h.has_value());
  EXPECT_NE(CountHoms(edge, *h), CountHoms(loop, *h));
}

TEST(DistinguisherTest, HardPairSameCountsOnThemselves) {
  // Directed 6-cycle vs two directed 3-cycles... not connected; use
  // 6-cycle vs 3-cycle: hom(C6,C3)=3, hom(C3,C3)=3; need some H telling
  // them apart.
  auto schema = GraphSchema();
  auto cycle = [&](Element n) {
    Structure s(schema);
    for (Element i = 0; i < n; ++i) {
      s.AddFact(0, {i, static_cast<Element>((i + 1) % n)});
    }
    return s;
  };
  Structure c6 = cycle(6);
  Structure c3 = cycle(3);
  std::optional<Structure> h = FindDistinguisher(c6, c3);
  ASSERT_TRUE(h.has_value());
  EXPECT_NE(CountHoms(c6, *h), CountHoms(c3, *h));
}

TEST(DistinguisherTest, RandomConnectedPairsAlwaysSplit) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("R", 2);
  schema->AddRelation("P", 1);
  Rng rng(404);
  int tried = 0;
  for (int iter = 0; iter < 40 && tried < 20; ++iter) {
    Structure a = RandomConnectedStructure(schema, 1 + rng.Below(4), &rng);
    Structure b = RandomConnectedStructure(schema, 1 + rng.Below(4), &rng);
    if (IsIsomorphic(a, b)) continue;
    ++tried;
    std::optional<Structure> h = FindDistinguisher(a, b);
    ASSERT_TRUE(h.has_value()) << a.ToString() << " vs " << b.ToString();
    EXPECT_NE(CountHoms(a, *h), CountHoms(b, *h));
  }
  EXPECT_GE(tried, 10);
}

TEST(DistinguisherTest, InducedSubstructureMask) {
  auto schema = GraphSchema();
  Structure s(schema);
  s.AddFact(0, {0, 1});
  s.AddFact(0, {1, 2});
  Structure sub = InducedSubstructure(s, 0b110);  // Keep {1, 2}.
  EXPECT_EQ(sub.DomainSize(), 2u);
  EXPECT_EQ(sub.NumFacts(), 1u);
  EXPECT_TRUE(sub.HasFact(0, {0, 1}));  // Renamed 1↦0, 2↦1.
  EXPECT_TRUE(InducedSubstructure(s, 0).IsEmpty());
}

class GoodBasisTest : public ::testing::Test {
 protected:
  // A not-determined instance with a multi-component W: q and views over
  // loops/edges (Example 32 shape with perturbed coefficients so that q⃗
  // falls outside the span).
  InstanceAnalysis MakeAnalysis() {
    QueryParser parser;
    ConjunctiveQuery q = parser.ParseRule("q()  :- E(x,x), E(a,b)");
    std::vector<ConjunctiveQuery> views = {
        parser.ParseRule("v1() :- E(x,x), E(y,y), E(a,b), E(c,d)"),
    };
    return AnalyzeInstance(views, q);
  }
};

TEST_F(GoodBasisTest, MatrixNonsingularAndSizesMatch) {
  InstanceAnalysis analysis = MakeAnalysis();
  GoodBasis basis = BuildGoodBasis(analysis, DistinguisherOptions());
  const std::size_t k = analysis.basis_queries.size();
  ASSERT_EQ(k, 2u);
  EXPECT_EQ(basis.structures.size(), k);
  EXPECT_EQ(basis.evaluation.rows(), k);
  EXPECT_TRUE(IsNonsingular(basis.evaluation));
}

TEST_F(GoodBasisTest, EvaluationMatrixMatchesSymbolicCounts) {
  InstanceAnalysis analysis = MakeAnalysis();
  GoodBasis basis = BuildGoodBasis(analysis, DistinguisherOptions());
  for (std::size_t i = 0; i < analysis.basis_queries.size(); ++i) {
    for (std::size_t j = 0; j < basis.structures.size(); ++j) {
      BigInt direct =
          CountHomsSymbolic(analysis.basis_queries[i], basis.structures[j]);
      EXPECT_EQ(basis.evaluation.At(i, j), Rational(direct)) << i << "," << j;
    }
  }
}

TEST_F(GoodBasisTest, EvaluationMatrixMatchesMaterializedCounts) {
  // The ground truth: materialize s_j (small here) and count directly.
  InstanceAnalysis analysis = MakeAnalysis();
  GoodBasis basis = BuildGoodBasis(analysis, DistinguisherOptions());
  for (std::size_t j = 0; j < basis.structures.size(); ++j) {
    std::optional<Structure> s = basis.structures[j].Materialize(200000);
    ASSERT_TRUE(s.has_value()) << "basis structure too large to materialize";
    for (std::size_t i = 0; i < analysis.basis_queries.size(); ++i) {
      EXPECT_EQ(basis.evaluation.At(i, j),
                Rational(CountHoms(analysis.basis_queries[i], *s)));
    }
  }
}

TEST_F(GoodBasisTest, Observation45RadixCountsDistinct) {
  InstanceAnalysis analysis = MakeAnalysis();
  GoodBasis basis = BuildGoodBasis(analysis, DistinguisherOptions());
  std::vector<BigInt> counts;
  for (const Structure& w : analysis.basis_queries) {
    counts.push_back(CountHomsSymbolic(w, basis.step2));
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    for (std::size_t j = i + 1; j < counts.size(); ++j) {
      EXPECT_NE(counts[i], counts[j]) << "Observation 45 violated";
    }
  }
}

TEST_F(GoodBasisTest, DecencyVanishingOffV) {
  // Add an irrelevant view (not containing q): it must evaluate to 0 on
  // every basis structure (Definition 35 / Step 4).
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q()  :- E(x,x), E(a,b)");
  std::vector<ConjunctiveQuery> views = {
      parser.ParseRule("v1() :- E(x,x), E(y,y), E(a,b), E(c,d)"),
      parser.ParseRule("bad() :- F(x,y)"),  // Uses a relation absent from q.
  };
  InstanceAnalysis analysis = AnalyzeInstance(views, q);
  ASSERT_EQ(analysis.relevant_views.size(), 1u);
  GoodBasis basis = BuildGoodBasis(analysis, DistinguisherOptions());
  const ConjunctiveQuery& bad = analysis.views[1];
  for (const StructureExpr& s : basis.structures) {
    EXPECT_EQ(CountHomsSymbolicAny(bad.FrozenBody(), s), BigInt(0));
  }
}

TEST_F(GoodBasisTest, SingleComponentBasis) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- E(x,y)");
  InstanceAnalysis analysis = AnalyzeInstance({}, q);
  GoodBasis basis = BuildGoodBasis(analysis, DistinguisherOptions());
  ASSERT_EQ(basis.structures.size(), 1u);
  // k = 1: s_1 = (s2)^0 × q = all-loops × q ≅ q; the 1×1 matrix holds
  // hom(q, q) > 0.
  EXPECT_TRUE(IsNonsingular(basis.evaluation));
  EXPECT_GT(basis.evaluation.At(0, 0), Rational(0));
}

// Example 54 / Figure 2: with W = {w1, w2} and S = {s1 = all-loops
// singleton, s2 = w2}, the evaluation matrix is [[1,4],[1,2]], and the
// points M·(a,b) for natural a,b populate the cone. We reproduce the
// matrix and the first few points of the set P.
TEST(Example54Test, EvaluationMatrixAndConePoints) {
  auto schema = std::make_shared<Schema>();
  RelationId red = schema->AddRelation("R", 2);
  // A concrete Figure-1-like pair with singular M_W (found by exhaustive
  // search, cf. core_test): w1 = the complete 2-element structure with
  // loops, w2 a 3-element structure with hom matrix [4,1;8,2].
  Structure w1(schema);
  w1.AddFact(red, {0, 0});
  w1.AddFact(red, {0, 1});
  w1.AddFact(red, {1, 0});
  w1.AddFact(red, {1, 1});
  Structure w2(schema);
  w2.AddFact(red, {0, 1});
  w2.AddFact(red, {0, 2});
  w2.AddFact(red, {1, 1});
  w2.AddFact(red, {2, 0});
  // Example 54's basis: s1 = the all-loops singleton, s2 = w2.
  Structure s1 = AllLoopsSingleton(schema);
  Structure s2 = w2;
  Mat m(2, 2);
  m.At(0, 0) = Rational(CountHoms(w1, s1));
  m.At(0, 1) = Rational(CountHoms(w1, s2));
  m.At(1, 0) = Rational(CountHoms(w2, s1));
  m.At(1, 1) = Rational(CountHoms(w2, s2));
  // hom(·, all-loops singleton) = 1 for both rows; the second column is
  // (hom(w1,w2), hom(w2,w2)) = (1, 2): nonsingular, unlike M_W.
  EXPECT_EQ(m.At(0, 0), Rational(1));
  EXPECT_EQ(m.At(1, 0), Rational(1));
  EXPECT_TRUE(IsNonsingular(m));
  // Points of P: M·(a,b) for a,b ∈ N come from real structures
  // a·s1 + b·s2 (Definition 51) — cross-check a few against hom counts.
  for (int a = 0; a <= 2; ++a) {
    for (int b = 0; b <= 2; ++b) {
      Structure s = DisjointUnion(ScalarMultiple(a, s1), ScalarMultiple(b, s2));
      Vec coords{Rational(a), Rational(b)};
      Vec point = m.Apply(coords);
      EXPECT_EQ(point[0], Rational(CountHoms(w1, s)));
      EXPECT_EQ(point[1], Rational(CountHoms(w2, s)));
    }
  }
}

// Lemma 50 on a concrete basis: v(s) = (M s⃗) ♂ v⃗.
TEST_F(GoodBasisTest, Lemma50OnNaturalCombinations) {
  InstanceAnalysis analysis = MakeAnalysis();
  GoodBasis basis = BuildGoodBasis(analysis, DistinguisherOptions());
  const std::size_t k = basis.structures.size();
  Rng rng(31337);
  for (int iter = 0; iter < 4; ++iter) {
    // s = Σ a_i s_i with small random natural a_i.
    std::vector<StructureExpr> terms;
    Vec coords(k);
    for (std::size_t i = 0; i < k; ++i) {
      std::int64_t a = static_cast<std::int64_t>(rng.Below(3));
      coords[i] = Rational(a);
      terms.push_back(
          StructureExpr::Scalar(BigInt(a), basis.structures[i]));
    }
    StructureExpr s = StructureExpr::Sum(terms, analysis.query.schema_ptr());
    Vec point = basis.evaluation.Apply(coords);
    for (std::size_t vi = 0; vi < analysis.view_vectors.size(); ++vi) {
      const Vec& vvec = analysis.view_vectors[vi];
      // (M s⃗) ♂ v⃗ = Π point[i]^v⃗(i).
      BigInt expected(1);
      for (std::size_t i = 0; i < k; ++i) {
        BigInt base = point[i].numerator();
        expected *= BigInt::Pow(
            base, static_cast<std::uint64_t>(vvec[i].numerator().ToInt64()));
      }
      const ConjunctiveQuery& view =
          analysis.views[analysis.relevant_views[vi]];
      EXPECT_EQ(CountHomsSymbolicAny(view.FrozenBody(), s), expected);
    }
  }
}

}  // namespace
}  // namespace bagdet
