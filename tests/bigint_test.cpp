#include "util/bigint.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/failpoint.h"
#include "util/rng.h"

namespace bagdet {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.Sign(), 0);
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.ToInt64(), 0);
}

TEST(BigIntTest, Int64RoundTrip) {
  const std::vector<std::int64_t> values = {
      0, 1, -1, 42, -9999999, (std::int64_t{1} << 40),
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min()};
  for (std::int64_t v : values) {
    BigInt b(v);
    EXPECT_TRUE(b.FitsInt64()) << v;
    EXPECT_EQ(b.ToInt64(), v);
  }
}

TEST(BigIntTest, Int64MinBoundary) {
  BigInt min_val(std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(min_val.FitsInt64());
  BigInt just_below = min_val - BigInt(1);
  EXPECT_FALSE(just_below.FitsInt64());
  EXPECT_THROW(just_below.ToInt64(), std::overflow_error);
  BigInt max_val(std::numeric_limits<std::int64_t>::max());
  EXPECT_FALSE((max_val + BigInt(1)).FitsInt64());
}

TEST(BigIntTest, StringRoundTripSmall) {
  const std::vector<std::int64_t> values = {0, 7, -7, 123456789,
                                            -987654321012345};
  for (std::int64_t v : values) {
    EXPECT_EQ(BigInt::FromString(BigInt(v).ToString()), BigInt(v));
  }
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_THROW(BigInt::FromString(""), std::invalid_argument);
  EXPECT_THROW(BigInt::FromString("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::FromString("12a3"), std::invalid_argument);
  EXPECT_THROW(BigInt::FromString("0x10"), std::invalid_argument);
}

TEST(BigIntTest, FromStringAcceptsPlusAndZeros) {
  EXPECT_EQ(BigInt::FromString("+17"), BigInt(17));
  EXPECT_EQ(BigInt::FromString("000"), BigInt(0));
  EXPECT_EQ(BigInt::FromString("-0"), BigInt(0));
  EXPECT_EQ(BigInt::FromString("-000123"), BigInt(-123));
}

TEST(BigIntTest, LargeDecimalRoundTrip) {
  std::string digits = "123456789012345678901234567890123456789012345678901";
  BigInt big = BigInt::FromString(digits);
  EXPECT_EQ(big.ToString(), digits);
  EXPECT_EQ((-big).ToString(), "-" + digits);
  EXPECT_FALSE(big.FitsInt64());
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::FromString("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).ToString(), "4294967296");
  BigInt b = BigInt::FromString("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).ToString(), "18446744073709551616");
}

TEST(BigIntTest, SubtractionBorrowsAndFlipsSign) {
  EXPECT_EQ(BigInt(5) - BigInt(7), BigInt(-2));
  BigInt b = BigInt::FromString("18446744073709551616");
  EXPECT_EQ((b - BigInt(1)).ToString(), "18446744073709551615");
  EXPECT_EQ(b - b, BigInt(0));
}

TEST(BigIntTest, MultiplicationSigns) {
  EXPECT_EQ(BigInt(-3) * BigInt(4), BigInt(-12));
  EXPECT_EQ(BigInt(-3) * BigInt(-4), BigInt(12));
  EXPECT_EQ(BigInt(0) * BigInt(-4), BigInt(0));
  EXPECT_FALSE((BigInt(0) * BigInt(-4)).IsNegative());
}

TEST(BigIntTest, SchoolbookMultiplicationLarge) {
  BigInt a = BigInt::FromString("12345678901234567890");
  BigInt b = BigInt::FromString("98765432109876543210");
  EXPECT_EQ((a * b).ToString(), "1219326311370217952237463801111263526900");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(-7) / BigInt(-2), BigInt(3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
  EXPECT_EQ(BigInt(7) % BigInt(-2), BigInt(1));
}

TEST(BigIntTest, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), std::domain_error);
  EXPECT_THROW(BigInt(1) % BigInt(0), std::domain_error);
}

TEST(BigIntTest, KnuthDivisionMultiLimb) {
  BigInt a = BigInt::FromString("340282366920938463463374607431768211456");
  BigInt b = BigInt::FromString("18446744073709551616");
  EXPECT_EQ((a / b).ToString(), "18446744073709551616");
  EXPECT_EQ(a % b, BigInt(0));
  // A case exercising the q_hat correction path (top limbs close).
  BigInt c = BigInt::FromString("79228162514264337593543950335");
  BigInt d = BigInt::FromString("79228162514264337593543950336");
  EXPECT_EQ(c / d, BigInt(0));
  EXPECT_EQ(c % d, c);
}

TEST(BigIntTest, PowMatchesRepeatedMultiply) {
  EXPECT_EQ(BigInt::Pow(BigInt(2), 10), BigInt(1024));
  EXPECT_EQ(BigInt::Pow(BigInt(0), 0), BigInt(1));  // Paper's convention.
  EXPECT_EQ(BigInt::Pow(BigInt(0), 5), BigInt(0));
  EXPECT_EQ(BigInt::Pow(BigInt(-2), 3), BigInt(-8));
  EXPECT_EQ(BigInt::Pow(BigInt(-2), 4), BigInt(16));
  EXPECT_EQ(BigInt::Pow(BigInt(10), 30).ToString(),
            "1000000000000000000000000000000");
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, ComparisonTotalOrder) {
  std::vector<BigInt> ordered = {
      BigInt::FromString("-99999999999999999999"), BigInt(-2), BigInt(0),
      BigInt(1), BigInt::FromString("99999999999999999999")};
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    for (std::size_t j = 0; j < ordered.size(); ++j) {
      EXPECT_EQ(ordered[i] < ordered[j], i < j);
      EXPECT_EQ(ordered[i] == ordered[j], i == j);
      EXPECT_EQ(ordered[i] <= ordered[j], i <= j);
    }
  }
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::Pow(BigInt(2), 100).BitLength(), 101u);
}

TEST(BigIntTest, HashEqualValuesAgree) {
  BigInt a = BigInt::FromString("123456789012345678901234567890");
  BigInt b = BigInt::FromString("123456789012345678901234567890");
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), (-a).Hash());
}

// ---------------------------------------------------------------------------
// Randomized cross-validation against native __int128 arithmetic.

class BigIntRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntRandomTest, ArithmeticMatchesInt128) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    std::int64_t x = rng.Range(-1'000'000'000, 1'000'000'000);
    std::int64_t y = rng.Range(-1'000'000'000, 1'000'000'000);
    BigInt bx(x);
    BigInt by(y);
    EXPECT_EQ((bx + by).ToInt64(), x + y);
    EXPECT_EQ((bx - by).ToInt64(), x - y);
    __int128 product = static_cast<__int128>(x) * y;
    BigInt bp = bx * by;
    if (bp.FitsInt64()) {
      EXPECT_EQ(static_cast<__int128>(bp.ToInt64()), product);
    }
    if (y != 0) {
      EXPECT_EQ((bx / by).ToInt64(), x / y);
      EXPECT_EQ((bx % by).ToInt64(), x % y);
    }
  }
}

TEST_P(BigIntRandomTest, DivModInvariant) {
  Rng rng(GetParam() * 31 + 7);
  for (int iter = 0; iter < 100; ++iter) {
    // Build random big operands from several limbs.
    BigInt a(0);
    BigInt b(0);
    int limbs_a = 1 + static_cast<int>(rng.Below(6));
    int limbs_b = 1 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < limbs_a; ++i) {
      a = a * BigInt::FromString("4294967296") +
          BigInt(static_cast<std::int64_t>(rng.Below(1ull << 32)));
    }
    for (int i = 0; i < limbs_b; ++i) {
      b = b * BigInt::FromString("4294967296") +
          BigInt(static_cast<std::int64_t>(rng.Below(1ull << 32)));
    }
    if (rng.Chance(1, 2)) a = -a;
    if (b.IsZero()) b = BigInt(1);
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r.Abs() < b.Abs());
    // Remainder sign follows the dividend.
    if (!r.IsZero()) {
      EXPECT_EQ(r.Sign(), a.Sign());
    }
  }
}

TEST_P(BigIntRandomTest, MulDivRoundTrip) {
  Rng rng(GetParam() * 131 + 3);
  for (int iter = 0; iter < 100; ++iter) {
    BigInt a(static_cast<std::int64_t>(rng.Below(1ull << 62)));
    BigInt b(static_cast<std::int64_t>(1 + rng.Below(1ull << 30)));
    BigInt c = a * b;
    EXPECT_EQ(c / b, a);
    EXPECT_EQ(c % b, BigInt(0));
  }
}

TEST_P(BigIntRandomTest, StringRoundTripRandom) {
  Rng rng(GetParam() * 977 + 11);
  for (int iter = 0; iter < 50; ++iter) {
    std::string digits;
    digits.push_back(static_cast<char>('1' + rng.Below(9)));
    std::size_t length = rng.Below(60);
    for (std::size_t i = 0; i < length; ++i) {
      digits.push_back(static_cast<char>('0' + rng.Below(10)));
    }
    if (rng.Chance(1, 2)) digits.insert(digits.begin(), '-');
    EXPECT_EQ(BigInt::FromString(digits).ToString(), digits);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Karatsuba multiplication: cross-validated against an independent
// schoolbook recomputation via string arithmetic identities.

class KaratsubaTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KaratsubaTest, LargeProductsSatisfyRingIdentities) {
  Rng rng(GetParam() * 7919 + 1);
  auto random_big = [&rng](int limbs) {
    BigInt x(0);
    const BigInt base = BigInt::FromString("4294967296");
    for (int i = 0; i < limbs; ++i) {
      x = x * base + BigInt(static_cast<std::int64_t>(rng.Below(1ull << 32)));
    }
    return x;
  };
  for (int iter = 0; iter < 8; ++iter) {
    // Sizes straddling the Karatsuba threshold (32 limbs), including
    // unbalanced operands.
    BigInt a = random_big(20 + static_cast<int>(rng.Below(60)));
    BigInt b = random_big(20 + static_cast<int>(rng.Below(60)));
    BigInt c = random_big(5);
    // Distributivity ties the fast path to additions (which are simple).
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) * c, a * c + b * c);
    // Division (independent code path) inverts the product.
    BigInt p = a * b;
    EXPECT_EQ(p / a, b);
    EXPECT_EQ(p % a, BigInt(0));
    EXPECT_EQ(p / b, a);
    // Commutativity across the unbalanced split.
    EXPECT_EQ(a * b, b * a);
  }
}

TEST_P(KaratsubaTest, SquaresOfPowersHaveExactDigits) {
  // (10^n)^2 = 10^(2n): digit counts pin the limb bookkeeping exactly.
  std::uint64_t n = 50 + GetParam() * 37;
  BigInt p = BigInt::Pow(BigInt(10), n);
  BigInt square = p * p;
  EXPECT_EQ(square.ToString().size(), 2 * n + 1);
  EXPECT_EQ(BigInt::FloorKthRoot(square, 2), p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KaratsubaTest, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Aliasing regression suite. The compound operators route every result
// through arena scratch before committing, so `a op= a` must behave exactly
// like `a op= copy_of_a` — for both representations and all signs. The
// historical bug class here is reading an operand after the destination was
// already mutated (Rational::operator/= had exactly that defect).
// ---------------------------------------------------------------------------

// One small, one just-spilled, one deep-spilled value per sign.
std::vector<BigInt> AliasingProbeValues() {
  std::vector<BigInt> magnitudes = {
      BigInt(0),
      BigInt(7),
      BigInt(std::numeric_limits<std::int64_t>::max()),  // small, near spill
      BigInt::Pow(BigInt(2), 64),                        // minimal spill
      BigInt::Pow(BigInt(3), 200),                       // deep spill
  };
  std::vector<BigInt> values;
  for (const BigInt& m : magnitudes) {
    values.push_back(m);
    if (!m.IsZero()) values.push_back(-m);
  }
  return values;
}

TEST(BigIntAliasingTest, SelfCompoundMatchesCopySemantics) {
  for (const BigInt& v : AliasingProbeValues()) {
    const BigInt copy = v;
    {
      BigInt a = v;
      a += a;
      EXPECT_EQ(a, copy + copy) << "a += a with a = " << copy;
    }
    {
      BigInt a = v;
      a -= a;
      EXPECT_EQ(a, BigInt(0)) << "a -= a with a = " << copy;
    }
    {
      BigInt a = v;
      a *= a;
      EXPECT_EQ(a, copy * copy) << "a *= a with a = " << copy;
    }
    if (!v.IsZero()) {
      BigInt a = v;
      a /= a;
      EXPECT_EQ(a, BigInt(1)) << "a /= a with a = " << copy;
      BigInt b = v;
      b %= b;
      EXPECT_EQ(b, BigInt(0)) << "a %= a with a = " << copy;
    }
  }
}

TEST(BigIntAliasingTest, DivModOutParamsMayAliasInputs) {
  for (const BigInt& a : AliasingProbeValues()) {
    for (const BigInt& b : AliasingProbeValues()) {
      if (b.IsZero()) continue;
      BigInt expect_q, expect_r;
      BigInt::DivMod(a, b, &expect_q, &expect_r);
      {
        BigInt x = a;  // Quotient overwrites the dividend.
        BigInt::DivMod(x, b, &x, nullptr);
        EXPECT_EQ(x, expect_q);
      }
      {
        BigInt x = a;  // Remainder overwrites the dividend.
        BigInt::DivMod(x, b, nullptr, &x);
        EXPECT_EQ(x, expect_r);
      }
      {
        BigInt y = b;  // Quotient overwrites the divisor.
        BigInt::DivMod(a, y, &y, nullptr);
        EXPECT_EQ(y, expect_q);
      }
      {
        BigInt y = b;  // Remainder overwrites the divisor.
        BigInt::DivMod(a, y, nullptr, &y);
        EXPECT_EQ(y, expect_r);
      }
      if (!a.IsZero()) {
        BigInt x = a;  // Both out-params alias the same object: the
        BigInt::DivMod(x, b, &x, &x);  // remainder wins (documented).
        EXPECT_EQ(x, expect_r);
      }
    }
  }
}

TEST(BigIntAliasingTest, MulAddMulSubWithAliasedOperands) {
  for (const BigInt& v : AliasingProbeValues()) {
    const BigInt k = BigInt::Pow(BigInt(5), 30);
    {
      BigInt x = v;  // x += x * k
      x.MulAdd(x, k);
      EXPECT_EQ(x, v + v * k);
    }
    {
      BigInt x = v;  // x += k * x
      x.MulAdd(k, x);
      EXPECT_EQ(x, v + k * v);
    }
    {
      BigInt x = v;  // x += x * x
      x.MulAdd(x, x);
      EXPECT_EQ(x, v + v * v);
    }
    {
      BigInt x = v;  // x -= x * x
      x.MulSub(x, x);
      EXPECT_EQ(x, v - v * v);
    }
  }
}

class BigIntAliasingRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BigIntAliasingRandomTest, RandomSelfOpsMatchCopySemantics) {
  Rng rng(GetParam());
  auto random_big = [&rng](int limbs) {
    BigInt x(0);
    const BigInt base(static_cast<std::int64_t>(1) << 32);
    for (int i = 0; i < limbs; ++i) {
      x = x * base + BigInt(static_cast<std::int64_t>(rng.Below(1ull << 32)));
    }
    if (rng.Chance(1, 2)) x = -x;
    return x;
  };
  for (int iter = 0; iter < 50; ++iter) {
    BigInt a = random_big(1 + static_cast<int>(rng.Below(12)));
    const BigInt copy = a;
    switch (rng.Below(4)) {
      case 0:
        a += a;
        EXPECT_EQ(a, copy + copy);
        break;
      case 1:
        a -= a;
        EXPECT_EQ(a, BigInt(0));
        break;
      case 2:
        a *= a;
        EXPECT_EQ(a, copy * copy);
        break;
      default:
        a.MulAdd(a, a);
        EXPECT_EQ(a, copy + copy * copy);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntAliasingRandomTest,
                         ::testing::Values(21, 22, 23));

// ---------------------------------------------------------------------------
// Failpoint coverage: every small->spilled transition must pass through the
// canonical commit point so an armed `bigint/alloc` observes it. The inline
// fast paths (operator+= carry-out, operator*= 128-bit product) used to
// spill directly into the limb vector, invisibly to fault injection.
// ---------------------------------------------------------------------------

class BigIntFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::Enabled()) {
      GTEST_SKIP() << "failpoints not compiled in";
    }
  }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(BigIntFailpointTest, AdditionCarryOutSpillHitsAllocFailpoint) {
  failpoint::Arm("bigint/alloc", {failpoint::Action::kBadAlloc});
  BigInt a(std::numeric_limits<std::int64_t>::max());
  a += a;  // Still small: 2^64 - 2 fits the inline word.
  BigInt max_small = a + BigInt(1);
  (void)max_small;  // 2^64 - 1: the largest inline magnitude.
  BigInt b = a;
  EXPECT_THROW(b += BigInt(2), std::bad_alloc);  // Carry out of 64 bits.
  EXPECT_GE(failpoint::HitCount("bigint/alloc"), 1u);
}

TEST_F(BigIntFailpointTest, MultiplicationProductSpillHitsAllocFailpoint) {
  failpoint::Arm("bigint/alloc", {failpoint::Action::kBadAlloc});
  BigInt a(static_cast<std::int64_t>(1) << 32);
  EXPECT_THROW(a *= a, std::bad_alloc);  // 128-bit product fast path.
  EXPECT_GE(failpoint::HitCount("bigint/alloc"), 1u);
}

TEST_F(BigIntFailpointTest, SpilledOperationsHitAllocFailpoint) {
  BigInt big = BigInt::Pow(BigInt(7), 100);  // Build before arming.
  BigInt other = BigInt::Pow(BigInt(3), 90);
  failpoint::Arm("bigint/alloc", {failpoint::Action::kBadAlloc});
  {
    BigInt x = big;
    EXPECT_THROW(x += other, std::bad_alloc);
  }
  {
    BigInt x = big;
    EXPECT_THROW(x *= other, std::bad_alloc);
  }
  {
    BigInt q, r;
    EXPECT_THROW(BigInt::DivMod(big, other, &q, &r), std::bad_alloc);
  }
  EXPECT_GE(failpoint::HitCount("bigint/alloc"), 3u);
}

TEST_F(BigIntFailpointTest, ParseSpillHitsAllocFailpoint) {
  const std::string text = BigInt::Pow(BigInt(2), 100).ToString();
  failpoint::Arm("bigint/alloc", {failpoint::Action::kBadAlloc});
  EXPECT_THROW(BigInt::FromString(text), std::bad_alloc);  // SetMagnitude.
  EXPECT_GE(failpoint::HitCount("bigint/alloc"), 1u);
}

TEST_F(BigIntFailpointTest, SmallOnlyArithmeticNeverHitsAllocFailpoint) {
  failpoint::Arm("bigint/alloc", {failpoint::Action::kBadAlloc});
  BigInt a(123456789);
  a += BigInt(987654321);
  a *= BigInt(1000003);
  a -= BigInt(42);
  BigInt q, r;
  BigInt::DivMod(a, BigInt(97), &q, &r);
  EXPECT_EQ(failpoint::HitCount("bigint/alloc"), 0u);
}

}  // namespace
}  // namespace bagdet
