// Tests for answering queries from view counts alone (the use-case a
// positive determinacy verdict enables) and the BigInt root extraction
// beneath it.

#include <gtest/gtest.h>

#include "core/determinacy.h"
#include "query/cq.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

TEST(KthRootTest, SmallExactRoots) {
  EXPECT_EQ(BigInt::FloorKthRoot(BigInt(0), 3), BigInt(0));
  EXPECT_EQ(BigInt::FloorKthRoot(BigInt(1), 7), BigInt(1));
  EXPECT_EQ(BigInt::FloorKthRoot(BigInt(27), 3), BigInt(3));
  EXPECT_EQ(BigInt::FloorKthRoot(BigInt(64), 2), BigInt(8));
  EXPECT_EQ(BigInt::FloorKthRoot(BigInt(64), 3), BigInt(4));
  EXPECT_EQ(BigInt::FloorKthRoot(BigInt(64), 6), BigInt(2));
}

TEST(KthRootTest, FloorBehaviour) {
  EXPECT_EQ(BigInt::FloorKthRoot(BigInt(26), 3), BigInt(2));
  EXPECT_EQ(BigInt::FloorKthRoot(BigInt(28), 3), BigInt(3));
  EXPECT_EQ(BigInt::FloorKthRoot(BigInt(99), 2), BigInt(9));
  EXPECT_FALSE(BigInt::KthRoot(BigInt(26), 3).exact);
  EXPECT_TRUE(BigInt::KthRoot(BigInt(27), 3).exact);
}

TEST(KthRootTest, ErrorCases) {
  EXPECT_THROW(BigInt::FloorKthRoot(BigInt(8), 0), std::domain_error);
  EXPECT_THROW(BigInt::FloorKthRoot(BigInt(-8), 3), std::domain_error);
  EXPECT_EQ(BigInt::FloorKthRoot(BigInt(12345), 1), BigInt(12345));
}

class KthRootPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KthRootPropertyTest, RoundTripsOnRandomPowers) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    BigInt base(static_cast<std::int64_t>(rng.Below(1000)));
    std::uint64_t k = 2 + rng.Below(6);  // k >= 2: the k = 1 case is trivial.
    BigInt power = BigInt::Pow(base, k);
    BigInt::RootResult result = BigInt::KthRoot(power, k);
    EXPECT_TRUE(result.exact) << base << "^" << k;
    EXPECT_EQ(result.root, base);
    // Floor property on power ± 1 (base >= 2 so neither is a perfect
    // k-th power).
    if (base > BigInt(1)) {
      EXPECT_EQ(BigInt::FloorKthRoot(power + BigInt(1), k), base);
      EXPECT_EQ(BigInt::FloorKthRoot(power - BigInt(1), k),
                base - BigInt(1));
    }
  }
}

TEST_P(KthRootPropertyTest, HugeRoots) {
  Rng rng(GetParam() * 3 + 1);
  for (int iter = 0; iter < 10; ++iter) {
    // ~200-bit base, cube it: ~600-bit value.
    BigInt base(1);
    for (int i = 0; i < 6; ++i) {
      base = base * BigInt::FromString("4294967296") +
             BigInt(static_cast<std::int64_t>(rng.Below(1ull << 32)));
    }
    BigInt cube = BigInt::Pow(base, 3);
    EXPECT_EQ(BigInt::FloorKthRoot(cube, 3), base);
    EXPECT_EQ(BigInt::FloorKthRoot(cube + BigInt(17), 3), base);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KthRootPropertyTest,
                         ::testing::Values(61, 62, 63));

class AnswerFromCountsTest : public ::testing::Test {
 protected:
  // Example-32 instance: q = w1+w2+2w3, v1 = 2w1+w2+3w3, v2 = 5w1+2w2+7w3;
  // witness q(D) = v1(D)^3 / v2(D).
  void SetUp() override {
    schema_ = std::make_shared<Schema>();
    RelationId r = schema_->AddRelation("R", 2);
    Structure loop(schema_);
    loop.AddFact(r, {0, 0});
    Structure edge(schema_);
    edge.AddFact(r, {0, 1});
    Structure path2(schema_);
    path2.AddFact(r, {0, 1});
    path2.AddFact(r, {1, 2});
    auto combine = [&](int a, int b, int c) {
      Structure s(schema_);
      for (int i = 0; i < a; ++i) s = DisjointUnion(s, loop);
      for (int i = 0; i < b; ++i) s = DisjointUnion(s, edge);
      for (int i = 0; i < c; ++i) s = DisjointUnion(s, path2);
      return s;
    };
    query_ = BooleanQueryFromStructure("q", combine(1, 1, 2));
    views_ = {BooleanQueryFromStructure("v1", combine(2, 1, 3)),
              BooleanQueryFromStructure("v2", combine(5, 2, 7))};
    result_ = DecideBagDeterminacy(views_, query_);
    ASSERT_TRUE(result_.determined);
  }

  std::shared_ptr<Schema> schema_;
  ConjunctiveQuery query_;
  std::vector<ConjunctiveQuery> views_;
  DeterminacyResult result_;
};

TEST_F(AnswerFromCountsTest, RecoversTrueAnswerOnRandomDatabases) {
  Rng rng(4242);
  for (int iter = 0; iter < 12; ++iter) {
    Structure d = RandomStructure(schema_, 1 + rng.Below(4), &rng);
    std::vector<BigInt> counts;
    for (std::size_t index : result_.witness->view_indices) {
      counts.push_back(views_[index].CountHomomorphisms(d));
    }
    EXPECT_EQ(AnswerFromViewCounts(*result_.witness, counts),
              query_.CountHomomorphisms(d))
        << d.ToString();
  }
}

TEST_F(AnswerFromCountsTest, ZeroViewCountShortCircuits) {
  std::vector<BigInt> counts = {BigInt(0), BigInt(123)};
  EXPECT_EQ(AnswerFromViewCounts(*result_.witness, counts), BigInt(0));
}

TEST_F(AnswerFromCountsTest, InconsistentCountsRejected) {
  // Counts no real database can produce under this witness.
  std::vector<BigInt> counts = {BigInt(2), BigInt(3)};
  EXPECT_THROW(AnswerFromViewCounts(*result_.witness, counts),
               std::invalid_argument);
  EXPECT_THROW(AnswerFromViewCounts(*result_.witness, {BigInt(1)}),
               std::invalid_argument);
  EXPECT_THROW(
      AnswerFromViewCounts(*result_.witness, {BigInt(-1), BigInt(1)}),
      std::invalid_argument);
}

TEST(AnswerFromCountsFractionalTest, CubeRootWitness) {
  // q = w1+w2, v1 = 2w1+w2, v2 = w1+2w2: alpha = (1/3, 1/3) ... actually
  // q⃗ = (v⃗1 + v⃗2)/3, so q(D)^3 = v1(D)·v2(D): a genuine root extraction.
  auto schema = std::make_shared<Schema>();
  RelationId e = schema->AddRelation("E", 2);
  Structure loop(schema);
  loop.AddFact(e, {0, 0});
  Structure edge(schema);
  edge.AddFact(e, {0, 1});
  auto combine = [&](int a, int b) {
    Structure s(schema);
    for (int i = 0; i < a; ++i) s = DisjointUnion(s, loop);
    for (int i = 0; i < b; ++i) s = DisjointUnion(s, edge);
    return s;
  };
  ConjunctiveQuery q = BooleanQueryFromStructure("q", combine(1, 1));
  std::vector<ConjunctiveQuery> views = {
      BooleanQueryFromStructure("v1", combine(2, 1)),
      BooleanQueryFromStructure("v2", combine(1, 2)),
  };
  DeterminacyResult result = DecideBagDeterminacy(views, q);
  ASSERT_TRUE(result.determined);
  Rng rng(777);
  for (int iter = 0; iter < 10; ++iter) {
    Structure d = RandomStructure(schema, 1 + rng.Below(4), &rng);
    std::vector<BigInt> counts;
    for (std::size_t index : result.witness->view_indices) {
      counts.push_back(views[index].CountHomomorphisms(d));
    }
    EXPECT_EQ(AnswerFromViewCounts(*result.witness, counts),
              q.CountHomomorphisms(d));
  }
}

}  // namespace
}  // namespace bagdet
