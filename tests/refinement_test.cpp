#include "structs/refinement.h"

#include <gtest/gtest.h>

#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

Structure Cycle(const std::shared_ptr<Schema>& schema, Element n,
                Element offset = 0) {
  Structure s(schema, offset + n);
  for (Element i = 0; i < n; ++i) {
    s.AddFact(0, {static_cast<Element>(offset + i),
                  static_cast<Element>(offset + (i + 1) % n)});
  }
  return s;
}

TEST(RefinementTest, EmptyAndSingleton) {
  auto schema = GraphSchema();
  ColorRefinementResult empty = RefineColors(Structure(schema));
  EXPECT_EQ(empty.num_colors, 0u);
  ColorRefinementResult lone = RefineColors(Structure(schema, 1));
  EXPECT_EQ(lone.num_colors, 1u);
}

TEST(RefinementTest, PathGetsPositionalColors) {
  // In a directed 2-edge path 0→1→2, all three elements differ: source,
  // middle, sink.
  auto schema = GraphSchema();
  Structure path(schema);
  path.AddFact(0, {0, 1});
  path.AddFact(0, {1, 2});
  ColorRefinementResult r = RefineColors(path);
  EXPECT_EQ(r.num_colors, 3u);
}

TEST(RefinementTest, CycleIsColorRegular) {
  auto schema = GraphSchema();
  ColorRefinementResult r = RefineColors(Cycle(schema, 5));
  EXPECT_EQ(r.num_colors, 1u);  // Vertex-transitive: one stable class.
}

TEST(RefinementTest, IsomorphicStructuresShareHistogram) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("R", 2);
  schema->AddRelation("P", 1);
  Rng rng(31);
  for (int iter = 0; iter < 30; ++iter) {
    std::size_t n = 1 + rng.Below(6);
    Structure a = RandomStructure(schema, n, &rng);
    std::vector<Element> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<Element>(i);
    for (std::size_t i = n; i > 1; --i) std::swap(perm[i - 1], perm[rng.Below(i)]);
    Structure b = a.MapDomain(perm, n);
    EXPECT_FALSE(ColorRefinementDistinguishes(a, b)) << a.ToString();
    EXPECT_EQ(RefineColors(a).histogram, RefineColors(b).histogram);
  }
}

TEST(RefinementTest, DistinguishesDegreeTwins) {
  // Star with 2 leaves vs path of 2 edges: different degree structure.
  auto schema = GraphSchema();
  Structure star(schema);
  star.AddFact(0, {0, 1});
  star.AddFact(0, {0, 2});
  Structure path(schema);
  path.AddFact(0, {0, 1});
  path.AddFact(0, {1, 2});
  EXPECT_TRUE(ColorRefinementDistinguishes(star, path));
}

TEST(RefinementTest, KnownBlindSpotCyclePair) {
  // The classic 1-WL blind spot: C6 vs C3 + C3 — both 1-regular (in and
  // out), same size; refinement cannot tell them apart…
  auto schema = GraphSchema();
  Structure c6 = Cycle(schema, 6);
  Structure c3c3 = Cycle(schema, 3);
  c3c3 = DisjointUnion(c3c3, Cycle(schema, 3));
  EXPECT_FALSE(ColorRefinementDistinguishes(c6, c3c3));
  // …but the full isomorphism test (which backtracks) must.
  EXPECT_FALSE(IsIsomorphic(c6, c3c3));
}

TEST(RefinementTest, SoundnessOnRandomPairs) {
  // distinguishes ⟹ non-isomorphic, on random pairs.
  auto schema = GraphSchema();
  Rng rng(77);
  for (int iter = 0; iter < 40; ++iter) {
    std::size_t n = 1 + rng.Below(5);
    Structure a = RandomStructure(schema, n, &rng);
    Structure b = RandomStructure(schema, n, &rng);
    if (ColorRefinementDistinguishes(a, b)) {
      EXPECT_FALSE(IsIsomorphic(a, b)) << a.ToString() << " / " << b.ToString();
    }
  }
}

TEST(RefinementTest, RoundsAreBounded) {
  auto schema = GraphSchema();
  Structure path(schema);
  for (Element i = 0; i < 10; ++i) {
    path.AddFact(0, {i, static_cast<Element>(i + 1)});
  }
  ColorRefinementResult r = RefineColors(path);
  EXPECT_LE(r.rounds, path.DomainSize());
  EXPECT_EQ(r.num_colors, 11u);  // A directed path is fully rigid.
}

}  // namespace
}  // namespace bagdet
