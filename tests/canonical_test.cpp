// Differential tests pinning the canonical-form layer to the ground truth:
// CanonicalKeyOf must agree with IsIsomorphic on every pair (the key is a
// *complete* invariant, unlike color refinement), StructurePool must intern
// exactly the isomorphism classes, and HomCache must return the same counts
// as uncached CountHoms while actually deduplicating repeated work.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/determinacy.h"
#include "core/distinguisher.h"
#include "hom/hom.h"
#include "hom/hom_cache.h"
#include "structs/canonical.h"
#include "structs/generator.h"
#include "structs/pool.h"
#include "structs/refinement.h"
#include "structs/structure.h"
#include "util/rng.h"

namespace bagdet {
namespace {

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

std::shared_ptr<Schema> MixedSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  schema->AddRelation("P", 1);
  schema->AddRelation("T", 3);
  return schema;
}

Structure Cycle(const std::shared_ptr<Schema>& schema, Element n) {
  Structure s(schema);
  for (Element i = 0; i < n; ++i) {
    s.AddFact(0, {i, static_cast<Element>((i + 1) % n)});
  }
  return s;
}

/// A uniformly random relabeling of `s` (isomorphic by construction).
Structure PermutedCopy(const Structure& s, Rng* rng) {
  const std::size_t n = s.DomainSize();
  std::vector<Element> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<Element>(i);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng->Below(i)]);
  }
  return s.MapDomain(perm, n);
}

/// Flips one random potential fact of `s` (in or out).
Structure ToggleRandomFact(const Structure& s, Rng* rng) {
  Structure out(s.schema_ptr(), s.DomainSize());
  RelationId r =
      static_cast<RelationId>(rng->Below(s.schema().NumRelations()));
  Tuple target(s.schema().Arity(r));
  for (Element& e : target) {
    e = static_cast<Element>(rng->Below(s.DomainSize()));
  }
  for (RelationId rel = 0; rel < s.schema().NumRelations(); ++rel) {
    for (const Tuple& t : s.Facts(rel)) {
      if (rel == r && t == target) continue;  // Remove.
      out.AddFact(rel, t);
    }
  }
  if (!s.HasFact(r, target)) out.AddFact(r, target);  // Add.
  return out;
}

void ExpectKeyMatchesIsomorphism(const Structure& a, const Structure& b) {
  const bool iso = IsIsomorphic(a, b);
  const bool keys_equal = CanonicalKeyOf(a) == CanonicalKeyOf(b);
  EXPECT_EQ(keys_equal, iso) << "a = " << a.ToString()
                             << "\nb = " << b.ToString();
}

TEST(CanonicalKeyTest, DifferentialAgainstIsIsomorphic) {
  Rng rng(2022);
  int pairs = 0;
  for (const auto& schema : {GraphSchema(), MixedSchema()}) {
    for (int trial = 0; trial < 60; ++trial) {
      std::size_t n = 2 + rng.Below(5);
      Structure a = RandomStructure(schema, n, &rng);
      // Permuted copies must collide.
      Structure p = PermutedCopy(a, &rng);
      ExpectKeyMatchesIsomorphism(a, p);
      EXPECT_EQ(CanonicalKeyOf(a), CanonicalKeyOf(p));
      ++pairs;
      // Near-isomorphic pairs: a permuted copy with one fact toggled.
      ExpectKeyMatchesIsomorphism(a, ToggleRandomFact(p, &rng));
      ++pairs;
      // Independent random structures of the same size.
      ExpectKeyMatchesIsomorphism(a, RandomStructure(schema, n, &rng));
      ++pairs;
    }
  }
  EXPECT_GE(pairs, 200);
}

TEST(CanonicalKeyTest, SeparatesWLEquivalentPairs) {
  auto schema = GraphSchema();
  // The classic 1-WL failure: C6 vs C3 + C3 have identical stable color
  // histograms but are non-isomorphic. The complete canonical form must
  // separate them.
  Structure c6 = Cycle(schema, 6);
  Structure c3_c3 = DisjointUnion(Cycle(schema, 3), Cycle(schema, 3));
  ASSERT_FALSE(ColorRefinementDistinguishes(c6, c3_c3));
  ASSERT_FALSE(IsIsomorphic(c6, c3_c3));
  EXPECT_NE(CanonicalKeyOf(c6), CanonicalKeyOf(c3_c3));
}

TEST(CanonicalKeyTest, ComponentMultisetSemantics) {
  auto schema = GraphSchema();
  Structure c3 = Cycle(schema, 3);
  Structure c5 = Cycle(schema, 5);
  // Order of components must not matter...
  EXPECT_EQ(CanonicalKeyOf(DisjointUnion(c3, c5)),
            CanonicalKeyOf(DisjointUnion(c5, c3)));
  // ...but multiplicity must.
  EXPECT_NE(CanonicalKeyOf(c3), CanonicalKeyOf(DisjointUnion(c3, c3)));
  // Isolated elements count too.
  Structure with_isolated = c3;
  with_isolated.AddElement();
  EXPECT_NE(CanonicalKeyOf(c3), CanonicalKeyOf(with_isolated));
}

TEST(CanonicalKeyTest, NullaryFactsAndSchemasAreDistinguished) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  schema->AddRelation("Flag", 0);
  Structure plain(schema, 1);
  plain.AddFact(0, {0, 0});
  Structure flagged = plain;
  flagged.AddFact(1, {});
  EXPECT_NE(CanonicalKeyOf(plain), CanonicalKeyOf(flagged));
  // Same fact shape over a different schema must not collide.
  Structure other(GraphSchema(), 1);
  other.AddFact(0, {0, 0});
  EXPECT_NE(CanonicalKeyOf(plain), CanonicalKeyOf(other));
}

TEST(CanonicalKeyTest, HandlesAutomorphismRichComponents) {
  // A clique's search tree is factorial without automorphism pruning; the
  // transposition pruning must collapse it (this test hangs, not fails,
  // on a regression).
  Rng rng(5);
  auto schema = GraphSchema();
  auto clique = [&](Element n) {
    Structure s(schema, n);
    for (Element i = 0; i < n; ++i) {
      for (Element j = 0; j < n; ++j) {
        if (i != j) s.AddFact(0, {i, j});
      }
    }
    return s;
  };
  Structure k9 = clique(9);
  EXPECT_EQ(CanonicalKeyOf(k9), CanonicalKeyOf(PermutedCopy(k9, &rng)));
  // Near-isomorphic: K9 minus one edge is not isomorphic to K9.
  Structure almost = ToggleRandomFact(k9, &rng);
  ASSERT_FALSE(IsIsomorphic(k9, almost));
  EXPECT_NE(CanonicalKeyOf(k9), CanonicalKeyOf(almost));
}

TEST(CanonicalKeyTest, StableUnderSchemaGrowth) {
  // Schemas are shared and append-only: a parser grows one schema across
  // rules, so structures canonicalized early must still compare equal to
  // structures canonicalized after the schema gained relations (the
  // certificate is schema-agnostic; the digest binds at key-assembly time).
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  Structure early(schema, 2);
  early.AddFact(0, {0, 1});
  CanonicalKey before_growth = CanonicalKeyOf(early);  // Caches certificate.
  schema->AddRelation("Later", 1);
  Structure late(schema, 2);
  late.AddFact(0, {0, 1});
  EXPECT_EQ(CanonicalKeyOf(early), CanonicalKeyOf(late));
  // The digest tracks the current schema contents.
  EXPECT_NE(CanonicalKeyOf(early), before_growth);
}

TEST(StructurePoolTest, InternsIsomorphismClasses) {
  Rng rng(7);
  auto schema = GraphSchema();
  StructurePool pool;
  Structure a = RandomConnectedStructure(schema, 5, &rng);
  StructureRef ref = pool.Intern(a);
  // Every permuted copy lands on the same ref without growing the pool.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(pool.Intern(PermutedCopy(a, &rng)), ref);
  }
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(IsIsomorphic(pool.At(ref), a));
  // Non-isomorphic structures get fresh refs; Find sees only interned ones.
  Structure c4 = Cycle(schema, 4);
  EXPECT_EQ(pool.Find(c4), kInvalidStructureRef);
  StructureRef c4_ref = pool.Intern(c4);
  EXPECT_NE(c4_ref, ref);
  EXPECT_EQ(pool.Find(Cycle(schema, 4)), c4_ref);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(HomCacheTest, CountsMatchUncachedCounting) {
  Rng rng(99);
  for (const auto& schema : {GraphSchema(), MixedSchema()}) {
    HomCache cache;
    for (int trial = 0; trial < 25; ++trial) {
      Structure from = RandomStructure(schema, 1 + rng.Below(4), &rng);
      Structure to = RandomStructure(schema, 1 + rng.Below(5), &rng);
      EXPECT_EQ(cache.Count(from, to), CountHoms(from, to))
          << "from = " << from.ToString() << "\nto = " << to.ToString();
    }
  }
}

TEST(HomCacheTest, DeduplicatesRepeatedAndIsomorphicQueries) {
  Rng rng(3);
  auto schema = GraphSchema();
  HomCache cache;
  Structure from = Cycle(schema, 3);
  Structure to = RandomStructure(schema, 5, &rng);
  BigInt first = cache.Count(from, to);
  HomCache::Stats after_first = cache.stats();
  EXPECT_EQ(after_first.misses, 1u);
  // The same pair again, and an isomorphic relabeling of it: hits only.
  EXPECT_EQ(cache.Count(from, to), first);
  EXPECT_EQ(cache.Count(PermutedCopy(from, &rng), PermutedCopy(to, &rng)),
            first);
  HomCache::Stats after = cache.stats();
  EXPECT_EQ(after.misses, 1u);
  EXPECT_EQ(after.hits, 2u);
}

TEST(HomCacheTest, BatchMatchesSerialCounts) {
  Rng rng(41);
  auto schema = MixedSchema();
  HomCache cache;
  std::vector<std::pair<StructureRef, StructureRef>> pairs;
  for (int i = 0; i < 12; ++i) {
    StructureRef from =
        cache.Intern(RandomConnectedStructure(schema, 2 + rng.Below(3), &rng));
    StructureRef to = cache.Intern(RandomStructure(schema, 4, &rng));
    pairs.emplace_back(from, to);
  }
  pairs.push_back(pairs.front());  // Duplicates must be consistent.
  std::vector<BigInt> batch = cache.BatchCountHoms(pairs, 4);
  ASSERT_EQ(batch.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(batch[i], CountHoms(cache.pool().At(pairs[i].first),
                                  cache.pool().At(pairs[i].second)));
  }
}

TEST(HomCacheTest, DisconnectedSourcesUseComponentEntries) {
  Rng rng(11);
  auto schema = GraphSchema();
  HomCache cache;
  Structure c3 = Cycle(schema, 3);
  Structure c4 = Cycle(schema, 4);
  Structure to = RandomStructure(schema, 5, &rng);
  // Warm the component-level entries.
  BigInt a = cache.Count(c3, to);
  BigInt b = cache.Count(c4, to);
  HomCache::Stats warm = cache.stats();
  // The union's count is the product of the cached component counts and
  // must not recount anything.
  EXPECT_EQ(cache.Count(DisjointUnion(c3, c4), to), a * b);
  EXPECT_EQ(cache.stats().misses, warm.misses);
}

TEST(InducedSubstructureGuardTest, RejectsDomainsBeyondMaskWidth) {
  auto schema = GraphSchema();
  Structure big(schema, 65);
  EXPECT_THROW(InducedSubstructure(big, ~0ull), std::invalid_argument);
  // 64 elements is exactly addressable and must still work.
  Structure exact(schema, 64);
  exact.AddFact(0, {0, 63});
  Structure kept = InducedSubstructure(exact, ~0ull);
  EXPECT_EQ(kept.DomainSize(), 64u);
  EXPECT_TRUE(kept.HasFact(0, {0, 63}));
}

TEST(ExponentGuardTest, PathologicalWitnessExponentsFailLoudly) {
  // A witness whose common denominator exceeds int64 must throw instead of
  // wrapping through the uint64 exponent casts.
  DeterminacyWitness witness;
  witness.view_indices = {0};
  BigInt huge = BigInt::Pow(BigInt(2), 80);
  witness.exponents = Vec{Rational(BigInt(1), huge)};
  EXPECT_THROW(AnswerFromViewCounts(witness, {BigInt(2)}),
               std::invalid_argument);
}

}  // namespace
}  // namespace bagdet
