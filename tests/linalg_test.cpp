#include <gtest/gtest.h>

#include "linalg/gauss.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace bagdet {
namespace {

Rational Q(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

TEST(VecTest, ArithmeticAndPredicates) {
  Vec a{Q(1), Q(2), Q(3)};
  Vec b{Q(4), Q(-2), Q(0)};
  EXPECT_EQ(a + b, (Vec{Q(5), Q(0), Q(3)}));
  EXPECT_EQ(a - b, (Vec{Q(-3), Q(4), Q(3)}));
  EXPECT_EQ(a * Q(2), (Vec{Q(2), Q(4), Q(6)}));
  EXPECT_EQ(Vec::Dot(a, b), Q(0));
  EXPECT_TRUE(a.IsNonNegative());
  EXPECT_FALSE(b.IsNonNegative());
  EXPECT_TRUE((Vec{Q(0), Q(0)}).IsZero());
}

TEST(VecTest, HadamardMatchesDefinition48) {
  Vec u{Q(2), Q(3), Q(-1)};
  Vec v{Q(5), Q(0), Q(4)};
  EXPECT_EQ(Vec::Hadamard(u, v), (Vec{Q(10), Q(0), Q(-4)}));
}

TEST(VecTest, CommonDenominatorIsLcm) {
  Vec v{Q(1, 2), Q(1, 3), Q(5)};
  EXPECT_EQ(v.CommonDenominator(), BigInt(6));
  EXPECT_TRUE((v * Rational(BigInt(6))).IsIntegral());
  EXPECT_EQ((Vec{Q(2), Q(3)}).CommonDenominator(), BigInt(1));
}

TEST(VecTest, SizeMismatchThrows) {
  Vec a{Q(1)};
  Vec b{Q(1), Q(2)};
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(Vec::Dot(a, b), std::invalid_argument);
}

TEST(MatTest, IdentityAndMultiply) {
  Mat id = Mat::Identity(3);
  Mat m{{Q(1), Q(2), Q(0)}, {Q(0), Q(1), Q(4)}, {Q(5), Q(0), Q(1)}};
  EXPECT_EQ(id.Multiply(m), m);
  EXPECT_EQ(m.Multiply(id), m);
  Vec v{Q(1), Q(1), Q(1)};
  EXPECT_EQ(m.Apply(v), (Vec{Q(3), Q(5), Q(6)}));
}

TEST(MatTest, TransposeAndRowsCols) {
  Mat m{{Q(1), Q(2)}, {Q(3), Q(4)}, {Q(5), Q(6)}};
  Mat t = m.Transposed();
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(m.Row(1), (Vec{Q(3), Q(4)}));
  EXPECT_EQ(m.Col(1), (Vec{Q(2), Q(4), Q(6)}));
  EXPECT_EQ(t.At(0, 2), Q(5));
}

TEST(MatTest, FromColumnsAndRows) {
  std::vector<Vec> cols = {{Q(1), Q(2)}, {Q(3), Q(4)}};
  Mat m = Mat::FromColumns(cols);
  EXPECT_EQ(m.At(0, 1), Q(3));
  EXPECT_EQ(Mat::FromRows(cols).At(0, 1), Q(2));
}

TEST(GaussTest, RrefRankAndPivots) {
  Mat m{{Q(1), Q(2), Q(3)}, {Q(2), Q(4), Q(6)}, {Q(1), Q(0), Q(1)}};
  Rref rref = ReduceToRref(m);
  EXPECT_EQ(rref.rank, 2u);
  EXPECT_EQ(rref.pivots, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(Rank(m), 2u);
}

TEST(GaussTest, DeterminantAndNonsingularity) {
  Mat m{{Q(2), Q(4)}, {Q(1), Q(2)}};  // The paper's Example 39 matrix M_W.
  EXPECT_EQ(Determinant(m), Q(0));
  EXPECT_FALSE(IsNonsingular(m));
  Mat n{{Q(1), Q(4)}, {Q(1), Q(2)}};  // Example 54's M_S.
  EXPECT_EQ(Determinant(n), Q(-2));
  EXPECT_TRUE(IsNonsingular(n));
}

TEST(GaussTest, DeterminantRequiresSquare) {
  Mat m(2, 3);
  EXPECT_THROW(Determinant(m), std::invalid_argument);
}

TEST(GaussTest, InverseRoundTrip) {
  Mat m{{Q(1), Q(4)}, {Q(1), Q(2)}};
  std::optional<Mat> inv = Inverse(m);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(m.Multiply(*inv), Mat::Identity(2));
  EXPECT_EQ(inv->Multiply(m), Mat::Identity(2));
  EXPECT_FALSE(Inverse(Mat{{Q(2), Q(4)}, {Q(1), Q(2)}}).has_value());
}

TEST(GaussTest, SolveConsistentSystem) {
  Mat a{{Q(1), Q(1)}, {Q(1), Q(-1)}};
  Vec b{Q(3), Q(1)};
  std::optional<Vec> x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(a.Apply(*x), b);
  EXPECT_EQ(*x, (Vec{Q(2), Q(1)}));
}

TEST(GaussTest, SolveInconsistentReturnsNullopt) {
  Mat a{{Q(1), Q(2)}, {Q(2), Q(4)}};
  Vec b{Q(1), Q(3)};
  EXPECT_FALSE(SolveLinearSystem(a, b).has_value());
}

TEST(GaussTest, SolveUnderdeterminedPicksParticular) {
  Mat a{{Q(1), Q(2), Q(3)}};
  Vec b{Q(6)};
  std::optional<Vec> x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(a.Apply(*x), b);
}

TEST(GaussTest, NullspaceBasisSpansKernel) {
  Mat a{{Q(1), Q(2), Q(3)}, {Q(2), Q(4), Q(6)}};
  std::vector<Vec> basis = NullspaceBasis(a);
  EXPECT_EQ(basis.size(), 2u);
  for (const Vec& v : basis) {
    EXPECT_TRUE(a.Apply(v).IsZero());
    EXPECT_FALSE(v.IsZero());
  }
  EXPECT_TRUE(NullspaceBasis(Mat::Identity(3)).empty());
}

TEST(GaussTest, SpanMembershipWithWitness) {
  std::vector<Vec> basis = {{Q(2), Q(1), Q(3)}, {Q(5), Q(2), Q(7)}};
  Vec target{Q(1), Q(1), Q(2)};  // Example 32: q⃗ = 3·v⃗1 − v⃗2.
  SpanMembership result = TestSpanMembership(basis, target);
  ASSERT_TRUE(result.in_span);
  EXPECT_EQ(result.coefficients, (Vec{Q(3), Q(-1)}));
  Vec outside{Q(1), Q(0), Q(0)};
  EXPECT_FALSE(TestSpanMembership(basis, outside).in_span);
}

TEST(GaussTest, SpanMembershipEdgeCases) {
  // Zero target is in any span, even the empty one.
  EXPECT_TRUE(TestSpanMembership({}, Vec{Q(0), Q(0)}).in_span);
  EXPECT_FALSE(TestSpanMembership({}, Vec{Q(1)}).in_span);
  // Dependent basis still yields a witness.
  std::vector<Vec> dependent = {{Q(1), Q(0)}, {Q(2), Q(0)}, {Q(0), Q(1)}};
  SpanMembership r = TestSpanMembership(dependent, Vec{Q(4), Q(5)});
  ASSERT_TRUE(r.in_span);
  Vec reconstructed(2);
  for (std::size_t i = 0; i < dependent.size(); ++i) {
    reconstructed += dependent[i] * r.coefficients[i];
  }
  EXPECT_EQ(reconstructed, (Vec{Q(4), Q(5)}));
}

TEST(GaussTest, OrthogonalWitnessFact5) {
  std::vector<Vec> basis = {{Q(1), Q(0), Q(1)}, {Q(0), Q(1), Q(1)}};
  Vec target{Q(0), Q(0), Q(1)};  // Not in the span.
  std::optional<Vec> z = OrthogonalWitness(basis, target);
  ASSERT_TRUE(z.has_value());
  for (const Vec& u : basis) EXPECT_EQ(Vec::Dot(*z, u), Q(0));
  EXPECT_NE(Vec::Dot(*z, target), Q(0));
  EXPECT_TRUE(z->IsIntegral()) << "Lemma 56 needs z ∈ Z^k";
}

TEST(GaussTest, OrthogonalWitnessAbsentWhenInSpan) {
  std::vector<Vec> basis = {{Q(1), Q(0)}, {Q(0), Q(1)}};
  EXPECT_FALSE(OrthogonalWitness(basis, Vec{Q(2), Q(3)}).has_value());
}

TEST(GaussTest, OrthogonalWitnessEmptyBasis) {
  std::optional<Vec> z = OrthogonalWitness({}, Vec{Q(0), Q(7)});
  ASSERT_TRUE(z.has_value());
  EXPECT_NE(Vec::Dot(*z, Vec{Q(0), Q(7)}), Q(0));
}

TEST(GaussTest, VandermondeNonsingularLemma46) {
  // Lemma 46: pairwise distinct nodes => nonsingular.
  Mat v = Vandermonde({Q(1), Q(2), Q(3), Q(5)});
  EXPECT_TRUE(IsNonsingular(v));
  EXPECT_EQ(v.At(2, 3), Q(27));
  // Repeated nodes => singular.
  EXPECT_FALSE(IsNonsingular(Vandermonde({Q(1), Q(2), Q(2)})));
  // 0^0 = 1 convention puts a 1 in the first column even for node 0.
  Mat with_zero = Vandermonde({Q(0), Q(1)});
  EXPECT_EQ(with_zero.At(0, 0), Q(1));
  EXPECT_TRUE(IsNonsingular(with_zero));
}

class GaussRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaussRandomTest, InverseAndSolveConsistency) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    std::size_t n = 1 + rng.Below(5);
    Mat m(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        m.At(r, c) = Q(rng.Range(-5, 5));
      }
    }
    std::optional<Mat> inv = Inverse(m);
    EXPECT_EQ(inv.has_value(), IsNonsingular(m));
    EXPECT_EQ(inv.has_value(), !Determinant(m).IsZero());
    if (inv.has_value()) {
      EXPECT_EQ(m.Multiply(*inv), Mat::Identity(n));
      Vec b(n);
      for (std::size_t i = 0; i < n; ++i) b[i] = Q(rng.Range(-9, 9));
      std::optional<Vec> x = SolveLinearSystem(m, b);
      ASSERT_TRUE(x.has_value());
      EXPECT_EQ(*x, inv->Apply(b));
    }
  }
}

TEST_P(GaussRandomTest, RankNullityTheorem) {
  Rng rng(GetParam() + 1000);
  for (int iter = 0; iter < 30; ++iter) {
    std::size_t rows = 1 + rng.Below(4);
    std::size_t cols = 1 + rng.Below(5);
    Mat m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        m.At(r, c) = Q(rng.Range(-3, 3));
      }
    }
    EXPECT_EQ(Rank(m) + NullspaceBasis(m).size(), cols);
    EXPECT_EQ(Rank(m), Rank(m.Transposed()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaussRandomTest,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace bagdet
