#include "structs/structure.h"

#include <gtest/gtest.h>

#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

std::shared_ptr<Schema> TwoColorSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("R", 2);
  schema->AddRelation("G", 2);
  return schema;
}

TEST(SchemaTest, AddAndLookup) {
  Schema schema;
  RelationId e = schema.AddRelation("E", 2);
  RelationId p = schema.AddRelation("P", 1);
  EXPECT_EQ(schema.NumRelations(), 2u);
  EXPECT_EQ(schema.Name(e), "E");
  EXPECT_EQ(schema.Arity(p), 1u);
  EXPECT_EQ(schema.Find("E"), std::optional<RelationId>(e));
  EXPECT_FALSE(schema.Find("Z").has_value());
  EXPECT_EQ(schema.MaxArity(), 2u);
  EXPECT_FALSE(schema.AllArity(2));
}

TEST(SchemaTest, RedeclareSameArityIsIdempotent) {
  Schema schema;
  RelationId e1 = schema.AddRelation("E", 2);
  RelationId e2 = schema.AddRelation("E", 2);
  EXPECT_EQ(e1, e2);
  EXPECT_THROW(schema.AddRelation("E", 3), std::invalid_argument);
}

TEST(StructureTest, AddFactDeduplicatesAndSorts) {
  auto schema = GraphSchema();
  Structure s(schema);
  s.AddFact(0, {1, 0});
  s.AddFact(0, {0, 1});
  s.AddFact(0, {1, 0});  // Duplicate.
  EXPECT_EQ(s.NumFacts(), 2u);
  EXPECT_EQ(s.Facts(0)[0], (Tuple{0, 1}));
  EXPECT_EQ(s.Facts(0)[1], (Tuple{1, 0}));
  EXPECT_EQ(s.DomainSize(), 2u);
  EXPECT_TRUE(s.HasFact(0, {0, 1}));
  EXPECT_FALSE(s.HasFact(0, {0, 0}));
}

TEST(StructureTest, ArityMismatchThrows) {
  auto schema = GraphSchema();
  Structure s(schema);
  EXPECT_THROW(s.AddFact(0, {0}), std::invalid_argument);
  EXPECT_THROW(s.AddFact(7, {0, 1}), std::invalid_argument);
}

TEST(StructureTest, IsConnectedCases) {
  auto schema = GraphSchema();
  Structure path(schema);
  path.AddFact(0, {0, 1});
  path.AddFact(0, {1, 2});
  EXPECT_TRUE(path.IsConnected());

  Structure two_edges(schema);
  two_edges.AddFact(0, {0, 1});
  two_edges.AddFact(0, {2, 3});
  EXPECT_FALSE(two_edges.IsConnected());

  Structure empty(schema);
  EXPECT_FALSE(empty.IsConnected());

  Structure lone(schema, 1);
  EXPECT_TRUE(lone.IsConnected());

  Structure with_isolated(schema, 3);
  with_isolated.AddFact(0, {0, 1});
  EXPECT_FALSE(with_isolated.IsConnected());
}

TEST(StructureTest, NullaryFactConnectivity) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("H", 0);
  Structure h(schema);
  h.AddFact(0, {});
  EXPECT_TRUE(h.IsConnected());  // A single nullary fact.
  EXPECT_EQ(h.DomainSize(), 0u);
  EXPECT_EQ(h.NumFacts(), 1u);
}

TEST(StructureTest, DisjointUnionOffsetsElements) {
  auto schema = GraphSchema();
  Structure a(schema);
  a.AddFact(0, {0, 1});
  Structure b(schema);
  b.AddFact(0, {0, 0});
  Structure u = DisjointUnion(a, b);
  EXPECT_EQ(u.DomainSize(), 3u);
  EXPECT_TRUE(u.HasFact(0, {0, 1}));
  EXPECT_TRUE(u.HasFact(0, {2, 2}));
  EXPECT_EQ(u.NumFacts(), 2u);
}

TEST(StructureTest, ProductMatchesDefinition) {
  auto schema = GraphSchema();
  Structure a(schema);
  a.AddFact(0, {0, 1});  // One edge.
  Structure b(schema);
  b.AddFact(0, {0, 1});
  b.AddFact(0, {1, 0});  // A 2-cycle.
  Structure p = Product(a, b);
  EXPECT_EQ(p.DomainSize(), 4u);
  EXPECT_EQ(p.NumFacts(), 2u);
  // <0,0> -> <1,1> encoded as 0*2+0=0 -> 1*2+1=3.
  EXPECT_TRUE(p.HasFact(0, {0, 3}));
  EXPECT_TRUE(p.HasFact(0, {1, 2}));
}

TEST(StructureTest, ScalarMultipleAndEmpty) {
  auto schema = GraphSchema();
  Structure a(schema);
  a.AddFact(0, {0, 1});
  Structure three = ScalarMultiple(3, a);
  EXPECT_EQ(three.DomainSize(), 6u);
  EXPECT_EQ(three.NumFacts(), 3u);
  Structure zero = ScalarMultiple(0, a);
  EXPECT_TRUE(zero.IsEmpty());
}

TEST(StructureTest, IteratedProductPowerZeroIsAllLoops) {
  auto schema = TwoColorSchema();
  Structure a(schema);
  a.AddFact(0, {0, 1});
  Structure p0 = IteratedProduct(a, 0);
  EXPECT_EQ(p0.DomainSize(), 1u);
  EXPECT_TRUE(p0.HasFact(0, {0, 0}));
  EXPECT_TRUE(p0.HasFact(1, {0, 0}));  // Loops of ALL relation types.
  Structure p1 = IteratedProduct(a, 1);
  EXPECT_EQ(p1.DomainSize(), 1u * a.DomainSize());
  EXPECT_EQ(p1.NumFacts(), 1u);
  Structure p2 = IteratedProduct(a, 2);
  EXPECT_EQ(p2.DomainSize(), 4u);
}

TEST(StructureTest, MapDomainQuotient) {
  auto schema = GraphSchema();
  Structure a(schema);
  a.AddFact(0, {0, 1});
  a.AddFact(0, {1, 2});
  // Merge 0 and 2.
  Structure q = a.MapDomain({0, 1, 0}, 2);
  EXPECT_EQ(q.DomainSize(), 2u);
  EXPECT_TRUE(q.HasFact(0, {0, 1}));
  EXPECT_TRUE(q.HasFact(0, {1, 0}));
}

TEST(ConnectedComponentsTest, SplitsAndRenames) {
  auto schema = GraphSchema();
  Structure s(schema, 5);
  s.AddFact(0, {0, 1});
  s.AddFact(0, {1, 2});
  s.AddFact(0, {3, 3});
  // Element 4 is isolated.
  std::vector<Structure> components = ConnectedComponents(s);
  ASSERT_EQ(components.size(), 3u);
  std::size_t sizes[3] = {components[0].DomainSize(),
                          components[1].DomainSize(),
                          components[2].DomainSize()};
  std::size_t total = sizes[0] + sizes[1] + sizes[2];
  EXPECT_EQ(total, 5u);
  std::size_t facts = 0;
  for (const auto& c : components) facts += c.NumFacts();
  EXPECT_EQ(facts, 3u);
}

TEST(ConnectedComponentsTest, NullaryFactsAreOwnComponents) {
  auto schema = std::make_shared<Schema>();
  RelationId h = schema->AddRelation("H", 0);
  RelationId e = schema->AddRelation("E", 2);
  Structure s(schema);
  s.AddFact(h, {});
  s.AddFact(e, {0, 1});
  std::vector<Structure> components = ConnectedComponents(s);
  ASSERT_EQ(components.size(), 2u);
  int nullary = 0;
  for (const auto& c : components) {
    if (c.DomainSize() == 0) ++nullary;
  }
  EXPECT_EQ(nullary, 1);
}

TEST(ConnectedComponentsTest, EmptyStructureHasNone) {
  EXPECT_TRUE(ConnectedComponents(Structure(GraphSchema())).empty());
}

TEST(IsomorphismTest, DetectsRenamedCopies) {
  auto schema = GraphSchema();
  Structure a(schema);
  a.AddFact(0, {0, 1});
  a.AddFact(0, {1, 2});
  Structure b(schema);
  b.AddFact(0, {2, 0});
  b.AddFact(0, {0, 1});
  EXPECT_TRUE(IsIsomorphic(a, b));
}

TEST(IsomorphismTest, DistinguishesOrientation) {
  auto schema = GraphSchema();
  // Out-star vs in-star on 3 elements.
  Structure out(schema);
  out.AddFact(0, {0, 1});
  out.AddFact(0, {0, 2});
  Structure in(schema);
  in.AddFact(0, {1, 0});
  in.AddFact(0, {2, 0});
  EXPECT_FALSE(IsIsomorphic(out, in));
}

TEST(IsomorphismTest, Figure1StructuresAreNonIsomorphic) {
  // The paper's Figure 1: w2 = w1 plus green edges; same red skeleton.
  auto schema = TwoColorSchema();
  Structure w1(schema);
  w1.AddFact(0, {0, 1});
  Structure w2(schema);
  w2.AddFact(0, {0, 1});
  w2.AddFact(1, {0, 1});
  EXPECT_FALSE(IsIsomorphic(w1, w2));
  EXPECT_TRUE(IsIsomorphic(w1, w1));
}

TEST(IsomorphismTest, RegularNonIsomorphicPair) {
  // 6-cycle vs two 3-cycles: same degree sequence, non-isomorphic.
  auto schema = GraphSchema();
  Structure c6(schema);
  for (Element i = 0; i < 6; ++i) c6.AddFact(0, {i, static_cast<Element>((i + 1) % 6)});
  Structure c3c3(schema);
  for (Element i = 0; i < 3; ++i) c3c3.AddFact(0, {i, static_cast<Element>((i + 1) % 3)});
  for (Element i = 3; i < 6; ++i) {
    c3c3.AddFact(0, {i, static_cast<Element>(3 + (i - 3 + 1) % 3)});
  }
  EXPECT_FALSE(IsIsomorphic(c6, c3c3));
}

TEST(IsomorphismTest, RandomRelabelingsAlwaysIsomorphic) {
  auto schema = TwoColorSchema();
  Rng rng(99);
  for (int iter = 0; iter < 25; ++iter) {
    std::size_t n = 1 + rng.Below(6);
    Structure a = RandomStructure(schema, n, &rng);
    // Random permutation.
    std::vector<Element> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<Element>(i);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.Below(i)]);
    }
    Structure b = a.MapDomain(perm, n);
    EXPECT_TRUE(IsIsomorphic(a, b));
  }
}

TEST(GeneratorTest, EnumerateStructuresCountsAllSubsets) {
  auto schema = GraphSchema();
  int count = 0;
  EnumerateStructures(schema, 1, [&](const Structure&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2);  // Loop present or absent.
  count = 0;
  EnumerateStructures(schema, 2, [&](const Structure&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 16);  // 2^(2*2).
}

TEST(GeneratorTest, EnumerateStopsEarly) {
  auto schema = GraphSchema();
  int count = 0;
  bool completed = EnumerateStructures(schema, 1, [&](const Structure&) {
    ++count;
    return false;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 1);
}

TEST(GeneratorTest, EnumerateRefusesHugeSpaces) {
  auto schema = GraphSchema();
  EXPECT_THROW(
      EnumerateStructures(schema, 6, [](const Structure&) { return true; }),
      std::invalid_argument);
}

TEST(GeneratorTest, RandomConnectedIsConnected) {
  auto schema = GraphSchema();
  Rng rng(5);
  for (int iter = 0; iter < 20; ++iter) {
    Structure s = RandomConnectedStructure(schema, 1 + rng.Below(5), &rng);
    EXPECT_TRUE(s.IsConnected());
  }
}

TEST(GeneratorTest, CountPotentialFacts) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("H", 0);
  schema->AddRelation("P", 1);
  schema->AddRelation("E", 2);
  EXPECT_EQ(CountPotentialFacts(*schema, 3), 1u + 3u + 9u);
}

}  // namespace
}  // namespace bagdet
