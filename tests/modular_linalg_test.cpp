// Differential suite for the certified multi-modular linear algebra
// driver (linalg/modular_solve.h): the modular fast path must return
// results bit-for-bit identical to plain exact elimination on every input
// — random dense, singular, underdetermined, huge-entry, rational, and
// adversarial unlucky-prime matrices — and must decline (so the caller
// falls back to the exact path) when it is fed only bad primes.

#include <gtest/gtest.h>

#include <vector>

#include "linalg/gauss.h"
#include "linalg/matrix.h"
#include "linalg/modmat.h"
#include "linalg/modular_solve.h"
#include "test_matrices.h"
#include "util/bigint.h"
#include "util/rng.h"

namespace bagdet {
namespace {

using testmat::RandomBig;

Rational Q(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

// The head of the driver's built-in prime sequence.
constexpr std::uint64_t kFirstPrime = 4611686018427387847ull;

/// The six entry/shape regimes the suite sweeps. Every regime includes
/// rank-deficient shapes (wide/tall dims) by construction.
enum class Regime {
  kSmallInt,        // Dense entries in [-9, 9].
  kSmallRational,   // Entries a/b with small a, b.
  kHugeInt,         // 128–256 bit hom-count-sized integer entries.
  kLowRank,         // Product of thin factors: provably singular.
  kHugeLowRank,     // Rank-deficient AND huge: the lift reconstructs
                    // genuinely large rationals (not just an identity).
  kDuplicatedRows,  // Underdetermined: repeated/scaled rows.
  kUnluckyPrime,    // Every entry divisible by the driver's first prime.
};

Mat RandomMatrixFor(Regime regime, Rng* rng) {
  const std::size_t rows = 1 + rng->Below(7);
  const std::size_t cols = 1 + rng->Below(7);
  Mat m(rows, cols);
  switch (regime) {
    case Regime::kSmallInt:
      m = testmat::RandomIntMatrix(rng, rows, cols, -9, 9);
      break;
    case Regime::kSmallRational:
      m = testmat::RandomRationalMatrix(rng, rows, cols, 12, 12);
      break;
    case Regime::kHugeInt:
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          m.At(r, c) = Rational(testmat::RandomBigSigned(
              rng, 4 + static_cast<int>(rng->Below(5))));
        }
      }
      break;
    case Regime::kLowRank: {
      const std::size_t inner = 1 + rng->Below(3);  // rank <= inner.
      Mat left(rows, inner);
      Mat right(inner, cols);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < inner; ++c) {
          left.At(r, c) = Q(rng->Range(-5, 5));
        }
      }
      for (std::size_t r = 0; r < inner; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          right.At(r, c) = Q(rng->Range(-5, 5));
        }
      }
      m = left.Multiply(right);
      break;
    }
    case Regime::kHugeLowRank: {
      const std::size_t inner = 1 + rng->Below(2);
      for (std::size_t r = 0; r < rows; ++r) {
        if (r < inner) {
          for (std::size_t c = 0; c < cols; ++c) {
            BigInt v = RandomBig(rng, 4 + static_cast<int>(rng->Below(4)));
            if (rng->Chance(1, 2)) v = -v;
            m.At(r, c) = Rational(std::move(v));
          }
        } else {
          for (std::size_t c = 0; c < cols; ++c) {
            Rational sum;
            for (std::size_t i = 0; i < inner; ++i) {
              sum += m.At(i, c) * Q(rng->Range(-3, 3));
            }
            m.At(r, c) = sum;
          }
        }
      }
      break;
    }
    case Regime::kDuplicatedRows:
      for (std::size_t r = 0; r < rows; ++r) {
        if (r > 0 && rng->Chance(1, 2)) {
          const std::size_t src = rng->Below(r);
          const Rational scale = Q(rng->Range(-3, 3));
          for (std::size_t c = 0; c < cols; ++c) {
            m.At(r, c) = m.At(src, c) * scale;
          }
        } else {
          for (std::size_t c = 0; c < cols; ++c) {
            m.At(r, c) = Q(rng->Range(-6, 6));
          }
        }
      }
      break;
    case Regime::kUnluckyPrime: {
      // Residue matrix is identically zero mod the first prime; the
      // consensus logic must discard it once a later prime shows rank.
      const Rational p(BigInt(static_cast<std::int64_t>(kFirstPrime)));
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          m.At(r, c) = p * Q(rng->Range(-4, 4));
        }
      }
      break;
    }
  }
  return m;
}

void ExpectRrefEqual(const Rref& a, const Rref& b) {
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.pivots, b.pivots);
  EXPECT_EQ(a.matrix, b.matrix);
}

TEST(ModularDifferentialTest, PinsExactRrefOn420RandomMatrices) {
  const Regime regimes[] = {Regime::kSmallInt,       Regime::kSmallRational,
                            Regime::kHugeInt,        Regime::kLowRank,
                            Regime::kHugeLowRank,    Regime::kDuplicatedRows,
                            Regime::kUnluckyPrime};
  Rng rng(20260729);
  int modular_successes = 0;
  for (const Regime regime : regimes) {
    for (int i = 0; i < 60; ++i) {
      Mat m = RandomMatrixFor(regime, &rng);
      Rref exact = ReduceToRrefExact(m);
      std::optional<Rref> fast = TryModularRref(m);
      ASSERT_TRUE(fast.has_value())
          << "modular driver declined on regime "
          << static_cast<int>(regime) << " case " << i;
      ++modular_successes;
      ExpectRrefEqual(*fast, exact);
      // The public dispatching entry point must agree as well.
      ExpectRrefEqual(ReduceToRref(m), exact);
    }
  }
  EXPECT_EQ(modular_successes, 420);
}

TEST(ModularDifferentialTest, RankAndNonsingularAgreeWithExact) {
  const Regime regimes[] = {Regime::kSmallInt, Regime::kLowRank,
                            Regime::kHugeInt, Regime::kHugeLowRank,
                            Regime::kUnluckyPrime};
  Rng rng(42);
  for (const Regime regime : regimes) {
    for (int i = 0; i < 25; ++i) {
      Mat m = RandomMatrixFor(regime, &rng);
      const std::size_t exact_rank = ReduceToRrefExact(m).rank;
      EXPECT_EQ(Rank(m), exact_rank);
      if (m.rows() == m.cols()) {
        EXPECT_EQ(IsNonsingular(m), exact_rank == m.rows());
      }
      std::optional<std::size_t> probe = ModularRankLowerBound(m);
      if (probe.has_value()) EXPECT_LE(*probe, exact_rank);
    }
  }
}

/// Plain exact elimination determinant — the seed implementation, kept
/// here as the differential reference for the Bareiss path.
Rational ReferenceDeterminant(Mat m) {
  const std::size_t n = m.rows();
  Rational det(1);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t found = n;
    for (std::size_t r = col; r < n; ++r) {
      if (!m.At(r, col).IsZero()) {
        found = r;
        break;
      }
    }
    if (found == n) return Rational(0);
    if (found != col) {
      m.SwapRows(found, col);
      det = -det;
    }
    det *= m.At(col, col);
    Rational inv = m.At(col, col).Inverse();
    for (std::size_t r = col + 1; r < n; ++r) {
      Rational factor = m.At(r, col) * inv;
      if (factor.IsZero()) continue;
      for (std::size_t c = col; c < n; ++c) {
        m.At(r, c) -= factor * m.At(col, c);
      }
    }
  }
  return det;
}

TEST(ModularDifferentialTest, BareissDeterminantMatchesExact) {
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    const std::size_t n = 1 + rng.Below(6);
    Mat m(n, n);
    const bool rational_entries = rng.Chance(1, 3);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        if (rational_entries) {
          m.At(r, c) = Q(rng.Range(-8, 8), rng.Range(1, 8));
        } else if (rng.Chance(1, 4)) {
          m.At(r, c) = Rational(RandomBig(&rng, 4));
        } else {
          m.At(r, c) = Q(rng.Range(-8, 8));
        }
      }
    }
    EXPECT_EQ(DeterminantBareiss(m), ReferenceDeterminant(m));
    EXPECT_EQ(Determinant(m), ReferenceDeterminant(m));
  }
}

TEST(ModularFallbackTest, DeclinesWhenFedOnlyBadPrimesAndExactPathServes) {
  // 4×4 integer matrix of rank 3 whose entries are all multiples of the
  // injected prime: mod p the matrix is zero, so rank-0 "consensus" never
  // verifies against the nonzero exact rows.
  Rng rng(99);
  Mat m = RandomMatrixFor(Regime::kUnluckyPrime, &rng);
  ASSERT_GT(ReduceToRrefExact(m).rank, 0u);

  std::vector<std::uint64_t> bad_primes = {kFirstPrime};
  ModularOptions bad;
  bad.primes = &bad_primes;
  bad.max_primes = bad_primes.size();
  EXPECT_FALSE(TryModularRref(m, bad).has_value());
  EXPECT_FALSE(ModularRankLowerBound(m, bad).has_value() &&
               *ModularRankLowerBound(m, bad) > 0);
  EXPECT_FALSE(ModularNonsingularProbe(m, bad).has_value());

  // The dispatching entry point (driver + exact fallback) still returns
  // the exact answer — and so does the explicit fallback a caller with
  // custom options would write.
  Rref exact = ReduceToRrefExact(m);
  std::optional<Rref> fast = TryModularRref(m, bad);
  Rref served = fast.has_value() ? std::move(*fast) : ReduceToRrefExact(m);
  ExpectRrefEqual(served, exact);
  ExpectRrefEqual(ReduceToRref(m), exact);
}

TEST(ModularFallbackTest, SkipsPrimesDividingDenominators) {
  // Entries with denominator equal to the first prime: that prime cannot
  // reduce the matrix (FromRationalMat declines) and the driver must move
  // on to the next prime and still produce the exact RREF.
  Mat m(3, 3);
  const BigInt p(static_cast<std::int64_t>(kFirstPrime));
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      m.At(r, c) = Rational(BigInt(static_cast<std::int64_t>(1 + r + 2 * c)),
                            (r + c) % 2 == 0 ? p : BigInt(1));
    }
  }
  Zp zp(kFirstPrime);
  EXPECT_FALSE(ModMat::FromRationalMat(&zp, m).has_value());
  std::optional<Rref> fast = TryModularRref(m);
  ASSERT_TRUE(fast.has_value());
  ExpectRrefEqual(*fast, ReduceToRrefExact(m));
}

TEST(ModularPrimesTest, ExtendsOnDemandWithRealPrimes) {
  const std::vector<std::uint64_t>& primes = ModularPrimes(64);
  ASSERT_GE(primes.size(), 64u);
  EXPECT_EQ(primes[0], kFirstPrime);
  for (std::size_t i = 1; i < 64; ++i) {
    EXPECT_LT(primes[i], primes[i - 1]);
    EXPECT_GT(primes[i], 1ull << 61);
  }
}

TEST(ZpTest, MontgomeryArithmeticMatchesNaive) {
  Zp zp(kFirstPrime);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.Below(kFirstPrime);
    const std::uint64_t b = rng.Below(kFirstPrime);
    const std::uint64_t ma = zp.To(a);
    const std::uint64_t mb = zp.To(b);
    EXPECT_EQ(zp.From(ma), a);
    EXPECT_EQ(zp.From(zp.Add(ma, mb)), (a + b) % kFirstPrime);
    const std::uint64_t naive_mul = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(a) * b % kFirstPrime);
    EXPECT_EQ(zp.From(zp.Mul(ma, mb)), naive_mul);
    if (a != 0) {
      EXPECT_EQ(zp.From(zp.Mul(ma, zp.Inv(ma))), 1u);
    }
  }
}

TEST(BigIntModTest, MatchesDivModOnLargeAndNegativeValues) {
  Rng rng(5);
  const BigInt modulus(static_cast<std::int64_t>(kFirstPrime));
  for (int i = 0; i < 100; ++i) {
    BigInt v = RandomBig(&rng, 1 + static_cast<int>(rng.Below(8)));
    if (rng.Chance(1, 2)) v = -v;
    const BigInt reference = ((v % modulus) + modulus) % modulus;
    EXPECT_EQ(BigInt(static_cast<std::int64_t>(v.Mod(kFirstPrime))),
              reference);
  }
  EXPECT_EQ(BigInt(-3).Mod(7), 4u);
  EXPECT_EQ(BigInt(0).Mod(7), 0u);
  EXPECT_THROW(BigInt(1).Mod(0), std::domain_error);
}

TEST(MatStorageTest, SwapRowsAndReserve) {
  Mat m{{Q(1), Q(2)}, {Q(3), Q(4)}, {Q(5), Q(6)}};
  m.SwapRows(0, 2);
  EXPECT_EQ(m.Row(0), (Vec{Q(5), Q(6)}));
  EXPECT_EQ(m.Row(2), (Vec{Q(1), Q(2)}));
  m.SwapRows(1, 1);  // No-op.
  EXPECT_EQ(m.Row(1), (Vec{Q(3), Q(4)}));
  Mat n;
  n.Reserve(4, 4);  // Shape unchanged; just capacity.
  EXPECT_EQ(n.rows(), 0u);
  EXPECT_EQ(n.cols(), 0u);
}

TEST(ModularConsumersTest, SolveNullspaceSpanAndWitnessStayExact) {
  // End-to-end through the dispatching consumers on a huge-entry system
  // where the modular path is certain to engage.
  Rng rng(11);
  Mat a(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      a.At(r, c) = Rational(RandomBig(&rng, 5));
    }
  }
  Vec b(4);
  for (std::size_t i = 0; i < 4; ++i) b[i] = Rational(RandomBig(&rng, 5));

  std::optional<Vec> x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(a.Apply(*x), b);

  // Rank-2 matrix: nullspace vectors must be genuine exact kernel vectors.
  Mat low(4, 4);
  for (std::size_t c = 0; c < 4; ++c) {
    low.At(0, c) = a.At(0, c);
    low.At(1, c) = a.At(1, c);
    low.At(2, c) = a.At(0, c) + a.At(1, c);
    low.At(3, c) = a.At(0, c) - a.At(1, c);
  }
  std::vector<Vec> kernel = NullspaceBasis(low);
  EXPECT_EQ(kernel.size(), 2u);
  for (const Vec& v : kernel) {
    EXPECT_TRUE(low.Apply(v).IsZero());
  }

  std::vector<Vec> basis = {low.Row(0), low.Row(1)};
  SpanMembership in = TestSpanMembership(basis, low.Row(2));
  ASSERT_TRUE(in.in_span);
  EXPECT_EQ(basis[0] * in.coefficients[0] + basis[1] * in.coefficients[1],
            low.Row(2));

  std::optional<Vec> witness = OrthogonalWitness(basis, a.Row(2));
  if (witness.has_value()) {
    EXPECT_TRUE(witness->IsIntegral());
    EXPECT_TRUE(Vec::Dot(*witness, basis[0]).IsZero());
    EXPECT_TRUE(Vec::Dot(*witness, basis[1]).IsZero());
    EXPECT_FALSE(Vec::Dot(*witness, a.Row(2)).IsZero());
  }
}

}  // namespace
}  // namespace bagdet
