#include "linalg/cone.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bagdet {
namespace {

Rational Q(std::int64_t n, std::int64_t d = 1) {
  return Rational(BigInt(n), BigInt(d));
}

TEST(ConeTest, RejectsSingularMatrices) {
  EXPECT_THROW(SimplicialCone(Mat{{Q(2), Q(4)}, {Q(1), Q(2)}}),
               std::invalid_argument);
  EXPECT_THROW(SimplicialCone(Mat(2, 3)), std::invalid_argument);
}

TEST(ConeTest, MembershipExample54) {
  // The Example-54 matrix [[1,1],[1,2]].
  SimplicialCone cone(Mat{{Q(1), Q(1)}, {Q(1), Q(2)}});
  // Columns and their nonnegative combinations are inside.
  EXPECT_TRUE(cone.Contains(Vec{Q(1), Q(1)}));
  EXPECT_TRUE(cone.Contains(Vec{Q(1), Q(2)}));
  EXPECT_TRUE(cone.Contains(Vec{Q(2), Q(3)}));
  EXPECT_TRUE(cone.Contains(Vec{Q(0), Q(0)}));
  // Below the first generator's ray: outside.
  EXPECT_FALSE(cone.Contains(Vec{Q(1), Q(0)}));
  EXPECT_FALSE(cone.Contains(Vec{Q(-1), Q(-1)}));
  // Boundary points are contained but not strictly.
  EXPECT_TRUE(cone.Contains(Vec{Q(1), Q(1)}));
  EXPECT_FALSE(cone.StrictlyContains(Vec{Q(1), Q(1)}));
  EXPECT_TRUE(cone.StrictlyContains(Vec{Q(2), Q(3)}));
}

TEST(ConeTest, InteriorPointIsStrictlyInside) {
  SimplicialCone cone(Mat{{Q(1), Q(1)}, {Q(1), Q(2)}});
  Vec p = cone.InteriorPoint();
  EXPECT_EQ(p, (Vec{Q(2), Q(3)}));
  EXPECT_TRUE(cone.StrictlyContains(p));
}

TEST(ConeTest, ScaleIntoLatticeLemma55) {
  SimplicialCone cone(Mat{{Q(1), Q(1)}, {Q(1), Q(2)}});
  // p = M · (1/2, 1/3): coordinates have denominators 2 and 3 -> c = 6.
  Vec p = cone.matrix().Apply(Vec{Q(1, 2), Q(1, 3)});
  std::optional<BigInt> c = cone.ScaleIntoLattice(p);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, BigInt(6));
  // c·p has natural coordinates.
  Vec scaled_coords = cone.Coordinates(p * Rational(*c));
  EXPECT_TRUE(scaled_coords.IsIntegral());
  EXPECT_TRUE(scaled_coords.IsNonNegative());
  // Points outside the cone cannot be scaled in.
  EXPECT_FALSE(cone.ScaleIntoLattice(Vec{Q(1), Q(0)}).has_value());
}

TEST(ConeTest, RandomizedMembershipConsistency) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    std::size_t n = 2 + rng.Below(3);
    Mat m(n, n);
    do {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          m.At(r, c) = Q(rng.Range(0, 6));
        }
      }
    } while (!IsNonsingular(m));
    SimplicialCone cone(m);
    // Nonnegative combinations are members; their coordinates round-trip.
    Vec x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = Q(rng.Range(0, 5));
    Vec p = m.Apply(x);
    EXPECT_TRUE(cone.Contains(p));
    EXPECT_EQ(cone.Coordinates(p), x);
    // A combination with a negative coefficient is outside (coordinates
    // are unique for simplicial cones).
    Vec y = x;
    y[rng.Below(n)] = Q(-1 - static_cast<std::int64_t>(rng.Below(3)));
    EXPECT_FALSE(cone.Contains(m.Apply(y)));
  }
}

}  // namespace
}  // namespace bagdet
