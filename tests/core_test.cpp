// Tests for the Theorem-3 decision procedure on the paper's worked
// examples (Examples 2, 32, 39/Figure 1, 42, Corollary 33) and assorted
// edge cases.

#include "core/determinacy.h"

#include <gtest/gtest.h>

#include "hom/hom.h"
#include "linalg/gauss.h"
#include "query/parser.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

TEST(AnalyzeInstanceTest, Example2Analysis) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q()  :- P(u,x), R(x,y), S(y,z)");
  std::vector<ConjunctiveQuery> views = {
      parser.ParseRule("v1() :- P(u,x), R(x,y)"),
      parser.ParseRule("v2() :- R(x,y), S(y,z)"),
  };
  InstanceAnalysis analysis = AnalyzeInstance(views, q);
  // Both views contain q under set semantics.
  EXPECT_EQ(analysis.relevant_views.size(), 2u);
  // W = {PR-path, RS-path, PRS-path}: each body is connected, pairwise
  // non-isomorphic.
  EXPECT_EQ(analysis.basis_queries.size(), 3u);
  // Each query body is a single component: unit vectors / distinct axes.
  EXPECT_EQ(analysis.query_vector.size(), 3u);
  Rational total;
  for (std::size_t i = 0; i < 3; ++i) total += analysis.query_vector[i];
  EXPECT_EQ(total, Rational(1));
}

TEST(AnalyzeInstanceTest, RejectsNonBooleanAndNullary) {
  QueryParser parser;
  ConjunctiveQuery unary = parser.ParseRule("q(x) :- R(x,y)");
  ConjunctiveQuery ok = parser.ParseRule("v() :- R(x,y)");
  EXPECT_THROW(AnalyzeInstance({ok}, unary), std::invalid_argument);
  ConjunctiveQuery nullary = parser.ParseRule("n() :- H()");
  ConjunctiveQuery ok2 = parser.ParseRule("w() :- R(x,y)");
  EXPECT_THROW(AnalyzeInstance({nullary}, ok2), std::invalid_argument);
  EXPECT_THROW(AnalyzeInstance({ok2}, nullary), std::invalid_argument);
}

TEST(AnalyzeInstanceTest, RejectsSchemaMismatch) {
  QueryParser parser_a;
  QueryParser parser_b;
  ConjunctiveQuery q = parser_a.ParseRule("q() :- R(x,y)");
  ConjunctiveQuery v = parser_b.ParseRule("v() :- S(x,y)");
  EXPECT_THROW(AnalyzeInstance({v}, q), std::invalid_argument);
}

TEST(AnalyzeInstanceTest, IrrelevantViewsExcluded) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- R(x,y)");
  std::vector<ConjunctiveQuery> views = {
      parser.ParseRule("v1() :- R(x,y)"),
      parser.ParseRule("v2() :- R(x,x)"),  // q ⊄set v2 (loop not in q).
  };
  InstanceAnalysis analysis = AnalyzeInstance(views, q);
  ASSERT_EQ(analysis.relevant_views.size(), 1u);
  EXPECT_EQ(analysis.relevant_views[0], 0u);
  // W contains only components of V ∪ {q}, not of the irrelevant v2.
  EXPECT_EQ(analysis.basis_queries.size(), 1u);
}

TEST(DecideTest, Example2NotBagDetermined) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q()  :- P(u,x), R(x,y), S(y,z)");
  std::vector<ConjunctiveQuery> views = {
      parser.ParseRule("v1() :- P(u,x), R(x,y)"),
      parser.ParseRule("v2() :- R(x,y), S(y,z)"),
  };
  DeterminacyResult result = DecideBagDeterminacy(views, q);
  EXPECT_FALSE(result.determined);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_EQ(VerifyCounterexample(result.analysis, *result.counterexample),
            std::nullopt);
}

TEST(DecideTest, TrivialSelfDeterminacy) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- R(x,y), S(y,z)");
  ConjunctiveQuery v = parser.ParseRule("v() :- R(a,b), S(b,c)");
  DeterminacyResult result = DecideBagDeterminacy({v}, q);
  ASSERT_TRUE(result.determined);
  EXPECT_EQ(result.witness->exponents, (Vec{Rational(1)}));
}

TEST(DecideTest, EmptyViewSetDeterminesOnlyTrivialQuery) {
  QueryParser parser;
  ConjunctiveQuery trivial = parser.ParseRule("q() :- true");
  parser.ParseRule("dummy() :- R(x,y)");  // Registers R in the schema.
  DeterminacyResult r1 = DecideBagDeterminacy({}, trivial);
  EXPECT_TRUE(r1.determined);
  ConjunctiveQuery q = parser.ParseRule("q() :- R(x,y)");
  DeterminacyResult r2 = DecideBagDeterminacy({}, q);
  EXPECT_FALSE(r2.determined);
  ASSERT_TRUE(r2.counterexample.has_value());
  EXPECT_EQ(VerifyCounterexample(r2.analysis, *r2.counterexample),
            std::nullopt);
}

TEST(DecideTest, Example32WitnessExponents) {
  // Example 32: with w1, w2, w3 pairwise non-isomorphic connected
  // structures, q = w1 + w2 + 2w3, v1 = 2w1 + w2 + 3w3,
  // v2 = 5w1 + 2w2 + 7w3, the witness is q⃗ = 3v⃗1 − v⃗2.
  auto schema = std::make_shared<Schema>();
  RelationId r = schema->AddRelation("R", 2);
  Structure loop(schema);
  loop.AddFact(r, {0, 0});
  Structure edge(schema);
  edge.AddFact(r, {0, 1});
  Structure path2(schema);
  path2.AddFact(r, {0, 1});
  path2.AddFact(r, {1, 2});
  auto combine = [&](int a, int b, int c) {
    Structure s(schema);
    for (int i = 0; i < a; ++i) s = DisjointUnion(s, loop);
    for (int i = 0; i < b; ++i) s = DisjointUnion(s, edge);
    for (int i = 0; i < c; ++i) s = DisjointUnion(s, path2);
    return s;
  };
  ConjunctiveQuery q = BooleanQueryFromStructure("q", combine(1, 1, 2));
  std::vector<ConjunctiveQuery> views = {
      BooleanQueryFromStructure("v1", combine(2, 1, 3)),
      BooleanQueryFromStructure("v2", combine(5, 2, 7)),
  };
  DeterminacyResult result = DecideBagDeterminacy(views, q);
  ASSERT_TRUE(result.determined);
  ASSERT_EQ(result.analysis.basis_queries.size(), 3u);
  // The witness reconstructs q⃗ from the view vectors.
  Vec reconstructed(3);
  for (std::size_t j = 0; j < result.witness->view_indices.size(); ++j) {
    reconstructed += result.analysis.view_vectors[j] *
                     result.witness->exponents[j];
  }
  EXPECT_EQ(reconstructed, result.analysis.query_vector);

  // And the witness formula holds on concrete structures, including ones
  // where some view vanishes.
  Rng rng(77);
  for (int iter = 0; iter < 10; ++iter) {
    Structure d = RandomStructure(schema, 1 + rng.Below(4), &rng);
    EXPECT_TRUE(CheckWitnessOnStructure(result.analysis, *result.witness, d))
        << d.ToString();
  }
  EXPECT_TRUE(CheckWitnessOnStructure(result.analysis, *result.witness,
                                      Structure(schema)));
}

TEST(DecideTest, Corollary33ConnectedCase) {
  // Corollary 33: all queries connected => determinacy iff q ∈ V0.
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- E(x,y), E(y,z)");
  // Connected views, none isomorphic to q.
  std::vector<ConjunctiveQuery> views = {
      parser.ParseRule("v1() :- E(x,y)"),
      parser.ParseRule("v2() :- E(x,y), E(y,z), E(z,w)"),
  };
  DeterminacyResult without = DecideBagDeterminacy(views, q);
  EXPECT_FALSE(without.determined);
  ASSERT_TRUE(without.counterexample.has_value());
  EXPECT_EQ(VerifyCounterexample(without.analysis, *without.counterexample),
            std::nullopt);
  // Adding (an isomorphic copy of) q itself flips the verdict.
  views.push_back(parser.ParseRule("v3() :- E(a,b), E(b,c)"));
  DeterminacyResult with_q = DecideBagDeterminacy(views, q);
  EXPECT_TRUE(with_q.determined);
}

TEST(DecideTest, Example42SingularWevaluationStillHandled) {
  // Example 42's point: when M_W is singular, S = W cannot host a
  // counterexample, but the good-basis construction repairs this. We find
  // a concrete singular pair (w1, w2) with hom(w2, w1) > 0 by enumeration,
  // then check the full pipeline on q = w1, V0 = {w2}.
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("R", 2);
  std::vector<Structure> all;
  for (std::size_t n = 1; n <= 3; ++n) {
    EnumerateStructures(schema, n, [&](const Structure& s) {
      if (s.IsConnected()) all.push_back(s);
      return true;
    });
  }
  std::optional<std::pair<Structure, Structure>> found;
  for (const Structure& w1 : all) {
    for (const Structure& w2 : all) {
      if (IsIsomorphic(w1, w2)) continue;
      if (CountHoms(w2, w1).IsZero()) continue;  // Need q ⊆set v.
      BigInt h11 = CountHoms(w1, w1);
      BigInt h12 = CountHoms(w1, w2);
      BigInt h21 = CountHoms(w2, w1);
      BigInt h22 = CountHoms(w2, w2);
      if (h11 * h22 == h12 * h21) {
        found = {w1, w2};
        break;
      }
    }
    if (found.has_value()) break;
  }
  ASSERT_TRUE(found.has_value()) << "no singular pair in the search space";
  ConjunctiveQuery q = BooleanQueryFromStructure("q", found->first);
  ConjunctiveQuery v = BooleanQueryFromStructure("v", found->second);
  DeterminacyResult result = DecideBagDeterminacy({v}, q);
  EXPECT_FALSE(result.determined);  // q⃗ = e1 ∉ span{e2}.
  ASSERT_TRUE(result.counterexample.has_value());
  // The good basis must NOT be the singular W evaluation; its matrix is
  // nonsingular by construction.
  EXPECT_TRUE(IsNonsingular(result.counterexample->evaluation_matrix));
  EXPECT_EQ(VerifyCounterexample(result.analysis, *result.counterexample),
            std::nullopt);
}

TEST(DecideTest, DuplicateViewsAreHarmless) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- R(x,y)");
  ConjunctiveQuery v = parser.ParseRule("v() :- R(x,y)");
  DeterminacyResult result = DecideBagDeterminacy({v, v, v}, q);
  EXPECT_TRUE(result.determined);
  EXPECT_TRUE(CheckWitnessOnStructure(result.analysis, *result.witness,
                                      v.FrozenBody()));
}

TEST(DecideTest, WitnessWithRationalExponents) {
  // q = w1 + w2, v1 = 2w1 + w2... no wait — use v1 = 2w1+w2, v2 = w1+2w2:
  // q⃗ = (1,1) = (v⃗1 + v⃗2)/3: genuinely fractional exponents.
  auto schema = std::make_shared<Schema>();
  RelationId r = schema->AddRelation("E", 2);
  Structure loop(schema);
  loop.AddFact(r, {0, 0});
  Structure edge(schema);
  edge.AddFact(r, {0, 1});
  auto combine = [&](int a, int b) {
    Structure s(schema);
    for (int i = 0; i < a; ++i) s = DisjointUnion(s, loop);
    for (int i = 0; i < b; ++i) s = DisjointUnion(s, edge);
    return s;
  };
  ConjunctiveQuery q = BooleanQueryFromStructure("q", combine(1, 1));
  std::vector<ConjunctiveQuery> views = {
      BooleanQueryFromStructure("v1", combine(2, 1)),
      BooleanQueryFromStructure("v2", combine(1, 2)),
  };
  DeterminacyResult result = DecideBagDeterminacy(views, q);
  ASSERT_TRUE(result.determined);
  bool fractional = false;
  for (std::size_t j = 0; j < result.witness->exponents.size(); ++j) {
    if (!result.witness->exponents[j].IsInteger()) fractional = true;
  }
  EXPECT_TRUE(fractional);
  Rng rng(123);
  for (int iter = 0; iter < 8; ++iter) {
    Structure d = RandomStructure(schema, 1 + rng.Below(4), &rng);
    EXPECT_TRUE(CheckWitnessOnStructure(result.analysis, *result.witness, d));
  }
}

TEST(DecideTest, NoCounterexampleWhenNotRequested) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- R(x,y)");
  DeterminacyOptions options;
  options.want_counterexample = false;
  DeterminacyResult result = DecideBagDeterminacy({}, q, options);
  EXPECT_FALSE(result.determined);
  EXPECT_FALSE(result.counterexample.has_value());
}

TEST(DecideTest, SummaryMentionsVerdict) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- R(x,y)");
  ConjunctiveQuery v = parser.ParseRule("v() :- R(a,b)");
  DeterminacyResult yes = DecideBagDeterminacy({v}, q);
  EXPECT_NE(yes.Summary().find("DETERMINED"), std::string::npos);
  DeterminacyResult no = DecideBagDeterminacy({}, q);
  EXPECT_NE(no.Summary().find("NOT determined"), std::string::npos);
}

// The bag/set gap: Example 2 is set-determined (folklore) but not
// bag-determined; conversely bag-determinacy implies the witness identity
// which we exercise above. Here we additionally pin the corollary from the
// proof of Theorem 3: ⟶bag is strictly stronger than ⟶set for boolean CQs.
TEST(DecideTest, BagStrictlyStrongerThanSet) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q()  :- P(u,x), R(x,y), S(y,z)");
  std::vector<ConjunctiveQuery> views = {
      parser.ParseRule("v1() :- P(u,x), R(x,y)"),
      parser.ParseRule("v2() :- R(x,y), S(y,z)"),
  };
  // Not bag-determined (checked in Example2NotBagDetermined). Set
  // determinacy of this instance is the paper's Example 2 claim; our
  // library decides bag only, so here we just re-assert the negative bag
  // verdict to document the gap.
  EXPECT_FALSE(DecideBagDeterminacy(views, q).determined);
}

}  // namespace
}  // namespace bagdet
