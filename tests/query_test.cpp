#include "query/cq.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace bagdet {
namespace {

TEST(ParserTest, ParsesBooleanRule) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- R(x,y), S(y,z)");
  EXPECT_EQ(q.name(), "q");
  EXPECT_TRUE(q.IsBoolean());
  EXPECT_EQ(q.NumVars(), 3u);
  EXPECT_EQ(q.atoms().size(), 2u);
  EXPECT_EQ(q.schema().NumRelations(), 2u);
  EXPECT_EQ(q.FrozenBody().NumFacts(), 2u);
}

TEST(ParserTest, ParsesFreeVariables) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("v(x, y) :- R(x,z), R(z,y)");
  EXPECT_EQ(q.NumFreeVars(), 2u);
  EXPECT_EQ(q.VarName(0), "x");
  EXPECT_EQ(q.VarName(1), "y");
  EXPECT_FALSE(q.IsBoolean());
}

TEST(ParserTest, HeadWithoutParensIsBoolean) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("ok :- R(a,b)");
  EXPECT_TRUE(q.IsBoolean());
}

TEST(ParserTest, NullaryAtomsAndTrue) {
  QueryParser parser;
  ConjunctiveQuery h = parser.ParseRule("q() :- H()");
  EXPECT_EQ(h.schema().Arity(*h.schema().Find("H")), 0u);
  EXPECT_EQ(h.FrozenBody().DomainSize(), 0u);
  ConjunctiveQuery t = parser.ParseRule("t() :- true");
  EXPECT_EQ(t.atoms().size(), 0u);
}

TEST(ParserTest, SharedSchemaAccumulates) {
  QueryParser parser;
  parser.ParseRule("a() :- R(x,y)");
  parser.ParseRule("b() :- S(x), R(x,x)");
  EXPECT_EQ(parser.schema()->NumRelations(), 2u);
  EXPECT_THROW(parser.ParseRule("c() :- R(x)"), std::invalid_argument);
}

TEST(ParserTest, RejectsMalformedInput) {
  QueryParser parser;
  EXPECT_THROW(parser.ParseRule("q() R(x,y)"), std::invalid_argument);
  EXPECT_THROW(parser.ParseRule("q() :- R(x,y"), std::invalid_argument);
  EXPECT_THROW(parser.ParseRule(":- R(x,y)"), std::invalid_argument);
  EXPECT_THROW(parser.ParseRule("q() :- R(x,y) garbage"),
               std::invalid_argument);
}

TEST(ParserTest, ProgramSkipsCommentsAndBlankLines) {
  QueryParser parser;
  std::vector<ConjunctiveQuery> rules = parser.ParseProgram(
      "# a comment\n"
      "q() :- R(x,y)\n"
      "\n"
      "v() :- R(x,x)  # trailing comment\n");
  EXPECT_EQ(rules.size(), 2u);
}

TEST(ParserTest, UcqProgramGroupsByName) {
  QueryParser parser;
  std::vector<UnionQuery> ucqs = parser.ParseUcqProgram(
      "v() :- P(x)\n"
      "v() :- R(x)\n"
      "w() :- P(x), R(x)\n");
  ASSERT_EQ(ucqs.size(), 2u);
  EXPECT_EQ(ucqs[0].disjuncts().size(), 2u);
  EXPECT_EQ(ucqs[1].disjuncts().size(), 1u);
}

TEST(CqTest, FrozenBodyIdentifiesRepeatedVars) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- R(x,x)");
  EXPECT_EQ(q.FrozenBody().DomainSize(), 1u);
  EXPECT_TRUE(q.FrozenBody().HasFact(0, {0, 0}));
}

TEST(CqTest, BooleanEvaluationCountsHoms) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- R(x,y)");
  Structure d(parser.schema());
  d.AddFact(0, {0, 1});
  d.AddFact(0, {1, 2});
  d.AddFact(0, {2, 2});
  EXPECT_EQ(q.CountHomomorphisms(d), BigInt(3));
  AnswerBag bag = q.Evaluate(d);
  ASSERT_EQ(bag.size(), 1u);
  EXPECT_EQ(bag.at({}), BigInt(3));
}

TEST(CqTest, NonBooleanEvaluationGroupsByHead) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q(x) :- R(x,y)");
  Structure d(parser.schema());
  d.AddFact(0, {0, 1});
  d.AddFact(0, {0, 2});
  d.AddFact(0, {1, 2});
  AnswerBag bag = q.Evaluate(d);
  ASSERT_EQ(bag.size(), 2u);
  EXPECT_EQ(bag.at({0}), BigInt(2));
  EXPECT_EQ(bag.at({1}), BigInt(1));
}

TEST(CqTest, EmptyBodyCountsOne) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- true");
  Structure d(parser.schema());
  EXPECT_EQ(q.CountHomomorphisms(d), BigInt(1));
}

TEST(CqTest, HeadOnlyVariableRangesOverDomain) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q(w) :- R(x,y)");
  Structure d(parser.schema(), 3);
  d.AddFact(0, {0, 1});
  AnswerBag bag = q.Evaluate(d);
  EXPECT_EQ(bag.size(), 3u);  // w ranges over the whole domain.
  EXPECT_EQ(bag.at({2}), BigInt(1));
}

TEST(ContainmentTest, HomCriterion) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- R(x,y), R(y,z)");
  ConjunctiveQuery v = parser.ParseRule("v() :- R(a,b)");
  // q ⊆set v: a hom from v's body into q's body exists.
  EXPECT_TRUE(IsContainedSetSemantics(q, v));
  // v ⊄set q in general: q's 2-path cannot map into the single edge... it
  // can (collapse not possible: R(x,y),R(y,z) needs y image to be both head
  // and tail). The frozen body of q is a 2-path; the single edge has no
  // such hom, so v is NOT contained in q... but containment asks for a hom
  // from q's body into v's body.
  EXPECT_FALSE(IsContainedSetSemantics(v, q));
}

TEST(ContainmentTest, LoopContainsEverything) {
  QueryParser parser;
  ConjunctiveQuery loop = parser.ParseRule("l() :- R(x,x)");
  ConjunctiveQuery edge = parser.ParseRule("e() :- R(x,y)");
  EXPECT_TRUE(IsContainedSetSemantics(loop, edge));
  EXPECT_FALSE(IsContainedSetSemantics(edge, loop));
}

TEST(ContainmentTest, RequiresBoolean) {
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q(x) :- R(x,y)");
  ConjunctiveQuery v = parser.ParseRule("v() :- R(x,y)");
  EXPECT_THROW(IsContainedSetSemantics(q, v), std::invalid_argument);
}

TEST(UcqTest, CountIsSumIncludingDuplicates) {
  QueryParser parser;
  ConjunctiveQuery p = parser.ParseRule("u() :- P(x)");
  // The paper's UCQs are multisets of disjuncts: duplicates add up.
  UnionQuery u("u", {p, p});
  Structure d(parser.schema());
  d.AddFact(0, {0});
  d.AddFact(0, {1});
  EXPECT_EQ(u.Count(d), BigInt(4));  // 2 + 2.
}

TEST(UcqTest, Example3BagDeterminacyIdentity) {
  // Example 3 of the paper: q = ∃x R(x); v1 = ∃x P(x);
  // v2 = ∃x P(x) ∨ ∃x R(x). Under bag semantics q(D) = v2(D) − v1(D).
  QueryParser parser;
  ConjunctiveQuery q = parser.ParseRule("q() :- R(x)");
  ConjunctiveQuery v1 = parser.ParseRule("v1() :- P(x)");
  UnionQuery v2("v2", {parser.ParseRule("v2a() :- P(x)"),
                       parser.ParseRule("v2b() :- R(x)")});
  RelationId r = *parser.schema()->Find("R");
  RelationId p = *parser.schema()->Find("P");
  for (int np = 0; np < 4; ++np) {
    for (int nr = 0; nr < 4; ++nr) {
      Structure d(parser.schema());
      for (int i = 0; i < np; ++i) d.AddFact(p, {d.AddElement()});
      for (int i = 0; i < nr; ++i) d.AddFact(r, {d.AddElement()});
      EXPECT_EQ(q.CountHomomorphisms(d),
                v2.Count(d) - v1.CountHomomorphisms(d));
    }
  }
}

TEST(UcqTest, AnswerBagsMergeAcrossDisjuncts) {
  QueryParser parser;
  ConjunctiveQuery a = parser.ParseRule("u(x) :- P(x)");
  ConjunctiveQuery b = parser.ParseRule("u(x) :- Q(x)");
  UnionQuery u("u", {a, b});
  Structure d(parser.schema());
  d.AddFact(*parser.schema()->Find("P"), {0});
  d.AddFact(*parser.schema()->Find("Q"), {0});
  d.EnsureDomain(1);
  AnswerBag bag = u.Evaluate(d);
  EXPECT_EQ(bag.at({0}), BigInt(2));
}

TEST(AnswerBagTest, EqualityIsMultisetEquality) {
  AnswerBag a;
  AnswerBag b;
  a[{0}] = BigInt(2);
  b[{0}] = BigInt(2);
  EXPECT_TRUE(AnswerBagsEqual(a, b));
  b[{0}] = BigInt(3);
  EXPECT_FALSE(AnswerBagsEqual(a, b));
  b[{0}] = BigInt(2);
  b[{1}] = BigInt(1);
  EXPECT_FALSE(AnswerBagsEqual(a, b));
}

}  // namespace
}  // namespace bagdet
