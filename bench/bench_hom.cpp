// Benchmarks for the homomorphism-counting engine — the workhorse behind
// every quantity in the paper (query answers, evaluation matrices,
// containment). No paper table corresponds to these numbers (the paper has
// no machine evaluation); they document the substrate's scaling.

#include <benchmark/benchmark.h>

#include "hom/hom.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

Structure PathGraph(const std::shared_ptr<Schema>& schema, Element edges) {
  Structure s(schema);
  for (Element i = 0; i < edges; ++i) {
    s.AddFact(0, {i, static_cast<Element>(i + 1)});
  }
  return s;
}

Structure Clique(const std::shared_ptr<Schema>& schema, Element n) {
  Structure s(schema, n);
  for (Element i = 0; i < n; ++i) {
    for (Element j = 0; j < n; ++j) {
      if (i != j) s.AddFact(0, {i, j});
    }
  }
  return s;
}

void BM_PathIntoClique(benchmark::State& state) {
  auto schema = GraphSchema();
  Structure path = PathGraph(schema, static_cast<Element>(state.range(0)));
  Structure clique = Clique(schema, static_cast<Element>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHoms(path, clique));
  }
  state.SetLabel("path_edges=" + std::to_string(state.range(0)) +
                 " clique=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_PathIntoClique)
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({16, 8})
    ->Args({32, 8})
    ->Args({16, 16})
    ->Args({16, 32});

void BM_RandomIntoRandom(benchmark::State& state) {
  auto schema = GraphSchema();
  Rng rng(42);
  Structure from =
      RandomConnectedStructure(schema, static_cast<std::size_t>(state.range(0)),
                               &rng, 1, 3);
  Structure to = RandomStructure(schema, static_cast<std::size_t>(state.range(1)),
                                 &rng, 1, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHoms(from, to));
  }
}
BENCHMARK(BM_RandomIntoRandom)->Args({3, 8})->Args({4, 8})->Args({5, 8})
    ->Args({4, 16})->Args({4, 32});

void BM_ExistsHomEarlyExit(benchmark::State& state) {
  auto schema = GraphSchema();
  Structure path = PathGraph(schema, static_cast<Element>(state.range(0)));
  Structure clique = Clique(schema, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExistsHom(path, clique));
  }
}
BENCHMARK(BM_ExistsHomEarlyExit)->Arg(8)->Arg(32)->Arg(128);

void BM_InjectiveHoms(benchmark::State& state) {
  auto schema = GraphSchema();
  Structure path = PathGraph(schema, static_cast<Element>(state.range(0)));
  Structure clique = Clique(schema, static_cast<Element>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountInjectiveHoms(path, clique));
  }
}
BENCHMARK(BM_InjectiveHoms)->Args({3, 6})->Args({4, 7})->Args({5, 8});

// --- Domain core (PR-7) ablations -------------------------------------------
//
// The `domain_core` and `parallel_split` sections of BENCH_hom.json come
// from these: the PR-1 baseline is the engine with domains, order search,
// and splitting all off.

DpOptions Pr1Options() {
  DpOptions options;
  options.use_domains = false;
  options.order_search_max_atoms = 0;
  options.num_threads = 1;
  return options;
}

DpOptions DomainSerialOptions() {
  DpOptions options;
  options.num_threads = 1;  // Isolate the domain layer from the split.
  return options;
}

/// Dense near-regular digraph: every bucket is big and uniform, so
/// single-bucket selection alone barely narrows — the regime the domain
/// layer targets. state.range(0) toggles the PR-1 baseline (0) against the
/// domain core (1).
void BM_DenseDigraphDomainCore(benchmark::State& state) {
  auto schema = GraphSchema();
  Rng rng(0xbe7c);
  Structure from = RandomConnectedStructure(schema, 5, &rng, 3, 4);
  Structure to = RandomStructure(schema, 24, &rng, 3, 4);
  const DpOptions options =
      state.range(0) == 0 ? Pr1Options() : DomainSerialOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHoms(from, to, options));
  }
  state.SetLabel(state.range(0) == 0 ? "pr1_baseline" : "domain_core");
}
BENCHMARK(BM_DenseDigraphDomainCore)->Arg(0)->Arg(1);

/// High-arity overlap instance: T-facts live on the low elements of the
/// target and Q-facts on the high ones, so a variable shared between a
/// T-atom and a Q-atom only has support on the 4-element overlap. The
/// arc-consistency fixpoint shrinks every domain to that overlap before
/// the DP runs, so most candidate T-facts are rejected before table
/// insertion; the PR-1 engine inserts them all and discovers the dead
/// entries only at the final Q-join.
void BM_HighArityDomainCore(benchmark::State& state) {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("T", 3);
  schema->AddRelation("Q", 4);
  Rng rng(0xa417);
  Structure to(schema, 20);
  for (int i = 0; i < 800; ++i) {
    to.AddFact(0, {static_cast<Element>(rng.Below(14)),
                   static_cast<Element>(rng.Below(14)),
                   static_cast<Element>(rng.Below(14))});
  }
  for (int i = 0; i < 300; ++i) {
    to.AddFact(1, {static_cast<Element>(10 + rng.Below(10)),
                   static_cast<Element>(10 + rng.Below(10)),
                   static_cast<Element>(10 + rng.Below(10)),
                   static_cast<Element>(10 + rng.Below(10))});
  }
  Structure from(schema, 5);
  from.AddFact(0, {0, 1, 2});
  from.AddFact(0, {2, 3, 4});
  from.AddFact(1, {1, 3, 4, 0});
  const DpOptions options =
      state.range(0) == 0 ? Pr1Options() : DomainSerialOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHoms(from, to, options));
  }
  state.SetLabel(state.range(0) == 0 ? "pr1_baseline" : "domain_core");
}
BENCHMARK(BM_HighArityDomainCore)->Arg(0)->Arg(1);

/// Small-structure fast path: tiny pairs where the domain layer must not
/// cost anything measurable (the no-regression guard in BENCH_hom.json).
void BM_SmallStructureFastPath(benchmark::State& state) {
  auto schema = GraphSchema();
  Structure path = PathGraph(schema, 3);
  Structure clique = Clique(schema, 4);
  const DpOptions options =
      state.range(0) == 0 ? Pr1Options() : DomainSerialOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHoms(path, clique, options));
  }
  state.SetLabel(state.range(0) == 0 ? "pr1_baseline" : "domain_core");
}
BENCHMARK(BM_SmallStructureFastPath)->Arg(0)->Arg(1);

/// Parallel single-count split: one big count partitioned across the
/// pool. Sweeps the lane count; 1 lane = the serial engine, so the sweep
/// doubles as the split-overhead measurement. Bit-identity across the
/// sweep is asserted by hom_domain_test; this measures it.
void BM_CountHomsSplit(benchmark::State& state) {
  auto schema = GraphSchema();
  Structure path = PathGraph(schema, 12);
  Structure clique = Clique(schema, 48);
  DpOptions options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  options.parallel_split_min_work = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHoms(path, clique, options));
  }
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CountHomsSplit)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_MultiComponentDecomposition(benchmark::State& state) {
  // Lemma 4(5) decomposition: many small components multiply.
  auto schema = GraphSchema();
  Structure from(schema);
  for (int c = 0; c < state.range(0); ++c) {
    from = DisjointUnion(from, PathGraph(schema, 2));
  }
  Structure to = Clique(schema, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHoms(from, to));
  }
}
BENCHMARK(BM_MultiComponentDecomposition)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace bagdet

BENCHMARK_MAIN();
