// Benchmarks for the homomorphism-counting engine — the workhorse behind
// every quantity in the paper (query answers, evaluation matrices,
// containment). No paper table corresponds to these numbers (the paper has
// no machine evaluation); they document the substrate's scaling.

#include <benchmark/benchmark.h>

#include "hom/hom.h"
#include "structs/generator.h"
#include "util/rng.h"

namespace bagdet {
namespace {

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddRelation("E", 2);
  return schema;
}

Structure PathGraph(const std::shared_ptr<Schema>& schema, Element edges) {
  Structure s(schema);
  for (Element i = 0; i < edges; ++i) {
    s.AddFact(0, {i, static_cast<Element>(i + 1)});
  }
  return s;
}

Structure Clique(const std::shared_ptr<Schema>& schema, Element n) {
  Structure s(schema, n);
  for (Element i = 0; i < n; ++i) {
    for (Element j = 0; j < n; ++j) {
      if (i != j) s.AddFact(0, {i, j});
    }
  }
  return s;
}

void BM_PathIntoClique(benchmark::State& state) {
  auto schema = GraphSchema();
  Structure path = PathGraph(schema, static_cast<Element>(state.range(0)));
  Structure clique = Clique(schema, static_cast<Element>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHoms(path, clique));
  }
  state.SetLabel("path_edges=" + std::to_string(state.range(0)) +
                 " clique=" + std::to_string(state.range(1)));
}
BENCHMARK(BM_PathIntoClique)
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({16, 8})
    ->Args({32, 8})
    ->Args({16, 16})
    ->Args({16, 32});

void BM_RandomIntoRandom(benchmark::State& state) {
  auto schema = GraphSchema();
  Rng rng(42);
  Structure from =
      RandomConnectedStructure(schema, static_cast<std::size_t>(state.range(0)),
                               &rng, 1, 3);
  Structure to = RandomStructure(schema, static_cast<std::size_t>(state.range(1)),
                                 &rng, 1, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHoms(from, to));
  }
}
BENCHMARK(BM_RandomIntoRandom)->Args({3, 8})->Args({4, 8})->Args({5, 8})
    ->Args({4, 16})->Args({4, 32});

void BM_ExistsHomEarlyExit(benchmark::State& state) {
  auto schema = GraphSchema();
  Structure path = PathGraph(schema, static_cast<Element>(state.range(0)));
  Structure clique = Clique(schema, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExistsHom(path, clique));
  }
}
BENCHMARK(BM_ExistsHomEarlyExit)->Arg(8)->Arg(32)->Arg(128);

void BM_InjectiveHoms(benchmark::State& state) {
  auto schema = GraphSchema();
  Structure path = PathGraph(schema, static_cast<Element>(state.range(0)));
  Structure clique = Clique(schema, static_cast<Element>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountInjectiveHoms(path, clique));
  }
}
BENCHMARK(BM_InjectiveHoms)->Args({3, 6})->Args({4, 7})->Args({5, 8});

void BM_MultiComponentDecomposition(benchmark::State& state) {
  // Lemma 4(5) decomposition: many small components multiply.
  auto schema = GraphSchema();
  Structure from(schema);
  for (int c = 0; c < state.range(0); ++c) {
    from = DisjointUnion(from, PathGraph(schema, 2));
  }
  Structure to = Clique(schema, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountHoms(from, to));
  }
}
BENCHMARK(BM_MultiComponentDecomposition)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace bagdet

BENCHMARK_MAIN();
