// Benchmarks for the exact arithmetic / linear algebra substrate: BigInt
// multiplication and division, Gaussian elimination, span tests and
// orthogonal witnesses (the Main Lemma's inner loop).

#include <benchmark/benchmark.h>

#include "linalg/gauss.h"
#include "util/bigint.h"
#include "util/rng.h"

namespace bagdet {
namespace {

BigInt RandomBig(Rng* rng, int limbs) {
  BigInt x(0);
  const BigInt base = BigInt::FromString("4294967296");
  for (int i = 0; i < limbs; ++i) {
    x = x * base + BigInt(static_cast<std::int64_t>(rng->Below(1ull << 32)));
  }
  return x;
}

void BM_BigIntMultiply(benchmark::State& state) {
  Rng rng(7);
  BigInt a = RandomBig(&rng, static_cast<int>(state.range(0)));
  BigInt b = RandomBig(&rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetLabel(std::to_string(32 * state.range(0)) + " bits");
}
BENCHMARK(BM_BigIntMultiply)->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_BigIntDivMod(benchmark::State& state) {
  Rng rng(11);
  BigInt a = RandomBig(&rng, static_cast<int>(state.range(0)));
  BigInt b = RandomBig(&rng, static_cast<int>(state.range(0) / 2 + 1));
  for (auto _ : state) {
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BigIntDivMod)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_BigIntPow(benchmark::State& state) {
  BigInt base(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BigInt::Pow(base, static_cast<std::uint64_t>(state.range(0))));
  }
}
BENCHMARK(BM_BigIntPow)->Arg(16)->Arg(256)->Arg(4096);

Mat RandomMatrix(Rng* rng, std::size_t n, std::int64_t lo, std::int64_t hi) {
  Mat m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m.At(r, c) = Rational(rng->Range(lo, hi));
    }
  }
  return m;
}

void BM_GaussianElimination(benchmark::State& state) {
  Rng rng(13);
  Mat m = RandomMatrix(&rng, static_cast<std::size_t>(state.range(0)), -9, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceToRref(m));
  }
}
BENCHMARK(BM_GaussianElimination)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_MatrixInverse(benchmark::State& state) {
  Rng rng(17);
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Mat m = RandomMatrix(&rng, n, -9, 9);
  while (!IsNonsingular(m)) m = RandomMatrix(&rng, n, -9, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Inverse(m));
  }
}
BENCHMARK(BM_MatrixInverse)->Arg(4)->Arg(8)->Arg(16);

void BM_SpanMembership(benchmark::State& state) {
  Rng rng(19);
  std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<Vec> basis;
  for (std::size_t i = 0; i < k; ++i) {
    Vec v(k);
    for (std::size_t j = 0; j < k; ++j) v[j] = Rational(rng.Range(0, 5));
    basis.push_back(std::move(v));
  }
  Vec target(k);
  for (std::size_t j = 0; j < k; ++j) target[j] = Rational(rng.Range(0, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TestSpanMembership(basis, target));
  }
}
BENCHMARK(BM_SpanMembership)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_OrthogonalWitness(benchmark::State& state) {
  Rng rng(23);
  std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<Vec> basis;
  for (std::size_t i = 0; i + 2 < k; ++i) {  // Leave room outside the span.
    Vec v(k);
    for (std::size_t j = 0; j < k; ++j) v[j] = Rational(rng.Range(0, 5));
    basis.push_back(std::move(v));
  }
  Vec target(k);
  for (std::size_t j = 0; j < k; ++j) target[j] = Rational(rng.Range(1, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(OrthogonalWitness(basis, target));
  }
}
BENCHMARK(BM_OrthogonalWitness)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace bagdet

BENCHMARK_MAIN();
